package accel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func sgConfig() ScatterGatherConfig {
	return ScatterGatherConfig{NumPEs: 4, FeatWidth: 8, BytesPerCycle: 64, FetchLatency: 20}
}

func TestScatterGatherConfigValidate(t *testing.T) {
	if (ScatterGatherConfig{}).Validate() == nil {
		t.Fatal("zero config should fail")
	}
	if sgConfig().Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

// Functional correctness: the kernel must produce the same aggregation as a
// direct reference loop regardless of edge order.
func TestScatterGatherFunctional(t *testing.T) {
	rng := tensor.NewRNG(1)
	nSrc, nDst := 20, 6
	features := tensor.New(nSrc, 8)
	tensor.NormalInit(features, 1, rng)
	var edges []graph.Edge
	var weights []float32
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{Src: int32(rng.Intn(nSrc)), Dst: int32(rng.Intn(nDst))})
		weights = append(weights, float32(rng.Float64()))
	}
	ref := tensor.New(nDst, 8)
	for i, e := range edges {
		for j := 0; j < 8; j++ {
			ref.Data[int(e.Dst)*8+j] += weights[i] * features.At(int(e.Src), j)
		}
	}
	for _, sorted := range []bool{false, true} {
		in := edges
		w := weights
		if sorted {
			// Sort edges and weights together.
			type ew struct {
				e graph.Edge
				w float32
			}
			pairs := make([]ew, len(edges))
			for i := range edges {
				pairs[i] = ew{edges[i], weights[i]}
			}
			sortedEdges := graph.SortEdgesBySource(edges)
			// Rebuild weights to match sorted order via stable multimap.
			used := make([]bool, len(pairs))
			w = make([]float32, len(sortedEdges))
			for i, se := range sortedEdges {
				for k, p := range pairs {
					if !used[k] && p.e == se {
						w[i] = p.w
						used[k] = true
						break
					}
				}
			}
			in = sortedEdges
		}
		out := tensor.New(nDst, 8)
		res, err := RunScatterGather(sgConfig(), in, w, features, out)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllClose(ref, 1e-4) {
			t.Fatalf("sorted=%v: kernel output differs from reference by %g", sorted, out.MaxAbsDiff(ref))
		}
		if res.EdgesProcessed != 50 {
			t.Fatalf("EdgesProcessed = %d", res.EdgesProcessed)
		}
	}
}

// The paper's traffic claim (§IV-C): with source-sorted edges the kernel
// fetches each distinct source once — traffic O(|V0|) — while unsorted
// random order costs up to one fetch per edge — traffic O(|E1|).
func TestScatterGatherTraffic(t *testing.T) {
	rng := tensor.NewRNG(2)
	nSrc := 10
	features := tensor.New(nSrc, 8)
	var edges []graph.Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, graph.Edge{Src: int32(rng.Intn(nSrc)), Dst: int32(rng.Intn(16))})
	}
	out := tensor.New(16, 8)
	unsorted, err := RunScatterGather(sgConfig(), edges, nil, features, out)
	if err != nil {
		t.Fatal(err)
	}
	out.Zero()
	sorted, err := RunScatterGather(sgConfig(), graph.SortEdgesBySource(edges), nil, features, out)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.FeatureFetches != nSrc {
		t.Fatalf("sorted fetches = %d, want %d distinct sources", sorted.FeatureFetches, nSrc)
	}
	if unsorted.FeatureFetches <= 2*sorted.FeatureFetches {
		t.Fatalf("unsorted fetches %d should far exceed sorted %d", unsorted.FeatureFetches, sorted.FeatureFetches)
	}
	if sorted.TrafficBytes != int64(nSrc)*8*4 {
		t.Fatalf("sorted traffic = %d bytes", sorted.TrafficBytes)
	}
	if sorted.ReuseFactor != 40 {
		t.Fatalf("reuse factor = %v, want 400/10", sorted.ReuseFactor)
	}
	if sorted.Cycles >= unsorted.Cycles {
		t.Fatal("sorting should reduce cycles")
	}
}

func TestScatterGatherValidation(t *testing.T) {
	features := tensor.New(4, 8)
	out := tensor.New(4, 8)
	if _, err := RunScatterGather(sgConfig(), []graph.Edge{{Src: 0, Dst: 0}}, []float32{1, 2}, features, out); err == nil {
		t.Fatal("expected weight-length error")
	}
	bad := tensor.New(4, 3)
	if _, err := RunScatterGather(sgConfig(), nil, nil, bad, out); err == nil {
		t.Fatal("expected width error")
	}
}

func TestScatterGatherEmpty(t *testing.T) {
	features := tensor.New(4, 8)
	out := tensor.New(4, 8)
	res, err := RunScatterGather(sgConfig(), nil, nil, features, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeatureFetches != 0 || res.Cycles != 0 || res.ReuseFactor != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

// Property: sorted fetches = distinct sources; unsorted fetches = source runs.
func TestScatterGatherFetchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nSrc := 1 + rng.Intn(20)
		edges := make([]graph.Edge, rng.Intn(100))
		distinct := map[int32]bool{}
		for i := range edges {
			edges[i] = graph.Edge{Src: int32(rng.Intn(nSrc)), Dst: int32(rng.Intn(8))}
			distinct[edges[i].Src] = true
		}
		features := tensor.New(nSrc, 8)
		out := tensor.New(8, 8)
		u, err := RunScatterGather(sgConfig(), edges, nil, features, out)
		if err != nil {
			return false
		}
		out.Zero()
		s, err := RunScatterGather(sgConfig(), graph.SortEdgesBySource(edges), nil, features, out)
		if err != nil {
			return false
		}
		return u.FeatureFetches == graph.CountSourceRuns(edges) &&
			(len(edges) == 0 || s.FeatureFetches == len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSystolicFunctionalAndTiming(t *testing.T) {
	rng := tensor.NewRNG(3)
	in := tensor.New(16, 32)
	tensor.NormalInit(in, 1, rng)
	w := tensor.New(32, 8)
	tensor.NormalInit(w, 1, rng)
	bias := tensor.New(1, 8)
	bias.Fill(0.5)
	out := tensor.New(16, 8)
	cfg := SystolicConfig{NumMACs: 64, FreqGHz: 0.3, FillCost: 10}
	res, err := RunSystolic(cfg, out, in, w, bias)
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(16, 8)
	tensor.MatMul(ref, in, w)
	tensor.AddBias(ref, bias)
	if !out.AllClose(ref, 1e-5) {
		t.Fatal("systolic output differs from MatMul reference")
	}
	wantMACs := int64(16 * 32 * 8)
	if res.MACs != wantMACs {
		t.Fatalf("MACs = %d, want %d", res.MACs, wantMACs)
	}
	wantCycles := wantMACs/64 + 10
	if res.Cycles != wantCycles {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, wantCycles)
	}
	if math.Abs(res.Sec-float64(wantCycles)/0.3e9) > 1e-12 {
		t.Fatalf("Sec = %v", res.Sec)
	}
}

func TestSystolicValidation(t *testing.T) {
	out := tensor.New(1, 1)
	if _, err := RunSystolic(SystolicConfig{}, out, out, out, nil); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestUpdateTimeSecMatchesEq12(t *testing.T) {
	// Eq. 12: |V|·f_in·f_out / (N·freq).
	got := UpdateTimeSec(1024, 128, 256, 2048, 0.3)
	want := 1024.0 * 128 * 256 / (2048 * 0.3e9)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("UpdateTimeSec = %v, want %v", got, want)
	}
}

// Table IV: the paper's (8, 2048) design point on the U250 reports
// 72% LUT, 90% DSP, 48% URAM, 40% BRAM.
func TestTable4Utilization(t *testing.T) {
	u, err := EstimateUtilization(KernelParallelism{N: 8, M: 2048}, U250Resources())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s utilization = %.1f%%, paper %.0f%%", name, got*100, want*100)
		}
	}
	check("LUT", u.LUT, 0.72, 0.02)
	check("DSP", u.DSP, 0.90, 0.02)
	check("URAM", u.URAM, 0.48, 0.02)
	check("BRAM", u.BRAM, 0.40, 0.02)
	if !u.Fits() {
		t.Fatal("published design point must fit")
	}
}

func TestEstimateUtilizationValidation(t *testing.T) {
	if _, err := EstimateUtilization(KernelParallelism{N: 0, M: 2048}, U250Resources()); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestMaxParallelism(t *testing.T) {
	p, u, err := MaxParallelism(8, U250Resources())
	if err != nil {
		t.Fatal(err)
	}
	if p.M < 2048 {
		t.Fatalf("MaxParallelism found m=%d; the paper's 2048 must fit", p.M)
	}
	if !u.Fits() {
		t.Fatal("returned design does not fit")
	}
	// Doubling must not fit (otherwise the search stopped early).
	u2, _ := EstimateUtilization(KernelParallelism{N: 8, M: p.M * 2}, U250Resources())
	if u2.Fits() {
		t.Fatal("search stopped before the resource wall")
	}
}

func TestMaxParallelismFailsOnTinyFabric(t *testing.T) {
	tiny := FPGAResources{LUTs: 10, DSPs: 10, BRAMs: 10, URAMs: 10}
	if _, _, err := MaxParallelism(8, tiny); err == nil {
		t.Fatal("expected no-fit error")
	}
}
