package accel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Backend executes a GNN forward pass through the paper's hardware dataflow
// (Fig. 6): per layer, the scatter-gather engine aggregates over
// source-sorted edges (Feature Duplicator reuse), the systolic array applies
// the dense update, and the intermediate result is forwarded on-chip to the
// next layer — only the final output leaves the device. It is functionally
// exact (same numbers as the reference gnn implementation, up to float
// reassociation) and returns the cycle/traffic accounting the timing models
// use, making the §IV-C claims testable end to end.
type Backend struct {
	SG       ScatterGatherConfig
	Systolic SystolicConfig

	// sc holds per-mini-batch scratch (sorted edge list, aggregation
	// coefficients) reused across Forward calls, so the per-step cost of
	// preparing the dataflow's source-sorted layout stops allocating once
	// the buffers have grown to the largest batch. A Backend is therefore
	// not safe for concurrent Forward calls — each trainer and serving
	// worker owns its own, as they already do for replicas and clocks.
	sc backendScratch
}

type backendScratch struct {
	wedges []weightedEdge
	edges  []graph.Edge
	w      []float32
	edgeW  []float32
	selfW  []float32
}

// weightedEdge pairs an edge with its aggregation coefficient so one stable
// sort produces both the source-sorted edge list and its aligned weights.
type weightedEdge struct {
	src, dst int32
	w        float32
}

func f32Buf(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// U250Backend configures the backend as the paper's published design point:
// 8 scatter-gather PE pairs, 2048 MACs at 300 MHz, 64 B/cycle DDR.
func U250Backend(featWidth int) Backend {
	return Backend{
		SG:       ScatterGatherConfig{NumPEs: 8, FeatWidth: featWidth, BytesPerCycle: 64, FetchLatency: 32},
		Systolic: SystolicConfig{NumMACs: 2048, FreqGHz: 0.3, FillCost: 256},
	}
}

// ForwardStats aggregates the hardware accounting of one forward pass.
type ForwardStats struct {
	AggCycles      int64
	UpdateCycles   int64
	FeatureFetches int
	TrafficBytes   int64 // external reads of input features
	OutputBytes    int64 // final result written back (the only writeback)
	Sec            float64
}

// Add accumulates another pass's accounting (aggregation across trainers
// and iterations).
func (s *ForwardStats) Add(o ForwardStats) {
	s.AggCycles += o.AggCycles
	s.UpdateCycles += o.UpdateCycles
	s.FeatureFetches += o.FeatureFetches
	s.TrafficBytes += o.TrafficBytes
	s.OutputBytes += o.OutputBytes
	s.Sec += o.Sec
}

// Forward runs the model's forward pass on a mini-batch through the
// simulated hardware kernels. x holds gathered input features (|V0| × f0).
// Aggregation weights are taken from the model (same coefficients as the
// reference path). Returns the logits and the hardware statistics.
func (bk *Backend) Forward(m *gnn.Model, mb *sampler.MiniBatch, x *tensor.Matrix) (*tensor.Matrix, *ForwardStats, error) {
	L := m.Cfg.Layers()
	if len(mb.Blocks) != L {
		return nil, nil, fmt.Errorf("accel: %d blocks for %d layers", len(mb.Blocks), L)
	}
	if x.Cols != m.Cfg.Dims[0] {
		return nil, nil, fmt.Errorf("accel: features %d-dim, model expects %d", x.Cols, m.Cfg.Dims[0])
	}
	stats := &ForwardStats{}
	h := x
	for l := 0; l < L; l++ {
		b := mb.Blocks[l]
		fin := m.Cfg.Dims[l]
		nd := len(b.Dst)

		// Aggregation on the scatter-gather engine: edges sorted by source
		// so each feature row is fetched once (§IV-C). Self loops are extra
		// "edges" from the dst-prefix rows. Coefficients resolve into reused
		// scratch, and one stable sort of weighted edges yields the
		// source-sorted list with its aligned weights (stability preserves
		// the block's CSC order between duplicate (src,dst) pairs, matching
		// the reference path's pairing).
		edges, wBySortedEdge, selfW := bk.sc.sortedWeightedEdges(m.Cfg, b)
		agg := tensor.New(nd, fin)
		sgCfg := bk.SG
		sgCfg.FeatWidth = fin
		res, err := RunScatterGather(sgCfg, edges, wBySortedEdge, h, agg)
		if err != nil {
			return nil, nil, err
		}
		stats.AggCycles += res.Cycles
		stats.FeatureFetches += res.FeatureFetches
		// Only layer 0 reads from external memory; deeper layers consume
		// on-chip intermediates (the Fig. 6 datapath).
		if l == 0 {
			stats.TrafficBytes += res.TrafficBytes
		}
		// Self contributions (the duplicator holds the dst rows on-chip).
		for d := 0; d < nd; d++ {
			if w := selfW[d]; w != 0 {
				src := h.Row(d)
				dst := agg.Row(d)
				for j, v := range src {
					dst[j] += w * v
				}
			}
		}

		var dense *tensor.Matrix
		if m.Cfg.Kind == gnn.SAGE {
			self := tensor.New(nd, fin)
			for d := 0; d < nd; d++ {
				copy(self.Row(d), h.Row(d))
			}
			dense = tensor.New(nd, 2*fin)
			tensor.ConcatCols(dense, self, agg)
		} else {
			dense = agg
		}

		// Dense update on the systolic array.
		z := tensor.New(nd, m.Cfg.Dims[l+1])
		sres, err := RunSystolic(bk.Systolic, z, dense, m.Params.Weights[l], m.Params.Biases[l])
		if err != nil {
			return nil, nil, err
		}
		stats.UpdateCycles += sres.Cycles
		if l < L-1 {
			tensor.ReLU(z)
		}
		h = z
	}
	stats.OutputBytes = int64(h.Rows) * int64(h.Cols) * 4
	// Pipelined kernels (⊕ = max per layer is already folded into the cycle
	// sums approximately; report wall time as the max of the two engines).
	aggSec := float64(stats.AggCycles) / (bk.Systolic.FreqGHz * 1e9)
	updSec := float64(stats.UpdateCycles) / (bk.Systolic.FreqGHz * 1e9)
	stats.Sec = math.Max(aggSec, updSec)
	return h, stats, nil
}

// sortedWeightedEdges resolves the block's aggregation coefficients into the
// scratch buffers and returns the source-sorted edge list with its aligned
// per-edge weights plus the per-destination self weights. It replaces the
// map-based weight re-pairing of earlier revisions (which allocated a queue
// entry per distinct edge every mini-batch) with one stable sort of
// (edge, weight) records in the reused buffers.
func (sc *backendScratch) sortedWeightedEdges(cfg gnn.Config, b *sampler.Block) ([]graph.Edge, []float32, []float32) {
	ne := b.NumEdges()
	nd := len(b.Dst)
	sc.edgeW = f32Buf(sc.edgeW, ne)
	sc.selfW = f32Buf(sc.selfW, nd)
	edgeW, selfW := gnn.EdgeWeightsInto(cfg, b, sc.edgeW, sc.selfW)
	if cap(sc.wedges) < ne {
		sc.wedges = make([]weightedEdge, ne)
		sc.edges = make([]graph.Edge, ne)
	}
	sc.wedges = sc.wedges[:ne]
	sc.edges = sc.edges[:ne]
	sc.w = f32Buf(sc.w, ne)
	for d := 0; d < nd; d++ {
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			sc.wedges[e] = weightedEdge{src: b.Col[e], dst: int32(d), w: edgeW[e]}
		}
	}
	sort.SliceStable(sc.wedges, func(i, j int) bool {
		if sc.wedges[i].src != sc.wedges[j].src {
			return sc.wedges[i].src < sc.wedges[j].src
		}
		return sc.wedges[i].dst < sc.wedges[j].dst
	})
	for i, we := range sc.wedges {
		sc.edges[i] = graph.Edge{Src: we.src, Dst: we.dst}
		sc.w[i] = we.w
	}
	return sc.edges, sc.w, selfW
}
