package accel

import (
	"fmt"
	"math"

	"repro/internal/gnn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Backend executes a GNN forward pass through the paper's hardware dataflow
// (Fig. 6): per layer, the scatter-gather engine aggregates over
// source-sorted edges (Feature Duplicator reuse), the systolic array applies
// the dense update, and the intermediate result is forwarded on-chip to the
// next layer — only the final output leaves the device. It is functionally
// exact (same numbers as the reference gnn implementation, up to float
// reassociation) and returns the cycle/traffic accounting the timing models
// use, making the §IV-C claims testable end to end.
type Backend struct {
	SG       ScatterGatherConfig
	Systolic SystolicConfig
}

// U250Backend configures the backend as the paper's published design point:
// 8 scatter-gather PE pairs, 2048 MACs at 300 MHz, 64 B/cycle DDR.
func U250Backend(featWidth int) Backend {
	return Backend{
		SG:       ScatterGatherConfig{NumPEs: 8, FeatWidth: featWidth, BytesPerCycle: 64, FetchLatency: 32},
		Systolic: SystolicConfig{NumMACs: 2048, FreqGHz: 0.3, FillCost: 256},
	}
}

// ForwardStats aggregates the hardware accounting of one forward pass.
type ForwardStats struct {
	AggCycles      int64
	UpdateCycles   int64
	FeatureFetches int
	TrafficBytes   int64 // external reads of input features
	OutputBytes    int64 // final result written back (the only writeback)
	Sec            float64
}

// Add accumulates another pass's accounting (aggregation across trainers
// and iterations).
func (s *ForwardStats) Add(o ForwardStats) {
	s.AggCycles += o.AggCycles
	s.UpdateCycles += o.UpdateCycles
	s.FeatureFetches += o.FeatureFetches
	s.TrafficBytes += o.TrafficBytes
	s.OutputBytes += o.OutputBytes
	s.Sec += o.Sec
}

// Forward runs the model's forward pass on a mini-batch through the
// simulated hardware kernels. x holds gathered input features (|V0| × f0).
// Aggregation weights are taken from the model (same coefficients as the
// reference path). Returns the logits and the hardware statistics.
func (bk Backend) Forward(m *gnn.Model, mb *sampler.MiniBatch, x *tensor.Matrix) (*tensor.Matrix, *ForwardStats, error) {
	L := m.Cfg.Layers()
	if len(mb.Blocks) != L {
		return nil, nil, fmt.Errorf("accel: %d blocks for %d layers", len(mb.Blocks), L)
	}
	if x.Cols != m.Cfg.Dims[0] {
		return nil, nil, fmt.Errorf("accel: features %d-dim, model expects %d", x.Cols, m.Cfg.Dims[0])
	}
	stats := &ForwardStats{}
	h := x
	for l := 0; l < L; l++ {
		b := mb.Blocks[l]
		fin := m.Cfg.Dims[l]
		nd := len(b.Dst)

		// Aggregation on the scatter-gather engine: edges sorted by source
		// so each feature row is fetched once (§IV-C). Self loops are extra
		// "edges" from the dst-prefix rows.
		edges := b.SortedEdgesBySource()
		edgeW, selfW := gnn.EdgeWeights(m.Cfg, b)
		// Map sorted edge order back to per-edge weights: rebuild the weight
		// per (dst,src-run) by indexing the block's CSC order.
		wBySortedEdge, err := sortedEdgeWeights(b, edgeW)
		if err != nil {
			return nil, nil, err
		}
		agg := tensor.New(nd, fin)
		sgCfg := bk.SG
		sgCfg.FeatWidth = fin
		res, err := RunScatterGather(sgCfg, edges, wBySortedEdge, h, agg)
		if err != nil {
			return nil, nil, err
		}
		stats.AggCycles += res.Cycles
		stats.FeatureFetches += res.FeatureFetches
		// Only layer 0 reads from external memory; deeper layers consume
		// on-chip intermediates (the Fig. 6 datapath).
		if l == 0 {
			stats.TrafficBytes += res.TrafficBytes
		}
		// Self contributions (the duplicator holds the dst rows on-chip).
		for d := 0; d < nd; d++ {
			if w := selfW[d]; w != 0 {
				src := h.Row(d)
				dst := agg.Row(d)
				for j, v := range src {
					dst[j] += w * v
				}
			}
		}

		var dense *tensor.Matrix
		if m.Cfg.Kind == gnn.SAGE {
			self := tensor.New(nd, fin)
			for d := 0; d < nd; d++ {
				copy(self.Row(d), h.Row(d))
			}
			dense = tensor.New(nd, 2*fin)
			tensor.ConcatCols(dense, self, agg)
		} else {
			dense = agg
		}

		// Dense update on the systolic array.
		z := tensor.New(nd, m.Cfg.Dims[l+1])
		sres, err := RunSystolic(bk.Systolic, z, dense, m.Params.Weights[l], m.Params.Biases[l])
		if err != nil {
			return nil, nil, err
		}
		stats.UpdateCycles += sres.Cycles
		if l < L-1 {
			tensor.ReLU(z)
		}
		h = z
	}
	stats.OutputBytes = int64(h.Rows) * int64(h.Cols) * 4
	// Pipelined kernels (⊕ = max per layer is already folded into the cycle
	// sums approximately; report wall time as the max of the two engines).
	aggSec := float64(stats.AggCycles) / (bk.Systolic.FreqGHz * 1e9)
	updSec := float64(stats.UpdateCycles) / (bk.Systolic.FreqGHz * 1e9)
	stats.Sec = math.Max(aggSec, updSec)
	return h, stats, nil
}

// sortedEdgeWeights reorders the block's CSC edge weights to match
// SortedEdgesBySource order. Weight lookup key is (src,dst) with
// multiplicity handled by consuming matches in order.
func sortedEdgeWeights(b *sampler.Block, edgeW []float32) ([]float32, error) {
	type key struct{ src, dst int32 }
	queue := make(map[key][]float32)
	for d := 0; d < len(b.Dst); d++ {
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			k := key{b.Col[e], int32(d)}
			queue[k] = append(queue[k], edgeW[e])
		}
	}
	sorted := b.SortedEdgesBySource()
	out := make([]float32, len(sorted))
	for i, e := range sorted {
		k := key{e.Src, e.Dst}
		ws := queue[k]
		if len(ws) == 0 {
			return nil, fmt.Errorf("accel: no weight left for edge (%d,%d)", e.Src, e.Dst)
		}
		out[i] = ws[0]
		queue[k] = ws[1:]
	}
	return out, nil
}
