package accel

import "fmt"

// FPGAResources lists the programmable fabric of a device.
type FPGAResources struct {
	LUTs  int
	DSPs  int
	BRAMs int // 36Kb blocks
	URAMs int
}

// U250Resources is the Xilinx Alveo U250 fabric (UltraScale+ XCU250).
func U250Resources() FPGAResources {
	return FPGAResources{LUTs: 1_728_000, DSPs: 12_288, BRAMs: 2_688, URAMs: 1_280}
}

// KernelParallelism is the paper's (n, m) design point: n scatter-gather PE
// pairs and m systolic MACs (Table IV uses (8, 2048)).
type KernelParallelism struct {
	N int // scatter-gather PE pairs
	M int // systolic MAC units
}

// Utilization is the fraction of each resource class consumed.
type Utilization struct {
	LUT, DSP, URAM, BRAM float64
}

// Per-unit resource cost model. These constants were fitted so that the
// paper's published design point (n=8, m=2048) reproduces Table IV
// (72% LUT, 90% DSP, 48% URAM, 40% BRAM) on the U250; see the Table 4 test.
const (
	dspPerMAC      = 5      // float32 multiply-accumulate on UltraScale+ DSP48E2
	dspPerPE       = 96     // one f-lane vector accumulate per S-PE/G-PE pair
	lutPerMAC      = 390    // systolic cell control + operand regs
	lutPerPE       = 31_000 // scatter/gather PE datapath + routing network slice
	lutShell       = 198_000
	uramPerPE      = 61 // S-PE feature store + G-PE intermediate buffers
	uramResultBuf  = 126
	bramPerKilomac = 500 // weight buffer banks per 1024 MACs
	bramShell      = 51
)

// EstimateUtilization predicts fabric utilization for a design point.
func EstimateUtilization(p KernelParallelism, r FPGAResources) (Utilization, error) {
	if p.N <= 0 || p.M <= 0 {
		return Utilization{}, fmt.Errorf("accel: bad parallelism %+v", p)
	}
	u := Utilization{
		LUT:  float64(p.M*lutPerMAC+p.N*lutPerPE+lutShell) / float64(r.LUTs),
		DSP:  float64(p.M*dspPerMAC+p.N*dspPerPE) / float64(r.DSPs),
		URAM: float64(p.N*uramPerPE+uramResultBuf) / float64(r.URAMs),
		BRAM: float64(p.M*bramPerKilomac/1024+bramShell) / float64(r.BRAMs),
	}
	return u, nil
}

// Fits reports whether the design point fits on the device.
func (u Utilization) Fits() bool {
	return u.LUT <= 1 && u.DSP <= 1 && u.URAM <= 1 && u.BRAM <= 1
}

// MaxParallelism searches the largest m (power of two) that fits for a given
// n — the design-space exploration a user would run for a new device.
func MaxParallelism(n int, r FPGAResources) (KernelParallelism, Utilization, error) {
	best := KernelParallelism{}
	var bestU Utilization
	for m := 64; m <= 1<<16; m *= 2 {
		p := KernelParallelism{N: n, M: m}
		u, err := EstimateUtilization(p, r)
		if err != nil {
			return best, bestU, err
		}
		if !u.Fits() {
			break
		}
		best, bestU = p, u
	}
	if best.M == 0 {
		return best, bestU, fmt.Errorf("accel: no design with n=%d fits", n)
	}
	return best, bestU, nil
}
