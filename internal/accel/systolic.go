package accel

import (
	"fmt"

	"repro/internal/tensor"
)

// SystolicConfig describes the update-stage MLP kernel: a systolic array of
// m multiply-accumulate units (paper Table IV uses m = 2048) running at the
// device clock.
type SystolicConfig struct {
	NumMACs  int     // m
	FreqGHz  float64 // operating frequency (0.3 GHz on the U250)
	FillCost int     // pipeline fill/drain cycles per invocation
}

// Validate checks the configuration.
func (c SystolicConfig) Validate() error {
	if c.NumMACs <= 0 || c.FreqGHz <= 0 || c.FillCost < 0 {
		return fmt.Errorf("accel: bad systolic config %+v", c)
	}
	return nil
}

// SystolicResult reports one MLP invocation.
type SystolicResult struct {
	MACs   int64 // multiply-accumulates performed
	Cycles int64
	Sec    float64
}

// RunSystolic computes out = in·w + bias functionally (bias may be nil) and
// returns the cycle estimate: MACs/m sustained throughput plus fill cost —
// the paper's Eq. 12 with an explicit pipeline-flush term (§VI-C names
// pipeline flushing as a model-error source, so the simulator charges it and
// the analytic model does not).
func RunSystolic(cfg SystolicConfig, out, in, w, bias *tensor.Matrix) (SystolicResult, error) {
	if err := cfg.Validate(); err != nil {
		return SystolicResult{}, err
	}
	tensor.MatMul(out, in, w)
	if bias != nil {
		tensor.AddBias(out, bias)
	}
	macs := int64(in.Rows) * int64(in.Cols) * int64(w.Cols)
	cycles := macs/int64(cfg.NumMACs) + int64(cfg.FillCost)
	if macs%int64(cfg.NumMACs) != 0 {
		cycles++
	}
	return SystolicResult{
		MACs:   macs,
		Cycles: cycles,
		Sec:    float64(cycles) / (cfg.FreqGHz * 1e9),
	}, nil
}

// UpdateTimeSec is the analytic form (paper Eq. 12): |V|·f_in·f_out MACs at
// N MAC units × frequency, with no fill term.
func UpdateTimeSec(vertices, fin, fout int, numMACs int, freqGHz float64) float64 {
	macs := float64(vertices) * float64(fin) * float64(fout)
	return macs / (float64(numMACs) * freqGHz * 1e9)
}
