package accel

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

type backendFixture struct {
	ds *datagen.Dataset
	mb *sampler.MiniBatch
	x  *tensor.Matrix
}

func makeBackendFixture(t *testing.T, dims []int, seed uint64) *backendFixture {
	t.Helper()
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "bk", NumVertices: 500, NumEdges: 3500, FeatDims: dims}
	ds, err := datagen.Materialize(spec, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	fanouts := make([]int, len(dims)-1)
	for i := range fanouts {
		fanouts[i] = 6
	}
	s, err := sampler.New(ds.Graph, fanouts, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Sample([]int32{3, 7, 11, 19, 23}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(len(mb.InputNodes()), dims[0])
	tensor.GatherRows(x, ds.Features, mb.InputNodes())
	return &backendFixture{ds: ds, mb: mb, x: x}
}

// The hardware dataflow must produce the same logits as the reference GNN
// implementation, for every supported architecture.
func TestBackendMatchesReference(t *testing.T) {
	for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE, gnn.GIN} {
		t.Run(kind.String(), func(t *testing.T) {
			dims := []int{12, 10, 4}
			fx := makeBackendFixture(t, dims, 11)
			m, err := gnn.NewModel(gnn.Config{Kind: kind, Dims: dims, GINEps: 0.3}, tensor.NewRNG(12))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := m.Forward(fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			bk := U250Backend(dims[0])
			logits, stats, err := bk.Forward(m, fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			if !logits.AllClose(ref.Logits, 1e-3) {
				t.Fatalf("backend logits differ from reference by %g", logits.MaxAbsDiff(ref.Logits))
			}
			if stats.AggCycles <= 0 || stats.UpdateCycles <= 0 || stats.Sec <= 0 {
				t.Fatalf("missing hardware accounting: %+v", stats)
			}
		})
	}
}

// The §IV-C writeback claim: only the final result leaves the device, so
// OutputBytes is |targets|×fL×4 no matter how many layers ran.
func TestBackendOnChipIntermediates(t *testing.T) {
	dims := []int{12, 10, 4}
	fx := makeBackendFixture(t, dims, 13)
	m, _ := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: dims}, tensor.NewRNG(14))
	bk := U250Backend(dims[0])
	_, stats, err := bk.Forward(m, fx.mb, fx.x)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(fx.mb.Targets)) * 4 * 4
	if stats.OutputBytes != want {
		t.Fatalf("OutputBytes = %d, want %d (final layer only)", stats.OutputBytes, want)
	}
	// External feature reads: at most one fetch per distinct input vertex
	// for layer 0 (sorted-edge reuse).
	if stats.TrafficBytes > int64(len(fx.mb.InputNodes()))*int64(dims[0])*4 {
		t.Fatalf("layer-0 traffic %d exceeds one read per input vertex", stats.TrafficBytes)
	}
}

func TestBackendValidation(t *testing.T) {
	dims := []int{12, 10, 4}
	fx := makeBackendFixture(t, dims, 15)
	m, _ := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: []int{12, 4}}, tensor.NewRNG(16))
	bk := U250Backend(12)
	if _, _, err := bk.Forward(m, fx.mb, fx.x); err == nil {
		t.Fatal("expected layer-count error")
	}
	m2, _ := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: dims}, tensor.NewRNG(17))
	bad := tensor.New(fx.x.Rows, 5)
	if _, _, err := bk.Forward(m2, fx.mb, bad); err == nil {
		t.Fatal("expected feature-width error")
	}
}

// Bigger systolic arrays must reduce update cycles (Eq. 12 scaling).
func TestBackendSystolicScaling(t *testing.T) {
	dims := []int{12, 10, 4}
	fx := makeBackendFixture(t, dims, 18)
	m, _ := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: dims}, tensor.NewRNG(19))
	small := U250Backend(dims[0])
	small.Systolic.NumMACs = 64
	big := U250Backend(dims[0])
	big.Systolic.NumMACs = 4096
	_, sSmall, err := small.Forward(m, fx.mb, fx.x)
	if err != nil {
		t.Fatal(err)
	}
	_, sBig, err := big.Forward(m, fx.mb, fx.x)
	if err != nil {
		t.Fatal(err)
	}
	if sBig.UpdateCycles >= sSmall.UpdateCycles {
		t.Fatalf("4096 MACs (%d cycles) not faster than 64 (%d)", sBig.UpdateCycles, sSmall.UpdateCycles)
	}
}
