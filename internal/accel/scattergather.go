// Package accel models the paper's FPGA hardware kernels (§IV-C, Fig. 6):
// a scatter-gather feature-aggregation engine with a Feature Duplicator that
// exploits source-sorted edges to fetch each vertex feature exactly once,
// a systolic-array MLP for the update stage, and an FPGA resource model
// reproducing Table IV. The simulators are functional (they compute real
// aggregation results, cross-checked against the reference implementation)
// and cycle-approximate (they report memory traffic and cycle counts used by
// the performance model).
package accel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ScatterGatherConfig describes the aggregation engine.
type ScatterGatherConfig struct {
	NumPEs        int // n: scatter/gather PE pairs, edges processed per cycle
	FeatWidth     int // f: elements per feature vector
	BytesPerCycle int // external-memory bytes deliverable per cycle
	FetchLatency  int // cycles from issuing a feature fetch to availability
}

// Validate checks the configuration.
func (c ScatterGatherConfig) Validate() error {
	if c.NumPEs <= 0 || c.FeatWidth <= 0 || c.BytesPerCycle <= 0 || c.FetchLatency < 0 {
		return fmt.Errorf("accel: bad scatter-gather config %+v", c)
	}
	return nil
}

// ScatterGatherResult reports the simulated execution.
type ScatterGatherResult struct {
	FeatureFetches int   // features read from external memory
	TrafficBytes   int64 // external memory traffic for input features
	Cycles         int64 // approximate execution cycles
	EdgesProcessed int
	ReuseFactor    float64 // edges per fetch — the Dout(v) reuse of §IV-C
}

// RunScatterGather simulates the aggregation kernel on an edge list over
// local indices: out[dst] += w[i]·features[src]. Edges should be sorted by
// source (Block.SortedEdgesBySource/...Into, or the weight-aligned
// backendScratch.sortedWeightedEdges the training loop uses) to realise
// feature reuse; unsorted input is processed correctly but fetches once per
// source *run*, exactly
// like the hardware, demonstrating the O(|E|)→O(|V0|) traffic reduction.
//
// The Feature Duplicator broadcasts each fetched feature to all S-PEs;
// consecutive edges sharing the source consume the resident feature. Cycle
// accounting: every fetch stalls the pipeline for the memory time of one
// feature row (plus latency, overlapped after the first), and every group of
// up to NumPEs resident-feature edges retires per cycle.
func RunScatterGather(cfg ScatterGatherConfig, edges []graph.Edge, weights []float32,
	features *tensor.Matrix, out *tensor.Matrix) (ScatterGatherResult, error) {
	if err := cfg.Validate(); err != nil {
		return ScatterGatherResult{}, err
	}
	if features.Cols != cfg.FeatWidth || out.Cols != cfg.FeatWidth {
		return ScatterGatherResult{}, fmt.Errorf("accel: feature width %d, config %d", features.Cols, cfg.FeatWidth)
	}
	if weights != nil && len(weights) != len(edges) {
		return ScatterGatherResult{}, fmt.Errorf("accel: %d weights for %d edges", len(weights), len(edges))
	}
	var res ScatterGatherResult
	res.EdgesProcessed = len(edges)
	featBytes := int64(cfg.FeatWidth) * 4
	fetchCycles := int64((int(featBytes) + cfg.BytesPerCycle - 1) / cfg.BytesPerCycle)

	resident := int32(-1)
	run := 0 // consecutive edges using the resident feature
	flushRun := func() {
		if run > 0 {
			res.Cycles += int64((run + cfg.NumPEs - 1) / cfg.NumPEs)
			run = 0
		}
	}
	for i, e := range edges {
		if e.Src != resident {
			flushRun()
			// Feature Duplicator fetches and broadcasts a new source feature.
			res.FeatureFetches++
			res.TrafficBytes += featBytes
			if res.FeatureFetches == 1 {
				res.Cycles += int64(cfg.FetchLatency)
			}
			res.Cycles += fetchCycles
			resident = e.Src
		}
		run++
		// Functional datapath: S-PE scales, routing network delivers to the
		// destination's G-PE accumulator.
		w := float32(1)
		if weights != nil {
			w = weights[i]
		}
		src := features.Row(int(e.Src))
		dst := out.Row(int(e.Dst))
		for j, v := range src {
			dst[j] += w * v
		}
	}
	flushRun()
	if res.FeatureFetches > 0 {
		res.ReuseFactor = float64(res.EdgesProcessed) / float64(res.FeatureFetches)
	}
	return res, nil
}
