package accel

import (
	"math"
	"testing"

	"repro/internal/gnn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// actualLayerSizes extracts the exact per-layer node and edge counts of a
// sampled mini-batch in the estimate's vl/el convention.
func actualLayerSizes(mb *sampler.MiniBatch) (vl, el []float64) {
	L := len(mb.Blocks)
	vl = make([]float64, L+1)
	el = make([]float64, L)
	vl[0] = float64(len(mb.Blocks[0].Src))
	for l := 0; l < L; l++ {
		vl[l+1] = float64(len(mb.Blocks[l].Dst))
		el[l] = float64(mb.Blocks[l].NumEdges())
	}
	return vl, el
}

// The analytic mirror must track the measured kernel time closely when fed
// the batch's exact layer sizes — it is what the serving performance model
// charges for an FPGA worker, so its error feeds straight into the serving
// prediction band.
func TestEstimateForwardTracksMeasured(t *testing.T) {
	for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
		t.Run(kind.String(), func(t *testing.T) {
			dims := []int{24, 16, 6}
			fx := makeBackendFixture(t, dims, 21)
			m, err := gnn.NewModel(gnn.Config{Kind: kind, Dims: dims}, tensor.NewRNG(22))
			if err != nil {
				t.Fatal(err)
			}
			bk := U250Backend(dims[0])
			_, stats, err := bk.Forward(m, fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			vl, el := actualLayerSizes(fx.mb)
			est := bk.EstimateForwardSec(gnn.Config{Kind: kind, Dims: dims}, vl, el)
			if est <= 0 {
				t.Fatal("estimate is non-positive")
			}
			rel := math.Abs(est-stats.Sec) / stats.Sec
			if rel > 0.30 {
				t.Fatalf("estimate %.3gs vs measured %.3gs (%.0f%% off)", est, stats.Sec, 100*rel)
			}
		})
	}
}

// The estimate must grow with the batch and degrade gracefully on malformed
// size vectors.
func TestEstimateForwardShape(t *testing.T) {
	cfg := gnn.Config{Kind: gnn.GCN, Dims: []int{24, 16, 6}}
	bk := U250Backend(24)
	small := bk.EstimateForwardSec(cfg, []float64{100, 40, 10}, []float64{300, 80})
	big := bk.EstimateForwardSec(cfg, []float64{1000, 400, 100}, []float64{3000, 800})
	if small <= 0 || big <= small {
		t.Fatalf("estimate not monotone in batch size: %g vs %g", small, big)
	}
	if bk.EstimateForwardSec(cfg, []float64{100}, nil) != 0 {
		t.Fatal("short size vectors must estimate zero, not panic")
	}
}
