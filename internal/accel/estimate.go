package accel

import (
	"math"

	"repro/internal/gnn"
)

// EstimateForwardSec predicts the wall time Forward would measure for a
// mini-batch of the given expected layer sizes, without executing anything —
// the analytic mirror of the kernel simulators' cycle accounting that lets
// the serving performance model price an FPGA worker the same way the worker
// charges itself.
//
// vl and el follow the perfmodel Sizes convention: vl[l] is the expected
// node count of layer l (index 0 input-most, length L+1), el[l] the expected
// edge count aggregated into layer l+1. Per layer the scatter-gather engine
// fetches each distinct source feature once (sorted-edge reuse, §IV-C) —
// ~vl[l] fetches of ceil(4·f_l / BytesPerCycle) cycles — and retires edges
// NumPEs per cycle; the systolic array streams |V_{l+1}|·f_in·f_out MACs at
// NumMACs per cycle plus its fill cost. Like Forward, the two engines are
// pipelined, so the estimate is the max of the two cycle totals at the
// systolic clock.
func (bk Backend) EstimateForwardSec(cfg gnn.Config, vl, el []float64) float64 {
	L := cfg.Layers()
	if len(vl) < L+1 || len(el) < L {
		return 0
	}
	var aggCycles, updCycles float64
	aggCycles = float64(bk.SG.FetchLatency) // first fetch's latency; the rest overlap
	for l := 0; l < L; l++ {
		featBytes := float64(cfg.Dims[l]) * 4
		fetchCycles := math.Ceil(featBytes / float64(bk.SG.BytesPerCycle))
		aggCycles += vl[l]*fetchCycles + el[l]/float64(bk.SG.NumPEs)

		fin := float64(cfg.Dims[l])
		if cfg.Kind == gnn.SAGE {
			fin *= 2 // concatenation doubles the dense-update input
		}
		macs := vl[l+1] * fin * float64(cfg.Dims[l+1])
		updCycles += macs/float64(bk.Systolic.NumMACs) + float64(bk.Systolic.FillCost)
	}
	freq := bk.Systolic.FreqGHz * 1e9
	agg := aggCycles / freq
	upd := updCycles / freq
	if agg > upd {
		return agg
	}
	return upd
}
