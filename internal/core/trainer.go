package core

import "fmt"

// TrainOptions drives a multi-epoch run with the conveniences a production
// training loop needs on top of Engine.RunEpoch: step learning-rate decay
// and loss-based early stopping.
type TrainOptions struct {
	Epochs int
	// LRDecay multiplies every trainer's learning rate after each
	// DecayEvery epochs (0 disables; typical: 0.5 every 10).
	LRDecay    float32
	DecayEvery int
	// Patience stops training after this many consecutive epochs without
	// the loss improving by at least MinDelta (0 disables early stopping).
	Patience int
	MinDelta float64
}

// Validate checks the options.
func (o TrainOptions) Validate() error {
	if o.Epochs <= 0 {
		return fmt.Errorf("core: Epochs %d", o.Epochs)
	}
	if o.LRDecay < 0 || o.LRDecay > 1 {
		return fmt.Errorf("core: LRDecay %v outside [0,1]", o.LRDecay)
	}
	if o.LRDecay > 0 && o.DecayEvery <= 0 {
		return fmt.Errorf("core: LRDecay set but DecayEvery %d", o.DecayEvery)
	}
	if o.Patience < 0 || o.MinDelta < 0 {
		return fmt.Errorf("core: negative Patience/MinDelta")
	}
	return nil
}

// Train runs up to Epochs epochs, applying decay and early stopping, and
// returns the per-epoch statistics actually executed.
func (e *Engine) Train(opts TrainOptions) ([]*EpochStats, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var history []*EpochStats
	bestLoss := 0.0
	stale := 0
	for ep := 0; ep < opts.Epochs; ep++ {
		st, err := e.RunEpoch()
		if err != nil {
			return history, err
		}
		history = append(history, st)

		if opts.Patience > 0 {
			if ep == 0 || st.Loss < bestLoss-opts.MinDelta {
				bestLoss = st.Loss
				stale = 0
			} else {
				stale++
				if stale >= opts.Patience {
					break
				}
			}
		}
		if opts.LRDecay > 0 && (ep+1)%opts.DecayEvery == 0 {
			for _, opt := range e.opts {
				opt.LR *= opts.LRDecay
			}
		}
	}
	return history, nil
}

// LearningRate reports the current learning rate (all trainers share it).
func (e *Engine) LearningRate() float32 { return e.opts[0].LR }
