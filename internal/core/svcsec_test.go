package core

import (
	"testing"

	"repro/internal/perfmodel"
)

// The dense service-time memo must agree with direct pricing at every
// count, grow on demand, reject negative counts, and — once warm — cost
// zero allocations per lookup (it sits on the serving router's per-batch
// path, consulted once per worker per closed batch).
func TestServiceSecMemo(t *testing.T) {
	p, _ := inferFixture(t, smallPlatform(), 1)
	for _, c := range []int{1, 2, 7, 32, 3, 32, 1} { // repeats exercise the memo
		st, err := p.PredictBatchStage(c)
		if err != nil {
			t.Fatal(err)
		}
		want := perfmodel.ServingServiceSec(st)
		got, err := p.ServiceSec(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("ServiceSec(%d) = %v, direct pricing says %v", c, got, want)
		}
	}
	if _, err := p.ServiceSec(-1); err == nil {
		t.Fatal("negative count accepted")
	}
	if raceEnabled {
		return // exact allocation count is not meaningful under -race
	}
	lookup := func() {
		for c := 1; c <= 32; c++ {
			if _, err := p.ServiceSec(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	lookup() // warm the slice to its roof
	if a := testing.AllocsPerRun(20, lookup); a != 0 {
		t.Fatalf("warm ServiceSec lookups allocated %.1f times per run, want 0", a)
	}
}
