package core

import (
	"sync"

	"repro/internal/accel"
	"repro/internal/gnn"
	"repro/internal/optim"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// StageExecutor is the trainer-execution layer: it runs one iteration's
// pipeline stages — mini-batch sampling, feature loading and transfer, and
// concurrent propagation on every trainer — and reports the measured virtual
// stage times together with the training results. It does NOT apply weight
// updates; the epoch orchestrator does, after GradientSync has produced the
// globally averaged gradient.
type StageExecutor interface {
	RunIteration(targets []int32) (*IterResult, error)
}

// IterResult is one iteration's output: measured stage times, the locally
// averaged gradient awaiting global reduction, and training statistics.
type IterResult struct {
	Stage      perfmodel.StageTimes
	Grad       *gnn.Gradients // local all-reduce result (nil if no trainer ran)
	LossSum    float64        // Σ loss × targets
	Correct    float64        // Σ correct predictions
	Targets    int
	Edges      float64 // edges traversed by sampling (MTEPS numerator)
	RemoteRows int     // feature rows fetched from remote shards
	// FPGA aggregates the dataflow trainers' hardware accounting for the
	// iteration (zero when no FPGA trainer ran).
	FPGA accel.ForwardStats
}

// Overheads charged by the runtime's virtual clock (shared with the analytic
// serving model; mirrors pipesim).
const runtimeBarrierSec = perfmodel.RuntimeBarrierSec

// hybridExecutor is the default StageExecutor: the paper's hybrid CPU +
// accelerator pipeline over the engine's replica fleet.
type hybridExecutor struct {
	e *Engine
}

// RunIteration executes the pipeline stages for one global mini-batch. The
// returned result is owned by the engine's iteration scratch and valid until
// the next RunIteration — the epoch loop consumes it within the iteration,
// which keeps the whole steady-state iteration allocation-free.
func (x *hybridExecutor) RunIteration(targets []int32) (*IterResult, error) {
	e := x.e
	out := &e.iterRes
	*out = IterResult{}
	shares := e.deviceShare(targets)

	// --- Stage 1: Mini-batch Sampling (real work + virtual charge).
	if len(e.iterBatches) != len(shares) {
		e.iterBatches = make([]*sampler.MiniBatch, len(shares))
		e.iterMBs = make([]*sampler.MiniBatch, len(shares))
		for i := range e.iterMBs {
			e.iterMBs[i] = &sampler.MiniBatch{}
		}
		e.iterFeats = make([]*tensor.Matrix, len(shares))
	}
	batches := e.iterBatches
	for i := range batches {
		batches[i] = nil
	}
	var sampEdgesCPU, sampEdgesAccel float64
	for i, share := range shares {
		if len(share) == 0 {
			continue
		}
		if e.saint != nil {
			// GraphSAINT: the share size becomes this trainer's root
			// count; targets from the batcher only size the shares. (This
			// path keeps the allocating sampler: subgraph induction is
			// shaped around per-call node sets.)
			mb, err := e.saint.SampleN(len(share), e.rng)
			if err != nil {
				return nil, err
			}
			batches[i] = mb
		} else {
			// Slot-retained mini-batch, rebuilt in place: trainer i reads
			// it until its Step returns, within this iteration — exactly
			// the storage's lifetime.
			if err := e.smp.SampleInto(e.iterMBs[i], share, e.rng); err != nil {
				return nil, err
			}
			batches[i] = e.iterMBs[i]
		}
		edges := float64(batches[i].EdgesTraversed())
		out.Edges += edges
		if i > 0 && e.assign.AccelSampleFrac > 0 {
			sampEdgesAccel += edges * e.assign.AccelSampleFrac
			sampEdgesCPU += edges * (1 - e.assign.AccelSampleFrac)
		} else {
			sampEdgesCPU += edges
		}
	}
	st := perfmodel.StageTimes{
		SampCPU:   e.pm.SampleTimeCPUEdges(sampEdgesCPU, e.assign.SampThreads),
		SampAccel: e.pm.SampleTimeAccelEdges(sampEdgesAccel / float64(max(1, len(e.cfg.Plat.Accels)))),
		Sync:      e.pm.SyncTime(),
	}

	// --- Stage 2+3: Feature Loading and Data Transfer for accelerators.
	// Both are priced per device: each accelerator's share crosses its own
	// host link (Eq. 8 over AccelLink(i)), and its feature rows ride its
	// stack's loader (framework vs native, overlapped — see
	// perfmodel.LoadTimeForDeviceRows).
	nAcc := len(e.cfg.Plat.Accels)
	feats := e.iterFeats
	for i := range feats {
		feats[i] = nil
	}
	if e.iterLoad == nil {
		e.iterLoad = make([]float64, nAcc)
		e.iterPerAcc = make([]perfmodel.DeviceStage, nAcc)
	}
	loadRows := e.iterLoad
	for i := range loadRows {
		loadRows[i] = 0
	}
	if nAcc > 0 {
		for i := range e.iterPerAcc {
			e.iterPerAcc[i] = perfmodel.DeviceStage{}
		}
		st.PerAccel = e.iterPerAcc
	}
	if e.stageWS == nil {
		e.stageWS = make([]*tensor.Workspace, len(shares))
		for i := range e.stageWS {
			e.stageWS[i] = tensor.NewWorkspace()
		}
	}
	for i, mb := range batches {
		if mb == nil {
			continue
		}
		// Per-slot staging arena: the gathered feature block is reused across
		// iterations (trainer i reads it until its Step returns, within this
		// iteration — exactly the buffer's lifetime).
		e.stageWS[i].Reset()
		x := e.stageWS[i].Get(len(mb.InputNodes()), e.cfg.Model.Dims[0])
		tensor.GatherRows(x, e.cfg.Data.Features, mb.InputNodes())
		feats[i] = x
		if i > 0 { // accelerator share crosses DRAM + its host link
			if e.cfg.QuantizeTransfer {
				tensor.QuantizeRoundTrip(x) // inject the real int8 loss
			}
			sz := sizesInto(&e.iterSizes, mb)
			loadRows[i-1] = sz.VL[0]
			tt := e.pm.TransferTimeDev(i-1, sz)
			st.PerAccel[i-1].Trans = tt
			if tt > st.Trans {
				st.Trans = tt
			}
		}
		// Rows owned by remote shards cross the interconnect, whichever
		// trainer consumes them (the CPU trainer's in-place reads included).
		if e.locator != nil {
			out.RemoteRows += e.locator.RemoteRows(mb.InputNodes())
		}
	}
	st.Load = e.pm.LoadTimeForDeviceRows(loadRows, e.assign.LoadThreads)
	if e.locator != nil {
		st.NetFetch = e.locator.FetchSec(out.RemoteRows)
	}

	// --- Stage 4: GNN Propagation on all trainers concurrently. A single
	// active trainer — the CPU-only and benchmark shape — takes a serial
	// fast path instead: the weighted all-reduce over one participant is
	// the identity (its weight is exactly 1), so the trainer's own mean
	// gradient IS the round's broadcast average bit for bit, and skipping
	// the goroutine + channel + DONE/ACK machinery leaves the whole
	// iteration allocation-free.
	if countActive(batches) == 1 {
		for i, mb := range batches {
			if mb == nil {
				continue
			}
			step, err := e.trainers[i].Step(mb, feats[i])
			if err != nil {
				return nil, err
			}
			out.LossSum += step.Loss * float64(len(mb.Targets))
			out.Correct += step.Acc * float64(len(mb.Targets))
			out.Targets += len(mb.Targets)
			out.Grad = step.Grads
			if i == 0 {
				st.TrainCPU = step.PropSec
			} else {
				st.PerAccel[i-1].Train = step.PropSec
				if step.PropSec > st.TrainAcc {
					st.TrainAcc = step.PropSec
				}
			}
			if step.FPGA != nil {
				out.FPGA.Add(*step.FPGA)
			}
		}
		out.Stage = st
		return out, nil
	}
	results := make(chan trainerResult, len(shares))
	sync_, err := optim.NewSynchronizer(countActive(batches))
	if err != nil {
		return nil, err
	}
	totalTargets := 0
	for _, mb := range batches {
		if mb != nil {
			totalTargets += len(mb.Targets)
		}
	}
	var wg sync.WaitGroup
	for i, mb := range batches {
		if mb == nil {
			continue
		}
		wg.Add(1)
		go func(i int, mb *sampler.MiniBatch, x *tensor.Matrix) {
			defer wg.Done()
			res := e.runTrainer(i, mb, x, totalTargets, sync_)
			results <- res
		}(i, mb, feats[i])
	}
	wg.Wait()
	close(results)

	for res := range results {
		if res.err != nil {
			return nil, res.err
		}
		out.LossSum += res.loss * float64(res.targets)
		out.Correct += res.correct
		out.Targets += res.targets
		out.Grad = res.avg
		if res.idx == 0 {
			st.TrainCPU = res.propSec
		} else {
			st.PerAccel[res.idx-1].Train = res.propSec
			if res.propSec > st.TrainAcc {
				st.TrainAcc = res.propSec
			}
		}
		if res.fpga != nil {
			out.FPGA.Add(*res.fpga)
		}
	}
	out.Stage = st
	return out, nil
}

// deviceShare splits the global batch of targets according to the current
// assignment. Index 0 is the CPU trainer (may be empty). The returned slice
// is the engine's iteration scratch; shares are subslices of targets.
func (e *Engine) deviceShare(targets []int32) [][]int32 {
	total := e.assign.TotalBatch()
	nAcc := len(e.cfg.Plat.Accels)
	if len(e.iterShares) != nAcc+1 {
		e.iterShares = make([][]int32, nAcc+1)
	}
	shares := e.iterShares
	for i := range shares {
		shares[i] = nil
	}
	if total == 0 {
		shares[0] = targets
		return shares
	}
	cursor := 0
	take := func(n int) []int32 {
		if cursor+n > len(targets) {
			n = len(targets) - cursor
		}
		s := targets[cursor : cursor+n]
		cursor += n
		return s
	}
	shares[0] = take(len(targets) * e.assign.CPUBatch / total)
	for i := 0; i < nAcc; i++ {
		if i == nAcc-1 {
			shares[i+1] = targets[cursor:]
			cursor = len(targets)
		} else {
			shares[i+1] = take(len(targets) * e.assign.AccelBatch[i] / total)
		}
	}
	if nAcc == 0 {
		shares[0] = targets
	}
	return shares
}

// trainerResult carries one trainer's output back to the coordinator.
type trainerResult struct {
	idx     int
	avg     *gnn.Gradients // broadcast result of the all-reduce
	loss    float64
	correct float64
	targets int
	propSec float64             // virtual propagation time on this device
	fpga    *accel.ForwardStats // dataflow accounting (FPGA trainers only)
	err     error
}

// actualSizes converts a sampled mini-batch into perfmodel.Sizes.
func actualSizes(mb *sampler.MiniBatch) perfmodel.Sizes {
	var s perfmodel.Sizes
	return sizesInto(&s, mb)
}

// sizesInto is actualSizes into reused backing arrays — the hot paths'
// variant. The returned value shares the scratch's slices and is valid
// until the next call with the same scratch.
func sizesInto(s *perfmodel.Sizes, mb *sampler.MiniBatch) perfmodel.Sizes {
	L := len(mb.Blocks)
	if cap(s.VL) < L+1 {
		s.VL = make([]float64, L+1)
		s.EL = make([]float64, L)
	}
	s.VL = s.VL[:L+1]
	s.EL = s.EL[:L]
	s.VL[0] = float64(len(mb.Blocks[0].Src))
	for l := 0; l < L; l++ {
		s.VL[l+1] = float64(len(mb.Blocks[l].Dst))
		s.EL[l] = float64(mb.Blocks[l].NumEdges())
	}
	return *s
}

// runTrainer executes one trainer's share through its device backend:
// forward/backward on the Trainer, gradient scaling for the weighted
// all-reduce, and DONE/ACK via the synchronizer. The returned propSec is the
// backend's virtual device time.
func (e *Engine) runTrainer(idx int, mb *sampler.MiniBatch, x *tensor.Matrix,
	totalTargets int, sync_ *optim.Synchronizer) trainerResult {
	res := trainerResult{idx: idx, targets: len(mb.Targets)}
	step, err := e.trainers[idx].Step(mb, x)
	if err != nil {
		res.err = err
		// Keep the DONE/ACK protocol alive: the synchronizer was sized for
		// every active trainer, so a silent exit here would block the
		// siblings forever. Submit a zero gradient; the coordinator sees
		// res.err and discards the round.
		sync_.Submit(gnn.NewGradients(e.replicas[idx].Params))
		return res
	}
	res.loss = step.Loss
	res.correct = step.Acc * float64(len(mb.Targets))
	res.propSec = step.PropSec
	res.fpga = step.FPGA

	// Weighted averaging: each trainer's mean-gradient is rescaled so the
	// synchronizer's equal-weight average equals the global-batch mean.
	// The weight *update* is applied by the coordinator to every replica
	// (even share-less ones) once the round's average is known.
	scale := float32(len(mb.Targets)) * float32(sync_.N()) / float32(totalTargets)
	step.Grads.Scale(scale)
	res.avg = sync_.Submit(step.Grads) // blocks until all trainers are DONE
	return res
}

func countActive(batches []*sampler.MiniBatch) int {
	n := 0
	for _, mb := range batches {
		if mb != nil {
			n++
		}
	}
	return n
}
