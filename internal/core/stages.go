package core

import (
	"sync"

	"repro/internal/accel"
	"repro/internal/gnn"
	"repro/internal/optim"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// StageExecutor is the trainer-execution layer: it runs one iteration's
// pipeline stages — mini-batch sampling, feature loading and transfer, and
// concurrent propagation on every trainer — and reports the measured virtual
// stage times together with the training results. It does NOT apply weight
// updates; the epoch orchestrator does, after GradientSync has produced the
// globally averaged gradient.
//
// The iteration splits into two halves along the paper's Fig. 4/5 boundary:
// prepare (Stages 1–3: sampling, feature gather/staging, transfer pricing)
// depends only on the batcher/RNG stream and the assignment snapshot in its
// slot — never on model weights — while compute (Stage 4: propagation +
// local gradient reduction) consumes a prepared slot. RunIteration is
// prepare followed immediately by compute on one slot (serial execution);
// the software-pipelined epoch loop (pipeline.go) instead runs prepare for
// iteration i+1 while compute for iteration i is still in flight, over a
// depth-2 ring of slots.
type StageExecutor interface {
	RunIteration(targets []int32) (*IterResult, error)
	// prepare runs Stages 1–3 for one global mini-batch into the slot's
	// retained scratch, reading the assignment snapshot the slot carries.
	prepare(s *iterSlot, targets []int32) error
	// compute runs Stage 4 over a prepared slot and assembles the iteration
	// result (owned by the slot, valid until its next prepare).
	compute(s *iterSlot) (*IterResult, error)
}

// IterResult is one iteration's output: measured stage times, the locally
// averaged gradient awaiting global reduction, and training statistics.
type IterResult struct {
	Stage      perfmodel.StageTimes
	Grad       *gnn.Gradients // local all-reduce result (nil if no trainer ran)
	LossSum    float64        // Σ loss × targets
	Correct    float64        // Σ correct predictions
	Targets    int
	Edges      float64 // edges traversed by sampling (MTEPS numerator)
	RemoteRows int     // feature rows fetched from remote shards
	// FPGA aggregates the dataflow trainers' hardware accounting for the
	// iteration (zero when no FPGA trainer ran).
	FPGA accel.ForwardStats
}

// Overheads charged by the runtime's virtual clock (shared with the analytic
// serving model; mirrors pipesim).
const runtimeBarrierSec = perfmodel.RuntimeBarrierSec

// iterSlot is one ring entry of the iteration scratch: everything prepare
// writes and compute reads for a single in-flight iteration. The serial path
// uses one slot; the software-pipelined loop owns two, so prepare(i+1) can
// fill one while the trainers still read the other, and the steady state
// stays allocation-free (each slot's arenas grow to their roof once).
type iterSlot struct {
	// assign is the task-mapping snapshot prepare prices and splits against,
	// copied in by the epoch loop *before* the slot is issued. Under DRM the
	// pipelined loop snapshots before compute(i)'s DRM reaction, which is
	// exactly the paper's one-iteration lag (Fig. 5): the engine reacts while
	// the pipeline flows.
	assign  perfmodel.Assignment
	shares  [][]int32
	batches []*sampler.MiniBatch // per-trainer view: nil for idle trainers
	mbs     []*sampler.MiniBatch // retained storage SampleInto refills
	feats   []*tensor.Matrix
	ws      []*tensor.Workspace // per-trainer feature-staging arenas
	load    []float64
	perAcc  []perfmodel.DeviceStage
	sizes   perfmodel.Sizes
	res     IterResult

	// prepare's outputs, consumed by compute.
	st         perfmodel.StageTimes
	edges      float64
	remoteRows int
}

// hybridExecutor is the default StageExecutor: the paper's hybrid CPU +
// accelerator pipeline over the engine's replica fleet.
type hybridExecutor struct {
	e *Engine
}

// RunIteration executes the pipeline stages for one global mini-batch,
// serially: prepare then compute on slot 0, against the engine's current
// assignment. The returned result is owned by the slot's scratch and valid
// until its next prepare — the epoch loop consumes it within the iteration,
// which keeps the whole steady-state iteration allocation-free.
func (x *hybridExecutor) RunIteration(targets []int32) (*IterResult, error) {
	s := x.e.slot(0)
	x.e.assign.CloneInto(&s.assign)
	if err := x.prepare(s, targets); err != nil {
		return nil, err
	}
	return x.compute(s)
}

// prepare runs Stages 1–3 — sampling, feature gather/staging, transfer and
// load pricing — into the slot. It touches only the slot's scratch, the
// sampler/RNG stream (callers serialize prepares), and read-only engine
// state (features, pricing model, locator); never the replicas or trainers,
// which is what lets it overlap a sibling slot's compute.
func (x *hybridExecutor) prepare(s *iterSlot, targets []int32) error {
	e := x.e
	s.st = perfmodel.StageTimes{}
	s.edges = 0
	s.remoteRows = 0
	shares := e.deviceShareInto(s, targets)

	// --- Stage 1: Mini-batch Sampling (real work + virtual charge).
	if len(s.batches) != len(shares) {
		s.batches = make([]*sampler.MiniBatch, len(shares))
		s.mbs = make([]*sampler.MiniBatch, len(shares))
		for i := range s.mbs {
			s.mbs[i] = &sampler.MiniBatch{}
		}
		s.feats = make([]*tensor.Matrix, len(shares))
	}
	batches := s.batches
	for i := range batches {
		batches[i] = nil
	}
	var sampEdgesCPU, sampEdgesAccel float64
	for i, share := range shares {
		if len(share) == 0 {
			continue
		}
		if e.saint != nil {
			// GraphSAINT: the share size becomes this trainer's root
			// count; targets from the batcher only size the shares. (This
			// path keeps the allocating sampler: subgraph induction is
			// shaped around per-call node sets.)
			mb, err := e.saint.SampleN(len(share), e.rng)
			if err != nil {
				return err
			}
			batches[i] = mb
		} else {
			// Slot-retained mini-batch, rebuilt in place: trainer i reads
			// it until its Step returns, within the slot's iteration —
			// exactly the storage's lifetime.
			if err := e.smp.SampleInto(s.mbs[i], share, e.rng); err != nil {
				return err
			}
			batches[i] = s.mbs[i]
		}
		edges := float64(batches[i].EdgesTraversed())
		s.edges += edges
		if i > 0 && s.assign.AccelSampleFrac > 0 {
			sampEdgesAccel += edges * s.assign.AccelSampleFrac
			sampEdgesCPU += edges * (1 - s.assign.AccelSampleFrac)
		} else {
			sampEdgesCPU += edges
		}
	}
	st := perfmodel.StageTimes{
		SampCPU:   e.pm.SampleTimeCPUEdges(sampEdgesCPU, s.assign.SampThreads),
		SampAccel: e.pm.SampleTimeAccelEdges(sampEdgesAccel / float64(max(1, len(e.cfg.Plat.Accels)))),
		Sync:      e.pm.SyncTime(),
	}

	// --- Stage 2+3: Feature Loading and Data Transfer for accelerators.
	// Both are priced per device: each accelerator's share crosses its own
	// host link (Eq. 8 over AccelLink(i)), and its feature rows ride its
	// stack's loader (framework vs native, overlapped — see
	// perfmodel.LoadTimeForDeviceRows).
	nAcc := len(e.cfg.Plat.Accels)
	feats := s.feats
	for i := range feats {
		feats[i] = nil
	}
	if s.load == nil {
		s.load = make([]float64, nAcc)
		s.perAcc = make([]perfmodel.DeviceStage, nAcc)
	}
	loadRows := s.load
	for i := range loadRows {
		loadRows[i] = 0
	}
	if nAcc > 0 {
		for i := range s.perAcc {
			s.perAcc[i] = perfmodel.DeviceStage{}
		}
		st.PerAccel = s.perAcc
	}
	if s.ws == nil {
		s.ws = make([]*tensor.Workspace, len(shares))
		for i := range s.ws {
			s.ws[i] = tensor.NewWorkspace()
		}
	}
	for i, mb := range batches {
		if mb == nil {
			continue
		}
		// Per-slot staging arena: the gathered feature block is reused across
		// iterations (trainer i reads it until its Step returns, within the
		// slot's iteration — exactly the buffer's lifetime).
		s.ws[i].Reset()
		x := s.ws[i].Get(len(mb.InputNodes()), e.cfg.Model.Dims[0])
		tensor.GatherRows(x, e.cfg.Data.Features, mb.InputNodes())
		feats[i] = x
		if i > 0 { // accelerator share crosses DRAM + its host link
			if e.cfg.QuantizeTransfer {
				tensor.QuantizeRoundTrip(x) // inject the real int8 loss
			}
			sz := sizesInto(&s.sizes, mb)
			loadRows[i-1] = sz.VL[0]
			tt := e.pm.TransferTimeDev(i-1, sz)
			st.PerAccel[i-1].Trans = tt
			if tt > st.Trans {
				st.Trans = tt
			}
		}
		// Rows owned by remote shards cross the interconnect, whichever
		// trainer consumes them (the CPU trainer's in-place reads included).
		if e.locator != nil {
			s.remoteRows += e.locator.RemoteRows(mb.InputNodes())
		}
	}
	st.Load = e.pm.LoadTimeForDeviceRows(loadRows, s.assign.LoadThreads)
	if e.locator != nil {
		st.NetFetch = e.locator.FetchSec(s.remoteRows)
	}
	s.st = st
	return nil
}

// compute runs Stage 4 — GNN propagation on all trainers concurrently plus
// the local gradient all-reduce — over a prepared slot, and assembles the
// iteration result.
func (x *hybridExecutor) compute(s *iterSlot) (*IterResult, error) {
	e := x.e
	out := &s.res
	*out = IterResult{}
	out.Edges = s.edges
	out.RemoteRows = s.remoteRows
	st := s.st
	batches, feats := s.batches, s.feats

	// A single active trainer — the CPU-only and benchmark shape — takes a
	// serial fast path instead: the weighted all-reduce over one participant
	// is the identity (its weight is exactly 1), so the trainer's own mean
	// gradient IS the round's broadcast average bit for bit, and skipping
	// the goroutine + channel + DONE/ACK machinery leaves the whole
	// iteration allocation-free.
	if countActive(batches) == 1 {
		for i, mb := range batches {
			if mb == nil {
				continue
			}
			step, err := e.trainers[i].Step(mb, feats[i])
			if err != nil {
				return nil, err
			}
			out.LossSum += step.Loss * float64(len(mb.Targets))
			out.Correct += step.Acc * float64(len(mb.Targets))
			out.Targets += len(mb.Targets)
			out.Grad = step.Grads
			if i == 0 {
				st.TrainCPU = step.PropSec
			} else {
				st.PerAccel[i-1].Train = step.PropSec
				if step.PropSec > st.TrainAcc {
					st.TrainAcc = step.PropSec
				}
			}
			if step.FPGA != nil {
				out.FPGA.Add(*step.FPGA)
			}
		}
		out.Stage = st
		return out, nil
	}
	sync_, err := optim.NewSynchronizer(countActive(batches))
	if err != nil {
		return nil, err
	}
	totalTargets := 0
	for _, mb := range batches {
		if mb != nil {
			totalTargets += len(mb.Targets)
		}
	}
	// Results land in a per-trainer slot and are folded in INDEX order
	// below: loss/correct accumulation is floating-point, so folding in
	// channel-arrival order would make the reported epoch statistics depend
	// on goroutine scheduling (the all-reduce itself is rank-ordered inside
	// the Synchronizer for the same reason).
	resByIdx := make([]trainerResult, len(batches))
	var wg sync.WaitGroup
	rank := 0
	for i, mb := range batches {
		if mb == nil {
			continue
		}
		wg.Add(1)
		go func(i, rank int, mb *sampler.MiniBatch, x *tensor.Matrix) {
			defer wg.Done()
			resByIdx[i] = e.runTrainer(i, rank, mb, x, totalTargets, sync_)
		}(i, rank, mb, feats[i])
		rank++
	}
	wg.Wait()

	for i := range batches {
		if batches[i] == nil {
			continue
		}
		res := &resByIdx[i]
		if res.err != nil {
			return nil, res.err
		}
		out.LossSum += res.loss * float64(res.targets)
		out.Correct += res.correct
		out.Targets += res.targets
		out.Grad = res.avg
		if res.idx == 0 {
			st.TrainCPU = res.propSec
		} else {
			st.PerAccel[res.idx-1].Train = res.propSec
			if res.propSec > st.TrainAcc {
				st.TrainAcc = res.propSec
			}
		}
		if res.fpga != nil {
			out.FPGA.Add(*res.fpga)
		}
	}
	out.Stage = st
	return out, nil
}

// deviceShareInto splits the global batch of targets according to the slot's
// assignment snapshot. Index 0 is the CPU trainer (may be empty). The
// returned slice is the slot's scratch; shares are subslices of targets.
func (e *Engine) deviceShareInto(s *iterSlot, targets []int32) [][]int32 {
	total := s.assign.TotalBatch()
	nAcc := len(e.cfg.Plat.Accels)
	if len(s.shares) != nAcc+1 {
		s.shares = make([][]int32, nAcc+1)
	}
	shares := s.shares
	for i := range shares {
		shares[i] = nil
	}
	if total == 0 {
		shares[0] = targets
		return shares
	}
	cursor := 0
	take := func(n int) []int32 {
		if cursor+n > len(targets) {
			n = len(targets) - cursor
		}
		s := targets[cursor : cursor+n]
		cursor += n
		return s
	}
	shares[0] = take(len(targets) * s.assign.CPUBatch / total)
	for i := 0; i < nAcc; i++ {
		if i == nAcc-1 {
			shares[i+1] = targets[cursor:]
			cursor = len(targets)
		} else {
			shares[i+1] = take(len(targets) * s.assign.AccelBatch[i] / total)
		}
	}
	if nAcc == 0 {
		shares[0] = targets
	}
	return shares
}

// trainerResult carries one trainer's output back to the coordinator.
type trainerResult struct {
	idx     int
	avg     *gnn.Gradients // broadcast result of the all-reduce
	loss    float64
	correct float64
	targets int
	propSec float64             // virtual propagation time on this device
	fpga    *accel.ForwardStats // dataflow accounting (FPGA trainers only)
	err     error
}

// actualSizes converts a sampled mini-batch into perfmodel.Sizes.
func actualSizes(mb *sampler.MiniBatch) perfmodel.Sizes {
	var s perfmodel.Sizes
	return sizesInto(&s, mb)
}

// sizesInto is actualSizes into reused backing arrays — the hot paths'
// variant. The returned value shares the scratch's slices and is valid
// until the next call with the same scratch.
func sizesInto(s *perfmodel.Sizes, mb *sampler.MiniBatch) perfmodel.Sizes {
	L := len(mb.Blocks)
	if cap(s.VL) < L+1 {
		s.VL = make([]float64, L+1)
		s.EL = make([]float64, L)
	}
	s.VL = s.VL[:L+1]
	s.EL = s.EL[:L]
	s.VL[0] = float64(len(mb.Blocks[0].Src))
	for l := 0; l < L; l++ {
		s.VL[l+1] = float64(len(mb.Blocks[l].Dst))
		s.EL[l] = float64(mb.Blocks[l].NumEdges())
	}
	return *s
}

// runTrainer executes one trainer's share through its device backend:
// forward/backward on the Trainer, gradient scaling for the weighted
// all-reduce, and DONE/ACK via the synchronizer (rank is the trainer's dense
// index among this iteration's active trainers — the all-reduce sums in rank
// order). The returned propSec is the backend's virtual device time.
func (e *Engine) runTrainer(idx, rank int, mb *sampler.MiniBatch, x *tensor.Matrix,
	totalTargets int, sync_ *optim.Synchronizer) trainerResult {
	res := trainerResult{idx: idx, targets: len(mb.Targets)}
	step, err := e.trainers[idx].Step(mb, x)
	if err != nil {
		res.err = err
		// Keep the DONE/ACK protocol alive: the synchronizer was sized for
		// every active trainer, so a silent exit here would block the
		// siblings forever. Submit a zero gradient; the coordinator sees
		// res.err and discards the round.
		sync_.Submit(rank, gnn.NewGradients(e.replicas[idx].Params))
		return res
	}
	res.loss = step.Loss
	res.correct = step.Acc * float64(len(mb.Targets))
	res.propSec = step.PropSec
	res.fpga = step.FPGA

	// Weighted averaging: each trainer's mean-gradient is rescaled so the
	// synchronizer's equal-weight average equals the global-batch mean.
	// The weight *update* is applied by the coordinator to every replica
	// (even share-less ones) once the round's average is known.
	scale := float32(len(mb.Targets)) * float32(sync_.N()) / float32(totalTargets)
	step.Grads.Scale(scale)
	res.avg = sync_.Submit(rank, step.Grads) // blocks until all trainers are DONE
	return res
}

func countActive(batches []*sampler.MiniBatch) int {
	n := 0
	for _, mb := range batches {
		if mb != nil {
			n++
		}
	}
	return n
}
