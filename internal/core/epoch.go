package core

import "runtime"

// Epoch orchestration: the top layer of the runtime. RunEpoch owns the
// iteration loop and nothing else — it asks the batcher for targets, the
// StageExecutor for execution, GradientSync for the global gradient, applies
// the update to every replica, advances the Clock, and lets DRM react. Each
// of those layers is swappable without touching this loop.
//
// Two execution modes share this orchestration (Config.Pipeline): the serial
// loop below runs each iteration start-to-finish, while pipeline.go's
// software-pipelined loop overlaps iteration i+1's prepare with iteration
// i's compute. Everything an iteration *consumes* — gradient reduction,
// weight update, clock charge, DRM reaction — lives in consumeIteration so
// both loops apply bit-identical updates in the same order.

// epochAccum accumulates the per-iteration training statistics an epoch
// summarises at the end.
type epochAccum struct {
	lossSum   float64
	accSum    float64
	targetSum int
	edgeSum   float64
}

// consumeIteration applies one completed iteration to the training state:
// global gradient reduction, the weight update on every replica, the virtual
// clock charge, epoch statistics, and the DRM reaction. Both execution modes
// funnel through here, in iteration order, on the orchestrating goroutine.
func (e *Engine) consumeIteration(it int, res *IterResult, stats *EpochStats, acc *epochAccum) error {
	acc.lossSum += res.LossSum
	acc.accSum += res.Correct
	acc.targetSum += res.Targets
	acc.edgeSum += res.Edges

	// Weight update: the local average crosses GradientSync (identity on
	// one node, ring all-reduce across shards), then EVERY replica
	// applies the broadcast result — including trainers that had no
	// share this iteration (the DRM can shrink a share to zero) — so the
	// fleet stays in lock-step.
	if res.Grad != nil {
		global, netSec, err := e.gsync.Reduce(res.Grad)
		if err != nil {
			return err
		}
		res.Stage.NetSync = netSec
		for i := range e.replicas {
			e.opts[i].Step(e.replicas[i].Params, global)
		}
	}

	// --- Advance the virtual pipeline clock and let DRM react.
	e.clock.Advance(res.Stage)
	stats.NetFetchSec += res.Stage.NetFetch
	stats.NetSyncSec += res.Stage.NetSync
	stats.RemoteRows += res.RemoteRows
	stats.FPGA.Add(res.FPGA)
	if e.drmEng != nil {
		e.assign = e.drmEng.Adjust(it, res.Stage, e.assign)
	}
	return nil
}

// runSerial is the classic loop: each iteration's prepare and compute run
// back to back on the calling goroutine.
func (e *Engine) runSerial(iters int, stats *EpochStats, acc *epochAccum) error {
	for it := 0; it < iters; it++ {
		res, err := e.exec.RunIteration(e.batcher.Next())
		if err != nil {
			return err
		}
		if err := e.consumeIteration(it, res, stats, acc); err != nil {
			return err
		}
	}
	return nil
}

// RunEpoch trains one full epoch and returns its statistics.
//
// In prefetch mode the worker goroutine only pays off when another
// processor can actually run it: at GOMAXPROCS=1 the hand-off would merely
// time-slice prepare against compute (and thrash the two slots' cache
// working sets), so the pipelined schedule runs inline instead. The two
// variants are bitwise identical — the DRM lag comes from *when* the
// assignment snapshot is taken, not from asynchrony — which the oracle
// tests pin.
func (e *Engine) RunEpoch() (*EpochStats, error) {
	if e.cfg.Pipeline == PipelinePrefetch {
		async := runtime.GOMAXPROCS(0) > 1
		return e.runEpoch(func(iters int, stats *EpochStats, acc *epochAccum) error {
			return e.runPipelined(iters, stats, acc, async)
		})
	}
	return e.runEpoch(e.runSerial)
}

// runEpoch wraps one epoch's iteration loop with the shared bookkeeping:
// batcher sizing, clock span, and the final statistics.
func (e *Engine) runEpoch(run func(int, *EpochStats, *epochAccum) error) (*EpochStats, error) {
	e.epoch++
	iters := e.batcher.BatchesPerEpoch()
	stats := &EpochStats{Epoch: e.epoch, Iterations: iters}
	epochStart := e.clock.Now()
	var acc epochAccum
	if err := run(iters, stats, &acc); err != nil {
		return nil, err
	}

	stats.VirtualSec = e.clock.Now() - epochStart
	if acc.targetSum > 0 {
		stats.Loss = acc.lossSum / float64(acc.targetSum)
		stats.Accuracy = acc.accSum / float64(acc.targetSum)
	}
	if stats.VirtualSec > 0 {
		stats.MTEPS = acc.edgeSum / stats.VirtualSec / 1e6
	}
	stats.Assignment = e.assign.Clone()
	return stats, nil
}
