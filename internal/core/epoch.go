package core

// Epoch orchestration: the top layer of the runtime. RunEpoch owns the
// iteration loop and nothing else — it asks the batcher for targets, the
// StageExecutor for execution, GradientSync for the global gradient, applies
// the update to every replica, advances the Clock, and lets DRM react. Each
// of those layers is swappable without touching this loop.

// RunEpoch trains one full epoch and returns its statistics.
func (e *Engine) RunEpoch() (*EpochStats, error) {
	e.epoch++
	iters := e.batcher.BatchesPerEpoch()
	stats := &EpochStats{Epoch: e.epoch, Iterations: iters}
	epochStart := e.clock.Now()
	var lossSum, accSum float64
	var targetSum int
	var edgeSum float64

	for it := 0; it < iters; it++ {
		res, err := e.exec.RunIteration(e.batcher.Next())
		if err != nil {
			return nil, err
		}
		lossSum += res.LossSum
		accSum += res.Correct
		targetSum += res.Targets
		edgeSum += res.Edges

		// Weight update: the local average crosses GradientSync (identity on
		// one node, ring all-reduce across shards), then EVERY replica
		// applies the broadcast result — including trainers that had no
		// share this iteration (the DRM can shrink a share to zero) — so the
		// fleet stays in lock-step.
		if res.Grad != nil {
			global, netSec, err := e.gsync.Reduce(res.Grad)
			if err != nil {
				return nil, err
			}
			res.Stage.NetSync = netSec
			for i := range e.replicas {
				e.opts[i].Step(e.replicas[i].Params, global)
			}
		}

		// --- Advance the virtual pipeline clock and let DRM react.
		e.clock.Advance(res.Stage)
		stats.NetFetchSec += res.Stage.NetFetch
		stats.NetSyncSec += res.Stage.NetSync
		stats.RemoteRows += res.RemoteRows
		stats.FPGA.Add(res.FPGA)
		if e.drmEng != nil {
			e.assign = e.drmEng.Adjust(it, res.Stage, e.assign)
		}
	}

	stats.VirtualSec = e.clock.Now() - epochStart
	if targetSum > 0 {
		stats.Loss = lossSum / float64(targetSum)
		stats.Accuracy = accSum / float64(targetSum)
	}
	if stats.VirtualSec > 0 {
		stats.MTEPS = edgeSum / stats.VirtualSec / 1e6
	}
	stats.Assignment = e.assign.Clone()
	return stats, nil
}
