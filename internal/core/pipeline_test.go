package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gnn"
	"repro/internal/tensor"
)

// trainEpochs builds an engine from cfg and runs it for the given number of
// epochs, returning the per-epoch stats and the final parameters.
func trainEpochs(t *testing.T, cfg Config, epochs int) ([]*EpochStats, *gnn.Parameters) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]*EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	return stats, e.Params()
}

// requireSameTrajectory asserts two runs produced bit-identical training:
// per-epoch loss/accuracy and virtual-clock time compared exactly, and every
// parameter matrix compared bitwise.
func requireSameTrajectory(t *testing.T, label string,
	sa, sb []*EpochStats, pa, pb *gnn.Parameters) {
	t.Helper()
	for i := range sa {
		a, b := sa[i], sb[i]
		if a.Loss != b.Loss || a.Accuracy != b.Accuracy {
			t.Fatalf("%s: epoch %d diverged: loss %v vs %v, acc %v vs %v",
				label, i+1, a.Loss, b.Loss, a.Accuracy, b.Accuracy)
		}
		if a.VirtualSec != b.VirtualSec || a.MTEPS != b.MTEPS {
			t.Fatalf("%s: epoch %d virtual clock diverged: %v vs %v sec",
				label, i+1, a.VirtualSec, b.VirtualSec)
		}
	}
	for l := range pa.Weights {
		if !pa.Weights[l].Equal(pb.Weights[l]) || !pa.Biases[l].Equal(pb.Biases[l]) {
			t.Fatalf("%s: layer %d parameters diverged bitwise", label, l)
		}
	}
}

// With DRM off, prepare depends only on the batcher/RNG stream — never on
// weights — so overlapping prepare(i+1) with compute(i) must not change a
// single bit of the trajectory, at any GOMAXPROCS. 3 epochs × 5 iterations
// = 15 steps, past the ≥10-step bar.
func TestPipelinedBitwiseIdenticalToSerial(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			base := func() Config {
				cfg := baseConfig(t)
				cfg.DRM = false
				return cfg
			}
			serial := base()
			serial.Pipeline = PipelineSerial
			ss, ps := trainEpochs(t, serial, 3)

			prefetch := base()
			prefetch.Pipeline = PipelinePrefetch
			sp, pp := trainEpochs(t, prefetch, 3)

			requireSameTrajectory(t, "serial vs prefetch", ss, sp, ps, pp)
		})
	}
}

// The same invariant must hold on the CPU-only fleet (the serial fast path
// inside compute) and with tensor parallelism enabled — the prefetch worker
// and ParallelRows workers coexist.
func TestPipelinedBitwiseIdenticalSingleTrainer(t *testing.T) {
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)
	base := func() Config {
		cfg := baseConfig(t)
		cfg.Plat.Accels = nil
		cfg.DRM = false
		return cfg
	}
	serial := base()
	ss, ps := trainEpochs(t, serial, 3)
	prefetch := base()
	prefetch.Pipeline = PipelinePrefetch
	sp, pp := trainEpochs(t, prefetch, 3)
	requireSameTrajectory(t, "single-trainer serial vs prefetch", ss, sp, ps, pp)
}

// With DRM on, prepare(i+1) consumes the assignment one iteration late (the
// snapshot is taken before DRM reacts to iteration i). That lag is pinned
// bitwise against the serial oracle: the identical schedule run with no
// worker goroutine. Again at GOMAXPROCS 1 and 4 — scheduling cannot perturb
// which assignment a prepare sees.
func TestPipelinedDRMLagMatchesSerialOracle(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			cfg := baseConfig(t) // DRM on
			cfg.Pipeline = PipelinePrefetch
			sp, pp := trainEpochs(t, cfg, 3)

			oracle, err := NewEngine(baseConfig(t))
			if err != nil {
				t.Fatal(err)
			}
			so := make([]*EpochStats, 0, 3)
			for i := 0; i < 3; i++ {
				st, err := oracle.runEpochOracle()
				if err != nil {
					t.Fatal(err)
				}
				so = append(so, st)
			}
			requireSameTrajectory(t, "prefetch vs lagged oracle", sp, so, pp, oracle.Params())

			// The lag must also move the same assignment: DRM's final mapping
			// agrees across the two schedules.
			a, b := sp[2].Assignment, so[2].Assignment
			if a.CPUBatch != b.CPUBatch || a.SampThreads != b.SampThreads ||
				a.LoadThreads != b.LoadThreads || a.TrainThreads != b.TrainThreads ||
				a.AccelSampleFrac != b.AccelSampleFrac {
				t.Fatalf("DRM assignments diverged: %+v vs %+v", a, b)
			}
		})
	}
}

// RunEpoch degenerates to the inline pipelined schedule at GOMAXPROCS=1, so
// the worker hand-off is forced here explicitly: with DRM on and a single
// proc — cooperative scheduling at its most adversarial — the worker-backed
// epochs must still match the lagged serial oracle bit for bit.
func TestPipelinedWorkerForcedAtOneProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	forced, err := NewEngine(func() Config {
		cfg := baseConfig(t) // DRM on
		cfg.Pipeline = PipelinePrefetch
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sf := make([]*EpochStats, 0, 3)
	so := make([]*EpochStats, 0, 3)
	for i := 0; i < 3; i++ {
		stf, err := forced.runEpochAsync()
		if err != nil {
			t.Fatal(err)
		}
		sto, err := oracle.runEpochOracle()
		if err != nil {
			t.Fatal(err)
		}
		sf = append(sf, stf)
		so = append(so, sto)
	}
	requireSameTrajectory(t, "forced worker vs lagged oracle", sf, so,
		forced.Params(), oracle.Params())
}

// The virtual clock is an accounting convention: execution mode must not
// change what an iteration is *charged*, only when its stages run in
// wall-clock. With DRM off, per-epoch VirtualSec agrees exactly across
// serial, prefetch, and oracle schedules (the serial/prefetch half is also
// covered by requireSameTrajectory above; this pins the oracle too).
func TestVirtualClockUnchangedByExecutionMode(t *testing.T) {
	base := func() Config {
		cfg := baseConfig(t)
		cfg.DRM = false
		return cfg
	}
	serial, err := NewEngine(base())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(base())
	if err != nil {
		t.Fatal(err)
	}
	cfgP := base()
	cfgP.Pipeline = PipelinePrefetch
	prefetch, err := NewEngine(cfgP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ss, err := serial.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		so, err := oracle.runEpochOracle()
		if err != nil {
			t.Fatal(err)
		}
		sp, err := prefetch.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if ss.VirtualSec != so.VirtualSec || ss.VirtualSec != sp.VirtualSec {
			t.Fatalf("epoch %d: VirtualSec differs by mode: serial %v oracle %v prefetch %v",
				i+1, ss.VirtualSec, so.VirtualSec, sp.VirtualSec)
		}
	}
}

// ParsePipelineMode round-trips the flag values and rejects junk.
func TestParsePipelineMode(t *testing.T) {
	for _, want := range []PipelineMode{PipelineSerial, PipelinePrefetch} {
		got, err := ParsePipelineMode(want.String())
		if err != nil || got != want {
			t.Fatalf("round trip %v: got %v, err %v", want, got, err)
		}
	}
	if _, err := ParsePipelineMode("overlapped"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
