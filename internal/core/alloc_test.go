package core

import (
	"testing"

	"repro/internal/tensor"
)

// The whole training iteration — sampling, feature staging, pricing,
// propagation, gradient reduction, weight update, clock advance — must run
// allocation-free once warm. This is the end-to-end gate over the reuse
// discipline that is otherwise enforced piecewise (sampler.SampleInto,
// gnn.TrainStepWS, the workspace arenas): any new per-iteration make/clone
// anywhere in the loop fails it.
func TestTrainingIterationZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation gate is skipped under -race")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	cfg := baseConfig(t)
	cfg.Plat.Accels = nil // one CPU trainer: the serial fast path
	cfg.DRM = false
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := e.batcher.Next()
	iterate := func() {
		res, err := e.exec.RunIteration(targets)
		if err != nil {
			t.Fatal(err)
		}
		// The epoch loop's update path, verbatim (minus DRM).
		global, _, err := e.gsync.Reduce(res.Grad)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.replicas {
			e.opts[i].Step(e.replicas[i].Params, global)
		}
		e.clock.Advance(res.Stage)
	}
	// Warm every arena to steady state: the rng advances each iteration, so
	// sampled sizes vary and the retained storage must grow to its roof.
	for i := 0; i < 60; i++ {
		iterate()
	}
	if a := testing.AllocsPerRun(20, iterate); a != 0 {
		t.Fatalf("training iteration allocated %.1f times per run, want 0", a)
	}
}

// The pipelined steady state must be allocation-free too: with a live
// prefetch worker, one iteration is wait-for-prepared-slot, issue the next
// prepare (assignment snapshot + channel hand-off), compute, reduce, step,
// advance — none of which may allocate once the depth-2 ring is warm. The
// worker's own prepare allocations count against the gate (AllocsPerRun
// reads global malloc counters), so this covers both sides of the overlap.
func TestTrainingIterationZeroAllocPipelined(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation gate is skipped under -race")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	cfg := baseConfig(t)
	cfg.Plat.Accels = nil // one CPU trainer: the serial fast path
	cfg.DRM = false
	cfg.Pipeline = PipelinePrefetch
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := e.batcher.Next()
	p := e.startPrefetch()

	// Fill the pipeline: prepare slot 0 on the worker.
	s0 := e.slot(0)
	e.assign.CloneInto(&s0.assign)
	p.issue(s0, targets)

	it := 0
	iterate := func() {
		cur := e.slot(it % pipelineDepth)
		if err := p.wait(); err != nil {
			t.Fatal(err)
		}
		nxt := e.slot((it + 1) % pipelineDepth)
		e.assign.CloneInto(&nxt.assign)
		p.issue(nxt, targets)
		res, err := e.exec.compute(cur)
		if err != nil {
			t.Fatal(err)
		}
		// The epoch loop's update path, verbatim (minus DRM).
		global, _, err := e.gsync.Reduce(res.Grad)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.replicas {
			e.opts[i].Step(e.replicas[i].Params, global)
		}
		e.clock.Advance(res.Stage)
		it++
	}
	for i := 0; i < 60; i++ {
		iterate()
	}
	a := testing.AllocsPerRun(20, iterate)
	_ = p.wait() // settle the last issued prepare, then stop the worker
	p.stop()
	if a != 0 {
		t.Fatalf("pipelined training iteration allocated %.1f times per run, want 0", a)
	}
}

// heldOut (Evaluate(nil)'s vertex selection) must return exactly the
// non-training vertices — pinned against a map-based reference — and must
// not allocate once warm: it used to build a map[int32]bool over the
// training set plus an appended slice on every call, which the
// generation-stamped scratch replaces.
func TestEvaluateHeldOutScratch(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	inTrain := make(map[int32]bool, len(e.cfg.Data.TrainIdx))
	for _, v := range e.cfg.Data.TrainIdx {
		inTrain[v] = true
	}
	var want []int32
	for v := int32(0); int(v) < e.cfg.Data.Graph.NumVertices; v++ {
		if !inTrain[v] {
			want = append(want, v)
		}
	}
	for call := 0; call < 2; call++ { // second call reuses the scratch
		got := e.heldOut()
		if len(got) != len(want) {
			t.Fatalf("call %d: %d held-out vertices, want %d", call, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("call %d: held-out[%d] = %d, want %d", call, i, got[i], want[i])
			}
		}
	}
	if raceEnabled {
		return // exact allocation gate is skipped under -race
	}
	if a := testing.AllocsPerRun(10, func() { e.heldOut() }); a != 0 {
		t.Fatalf("heldOut allocated %.1f times per call once warm, want 0", a)
	}
}

// The serial fast path must not change what an iteration computes: a
// single-trainer fleet's epoch statistics and trained parameters stay
// bitwise identical whether the share arrives alone (serial path) or the
// batch is large enough that the concurrent path would have run — here we
// pin serial-path results across two identically seeded engines to catch
// nondeterminism sneaking into the scratch reuse.
func TestSerialIterationDeterministic(t *testing.T) {
	run := func() (*EpochStats, float32) {
		cfg := baseConfig(t)
		cfg.Plat.Accels = nil
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var st *EpochStats
		for i := 0; i < 2; i++ {
			if st, err = e.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		return st, e.Params().Weights[0].Data[0]
	}
	st1, w1 := run()
	st2, w2 := run()
	if st1.Loss != st2.Loss || st1.Accuracy != st2.Accuracy || w1 != w2 {
		t.Fatalf("serial path nondeterministic: loss %v vs %v, acc %v vs %v, w %v vs %v",
			st1.Loss, st2.Loss, st1.Accuracy, st2.Accuracy, w1, w2)
	}
}
