package core

import (
	"testing"

	"repro/internal/tensor"
)

// The whole training iteration — sampling, feature staging, pricing,
// propagation, gradient reduction, weight update, clock advance — must run
// allocation-free once warm. This is the end-to-end gate over the reuse
// discipline that is otherwise enforced piecewise (sampler.SampleInto,
// gnn.TrainStepWS, the workspace arenas): any new per-iteration make/clone
// anywhere in the loop fails it.
func TestTrainingIterationZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation gate is skipped under -race")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	cfg := baseConfig(t)
	cfg.Plat.Accels = nil // one CPU trainer: the serial fast path
	cfg.DRM = false
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := e.batcher.Next()
	iterate := func() {
		res, err := e.exec.RunIteration(targets)
		if err != nil {
			t.Fatal(err)
		}
		// The epoch loop's update path, verbatim (minus DRM).
		global, _, err := e.gsync.Reduce(res.Grad)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.replicas {
			e.opts[i].Step(e.replicas[i].Params, global)
		}
		e.clock.Advance(res.Stage)
	}
	// Warm every arena to steady state: the rng advances each iteration, so
	// sampled sizes vary and the retained storage must grow to its roof.
	for i := 0; i < 60; i++ {
		iterate()
	}
	if a := testing.AllocsPerRun(20, iterate); a != 0 {
		t.Fatalf("training iteration allocated %.1f times per run, want 0", a)
	}
}

// The serial fast path must not change what an iteration computes: a
// single-trainer fleet's epoch statistics and trained parameters stay
// bitwise identical whether the share arrives alone (serial path) or the
// batch is large enough that the concurrent path would have run — here we
// pin serial-path results across two identically seeded engines to catch
// nondeterminism sneaking into the scratch reuse.
func TestSerialIterationDeterministic(t *testing.T) {
	run := func() (*EpochStats, float32) {
		cfg := baseConfig(t)
		cfg.Plat.Accels = nil
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var st *EpochStats
		for i := 0; i < 2; i++ {
			if st, err = e.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		return st, e.Params().Weights[0].Data[0]
	}
	st1, w1 := run()
	st2, w2 := run()
	if st1.Loss != st2.Loss || st1.Accuracy != st2.Accuracy || w1 != w2 {
		t.Fatalf("serial path nondeterministic: loss %v vs %v, acc %v vs %v, w %v vs %v",
			st1.Loss, st2.Loss, st1.Accuracy, st2.Accuracy, w1, w2)
	}
}
