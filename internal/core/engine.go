package core

import (
	"fmt"
	"io"

	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/optim"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Engine is the runtime: the replica fleet and the composable layers that
// drive it (clock, stage executor, gradient sync).
type Engine struct {
	cfg      Config
	pm       *perfmodel.Model
	drmEng   *drm.Engine
	smp      *sampler.Sampler
	saint    *sampler.SaintSampler // non-nil when Config.UseSaint
	batcher  *sampler.Batcher
	replicas []*gnn.Model // replica 0 = CPU trainer, 1..n = accelerators
	trainers []Trainer    // device backends, aligned with replicas
	opts     []*optim.SGD
	assign   perfmodel.Assignment
	rng      *tensor.RNG
	epoch    int

	clock   Clock
	exec    StageExecutor
	gsync   GradientSync
	locator FeatureLocator

	// slots is the iteration-scratch ring, created lazily: each entry holds
	// everything one in-flight iteration needs (assignment snapshot, share
	// slices, retained mini-batches SampleInto refills, feature-staging
	// arenas, per-accelerator stage vectors, the result struct). Serial
	// execution uses slot 0 only; the software-pipelined epoch loop uses a
	// depth-2 ring so prepare(i+1) fills one slot while the trainers still
	// read the other. Together with the trainers' stepScratch the slots make
	// the whole steady-state training iteration — sample, gather, price,
	// propagate — allocation-free (gated by a test).
	slots [pipelineDepth]*iterSlot

	// prefetch is the per-engine channel pair the pipelined epoch loop's
	// prepare worker lives on, created on first pipelined epoch and reused
	// after (the worker itself is per-epoch so an idle engine holds no
	// goroutine).
	prefetch *prefetcher

	// eval* is Evaluate(nil)'s persistent scratch: a generation-stamped
	// membership stamp over all vertices (same trick as sampler.SampleInto)
	// and the reused held-out index slice.
	evalGen  uint32
	evalSeen []uint32
	evalIdx  []int32
}

// slot returns ring entry i, creating it on first use.
func (e *Engine) slot(i int) *iterSlot {
	if e.slots[i] == nil {
		e.slots[i] = &iterSlot{}
	}
	return e.slots[i]
}

// NewEngine validates the configuration and builds the runtime: one model
// replica per trainer (identically initialised — synchronous SGD keeps them
// in lock-step), the design-phase task mapping from the performance model,
// the DRM engine when enabled, and the runtime layers (defaulting to the
// single-node pipeline clock and identity gradient sync).
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("core: non-positive learning rate %v", cfg.LR)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: non-positive batch size %d", cfg.BatchSize)
	}
	if len(cfg.Model.Dims) < 2 {
		return nil, fmt.Errorf("core: model needs at least 2 dims, got %v", cfg.Model.Dims)
	}
	if cfg.Data.Features.Cols != cfg.Model.Dims[0] {
		return nil, fmt.Errorf("core: dataset features are %d-dim, model expects %d",
			cfg.Data.Features.Cols, cfg.Model.Dims[0])
	}
	numClasses := cfg.Model.Dims[len(cfg.Model.Dims)-1]
	for _, l := range cfg.Data.Labels {
		if l < 0 || int(l) >= numClasses {
			return nil, fmt.Errorf("core: label %d outside model's %d classes", l, numClasses)
		}
	}
	work := perfmodel.Workload{
		Spec: cfg.Data.Spec, Model: cfg.Model.Kind,
		BatchSize: cfg.BatchSize, Fanouts: cfg.Fanouts,
	}
	if cfg.QuantizeTransfer {
		work.TransferBytesPerFeat = 1
	}
	pm, err := perfmodel.New(cfg.Plat, work)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	smp, err := sampler.New(cfg.Data.Graph, cfg.Fanouts, cfg.Data.Labels)
	if err != nil {
		return nil, err
	}
	var saint *sampler.SaintSampler
	if cfg.UseSaint {
		walk := cfg.SaintWalkLen
		if walk <= 0 {
			walk = 3
		}
		saint, err = sampler.NewSaint(cfg.Data.Graph, cfg.BatchSize, walk,
			len(cfg.Model.Dims)-1, cfg.Data.Labels)
		if err != nil {
			return nil, err
		}
	}
	batcher, err := sampler.NewBatcher(cfg.Data.TrainIdx, effectiveTotalBatch(cfg), rng.Split())
	if err != nil {
		return nil, err
	}
	nTrainers := 1 + len(cfg.Plat.Accels) // CPU replica always exists; unused if !Hybrid
	replicas := make([]*gnn.Model, nTrainers)
	opts := make([]*optim.SGD, nTrainers)
	initRNG := rng.Split()
	m0, err := gnn.NewModel(cfg.Model, initRNG)
	if err != nil {
		return nil, err
	}
	for i := range replicas {
		replicas[i] = &gnn.Model{Cfg: cfg.Model, Params: m0.Params.Clone()}
		opt, err := optim.NewSGD(cfg.LR, cfg.Momentum)
		if err != nil {
			return nil, err
		}
		opts[i] = opt
	}
	e := &Engine{
		cfg: cfg, pm: pm, smp: smp, saint: saint, batcher: batcher,
		replicas: replicas, opts: opts, rng: rng,
		assign:  pm.InitialAssignment(cfg.Hybrid),
		gsync:   cfg.Sync,
		locator: cfg.Locator,
	}
	if e.gsync == nil {
		e.gsync = localSync{}
	}
	e.clock = NewPipelineClock(cfg.TFP, cfg.networked())
	e.trainers = newTrainers(e)
	e.exec = &hybridExecutor{e: e}
	if cfg.DRM {
		e.drmEng = drm.New(cfg.Plat.TotalCPUCores())
		e.drmEng.FusedPrefetch = !cfg.TFP
	}
	return e, nil
}

// Assignment returns the current task mapping (after any DRM moves).
func (e *Engine) Assignment() perfmodel.Assignment { return e.assign.Clone() }

// Trainers returns the fleet's device backends (index 0 is the CPU trainer,
// i+1 drives Plat.Accels[i]) — introspection for tests and tooling.
func (e *Engine) Trainers() []Trainer { return e.trainers }

// Params returns trainer 0's parameters (all replicas are identical; the
// invariant is checked by ReplicasInSync).
func (e *Engine) Params() *gnn.Parameters { return e.replicas[0].Params }

// Evaluate runs exact full-graph inference with the trained weights and
// returns accuracy over idx (pass nil to evaluate every non-training
// vertex — the held-out set).
func (e *Engine) Evaluate(idx []int32) (float64, error) {
	if idx == nil {
		idx = e.heldOut()
	}
	return e.replicas[0].Evaluate(e.cfg.Data.Graph, e.cfg.Data.Features, e.cfg.Data.Labels, idx)
}

// heldOut returns every non-training vertex, into scratch reused across
// calls. Training-set membership is tracked with a generation-stamped array
// rather than a per-call map (the same trick as sampler.SampleInto): bumping
// evalGen invalidates the previous call's stamps in O(1), so repeated
// evaluation — the epoch loop's per-epoch accuracy probe — allocates nothing
// after the first call.
func (e *Engine) heldOut() []int32 {
	n := e.cfg.Data.Graph.NumVertices
	if len(e.evalSeen) < n {
		e.evalSeen = make([]uint32, n)
		e.evalIdx = make([]int32, 0, n)
	}
	e.evalGen++
	if e.evalGen == 0 { // wrapped: stale stamps could collide, clear and restart
		for i := range e.evalSeen {
			e.evalSeen[i] = 0
		}
		e.evalGen = 1
	}
	for _, v := range e.cfg.Data.TrainIdx {
		e.evalSeen[v] = e.evalGen
	}
	idx := e.evalIdx[:0]
	for v := int32(0); int(v) < n; v++ {
		if e.evalSeen[v] != e.evalGen {
			idx = append(idx, v)
		}
	}
	e.evalIdx = idx
	return idx
}

// SaveModel writes a checkpoint of the trained weights.
func (e *Engine) SaveModel(w io.Writer) error { return e.replicas[0].Save(w) }

// ReplicasInSync reports the maximum parameter divergence across replicas —
// zero when the synchronous-SGD protocol is working.
func (e *Engine) ReplicasInSync() float64 {
	var worst float64
	ref := e.replicas[0].Params
	for _, r := range e.replicas[1:] {
		for l := range ref.Weights {
			if d := ref.Weights[l].MaxAbsDiff(r.Params.Weights[l]); d > worst {
				worst = d
			}
			if d := ref.Biases[l].MaxAbsDiff(r.Params.Biases[l]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
