package core

import "repro/internal/gnn"

// GradientSync is the boundary between the engine's local all-reduce (the
// DONE/ACK Synchronizer averaging its own trainers) and the gradient every
// replica finally applies. On a single node they are the same thing; in a
// multi-node run the coordinator injects an implementation that exchanges
// the local average with the other shards (a ring all-reduce) and reports
// the virtual network seconds the exchange cost.
type GradientSync interface {
	// Reduce takes the locally averaged gradient and returns the globally
	// averaged one plus the virtual seconds of network time charged for the
	// exchange. Implementations must not retain or mutate local after
	// returning; the returned gradient may alias local.
	Reduce(local *gnn.Gradients) (global *gnn.Gradients, netSec float64, err error)
}

// localSync is the single-node GradientSync: the local average is already
// global, and no network time is charged.
type localSync struct{}

func (localSync) Reduce(local *gnn.Gradients) (*gnn.Gradients, float64, error) {
	return local, 0, nil
}

// FeatureLocator tells the runtime where input feature rows live. A shard of
// a partitioned graph owns only its partition's features; rows owned by
// other shards cross the network and are charged on the virtual clock. Nil
// (single node) means every row is local and free.
type FeatureLocator interface {
	// RemoteRows returns how many of the given input vertices' feature rows
	// live on a remote shard.
	RemoteRows(nodes []int32) int
	// FetchSec returns the virtual seconds to pull n remote feature rows
	// over the interconnect.
	FetchSec(n int) float64
}
