package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Trainer is one device's training backend in the replica fleet: it owns the
// numeric forward/backward over the device's model replica and the virtual
// pricing of that propagation. The coordinator (hybridExecutor) owns
// everything around it — share splitting, feature staging, the DONE/ACK
// gradient protocol and the weight update — so backends compose freely: a
// CPU trainer, a generic accelerator trainer, and the FPGA dataflow trainer
// that executes the §IV-C scatter-gather + systolic kernels live side by
// side in one fleet.
type Trainer interface {
	// Device returns the hardware this trainer runs on.
	Device() hw.Device
	// Step runs one training step over the trainer's mini-batch share. x
	// holds the gathered (and, for accelerators, transferred) input
	// features. The returned gradients are the replica's mean gradient,
	// unscaled; PropSec is the virtual propagation time charged for the
	// step, including the device's runtime overheads. The result is owned
	// by the trainer's scratch and valid until its next Step — the
	// coordinator consumes it within the iteration.
	Step(mb *sampler.MiniBatch, x *tensor.Matrix) (*StepResult, error)
}

// StepResult is one trainer step's output.
type StepResult struct {
	Grads   *gnn.Gradients
	Loss    float64
	Acc     float64
	PropSec float64
	// FPGA carries the dataflow kernels' hardware accounting when the step
	// executed on the FPGA backend (nil otherwise).
	FPGA *accel.ForwardStats
}

// stepScratch is the per-trainer reusable numeric state: a workspace arena
// for every forward/backward intermediate, the reusable layer bookkeeping,
// and persistent gradient buffers. Reset per step, it makes the trainer's
// steady-state numeric path allocation-free (the arena only grows until the
// largest mini-batch share has been seen). Each trainer owns its scratch the
// way it owns its replica — never shared across the fleet.
type stepScratch struct {
	ws    *tensor.Workspace
	st    gnn.ForwardState
	grads *gnn.Gradients
	sizes perfmodel.Sizes // reused mini-batch size vectors for pricing
	res   StepResult      // reused result; valid until the next Step
}

// step runs one allocation-free training step of m over the scratch. The
// returned gradients are owned by the scratch and valid until the next step:
// the coordinator consumes them within the iteration (scale, all-reduce),
// which is exactly their lifetime.
func (s *stepScratch) step(m *gnn.Model, mb *sampler.MiniBatch, x *tensor.Matrix) (*gnn.Gradients, float64, float64, error) {
	if s.ws == nil {
		s.ws = tensor.NewWorkspace()
		s.grads = gnn.NewGradients(m.Params)
	}
	s.ws.Reset()
	loss, acc, err := m.TrainStepWS(s.ws, &s.st, mb, x, s.grads)
	return s.grads, loss, acc, err
}

// newTrainers builds the fleet's backends: index 0 is the CPU trainer,
// index i+1 drives cfg.Plat.Accels[i]. FPGA-kind devices get the dataflow
// backend; every other accelerator kind gets the analytically priced
// generic trainer.
func newTrainers(e *Engine) []Trainer {
	out := make([]Trainer, 1+len(e.cfg.Plat.Accels))
	out[0] = &cpuTrainer{e: e}
	for i, dev := range e.cfg.Plat.Accels {
		if dev.Kind == hw.FPGA {
			out[i+1] = &fpgaTrainer{
				e: e, idx: i + 1, dev: dev,
				backend: accel.U250Backend(e.cfg.Model.Dims[0]),
			}
		} else {
			out[i+1] = &accelTrainer{e: e, idx: i + 1, dev: dev}
		}
	}
	return out
}

// cpuTrainer trains on the host CPU with the thread slice the task mapping
// grants it; its replica reads features in place.
type cpuTrainer struct {
	e  *Engine
	sc stepScratch
}

func (t *cpuTrainer) Device() hw.Device { return t.e.cfg.Plat.CPU }

func (t *cpuTrainer) Step(mb *sampler.MiniBatch, x *tensor.Matrix) (*StepResult, error) {
	e := t.e
	grads, loss, acc, err := t.sc.step(e.replicas[0], mb, x)
	if err != nil {
		return nil, err
	}
	share := float64(e.assign.TrainThreads) / float64(e.cfg.Plat.TotalCPUCores())
	if !e.cfg.Hybrid {
		share = 1 // CPU-only platform fallback
	}
	t.sc.res = StepResult{
		Grads: grads, Loss: loss, Acc: acc,
		PropSec: e.pm.PropWithOverheads(e.cfg.Plat.CPU, sizesInto(&t.sc.sizes, mb), share),
	}
	return &t.sc.res, nil
}

// accelTrainer is the generic accelerator backend (the paper's GPU path):
// reference numerics on the replica, propagation priced by Eq. 10 for the
// device.
type accelTrainer struct {
	e   *Engine
	idx int
	dev hw.Device
	sc  stepScratch
}

func (t *accelTrainer) Device() hw.Device { return t.dev }

func (t *accelTrainer) Step(mb *sampler.MiniBatch, x *tensor.Matrix) (*StepResult, error) {
	grads, loss, acc, err := t.sc.step(t.e.replicas[t.idx], mb, x)
	if err != nil {
		return nil, err
	}
	t.sc.res = StepResult{
		Grads: grads, Loss: loss, Acc: acc,
		PropSec: t.e.pm.PropWithOverheads(t.dev, sizesInto(&t.sc.sizes, mb), 1),
	}
	return &t.sc.res, nil
}

// fpgaTrainer drives the paper's §IV-C hardware dataflow (Fig. 6): the
// forward pass executes through the scatter-gather engine (source-sorted
// edges, O(|V0|) external traffic) and the systolic array, and the measured
// kernel cycles — not the analytic Eq. 10 — are what the virtual clock is
// charged for the forward half. The backward half (which the dataflow
// kernel does not implement) stays analytically priced. Gradients come from
// the replica's reference backward: the kernels are functionally equivalent
// to the reference forward up to float reassociation (asserted in
// internal/accel's tests and at fleet level in core's tests), and using one
// numeric path for every trainer is what keeps the whole fleet's
// synchronous SGD bit-exact. The price is a second numeric forward per step
// — a deliberate trade in a simulator whose wall-clock is not the product.
type fpgaTrainer struct {
	e       *Engine
	idx     int
	dev     hw.Device
	backend accel.Backend
	sc      stepScratch
}

func (t *fpgaTrainer) Device() hw.Device { return t.dev }

func (t *fpgaTrainer) Step(mb *sampler.MiniBatch, x *tensor.Matrix) (*StepResult, error) {
	e := t.e
	_, stats, err := t.backend.Forward(e.replicas[t.idx], mb, x)
	if err != nil {
		return nil, fmt.Errorf("core: fpga trainer %d: %w", t.idx, err)
	}
	grads, loss, acc, err := t.sc.step(e.replicas[t.idx], mb, x)
	if err != nil {
		return nil, err
	}
	sz := sizesInto(&t.sc.sizes, mb)
	prop := stats.Sec + e.pm.PropBackwardFor(t.dev, sz, 1)
	t.sc.res = StepResult{
		Grads: grads, Loss: loss, Acc: acc,
		PropSec: perfmodel.DeviceOverheads(t.dev, prop),
		FPGA:    stats,
	}
	return &t.sc.res, nil
}
