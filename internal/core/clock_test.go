package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gnn"
	"repro/internal/perfmodel"
)

// The pipeline clock is its own layer: feed it a known stage sequence and
// check the max-plus recurrence directly, without any engine around it.
func TestPipelineClockMaxPlus(t *testing.T) {
	c := NewPipelineClock(false, false)
	st := perfmodel.StageTimes{SampCPU: 10, Load: 1, TrainCPU: 5}
	// Stage times: samp=10+b, load=1+b, prop=5+b (b = barrier).
	c.Advance(st)
	first := c.Now()
	want := 16 + 3*runtimeBarrierSec
	if math.Abs(first-want) > 1e-12 {
		t.Fatalf("fill iteration: got %v, want %v", first, want)
	}
	// Steady state: each further iteration costs the bottleneck stage (samp).
	c.Advance(st)
	if d := c.Now() - first; math.Abs(d-(10+runtimeBarrierSec)) > 1e-12 {
		t.Fatalf("steady-state iteration: got %v, want bottleneck %v", d, 10+runtimeBarrierSec)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind the clock")
	}
}

// A networked clock overlaps NetFetch with local stages (it only costs time
// when it is the bottleneck) and serialises NetSync into propagation.
func TestPipelineClockNetworkStages(t *testing.T) {
	iter := func(netFetch, netSync float64) float64 {
		c := NewPipelineClock(true, true)
		st := perfmodel.StageTimes{SampCPU: 10, Load: 1, Trans: 1, TrainCPU: 5,
			NetFetch: netFetch, NetSync: netSync}
		c.Advance(st) // fill
		before := c.Now()
		c.Advance(st)
		return c.Now() - before
	}
	base := iter(0, 0)
	// A sub-bottleneck fetch is hidden by the pipeline.
	if got := iter(5, 0); math.Abs(got-base) > 1e-12 {
		t.Fatalf("overlapped NetFetch leaked into the clock: %v vs %v", got, base)
	}
	// A super-bottleneck fetch becomes the pipeline bottleneck.
	if got := iter(20, 0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("bottleneck NetFetch: steady iteration %v, want 20", got)
	}
	// NetSync is serial: it extends the propagation stage.
	if got := iter(0, 7); math.Abs(got-(5+7+runtimeBarrierSec)) > 1e-9 {
		t.Fatalf("NetSync not serialised: %v", got)
	}
}

// Zero-valued network stages must leave a networked clock identical to the
// single-node one — a 1-node multi-node run keeps the single-node timing.
func TestNetworkedClockDegenerates(t *testing.T) {
	a := NewPipelineClock(true, false)
	b := NewPipelineClock(true, true)
	st := perfmodel.StageTimes{SampCPU: 3, Load: 2, Trans: 4, TrainCPU: 5, Sync: 1}
	for i := 0; i < 5; i++ {
		a.Advance(st)
		b.Advance(st)
	}
	if a.Now() != b.Now() {
		t.Fatalf("networked clock with zero net stages drifted: %v vs %v", a.Now(), b.Now())
	}
}

// stubExecutor swaps in for the hybrid pipeline — the layering contract that
// lets epoch orchestration be tested without sampling or training.
type stubExecutor struct {
	st    perfmodel.StageTimes
	calls int
}

func (s *stubExecutor) RunIteration(targets []int32) (*IterResult, error) {
	s.calls++
	return &IterResult{
		Stage: s.st, LossSum: 2 * float64(len(targets)),
		Correct: float64(len(targets)), Targets: len(targets), Edges: 100,
	}, nil
}

// prepare/compute satisfy StageExecutor for the pipelined loop; the stub
// parks the targets on the slot and replays RunIteration at compute time.
func (s *stubExecutor) prepare(sl *iterSlot, targets []int32) error {
	if len(sl.shares) != 1 {
		sl.shares = make([][]int32, 1)
	}
	sl.shares[0] = targets
	return nil
}

func (s *stubExecutor) compute(sl *iterSlot) (*IterResult, error) {
	return s.RunIteration(sl.shares[0])
}

// failingSync mimics a dead multi-node ring: the epoch loop must surface
// its error instead of applying a half-reduced gradient.
type failingSync struct{ err error }

func (s failingSync) Reduce(g *gnn.Gradients) (*gnn.Gradients, float64, error) {
	return nil, 0, s.err
}

func TestRunEpochSurfacesSyncError(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Sync = failingSync{err: errors.New("peer node died")}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunEpoch(); err == nil || err.Error() != "peer node died" {
		t.Fatalf("RunEpoch returned %v, want the sync error", err)
	}
}

func TestRunEpochWithSwappedExecutor(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubExecutor{st: perfmodel.StageTimes{SampCPU: 1, TrainCPU: 1}}
	e.exec = stub
	st, err := e.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stub.calls != st.Iterations || stub.calls == 0 {
		t.Fatalf("executor called %d times for %d iterations", stub.calls, st.Iterations)
	}
	if math.Abs(st.Loss-2) > 1e-9 || math.Abs(st.Accuracy-1) > 1e-9 {
		t.Fatalf("orchestrator mis-aggregated stub stats: %+v", st)
	}
	if st.VirtualSec <= 0 {
		t.Fatal("clock did not advance on stub stage times")
	}
}
