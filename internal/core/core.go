// Package core is HyScale-GNN itself: the hybrid training runtime of paper
// §III. It couples
//
//   - real numeric execution — every trainer (the CPU trainer and each
//     simulated accelerator trainer) is a goroutine running the actual GNN
//     forward/backward (internal/gnn) on its own model replica, coordinated
//     through the DONE/ACK protocol (paper Listing 1) via the gradient
//     Synchronizer, so losses, accuracies and the synchronous-SGD
//     equivalence are real, measured properties; with
//
//   - a virtual clock — each pipeline stage is charged the duration the
//     device models (internal/hw, via internal/perfmodel's primitives) assign
//     to the actually-sampled mini-batches, advanced with the same max-plus
//     pipeline recurrence the paper's Fig. 7 depicts. Epoch times and MTEPS
//     reported by the engine are virtual-clock readings.
//
// The Dynamic Resource Management engine (internal/drm) observes the
// virtual stage times each iteration and re-balances work and threads,
// exactly as in paper Algorithm 1.
//
// The runtime is layered so one engine can drive one node or one shard of a
// multi-node fleet (internal/cluster.MultiNode):
//
//   - engine.go — construction, validation, replica fleet, accessors;
//   - clock.go — the Clock interface and the max-plus PipelineClock;
//   - stages.go — the StageExecutor interface and the hybrid pipeline
//     executor (sampling, loading/transfer, concurrent trainers, DONE/ACK);
//   - sync.go — the GradientSync boundary between the local all-reduce and
//     the globally applied gradient, and the FeatureLocator that prices
//     remote feature rows;
//   - epoch.go — epoch orchestration tying the layers together.
package core

import (
	"repro/internal/accel"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// Config assembles a training run.
type Config struct {
	Plat     hw.Platform
	Data     *datagen.Dataset
	Model    gnn.Config
	LR       float32
	Momentum float32

	BatchSize int   // per-trainer mini-batch targets (paper: 1024)
	Fanouts   []int // neighbor fanouts (paper: 25, 10)

	// UseSaint switches mini-batch production from layered neighbor
	// sampling to GraphSAINT random-walk subgraphs (the paper's reference
	// [29]; §V models sampling per-algorithm by profiling, which is exactly
	// how the virtual clock charges it here). SaintWalkLen is the walk
	// length (default 3); each trainer's share size becomes its root count.
	UseSaint     bool
	SaintWalkLen int

	Hybrid bool // CPU trainer participates
	TFP    bool // two-stage feature prefetching
	DRM    bool // dynamic resource management
	// QuantizeTransfer sends accelerator-bound features across PCIe as
	// per-row int8 (the paper's §VIII extension): the virtual clock charges
	// 1 byte/element and the numeric path injects the real quantization
	// error, so its effect on convergence is measured, not assumed.
	QuantizeTransfer bool

	// Pipeline selects the epoch loop's execution schedule: PipelineSerial
	// (the zero value) runs prepare and compute back to back;
	// PipelinePrefetch overlaps prepare(i+1) with compute(i) on a prefetch
	// worker — the paper's Fig. 4/5 pipelined execution, executed rather
	// than merely charged. The virtual clock and (with DRM off) the training
	// trajectory are identical across modes; see pipeline.go.
	Pipeline PipelineMode

	Seed uint64

	// Sync bridges the locally averaged gradient to the globally applied
	// one. Nil selects the single-node identity sync; the multi-node
	// coordinator injects a cross-node ring all-reduce here.
	Sync GradientSync
	// Locator tells the runtime which input feature rows are remote and
	// what fetching them costs on the virtual clock. Nil means every
	// feature is local (single-node operation).
	Locator FeatureLocator
}

// networked reports whether the engine drives one shard of a multi-node run
// and therefore carries network stages on its pipeline clock.
func (c Config) networked() bool { return c.Sync != nil || c.Locator != nil }

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch      int
	Loss       float64 // target-weighted mean loss
	Accuracy   float64 // target-weighted training accuracy
	VirtualSec float64 // virtual-clock epoch time
	MTEPS      float64 // Eq. 5 on the virtual clock
	Iterations int
	Assignment perfmodel.Assignment

	// Multi-node network charges accumulated over the epoch (zero on a
	// single node): remote-feature-fetch and inter-node all-reduce virtual
	// seconds, and the number of feature rows that crossed the NIC.
	NetFetchSec float64
	NetSyncSec  float64
	RemoteRows  int

	// FPGA aggregates the dataflow trainers' hardware accounting over the
	// epoch: scatter-gather and systolic cycles, external feature traffic,
	// and measured kernel seconds. All zero when no FPGA trainer executed.
	FPGA accel.ForwardStats
}

// effectiveTotalBatch is the global batch per iteration, clamped to the
// training-set size (scaled datasets can be smaller than 1024×n).
func effectiveTotalBatch(cfg Config) int {
	n := len(cfg.Plat.Accels)
	if n == 0 {
		n = 1
	}
	total := cfg.BatchSize * n
	if total > len(cfg.Data.TrainIdx) {
		total = len(cfg.Data.TrainIdx)
	}
	return total
}
