// Package core is HyScale-GNN itself: the hybrid training runtime of paper
// §III. It couples
//
//   - real numeric execution — every trainer (the CPU trainer and each
//     simulated accelerator trainer) is a goroutine running the actual GNN
//     forward/backward (internal/gnn) on its own model replica, coordinated
//     through the DONE/ACK protocol (paper Listing 1) via the gradient
//     Synchronizer, so losses, accuracies and the synchronous-SGD
//     equivalence are real, measured properties; with
//
//   - a virtual clock — each pipeline stage is charged the duration the
//     device models (internal/hw, via internal/perfmodel's primitives) assign
//     to the actually-sampled mini-batches, advanced with the same max-plus
//     pipeline recurrence the paper's Fig. 7 depicts. Epoch times and MTEPS
//     reported by the engine are virtual-clock readings.
//
// The Dynamic Resource Management engine (internal/drm) observes the
// virtual stage times each iteration and re-balances work and threads,
// exactly as in paper Algorithm 1.
package core

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/optim"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Config assembles a training run.
type Config struct {
	Plat     hw.Platform
	Data     *datagen.Dataset
	Model    gnn.Config
	LR       float32
	Momentum float32

	BatchSize int   // per-trainer mini-batch targets (paper: 1024)
	Fanouts   []int // neighbor fanouts (paper: 25, 10)

	// UseSaint switches mini-batch production from layered neighbor
	// sampling to GraphSAINT random-walk subgraphs (the paper's reference
	// [29]; §V models sampling per-algorithm by profiling, which is exactly
	// how the virtual clock charges it here). SaintWalkLen is the walk
	// length (default 3); each trainer's share size becomes its root count.
	UseSaint     bool
	SaintWalkLen int

	Hybrid bool // CPU trainer participates
	TFP    bool // two-stage feature prefetching
	DRM    bool // dynamic resource management
	// QuantizeTransfer sends accelerator-bound features across PCIe as
	// per-row int8 (the paper's §VIII extension): the virtual clock charges
	// 1 byte/element and the numeric path injects the real quantization
	// error, so its effect on convergence is measured, not assumed.
	QuantizeTransfer bool

	Seed uint64
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch      int
	Loss       float64 // target-weighted mean loss
	Accuracy   float64 // target-weighted training accuracy
	VirtualSec float64 // virtual-clock epoch time
	MTEPS      float64 // Eq. 5 on the virtual clock
	Iterations int
	Assignment perfmodel.Assignment
}

// Engine is the runtime.
type Engine struct {
	cfg      Config
	pm       *perfmodel.Model
	drmEng   *drm.Engine
	smp      *sampler.Sampler
	saint    *sampler.SaintSampler // non-nil when Config.UseSaint
	batcher  *sampler.Batcher
	replicas []*gnn.Model // replica 0 = CPU trainer, 1..n = accelerators
	opts     []*optim.SGD
	assign   perfmodel.Assignment
	rng      *tensor.RNG
	epoch    int

	// prevDone carries the pipeline state (max-plus) across iterations.
	prevDone []float64
	clock    float64
}

// NewEngine validates the configuration and builds the runtime: one model
// replica per trainer (identically initialised — synchronous SGD keeps them
// in lock-step), the design-phase task mapping from the performance model,
// and the DRM engine when enabled.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("core: non-positive learning rate %v", cfg.LR)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: non-positive batch size %d", cfg.BatchSize)
	}
	if len(cfg.Model.Dims) < 2 {
		return nil, fmt.Errorf("core: model needs at least 2 dims, got %v", cfg.Model.Dims)
	}
	if cfg.Data.Features.Cols != cfg.Model.Dims[0] {
		return nil, fmt.Errorf("core: dataset features are %d-dim, model expects %d",
			cfg.Data.Features.Cols, cfg.Model.Dims[0])
	}
	numClasses := cfg.Model.Dims[len(cfg.Model.Dims)-1]
	for _, l := range cfg.Data.Labels {
		if l < 0 || int(l) >= numClasses {
			return nil, fmt.Errorf("core: label %d outside model's %d classes", l, numClasses)
		}
	}
	work := perfmodel.Workload{
		Spec: cfg.Data.Spec, Model: cfg.Model.Kind,
		BatchSize: cfg.BatchSize, Fanouts: cfg.Fanouts,
	}
	if cfg.QuantizeTransfer {
		work.TransferBytesPerFeat = 1
	}
	pm, err := perfmodel.New(cfg.Plat, work)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	smp, err := sampler.New(cfg.Data.Graph, cfg.Fanouts, cfg.Data.Labels)
	if err != nil {
		return nil, err
	}
	var saint *sampler.SaintSampler
	if cfg.UseSaint {
		walk := cfg.SaintWalkLen
		if walk <= 0 {
			walk = 3
		}
		saint, err = sampler.NewSaint(cfg.Data.Graph, cfg.BatchSize, walk,
			len(cfg.Model.Dims)-1, cfg.Data.Labels)
		if err != nil {
			return nil, err
		}
	}
	batcher, err := sampler.NewBatcher(cfg.Data.TrainIdx, effectiveTotalBatch(cfg), rng.Split())
	if err != nil {
		return nil, err
	}
	nTrainers := 1 + len(cfg.Plat.Accels) // CPU replica always exists; unused if !Hybrid
	replicas := make([]*gnn.Model, nTrainers)
	opts := make([]*optim.SGD, nTrainers)
	initRNG := rng.Split()
	m0, err := gnn.NewModel(cfg.Model, initRNG)
	if err != nil {
		return nil, err
	}
	for i := range replicas {
		replicas[i] = &gnn.Model{Cfg: cfg.Model, Params: m0.Params.Clone()}
		opt, err := optim.NewSGD(cfg.LR, cfg.Momentum)
		if err != nil {
			return nil, err
		}
		opts[i] = opt
	}
	e := &Engine{
		cfg: cfg, pm: pm, smp: smp, saint: saint, batcher: batcher,
		replicas: replicas, opts: opts, rng: rng,
		assign: pm.InitialAssignment(cfg.Hybrid),
	}
	if cfg.DRM {
		e.drmEng = drm.New(cfg.Plat.TotalCPUCores())
		e.drmEng.FusedPrefetch = !cfg.TFP
	}
	e.resetPipeline()
	return e, nil
}

// effectiveTotalBatch is the global batch per iteration, clamped to the
// training-set size (scaled datasets can be smaller than 1024×n).
func effectiveTotalBatch(cfg Config) int {
	n := len(cfg.Plat.Accels)
	if n == 0 {
		n = 1
	}
	total := cfg.BatchSize * n
	if total > len(cfg.Data.TrainIdx) {
		total = len(cfg.Data.TrainIdx)
	}
	return total
}

// Assignment returns the current task mapping (after any DRM moves).
func (e *Engine) Assignment() perfmodel.Assignment { return e.assign.Clone() }

// Params returns trainer 0's parameters (all replicas are identical; the
// invariant is checked by ReplicasInSync).
func (e *Engine) Params() *gnn.Parameters { return e.replicas[0].Params }

// Evaluate runs exact full-graph inference with the trained weights and
// returns accuracy over idx (pass nil to evaluate every non-training
// vertex — the held-out set).
func (e *Engine) Evaluate(idx []int32) (float64, error) {
	if idx == nil {
		inTrain := make(map[int32]bool, len(e.cfg.Data.TrainIdx))
		for _, v := range e.cfg.Data.TrainIdx {
			inTrain[v] = true
		}
		for v := int32(0); int(v) < e.cfg.Data.Graph.NumVertices; v++ {
			if !inTrain[v] {
				idx = append(idx, v)
			}
		}
	}
	return e.replicas[0].Evaluate(e.cfg.Data.Graph, e.cfg.Data.Features, e.cfg.Data.Labels, idx)
}

// SaveModel writes a checkpoint of the trained weights.
func (e *Engine) SaveModel(w io.Writer) error { return e.replicas[0].Save(w) }

// ReplicasInSync reports the maximum parameter divergence across replicas —
// zero when the synchronous-SGD protocol is working.
func (e *Engine) ReplicasInSync() float64 {
	var worst float64
	ref := e.replicas[0].Params
	for _, r := range e.replicas[1:] {
		for l := range ref.Weights {
			if d := ref.Weights[l].MaxAbsDiff(r.Params.Weights[l]); d > worst {
				worst = d
			}
			if d := ref.Biases[l].MaxAbsDiff(r.Params.Biases[l]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func (e *Engine) resetPipeline() {
	n := 3
	if e.cfg.TFP {
		n = 4
	}
	e.prevDone = make([]float64, n)
	e.clock = 0
}

// deviceShare splits the global batch of targets according to the current
// assignment. Index 0 is the CPU trainer (may be empty).
func (e *Engine) deviceShare(targets []int32) [][]int32 {
	total := e.assign.TotalBatch()
	nAcc := len(e.cfg.Plat.Accels)
	shares := make([][]int32, nAcc+1)
	if total == 0 {
		shares[0] = targets
		return shares
	}
	cursor := 0
	take := func(n int) []int32 {
		if cursor+n > len(targets) {
			n = len(targets) - cursor
		}
		s := targets[cursor : cursor+n]
		cursor += n
		return s
	}
	shares[0] = take(len(targets) * e.assign.CPUBatch / total)
	for i := 0; i < nAcc; i++ {
		if i == nAcc-1 {
			shares[i+1] = targets[cursor:]
			cursor = len(targets)
		} else {
			shares[i+1] = take(len(targets) * e.assign.AccelBatch[i] / total)
		}
	}
	if nAcc == 0 {
		shares[0] = targets
	}
	return shares
}

// trainerResult carries one trainer's output back to the coordinator.
type trainerResult struct {
	idx     int
	avg     *gnn.Gradients // broadcast result of the all-reduce
	loss    float64
	correct float64
	targets int
	propSec float64 // virtual propagation time on this device
	err     error
}

// actualSizes converts a sampled mini-batch into perfmodel.Sizes.
func actualSizes(mb *sampler.MiniBatch) perfmodel.Sizes {
	L := len(mb.Blocks)
	s := perfmodel.Sizes{VL: make([]float64, L+1), EL: make([]float64, L)}
	s.VL[0] = float64(len(mb.Blocks[0].Src))
	for l := 0; l < L; l++ {
		s.VL[l+1] = float64(len(mb.Blocks[l].Dst))
		s.EL[l] = float64(mb.Blocks[l].NumEdges())
	}
	return s
}

// RunEpoch trains one full epoch and returns its statistics.
func (e *Engine) RunEpoch() (*EpochStats, error) {
	e.epoch++
	iters := e.batcher.BatchesPerEpoch()
	stats := &EpochStats{Epoch: e.epoch, Iterations: iters}
	epochStart := e.clock
	var lossSum, accSum float64
	var targetSum int
	var edgeSum float64

	for it := 0; it < iters; it++ {
		targets := e.batcher.Next()
		shares := e.deviceShare(targets)

		// --- Stage 1: Mini-batch Sampling (real work + virtual charge).
		batches := make([]*sampler.MiniBatch, len(shares))
		var sampEdgesCPU, sampEdgesAccel float64
		for i, share := range shares {
			if len(share) == 0 {
				continue
			}
			var mb *sampler.MiniBatch
			var err error
			if e.saint != nil {
				// GraphSAINT: the share size becomes this trainer's root
				// count; targets from the batcher only size the shares.
				mb, err = e.saint.SampleN(len(share), e.rng)
			} else {
				mb, err = e.smp.Sample(share, e.rng)
			}
			if err != nil {
				return nil, err
			}
			batches[i] = mb
			edges := float64(mb.EdgesTraversed())
			edgeSum += edges
			if i > 0 && e.assign.AccelSampleFrac > 0 {
				sampEdgesAccel += edges * e.assign.AccelSampleFrac
				sampEdgesCPU += edges * (1 - e.assign.AccelSampleFrac)
			} else {
				sampEdgesCPU += edges
			}
		}
		st := perfmodel.StageTimes{
			SampCPU:   e.pm.SampleTimeCPUEdges(sampEdgesCPU, e.assign.SampThreads),
			SampAccel: e.pm.SampleTimeAccelEdges(sampEdgesAccel / float64(max(1, len(e.cfg.Plat.Accels)))),
			Sync:      e.pm.SyncTime(),
		}

		// --- Stage 2+3: Feature Loading and Data Transfer for accelerators.
		feats := make([]*tensor.Matrix, len(shares))
		var loadRows float64
		for i, mb := range batches {
			if mb == nil {
				continue
			}
			x := tensor.New(len(mb.InputNodes()), e.cfg.Model.Dims[0])
			tensor.GatherRows(x, e.cfg.Data.Features, mb.InputNodes())
			feats[i] = x
			if i > 0 { // accelerator share crosses DRAM + PCIe
				if e.cfg.QuantizeTransfer {
					tensor.QuantizeRoundTrip(x) // inject the real int8 loss
				}
				sz := actualSizes(mb)
				loadRows += sz.VL[0]
				if tt := e.pm.TransferTimeFor(sz); tt > st.Trans {
					st.Trans = tt
				}
			}
		}
		st.Load = e.pm.LoadTimeForRows(loadRows, e.assign.LoadThreads)

		// --- Stage 4: GNN Propagation on all trainers concurrently.
		results := make(chan trainerResult, len(shares))
		sync_, err := optim.NewSynchronizer(countActive(batches))
		if err != nil {
			return nil, err
		}
		totalTargets := 0
		for _, mb := range batches {
			if mb != nil {
				totalTargets += len(mb.Targets)
			}
		}
		var wg sync.WaitGroup
		for i, mb := range batches {
			if mb == nil {
				continue
			}
			wg.Add(1)
			go func(i int, mb *sampler.MiniBatch, x *tensor.Matrix) {
				defer wg.Done()
				res := e.runTrainer(i, mb, x, totalTargets, sync_)
				results <- res
			}(i, mb, feats[i])
		}
		wg.Wait()
		close(results)

		var avg *gnn.Gradients
		for res := range results {
			if res.err != nil {
				return nil, res.err
			}
			lossSum += res.loss * float64(res.targets)
			accSum += res.correct
			targetSum += res.targets
			avg = res.avg
			if res.idx == 0 {
				st.TrainCPU = res.propSec
			} else if res.propSec > st.TrainAcc {
				st.TrainAcc = res.propSec
			}
		}
		// Weight update: EVERY replica applies the broadcast average —
		// including trainers that had no share this iteration (the DRM can
		// shrink a share to zero) — so the fleet stays in lock-step.
		if avg != nil {
			for i := range e.replicas {
				e.opts[i].Step(e.replicas[i].Params, avg)
			}
		}

		// --- Advance the virtual pipeline clock and let DRM react.
		e.advanceClock(st)
		if e.drmEng != nil {
			e.assign = e.drmEng.Adjust(it, st, e.assign)
		}
	}

	stats.VirtualSec = e.clock - epochStart
	if targetSum > 0 {
		stats.Loss = lossSum / float64(targetSum)
		stats.Accuracy = accSum / float64(targetSum)
	}
	if stats.VirtualSec > 0 {
		stats.MTEPS = edgeSum / stats.VirtualSec / 1e6
	}
	stats.Assignment = e.assign.Clone()
	return stats, nil
}

// runTrainer executes one trainer's share: real forward/backward, gradient
// scaling for the weighted all-reduce, DONE/ACK via the synchronizer, and
// the local weight update. The returned propSec is the virtual device time.
func (e *Engine) runTrainer(idx int, mb *sampler.MiniBatch, x *tensor.Matrix,
	totalTargets int, sync_ *optim.Synchronizer) trainerResult {
	res := trainerResult{idx: idx, targets: len(mb.Targets)}
	grads, loss, acc, err := e.replicas[idx].TrainStep(mb, x)
	if err != nil {
		res.err = err
		return res
	}
	res.loss = loss
	res.correct = acc * float64(len(mb.Targets))

	// Weighted averaging: each trainer's mean-gradient is rescaled so the
	// synchronizer's equal-weight average equals the global-batch mean.
	// The weight *update* is applied by the coordinator to every replica
	// (even share-less ones) once the round's average is known.
	scale := float32(len(mb.Targets)) * float32(sync_.N()) / float32(totalTargets)
	grads.Scale(scale)
	res.avg = sync_.Submit(grads) // blocks until all trainers are DONE

	// Virtual propagation time for this device.
	sz := actualSizes(mb)
	if idx == 0 {
		share := float64(e.assign.TrainThreads) / float64(e.cfg.Plat.TotalCPUCores())
		if !e.cfg.Hybrid {
			share = 1 // CPU-only platform fallback
		}
		res.propSec = e.pm.PropTimeFor(e.cfg.Plat.CPU, sz, share) +
			e.cfg.Plat.CPU.FrameworkOverheadMs*1e-3
	} else {
		dev := e.cfg.Plat.Accels[idx-1]
		t := e.pm.PropTimeFor(dev, sz, 1)
		res.propSec = t*(1+flushFraction) + dev.FrameworkOverheadMs*1e-3 +
			kernelsPerIteration*dev.KernelLaunchUs*1e-6
	}
	return res
}

// Overheads charged by the runtime's virtual clock (mirrors pipesim).
const (
	flushFraction       = 0.06
	kernelsPerIteration = 4
	runtimeBarrierSec   = 120e-6
)

// advanceClock pushes one iteration's stage times through the max-plus
// pipeline recurrence (paper Fig. 7).
func (e *Engine) advanceClock(st perfmodel.StageTimes) {
	samp := math.Max(st.SampCPU, st.SampAccel) + runtimeBarrierSec
	prop := math.Max(st.TrainCPU, st.TrainAcc) + st.Sync + runtimeBarrierSec
	var stages []float64
	if e.cfg.TFP {
		stages = []float64{samp, st.Load + runtimeBarrierSec, st.Trans + runtimeBarrierSec, prop}
	} else {
		stages = []float64{samp, st.Load + st.Trans + runtimeBarrierSec, prop}
	}
	prev := 0.0
	for s := range stages {
		start := math.Max(prev, e.prevDone[s])
		e.prevDone[s] = start + stages[s]
		prev = e.prevDone[s]
	}
	e.clock = e.prevDone[len(stages)-1]
}

func countActive(batches []*sampler.MiniBatch) int {
	n := 0
	for _, mb := range batches {
		if mb != nil {
			n++
		}
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
