package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/optim"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// smallPlatform is a shrunk CPU-FPGA node (2 accelerators) so tests run fast.
func smallPlatform() hw.Platform {
	p := hw.CPUFPGAPlatform()
	p.Accels = p.Accels[:2]
	return p
}

func smallDataset(t *testing.T, seed uint64) *datagen.Dataset {
	t.Helper()
	spec := datagen.Spec{Name: "core-test", NumVertices: 1500, NumEdges: 9000,
		FeatDims: []int{16, 16, 5}, TrainNodes: 600}
	ds, err := datagen.Materialize(spec, 0.4, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(t *testing.T) Config {
	return Config{
		Plat:      smallPlatform(),
		Data:      smallDataset(t, 1),
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: []int{16, 16, 5}},
		LR:        0.3,
		BatchSize: 64,
		Fanouts:   []int{5, 5},
		Hybrid:    true,
		TFP:       true,
		DRM:       true,
		Seed:      7,
	}
}

func TestNewEngineValidation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Data = nil
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	cfg = baseConfig(t)
	cfg.LR = 0
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for zero LR")
	}
	cfg = baseConfig(t)
	cfg.BatchSize = 0
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for zero batch")
	}
	cfg = baseConfig(t)
	cfg.Fanouts = []int{5}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for fanout/layer mismatch")
	}
}

func TestRunEpochBasics(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Iterations <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.VirtualSec <= 0 || st.MTEPS <= 0 {
		t.Fatalf("virtual clock not advancing: %+v", st)
	}
	if st.Loss <= 0 || st.Loss > 10 {
		t.Fatalf("implausible loss %v", st.Loss)
	}
	if st.Accuracy < 0 || st.Accuracy > 1 {
		t.Fatalf("accuracy out of range: %v", st.Accuracy)
	}
}

// The protocol invariant: after any number of epochs, all replicas hold
// bit-identical parameters (they all apply the same averaged gradients).
func TestReplicasStayInSync(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if e.ReplicasInSync() != 0 {
		t.Fatal("replicas differ at initialisation")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if d := e.ReplicasInSync(); d > 1e-6 {
		t.Fatalf("replicas diverged by %v", d)
	}
}

// Training must converge — the "optimizations do not alter the training
// algorithm" claim measured on real numerics under the full hybrid pipeline.
func TestHybridTrainingConverges(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var first, last *EpochStats
	for i := 0; i < 8; i++ {
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st
		}
		last = st
	}
	if last.Loss >= first.Loss*0.75 {
		t.Fatalf("loss did not converge: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if last.Accuracy <= 1.0/5+0.1 { // 5 classes; must beat chance clearly
		t.Fatalf("accuracy %.3f not above chance", last.Accuracy)
	}
}

// Hybrid and accelerator-only runs with identical seeds must produce
// identical training statistics (same batches, same numerics) — only the
// virtual timing differs. This is the paper's semantics-preservation claim
// at system level.
func TestHybridPreservesSemantics(t *testing.T) {
	run := func(hybrid bool) []float64 {
		cfg := baseConfig(t)
		cfg.Data = smallDataset(t, 11) // same seed → identical dataset
		cfg.Hybrid = hybrid
		cfg.DRM = false // DRM changes split sizes, which re-orders rng draws
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for i := 0; i < 3; i++ {
			st, err := e.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, st.Loss)
		}
		return losses
	}
	hyb := run(true)
	only := run(false)
	for i := range hyb {
		// Same global batch, same seeds; split differences change only the
		// partitioning of the same target sequence. Losses track closely.
		if math.Abs(hyb[i]-only[i]) > 0.25*math.Max(hyb[i], only[i]) {
			t.Fatalf("epoch %d: hybrid loss %.4f vs accel-only %.4f diverge structurally",
				i, hyb[i], only[i])
		}
	}
}

// Exact synchronous-SGD equivalence at the gradient level: the gradient of a
// union batch equals the target-weighted average of the per-part gradients
// when the parts' neighborhoods are sampled with the same RNG stream. This
// is paper §II-B ("training on 4 GPUs with mini-batch size 1024 is
// equivalent to training on 1 GPU with mini-batch size 4096") made precise.
// A 1-layer model keeps the sampled frontiers disjoint in RNG consumption.
func TestSyncSGDGradientEquivalence(t *testing.T) {
	ds := smallDataset(t, 3)
	model, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: []int{16, 5}}, tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sampler.New(ds.Graph, []int{6}, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	targets := ds.TrainIdx[:96]
	gather := func(mb *sampler.MiniBatch) *tensor.Matrix {
		x := tensor.New(len(mb.InputNodes()), 16)
		tensor.GatherRows(x, ds.Features, mb.InputNodes())
		return x
	}

	// Union gradient: one batch over all targets.
	rngU := tensor.NewRNG(99)
	mbU, err := smp.Sample(targets, rngU)
	if err != nil {
		t.Fatal(err)
	}
	gU, _, _, err := model.TrainStep(mbU, gather(mbU))
	if err != nil {
		t.Fatal(err)
	}

	// Split gradients: same RNG stream consumed sequentially over the parts.
	rngS := tensor.NewRNG(99)
	mb1, err := smp.Sample(targets[:64], rngS)
	if err != nil {
		t.Fatal(err)
	}
	mb2, err := smp.Sample(targets[64:], rngS)
	if err != nil {
		t.Fatal(err)
	}
	g1, _, _, err := model.TrainStep(mb1, gather(mb1))
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _, err := model.TrainStep(mb2, gather(mb2))
	if err != nil {
		t.Fatal(err)
	}
	avg, err := optim.WeightedAllReduce([]*gnn.Gradients{g1, g2}, []float64{64, 32})
	if err != nil {
		t.Fatal(err)
	}
	if d := gU.MaxAbsDiff(avg); d > 1e-5 {
		t.Fatalf("union gradient differs from weighted average by %v", d)
	}
}

// TFP must not slow the virtual clock down, and on transfer-heavy configs it
// must help (system-level view of paper Fig. 11's TFP bar).
func TestTFPVirtualClock(t *testing.T) {
	run := func(tfp bool) float64 {
		cfg := baseConfig(t)
		cfg.Data = smallDataset(t, 21)
		cfg.TFP = tfp
		cfg.DRM = false
		cfg.Hybrid = false // all work through PCIe: prefetch path dominant
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return st.VirtualSec
	}
	with := run(true)
	without := run(false)
	// TFP adds one pipeline stage, so it pays one extra stage-fill barrier
	// per epoch; at toy scale that fill can exceed the (tiny) stage times it
	// overlaps. Allow it, but nothing more.
	const fillAllowance = 2 * runtimeBarrierSec
	if with > without+fillAllowance {
		t.Fatalf("TFP slowed the pipeline: %v vs %v", with, without)
	}
}

// DRM must actually move the assignment when the initial mapping is off.
func TestDRMAdjustsAssignment(t *testing.T) {
	cfg := baseConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Assignment()
	for i := 0; i < 4; i++ {
		if _, err := e.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Assignment()
	if before.CPUBatch == after.CPUBatch &&
		before.SampThreads == after.SampThreads &&
		before.LoadThreads == after.LoadThreads &&
		before.TrainThreads == after.TrainThreads {
		t.Log("DRM made no moves — acceptable only if already balanced")
	}
	if after.TotalBatch() != before.TotalBatch() {
		t.Fatalf("DRM changed the global batch: %d -> %d",
			before.TotalBatch(), after.TotalBatch())
	}
}

// Regression test: a trainer whose share shrinks to zero for an iteration
// (the DRM can do this) must still receive the broadcast weight update, or
// its replica silently diverges from the fleet.
func TestZeroShareTrainerStaysInSync(t *testing.T) {
	cfg := baseConfig(t)
	cfg.DRM = false
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the CPU trainer out of the work split entirely.
	e.assign.CPUBatch = 0
	total := 0
	for i := range e.assign.AccelBatch {
		e.assign.AccelBatch[i] += 32
		total += e.assign.AccelBatch[i]
	}
	if _, err := e.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if d := e.ReplicasInSync(); d != 0 {
		t.Fatalf("idle trainer's replica diverged by %v", d)
	}
}

// The virtual clock must be deterministic for a fixed seed.
func TestVirtualClockDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := baseConfig(t)
		cfg.Data = smallDataset(t, 31)
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return st.VirtualSec
	}
	if run() != run() {
		t.Fatal("virtual clock not deterministic")
	}
}

// Failure injection: corrupted inputs must be rejected at construction, not
// crash a trainer goroutine mid-epoch.
func TestEngineRejectsCorruptInputs(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Model.Dims = []int{8, 16, 5} // dataset features are 16-dim
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected feature-width mismatch error")
	}
	cfg = baseConfig(t)
	cfg.Data.Labels[17] = 99 // outside the model's 5 classes
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected label-range error")
	}
	cfg = baseConfig(t)
	cfg.Model.Dims = []int{16}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected dims error")
	}
}

// The quantized-transfer extension must still converge: int8 feature noise
// is tiny relative to the planted class structure.
func TestQuantizedTransferConverges(t *testing.T) {
	cfg := baseConfig(t)
	cfg.QuantizeTransfer = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 6; i++ {
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last >= first*0.8 {
		t.Fatalf("quantized training did not converge: %.4f -> %.4f", first, last)
	}
	if d := e.ReplicasInSync(); d > 1e-6 {
		t.Fatalf("quantized training broke replica sync: %v", d)
	}
}

// Quantized transfer must shrink the virtual transfer time on a
// transfer-heavy (accel-only) configuration.
func TestQuantizedTransferFasterClock(t *testing.T) {
	run := func(quant bool) float64 {
		cfg := baseConfig(t)
		cfg.Data = smallDataset(t, 41)
		cfg.Hybrid = false
		cfg.DRM = false
		cfg.QuantizeTransfer = quant
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return st.VirtualSec
	}
	if q, f := run(true), run(false); q >= f {
		t.Fatalf("int8 transfer (%v) not faster than fp32 (%v)", q, f)
	}
}

// GraphSAINT mini-batches must train end-to-end through the hybrid runtime
// and converge, with replicas in lock-step.
func TestSaintSamplingInRuntime(t *testing.T) {
	cfg := baseConfig(t)
	cfg.UseSaint = true
	cfg.SaintWalkLen = 3
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 6; i++ {
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.Loss
		}
		last = st.Loss
		if st.VirtualSec <= 0 {
			t.Fatal("virtual clock stalled under SAINT")
		}
	}
	if last >= first*0.9 {
		t.Fatalf("SAINT training did not converge: %.4f -> %.4f", first, last)
	}
	if d := e.ReplicasInSync(); d > 1e-6 {
		t.Fatalf("SAINT run broke replica sync: %v", d)
	}
}

// Train, evaluate held-out accuracy, checkpoint, reload, re-evaluate: the
// full production loop.
func TestEvaluateAndCheckpoint(t *testing.T) {
	cfg := baseConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := e.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := e.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 1.0/5 {
		t.Fatalf("held-out accuracy %.3f not above chance", acc)
	}
	var buf bytes.Buffer
	if err := e.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := gnn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := m.Evaluate(cfg.Data.Graph, cfg.Data.Features, cfg.Data.Labels, cfg.Data.TrainIdx)
	if err != nil {
		t.Fatal(err)
	}
	if acc2 <= 1.0/5 {
		t.Fatalf("reloaded model accuracy %.3f not above chance", acc2)
	}
}

// mixedPlatform is the paper's title claim: CPU + GPU + FPGA on one node.
func mixedPlatform(t *testing.T) hw.Platform {
	t.Helper()
	p, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The executed mixed fleet: the engine must build one backend per device
// kind, the FPGA trainer must actually run the §IV-C dataflow kernels (its
// hardware counters appear in the epoch stats), and the whole fleet must
// stay in synchronous-SGD lock-step while converging.
func TestMixedFleetExecutesFPGABackend(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Plat = mixedPlatform(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Trainers()[0].(*cpuTrainer); !ok {
		t.Fatalf("trainer 0 is %T, want CPU", e.Trainers()[0])
	}
	if _, ok := e.Trainers()[1].(*accelTrainer); !ok {
		t.Fatalf("trainer 1 is %T, want generic accelerator", e.Trainers()[1])
	}
	if _, ok := e.Trainers()[2].(*fpgaTrainer); !ok {
		t.Fatalf("trainer 2 is %T, want FPGA dataflow", e.Trainers()[2])
	}
	var first, last *EpochStats
	for i := 0; i < 6; i++ {
		st, err := e.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if st.FPGA.AggCycles <= 0 || st.FPGA.UpdateCycles <= 0 {
			t.Fatalf("epoch %d: FPGA kernels did not execute: %+v", i, st.FPGA)
		}
		if st.FPGA.TrafficBytes <= 0 || st.FPGA.Sec <= 0 {
			t.Fatalf("epoch %d: FPGA accounting incomplete: %+v", i, st.FPGA)
		}
		if i == 0 {
			first = st
		}
		last = st
	}
	if last.Loss >= first.Loss*0.75 {
		t.Fatalf("mixed fleet did not converge: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if d := e.ReplicasInSync(); d > 1e-6 {
		t.Fatalf("mixed fleet diverged by %v", d)
	}
}

// Synchronous-SGD equivalence across the mixed fleet: with identical seeds,
// the hybrid CPU+GPU+FPGA fleet must converge into the same loss band as a
// homogeneous fleet with the same device count and global batch — the
// backends change the virtual clock, never the training algorithm.
func TestMixedFleetLossBandEquivalence(t *testing.T) {
	run := func(plat hw.Platform) []float64 {
		cfg := baseConfig(t)
		cfg.Data = smallDataset(t, 51)
		cfg.Plat = plat
		cfg.DRM = false // DRM changes split sizes, which re-orders rng draws
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for i := 0; i < 4; i++ {
			st, err := e.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, st.Loss)
		}
		if d := e.ReplicasInSync(); d > 1e-6 {
			t.Fatalf("%s: fleet diverged by %v", plat.Name, d)
		}
		return losses
	}
	mixed := run(mixedPlatform(t))
	homog := run(smallPlatform()) // 2× U250, same device count and batch
	for i := range mixed {
		if math.Abs(mixed[i]-homog[i]) > 0.25*math.Max(mixed[i], homog[i]) {
			t.Fatalf("epoch %d: mixed loss %.4f vs homogeneous %.4f diverge structurally",
				i, mixed[i], homog[i])
		}
	}
	if mixed[3] >= mixed[0]*0.85 {
		t.Fatalf("mixed fleet not converging: %v", mixed)
	}
}

// The FPGA trainer's clock charge must come from the measured kernels:
// an epoch's FPGA.Sec (plus analytic backward and overheads) is what the
// per-device stage saw, so it must be positive yet below the epoch's
// virtual time.
func TestFPGAStatsChargeTheClock(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Plat = mixedPlatform(t)
	cfg.DRM = false
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.FPGA.Sec <= 0 {
		t.Fatal("no measured FPGA seconds")
	}
	if st.FPGA.Sec >= st.VirtualSec {
		t.Fatalf("measured FPGA forward %v exceeds the whole epoch %v",
			st.FPGA.Sec, st.VirtualSec)
	}
	// Sorted-source reuse (§IV-C): external traffic is bounded by feature
	// fetches × row bytes, not edge count × row bytes.
	rowBytes := int64(cfg.Model.Dims[0]) * 4
	if st.FPGA.TrafficBytes > int64(st.FPGA.FeatureFetches)*rowBytes {
		t.Fatalf("traffic %dB exceeds %d fetches × %dB", st.FPGA.TrafficBytes,
			st.FPGA.FeatureFetches, rowBytes)
	}
}

// Fleet-level kernel equivalence: the dataflow backend the FPGA trainer
// drives must produce the same logits as the reference forward on the very
// replica it trains (internal/accel asserts the kernels in isolation; this
// guards the engine's wiring — replica weights, sorted-edge mapping,
// gathered features).
func TestFPGATrainerMatchesReferenceForward(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Plat = mixedPlatform(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := e.Trainers()[2].(*fpgaTrainer)
	if !ok {
		t.Fatalf("trainer 2 is %T, want FPGA dataflow", e.Trainers()[2])
	}
	mb, err := e.smp.Sample(cfg.Data.TrainIdx[:64], e.rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(len(mb.InputNodes()), cfg.Model.Dims[0])
	tensor.GatherRows(x, cfg.Data.Features, mb.InputNodes())
	logits, stats, err := ft.backend.Forward(e.replicas[2], mb, x)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.replicas[2].Forward(mb, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := logits.MaxAbsDiff(ref.Logits); d > 1e-4 {
		t.Fatalf("dataflow logits differ from reference by %g", d)
	}
	if stats.Sec <= 0 || stats.AggCycles <= 0 {
		t.Fatalf("backend reported no work: %+v", stats)
	}
}

func TestCPUOnlyPlatform(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Plat.Accels = nil
	cfg.Hybrid = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.VirtualSec <= 0 || st.Loss <= 0 {
		t.Fatalf("CPU-only epoch broken: %+v", st)
	}
}
