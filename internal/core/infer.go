package core

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// InferConfig assembles one serving worker's pipeline.
type InferConfig struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model the worker serves. It is shared between
	// workers and read-only during serving.
	Model   *gnn.Model
	Fanouts []int
	// Device selects the propagation device: 0 is the CPU trainer, i > 0 is
	// Plat.Accels[i-1] (features then cross PCIe, as in training).
	Device int
	// SampThreads/LoadThreads are the CPU threads charged for sampling and
	// feature gathering; zero defaults to a quarter of the cores each, the
	// training runtime's initial split.
	SampThreads, LoadThreads int
	// QuantizeTransfer int8-quantizes accelerator-bound features on the PCIe
	// link, with the real rounding error injected (as in training).
	QuantizeTransfer bool
	Seed             uint64
}

// InferResult is one served batch: the computed logits (row i answers
// targets[i]) and the virtual stage times the batch cost.
type InferResult struct {
	Stage     perfmodel.StageTimes
	Logits    *tensor.Matrix
	Targets   []int32
	Edges     float64 // edges traversed by fanout sampling
	InputRows int     // feature rows gathered (|V0|)
}

// InferencePipeline is the serving-side counterpart of the training
// StageExecutor: one worker's sample → gather → transfer → propagate
// pipeline over the shared runtime layers. Real numeric propagation runs
// through the same gnn layer kernels as training; virtual time is charged by
// the same perfmodel primitives and composed by the same max-plus
// PipelineClock, so serving latency and training throughput are priced on
// one clock.
type InferencePipeline struct {
	cfg   InferConfig
	pm    *perfmodel.Model
	smp   *sampler.Sampler
	clock *PipelineClock
	rng   *tensor.RNG
}

// NewInferencePipeline validates the configuration and builds one worker.
func NewInferencePipeline(cfg InferConfig) (*InferencePipeline, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if cfg.Data.Features.Cols != cfg.Model.Cfg.Dims[0] {
		return nil, fmt.Errorf("core: dataset features are %d-dim, model expects %d",
			cfg.Data.Features.Cols, cfg.Model.Cfg.Dims[0])
	}
	if len(cfg.Fanouts) != cfg.Model.Cfg.Layers() {
		return nil, fmt.Errorf("core: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Model.Cfg.Layers())
	}
	if cfg.Device < 0 || cfg.Device > len(cfg.Plat.Accels) {
		return nil, fmt.Errorf("core: device %d outside [0,%d]", cfg.Device, len(cfg.Plat.Accels))
	}
	quarter := cfg.Plat.TotalCPUCores() / 4
	if cfg.SampThreads <= 0 {
		cfg.SampThreads = max(1, quarter)
	}
	if cfg.LoadThreads <= 0 {
		cfg.LoadThreads = max(1, quarter)
	}
	work := perfmodel.Workload{
		Spec: cfg.Data.Spec, Model: cfg.Model.Cfg.Kind,
		BatchSize: 1, Fanouts: cfg.Fanouts,
	}
	if cfg.QuantizeTransfer {
		work.TransferBytesPerFeat = 1
	}
	pm, err := perfmodel.New(cfg.Plat, work)
	if err != nil {
		return nil, err
	}
	smp, err := sampler.New(cfg.Data.Graph, cfg.Fanouts, nil)
	if err != nil {
		return nil, err
	}
	return &InferencePipeline{
		cfg:   cfg,
		pm:    pm,
		smp:   smp,
		clock: NewPipelineClock(true, false),
		rng:   tensor.NewRNG(cfg.Seed),
	}, nil
}

// Model returns the perfmodel pricing this pipeline's virtual charges.
func (p *InferencePipeline) Model() *perfmodel.Model { return p.pm }

// AvailableAt returns the virtual completion time of the worker's last batch
// (0 when idle since start) — the dispatcher's load signal.
func (p *InferencePipeline) AvailableAt() float64 { return p.clock.Now() }

// RunBatch samples the L-hop fanout of the target vertices, gathers their
// input features, and propagates only that subgraph, returning the logits
// and the virtual stage times of the batch.
func (p *InferencePipeline) RunBatch(targets []int32) (*InferResult, error) {
	mb, err := p.smp.Sample(targets, p.rng)
	if err != nil {
		return nil, err
	}
	x := tensor.New(len(mb.InputNodes()), p.cfg.Data.Features.Cols)
	tensor.GatherRows(x, p.cfg.Data.Features, mb.InputNodes())
	sz := actualSizes(mb)
	st := perfmodel.StageTimes{
		SampCPU: p.pm.SampleTimeCPUEdges(float64(mb.EdgesTraversed()), p.cfg.SampThreads),
		Load:    p.pm.LoadTimeForRows(sz.VL[0], p.cfg.LoadThreads),
	}
	if p.cfg.Device > 0 {
		if p.cfg.QuantizeTransfer {
			tensor.QuantizeRoundTrip(x) // inject the real int8 loss
		}
		st.Trans = p.pm.TransferTimeFor(sz)
		st.TrainAcc = p.pm.PropWithOverheads(p.cfg.Plat.Accels[p.cfg.Device-1], sz, 1)
	} else {
		cores := p.cfg.Plat.TotalCPUCores()
		share := float64(cores-p.cfg.SampThreads-p.cfg.LoadThreads) / float64(cores)
		if share <= 0 {
			share = 0.5
		}
		st.TrainCPU = p.pm.PropWithOverheads(p.cfg.Plat.CPU, sz, share)
	}
	logits, err := p.cfg.Model.InferMiniBatch(mb, x)
	if err != nil {
		return nil, err
	}
	return &InferResult{
		Stage:     st,
		Logits:    logits,
		Targets:   mb.Targets,
		Edges:     float64(mb.EdgesTraversed()),
		InputRows: len(mb.InputNodes()),
	}, nil
}

// CompleteAfter pushes a batch's stage times through the worker's pipeline
// clock, starting no earlier than ready, and returns the virtual completion
// time. Consecutive batches overlap stage-wise exactly as training
// iterations do (sampling batch k+1 runs while batch k propagates).
func (p *InferencePipeline) CompleteAfter(ready float64, st perfmodel.StageTimes) float64 {
	return p.clock.AdvanceAfter(ready, st)
}
