package core

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// InferConfig assembles one serving worker's pipeline.
type InferConfig struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model the worker serves. It is shared between
	// workers and read-only during serving.
	Model   *gnn.Model
	Fanouts []int
	// Device selects the propagation device: 0 is the host CPU peer, i > 0
	// is Plat.Accels[i-1] (features then cross that device's own host link,
	// as in training). The worker is *bound* to this device: FPGA-kind
	// devices execute the §IV-C dataflow kernels and charge their measured
	// cycles, framework-driven devices (Device.LoaderGBs) gather features
	// through their own loader stack, and every device carries its
	// inference-stack overheads (perfmodel.ServingOverheads).
	Device int
	// SampThreads/LoadThreads are the CPU threads charged for sampling and
	// feature gathering; zero defaults to a quarter of the cores each, the
	// training runtime's initial split.
	SampThreads, LoadThreads int
	// QuantizeTransfer int8-quantizes accelerator-bound features on the PCIe
	// link, with the real rounding error injected (as in training).
	QuantizeTransfer bool
	Seed             uint64
}

// InferResult is one served batch: the computed logits (row i answers
// targets[i]) and the virtual stage times the batch cost.
type InferResult struct {
	Stage     perfmodel.StageTimes
	Logits    *tensor.Matrix
	Targets   []int32
	Edges     float64 // edges traversed by fanout sampling
	InputRows int     // feature rows gathered (|V0|)
	// FPGA carries the dataflow kernels' hardware accounting when the batch
	// executed on an FPGA-bound worker (nil otherwise).
	FPGA *accel.ForwardStats
}

// InferencePipeline is the serving-side counterpart of the training
// StageExecutor: one worker's sample → gather → transfer → propagate
// pipeline over the shared runtime layers, bound to one device the way a
// training Trainer backend is. Real numeric propagation runs through the
// same gnn layer kernels as training — or, on an FPGA-bound worker, through
// the accel dataflow kernels, whose measured cycles are what the clock is
// charged; virtual time is charged by the same perfmodel primitives and
// composed by the same max-plus PipelineClock, so serving latency and
// training throughput are priced on one clock.
type InferencePipeline struct {
	cfg     InferConfig
	dev     hw.Device
	backend *accel.Backend // non-nil iff the bound device is FPGA-kind
	pm      *perfmodel.Model
	smp     *sampler.Sampler
	clock   *PipelineClock
	rng     *tensor.RNG
	// ws is the worker's numeric arena: the gathered feature block and every
	// propagation intermediate of a batch borrow from it, and RunBatch resets
	// it at batch entry — so the steady-state numeric path of a serving
	// worker allocates nothing once the arena has grown to the largest batch.
	ws *tensor.Workspace
	// mb/rows/sizes are RunBatch's retained sampling and pricing scratch,
	// rebuilt in place per batch (the same reuse discipline as ws; results
	// that borrow them are valid until the next RunBatch).
	mb    sampler.MiniBatch
	rows  []float64
	sizes perfmodel.Sizes
	// res is RunBatch's retained result (the contract already scopes a
	// result's validity to the next RunBatch, so the header is reused too —
	// the serving loop's last per-batch allocation).
	res InferResult
	// svcSec memoizes ServiceSec by computed-target count (NaN = unfilled).
	// The count is bounded by the serving batcher's size cap, so a small
	// dense slice replaces the map the serving router used to consult on
	// every dispatch — no hashing, no map overhead, no allocation.
	svcSec []float64
}

// NewInferencePipeline validates the configuration and builds one worker.
func NewInferencePipeline(cfg InferConfig) (*InferencePipeline, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if cfg.Data.Features.Cols != cfg.Model.Cfg.Dims[0] {
		return nil, fmt.Errorf("core: dataset features are %d-dim, model expects %d",
			cfg.Data.Features.Cols, cfg.Model.Cfg.Dims[0])
	}
	if len(cfg.Fanouts) != cfg.Model.Cfg.Layers() {
		return nil, fmt.Errorf("core: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Model.Cfg.Layers())
	}
	if cfg.Device < 0 || cfg.Device > len(cfg.Plat.Accels) {
		return nil, fmt.Errorf("core: device %d outside [0,%d]", cfg.Device, len(cfg.Plat.Accels))
	}
	quarter := cfg.Plat.TotalCPUCores() / 4
	if cfg.SampThreads <= 0 {
		cfg.SampThreads = max(1, quarter)
	}
	if cfg.LoadThreads <= 0 {
		cfg.LoadThreads = max(1, quarter)
	}
	work := perfmodel.Workload{
		Spec: cfg.Data.Spec, Model: cfg.Model.Cfg.Kind,
		BatchSize: 1, Fanouts: cfg.Fanouts,
	}
	if cfg.QuantizeTransfer {
		work.TransferBytesPerFeat = 1
	}
	pm, err := perfmodel.New(cfg.Plat, work)
	if err != nil {
		return nil, err
	}
	smp, err := sampler.New(cfg.Data.Graph, cfg.Fanouts, nil)
	if err != nil {
		return nil, err
	}
	p := &InferencePipeline{
		cfg:   cfg,
		dev:   cfg.Plat.CPU,
		pm:    pm,
		smp:   smp,
		clock: NewPipelineClock(true, false),
		rng:   tensor.NewRNG(cfg.Seed),
		ws:    tensor.NewWorkspace(),
	}
	if cfg.Device > 0 {
		p.dev = cfg.Plat.Accels[cfg.Device-1]
		if p.dev.Kind == hw.FPGA {
			bk := accel.U250Backend(cfg.Model.Cfg.Dims[0])
			p.backend = &bk
		}
	}
	return p, nil
}

// Model returns the perfmodel pricing this pipeline's virtual charges.
func (p *InferencePipeline) Model() *perfmodel.Model { return p.pm }

// Device returns the hardware this worker is bound to.
func (p *InferencePipeline) Device() hw.Device { return p.dev }

// DeviceIndex returns the binding in InferConfig.Device convention: 0 for
// the CPU peer, i > 0 for Plat.Accels[i-1].
func (p *InferencePipeline) DeviceIndex() int { return p.cfg.Device }

// AvailableAt returns the virtual completion time of the worker's last batch
// (0 when idle since start) — the dispatcher's load signal.
func (p *InferencePipeline) AvailableAt() float64 { return p.clock.Now() }

// PredictBatchStage prices a batch of `computed` cache-missing targets on
// this worker's bound device — the stage vector the router turns into a
// predicted completion time.
func (p *InferencePipeline) PredictBatchStage(computed int) (perfmodel.StageTimes, error) {
	return p.pm.ServingBatchStage(p.cfg.Device, computed, p.cfg.SampThreads, p.cfg.LoadThreads)
}

// ServiceSec returns the predicted serial service time of a batch of
// `computed` cache-missing targets on this worker's device, memoized in a
// dense slice. The first call per count prices the batch (which allocates
// its stage rows); every later call is a bounds check and a load — callers
// that prefill counts 1..MaxBatch at construction keep the dispatch hot
// path allocation-free.
func (p *InferencePipeline) ServiceSec(computed int) (float64, error) {
	if computed < 0 {
		return 0, fmt.Errorf("core: negative computed-target count %d", computed)
	}
	if computed >= len(p.svcSec) {
		grown := make([]float64, computed+1)
		copy(grown, p.svcSec)
		for i := len(p.svcSec); i < len(grown); i++ {
			grown[i] = math.NaN()
		}
		p.svcSec = grown
	}
	if s := p.svcSec[computed]; !math.IsNaN(s) {
		return s, nil
	}
	st, err := p.PredictBatchStage(computed)
	if err != nil {
		return 0, err
	}
	s := perfmodel.ServingServiceSec(st)
	p.svcSec[computed] = s
	return s, nil
}

// RunBatch samples the L-hop fanout of the target vertices, gathers their
// input features, and propagates only that subgraph, returning the logits
// and the virtual stage times of the batch. The returned Logits (and the
// rest of the result's matrices) borrow the worker's arena, and Targets
// borrows the worker's retained mini-batch: all of it is valid until this
// pipeline's next RunBatch, so callers that outlive the batch (the serving
// cache does) copy the rows they keep.
func (p *InferencePipeline) RunBatch(targets []int32) (*InferResult, error) {
	p.ws.Reset()
	if err := p.smp.SampleInto(&p.mb, targets, p.rng); err != nil {
		return nil, err
	}
	mb := &p.mb
	x := p.ws.Get(len(mb.InputNodes()), p.cfg.Data.Features.Cols)
	tensor.GatherRows(x, p.cfg.Data.Features, mb.InputNodes())
	sz := sizesInto(&p.sizes, mb)
	st := perfmodel.StageTimes{
		SampCPU: p.pm.SampleTimeCPUEdges(float64(mb.EdgesTraversed()), p.cfg.SampThreads),
	}
	res := &p.res
	*res = InferResult{
		Targets:   mb.Targets,
		Edges:     float64(mb.EdgesTraversed()),
		InputRows: len(mb.InputNodes()),
	}
	if p.cfg.Device > 0 {
		if p.rows == nil {
			p.rows = make([]float64, len(p.cfg.Plat.Accels))
		}
		rows := p.rows
		for i := range rows {
			rows[i] = 0
		}
		rows[p.cfg.Device-1] = sz.VL[0]
		st.Load = p.pm.LoadTimeForDeviceRows(rows, p.cfg.LoadThreads)
		if p.cfg.QuantizeTransfer {
			tensor.QuantizeRoundTrip(x) // inject the real int8 loss
		}
		st.Trans = p.pm.TransferTimeDev(p.cfg.Device-1, sz)
		if p.backend != nil {
			// FPGA worker: the forward executes through the scatter-gather +
			// systolic dataflow and the *measured* kernel time — not the
			// analytic Eq. 10 — is what the clock is charged (the serving
			// counterpart of the fpgaTrainer; serving has no backward half).
			logits, stats, err := p.backend.Forward(p.cfg.Model, mb, x)
			if err != nil {
				return nil, fmt.Errorf("core: fpga serving worker: %w", err)
			}
			st.TrainAcc = perfmodel.ServingOverheads(p.dev, stats.Sec)
			res.Logits = logits
			res.FPGA = stats
		} else {
			st.TrainAcc = perfmodel.ServingOverheads(p.dev, p.pm.PropForwardFor(p.dev, sz, 1))
		}
	} else {
		st.Load = p.pm.LoadTimeForRows(sz.VL[0], p.cfg.LoadThreads)
		cores := p.cfg.Plat.TotalCPUCores()
		share := float64(cores-p.cfg.SampThreads-p.cfg.LoadThreads) / float64(cores)
		if share <= 0 {
			share = 0.5
		}
		st.TrainCPU = perfmodel.ServingOverheads(p.dev, p.pm.PropForwardFor(p.dev, sz, share))
	}
	if res.Logits == nil {
		logits, err := p.cfg.Model.InferMiniBatchWS(p.ws, mb, x)
		if err != nil {
			return nil, err
		}
		res.Logits = logits
	}
	res.Stage = st
	return res, nil
}

// CompleteAfter pushes a batch's stage times through the worker's pipeline
// clock, starting no earlier than ready, and returns the virtual completion
// time. Consecutive batches overlap stage-wise exactly as training
// iterations do (sampling batch k+1 runs while batch k propagates).
func (p *InferencePipeline) CompleteAfter(ready float64, st perfmodel.StageTimes) float64 {
	return p.clock.AdvanceAfter(ready, st)
}
