package core

import (
	"testing"

	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func inferFixture(t *testing.T, plat hw.Platform, device int) (*InferencePipeline, *gnn.Model) {
	t.Helper()
	ds := smallDataset(t, 3)
	model, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: []int{16, 16, 5}}, tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewInferencePipeline(InferConfig{
		Plat: plat, Data: ds, Model: model, Fanouts: []int{5, 5},
		Device: device, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, model
}

// An FPGA-bound serving worker must execute the dataflow kernels: the batch
// carries the hardware accounting, the clock charge is the measured forward
// (plus serving overheads) rather than the analytic Eq. 10, and the logits
// match the reference forward up to float reassociation — the serving
// counterpart of TestFPGATrainerMatchesReferenceForward.
func TestInferFPGABindingMeasuresKernels(t *testing.T) {
	p, _ := inferFixture(t, smallPlatform(), 1)
	if p.Device().Kind != hw.FPGA {
		t.Fatalf("device 1 on the CPU-FPGA platform is %v", p.Device().Kind)
	}
	targets := []int32{3, 7, 11, 19, 23, 42, 77, 101}
	res, err := p.RunBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.FPGA == nil || res.FPGA.AggCycles <= 0 || res.FPGA.Sec <= 0 {
		t.Fatalf("FPGA worker reported no kernel accounting: %+v", res.FPGA)
	}
	want := perfmodel.ServingOverheads(p.Device(), res.FPGA.Sec)
	if res.Stage.TrainAcc != want {
		t.Fatalf("clock charged %v, measured kernels say %v", res.Stage.TrainAcc, want)
	}
	// Same batch through a CPU-bound pipeline (same seed → same sample):
	// numerics must agree up to kernel reassociation.
	ref, _ := inferFixture(t, smallPlatform(), 0)
	refRes, err := ref.RunBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Logits.MaxAbsDiff(refRes.Logits); d > 1e-4 {
		t.Fatalf("dataflow serving logits differ from reference by %g", d)
	}
	if refRes.FPGA != nil {
		t.Fatal("CPU worker reported FPGA stats")
	}
	if refRes.Stage.TrainCPU <= 0 || refRes.Stage.Trans != 0 {
		t.Fatalf("CPU worker stage malformed: %+v", refRes.Stage)
	}
}

// A GPU-bound worker prices its transfer on its own host link and loads
// features through its framework loader — the per-device binding the mixed
// fleets rely on.
func TestInferDeviceBindings(t *testing.T) {
	plat, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	gpu, _ := inferFixture(t, plat, 1)
	fpga, _ := inferFixture(t, plat, 2)
	if gpu.Device().Kind != hw.GPU || fpga.Device().Kind != hw.FPGA {
		t.Fatalf("bindings resolved to %v/%v", gpu.Device().Kind, fpga.Device().Kind)
	}
	if gpu.DeviceIndex() != 1 || fpga.DeviceIndex() != 2 {
		t.Fatal("DeviceIndex does not echo the binding")
	}
	targets := []int32{3, 7, 11, 19, 23, 42, 77, 101}
	gRes, err := gpu.RunBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	fRes, err := fpga.RunBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	// Same sample (same seed), different hardware: the GPU's PCIe 4.0 link
	// must beat the FPGA's PCIe 3.0 on the same payload, and the loader
	// stacks must differ (torch gather vs native threads).
	if gRes.Stage.Trans >= fRes.Stage.Trans {
		t.Fatalf("GPU transfer %v not below FPGA transfer %v despite the faster link",
			gRes.Stage.Trans, fRes.Stage.Trans)
	}
	if gRes.Stage.Load == fRes.Stage.Load {
		t.Fatal("framework and native loader stacks priced identically")
	}
	if gRes.FPGA != nil || fRes.FPGA == nil {
		t.Fatal("kernel accounting attached to the wrong worker")
	}
	// The router's per-device prediction API must price the same bindings.
	gSt, err := gpu.PredictBatchStage(len(targets))
	if err != nil {
		t.Fatal(err)
	}
	fSt, err := fpga.PredictBatchStage(len(targets))
	if err != nil {
		t.Fatal(err)
	}
	if gSt.TrainAcc <= 0 || fSt.TrainAcc <= 0 ||
		perfmodel.ServingServiceSec(gSt) == perfmodel.ServingServiceSec(fSt) {
		t.Fatalf("per-device predictions not device-specific: %+v vs %+v", gSt, fSt)
	}
}
