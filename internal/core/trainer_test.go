package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestTrainOptionsValidate(t *testing.T) {
	cases := []TrainOptions{
		{Epochs: 0},
		{Epochs: 5, LRDecay: 1.5, DecayEvery: 2},
		{Epochs: 5, LRDecay: 0.5}, // DecayEvery missing
		{Epochs: 5, Patience: -1},
	}
	for i, o := range cases {
		if o.Validate() == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if (TrainOptions{Epochs: 3}).Validate() != nil {
		t.Fatal("minimal options rejected")
	}
}

func TestTrainRunsAllEpochs(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	hist, err := e.Train(TrainOptions{Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("ran %d epochs, want 4", len(hist))
	}
	if hist[3].Loss >= hist[0].Loss {
		t.Fatalf("no learning across epochs: %.4f -> %.4f", hist[0].Loss, hist[3].Loss)
	}
}

func TestTrainLRDecay(t *testing.T) {
	cfg := baseConfig(t)
	cfg.LR = 0.4
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(TrainOptions{Epochs: 4, LRDecay: 0.5, DecayEvery: 2}); err != nil {
		t.Fatal(err)
	}
	// Two decays over 4 epochs: 0.4 → 0.2 → 0.1.
	if got := e.LearningRate(); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Fatalf("LR after decay = %v, want 0.1", got)
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	cfg := baseConfig(t)
	cfg.LR = 1e-6 // effectively frozen: loss cannot improve
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := e.Train(TrainOptions{Epochs: 20, Patience: 2, MinDelta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) >= 20 {
		t.Fatalf("early stopping never fired (%d epochs)", len(hist))
	}
	if len(hist) < 3 { // first epoch + patience misses
		t.Fatalf("stopped too early: %d epochs", len(hist))
	}
}

// TestTrainerScratchMatchesLegacyStep pins the trainer backends' reusable
// step scratch (workspace + persistent gradients) to the allocating
// gnn.TrainStep: repeated Steps through one scratch must stay bit-identical
// to fresh legacy steps on the same inputs.
func TestTrainerScratchMatchesLegacyStep(t *testing.T) {
	e, err := NewEngine(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := e.smp.Sample(e.cfg.Data.TrainIdx[:32], e.rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(len(mb.InputNodes()), e.cfg.Model.Dims[0])
	tensor.GatherRows(x, e.cfg.Data.Features, mb.InputNodes())
	for iter := 0; iter < 3; iter++ { // later iterations run on reused buffers
		res, err := e.trainers[0].Step(mb, x)
		if err != nil {
			t.Fatal(err)
		}
		wantGrads, wantLoss, wantAcc, err := e.replicas[0].TrainStep(mb, x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss != wantLoss || res.Acc != wantAcc {
			t.Fatalf("iter %d: loss/acc %v/%v, want %v/%v", iter, res.Loss, res.Acc, wantLoss, wantAcc)
		}
		if d := res.Grads.MaxAbsDiff(wantGrads); d != 0 {
			t.Fatalf("iter %d: trainer gradients differ from legacy TrainStep by %g", iter, d)
		}
	}
}
