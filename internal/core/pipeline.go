package core

import "fmt"

// Software-pipelined epoch execution (paper Fig. 4/5, §IV-B): a prefetch
// worker runs prepare for iteration i+1 — sampling, feature gather/staging,
// transfer pricing — while the trainer fleet computes iteration i, over a
// depth-2 ring of iteration slots. This turns the two-stage feature
// prefetching the virtual PipelineClock has always *charged* into executed
// behavior: the wall-clock iteration tends to max(prepare, compute) instead
// of their sum.
//
// Why the trajectory stays bitwise identical to serial execution: prepare
// depends only on the batcher/RNG stream and the slot's assignment snapshot
// — never on model weights — and compute consumes no randomness. A single
// worker serializes the prepares, and targets are drawn from the batcher on
// the orchestrating goroutine at issue time, so the RNG and batcher advance
// in exactly the serial order; compute and the weight updates run in
// iteration order on the orchestrating goroutine. With DRM off the executed
// numbers are therefore bit-for-bit the serial ones at any GOMAXPROCS. With
// DRM on, prepare(i+1)'s snapshot is taken *before* the DRM engine reacts to
// iteration i — the paper's natural one-iteration lag (Fig. 5: the engine
// adapts while the pipeline flows). The same loop with async=false is the
// lagged serial oracle the pipelined mode is pinned against.

// pipelineDepth is the iteration-slot ring size: one slot being computed,
// one being prepared.
const pipelineDepth = 2

// PipelineMode selects how the epoch loop schedules prepare against
// compute. The zero value is the serial mode, so existing configurations
// are unchanged.
type PipelineMode int

const (
	// PipelineSerial runs each iteration start-to-finish: prepare(i) then
	// compute(i) on the calling goroutine.
	PipelineSerial PipelineMode = iota
	// PipelinePrefetch overlaps prepare(i+1) with compute(i) on a prefetch
	// worker (the paper's pipelined execution).
	PipelinePrefetch
)

// ParsePipelineMode parses the -pipeline flag values. The empty string maps
// to the serial default, mirroring the Config zero value.
func ParsePipelineMode(s string) (PipelineMode, error) {
	switch s {
	case "", "serial":
		return PipelineSerial, nil
	case "prefetch":
		return PipelinePrefetch, nil
	}
	return PipelineSerial, fmt.Errorf("core: unknown pipeline mode %q (want serial|prefetch)", s)
}

func (m PipelineMode) String() string {
	if m == PipelinePrefetch {
		return "prefetch"
	}
	return "serial"
}

// prepReq is one prefetch-worker work item. A nil slot is the stop sentinel.
type prepReq struct {
	slot    *iterSlot
	targets []int32
}

// prefetcher is the channel pair the prepare worker lives on. The channels
// are created once per engine and reused across epochs; the worker
// goroutine itself is per-epoch (started by startPrefetch, stopped by
// stop), so an idle engine holds no goroutine and cannot leak. Unbuffered
// channels give the strict hand-off the ring needs: issue happens-before
// the worker's prepare, which happens-before wait returns.
type prefetcher struct {
	req  chan prepReq
	done chan error
}

// startPrefetch launches the epoch's prepare worker and returns the
// engine's (lazily created, reused) prefetcher.
func (e *Engine) startPrefetch() *prefetcher {
	if e.prefetch == nil {
		e.prefetch = &prefetcher{req: make(chan prepReq), done: make(chan error)}
	}
	p := e.prefetch
	go func() {
		for {
			r := <-p.req
			if r.slot == nil {
				return
			}
			p.done <- e.exec.prepare(r.slot, r.targets)
		}
	}()
	return p
}

// issue hands a prepare to the worker.
func (p *prefetcher) issue(s *iterSlot, targets []int32) { p.req <- prepReq{s, targets} }

// wait blocks until the worker finishes the in-flight prepare.
func (p *prefetcher) wait() error { return <-p.done }

// stop terminates the worker. Callers must have drained any in-flight
// prepare first (the worker blocks sending its result otherwise).
func (p *prefetcher) stop() { p.req <- prepReq{} }

// runEpochOracle runs one epoch on the pipelined *schedule* — prepare(i+1)
// issued, and its assignment snapshotted, before DRM reacts to iteration i —
// but synchronously, with no worker goroutine. It is the lagged serial
// oracle: with DRM on, RunEpoch in prefetch mode must match it bit for bit,
// which pins the one-iteration-lag semantics independently of scheduling.
func (e *Engine) runEpochOracle() (*EpochStats, error) {
	return e.runEpoch(func(iters int, stats *EpochStats, acc *epochAccum) error {
		return e.runPipelined(iters, stats, acc, false)
	})
}

// runEpochAsync forces the worker-backed schedule regardless of GOMAXPROCS.
// RunEpoch degenerates to the inline schedule on a single proc (the worker
// could only time-slice there); tests use this to pin the hand-off
// machinery itself at GOMAXPROCS=1, where cooperative scheduling is at its
// most adversarial.
func (e *Engine) runEpochAsync() (*EpochStats, error) {
	return e.runEpoch(func(iters int, stats *EpochStats, acc *epochAccum) error {
		return e.runPipelined(iters, stats, acc, true)
	})
}

// runPipelined executes one epoch software-pipelined. With async=true the
// prepares run on the prefetch worker, overlapping compute; with
// async=false the identical schedule runs on the calling goroutine — the
// lagged serial oracle the determinism tests pin against (same
// issue-before-DRM input capture, no concurrency) and the mode RunEpoch
// degenerates to at GOMAXPROCS=1.
func (e *Engine) runPipelined(iters int, stats *EpochStats, acc *epochAccum, async bool) error {
	if iters == 0 {
		return nil
	}
	var p *prefetcher
	if async {
		p = e.startPrefetch()
		defer p.stop()
	}
	inflight := false
	// drain settles an in-flight prepare before an error return, so the
	// deferred stop cannot deadlock against a worker blocked on done.
	drain := func() {
		if inflight {
			_ = p.wait()
			inflight = false
		}
	}
	// In the synchronous variant the issue point only *captures* the
	// prepare's inputs — the targets and the assignment snapshot, which fix
	// its result completely — and the prepare itself runs lazily, right
	// before its compute. That keeps issue-time semantics identical to the
	// worker (same batcher/RNG order, same pre-DRM snapshot) while compute
	// reads a freshly written slot, exactly like serial execution. With the
	// prepares lazy there is nothing in flight to keep separate, so sync
	// mode also stays on one hot slot instead of alternating the ring —
	// the snapshot lands in the slot before the lazy prepare(i) reads it,
	// and compute never touches s.assign.
	var pending prepReq
	slotFor := func(it int) *iterSlot {
		if !async {
			return e.slot(0)
		}
		return e.slot(it % pipelineDepth)
	}

	// Fill the pipeline: issue prepare(0) against the current assignment.
	s0 := slotFor(0)
	e.assign.CloneInto(&s0.assign)
	if async {
		p.issue(s0, e.batcher.Next())
		inflight = true
	} else {
		pending = prepReq{s0, e.batcher.Next()}
	}

	for it := 0; it < iters; it++ {
		cur := slotFor(it)
		if async {
			if err := p.wait(); err != nil {
				inflight = false
				return err
			}
			inflight = false
		} else if err := e.exec.prepare(pending.slot, pending.targets); err != nil {
			return err
		}
		// Issue prepare(i+1) before compute(i): the assignment snapshot is
		// taken now — before DRM reacts to iteration i — which is the
		// one-iteration lag, and the worker overlaps the trainers below.
		// The target slot is the one iteration i-1 computed in; its result
		// was fully consumed last time around.
		if it+1 < iters {
			nxt := slotFor(it + 1)
			e.assign.CloneInto(&nxt.assign)
			if async {
				p.issue(nxt, e.batcher.Next())
				inflight = true
			} else {
				pending = prepReq{nxt, e.batcher.Next()}
			}
		}
		res, err := e.exec.compute(cur)
		if err != nil {
			drain()
			return err
		}
		if err := e.consumeIteration(it, res, stats, acc); err != nil {
			drain()
			return err
		}
	}
	return nil
}
