package core

import (
	"math"

	"repro/internal/perfmodel"
)

// Clock is the virtual-time layer of the runtime. The engine feeds it one
// iteration's measured stage times; the clock decides how they compose into
// elapsed virtual seconds. Swapping the implementation changes the timing
// semantics (pipelined, serial, networked) without touching execution.
type Clock interface {
	// Advance pushes one iteration's stage times through the clock.
	Advance(st perfmodel.StageTimes)
	// Now returns the current virtual time in seconds.
	Now() float64
	// Reset rewinds the clock to zero and clears pipeline state.
	Reset()
}

// PipelineClock advances virtual time with the max-plus pipeline recurrence
// the paper's Fig. 7 depicts: stage s of iteration i starts when both stage
// s−1 of iteration i and stage s of iteration i−1 have finished.
//
// Stage layout: [sampling, loading(+transfer)] — split into separate loading
// and transfer stages under TFP — then, when networked, a remote-fetch stage
// that overlaps the local pipeline, and finally propagation (which absorbs
// the serial inter-node all-reduce charge).
type PipelineClock struct {
	tfp       bool
	networked bool
	prevDone  []float64 // per-stage completion times of the previous iteration
	now       float64
}

// NewPipelineClock builds a clock for the given pipeline shape.
func NewPipelineClock(tfp, networked bool) *PipelineClock {
	c := &PipelineClock{tfp: tfp, networked: networked}
	c.Reset()
	return c
}

// Reset rewinds the clock and empties the pipeline.
func (c *PipelineClock) Reset() {
	n := 3
	if c.tfp {
		n = 4
	}
	if c.networked {
		n++
	}
	c.prevDone = make([]float64, n)
	c.now = 0
}

// Now returns the current virtual time.
func (c *PipelineClock) Now() float64 { return c.now }

// Advance pushes one iteration's stage times through the max-plus recurrence.
// Iterations are assumed back-to-back (training's batcher always has the
// next mini-batch ready).
func (c *PipelineClock) Advance(st perfmodel.StageTimes) { c.AdvanceAfter(0, st) }

// AdvanceAfter pushes one unit of work through the pipeline whose first
// stage cannot start before `ready` (virtual seconds) and returns its
// completion time. This is the serving-side entry point: a request batch
// becomes ready when the dynamic batcher closes it, which may leave the
// pipeline idle in between — unlike training iterations, which are always
// back-to-back (Advance is AdvanceAfter with ready 0).
func (c *PipelineClock) AdvanceAfter(ready float64, st perfmodel.StageTimes) float64 {
	samp := math.Max(st.SampCPU, st.SampAccel) + runtimeBarrierSec
	prop := math.Max(st.TrainCPU, st.TrainAcc) + st.Sync + runtimeBarrierSec
	if c.networked {
		// The inter-node all-reduce extends the propagation stage serially —
		// every trainer blocks on the global gradient before updating.
		prop += st.NetSync
	}
	// Fixed-size backing array: the stage vector never exceeds 5 entries
	// (tfp + networked), so the appends below stay on the stack and the
	// training loop's clock advance does not allocate.
	var stageBuf [5]float64
	stages := stageBuf[:0]
	if c.tfp {
		stages = append(stages, samp, st.Load+runtimeBarrierSec, st.Trans+runtimeBarrierSec)
	} else {
		stages = append(stages, samp, st.Load+st.Trans+runtimeBarrierSec)
	}
	if c.networked {
		// Remote feature fetches overlap the local pipeline as one more
		// stage, the way DistDGL-style prefetching hides them behind local
		// work; they only cost wall-clock when the NIC becomes the bottleneck.
		stages = append(stages, st.NetFetch)
	}
	stages = append(stages, prop)
	prev := ready
	for s := range stages {
		start := math.Max(prev, c.prevDone[s])
		c.prevDone[s] = start + stages[s]
		prev = c.prevDone[s]
	}
	c.now = c.prevDone[len(stages)-1]
	return c.now
}
