// Package optim implements the weight-update side of training: plain SGD
// (with optional momentum) and the Synchronizer of paper §III-A — the
// all-reduce that gathers per-trainer gradients, averages them, and
// broadcasts the average so every trainer applies an identical update.
// Synchronous SGD over n trainers with batch B is thereby algorithmically
// equivalent to one trainer with batch n·B (paper §II-B).
package optim

import (
	"fmt"
	"sync"

	"repro/internal/gnn"
	"repro/internal/tensor"
)

// SGD applies θ ← θ − lr·g, with optional classical momentum
// v ← μv + g; θ ← θ − lr·v.
type SGD struct {
	LR       float32
	Momentum float32
	velocity *gnn.Gradients
}

// NewSGD creates an optimizer. lr must be positive; momentum in [0, 1).
func NewSGD(lr, momentum float32) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("optim: non-positive learning rate %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("optim: momentum %v outside [0,1)", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum}, nil
}

// Step applies one update to params using grads.
func (o *SGD) Step(params *gnn.Parameters, grads *gnn.Gradients) {
	g := grads
	if o.Momentum > 0 {
		if o.velocity == nil {
			o.velocity = gnn.NewGradients(params)
		}
		o.velocity.Scale(o.Momentum)
		o.velocity.Axpy(1, grads)
		g = o.velocity
	}
	for l := range params.Weights {
		tensor.Axpy(params.Weights[l], -o.LR, g.Weights[l])
		tensor.Axpy(params.Biases[l], -o.LR, g.Biases[l])
	}
}

// Synchronizer performs the DONE-counting all-reduce of paper Listing 1:
// trainers submit gradients (incrementing DONE under a mutex and signalling a
// condition variable); when DONE reaches n the synchronizer averages and the
// averaged gradients are broadcast to all waiters.
type Synchronizer struct {
	n     int
	mu    sync.Mutex
	cond  *sync.Cond
	done  int              // the paper's DONE counter
	slots []*gnn.Gradients // pending gradients, indexed by trainer rank
	avg   *gnn.Gradients
	round uint64
}

// NewSynchronizer creates a synchronizer for n trainers.
func NewSynchronizer(n int) (*Synchronizer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("optim: synchronizer needs n > 0, got %d", n)
	}
	s := &Synchronizer{n: n, slots: make([]*gnn.Gradients, n)}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// N returns the number of participating trainers.
func (s *Synchronizer) N() int { return s.n }

// Submit delivers trainer rank's gradients (ranks are 0..n-1, one per
// trainer) and blocks until all n trainers of the current round have
// submitted; it then returns the element-wise average. The average is summed
// in RANK order, not arrival order — floating-point addition is not
// associative, so reducing in a scheduling-dependent order would make the
// trained weights nondeterministic under GOMAXPROCS > 1. The returned
// gradients are shared — callers must not mutate them. Weighted averaging
// for unequal batch sizes is the caller's concern: submit gradients
// pre-scaled by batchSize/totalBatchSize and the "average" here becomes the
// correct weighted mean.
func (s *Synchronizer) Submit(rank int, g *gnn.Gradients) *gnn.Gradients {
	s.mu.Lock()
	defer s.mu.Unlock()
	myRound := s.round
	s.slots[rank] = g
	s.done++ // paper Listing 1: DONE++
	if s.done == s.n {
		// Last arrival plays the Synchronizer role: gather, average, broadcast.
		avg := s.slots[0].Clone()
		for _, other := range s.slots[1:] {
			avg.Axpy(1, other)
		}
		avg.Scale(1 / float32(s.n))
		s.avg = avg
		s.done = 0
		s.round++
		s.cond.Broadcast()
		return avg
	}
	for s.round == myRound {
		s.cond.Wait()
	}
	return s.avg
}

// WeightedAllReduce averages gradients with explicit weights (e.g. per-device
// mini-batch shares under DRM re-balancing) without goroutine coordination.
// Weights are normalised to sum to 1. Used by the deterministic
// (single-goroutine) training paths and tests.
func WeightedAllReduce(grads []*gnn.Gradients, weights []float64) (*gnn.Gradients, error) {
	if len(grads) == 0 || len(grads) != len(weights) {
		return nil, fmt.Errorf("optim: %d gradients, %d weights", len(grads), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("optim: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("optim: all weights zero")
	}
	out := grads[0].Clone()
	out.Scale(float32(weights[0] / total))
	for i := 1; i < len(grads); i++ {
		out.Axpy(float32(weights[i]/total), grads[i])
	}
	return out, nil
}
