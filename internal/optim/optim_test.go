package optim

import (
	"math"
	"sync"
	"testing"

	"repro/internal/gnn"
	"repro/internal/tensor"
)

func tinyModel(t *testing.T, seed uint64) *gnn.Model {
	t.Helper()
	m, err := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: []int{3, 2}}, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0); err == nil {
		t.Fatal("expected error for lr=0")
	}
	if _, err := NewSGD(0.1, 1.0); err == nil {
		t.Fatal("expected error for momentum=1")
	}
	if _, err := NewSGD(0.1, -0.1); err == nil {
		t.Fatal("expected error for negative momentum")
	}
}

func TestSGDStep(t *testing.T) {
	m := tinyModel(t, 1)
	before := m.Params.Weights[0].At(0, 0)
	g := gnn.NewGradients(m.Params)
	g.Weights[0].Fill(1)
	opt, _ := NewSGD(0.1, 0)
	opt.Step(m.Params, g)
	after := m.Params.Weights[0].At(0, 0)
	if math.Abs(float64(after-(before-0.1))) > 1e-6 {
		t.Fatalf("SGD step: %v -> %v", before, after)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	m := tinyModel(t, 2)
	g := gnn.NewGradients(m.Params)
	g.Weights[0].Fill(1)
	opt, _ := NewSGD(1, 0.5)
	w0 := m.Params.Weights[0].At(0, 0)
	opt.Step(m.Params, g) // v=1, w -= 1
	opt.Step(m.Params, g) // v=1.5, w -= 1.5
	got := m.Params.Weights[0].At(0, 0)
	want := w0 - 1 - 1.5
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("momentum: got %v want %v", got, want)
	}
}

func TestSynchronizerValidation(t *testing.T) {
	if _, err := NewSynchronizer(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestSynchronizerAverages(t *testing.T) {
	m := tinyModel(t, 3)
	const n = 4
	sync_, err := NewSynchronizer(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*gnn.Gradients, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := gnn.NewGradients(m.Params)
			g.Weights[0].Fill(float32(i + 1)) // 1,2,3,4 -> avg 2.5
			results[i] = sync_.Submit(i, g)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("broadcast returned different objects")
		}
	}
	if got := results[0].Weights[0].At(0, 0); math.Abs(float64(got)-2.5) > 1e-6 {
		t.Fatalf("average = %v, want 2.5", got)
	}
}

func TestSynchronizerMultipleRounds(t *testing.T) {
	m := tinyModel(t, 4)
	const n, rounds = 3, 5
	s, _ := NewSynchronizer(n)
	var wg sync.WaitGroup
	errs := make(chan string, n*rounds)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g := gnn.NewGradients(m.Params)
				g.Weights[0].Fill(float32(r * 3)) // all trainers agree per round
				avg := s.Submit(i, g)
				if got := avg.Weights[0].At(0, 0); got != float32(r*3) {
					errs <- "wrong round average"
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestWeightedAllReduce(t *testing.T) {
	m := tinyModel(t, 5)
	g1 := gnn.NewGradients(m.Params)
	g1.Weights[0].Fill(10)
	g2 := gnn.NewGradients(m.Params)
	g2.Weights[0].Fill(20)
	avg, err := WeightedAllReduce([]*gnn.Gradients{g1, g2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// (10*3 + 20*1)/4 = 12.5
	if got := avg.Weights[0].At(0, 0); math.Abs(float64(got)-12.5) > 1e-6 {
		t.Fatalf("weighted avg = %v, want 12.5", got)
	}
}

func TestWeightedAllReduceValidation(t *testing.T) {
	m := tinyModel(t, 6)
	g := gnn.NewGradients(m.Params)
	if _, err := WeightedAllReduce(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := WeightedAllReduce([]*gnn.Gradients{g}, []float64{-1}); err == nil {
		t.Fatal("expected error for negative weight")
	}
	if _, err := WeightedAllReduce([]*gnn.Gradients{g}, []float64{0}); err == nil {
		t.Fatal("expected error for zero total weight")
	}
	if _, err := WeightedAllReduce([]*gnn.Gradients{g}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

// Equal weights must reduce to the plain average (same as Synchronizer).
func TestWeightedMatchesUnweighted(t *testing.T) {
	m := tinyModel(t, 7)
	g1 := gnn.NewGradients(m.Params)
	g1.Weights[0].Fill(4)
	g2 := gnn.NewGradients(m.Params)
	g2.Weights[0].Fill(8)
	avg, _ := WeightedAllReduce([]*gnn.Gradients{g1, g2}, []float64{1, 1})
	if got := avg.Weights[0].At(0, 0); got != 6 {
		t.Fatalf("got %v want 6", got)
	}
}
