package bench

import (
	"fmt"
	"math"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// ExtServe exercises the online-serving extension end to end: an open-loop
// Zipf request stream against the serving stack (admission → dynamic batcher
// → embedding cache → accelerator worker pool), executed on the virtual
// clock. Two sweeps bracket the design space:
//
//   - batch window at moderate load — median latency must rise with the
//     window while the analytic serving model tracks the executed per-batch
//     service time within its ±35% band;
//   - cache size at ~3x overload with no batching window — the hit rate and
//     served throughput must rise with capacity while the p99 tail falls.
func ExtServe(seed uint64) (*Table, error) {
	t := &Table{
		Title: "Extension: online serving (CPU-FPGA pool, open-loop Zipf stream; " +
			"analytic service time within ±35% of executed)",
		Header: []string{"Sweep", "Rate(r/s)", "Win(ms)", "Cache", "Batch", "Hit%",
			"p50(ms)", "p99(ms)", "RPS", "Svc exec(ms)", "Svc pred(ms)", "Err%"},
	}
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "products-serve", NumVertices: 3000, NumEdges: 24000,
		FeatDims: []int{100, 64, 16}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, rng)
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims}, rng)
	if err != nil {
		return nil, err
	}
	base := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 2000, ZipfExponent: 1.1,
		MaxBatch: 32, Workers: 2, QueueCap: 512, Seed: seed,
	}
	addRow := func(sweep string, st *serve.Stats, cfg serve.Config) {
		errPct := 100 * math.Abs(st.MeanServiceSec-st.Prediction.ServiceSec) / st.MeanServiceSec
		t.AddRow(Txt(sweep), Num(cfg.RatePerSec, "%.0f"), Num(1e3*cfg.WindowSec, "%.2f"),
			Num(float64(cfg.CacheSize), "%.0f"), Num(st.MeanBatch, "%.1f"),
			Num(100*st.HitRate, "%.0f"), Num(1e3*st.P50Sec, "%.3f"), Num(1e3*st.P99Sec, "%.3f"),
			Num(st.ThroughputRPS, "%.0f"), Num(1e3*st.MeanServiceSec, "%.3f"),
			Num(1e3*st.Prediction.ServiceSec, "%.3f"), Num(errPct, "%.0f%%"))
	}

	withRate := func(c serve.Config, r float64) serve.Config { c.RatePerSec = r; return c }

	// Anchor the two load regimes on the analytic capacity of a
	// single-request batch (cold cache) rather than magic numbers.
	probe, err := serve.Predict(withRate(base, 1000), 1)
	if err != nil {
		return nil, err
	}
	moderate := 0.4 * probe.CapacityRPS
	overload := 3 * probe.CapacityRPS

	for _, windowMs := range []float64{0, 0.5, 2} {
		cfg := withRate(base, moderate)
		cfg.WindowSec = windowMs * 1e-3
		st, err := serve.Run(cfg)
		if err != nil {
			return nil, err
		}
		addRow("window", st, cfg)
	}
	for _, cacheSize := range []int{0, 64, 1024} {
		cfg := withRate(base, overload)
		cfg.WindowSec = 0
		cfg.CacheSize = cacheSize
		st, err := serve.Run(cfg)
		if err != nil {
			return nil, err
		}
		addRow("cache", st, cfg)
	}
	return t, nil
}

// ExtServeHetero is the serving counterpart of the ext-hetero training
// ablation: with a fixed budget of three serving devices, a mixed
// CPU+GPU+FPGA fleet — the kind-aware router steering each closed batch to
// the device with the earliest predicted completion, cache-hot small batches
// split off to the CPU peer — against both homogeneous accelerator pools of
// the same budget. The complementarity is real in the model: the CPU peer
// pays no transfer or kernel launches (cheap small batches, but a single
// shared host), the FPGA's dataflow kernels carry small fixed cost, and the
// GPU adds capacity once the other kinds' admission shares saturate. Each
// row reports the executed latency profile next to the per-device analytic
// prediction (±35% band), plus the per-kind batch split that shows the
// routing is genuinely heterogeneous.
func ExtServeHetero(seed uint64) (*Table, error) {
	t := &Table{
		Title: "Extension: kind-aware heterogeneous serving (equal 3-device budget, " +
			"open-loop Zipf stream; analytic per-device service within ±35%)",
		Header: []string{"Load", "Fleet", "Rate(r/s)", "Hit%", "mean(ms)", "p50(ms)",
			"p99(ms)", "RPS", "Svc exec(ms)", "Svc pred(ms)", "Err%", "Batches C/G/F"},
	}
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "products-serve", NumVertices: 3000, NumEdges: 24000,
		FeatDims: []int{100, 64, 16}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, rng)
	if err != nil {
		return nil, err
	}
	model, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims}, rng)
	if err != nil {
		return nil, err
	}
	base := serve.Config{
		Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 2500, ZipfExponent: 1.1,
		MaxBatch: 32, WindowSec: 0.5e-3, QueueCap: 256, CacheSize: 512, Seed: seed,
	}
	fleet := func(kinds ...hw.Kind) (hw.Platform, error) { return hw.HeteroPlatform(kinds...) }
	type pool struct {
		name    string
		kinds   []hw.Kind
		peer    bool
		workers int
	}
	pools := []pool{
		{"3xGPU", []hw.Kind{hw.GPU, hw.GPU, hw.GPU}, false, 3},
		{"3xFPGA", []hw.Kind{hw.FPGA, hw.FPGA, hw.FPGA}, false, 3},
		{"CPU+GPU+FPGA", []hw.Kind{hw.GPU, hw.FPGA}, true, 2},
	}
	configure := func(p pool) (serve.Config, error) {
		plat, err := fleet(p.kinds...)
		if err != nil {
			return serve.Config{}, err
		}
		cfg := base
		cfg.Plat = plat
		cfg.Workers = p.workers
		cfg.CPUPeer = p.peer
		if p.peer {
			cfg.SmallBatchCut = 4
		}
		return cfg, nil
	}

	// Anchor the load regimes on the mixed pool's analytic size-closed
	// capacity (cold cache, MaxBatch-sized batches) rather than magic rates.
	mixedCfg, err := configure(pools[2])
	if err != nil {
		return nil, err
	}
	mixedCfg.RatePerSec = 1e6
	probe, err := serve.Predict(mixedCfg, 1)
	if err != nil {
		return nil, err
	}
	for _, load := range []struct {
		name string
		rate float64
	}{
		{"heavy", 0.7 * probe.CapacityRPS},
		{"overload", 1.25 * probe.CapacityRPS},
	} {
		for _, p := range pools {
			cfg, err := configure(p)
			if err != nil {
				return nil, err
			}
			cfg.RatePerSec = load.rate
			st, err := serve.Run(cfg)
			if err != nil {
				return nil, err
			}
			split := map[hw.Kind]int{}
			for _, d := range st.PerDevice {
				split[d.Kind] += d.Batches
			}
			errPct := 100 * math.Abs(st.MeanServiceSec-st.Prediction.ServiceSec) / st.MeanServiceSec
			t.AddRow(Txt(load.name), Txt(p.name), Num(cfg.RatePerSec, "%.0f"),
				Num(100*st.HitRate, "%.0f"), Num(1e3*st.MeanSec, "%.3f"),
				Num(1e3*st.P50Sec, "%.3f"), Num(1e3*st.P99Sec, "%.3f"),
				Num(st.ThroughputRPS, "%.0f"), Num(1e3*st.MeanServiceSec, "%.3f"),
				Num(1e3*st.Prediction.ServiceSec, "%.3f"), Num(errPct, "%.0f%%"),
				Txt(fmt.Sprintf("%d/%d/%d", split[hw.CPU], split[hw.GPU], split[hw.FPGA])))
		}
	}
	return t, nil
}
