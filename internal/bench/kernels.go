// Kernel before/after benchmarks: the measured perf trajectory of the
// numeric core. Each row times a hot kernel in its pre-optimization form
// (the *Ref kernels and the allocating step paths, retained in-tree as
// oracles) against the shipped form (cache-blocked SIMD GEMMs, the
// transposed-gather parallel scatter, the zero-allocation workspace paths)
// at the paper's layer shapes and an ogbn-products-scale mini-batch. The
// report is written to BENCH_kernels.json so later PRs have a recorded
// baseline to regress against; the ext-kernels experiment renders the same
// numbers as a table.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/optim"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// KernelMeasurement is one before/after row.
type KernelMeasurement struct {
	Kernel       string  `json:"kernel"`
	Shape        string  `json:"shape"`
	BaselineSec  float64 `json:"baseline_sec_per_op"`
	OptimizedSec float64 `json:"optimized_sec_per_op"`
	Speedup      float64 `json:"speedup"`
	// GFLOPS / effective GB/s are filled where the kernel has a natural
	// flop/byte count (GEMMs: 2mkn flops and the operand+result footprint;
	// the scatter: 2 accesses per scattered element).
	BaselineGFLOPS  float64 `json:"baseline_gflops,omitempty"`
	OptimizedGFLOPS float64 `json:"optimized_gflops,omitempty"`
	BaselineGBs     float64 `json:"baseline_gbs,omitempty"`
	OptimizedGBs    float64 `json:"optimized_gbs,omitempty"`
	BaselineAllocs  float64 `json:"baseline_allocs_per_op"`
	OptimizedAllocs float64 `json:"optimized_allocs_per_op"`
	// TensorPar and SIMDLevel record the dispatch state the row's optimized
	// side ran under; RooflineFrac is its achieved fraction of the machine
	// roofline at the row's arithmetic intensity (see roofline.go).
	TensorPar    int     `json:"tensor_parallelism,omitempty"`
	SIMDLevel    string  `json:"simd_level,omitempty"`
	RooflineFrac float64 `json:"roofline_frac,omitempty"`
	// GOMAXPROCS and OverlapRatio annotate the executed-pipeline epoch row:
	// the scheduler parallelism the row ran under, and the wall-clock
	// serial/prefetch ratio (1.0 = no overlap realized — the expectation on
	// a single-core runner, where the prefetch worker shares the only core;
	// the win lands on the multicore re-record).
	GOMAXPROCS   int     `json:"gomaxprocs,omitempty"`
	OverlapRatio float64 `json:"overlap_ratio,omitempty"`
}

// KernelsReport is the BENCH_kernels.json payload.
type KernelsReport struct {
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	CPUModel    string `json:"cpu_model,omitempty"`
	Parallelism int    `json:"tensor_parallelism"`
	// SIMDLevel is the dispatch level active for the suite (simd trajectory
	// rows override per-entry); PeakGFLOPS/StreamGBs are the machine's
	// probed roofline ceilings (FMA-free compute peak and stream bandwidth).
	SIMDLevel  string              `json:"simd_level"`
	PeakGFLOPS float64             `json:"peak_gflops"`
	StreamGBs  float64             `json:"stream_gbs"`
	Kernels    []KernelMeasurement `json:"kernels"`
}

// measure times fn (after one warm-up call) until ~80 ms has elapsed and
// returns seconds per op and allocations per op.
func measure(fn func()) (secPerOp, allocsPerOp float64) {
	fn() // warm up: grow arenas, fault pages
	const target = 80 * time.Millisecond
	reps := 0
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < target; elapsed = time.Since(start) {
		fn()
		reps++
	}
	total := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return total.Seconds() / float64(reps), float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
}

// measurePairMin interleaves timed rounds of a and b (after one warm-up
// call each) and returns each side's fastest single run plus the
// allocations of that run. For ops too slow for measure's 80 ms window to
// hold more than one rep (a ~100 ms training epoch), a single sample is
// dominated by this container's scheduling noise (±10% round to round);
// interleaving plus min-of-k cancels both the noise and any slow drift
// between the two sides.
func measurePairMin(a, b func(), rounds int) (aSec, bSec, aAllocs, bAllocs float64) {
	runtime.GC() // settle garbage from earlier fixtures: neither side pays for it
	a()          // warm up: grow arenas, fault pages
	b()
	one := func(fn func()) (sec, allocs float64) {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		fn()
		sec = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		return sec, float64(ms1.Mallocs - ms0.Mallocs)
	}
	for r := 0; r < rounds; r++ {
		if s, al := one(a); r == 0 || s < aSec {
			aSec, aAllocs = s, al
		}
		if s, al := one(b); r == 0 || s < bSec {
			bSec, bAllocs = s, al
		}
	}
	return aSec, bSec, aAllocs, bAllocs
}

// gemmRow measures one GEMM shape through a baseline and an optimized
// kernel, annotating GFLOP/s and effective GB/s.
func gemmRow(name, shape string, flops, bytes float64, baseline, optimized func()) KernelMeasurement {
	bSec, bAllocs := measure(baseline)
	oSec, oAllocs := measure(optimized)
	return KernelMeasurement{
		Kernel: name, Shape: shape,
		BaselineSec: bSec, OptimizedSec: oSec, Speedup: bSec / oSec,
		BaselineGFLOPS: flops / bSec / 1e9, OptimizedGFLOPS: flops / oSec / 1e9,
		BaselineGBs: bytes / bSec / 1e9, OptimizedGBs: bytes / oSec / 1e9,
		BaselineAllocs: bAllocs, OptimizedAllocs: oAllocs,
	}
}

// kernelFixture is the shared ogbn-products-scale mini-batch context: a
// synthetic power-law graph sampled with the paper's batch size 1024 and
// fanouts (25, 10).
type kernelFixture struct {
	ds *datagen.Dataset
	mb *sampler.MiniBatch
	x  *tensor.Matrix
	m  *gnn.Model
}

func newKernelFixture(seed uint64) (*kernelFixture, error) {
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "kernels-bench", NumVertices: 60000, NumEdges: 600000,
		FeatDims: []int{100, 128, 47}, TrainNodes: 20000}
	ds, err := datagen.Materialize(spec, 0.4, rng)
	if err != nil {
		return nil, err
	}
	s, err := sampler.New(ds.Graph, []int{25, 10}, ds.Labels)
	if err != nil {
		return nil, err
	}
	mb, err := s.Sample(ds.TrainIdx[:1024], rng)
	if err != nil {
		return nil, err
	}
	x := tensor.New(len(mb.InputNodes()), spec.FeatDims[0])
	tensor.GatherRows(x, ds.Features, mb.InputNodes())
	m, err := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: spec.FeatDims}, rng)
	if err != nil {
		return nil, err
	}
	return &kernelFixture{ds: ds, mb: mb, x: x, m: m}, nil
}

// Kernels runs the full before/after suite.
func Kernels(seed uint64) (*KernelsReport, error) {
	rng := tensor.NewRNG(seed)
	report := &KernelsReport{
		GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(), CPUModel: cpuModel(),
		Parallelism: tensor.Parallelism(), SIMDLevel: tensor.ActiveSIMDLevel().String(),
	}
	report.PeakGFLOPS, report.StreamGBs = MachinePeaks()

	// --- GEMMs at the paper's layer shapes.
	gemm := func(name string, m, k, n int, ref, opt func(c, a, b *tensor.Matrix), bT, aT bool) {
		a := tensor.New(m, k)
		tensor.NormalInit(a, 1, rng)
		b := tensor.New(k, n)
		tensor.NormalInit(b, 1, rng)
		c := tensor.New(m, n)
		argA, argB := a, b
		if bT {
			argB = tensor.Transpose(b)
		}
		if aT {
			argA = tensor.Transpose(a) // (k×m) with the batch extent k leading; c stays m×n
		}
		flops := 2 * float64(m) * float64(k) * float64(n)
		bytes := 4 * float64(m*k+k*n+m*n)
		report.Kernels = append(report.Kernels, gemmRow(
			name, fmt.Sprintf("%dx%d·%dx%d", m, k, k, n), flops, bytes,
			func() { ref(c, argA, argB) }, func() { opt(c, argA, argB) }))
	}
	gemm("MatMul", 1024, 128, 128, tensor.MatMulRef, tensor.MatMul, false, false)
	gemm("MatMul", 4096, 256, 256, tensor.MatMulRef, tensor.MatMul, false, false)
	gemm("MatMulT", 4096, 256, 128, tensor.MatMulTRef, tensor.MatMulT, true, false)
	// TMatMul: (R×m)ᵀ·(R×n) with the batch extent R in front.
	gemm("TMatMul", 128, 4096, 64, tensor.TMatMulRef, tensor.TMatMul, false, true)

	// --- SIMD dispatch trajectory: the same blocked GEMM at the SSE level
	// it shipped with (PR 5's recorded baseline) vs the AVX2 dispatch, on
	// machines that have it. Both sides are bit-identical in output — this
	// row isolates the pure lane-width gain.
	if tensor.DetectedSIMDLevel() >= tensor.SIMDAVX2 {
		m, k, n := 4096, 256, 256
		a := tensor.New(m, k)
		tensor.NormalInit(a, 1, rng)
		bm := tensor.New(k, n)
		tensor.NormalInit(bm, 1, rng)
		c := tensor.New(m, n)
		prev, err := tensor.SetSIMDLevel(tensor.SIMDSSE)
		if err != nil {
			return nil, err
		}
		sseSec, sseAllocs := measure(func() { tensor.MatMul(c, a, bm) })
		if _, err := tensor.SetSIMDLevel(tensor.SIMDAVX2); err != nil {
			return nil, err
		}
		avxSec, avxAllocs := measure(func() { tensor.MatMul(c, a, bm) })
		if _, err := tensor.SetSIMDLevel(prev); err != nil {
			return nil, err
		}
		flops := 2 * float64(m) * float64(k) * float64(n)
		bytes := 4 * float64(m*k+k*n+m*n)
		report.Kernels = append(report.Kernels, KernelMeasurement{
			Kernel: "MatMul(sse→avx2)", Shape: fmt.Sprintf("%dx%d·%dx%d", m, k, k, n),
			BaselineSec: sseSec, OptimizedSec: avxSec, Speedup: sseSec / avxSec,
			BaselineGFLOPS: flops / sseSec / 1e9, OptimizedGFLOPS: flops / avxSec / 1e9,
			BaselineGBs: bytes / sseSec / 1e9, OptimizedGBs: bytes / avxSec / 1e9,
			BaselineAllocs: sseAllocs, OptimizedAllocs: avxAllocs,
			SIMDLevel: tensor.SIMDAVX2.String(),
		})
	}

	// --- Backward scatter at ogbn-products mini-batch scale.
	fx, err := newKernelFixture(seed)
	if err != nil {
		return nil, err
	}
	blk := fx.mb.Blocks[0] // the fanout-25 layer: the scatter-heavy one
	nb := gnn.NewNeighborhood(fx.m.Cfg, blk)
	cols := 128
	dAgg := tensor.New(len(blk.Dst), cols)
	tensor.NormalInit(dAgg, 1, rng)
	dh := tensor.New(len(blk.Src), cols)
	contributions := float64(blk.NumEdges()+len(blk.Dst)) * float64(cols)
	scatterBytes := contributions * 4 * 2 // read the gradient row, read+write the source row
	sSec, sAllocs := measure(func() {
		dh.Zero()
		nb.AggregateBackwardSerial(dh, dAgg)
	})
	oSec, oAllocs := measure(func() {
		dh.Zero()
		nb.AggregateBackward(dh, dAgg)
	})
	report.Kernels = append(report.Kernels, KernelMeasurement{
		Kernel:      "AggregateBackward",
		Shape:       fmt.Sprintf("|E|=%d |src|=%d f=%d (batch 1024, fanouts 25,10)", blk.NumEdges(), len(blk.Src), cols),
		BaselineSec: sSec, OptimizedSec: oSec, Speedup: sSec / oSec,
		BaselineGBs: scatterBytes / sSec / 1e9, OptimizedGBs: scatterBytes / oSec / 1e9,
		BaselineAllocs: sAllocs, OptimizedAllocs: oAllocs,
	})

	// --- Steady-state training step: allocating legacy path vs workspace.
	grads := gnn.NewGradients(fx.m.Params)
	ws := tensor.NewWorkspace()
	st := &gnn.ForwardState{}
	tSec, tAllocs := measure(func() {
		if _, _, _, err := fx.m.TrainStep(fx.mb, fx.x); err != nil {
			panic(err)
		}
	})
	wSec, wAllocs := measure(func() {
		ws.Reset()
		if _, _, err := fx.m.TrainStepWS(ws, st, fx.mb, fx.x, grads); err != nil {
			panic(err)
		}
	})
	report.Kernels = append(report.Kernels, KernelMeasurement{
		Kernel: "TrainStep", Shape: "batch 1024, fanouts 25,10, dims 100-128-47",
		BaselineSec: tSec, OptimizedSec: wSec, Speedup: tSec / wSec,
		BaselineAllocs: tAllocs, OptimizedAllocs: wAllocs,
	})

	// --- Steady-state serving batch (the computed-targets propagation).
	serveTargets := fx.ds.TrainIdx[:32]
	smp, err := sampler.New(fx.ds.Graph, []int{25, 10}, nil)
	if err != nil {
		return nil, err
	}
	smb, err := smp.Sample(serveTargets, rng)
	if err != nil {
		return nil, err
	}
	sx := tensor.New(len(smb.InputNodes()), fx.ds.Features.Cols)
	tensor.GatherRows(sx, fx.ds.Features, smb.InputNodes())
	iSec, iAllocs := measure(func() {
		if _, err := fx.m.InferMiniBatch(smb, sx); err != nil {
			panic(err)
		}
	})
	sws := tensor.NewWorkspace()
	jSec, jAllocs := measure(func() {
		sws.Reset()
		if _, err := fx.m.InferMiniBatchWS(sws, smb, sx); err != nil {
			panic(err)
		}
	})
	report.Kernels = append(report.Kernels, KernelMeasurement{
		Kernel: "ServingBatch", Shape: "32 targets, fanouts 25,10, dims 100-128-47",
		BaselineSec: iSec, OptimizedSec: jSec, Speedup: iSec / jSec,
		BaselineAllocs: iAllocs, OptimizedAllocs: jAllocs,
	})

	// --- End-to-end epoch, allocation path isolated: both sides run the
	// shipped kernels (their gain is the rows above); the baseline re-creates
	// the pre-workspace per-iteration behavior — fresh feature gather, fresh
	// gradients, allocating TrainStep — while the optimized side is the
	// trainer backends' scratch discipline.
	epochRng := tensor.NewRNG(seed + 1)
	batcher, err := sampler.NewBatcher(fx.ds.TrainIdx, 256, epochRng)
	if err != nil {
		return nil, err
	}
	esmp, err := sampler.New(fx.ds.Graph, []int{10, 5}, fx.ds.Labels)
	if err != nil {
		return nil, err
	}
	sgd, err := optim.NewSGD(0.1, 0)
	if err != nil {
		return nil, err
	}
	iters := 8 // a slice of the epoch large enough to time, small enough for CI
	legacyEpoch := func() {
		for it := 0; it < iters; it++ {
			mb, err := esmp.Sample(batcher.Next(), epochRng)
			if err != nil {
				panic(err)
			}
			x := tensor.New(len(mb.InputNodes()), fx.ds.Features.Cols)
			tensor.GatherRows(x, fx.ds.Features, mb.InputNodes())
			g, _, _, err := fx.m.TrainStep(mb, x)
			if err != nil {
				panic(err)
			}
			sgd.Step(fx.m.Params, g)
		}
	}
	ews := tensor.NewWorkspace()
	est := &gnn.ForwardState{}
	egrads := gnn.NewGradients(fx.m.Params)
	stageWS := tensor.NewWorkspace()
	var emb sampler.MiniBatch // reused by SampleInto: the optimized side samples allocation-free too
	wsEpoch := func() {
		for it := 0; it < iters; it++ {
			if err := esmp.SampleInto(&emb, batcher.Next(), epochRng); err != nil {
				panic(err)
			}
			mb := &emb
			stageWS.Reset()
			x := stageWS.Get(len(mb.InputNodes()), fx.ds.Features.Cols)
			tensor.GatherRows(x, fx.ds.Features, mb.InputNodes())
			ews.Reset()
			if _, _, err := fx.m.TrainStepWS(ews, est, mb, x, egrads); err != nil {
				panic(err)
			}
			sgd.Step(fx.m.Params, egrads)
		}
	}
	eSec, eAllocs := measure(legacyEpoch)
	fSec, fAllocs := measure(wsEpoch)
	report.Kernels = append(report.Kernels, KernelMeasurement{
		Kernel: "Epoch(alloc path)", Shape: fmt.Sprintf("%d iterations, batch 256, fanouts 10,5", iters),
		BaselineSec: eSec, OptimizedSec: fSec, Speedup: eSec / fSec,
		BaselineAllocs: eAllocs, OptimizedAllocs: fAllocs,
	})

	// --- Executed pipeline: the same epoch on the real engine under the
	// serial vs the software-pipelined (prefetch) schedule. Both sides run
	// the shipped kernels and produce bit-identical trajectories (gated in
	// core's tests); the row isolates pure scheduling — prepare(i+1)
	// overlapping compute(i). On a single-core runner the prefetch worker
	// shares the only core, so the honest expectation is ratio ≈ 1.0; the
	// ROADMAP's multicore re-record is where the overlap pays; on a single
	// proc RunEpoch degenerates to the inline pipelined schedule (a worker
	// could only time-slice), so this row honestly reads ≈1.0 here. One
	// epoch is ~100 ms — too slow for measure's window to average — so the
	// two modes are interleaved and each side reports its fastest of seven
	// rounds.
	// Sized so the depth-2 ring's two feature slots fit in cache together:
	// the row then prices the schedule, not the eviction pattern of a
	// fixture that happens to exceed this host's LLC.
	pipeSpec := datagen.Spec{Name: "pipeline-bench", NumVertices: 20000,
		NumEdges: 160000, FeatDims: []int{32, 32, 16}, TrainNodes: 1024}
	mkEngine := func(mode core.PipelineMode) (*core.Engine, error) {
		pds, err := datagen.Materialize(pipeSpec, 0.4, tensor.NewRNG(seed+2))
		if err != nil {
			return nil, err
		}
		plat := hw.CPUFPGAPlatform()
		plat.Accels = nil // CPU-only fleet: wall-clock is honest on this host
		return core.NewEngine(core.Config{
			Plat: plat, Data: pds,
			Model:     gnn.Config{Kind: gnn.SAGE, Dims: pipeSpec.FeatDims},
			LR:        0.1,
			BatchSize: 128,
			Fanouts:   []int{10, 5},
			Hybrid:    true, TFP: true,
			Pipeline: mode,
			Seed:     seed,
		})
	}
	serialEng, err := mkEngine(core.PipelineSerial)
	if err != nil {
		return nil, err
	}
	prefetchEng, err := mkEngine(core.PipelinePrefetch)
	if err != nil {
		return nil, err
	}
	runEpoch := func(e *core.Engine) func() {
		return func() {
			if _, err := e.RunEpoch(); err != nil {
				panic(err)
			}
		}
	}
	pSec, qSec, pAllocs, qAllocs := measurePairMin(runEpoch(serialEng), runEpoch(prefetchEng), 7)
	report.Kernels = append(report.Kernels, KernelMeasurement{
		Kernel: "Epoch(serial→prefetch)",
		Shape: fmt.Sprintf("%d targets/epoch, batch 128, fanouts 10,5, dims 32-32-16",
			pipeSpec.TrainNodes),
		BaselineSec: pSec, OptimizedSec: qSec, Speedup: pSec / qSec,
		BaselineAllocs: pAllocs, OptimizedAllocs: qAllocs,
		GOMAXPROCS: runtime.GOMAXPROCS(0), OverlapRatio: pSec / qSec,
	})

	// --- Annotate every row with its dispatch state and roofline fraction.
	for i := range report.Kernels {
		k := &report.Kernels[i]
		if k.TensorPar == 0 {
			k.TensorPar = tensor.Parallelism()
		}
		if k.SIMDLevel == "" {
			k.SIMDLevel = tensor.ActiveSIMDLevel().String()
		}
		rooflineFrac(k, report.PeakGFLOPS, report.StreamGBs)
	}
	return report, nil
}

// ExtKernels renders the kernel before/after suite as a table.
func ExtKernels(seed uint64) (*Table, error) {
	report, err := Kernels(seed)
	if err != nil {
		return nil, err
	}
	t := KernelsTable(report)
	return t, nil
}

// KernelsTable formats a report (exported so the root benchmark and
// cmd/experiments render the same artifact they serialize).
func KernelsTable(report *KernelsReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: kernel before/after (GOARCH %s, %d CPUs, tensor parallelism %d, simd %s, peak %.1f GFLOP/s, stream %.1f GB/s)",
			report.GOARCH, report.NumCPU, report.Parallelism, report.SIMDLevel,
			report.PeakGFLOPS, report.StreamGBs),
		Header: []string{"Kernel", "Shape", "Before s/op", "After s/op", "Speedup",
			"After GFLOP/s", "After GB/s", "Roofline", "Allocs before", "Allocs after"},
	}
	for _, k := range report.Kernels {
		t.AddRow(Txt(k.Kernel), Txt(k.Shape),
			Num(k.BaselineSec, "%.3g"), Num(k.OptimizedSec, "%.3g"), Num(k.Speedup, "%.2fx"),
			Num(k.OptimizedGFLOPS, "%.1f"), Num(k.OptimizedGBs, "%.1f"),
			Num(k.RooflineFrac*100, "%.0f%%"), Num(k.BaselineAllocs, "%.0f"), Num(k.OptimizedAllocs, "%.0f"))
	}
	return t
}

// WriteKernelsJSON runs the suite and records it at path (the repository
// convention is BENCH_kernels.json at the root).
func WriteKernelsJSON(path string, seed uint64) (*KernelsReport, error) {
	report, err := Kernels(seed)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return report, os.WriteFile(path, append(data, '\n'), 0o644)
}
