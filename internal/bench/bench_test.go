package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow(Txt("x"), Num(1.5, "%.2f"))
	s := tb.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "1.50") {
		t.Fatalf("render: %q", s)
	}
}

func TestTableLookup(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"k", "v"}}
	tb.AddRow(Txt("a"), Num(7, "%.0f"))
	tb.AddRow(Txt("b"), Num(9, "%.0f"))
	if v, ok := tb.Lookup(1, "b"); !ok || v != 9 {
		t.Fatalf("Lookup = %v %v", v, ok)
	}
	if _, ok := tb.Lookup(1, "zzz"); ok {
		t.Fatal("Lookup matched missing row")
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "b"}}
	tb.AddRow(Txt("x,y"), Num(2, "%.1f"))
	csv := tb.CSV()
	if csv != "a,b\nx;y,2.0\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestThroughputPositiveAndFPGAWins(t *testing.T) {
	tb, err := Throughput(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		gpu, fpga := row[2].Value, row[3].Value
		if gpu <= 0 || fpga <= 0 {
			t.Fatalf("non-positive throughput: %v %v", gpu, fpga)
		}
		if fpga <= gpu {
			t.Fatalf("%s/%s: CPU+FPGA MTEPS %v not above CPU+GPU %v",
				row[0].render(), row[1].render(), fpga, gpu)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n, 1); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if v, ok := tb.Lookup(2, "NVIDIA RTX A5000"); !ok || v != 27.8 {
		t.Fatalf("A5000 peak = %v", v)
	}
	if v, ok := tb.Lookup(4, "Xilinx Alveo U250"); !ok || v != 77 {
		t.Fatalf("U250 BW = %v", v)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tb := Table3()
	if v, ok := tb.Lookup(2, "ogbn-papers100M"); !ok || v != 1_615_685_872 {
		t.Fatalf("papers100M edges = %v", v)
	}
	if v, ok := tb.Lookup(3, "MAG240M(homo)"); !ok || v != 756 {
		t.Fatalf("MAG240M f0 = %v", v)
	}
}

func TestTable4InPaperBand(t *testing.T) {
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{72, 90, 48, 40}
	for i, w := range want {
		got := tb.Rows[0][i].Value
		if got < w-2 || got > w+2 {
			t.Fatalf("col %d: %.0f%%, paper %v%%", i, got, w)
		}
	}
}

// Fig. 8: the paper reports 5–14% average model error. Accept a slightly
// wider band (2–20%) per design-point since our overhead constants are
// calibrated, not measured.
func TestFig8ErrorBand(t *testing.T) {
	tb, err := Fig8(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var sum float64
	for _, row := range tb.Rows {
		e := row[4].Value
		if e < 0 || e > 20 {
			t.Fatalf("model error %.1f%% outside [0,20]", e)
		}
		sum += e
		// Actual (simulated) must not be faster than predicted: the
		// simulator only adds overheads.
		if row[3].Value < row[2].Value {
			t.Fatalf("actual %v < predicted %v", row[3].Value, row[2].Value)
		}
	}
	mean := sum / float64(len(tb.Rows))
	if mean < 2 || mean > 15 {
		t.Fatalf("mean model error %.1f%% outside the paper's regime (5–14%%)", mean)
	}
}

// Fig. 9: near-linear to 8 accelerators, saturated by 16 (the paper's CPU
// memory-bandwidth knee at ~12).
func TestFig9Shape(t *testing.T) {
	tb, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		x2, x8, x16 := row[3].Value, row[5].Value, row[6].Value
		if x2 < 1.8 {
			t.Fatalf("%s/%s: x2 = %v, not near-linear", row[0].render(), row[1].render(), x2)
		}
		if x8 < 6.5 {
			t.Fatalf("%s/%s: x8 = %v, not near-linear", row[0].render(), row[1].render(), x8)
		}
		if x16 > 14 {
			t.Fatalf("%s/%s: x16 = %v, no saturation knee", row[0].render(), row[1].render(), x16)
		}
		if x16 < x8 {
			t.Fatalf("%s/%s: throughput regressed at 16", row[0].render(), row[1].render())
		}
	}
}

// Fig. 10: CPU+GPU speedup in the 1.2–4x band (paper: 1.45–2.08), CPU+FPGA
// in the 6–30x band (paper: 8.87–12.6), FPGA always fastest.
func TestFig10Shape(t *testing.T) {
	tb, err := Fig10(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		gpuX, fpgaX := row[4].Value, row[6].Value
		if gpuX < 1.2 || gpuX > 4 {
			t.Fatalf("CPU+GPU speedup %v outside regime", gpuX)
		}
		if fpgaX < 6 || fpgaX > 30 {
			t.Fatalf("CPU+FPGA speedup %v outside regime", fpgaX)
		}
		if fpgaX <= gpuX {
			t.Fatal("CPU+FPGA must beat CPU+GPU")
		}
	}
}

// Table VI: HyScale beats PaGraph and P3, loses to DistDGLv2 (paper: 1.76x,
// 4.57x, 0.45x geomeans).
func TestTable6Geomeans(t *testing.T) {
	tb, err := Table6(1)
	if err != nil {
		t.Fatal(err)
	}
	geos := map[string]float64{}
	for _, row := range tb.Rows {
		if row[6].Fmt != "" { // geomean cell present
			geos[row[0].render()] = row[6].Value
		}
	}
	if geos["PaGraph"] <= 1 {
		t.Fatalf("PaGraph geomean %v — paper has HyScale winning (1.76x)", geos["PaGraph"])
	}
	if geos["P3"] <= 1 {
		t.Fatalf("P3 geomean %v — paper has HyScale winning (4.57x)", geos["P3"])
	}
	if geos["DistDGLv2"] >= 1 {
		t.Fatalf("DistDGLv2 geomean %v — paper has HyScale losing (0.45x)", geos["DistDGLv2"])
	}
}

// Table VII: after TFLOPS normalization HyScale wins every row (paper:
// 21–71x geomeans).
func TestTable7AllWins(t *testing.T) {
	tb, err := Table7(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[5].Value <= 1 {
			t.Fatalf("%s %s %s: normalized speedup %v — paper has HyScale winning all",
				row[0].render(), row[1].render(), row[2].render(), row[5].Value)
		}
	}
}

// Extension: quantization must never hurt, must clearly help at least one
// transfer-bound workload, and must be a no-op where propagation dominates —
// the exact selectivity the paper's §VIII limitation analysis predicts.
func TestExtQuantSelectivity(t *testing.T) {
	tb, err := ExtQuant(1)
	if err != nil {
		t.Fatal(err)
	}
	var maxGain, minGain = 0.0, 99.0
	for _, row := range tb.Rows {
		g := row[4].Value
		if g < 0.97 {
			t.Fatalf("%s/%s: quantization hurt (%vx)", row[0].render(), row[1].render(), g)
		}
		if g > maxGain {
			maxGain = g
		}
		if g < minGain {
			minGain = g
		}
	}
	if maxGain < 1.3 {
		t.Fatalf("no transfer-bound workload benefited (max %vx)", maxGain)
	}
	if minGain > 1.15 {
		t.Fatalf("quantization helped everywhere (min %vx) — selectivity lost", minGain)
	}
}

// Extension: multi-node scaling must be monotone and sub-linear.
func TestExtClusterShape(t *testing.T) {
	tb, err := ExtCluster()
	if err != nil {
		t.Fatal(err)
	}
	var prevNodes, prevSpeed float64
	for _, row := range tb.Rows {
		nodes, speed := row[1].Value, row[3].Value
		if nodes == 1 {
			if speed != 1 {
				t.Fatal("1-node speedup must be 1")
			}
		} else if nodes > prevNodes {
			if speed <= prevSpeed {
				t.Fatalf("speedup regressed at %v nodes", nodes)
			}
			if speed >= nodes {
				t.Fatalf("super-linear scaling (%vx at %v nodes) despite edge cut", speed, nodes)
			}
		}
		prevNodes, prevSpeed = nodes, speed
	}
}

// Extension: with a fixed device budget, the hybrid CPU+GPU+FPGA fleet must
// beat every homogeneous configuration of the same budget, and DRM must
// narrow the per-device busy-time imbalance from a naive uniform split.
func TestExtHeteroHybridWins(t *testing.T) {
	tb, err := ExtHetero(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // 3 fleets × 2 models
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, model := range []string{"GCN", "GraphSAGE"} {
		allG, ok1 := tb.Lookup(2, model, "16xGPU")
		allF, ok2 := tb.Lookup(2, model, "16xFPGA")
		hybrid, ok3 := tb.Lookup(2, model, "1xGPU+15xFPGA")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing fleet rows", model)
		}
		if hybrid >= allF || hybrid >= allG {
			t.Fatalf("%s: hybrid %.3fs not strictly faster than homogeneous (GPU %.3fs, FPGA %.3fs)",
				model, hybrid, allG, allF)
		}
		// The mixed fleet starts heavily imbalanced under a uniform split
		// (a GPU and an FPGA are nothing alike) and DRM must close most of
		// the gap.
		start, _ := tb.Lookup(4, model, "1xGPU+15xFPGA")
		end, _ := tb.Lookup(5, model, "1xGPU+15xFPGA")
		if start < 1.2 {
			t.Fatalf("%s: uniform split starts balanced (ratio %.2f) — premise broken", model, start)
		}
		if end >= start {
			t.Fatalf("%s: DRM did not narrow the imbalance: %.2f -> %.2f", model, start, end)
		}
		if end > 1.2 {
			t.Fatalf("%s: unequal devices did not converge (end ratio %.2f)", model, end)
		}
	}
}

// Fig. 11: each optimization must add on top of the previous one, and the
// magnitudes must stay in the paper's regime (hybrid ≤ ~1.3, full ≤ ~2.2).
func TestFig11Ordering(t *testing.T) {
	tb, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		static, withDRM, full := row[3].Value, row[4].Value, row[5].Value
		label := row[0].render() + "/" + row[1].render()
		if static < 1.0 {
			t.Fatalf("%s: hybrid static %v below baseline", label, static)
		}
		if withDRM < static*0.98 {
			t.Fatalf("%s: DRM %v worse than static %v", label, withDRM, static)
		}
		if full < withDRM*0.98 {
			t.Fatalf("%s: TFP %v worse than DRM %v", label, full, withDRM)
		}
		if static > 1.5 || full > 2.3 {
			t.Fatalf("%s: speedups (%v, %v) outside the paper's regime", label, static, full)
		}
	}
}
