package bench

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
)

// bothModels is the evaluation's model set.
var bothModels = []gnn.Kind{gnn.GCN, gnn.SAGE}

// Table2 reproduces the platform-specification table.
func Table2() *Table {
	t := &Table{
		Title:  "Table II: Specifications of the platforms",
		Header: []string{"Platform", "Frequency(GHz)", "Peak(TFLOPS)", "On-chip(MB)", "MemBW(GB/s)"},
	}
	for _, d := range []hw.Device{hw.EPYC7763(), hw.A5000(), hw.U250()} {
		t.AddRow(Txt(d.Name), Num(d.FreqGHz, "%.2f"), Num(d.PeakTFLOPS, "%.1f"),
			Num(d.OnChipMB, "%.0f"), Num(d.MemBWGBs, "%.0f"))
	}
	return t
}

// Table3 reproduces the dataset-statistics table.
func Table3() *Table {
	t := &Table{
		Title:  "Table III: Statistics of the datasets and GNN-layer dimensions",
		Header: []string{"Dataset", "#Vertices", "#Edges", "f0", "f1", "f2", "TrainNodes"},
	}
	for _, s := range datagen.PaperSpecs() {
		t.AddRow(Txt(s.Name), Num(float64(s.NumVertices), "%.0f"), Num(float64(s.NumEdges), "%.0f"),
			Num(float64(s.FeatDims[0]), "%.0f"), Num(float64(s.FeatDims[1]), "%.0f"),
			Num(float64(s.FeatDims[2]), "%.0f"), Num(float64(s.TrainNodes), "%.0f"))
	}
	return t
}

// Table4 reproduces the FPGA resource-utilization table for the published
// (n=8, m=2048) design point.
func Table4() (*Table, error) {
	u, err := accel.EstimateUtilization(accel.KernelParallelism{N: 8, M: 2048}, accel.U250Resources())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table IV: Hardware parameters and resource utilization (n=8, m=2048)",
		Header: []string{"LUTs", "DSPs", "URAM", "BRAM"},
	}
	t.AddRow(Num(u.LUT*100, "%.0f%%"), Num(u.DSP*100, "%.0f%%"),
		Num(u.URAM*100, "%.0f%%"), Num(u.BRAM*100, "%.0f%%"))
	return t, nil
}

// Fig8 reproduces the predicted-vs-actual epoch-time comparison on
// MAG240M (homo) for both models, sweeping 1–4 FPGAs. "Predicted" is the
// analytic model (§V); "Actual" is the pipeline simulator, which charges the
// kernel-launch and pipeline-flush overheads §VI-C names as error sources.
func Fig8(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 8: Predicted vs actual epoch time, MAG240M (homo)",
		Header: []string{"Model", "FPGAs", "Predicted(s)", "Actual(s)", "Error(%)"},
	}
	for _, kind := range bothModels {
		for _, n := range []int{1, 2, 3, 4} {
			plat := hw.CPUFPGAPlatform().WithAccelCount(n)
			m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(datagen.MAG240MHomo, kind))
			if err != nil {
				return nil, err
			}
			predicted := m.EpochTime(m.InitialAssignment(true))
			res, err := pipesim.Run(pipesim.Config{
				Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true}, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			errPct := math.Abs(res.EpochSec-predicted) / res.EpochSec * 100
			t.AddRow(Txt(kind.String()), Num(float64(n), "%.0f"),
				Num(predicted, "%.3f"), Num(res.EpochSec, "%.3f"), Num(errPct, "%.1f"))
		}
	}
	return t, nil
}

// Fig9 reproduces the scalability study: normalized throughput speedup for
// 1–16 accelerators on the CPU-FPGA platform, per dataset and model,
// evaluated with the performance model exactly as the paper does (§VI-D).
func Fig9() (*Table, error) {
	t := &Table{
		Title:  "Fig. 9: Scalability (normalized speedup vs 1 accelerator)",
		Header: []string{"Dataset", "Model", "x1", "x2", "x4", "x8", "x16"},
	}
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			row := []Cell{Txt(spec.Name), Txt(kind.String())}
			var base float64
			for _, n := range []int{1, 2, 4, 8, 16} {
				plat := hw.CPUFPGAPlatform().WithAccelCount(n)
				m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(spec, kind))
				if err != nil {
					return nil, err
				}
				// Accelerator-only assignment: the scalability question is how
				// the accelerator fleet scales; the CPU's fixed trainer slice
				// would otherwise mask the knee (the paper's own §VI-D study
				// attributes saturation purely to CPU memory bandwidth).
				mteps := m.ThroughputMTEPS(m.InitialAssignment(false))
				if n == 1 {
					base = mteps
				}
				row = append(row, Num(mteps/base, "%.2f"))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig10 reproduces the cross-platform comparison: epoch time of the
// multi-GPU PyG baseline, HyScale CPU-GPU, and HyScale CPU-FPGA, with
// speedups normalized to the baseline.
func Fig10(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 10: Cross-platform comparison (epoch seconds; speedup vs multi-GPU)",
		Header: []string{"Dataset", "Model", "Multi-GPU(s)", "CPU+GPU(s)", "CPU+GPU(x)", "CPU+FPGA(s)", "CPU+FPGA(x)"},
	}
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			w := perfmodel.DefaultWorkload(spec, kind)
			base, err := baselines.PyGMultiGPU(hw.CPUGPUPlatform(), w, seed)
			if err != nil {
				return nil, err
			}
			gpu, err := baselines.HyScale(hw.CPUGPUPlatform(), w, perfmodel.TorchProfile(),
				drm.New(hw.CPUGPUPlatform().TotalCPUCores()), seed)
			if err != nil {
				return nil, err
			}
			fpga, err := baselines.HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(),
				drm.New(hw.CPUFPGAPlatform().TotalCPUCores()), seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(Txt(spec.Name), Txt(kind.String()),
				Num(base, "%.2f"), Num(gpu, "%.2f"), Num(base/gpu, "%.2fx"),
				Num(fpga, "%.2f"), Num(base/fpga, "%.2fx"))
		}
	}
	return t, nil
}

// comparators lists the Table V systems with their published configurations.
type comparator struct {
	Name    string
	Fanouts []int
	Hidden  int
	Models  []gnn.Kind
	Epoch   func(perfmodel.Workload) (float64, error)
	TFLOPS  float64 // full-cluster peak for Table VII normalization
}

func comparators() []comparator {
	return []comparator{
		{"PaGraph", []int{25, 10}, 256, bothModels, baselines.PaGraph, hw.PaGraphNode().TotalTFLOPS()},
		{"P3", []int{25, 10}, 32, bothModels, baselines.P3, hw.P3Node().TotalTFLOPS() * 4},
		{"DistDGLv2", []int{15, 10, 5}, 256, []gnn.Kind{gnn.SAGE}, baselines.DistDGLv2, hw.DistDGLNode().TotalTFLOPS() * 8},
	}
}

// table6Specs are the datasets of Table VI.
var table6Specs = []datagen.Spec{datagen.OGBNProducts, datagen.OGBNPapers100M}

// Table6 reproduces the epoch-time comparison with the state of the art:
// for every comparator, HyScale (4 FPGAs, one node) runs the comparator's
// own configuration.
func Table6(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Table VI: Epoch time (sec) comparison with state-of-the-art",
		Header: []string{"System", "Dataset", "Model", "Theirs(s)", "ThisWork(s)", "Speedup", "GeoMean"},
	}
	for _, c := range comparators() {
		var ratios []float64
		type line struct {
			spec datagen.Spec
			kind gnn.Kind
			them float64
			ours float64
		}
		var lines []line
		for _, spec := range table6Specs {
			for _, kind := range c.Models {
				w, err := baselines.ComparatorWorkload(spec, kind, c.Fanouts, c.Hidden)
				if err != nil {
					return nil, err
				}
				them, err := c.Epoch(w)
				if err != nil {
					return nil, err
				}
				ours, err := baselines.HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(),
					drm.New(hw.CPUFPGAPlatform().TotalCPUCores()), seed)
				if err != nil {
					return nil, err
				}
				lines = append(lines, line{spec, kind, them, ours})
				ratios = append(ratios, them/ours)
			}
		}
		geo := geomean(ratios)
		for i, l := range lines {
			geoCell := Txt("")
			if i == len(lines)-1 {
				geoCell = Num(geo, "%.2fx")
			}
			t.AddRow(Txt(c.Name), Txt(l.spec.Name), Txt(l.kind.String()),
				Num(l.them, "%.2f"), Num(l.ours, "%.2f"), Num(l.them/l.ours, "%.2fx"), geoCell)
		}
	}
	return t, nil
}

// Table7 is Table VI normalized by platform peak TFLOPS (sec × TFLOPS),
// the paper's system-efficiency comparison.
func Table7(seed uint64) (*Table, error) {
	ours := hw.CPUFPGAPlatform().TotalTFLOPS()
	t := &Table{
		Title:  "Table VII: Normalized epoch time (sec x TFLOPS) comparison",
		Header: []string{"System", "Dataset", "Model", "Theirs", "ThisWork", "Speedup"},
	}
	for _, c := range comparators() {
		for _, spec := range table6Specs {
			for _, kind := range c.Models {
				w, err := baselines.ComparatorWorkload(spec, kind, c.Fanouts, c.Hidden)
				if err != nil {
					return nil, err
				}
				them, err := c.Epoch(w)
				if err != nil {
					return nil, err
				}
				our, err := baselines.HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(),
					drm.New(hw.CPUFPGAPlatform().TotalCPUCores()), seed)
				if err != nil {
					return nil, err
				}
				themN := them * c.TFLOPS
				ourN := our * ours
				t.AddRow(Txt(c.Name), Txt(spec.Name), Txt(kind.String()),
					Num(themN, "%.1f"), Num(ourN, "%.1f"), Num(themN/ourN, "%.1fx"))
			}
		}
	}
	return t, nil
}

// Fig11 reproduces the ablation study on the CPU-FPGA platform: Baseline
// (accelerator-only, fused prefetch), Hybrid with the static design-time
// mapping, Hybrid+DRM, and Hybrid+DRM+TFP. Values are speedups normalized
// to the baseline.
func Fig11(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Fig. 11: Impact of optimizations (speedup vs baseline)",
		Header: []string{"Dataset", "Model", "Baseline", "Hybrid(Static)", "Hybrid+DRM", "Hybrid+DRM+TFP"},
	}
	plat := hw.CPUFPGAPlatform()
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(spec, kind))
			if err != nil {
				return nil, err
			}
			run := func(mode pipesim.Mode) (float64, error) {
				var ctrl pipesim.Controller
				if mode.DRM {
					eng := drm.New(plat.TotalCPUCores())
					eng.FusedPrefetch = !mode.TFP
					ctrl = eng
				}
				res, err := pipesim.Run(pipesim.Config{Model: m, Mode: mode, Ctrl: ctrl, Seed: seed})
				if err != nil {
					return 0, err
				}
				return res.EpochSec, nil
			}
			base, err := run(pipesim.Mode{Hybrid: false})
			if err != nil {
				return nil, err
			}
			static, err := run(pipesim.Mode{Hybrid: true})
			if err != nil {
				return nil, err
			}
			withDRM, err := run(pipesim.Mode{Hybrid: true, DRM: true})
			if err != nil {
				return nil, err
			}
			full, err := run(pipesim.Mode{Hybrid: true, DRM: true, TFP: true})
			if err != nil {
				return nil, err
			}
			t.AddRow(Txt(spec.Name), Txt(kind.String()), Num(1.0, "%.2fx"),
				Num(base/static, "%.2fx"), Num(base/withDRM, "%.2fx"), Num(base/full, "%.2fx"))
		}
	}
	return t, nil
}

func geomean(xs []float64) float64 {
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

// All runs every experiment and returns the tables in paper order.
func All(seed uint64) ([]*Table, error) {
	t4, err := Table4()
	if err != nil {
		return nil, err
	}
	f8, err := Fig8(seed)
	if err != nil {
		return nil, err
	}
	f9, err := Fig9()
	if err != nil {
		return nil, err
	}
	f10, err := Fig10(seed)
	if err != nil {
		return nil, err
	}
	t6, err := Table6(seed)
	if err != nil {
		return nil, err
	}
	t7, err := Table7(seed)
	if err != nil {
		return nil, err
	}
	f11, err := Fig11(seed)
	if err != nil {
		return nil, err
	}
	eq, err := ExtQuant(seed)
	if err != nil {
		return nil, err
	}
	ec, err := ExtCluster()
	if err != nil {
		return nil, err
	}
	em, err := ExtMultiNodeExec(seed)
	if err != nil {
		return nil, err
	}
	eh, err := ExtHetero(seed)
	if err != nil {
		return nil, err
	}
	es, err := ExtServe(seed)
	if err != nil {
		return nil, err
	}
	esh, err := ExtServeHetero(seed)
	if err != nil {
		return nil, err
	}
	return []*Table{Table2(), Table3(), t4, f8, f9, f10, t6, t7, f11, eq, ec, em, eh, es, esh}, nil
}

// ByName returns a single experiment's table by its short identifier.
func ByName(name string, seed uint64) (*Table, error) {
	switch name {
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "table4":
		return Table4()
	case "fig8":
		return Fig8(seed)
	case "fig9":
		return Fig9()
	case "fig10":
		return Fig10(seed)
	case "table6":
		return Table6(seed)
	case "table7":
		return Table7(seed)
	case "fig11":
		return Fig11(seed)
	case "ext-quant":
		return ExtQuant(seed)
	case "ext-cluster":
		return ExtCluster()
	case "ext-multinode":
		return ExtMultiNodeExec(seed)
	case "ext-hetero":
		return ExtHetero(seed)
	case "ext-serve":
		return ExtServe(seed)
	case "ext-serve-hetero":
		return ExtServeHetero(seed)
	case "ext-kernels":
		return ExtKernels(seed)
	case "ext-serve-slo":
		return ExtServeSLO(seed)
	case "ext-serve-fault":
		return ExtServeFault(seed)
	case "ext-serve-throughput":
		return ExtServeThroughput(seed)
	case "throughput":
		return Throughput(seed)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (see Names())", name)
	}
}

// Names lists all experiment identifiers: the paper's artifacts in paper
// order, then the extensions.
func Names() []string {
	return []string{"table2", "table3", "table4", "fig8", "fig9", "fig10",
		"table6", "table7", "fig11", "throughput", "ext-quant", "ext-cluster",
		"ext-multinode", "ext-hetero", "ext-serve", "ext-serve-hetero",
		"ext-serve-slo", "ext-serve-fault", "ext-kernels", "ext-serve-throughput"}
}
