package bench

import "testing"

// Extension: serving latency must respond monotonically to the batch-window
// knob, throughput and tail latency to the cache-size knob, and the analytic
// serving model must hold its stated ±35% service-time band on every row.
func TestExtServeShape(t *testing.T) {
	tb, err := ExtServe(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var prevP50, prevHit, prevRPS, prevP99 float64
	for i, row := range tb.Rows {
		sweep := row[0].render()
		hit, p50, p99, rps := row[5].Value, row[6].Value, row[7].Value, row[8].Value
		if errPct := row[11].Value; errPct > 35 {
			t.Fatalf("row %d: analytic service time %0.f%% off the executed clock", i, errPct)
		}
		switch sweep {
		case "window":
			if i > 0 && p50 <= prevP50 {
				t.Fatalf("window sweep: p50 %v not above %v — latency not monotone in window", p50, prevP50)
			}
			prevP50 = p50
		case "cache":
			if row[3].Value > 0 { // rows after the cold baseline
				if hit <= prevHit {
					t.Fatalf("cache sweep: hit rate %v%% not above %v%%", hit, prevHit)
				}
				if rps <= prevRPS {
					t.Fatalf("cache sweep: throughput %v not above %v", rps, prevRPS)
				}
				if p99 >= prevP99 {
					t.Fatalf("cache sweep: p99 %v not below %v", p99, prevP99)
				}
			}
			prevHit, prevRPS, prevP99 = hit, rps, p99
		default:
			t.Fatalf("unknown sweep %q", sweep)
		}
	}
}
