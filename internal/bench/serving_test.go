package bench

import (
	"strings"
	"testing"
)

// Extension: serving latency must respond monotonically to the batch-window
// knob, throughput and tail latency to the cache-size knob, and the analytic
// serving model must hold its stated ±35% service-time band on every row.
func TestExtServeShape(t *testing.T) {
	tb, err := ExtServe(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var prevP50, prevHit, prevRPS, prevP99 float64
	for i, row := range tb.Rows {
		sweep := row[0].render()
		hit, p50, p99, rps := row[5].Value, row[6].Value, row[7].Value, row[8].Value
		if errPct := row[11].Value; errPct > 35 {
			t.Fatalf("row %d: analytic service time %0.f%% off the executed clock", i, errPct)
		}
		switch sweep {
		case "window":
			if i > 0 && p50 <= prevP50 {
				t.Fatalf("window sweep: p50 %v not above %v — latency not monotone in window", p50, prevP50)
			}
			prevP50 = p50
		case "cache":
			if row[3].Value > 0 { // rows after the cold baseline
				if hit <= prevHit {
					t.Fatalf("cache sweep: hit rate %v%% not above %v%%", hit, prevHit)
				}
				if rps <= prevRPS {
					t.Fatalf("cache sweep: throughput %v not above %v", rps, prevRPS)
				}
				if p99 >= prevP99 {
					t.Fatalf("cache sweep: p99 %v not below %v", p99, prevP99)
				}
			}
			prevHit, prevRPS, prevP99 = hit, rps, p99
		default:
			t.Fatalf("unknown sweep %q", sweep)
		}
	}
}

// Extension: at an equal 3-device budget the mixed CPU+GPU+FPGA pool must
// achieve strictly lower mean latency than both homogeneous pools in every
// load regime, the analytic per-device prediction must hold the ±35% band on
// every row, and the mixed pool's routing must be genuinely heterogeneous —
// every device kind takes batches under overload.
func TestExtServeHeteroShape(t *testing.T) {
	tb, err := ExtServeHetero(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 loads x 3 fleets)", len(tb.Rows))
	}
	for group := 0; group < 2; group++ {
		rows := tb.Rows[3*group : 3*group+3]
		gpuMean, fpgaMean, mixedMean := rows[0][4].Value, rows[1][4].Value, rows[2][4].Value
		if mixedMean >= gpuMean || mixedMean >= fpgaMean {
			t.Fatalf("%s: mixed mean %.3fms not strictly below homogeneous %.3f/%.3fms",
				rows[0][0].render(), mixedMean, gpuMean, fpgaMean)
		}
		for i, row := range rows {
			if errPct := row[10].Value; errPct > 35 {
				t.Fatalf("%s row %d: analytic service %.0f%% off the executed clock",
					row[0].render(), i, errPct)
			}
		}
	}
	// Overload mixed row: the per-kind batch split C/G/F must have every
	// kind serving.
	split := tb.Rows[5][11].render()
	for i, part := range strings.Split(split, "/") {
		if part == "0" {
			t.Fatalf("overload mixed split %q: kind %d served nothing", split, i)
		}
	}
}
