// Serving data-plane before/after benchmarks: the measured perf trajectory
// of the serving hot path. Three groups of rows:
//
//   - cache: concurrent ops/sec of the legacy single-lock LRU (retained
//     in-tree as the 1-shard oracle) against the lock-striped sharded cache
//     at 1/4/8 shards, single-key and batched;
//   - e2e: wall-clock requests/sec and allocations/request of a full serving
//     run, next to a clearly-labeled replay of the pre-refactor dispatch
//     allocation pattern (per-key cache ops, per-batch maps and slices,
//     per-vertex embedding copies, boxed heap entries);
//   - policy: hit rate, virtual throughput, tail latency, and mean
//     counterfactual routing regret per routing policy on the heterogeneous
//     pool, with the affinity-vs-earliest hit-rate delta recorded whichever
//     way it lands.
//
// The report is written to BENCH_serve.json so later PRs have a recorded
// serving baseline to regress against; the ext-serve-throughput experiment
// renders the same numbers as a table.
package bench

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// ServeCacheRow is one concurrent cache-throughput measurement.
type ServeCacheRow struct {
	Cache           string  `json:"cache"`   // "legacy" or "sharded"
	Shards          int     `json:"shards"`  // 0 for the legacy cache
	Batched         bool    `json:"batched"` // GetMany/PutMany in 32-key batches
	Goroutines      int     `json:"goroutines"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	SpeedupVsLegacy float64 `json:"speedup_vs_legacy"`
}

// ServePolicyRow is one routing policy's end-to-end profile on the
// heterogeneous pool.
type ServePolicyRow struct {
	Policy       string  `json:"policy"`
	HitRate      float64 `json:"hit_rate"`
	VirtualRPS   float64 `json:"virtual_rps"`
	P99Ms        float64 `json:"p99_ms"`
	MeanBatch    float64 `json:"mean_batch"`
	TraceRows    int     `json:"trace_rows"`
	MeanRegretMs float64 `json:"mean_counterfactual_regret_ms"`
}

// ServeReport is the BENCH_serve.json payload.
type ServeReport struct {
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	CPUModel string `json:"cpu_model,omitempty"`

	Cache []ServeCacheRow `json:"cache"`

	// Service-time memo lookup on the router's per-batch path: the legacy
	// map[int]float64 against the dense slice the pipeline keeps now.
	MemoMapNsPerOp   float64 `json:"memo_map_ns_per_op"`
	MemoSliceNsPerOp float64 `json:"memo_slice_ns_per_op"`

	// End-to-end serving run (CPU+FPGA pool, open-loop Zipf stream).
	E2ERequests   int     `json:"e2e_requests"`
	E2EWallRPS    float64 `json:"e2e_wall_rps"`
	E2EVirtualRPS float64 `json:"e2e_virtual_rps"`
	// AllocsPerRequestBefore replays the pre-refactor dispatch allocation
	// pattern (it is a reconstruction, not a measurement of old code — the
	// old dispatch loop no longer exists). After is measured on real runs as
	// the marginal allocations of a longer stream over a shorter one, so the
	// one-time server construction cancels and the number reflects the
	// steady state TestServingSteadyStateZeroAlloc gates.
	AllocsPerRequestBefore float64 `json:"allocs_per_request_before_reconstructed"`
	AllocsPerRequestAfter  float64 `json:"allocs_per_request_after_steady_state"`

	Policies []ServePolicyRow `json:"policies"`
	// AffinityHitDelta = affinity hit rate − earliest hit rate, recorded
	// whichever way it lands (the sketch can help or hurt at a given load).
	AffinityHitDelta float64 `json:"affinity_vs_earliest_hit_delta"`

	// SLO is the per-class workload comparison: one recorded trace replayed
	// under every batch-formation policy (see ServeSLO).
	SLO *ServeSLOReport `json:"slo"`

	// Fault is the fault-injection comparison: the same style of recorded
	// trace replayed fault-free and with a mid-run worker loss (see
	// ServeFault).
	Fault *ServeFaultReport `json:"fault"`
}

// cacheWorkload runs G goroutines of opsPerG mixed single-key operations
// (3 lookups : 1 insert over a 4096-key working set) against the given ops
// and returns aggregate operations/second.
func cacheWorkload(g, opsPerG, stride int,
	get func(k serve.CacheKey), put func(k serve.CacheKey, emb []float32)) float64 {
	keys := make([]serve.CacheKey, 4096)
	for i := range keys {
		keys[i] = serve.CacheKey{Vertex: int32(i), Version: 1}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for gid := 0; gid < g; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			emb := make([]float32, stride)
			// Stride the key space per goroutine so shards see mixed traffic.
			at := gid * 977
			for i := 0; i < opsPerG; i++ {
				k := keys[at%len(keys)]
				at += 31
				if i&3 == 3 {
					put(k, emb)
				} else {
					get(k)
				}
			}
		}(gid)
	}
	wg.Wait()
	return float64(g*opsPerG) / time.Since(start).Seconds()
}

// batchedCacheWorkload is cacheWorkload in 32-key GetMany/PutMany batches.
func batchedCacheWorkload(g, opsPerG, stride int, c *serve.ShardedCache) float64 {
	keys := make([]serve.CacheKey, 4096)
	for i := range keys {
		keys[i] = serve.CacheKey{Vertex: int32(i), Version: 1}
	}
	const batch = 32
	var wg sync.WaitGroup
	start := time.Now()
	for gid := 0; gid < g; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			ks := make([]serve.CacheKey, batch)
			ready := make([]float64, batch)
			hit := make([]bool, batch)
			embs := make([][]float32, batch)
			emb := make([]float32, stride)
			for i := range embs {
				embs[i] = emb
			}
			at := gid * 977
			for done := 0; done < opsPerG; done += batch {
				for j := 0; j < batch; j++ {
					ks[j] = keys[at%len(keys)]
					at += 31
				}
				if (done/batch)&3 == 3 {
					c.PutMany(ks, embs, 0)
				} else {
					c.GetMany(ks, ready, hit, nil)
				}
			}
		}(gid)
	}
	wg.Wait()
	return float64(g*opsPerG) / time.Since(start).Seconds()
}

// legacyFloatHeap reproduces the container/heap completion tracking the
// admission controller used before the hand-rolled heap: every push boxes
// a float64 into an interface.
type legacyFloatHeap []float64

func (h legacyFloatHeap) Len() int            { return len(h) }
func (h legacyFloatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h legacyFloatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyFloatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *legacyFloatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// replayLegacyDispatchAllocs replays the pre-refactor dispatch loop's
// allocation pattern at the shape of a measured run (its batch count, mean
// batch size, and computed-vertex count) and returns total Mallocs. It is a
// reconstruction: the per-key cache traffic, the per-batch completion slice
// and vertex-dedup map, the per-vertex embedding copy on cache publish, and
// the boxed completion-heap entries — everything the sharded cache, the
// batched cache ops, the generation-stamped dedup, and the retained scratch
// deleted — with the numeric compute itself excluded from both sides.
func replayLegacyDispatchAllocs(st *serve.Stats, stride int) float64 {
	if st.Batches == 0 {
		return 0
	}
	perBatch := st.Served / st.Batches
	if perBatch < 1 {
		perBatch = 1
	}
	computedPerBatch := st.Computed / st.Batches
	cache := serve.NewEmbeddingCache(4096)
	row := make([]float32, stride)
	var h legacyFloatHeap
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	v := int32(0)
	for b := 0; b < st.Batches; b++ {
		completions := make([]float64, 0, perBatch)
		waiting := make(map[int32][]int, perBatch)
		for r := 0; r < perBatch; r++ {
			v++
			k := serve.CacheKey{Vertex: v % 3000, Version: 1}
			if _, _, ok := cache.Get(k); !ok {
				waiting[k.Vertex] = append(waiting[k.Vertex], r)
			}
		}
		for c := 0; c < computedPerBatch; c++ {
			v++
			// The old publish path copied every computed row into a fresh
			// slice the legacy cache then retained.
			cache.Put(serve.CacheKey{Vertex: v % 3000, Version: 1},
				append([]float32(nil), row...), 0)
		}
		for r := 0; r < perBatch; r++ {
			completions = append(completions, float64(r))
		}
		heap.Push(&h, float64(b)) // boxed completion-heap entry
		if h.Len() > 64 {
			heap.Pop(&h)
		}
	}
	runtime.ReadMemStats(&ms1)
	return float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Served)
}

// serveFixture materializes the products-serve dataset and model shared by
// the e2e and policy rows (the same shapes the ext-serve experiments use).
func serveFixture(seed uint64) (*datagen.Dataset, *gnn.Model, error) {
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "products-serve", NumVertices: 3000, NumEdges: 24000,
		FeatDims: []int{100, 64, 16}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, rng)
	if err != nil {
		return nil, nil, err
	}
	model, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims}, rng)
	if err != nil {
		return nil, nil, err
	}
	return ds, model, nil
}

// meanRegretMs computes the mean counterfactual regret of a traced run: how
// much later (ms) the chosen worker was predicted to finish than the best
// non-saturated alternative, averaged over decisions.
func meanRegretMs(st *serve.Stats) float64 {
	if len(st.RouteTrace) == 0 {
		return 0
	}
	var regret float64
	for _, d := range st.RouteTrace {
		best := math.Inf(1)
		for _, a := range d.Alternatives {
			if !a.Saturated && a.PredictedDoneSec < best {
				best = a.PredictedDoneSec
			}
		}
		if math.IsInf(best, 1) {
			best = d.PredictedDoneSec
		}
		regret += d.PredictedDoneSec - best
	}
	return 1e3 * regret / float64(len(st.RouteTrace))
}

// ServeThroughput runs the full serving data-plane suite.
func ServeThroughput(seed uint64) (*ServeReport, error) {
	report := &ServeReport{
		GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(), CPUModel: cpuModel(),
	}

	// --- Concurrent cache throughput: legacy single lock vs lock striping.
	const stride = 16
	const goroutines = 4
	const opsPerG = 200_000
	legacy := serve.NewEmbeddingCache(1024)
	legacyOps := cacheWorkload(goroutines, opsPerG, stride,
		func(k serve.CacheKey) { legacy.Get(k) },
		func(k serve.CacheKey, e []float32) { legacy.Put(k, e, 0) })
	report.Cache = append(report.Cache, ServeCacheRow{
		Cache: "legacy", Goroutines: goroutines, OpsPerSec: legacyOps, SpeedupVsLegacy: 1,
	})
	for _, shards := range []int{1, 4, 8} {
		c := serve.NewShardedCache(1024, shards, stride)
		ops := cacheWorkload(goroutines, opsPerG, stride,
			func(k serve.CacheKey) { c.Get(k) },
			func(k serve.CacheKey, e []float32) { c.Put(k, e, 0) })
		report.Cache = append(report.Cache, ServeCacheRow{
			Cache: "sharded", Shards: shards, Goroutines: goroutines,
			OpsPerSec: ops, SpeedupVsLegacy: ops / legacyOps,
		})
	}
	cb := serve.NewShardedCache(1024, 4, stride)
	batchedOps := batchedCacheWorkload(goroutines, opsPerG, stride, cb)
	report.Cache = append(report.Cache, ServeCacheRow{
		Cache: "sharded", Shards: 4, Batched: true, Goroutines: goroutines,
		OpsPerSec: batchedOps, SpeedupVsLegacy: batchedOps / legacyOps,
	})

	// --- Service-time memo: map (legacy worker) vs dense slice (pipeline).
	memoMap := make(map[int]float64, 32)
	memoSlice := make([]float64, 33)
	for c := 1; c <= 32; c++ {
		memoMap[c] = float64(c) * 1e-4
		memoSlice[c] = float64(c) * 1e-4
	}
	var sink float64
	i := 0
	mapSec, _ := measure(func() {
		for j := 0; j < 1024; j++ {
			sink += memoMap[i&31+1]
			i++
		}
	})
	sliceSec, _ := measure(func() {
		for j := 0; j < 1024; j++ {
			sink += memoSlice[i&31+1]
			i++
		}
	})
	_ = sink
	report.MemoMapNsPerOp = mapSec / 1024 * 1e9
	report.MemoSliceNsPerOp = sliceSec / 1024 * 1e9

	// --- End-to-end serving run: wall-clock throughput and allocs/request.
	ds, model, err := serveFixture(seed)
	if err != nil {
		return nil, err
	}
	e2e := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 10000, RatePerSec: 8000,
		ZipfExponent: 1.1, MaxBatch: 32, WindowSec: 0.5e-3, Workers: 2,
		QueueCap: 512, CacheSize: 4096, CacheShards: 4, Seed: seed,
	}
	if _, err := serve.Run(e2e); err != nil { // warm build caches before timing
		return nil, err
	}
	timedRun := func(cfg serve.Config) (*serve.Stats, float64, float64, error) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		st, err := serve.Run(cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		return st, wall, float64(ms1.Mallocs - ms0.Mallocs), nil
	}
	st, wall, _, err := timedRun(e2e)
	if err != nil {
		return nil, err
	}
	report.E2ERequests = e2e.NumRequests
	report.E2EWallRPS = float64(e2e.NumRequests) / wall
	report.E2EVirtualRPS = st.ThroughputRPS
	// The allocation comparison isolates the dispatch path (what the replay
	// below reconstructs and what TestServingSteadyStateZeroAlloc gates), so
	// it runs on the CPU pool: the FPGA dataflow kernels allocate in their
	// numeric compute, which the replay excludes from both sides. After is
	// the marginal allocations of the extra requests the full run serves
	// over a quarter-length run — both pay the same one-time construction,
	// so the difference is the steady-state dispatch path alone.
	cpuOnly := e2e
	cpuOnly.Plat.Accels = nil
	short := cpuOnly
	short.NumRequests = cpuOnly.NumRequests / 4
	_, _, shortAllocs, err := timedRun(short)
	if err != nil {
		return nil, err
	}
	cpuSt, _, fullAllocs, err := timedRun(cpuOnly)
	if err != nil {
		return nil, err
	}
	marginal := (fullAllocs - shortAllocs) / float64(cpuOnly.NumRequests-short.NumRequests)
	if marginal < 0 {
		marginal = 0 // GC noise on a tiny difference
	}
	report.AllocsPerRequestAfter = marginal
	report.AllocsPerRequestBefore = replayLegacyDispatchAllocs(cpuSt, stride)

	// --- Per-policy profile on the heterogeneous pool.
	plat, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		return nil, err
	}
	var earliestHit, affinityHit float64
	for _, policy := range []string{serve.PolicyEarliest, serve.PolicyLeastLoaded, serve.PolicyAffinity} {
		cfg := serve.Config{
			Plat: plat, Data: ds, Model: model,
			Fanouts: []int{10, 5}, NumRequests: 4000, RatePerSec: 12000,
			ZipfExponent: 1.1, MaxBatch: 32, WindowSec: 0.5e-3, Workers: 2,
			CPUPeer: true, SmallBatchCut: 4, QueueCap: 256,
			CacheSize: 512, CacheShards: 4, Seed: seed,
			Policy: policy, RouteTrace: true,
		}
		pst, err := serve.Run(cfg)
		if err != nil {
			return nil, err
		}
		report.Policies = append(report.Policies, ServePolicyRow{
			Policy: policy, HitRate: pst.HitRate, VirtualRPS: pst.ThroughputRPS,
			P99Ms: 1e3 * pst.P99Sec, MeanBatch: pst.MeanBatch,
			TraceRows: len(pst.RouteTrace), MeanRegretMs: meanRegretMs(pst),
		})
		switch policy {
		case serve.PolicyEarliest:
			earliestHit = pst.HitRate
		case serve.PolicyAffinity:
			affinityHit = pst.HitRate
		}
	}
	report.AffinityHitDelta = affinityHit - earliestHit

	// --- Per-class SLO comparison: one trace, every formation policy.
	report.SLO, err = ServeSLO(seed)
	if err != nil {
		return nil, err
	}

	// --- Fault injection: one trace replayed healthy and with a worker loss.
	report.Fault, err = ServeFault(seed)
	if err != nil {
		return nil, err
	}
	return report, nil
}

// ServeTable formats a report (exported so the root benchmark and
// cmd/experiments render the same artifact they serialize).
func ServeTable(report *ServeReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: serving data plane (GOARCH %s, %d CPUs; "+
			"memo map %.1fns -> slice %.1fns; e2e %.0f req/s wall, steady-state allocs/req %.1f -> %.3f)",
			report.GOARCH, report.NumCPU,
			report.MemoMapNsPerOp, report.MemoSliceNsPerOp,
			report.E2EWallRPS, report.AllocsPerRequestBefore, report.AllocsPerRequestAfter),
		Header: []string{"Row", "Cache/Policy", "Shards", "Mops/s", "vs legacy",
			"Hit%", "RPS", "p99(ms)", "Regret(ms)"},
	}
	for _, r := range report.Cache {
		name := r.Cache
		if r.Batched {
			name += "+batched"
		}
		t.AddRow(Txt("cache"), Txt(name), Num(float64(r.Shards), "%.0f"),
			Num(r.OpsPerSec/1e6, "%.2f"), Num(r.SpeedupVsLegacy, "%.2fx"),
			Txt(""), Txt(""), Txt(""), Txt(""))
	}
	for _, p := range report.Policies {
		t.AddRow(Txt("policy"), Txt(p.Policy), Txt(""), Txt(""), Txt(""),
			Num(100*p.HitRate, "%.1f"), Num(p.VirtualRPS, "%.0f"),
			Num(p.P99Ms, "%.3f"), Num(p.MeanRegretMs, "%.4f"))
	}
	return t
}

// ExtServeThroughput renders the serving data-plane suite as a table.
func ExtServeThroughput(seed uint64) (*Table, error) {
	report, err := ServeThroughput(seed)
	if err != nil {
		return nil, err
	}
	return ServeTable(report), nil
}

// WriteServeJSON runs the suite and records it at path (the repository
// convention is BENCH_serve.json at the root).
func WriteServeJSON(path string, seed uint64) (*ServeReport, error) {
	report, err := ServeThroughput(seed)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return report, os.WriteFile(path, append(data, '\n'), 0o644)
}
