// SLO-class serving benchmark: a three-cohort workload (interactive Poisson
// with a diurnal envelope, standard Gamma, bulk Weibull — rates anchored on
// the analytic capacity prediction) is recorded to a trace once, then
// replayed under each batch-formation policy, so every policy sees exactly
// the same offered load and the per-class tails are directly comparable.
package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/serve"
)

// ServeSLORow is one (formation, class) cell of the replayed comparison.
type ServeSLORow struct {
	Formation string  `json:"formation"`
	Class     string  `json:"class"`
	Offered   int     `json:"offered"`
	Served    int     `json:"served"`
	Rejected  int     `json:"rejected"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// ServeSLOReport is the per-class serving section of BENCH_serve.json.
type ServeSLOReport struct {
	CapacityRPS float64 `json:"capacity_rps"` // analytic all-miss capacity
	OfferedRPS  float64 `json:"offered_rps"`  // Σ cohort base rates (0.6 × capacity)
	Requests    int     `json:"requests"`     // trace length replayed per formation

	Rows []ServeSLORow      `json:"rows"`
	Jain map[string]float64 `json:"jain_by_formation"`

	// InteractiveP99DeltaMs is the fcfs interactive p99 minus the
	// priority-fcfs interactive p99 on the identical trace — positive means
	// the class-weighted windows improved the latency-sensitive class's
	// tail. Recorded whichever way it lands.
	InteractiveP99DeltaMs float64 `json:"interactive_p99_delta_ms_fcfs_minus_priority"`
}

// sloFormations is the comparison order (fcfs first: it is the baseline).
var sloFormations = []string{serve.FormationFCFS, serve.FormationPriority, serve.FormationSJF}

// ServeSLO runs the SLO-class workload comparison.
func ServeSLO(seed uint64) (*ServeSLOReport, error) {
	ds, model, err := serveFixture(seed)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 6000,
		MaxBatch: 32, WindowSec: 2e-3, Workers: 2,
		QueueCap: 512, CacheSize: 2048, CacheShards: 4, Seed: seed,
	}
	// Anchor the offered load on the analytic all-miss capacity: 0.6× keeps
	// the pool busy enough that batching delay dominates the tail (where
	// formation policy acts) without collapsing into admission shedding.
	// (The probe rate is a placeholder — CapacityRPS does not depend on it.)
	cfg.RatePerSec = 1
	pred, err := serve.Predict(cfg, 1)
	if err != nil {
		return nil, err
	}
	rate := 0.6 * pred.CapacityRPS
	cfg.RatePerSec = rate // the analytic prediction's operating point
	cfg.Workload = &serve.WorkloadSpec{Cohorts: []serve.Cohort{
		{Name: "web", Class: serve.ClassInteractive, Dist: serve.DistPoisson,
			RatePerSec: 0.25 * rate, Zipf: 1.1,
			Phases: []serve.RatePhase{{DurationSec: 0.05, Mult: 2}, {DurationSec: 0.05, Mult: 0.5}}},
		{Name: "api", Class: serve.ClassStandard, Dist: serve.DistGamma, Shape: 0.5,
			RatePerSec: 0.45 * rate, Zipf: 1.1},
		{Name: "etl", Class: serve.ClassBulk, Dist: serve.DistWeibull, Shape: 0.7,
			RatePerSec: 0.30 * rate, Zipf: 0.8},
	}}
	trace, err := serve.GenerateTrace(cfg)
	if err != nil {
		return nil, err
	}
	report := &ServeSLOReport{
		CapacityRPS: pred.CapacityRPS, OfferedRPS: rate,
		Requests: len(trace.Requests), Jain: map[string]float64{},
	}
	var fcfsP99, priorityP99 float64
	for _, formation := range sloFormations {
		rcfg := cfg
		rcfg.Workload = nil
		rcfg.Replay = trace
		rcfg.Formation = formation
		st, err := serve.Run(rcfg)
		if err != nil {
			return nil, err
		}
		report.Jain[formation] = st.JainFairness
		for c := 0; c < serve.NumClasses; c++ {
			cs := st.PerClass[c]
			if cs.Offered == 0 {
				continue
			}
			report.Rows = append(report.Rows, ServeSLORow{
				Formation: formation, Class: serve.SLOClass(c).String(),
				Offered: cs.Offered, Served: cs.Served, Rejected: cs.Rejected,
				P50Ms: 1e3 * cs.P50Sec, P99Ms: 1e3 * cs.P99Sec,
			})
		}
		switch formation {
		case serve.FormationFCFS:
			fcfsP99 = st.PerClass[serve.ClassInteractive].P99Sec
		case serve.FormationPriority:
			priorityP99 = st.PerClass[serve.ClassInteractive].P99Sec
		}
	}
	report.InteractiveP99DeltaMs = 1e3 * (fcfsP99 - priorityP99)
	return report, nil
}

// ExtServeSLO renders the SLO-class comparison as a table.
func ExtServeSLO(seed uint64) (*Table, error) {
	report, err := ServeSLO(seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: SLO-class serving (capacity %.0f req/s, offered %.0f req/s, "+
			"%d replayed requests; interactive p99 fcfs-priority delta %+.3fms)",
			report.CapacityRPS, report.OfferedRPS, report.Requests, report.InteractiveP99DeltaMs),
		Header: []string{"Formation", "Class", "Offered", "Served", "Rejected",
			"p50(ms)", "p99(ms)", "Jain"},
	}
	prev := ""
	for _, r := range report.Rows {
		jain := Txt("")
		if r.Formation != prev {
			jain = Num(report.Jain[r.Formation], "%.4f")
			prev = r.Formation
		}
		t.AddRow(Txt(r.Formation), Txt(r.Class),
			Num(float64(r.Offered), "%.0f"), Num(float64(r.Served), "%.0f"),
			Num(float64(r.Rejected), "%.0f"),
			Num(r.P50Ms, "%.3f"), Num(r.P99Ms, "%.3f"), jain)
	}
	return t, nil
}
