package bench

import (
	"testing"

	"repro/internal/serve"
)

// The SLO comparison replays one recorded trace under every formation
// policy, so per-class offered counts must be identical across formations,
// every ledger must balance, and each formation gets a well-formed fairness
// index. The interactive-tail delta is recorded whichever way it lands — the
// shape test checks structure, not sign.
func TestExtServeSLOShape(t *testing.T) {
	report, err := ServeSLO(1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(sloFormations) * serve.NumClasses
	if len(report.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d (3 formations x 3 active classes)", len(report.Rows), wantRows)
	}
	offered := map[string]int{}
	for _, r := range report.Rows {
		if r.Served+r.Rejected != r.Offered {
			t.Errorf("%s/%s ledger: served %d + rejected %d != offered %d",
				r.Formation, r.Class, r.Served, r.Rejected, r.Offered)
		}
		if r.Served > 0 && (r.P50Ms <= 0 || r.P99Ms < r.P50Ms) {
			t.Errorf("%s/%s quantiles inconsistent: p50 %v p99 %v", r.Formation, r.Class, r.P50Ms, r.P99Ms)
		}
		if prev, ok := offered[r.Class]; ok && prev != r.Offered {
			t.Errorf("class %s offered %d under one formation, %d under another — the replayed trace must pin the load",
				r.Class, prev, r.Offered)
		}
		offered[r.Class] = r.Offered
	}
	total := 0
	for _, n := range offered {
		total += n
	}
	if total != report.Requests {
		t.Errorf("per-class offered sums to %d, trace has %d requests", total, report.Requests)
	}
	for _, f := range sloFormations {
		j, ok := report.Jain[f]
		if !ok || j <= 0 || j > 1 {
			t.Errorf("formation %s: Jain fairness %v outside (0, 1]", f, j)
		}
	}
}
