// Roofline anchoring for the kernel trajectory: two micro-probes establish
// the machine's operational ceilings — an FMA-free peak-FLOPS probe (the
// numeric core deliberately keeps multiply and add unfused for bit-exact
// SIMD dispatch, so the honest compute roof is mul+add issue rate, not the
// FMA spec sheet) and a stream-bandwidth probe — and every kernel row is
// then reported as a fraction of the roofline at its arithmetic intensity:
// min(peak, AI × stream). Both probes run the repo's own kernels, so the
// roof moves with the dispatch level like the kernels it anchors.
package bench

import (
	"math"
	"os"
	"strings"

	"repro/internal/tensor"
)

// MachinePeaks measures the two roofline ceilings with in-repo kernels.
//
// The peak probe drives the blocked GEMM's four-row register tile
// (tensor.AxpyRow4: 8 flops per element of b) over rows that fit L1, so
// arithmetic throughput — not memory — is the limit. The stream probe
// drives tensor.AxpyRow (2 flops, 12 bytes per element: read dst and src,
// write dst) over arrays far beyond LLC, so bandwidth is the limit.
func MachinePeaks() (peakGFLOPS, streamGBs float64) {
	// Peak: 5 rows × 4 KiB = 20 KiB, L1-resident on any target machine.
	const n = 1024
	rows := make([][]float32, 5)
	for i := range rows {
		rows[i] = make([]float32, n)
		for j := range rows[i] {
			rows[i][j] = 1 + float32(j%7)*1e-3
		}
	}
	const inner = 64 // amortize the call and timer overhead
	sec, _ := measure(func() {
		for r := 0; r < inner; r++ {
			tensor.AxpyRow4(rows[0], rows[1], rows[2], rows[3], rows[4],
				1e-6, -1e-6, 2e-6, -2e-6)
		}
	})
	peakGFLOPS = inner * 8 * n / sec / 1e9

	// Stream: 2 × 64 MiB streams through the AxpyRow update.
	const m = 1 << 24
	dst := make([]float32, m)
	src := make([]float32, m)
	for i := range src {
		src[i] = 1
	}
	sec2, _ := measure(func() { tensor.AxpyRow(dst, src, 1e-6) })
	streamGBs = 12 * m / sec2 / 1e9
	return peakGFLOPS, streamGBs
}

// rooflineFrac fills each measurement's achieved fraction of the machine
// roofline. GEMM-like rows (flops and bytes known) are measured against
// min(peak, AI × stream) at their arithmetic intensity; bandwidth-only rows
// (the backward scatter) against the stream ceiling directly. The fraction
// can exceed 1 when a kernel's access pattern beats the probe's (e.g. more
// cache reuse than pure streaming) — the probes are anchors, not bounds.
func rooflineFrac(k *KernelMeasurement, peakGFLOPS, streamGBs float64) {
	switch {
	case k.OptimizedGFLOPS > 0 && k.OptimizedGBs > 0:
		ai := k.OptimizedGFLOPS / k.OptimizedGBs // flops/byte, sec cancels
		roof := math.Min(peakGFLOPS, ai*streamGBs)
		if roof > 0 {
			k.RooflineFrac = k.OptimizedGFLOPS / roof
		}
	case k.OptimizedGBs > 0:
		if streamGBs > 0 {
			k.RooflineFrac = k.OptimizedGBs / streamGBs
		}
	}
}

// cpuModel returns the host CPU's model string (best effort, Linux).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}
