// Package bench regenerates every table and figure of the paper's
// evaluation (§VI) from the models and simulators in this repository. Each
// experiment returns a Table whose rows mirror what the paper reports —
// epoch times, speedups, utilizations, prediction errors — so the output
// can be compared against the published artifact line by line
// (EXPERIMENTS.md records that comparison).
package bench

import (
	"fmt"
	"strings"
)

// Cell is one table value: either text or a number with a format.
type Cell struct {
	Text  string
	Value float64
	Fmt   string // e.g. "%.2f"; empty means Text is used
}

// Num makes a numeric cell.
func Num(v float64, format string) Cell { return Cell{Value: v, Fmt: format} }

// Txt makes a text cell.
func Txt(s string) Cell { return Cell{Text: s} }

func (c Cell) render() string {
	if c.Fmt != "" {
		return fmt.Sprintf(c.Fmt, c.Value)
	}
	return c.Text
}

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]Cell
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	rendered := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		rendered[r] = make([]string, len(row))
		for i, c := range row {
			s := c.render()
			rendered[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.Header {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range rendered {
		for i, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), for
// plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ReplaceAll(c.render(), ",", ";"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Lookup returns the first numeric cell in the row whose leading text cells
// match the given labels (helper for tests asserting on table content).
func (t *Table) Lookup(col int, labels ...string) (float64, bool) {
	for _, row := range t.Rows {
		match := true
		for i, l := range labels {
			if i >= len(row) || row[i].render() != l {
				match = false
				break
			}
		}
		if match && col < len(row) {
			return row[col].Value, true
		}
	}
	return 0, false
}
