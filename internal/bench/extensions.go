package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
	"repro/internal/tensor"
)

// ExtQuant evaluates the paper's §VIII extension — int8 feature
// quantization on the PCIe link — on the CPU-FPGA platform. The paper
// identifies the Data Transfer stage as the one bottleneck its DRM cannot
// fix ("HyScale-GNN did not provide an effective solution if the
// performance is bottlenecked by the Data Transfer stage"); quantization
// attacks exactly that stage, so the gain should concentrate on the
// transfer-bound workloads (wide-feature MAG240M) and vanish elsewhere.
func ExtQuant(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Extension: int8 PCIe feature quantization (CPU-FPGA, all optimizations on)",
		Header: []string{"Dataset", "Model", "fp32 epoch(s)", "int8 epoch(s)", "Speedup"},
	}
	plat := hw.CPUFPGAPlatform()
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			run := func(bytesPerFeat float64) (float64, error) {
				w := perfmodel.DefaultWorkload(spec, kind)
				w.TransferBytesPerFeat = bytesPerFeat
				m, err := perfmodel.New(plat, w)
				if err != nil {
					return 0, err
				}
				eng := drm.New(plat.TotalCPUCores())
				res, err := pipesim.Run(pipesim.Config{
					Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
					Ctrl: eng, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return res.EpochSec, nil
			}
			fp32, err := run(4)
			if err != nil {
				return nil, err
			}
			int8t, err := run(1)
			if err != nil {
				return nil, err
			}
			t.AddRow(Txt(spec.Name), Txt(kind.String()),
				Num(fp32, "%.2f"), Num(int8t, "%.2f"), Num(fp32/int8t, "%.2fx"))
		}
	}
	return t, nil
}

// Throughput reports the paper's primary metric (Eq. 5, MTEPS — million
// traversed edges per second) for the full system on both heterogeneous
// platforms across all datasets and models.
func Throughput(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Throughput (Eq. 5): million traversed edges per second",
		Header: []string{"Dataset", "Model", "CPU+GPU MTEPS", "CPU+FPGA MTEPS"},
	}
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			row := []Cell{Txt(spec.Name), Txt(kind.String())}
			for _, pc := range []struct {
				plat    hw.Platform
				profile perfmodel.SoftwareProfile
			}{
				{hw.CPUGPUPlatform(), perfmodel.TorchProfile()},
				{hw.CPUFPGAPlatform(), perfmodel.NativeProfile()},
			} {
				m, err := perfmodel.New(pc.plat, perfmodel.DefaultWorkload(spec, kind))
				if err != nil {
					return nil, err
				}
				m.Profile = pc.profile
				eng := drm.New(pc.plat.TotalCPUCores())
				res, err := pipesim.Run(pipesim.Config{
					Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
					Ctrl: eng, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, Num(res.MTEPS, "%.0f"))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ExtCluster evaluates the multi-node extension (§VIII future work):
// strong scaling of HyScale CPU-FPGA nodes over 100 GbE with a 25% METIS
// edge cut, on papers100M.
func ExtCluster() (*Table, error) {
	t := &Table{
		Title:  "Extension: multi-node strong scaling (CPU-FPGA nodes, 100GbE, 25% edge cut)",
		Header: []string{"Dataset", "Nodes", "Epoch(s)", "Speedup", "Efficiency", "Net share"},
	}
	for _, spec := range []datagen.Spec{datagen.OGBNPapers100M, datagen.MAG240MHomo} {
		cfg := cluster.Config{
			Nodes:       1,
			Plat:        hw.CPUFPGAPlatform(),
			Work:        perfmodel.DefaultWorkload(spec, gnn.SAGE),
			Net:         hw.Ethernet100G(),
			CutFraction: 0.25,
		}
		counts := []int{1, 2, 4, 8}
		res, err := cluster.Scaling(cfg, counts)
		if err != nil {
			return nil, err
		}
		base := res[0].EpochSec
		for i, b := range res {
			netShare := (b.RemoteFetch + b.GlobalSync) / b.IterTime
			speedup := base / b.EpochSec
			t.AddRow(Txt(spec.Name), Num(float64(counts[i]), "%.0f"),
				Num(b.EpochSec, "%.3f"), Num(speedup, "%.2fx"),
				Num(speedup/float64(counts[i])*100, "%.0f%%"),
				Num(netShare*100, "%.0f%%"))
		}
	}
	return t, nil
}

// ExtMultiNodeExec executes the multi-node extension rather than pricing it:
// a products-shaped instance is partitioned across 1–4 sharded engines that
// train with real gradient exchange (ring all-reduce over 100 GbE), and each
// row reports the executed strong-scaling point next to the analytic
// model's predicted per-iteration slowdown — the validation ExtCluster's
// purely analytic table cannot provide.
func ExtMultiNodeExec(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Extension: executed multi-node scaling (sharded engines, ring all-reduce, 100GbE)",
		Header: []string{"Nodes", "Cut", "Epoch(s)", "Speedup", "Net/iter(s)", "Exec slowdown", "Analytic slowdown"},
	}
	spec := datagen.Spec{Name: "products-bench", NumVertices: 3000, NumEdges: 24000,
		FeatDims: []int{100, 64, 16}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	plat := hw.CPUFPGAPlatform()
	plat.Accels = plat.Accels[:2]
	coreCfg := core.Config{
		Plat: plat, Data: ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:        0.2,
		BatchSize: 64,
		Fanouts:   []int{10, 5},
		Hybrid:    true, TFP: true, DRM: true,
		Seed: seed,
	}
	type point struct {
		perIter, epochSec, netPerIter, cut float64
		analytic                           cluster.Config
	}
	var pts []point
	for _, n := range []int{1, 2, 4} {
		m, err := cluster.NewMultiNode(cluster.MultiNodeConfig{
			Nodes: n, Net: hw.Ethernet100G(), Node: coreCfg,
		})
		if err != nil {
			return nil, err
		}
		var st *cluster.MultiNodeStats
		for ep := 0; ep < 2; ep++ { // fill + steady state
			if st, err = m.RunEpoch(); err != nil {
				return nil, err
			}
		}
		if d := m.ReplicasInSync(); d != 0 {
			return nil, fmt.Errorf("bench: %d-node fleet diverged by %g", n, d)
		}
		pts = append(pts, point{
			perIter:    st.VirtualSec / float64(st.Iterations),
			epochSec:   st.VirtualSec,
			netPerIter: (st.NetFetchSec + st.NetSyncSec) / float64(st.Iterations),
			cut:        m.EdgeCut(),
			analytic:   m.Analytic(),
		})
	}
	base := pts[0]
	for i, n := range []int{1, 2, 4} {
		p := pts[i]
		pred, err := cluster.EpochTime(p.analytic)
		if err != nil {
			return nil, err
		}
		t.AddRow(Num(float64(n), "%.0f"), Num(p.cut, "%.2f"),
			Num(p.epochSec, "%.4f"), Num(base.epochSec/p.epochSec, "%.2fx"),
			Num(p.netPerIter, "%.2g"),
			Num(p.perIter/base.perIter, "%.3fx"),
			Num(cluster.PredictedSlowdown(pred, base.perIter), "%.3fx"))
	}
	return t, nil
}
