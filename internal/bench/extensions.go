package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
	"repro/internal/tensor"
)

// ExtQuant evaluates the paper's §VIII extension — int8 feature
// quantization on the PCIe link — on the CPU-FPGA platform. The paper
// identifies the Data Transfer stage as the one bottleneck its DRM cannot
// fix ("HyScale-GNN did not provide an effective solution if the
// performance is bottlenecked by the Data Transfer stage"); quantization
// attacks exactly that stage, so the gain should concentrate on the
// transfer-bound workloads (wide-feature MAG240M) and vanish elsewhere.
func ExtQuant(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Extension: int8 PCIe feature quantization (CPU-FPGA, all optimizations on)",
		Header: []string{"Dataset", "Model", "fp32 epoch(s)", "int8 epoch(s)", "Speedup"},
	}
	plat := hw.CPUFPGAPlatform()
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			run := func(bytesPerFeat float64) (float64, error) {
				w := perfmodel.DefaultWorkload(spec, kind)
				w.TransferBytesPerFeat = bytesPerFeat
				m, err := perfmodel.New(plat, w)
				if err != nil {
					return 0, err
				}
				eng := drm.New(plat.TotalCPUCores())
				res, err := pipesim.Run(pipesim.Config{
					Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
					Ctrl: eng, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return res.EpochSec, nil
			}
			fp32, err := run(4)
			if err != nil {
				return nil, err
			}
			int8t, err := run(1)
			if err != nil {
				return nil, err
			}
			t.AddRow(Txt(spec.Name), Txt(kind.String()),
				Num(fp32, "%.2f"), Num(int8t, "%.2f"), Num(fp32/int8t, "%.2fx"))
		}
	}
	return t, nil
}

// Throughput reports the paper's primary metric (Eq. 5, MTEPS — million
// traversed edges per second) for the full system on both heterogeneous
// platforms across all datasets and models.
func Throughput(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Throughput (Eq. 5): million traversed edges per second",
		Header: []string{"Dataset", "Model", "CPU+GPU MTEPS", "CPU+FPGA MTEPS"},
	}
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range bothModels {
			row := []Cell{Txt(spec.Name), Txt(kind.String())}
			for _, pc := range []struct {
				plat    hw.Platform
				profile perfmodel.SoftwareProfile
			}{
				{hw.CPUGPUPlatform(), perfmodel.TorchProfile()},
				{hw.CPUFPGAPlatform(), perfmodel.NativeProfile()},
			} {
				m, err := perfmodel.New(pc.plat, perfmodel.DefaultWorkload(spec, kind))
				if err != nil {
					return nil, err
				}
				m.Profile = pc.profile
				eng := drm.New(pc.plat.TotalCPUCores())
				res, err := pipesim.Run(pipesim.Config{
					Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
					Ctrl: eng, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, Num(res.MTEPS, "%.0f"))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ExtCluster evaluates the multi-node extension (§VIII future work):
// strong scaling of HyScale CPU-FPGA nodes over 100 GbE with a 25% METIS
// edge cut, on papers100M.
func ExtCluster() (*Table, error) {
	t := &Table{
		Title:  "Extension: multi-node strong scaling (CPU-FPGA nodes, 100GbE, 25% edge cut)",
		Header: []string{"Dataset", "Nodes", "Epoch(s)", "Speedup", "Efficiency", "Net share"},
	}
	for _, spec := range []datagen.Spec{datagen.OGBNPapers100M, datagen.MAG240MHomo} {
		cfg := cluster.Config{
			Nodes:       1,
			Plat:        hw.CPUFPGAPlatform(),
			Work:        perfmodel.DefaultWorkload(spec, gnn.SAGE),
			Net:         hw.Ethernet100G(),
			CutFraction: 0.25,
		}
		counts := []int{1, 2, 4, 8}
		res, err := cluster.Scaling(cfg, counts)
		if err != nil {
			return nil, err
		}
		base := res[0].EpochSec
		for i, b := range res {
			netShare := (b.RemoteFetch + b.GlobalSync) / b.IterTime
			speedup := base / b.EpochSec
			t.AddRow(Txt(spec.Name), Num(float64(counts[i]), "%.0f"),
				Num(b.EpochSec, "%.3f"), Num(speedup, "%.2fx"),
				Num(speedup/float64(counts[i])*100, "%.0f%%"),
				Num(netShare*100, "%.0f%%"))
		}
	}
	return t, nil
}

// extHeteroIters is the simulated iteration count per ext-hetero fleet: long
// enough for the DRM engine to reach its steady state from any starting
// mapping (an epoch of the scaled bench datasets is far shorter).
const extHeteroIters = 240

// fleetRatio is the max/min per-device busy-time ratio of one iteration —
// the imbalance metric the DRM engine narrows on unequal devices.
func fleetRatio(st perfmodel.StageTimes) float64 {
	lo, hi := 0.0, 0.0
	for _, d := range st.PerAccel {
		b := d.Busy()
		if b <= 0 {
			continue
		}
		if lo == 0 || b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if lo == 0 {
		return 1
	}
	return hi / lo
}

// ExtHetero executes the Fig. 11-style heterogeneous-fleet ablation the
// paper's title implies but never measures: with a fixed device budget, a
// hybrid CPU+GPU+FPGA fleet against every homogeneous configuration of the
// same budget. The mechanism under test is real in both directions: a pure
// GPU fleet is strangled by its framework's serialized feature gather, and a
// pure FPGA fleet at this scale sits past the paper's Fig. 9 knee where the
// native loader has saturated the CPU's DRAM share — so one torch-stack GPU,
// whose loader is an *independent* copy path, adds capacity that one more
// FPGA cannot. Per fleet the table reports the steady-state epoch time
// (throughput-proportional mapping + DRM, 240 simulated iterations) and the
// DRM engine's per-device imbalance ratio when started from a naive uniform
// split — the max/min busy-time ratio must narrow toward 1.
func ExtHetero(seed uint64) (*Table, error) {
	t := &Table{
		Title: "Extension: heterogeneous fleet ablation (ogbn-products, 16-device budget, hybrid + DRM + TFP)",
		Header: []string{"Model", "Fleet", "Epoch(s)", "vs best homog.",
			"DRM ratio start", "DRM ratio end"},
	}
	spec := datagen.OGBNProducts
	fleet := func(nGPU, budget int) []hw.Kind {
		kinds := make([]hw.Kind, 0, budget)
		for i := 0; i < nGPU; i++ {
			kinds = append(kinds, hw.GPU)
		}
		for i := nGPU; i < budget; i++ {
			kinds = append(kinds, hw.FPGA)
		}
		return kinds
	}
	const budget = 16
	for _, kind := range bothModels {
		type fleetResult struct {
			name       string
			epoch      float64
			start, end float64
		}
		var results []fleetResult
		for _, cfg := range []struct {
			name string
			nGPU int
		}{
			{"16xGPU", budget},
			{"16xFPGA", 0},
			{"1xGPU+15xFPGA", 1},
		} {
			plat, err := hw.HeteroPlatform(fleet(cfg.nGPU, budget)...)
			if err != nil {
				return nil, err
			}
			m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(spec, kind))
			if err != nil {
				return nil, err
			}
			// The headline run: throughput-proportional design-phase mapping.
			eng := drm.New(plat.TotalCPUCores())
			res, err := pipesim.Run(pipesim.Config{
				Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
				Ctrl: eng, Seed: seed, Iterations: extHeteroIters,
			})
			if err != nil {
				return nil, err
			}
			// The rebalancing run: start from a naive uniform split across
			// the unequal devices and watch DRM narrow the busy-time ratio.
			uniform := perfmodel.Assignment{
				AccelBatch:   make([]int, budget),
				SampThreads:  plat.TotalCPUCores() / 4,
				LoadThreads:  plat.TotalCPUCores() / 4,
				TrainThreads: plat.TotalCPUCores() / 2,
			}
			for i := range uniform.AccelBatch {
				uniform.AccelBatch[i] = m.Work.BatchSize
			}
			reb, err := pipesim.Run(pipesim.Config{
				Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true, DRM: true},
				Ctrl: drm.New(plat.TotalCPUCores()), Seed: seed,
				Iterations: extHeteroIters, InitialAssign: &uniform,
			})
			if err != nil {
				return nil, err
			}
			results = append(results, fleetResult{
				name:  cfg.name,
				epoch: res.EpochSec,
				start: fleetRatio(reb.Trace[0]),
				end:   fleetRatio(reb.Trace[len(reb.Trace)-1]),
			})
		}
		bestHomog := results[0].epoch
		if results[1].epoch < bestHomog {
			bestHomog = results[1].epoch
		}
		for _, r := range results {
			t.AddRow(Txt(kind.String()), Txt(r.name),
				Num(r.epoch, "%.3f"), Num(bestHomog/r.epoch, "%.3fx"),
				Num(r.start, "%.2f"), Num(r.end, "%.2f"))
		}
	}
	return t, nil
}

// ExtMultiNodeExec executes the multi-node extension rather than pricing it:
// a products-shaped instance is partitioned across 1–4 sharded engines that
// train with real gradient exchange (ring all-reduce over 100 GbE), and each
// row reports the executed strong-scaling point next to the analytic
// model's predicted per-iteration slowdown — the validation ExtCluster's
// purely analytic table cannot provide.
func ExtMultiNodeExec(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Extension: executed multi-node scaling (sharded engines, ring all-reduce, 100GbE)",
		Header: []string{"Nodes", "Cut", "Epoch(s)", "Speedup", "Net/iter(s)", "Exec slowdown", "Analytic slowdown"},
	}
	spec := datagen.Spec{Name: "products-bench", NumVertices: 3000, NumEdges: 24000,
		FeatDims: []int{100, 64, 16}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	plat := hw.CPUFPGAPlatform()
	plat.Accels = plat.Accels[:2]
	coreCfg := core.Config{
		Plat: plat, Data: ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:        0.2,
		BatchSize: 64,
		Fanouts:   []int{10, 5},
		Hybrid:    true, TFP: true, DRM: true,
		Seed: seed,
	}
	type point struct {
		perIter, epochSec, netPerIter, cut float64
		analytic                           cluster.Config
	}
	var pts []point
	for _, n := range []int{1, 2, 4} {
		m, err := cluster.NewMultiNode(cluster.MultiNodeConfig{
			Nodes: n, Net: hw.Ethernet100G(), Node: coreCfg,
		})
		if err != nil {
			return nil, err
		}
		var st *cluster.MultiNodeStats
		for ep := 0; ep < 2; ep++ { // fill + steady state
			if st, err = m.RunEpoch(); err != nil {
				return nil, err
			}
		}
		if d := m.ReplicasInSync(); d != 0 {
			return nil, fmt.Errorf("bench: %d-node fleet diverged by %g", n, d)
		}
		pts = append(pts, point{
			perIter:    st.VirtualSec / float64(st.Iterations),
			epochSec:   st.VirtualSec,
			netPerIter: (st.NetFetchSec + st.NetSyncSec) / float64(st.Iterations),
			cut:        m.EdgeCut(),
			analytic:   m.Analytic(),
		})
	}
	base := pts[0]
	for i, n := range []int{1, 2, 4} {
		p := pts[i]
		pred, err := cluster.EpochTime(p.analytic)
		if err != nil {
			return nil, err
		}
		t.AddRow(Num(float64(n), "%.0f"), Num(p.cut, "%.2f"),
			Num(p.epochSec, "%.4f"), Num(base.epochSec/p.epochSec, "%.2fx"),
			Num(p.netPerIter, "%.2g"),
			Num(p.perIter/base.perIter, "%.3fx"),
			Num(cluster.PredictedSlowdown(pred, base.perIter), "%.3fx"))
	}
	return t, nil
}
