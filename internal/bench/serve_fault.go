// Fault-tolerance serving benchmark: the SLO-class three-cohort trace is
// recorded once and replayed twice — fault-free, then with a scripted
// mid-run worker fail-stop — so the self-healing runtime's cost is measured
// on identical offered load: what was served, shed and retried, how the tail
// moved inside the fault window, and how long the pool took to re-absorb the
// re-dispatched work.
package bench

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/serve"
)

// ServeFaultVariant is one replay of the recorded trace.
type ServeFaultVariant struct {
	Name           string  `json:"name"`
	Served         int     `json:"served"`
	Rejected       int     `json:"rejected"`
	Shed           int     `json:"shed"`
	Retries        int     `json:"retries"`
	Redispatched   int     `json:"redispatched"`
	FailedWorkers  int     `json:"failed_workers"`
	DeadlineMisses int     `json:"deadline_misses"`
	P99Ms          float64 `json:"p99_ms"`
	// FaultWindow* cover requests completing at or after the first failure
	// (zero in the fault-free replay).
	FaultWindowServed int     `json:"fault_window_served"`
	FaultWindowP99Ms  float64 `json:"fault_window_p99_ms"`
	RecoveryMs        float64 `json:"recovery_ms"`
}

// ServeFaultReport is the fault section of BENCH_serve.json.
type ServeFaultReport struct {
	CapacityRPS float64 `json:"capacity_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	Requests    int     `json:"requests"`
	FaultSpec   string  `json:"fault_spec"`
	FailAtSec   float64 `json:"fail_at_sec"`
	SLOTargets  string  `json:"slo_targets"`

	Baseline ServeFaultVariant `json:"baseline"`
	Faulted  ServeFaultVariant `json:"faulted"`
}

// serveFaultSLO is the per-class deadline spec both replays account against.
const serveFaultSLO = "interactive=2,standard=10,bulk=50"

// ServeFault replays one recorded trace fault-free and with a mid-run worker
// loss. The ledger invariant offered = served + rejected + shed is enforced:
// the fleet may degrade under a fault, but it must not lose requests.
func ServeFault(seed uint64) (*ServeFaultReport, error) {
	ds, model, err := serveFixture(seed)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 6000,
		MaxBatch: 32, WindowSec: 2e-3, Workers: 2,
		QueueCap: 512, CacheSize: 2048, CacheShards: 4, Seed: seed,
		Formation: serve.FormationPriority,
		// Least-loaded routes by pipe availability, not predicted completion,
		// so it keeps feeding a braking worker — exercising the re-dispatch
		// path instead of letting the predictive router dodge the fault.
		Policy: serve.PolicyLeastLoaded,
	}
	cfg.SLOTargets, err = serve.ParseSLOTargets(serveFaultSLO)
	if err != nil {
		return nil, err
	}
	// Same operating point as the SLO benchmark: 0.6× the analytic all-miss
	// capacity. (The probe rate is a placeholder — CapacityRPS ignores it.)
	cfg.RatePerSec = 1
	pred, err := serve.Predict(cfg, 1)
	if err != nil {
		return nil, err
	}
	rate := 0.6 * pred.CapacityRPS
	cfg.RatePerSec = rate
	cfg.Workload = &serve.WorkloadSpec{Cohorts: []serve.Cohort{
		{Name: "web", Class: serve.ClassInteractive, Dist: serve.DistPoisson,
			RatePerSec: 0.25 * rate, Zipf: 1.1},
		{Name: "api", Class: serve.ClassStandard, Dist: serve.DistGamma, Shape: 0.5,
			RatePerSec: 0.45 * rate, Zipf: 1.1},
		{Name: "etl", Class: serve.ClassBulk, Dist: serve.DistWeibull, Shape: 0.7,
			RatePerSec: 0.30 * rate, Zipf: 0.8},
	}}
	trace, err := serve.GenerateTrace(cfg)
	if err != nil {
		return nil, err
	}
	// Kill worker 1 (half the accelerator pool) 40% into the offered load's
	// nominal makespan — deep enough that the pool is in steady state, early
	// enough that most of the trace runs degraded. The worker brakes (stalls)
	// for 10ms before dying, the common fail-stop signature: batches routed
	// into the stall predict completions past the fail time and are
	// re-dispatched to the survivor.
	failAt := 0.4 * float64(cfg.NumRequests) / rate
	spec := fmt.Sprintf("stall,worker=1,from=%g,to=%g;fail,worker=1,at=%g",
		math.Max(0, failAt-0.01), failAt, failAt)
	sched, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	report := &ServeFaultReport{
		CapacityRPS: pred.CapacityRPS, OfferedRPS: rate,
		Requests: len(trace.Requests), FaultSpec: spec, FailAtSec: failAt,
		SLOTargets: serveFaultSLO,
	}
	run := func(name string, faults *fault.Schedule) (ServeFaultVariant, error) {
		rcfg := cfg
		rcfg.Workload = nil
		rcfg.Replay = trace
		rcfg.Faults = faults
		st, err := serve.Run(rcfg)
		if err != nil {
			return ServeFaultVariant{}, err
		}
		if st.Offered != st.Served+st.Rejected+st.Shed {
			return ServeFaultVariant{}, fmt.Errorf(
				"bench: %s replay lost requests: offered %d != served %d + rejected %d + shed %d",
				name, st.Offered, st.Served, st.Rejected, st.Shed)
		}
		return ServeFaultVariant{
			Name: name, Served: st.Served, Rejected: st.Rejected, Shed: st.Shed,
			Retries: st.Retries, Redispatched: st.Redispatched,
			FailedWorkers: st.FailedWorkers, DeadlineMisses: st.DeadlineMisses,
			P99Ms:             1e3 * st.P99Sec,
			FaultWindowServed: st.FaultWindowServed,
			FaultWindowP99Ms:  1e3 * st.FaultWindowP99Sec,
			RecoveryMs:        1e3 * st.RecoverySec,
		}, nil
	}
	if report.Baseline, err = run("baseline", nil); err != nil {
		return nil, err
	}
	if report.Faulted, err = run("faulted", sched); err != nil {
		return nil, err
	}
	if report.Faulted.FailedWorkers != 1 {
		return nil, fmt.Errorf("bench: faulted replay lost %d workers, scripted 1",
			report.Faulted.FailedWorkers)
	}
	return report, nil
}

// ExtServeFault renders the fault-injection comparison as a table.
func ExtServeFault(seed uint64) (*Table, error) {
	report, err := ServeFault(seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: serving under faults (%s at t=%.1fms on a %.0f req/s trace, "+
			"%d requests, SLOs %s)",
			report.FaultSpec, 1e3*report.FailAtSec, report.OfferedRPS,
			report.Requests, report.SLOTargets),
		Header: []string{"Variant", "Served", "Rejected", "Shed", "Retries",
			"Miss", "p99(ms)", "fault-p99(ms)", "recovery(ms)"},
	}
	for _, v := range []ServeFaultVariant{report.Baseline, report.Faulted} {
		t.AddRow(Txt(v.Name),
			Num(float64(v.Served), "%.0f"), Num(float64(v.Rejected), "%.0f"),
			Num(float64(v.Shed), "%.0f"), Num(float64(v.Retries), "%.0f"),
			Num(float64(v.DeadlineMisses), "%.0f"),
			Num(v.P99Ms, "%.3f"), Num(v.FaultWindowP99Ms, "%.3f"),
			Num(v.RecoveryMs, "%.3f"))
	}
	return t, nil
}
