package hw

import "fmt"

// Device presets. Peak numbers come from the paper's Table II; efficiency
// factors and overheads are calibration constants chosen to reproduce the
// paper's measured *ratios* (see EXPERIMENTS.md "Calibration"). The decisive
// qualitative differences the paper leans on are encoded here:
//
//   - GPU trainers are driven by Python/PyTorch (paper §VI-A implements both
//     the baseline and the CPU-GPU design with PyTorch v1.11 + PyG v2.0.3),
//     so they carry a large per-iteration framework overhead and a poor
//     irregular-gather efficiency ("traditional cache policies fail to
//     capture the data access pattern in GNN training", §VI-E1).
//   - The FPGA path is native HLS with a dataflow kernel: aggregate/update
//     pipelined, intermediates on-chip, sequential streaming of sorted
//     edges, negligible framework overhead.
//   - CPUs sit in between: MKL-class GEMMs, decent gather (large L3).

// EPYC7763 models one socket of the dual-socket host (64 cores, 2.45 GHz,
// 3.6 TFLOPS, 205 GB/s, 256 MB L3).
func EPYC7763() Device {
	return Device{
		Name: "AMD EPYC 7763", Kind: CPU,
		PeakTFLOPS: 3.6, FreqGHz: 2.45, MemBWGBs: 205, OnChipMB: 256, Cores: 64,
		MLPEff: 0.70, GatherEff: 0.50, StreamEff: 0.80,
		Pipelined: false, KernelLaunchUs: 0, FrameworkOverheadMs: 1.2, ServeOverheadMs: 0.08,
	}
}

// A5000 models the NVIDIA RTX A5000 (27.8 TFLOPS, 768 GB/s, 6 MB L2) driven
// through PyTorch/PyG.
func A5000() Device {
	return Device{
		Name: "NVIDIA RTX A5000", Kind: GPU,
		PeakTFLOPS: 27.8, FreqGHz: 2.0, MemBWGBs: 768, OnChipMB: 6,
		MLPEff: 0.30, GatherEff: 0.08, StreamEff: 0.75,
		Pipelined: false, KernelLaunchUs: 12, FrameworkOverheadMs: 9.0,
		ServeOverheadMs: 0.35, LoaderGBs: 6,
	}
}

// U250 models the Xilinx Alveo U250 (0.6 TFLOPS, 77 GB/s, 54 MB on-chip)
// running the paper's custom dataflow kernel (§IV-C).
func U250() Device {
	return Device{
		Name: "Xilinx Alveo U250", Kind: FPGA,
		PeakTFLOPS: 0.6, FreqGHz: 0.3, MemBWGBs: 77, OnChipMB: 54,
		MLPEff: 0.90, GatherEff: 0.70, StreamEff: 0.90,
		Pipelined: true, KernelLaunchUs: 60, FrameworkOverheadMs: 0.05, ServeOverheadMs: 0.02,
	}
}

// PCIe4x16 is the host link for the A5000s (effective burst bandwidth).
func PCIe4x16() Link { return Link{Name: "PCIe 4.0 x16", PeakGBs: 31.5, Eff: 0.70, LatencyUs: 10} }

// PCIe3x16 is the host link for the U250s.
func PCIe3x16() Link { return Link{Name: "PCIe 3.0 x16", PeakGBs: 15.75, Eff: 0.85, LatencyUs: 10} }

// XGMI is the EPYC socket interconnect.
func XGMI() Link { return Link{Name: "xGMI", PeakGBs: 64, Eff: 0.80, LatencyUs: 2} }

// CPUGPUPlatform is the paper's CPU-GPU setup: dual EPYC 7763 + 4× A5000.
func CPUGPUPlatform() Platform {
	return Platform{
		Name: "2xEPYC7763 + 4xA5000", CPU: EPYC7763(), Sockets: 2,
		Accels: []Device{A5000(), A5000(), A5000(), A5000()},
		PCIe:   PCIe4x16(), Xbus: XGMI(), DRAMGB: 1024,
	}
}

// CPUFPGAPlatform is the paper's CPU-FPGA setup: dual EPYC 7763 + 4× U250.
func CPUFPGAPlatform() Platform {
	return Platform{
		Name: "2xEPYC7763 + 4xU250", CPU: EPYC7763(), Sockets: 2,
		Accels: []Device{U250(), U250(), U250(), U250()},
		PCIe:   PCIe3x16(), Xbus: XGMI(), DRAMGB: 1024,
	}
}

// AccelDevice returns the preset accelerator and host link for a device
// kind: GPUs are A5000s behind PCIe 4.0, FPGAs are U250s behind PCIe 3.0.
func AccelDevice(k Kind) (Device, Link, error) {
	switch k {
	case GPU:
		return A5000(), PCIe4x16(), nil
	case FPGA:
		return U250(), PCIe3x16(), nil
	default:
		return Device{}, Link{}, fmt.Errorf("hw: %v is not an accelerator kind", k)
	}
}

// HeteroPlatform builds the mixed single-node machine the paper's title
// claims (§II-C): dual EPYC 7763 hosting the given accelerators side by
// side, each device on its own kind-native link (A5000 ↔ PCIe 4.0 x16,
// U250 ↔ PCIe 3.0 x16). The platform's default PCIe is the slowest link in
// the fleet, so code that ignores AccelLinks stays conservative.
func HeteroPlatform(kinds ...Kind) (Platform, error) {
	if len(kinds) == 0 {
		return Platform{}, fmt.Errorf("hw: hetero platform needs at least one accelerator")
	}
	p := Platform{
		Name: "2xEPYC7763", CPU: EPYC7763(), Sockets: 2,
		Xbus: XGMI(), DRAMGB: 1024,
	}
	counts := map[Kind]int{}
	for _, k := range kinds {
		dev, link, err := AccelDevice(k)
		if err != nil {
			return Platform{}, err
		}
		p.Accels = append(p.Accels, dev)
		p.AccelLinks = append(p.AccelLinks, link)
		if p.PCIe.EffGBs() == 0 || link.EffGBs() < p.PCIe.EffGBs() {
			p.PCIe = link
		}
		counts[k]++
	}
	for _, k := range []Kind{GPU, FPGA} {
		if counts[k] > 0 {
			p.Name += fmt.Sprintf(" + %dx%s", counts[k], k)
		}
	}
	return p, nil
}

// Comparator platform components (paper Table V). Peak TFLOPS chosen so the
// platform totals reproduce the paper's Table VI → Table VII normalization
// (sec × TFLOPS): PaGraph ≈ 114.5, P3 ≈ 148.8 (4 nodes), DistDGLv2 ≈ 544
// (8 nodes), This Work ≈ 9.6.

// Xeon8163 models one Xeon Platinum 8163 socket (PaGraph's host).
func Xeon8163() Device {
	return Device{
		Name: "Xeon Platinum 8163", Kind: CPU,
		PeakTFLOPS: 1.25, FreqGHz: 2.5, MemBWGBs: 119, OnChipMB: 33, Cores: 24,
		MLPEff: 0.55, GatherEff: 0.35, StreamEff: 0.80, FrameworkOverheadMs: 2.0, ServeOverheadMs: 0.08,
	}
}

// V100 models an NVIDIA V100 (PaGraph's accelerator), DGL/PyTorch-driven.
func V100() Device {
	return Device{
		Name: "NVIDIA V100", Kind: GPU,
		PeakTFLOPS: 14.0, FreqGHz: 1.53, MemBWGBs: 900, OnChipMB: 6,
		MLPEff: 0.30, GatherEff: 0.08, StreamEff: 0.75,
		KernelLaunchUs: 12, FrameworkOverheadMs: 9.0,
		ServeOverheadMs: 0.35, LoaderGBs: 6,
	}
}

// XeonE52690 models the Xeon E5-2690 (P3's host CPU).
func XeonE52690() Device {
	return Device{
		Name: "Xeon E5-2690", Kind: CPU,
		PeakTFLOPS: 0.37, FreqGHz: 2.9, MemBWGBs: 68, OnChipMB: 35, Cores: 14,
		MLPEff: 0.55, GatherEff: 0.35, StreamEff: 0.80, FrameworkOverheadMs: 2.0, ServeOverheadMs: 0.08,
	}
}

// P100 models an NVIDIA P100 (2016) as used by P3.
func P100() Device {
	return Device{
		Name: "NVIDIA P100", Kind: GPU,
		PeakTFLOPS: 9.3, FreqGHz: 1.3, MemBWGBs: 732, OnChipMB: 4,
		MLPEff: 0.30, GatherEff: 0.08, StreamEff: 0.75,
		KernelLaunchUs: 12, FrameworkOverheadMs: 9.0,
		ServeOverheadMs: 0.35, LoaderGBs: 6,
	}
}

// T4 models an NVIDIA T4 (DistDGLv2's accelerator).
func T4() Device {
	return Device{
		Name: "NVIDIA T4", Kind: GPU,
		PeakTFLOPS: 8.1, FreqGHz: 1.59, MemBWGBs: 320, OnChipMB: 4,
		MLPEff: 0.30, GatherEff: 0.08, StreamEff: 0.75,
		KernelLaunchUs: 12, FrameworkOverheadMs: 9.0,
		ServeOverheadMs: 0.35, LoaderGBs: 6,
	}
}

// VCPU96 models DistDGLv2's 96-vCPU host as a single logical CPU device.
func VCPU96() Device {
	return Device{
		Name: "96 vCPU", Kind: CPU,
		PeakTFLOPS: 3.2, FreqGHz: 2.5, MemBWGBs: 180, OnChipMB: 48, Cores: 96,
		MLPEff: 0.55, GatherEff: 0.35, StreamEff: 0.80, FrameworkOverheadMs: 2.0, ServeOverheadMs: 0.08,
	}
}

// PaGraphNode is PaGraph's single node: 2× Xeon 8163 + 8× V100.
func PaGraphNode() Platform {
	accels := make([]Device, 8)
	for i := range accels {
		accels[i] = V100()
	}
	return Platform{
		Name: "PaGraph 2x8163+8xV100", CPU: Xeon8163(), Sockets: 2,
		Accels: accels, PCIe: PCIe3x16(), Xbus: XGMI(), DRAMGB: 384,
	}
}

// P3Node is one of P3's four nodes: 1× E5-2690 + 4× P100.
func P3Node() Platform {
	accels := make([]Device, 4)
	for i := range accels {
		accels[i] = P100()
	}
	return Platform{
		Name: "P3 1xE5-2690+4xP100", CPU: XeonE52690(), Sockets: 1,
		Accels: accels, PCIe: PCIe3x16(), Xbus: XGMI(), DRAMGB: 256,
	}
}

// DistDGLNode is one of DistDGLv2's eight nodes: 96 vCPU + 8× T4.
func DistDGLNode() Platform {
	accels := make([]Device, 8)
	for i := range accels {
		accels[i] = T4()
	}
	return Platform{
		Name: "DistDGLv2 96vCPU+8xT4", CPU: VCPU96(), Sockets: 1,
		Accels: accels, PCIe: PCIe3x16(), Xbus: XGMI(), DRAMGB: 384,
	}
}

// Ethernet100G is the inter-node link for the distributed comparators.
func Ethernet100G() Link { return Link{Name: "100GbE", PeakGBs: 12.5, Eff: 0.60, LatencyUs: 30} }

// Ethernet25G is a commodity-cluster NIC — the pessimistic interconnect for
// the multi-node extension's sensitivity sweeps.
func Ethernet25G() Link { return Link{Name: "25GbE", PeakGBs: 3.125, Eff: 0.60, LatencyUs: 30} }

// InfinibandHDR is a 200 Gb/s HDR InfiniBand link with RDMA-class latency —
// the optimistic interconnect for the multi-node extension.
func InfinibandHDR() Link { return Link{Name: "IB-HDR200", PeakGBs: 25, Eff: 0.85, LatencyUs: 5} }
