package hw

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || FPGA.String() != "FPGA" {
		t.Fatal("Kind names wrong")
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, d := range []Device{EPYC7763(), A5000(), U250(), Xeon8163(), V100(), XeonE52690(), P100(), T4(), VCPU96()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	for _, p := range []Platform{CPUGPUPlatform(), CPUFPGAPlatform(), PaGraphNode(), P3Node(), DistDGLNode()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTable2Specs(t *testing.T) {
	// Paper Table II, verbatim peaks.
	cpu := EPYC7763()
	if cpu.PeakTFLOPS != 3.6 || cpu.FreqGHz != 2.45 || cpu.MemBWGBs != 205 || cpu.OnChipMB != 256 {
		t.Fatalf("EPYC7763 specs: %+v", cpu)
	}
	gpu := A5000()
	if gpu.PeakTFLOPS != 27.8 || gpu.MemBWGBs != 768 || gpu.OnChipMB != 6 {
		t.Fatalf("A5000 specs: %+v", gpu)
	}
	fpga := U250()
	if fpga.PeakTFLOPS != 0.6 || fpga.MemBWGBs != 77 || fpga.OnChipMB != 54 || fpga.FreqGHz != 0.3 {
		t.Fatalf("U250 specs: %+v", fpga)
	}
	if !fpga.Pipelined || gpu.Pipelined || cpu.Pipelined {
		t.Fatal("only the FPGA dataflow kernel is pipelined")
	}
}

func TestDeviceDerivedRates(t *testing.T) {
	d := Device{Name: "x", Kind: GPU, PeakTFLOPS: 10, FreqGHz: 1, MemBWGBs: 100,
		MLPEff: 0.5, GatherEff: 0.1, StreamEff: 0.8}
	if d.EffectiveTFLOPS() != 5 || d.GatherGBs() != 10 || d.StreamGBs() != 80 {
		t.Fatalf("derived rates wrong: %v %v %v", d.EffectiveTFLOPS(), d.GatherGBs(), d.StreamGBs())
	}
}

func TestDeviceValidateCatchesBadValues(t *testing.T) {
	bad := EPYC7763()
	bad.MLPEff = 1.5
	if bad.Validate() == nil {
		t.Fatal("expected error for efficiency > 1")
	}
	bad2 := EPYC7763()
	bad2.Cores = 0
	if bad2.Validate() == nil {
		t.Fatal("expected error for CPU without cores")
	}
	bad3 := A5000()
	bad3.PeakTFLOPS = 0
	if bad3.Validate() == nil {
		t.Fatal("expected error for zero peak")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := Link{Name: "test", PeakGBs: 10, Eff: 0.5, LatencyUs: 100}
	if l.EffGBs() != 5 {
		t.Fatalf("EffGBs = %v", l.EffGBs())
	}
	// 5 GB at 5 GB/s = 1 s plus 100 µs latency.
	got := l.TransferSec(5e9)
	if math.Abs(got-1.0001) > 1e-9 {
		t.Fatalf("TransferSec = %v", got)
	}
	if l.TransferSec(0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}

func TestPlatformAggregates(t *testing.T) {
	p := CPUFPGAPlatform()
	if got := p.TotalCPUTFLOPS(); math.Abs(got-7.2) > 1e-9 {
		t.Fatalf("TotalCPUTFLOPS = %v, want 7.2 (paper §I)", got)
	}
	if p.TotalCPUCores() != 128 {
		t.Fatalf("TotalCPUCores = %d", p.TotalCPUCores())
	}
	if got := p.CPUMemBWGBs(); got != 410 {
		t.Fatalf("CPUMemBWGBs = %v", got)
	}
	// 7.2 + 4×0.6 = 9.6 — the paper's Table VII normalization for This Work.
	if got := p.TotalTFLOPS(); math.Abs(got-9.6) > 1e-9 {
		t.Fatalf("TotalTFLOPS = %v, want 9.6", got)
	}
}

// Table VII normalization checks: platform totals must reproduce the
// paper's sec×TFLOPS ratios (derived in DESIGN.md).
func TestComparatorPlatformTFLOPS(t *testing.T) {
	cases := []struct {
		p     Platform
		nodes int
		want  float64
		tol   float64
	}{
		{PaGraphNode(), 1, 114.5, 3},
		{P3Node(), 4, 148.8, 4},
		{DistDGLNode(), 8, 544, 30},
	}
	for _, c := range cases {
		got := c.p.TotalTFLOPS() * float64(c.nodes)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s × %d nodes: %v TFLOPS, want ≈%v", c.p.Name, c.nodes, got, c.want)
		}
	}
}

func TestIntroSpeedupClaim(t *testing.T) {
	// Paper §I: dual 7763 (7.2) + one A5000 (27.8) ⇒ potential 1.26×.
	p := CPUGPUPlatform()
	potential := (p.TotalCPUTFLOPS() + A5000().PeakTFLOPS) / A5000().PeakTFLOPS
	if math.Abs(potential-1.26) > 0.01 {
		t.Fatalf("potential hybrid speedup = %v, want 1.26", potential)
	}
}

func TestWithAccelCount(t *testing.T) {
	p := CPUFPGAPlatform().WithAccelCount(16)
	if len(p.Accels) != 16 {
		t.Fatalf("accels = %d", len(p.Accels))
	}
	if p.Accels[15].Name != U250().Name {
		t.Fatal("accelerator type changed")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithAccelCountPanicsWithoutAccels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Platform{CPU: EPYC7763(), Sockets: 1}.WithAccelCount(2)
}

// WithAccelCount on a mixed fleet must keep the composition (round-robin)
// rather than silently cloning the first device.
func TestWithAccelCountRoundRobinsMixedFleet(t *testing.T) {
	p, err := HeteroPlatform(GPU, FPGA)
	if err != nil {
		t.Fatal(err)
	}
	q := p.WithAccelCount(5)
	wantKinds := []Kind{GPU, FPGA, GPU, FPGA, GPU}
	for i, k := range wantKinds {
		if q.Accels[i].Kind != k {
			t.Fatalf("accel %d kind = %v, want %v", i, q.Accels[i].Kind, k)
		}
	}
	if len(q.AccelLinks) != 5 {
		t.Fatalf("links = %d", len(q.AccelLinks))
	}
	if q.AccelLink(1).Name != PCIe3x16().Name || q.AccelLink(2).Name != PCIe4x16().Name {
		t.Fatal("links did not round-robin with their devices")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHeteroPlatform(t *testing.T) {
	p, err := HeteroPlatform(GPU, GPU, FPGA)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Accels) != 3 || p.Accels[0].Kind != GPU || p.Accels[2].Kind != FPGA {
		t.Fatalf("fleet composition wrong: %+v", p.Accels)
	}
	// Per-device links: GPUs on PCIe4, the FPGA on PCIe3.
	if p.AccelLink(0).Name != PCIe4x16().Name || p.AccelLink(2).Name != PCIe3x16().Name {
		t.Fatalf("links: %v / %v", p.AccelLink(0).Name, p.AccelLink(2).Name)
	}
	// The default link is the slowest of the fleet (conservative fallback).
	if p.PCIe.Name != PCIe3x16().Name {
		t.Fatalf("default PCIe = %v", p.PCIe.Name)
	}
	if _, err := HeteroPlatform(); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := HeteroPlatform(CPU); err == nil {
		t.Fatal("CPU accepted as accelerator kind")
	}
}

// Validate must reject per-device link lists that do not match the fleet.
func TestValidateAccelLinks(t *testing.T) {
	p, err := HeteroPlatform(GPU, FPGA)
	if err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.AccelLinks = bad.AccelLinks[:1]
	if bad.Validate() == nil {
		t.Fatal("mismatched link count accepted")
	}
	bad2 := p
	bad2.AccelLinks = []Link{PCIe4x16(), {}}
	if bad2.Validate() == nil {
		t.Fatal("zero-bandwidth per-device link accepted")
	}
}

func TestGPUvsFPGAQualitativeRegime(t *testing.T) {
	// The paper's central hardware claim (§VI-E1): the FPGA kernel avoids
	// framework overhead and achieves high gather efficiency; the
	// PyTorch-driven GPU pays both. Check the constants encode that regime.
	gpu, fpga := A5000(), U250()
	if fpga.FrameworkOverheadMs >= gpu.FrameworkOverheadMs/10 {
		t.Fatal("FPGA framework overhead should be ≥10x below GPU's")
	}
	if fpga.GatherEff <= gpu.GatherEff {
		t.Fatal("FPGA gather efficiency should exceed GPU's")
	}
	// Raw compute still strongly favors the GPU.
	if gpu.PeakTFLOPS < 10*fpga.PeakTFLOPS {
		t.Fatal("GPU peak should dominate FPGA peak")
	}
}
