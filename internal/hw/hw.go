// Package hw models the heterogeneous hardware the paper targets (§II-C,
// Fig. 2): multi-socket CPUs with large DRAM, accelerators (GPU / FPGA)
// with private device memory, PCIe links, and a processor interconnect.
//
// No real GPU/FPGA/PCIe is present in this environment; these device models
// carry exactly the parameters the paper's performance model (§V) consumes —
// peak FLOPS, frequency, memory bandwidth, on-chip memory — plus the
// empirical efficiency factors (gather efficiency, framework overhead,
// kernel-launch latency) that the paper measures implicitly through its
// baselines. All constants are documented where defined; EXPERIMENTS.md
// records how they were calibrated against the paper's reported ratios.
package hw

import "fmt"

// Kind classifies a device.
type Kind int

const (
	CPU Kind = iota
	GPU
	FPGA

	// KindCount is the number of device kinds — sized for dense per-kind
	// arrays (admission shares, inflight heaps) indexed by Kind.
	KindCount = int(FPGA) + 1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device describes one processor or accelerator.
type Device struct {
	Name       string
	Kind       Kind
	PeakTFLOPS float64 // single-precision peak (paper Table II)
	FreqGHz    float64
	MemBWGBs   float64 // device/local memory bandwidth (paper Table II)
	OnChipMB   float64 // L3 / L2 / BRAM+URAM capacity
	Cores      int     // hardware threads available to task mapping (CPU only)

	// Empirical efficiency factors (fractions of the peak numbers above).
	MLPEff    float64 // dense-update fraction of peak FLOPS achieved
	GatherEff float64 // irregular row-gather fraction of memory bandwidth
	StreamEff float64 // sequential streaming fraction of memory bandwidth

	// Pipelined reports whether aggregate and update overlap inside the
	// trainer (paper Eq. 10: ⊕ = max when pipelined, Σ otherwise). True for
	// the FPGA dataflow kernel, false for CPU/GPU.
	Pipelined bool

	// KernelLaunchUs is the fixed cost of launching one device kernel
	// (cudaLaunchKernel / enqueueTask).
	KernelLaunchUs float64

	// FrameworkOverheadMs is the per-training-iteration host-side overhead
	// of the software stack driving this device (Python/PyTorch dataloader,
	// autograd bookkeeping, etc.). Zero for the HLS-native FPGA path.
	FrameworkOverheadMs float64

	// ServeOverheadMs is the per-batch host-side overhead of the *inference*
	// stack driving this device. It is much smaller than the training
	// overhead: a serving tier runs a compiled forward graph (TorchScript /
	// TensorRT class) with no autograd or Python dataloader in the loop, so
	// only the dispatch layer remains. The serving runtime and the analytic
	// serving model charge this instead of FrameworkOverheadMs.
	ServeOverheadMs float64

	// LoaderGBs, when positive, is the fixed bandwidth of the host-framework
	// feature gather feeding this device (a torch-style collation pinned to
	// one Python process: thread-independent and serialized across all
	// devices driven by that stack). Zero means the device's batches are
	// gathered by the native threaded Feature Loader. Device batches on the
	// two stacks load concurrently — the lever that makes mixed fleets more
	// than the sum of their parts.
	LoaderGBs float64
}

// EffectiveTFLOPS returns the achievable dense-compute rate.
func (d Device) EffectiveTFLOPS() float64 { return d.PeakTFLOPS * d.MLPEff }

// GatherGBs returns the achievable irregular-gather bandwidth.
func (d Device) GatherGBs() float64 { return d.MemBWGBs * d.GatherEff }

// StreamGBs returns the achievable streaming bandwidth.
func (d Device) StreamGBs() float64 { return d.MemBWGBs * d.StreamEff }

// Validate checks that a device's parameters are physically meaningful.
func (d Device) Validate() error {
	if d.PeakTFLOPS <= 0 || d.MemBWGBs <= 0 || d.FreqGHz <= 0 {
		return fmt.Errorf("hw: %s has non-positive peak specs", d.Name)
	}
	for _, e := range []float64{d.MLPEff, d.GatherEff, d.StreamEff} {
		if e <= 0 || e > 1 {
			return fmt.Errorf("hw: %s efficiency %v outside (0,1]", d.Name, e)
		}
	}
	if d.Kind == CPU && d.Cores <= 0 {
		return fmt.Errorf("hw: CPU %s has no cores", d.Name)
	}
	return nil
}

// Link models a point-to-point channel (PCIe or the processor interconnect).
type Link struct {
	Name      string
	PeakGBs   float64
	Eff       float64 // effective/burst fraction of peak (paper §V: "effective bandwidth")
	LatencyUs float64 // per-transfer setup latency
}

// EffGBs returns the effective bandwidth.
func (l Link) EffGBs() float64 { return l.PeakGBs * l.Eff }

// TransferSec returns the time to move `bytes` across the link, including
// the fixed setup latency.
func (l Link) TransferSec(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencyUs*1e-6 + bytes/(l.EffGBs()*1e9)
}

// Degraded returns the link with its peak bandwidth divided by factor —
// scripted congestion or a flapping NIC. Only the bandwidth term degrades;
// the setup latency is a fixed cost either way. Factor ≤ 1 returns the link
// unchanged, so factor 1 is exactly the healthy link.
func (l Link) Degraded(factor float64) Link {
	if factor <= 1 {
		return l
	}
	l.PeakGBs /= factor
	return l
}

// Platform is one compute node: sockets × CPU, plus accelerators behind PCIe.
// The accelerator fleet may be heterogeneous (GPUs and FPGAs side by side);
// AccelLinks then carries each device's own host link.
type Platform struct {
	Name    string
	CPU     Device
	Sockets int
	Accels  []Device
	PCIe    Link // default per-accelerator link (used when AccelLinks is empty)
	Xbus    Link // processor interconnect (xGMI / QPI)
	DRAMGB  float64

	// AccelLinks, when non-empty, gives accelerator i its own host link
	// (mixed fleets put each device generation on its native PCIe slot).
	// Must be empty or exactly len(Accels) long.
	AccelLinks []Link
}

// AccelLink returns accelerator i's host link: its private entry in
// AccelLinks when present, the shared PCIe default otherwise.
func (p Platform) AccelLink(i int) Link {
	if i >= 0 && i < len(p.AccelLinks) {
		return p.AccelLinks[i]
	}
	return p.PCIe
}

// TotalCPUTFLOPS returns the combined CPU peak across sockets.
func (p Platform) TotalCPUTFLOPS() float64 { return p.CPU.PeakTFLOPS * float64(p.Sockets) }

// TotalCPUCores returns the combined core count across sockets.
func (p Platform) TotalCPUCores() int { return p.CPU.Cores * p.Sockets }

// CPUMemBWGBs returns the aggregate CPU DRAM bandwidth across sockets.
func (p Platform) CPUMemBWGBs() float64 { return p.CPU.MemBWGBs * float64(p.Sockets) }

// TotalTFLOPS returns platform peak (CPU + accelerators) — the
// normalization denominator of the paper's Table VII.
func (p Platform) TotalTFLOPS() float64 {
	total := p.TotalCPUTFLOPS()
	for _, a := range p.Accels {
		total += a.PeakTFLOPS
	}
	return total
}

// Validate checks platform consistency.
func (p Platform) Validate() error {
	if p.Sockets <= 0 {
		return fmt.Errorf("hw: platform %s has %d sockets", p.Name, p.Sockets)
	}
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	for _, a := range p.Accels {
		if err := a.Validate(); err != nil {
			return err
		}
		if a.Kind == CPU {
			return fmt.Errorf("hw: accelerator %s has Kind CPU", a.Name)
		}
	}
	if p.PCIe.EffGBs() <= 0 {
		return fmt.Errorf("hw: platform %s has no PCIe bandwidth", p.Name)
	}
	if len(p.AccelLinks) != 0 {
		if len(p.AccelLinks) != len(p.Accels) {
			return fmt.Errorf("hw: platform %s has %d accel links for %d accelerators",
				p.Name, len(p.AccelLinks), len(p.Accels))
		}
		for i, l := range p.AccelLinks {
			if l.EffGBs() <= 0 {
				return fmt.Errorf("hw: platform %s accelerator %d (%s) has no link bandwidth",
					p.Name, i, p.Accels[i].Name)
			}
		}
	}
	return nil
}

// WithAccelCount returns a copy of p holding n accelerators drawn
// round-robin from its existing device list (with their links), so mixed
// fleets keep their composition under the scalability sweep (paper Fig. 9,
// 1–16 accels) instead of silently collapsing to clones of the first device.
func (p Platform) WithAccelCount(n int) Platform {
	if len(p.Accels) == 0 {
		panic("hw: WithAccelCount on platform without accelerators")
	}
	out := p
	out.Accels = make([]Device, n)
	for i := range out.Accels {
		out.Accels[i] = p.Accels[i%len(p.Accels)]
	}
	if len(p.AccelLinks) > 0 {
		out.AccelLinks = make([]Link, n)
		for i := range out.AccelLinks {
			out.AccelLinks[i] = p.AccelLinks[i%len(p.AccelLinks)]
		}
	}
	out.Name = fmt.Sprintf("%s x%d", p.Name, n)
	return out
}
