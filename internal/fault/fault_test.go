package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFullGrammar(t *testing.T) {
	spec := "fail,worker=1,at=0.05;" +
		"stall,worker=0,from=0.02,to=0.04;" +
		"slow,worker=2,from=0,to=0.1,factor=3;" +
		"fail,node=2,at=iter:5;" +
		"crash,node=1,at=iter:3;" +
		"degrade,link,from=iter:2,to=iter:6,factor=4"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: FailStop, Worker: 1, Node: -1, AtSec: 0.05, AtIter: -1, FromIter: -1, ToIter: -1, Factor: 1},
		{Kind: Stall, Worker: 0, Node: -1, FromSec: 0.02, ToSec: 0.04, AtIter: -1, FromIter: -1, ToIter: -1, Factor: 1},
		{Kind: Slow, Worker: 2, Node: -1, FromSec: 0, ToSec: 0.1, AtIter: -1, FromIter: -1, ToIter: -1, Factor: 3},
		{Kind: FailStop, Worker: -1, Node: 2, AtIter: 5, FromIter: -1, ToIter: -1, Factor: 1},
		{Kind: Crash, Worker: -1, Node: 1, AtIter: 3, FromIter: -1, ToIter: -1, Factor: 1},
		{Kind: LinkDegrade, Worker: -1, Node: -1, AtIter: -1, FromIter: 2, ToIter: 6, Factor: 4},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("parsed %+v\nwant %+v", s.Events, want)
	}
	if s.Empty() {
		t.Fatal("non-empty schedule reports Empty")
	}
	if !s.HasServing() || !s.HasCluster() {
		t.Fatalf("plane detection: serving=%v cluster=%v", s.HasServing(), s.HasCluster())
	}
	if got := s.MaxWorker(); got != 2 {
		t.Fatalf("MaxWorker %d", got)
	}
	if got := s.MaxNode(); got != 2 {
		t.Fatalf("MaxNode %d", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "fail,worker=1,at=0.05;slow,worker=2,from=0.01,to=0.09,factor=2.5;" +
		"fail,node=3,at=iter:7;degrade,link,from=iter:1,to=iter:4,factor=8"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip drifted:\n %+v\n %+v", s, again)
	}
}

func TestParseEmptyAndNil(t *testing.T) {
	s, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatal("blank spec should be empty")
	}
	var nilSched *Schedule
	if !nilSched.Empty() || nilSched.HasServing() || nilSched.HasCluster() {
		t.Fatal("nil schedule must behave as empty")
	}
	if nilSched.NodeFailIter(0) != -1 || nilSched.NodeCrashIter(0) != -1 {
		t.Fatal("nil schedule must report no node events")
	}
	if f := nilSched.LinkFactor(3); f != 1 {
		t.Fatalf("nil schedule link factor %v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"explode,worker=1", "unknown event kind"},
		{"fail,worker=1", ""}, // missing at= defaults to 0: legal (fails at t=0)
		{"fail,at=0.5", "needs worker= or node="},
		{"fail,worker=1,at=-2", "negative time"},
		{"fail,node=1,at=0.5", "needs at=iter:K"},
		{"crash,worker=1,at=iter:2", "targets training nodes"},
		{"stall,node=1,from=0,to=1", "targets serving workers"},
		{"stall,worker=0,from=0.4,to=0.2", "from < to"},
		{"slow,worker=0,from=0,to=1,factor=0.5", "factor 0.5 < 1"},
		{"degrade,link,from=iter:5,to=iter:2,factor=2", "iterations"},
		{"degrade,link,from=iter:0,to=iter:2,factor=0.9", "factor 0.9 < 1"},
		{"fail,worker=1,at=0.1;fail,worker=1,at=0.2", "fail-stops twice"},
		{"fail,node=1,at=iter:1;crash,node=1,at=iter:2", "dies twice"},
		{"fail,worker=x,at=0.1", "bad worker"},
		{"slow,worker=0,from=0,to=1,oops=3", "unknown field"},
		{"slow,worker=0,from=0,to=1,factor", "not key=value"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if c.wantSub == "" {
			if err != nil {
				t.Errorf("Parse(%q) unexpected error %v", c.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %v, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

func TestLinkFactorWindows(t *testing.T) {
	s, err := Parse("degrade,link,from=iter:2,to=iter:4,factor=3;degrade,link,from=iter:3,to=iter:5,factor=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1, 1: 1, 2: 3, 3: 6, 4: 2, 5: 1}
	for it, f := range want {
		if got := s.LinkFactor(it); got != f {
			t.Errorf("LinkFactor(%d) = %v, want %v", it, got, f)
		}
	}
}

func TestNodeQueries(t *testing.T) {
	s, err := Parse("fail,node=2,at=iter:5;crash,node=0,at=iter:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NodeFailIter(2); got != 5 {
		t.Fatalf("NodeFailIter(2) = %d", got)
	}
	if got := s.NodeFailIter(0); got != -1 {
		t.Fatalf("NodeFailIter(0) = %d", got)
	}
	if got := s.NodeCrashIter(0); got != 1 {
		t.Fatalf("NodeCrashIter(0) = %d", got)
	}
	if got := s.NodeCrashIter(2); got != -1 {
		t.Fatalf("NodeCrashIter(2) = %d", got)
	}
}
