// Package fault is the deterministic fault-injection subsystem: a schedule
// of scripted events on the virtual clock, parsed from a compact text spec,
// that both planes of the runtime consume — the serving fleet (worker
// fail-stop, transient stalls, straggler service-time inflation) and the
// training cluster (node fail-stop or hard crash at an iteration, ring-link
// degradation over an iteration window). The package is a leaf: it knows
// nothing about serve or cluster, it only describes *when* and *where*
// things break. Everything is driven by virtual time (seconds for serving,
// iteration indices for training), so a given schedule replays bit-exactly
// and an empty schedule leaves every consumer on its unmodified code path.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the scripted failure modes.
type Kind int

const (
	// FailStop removes the target permanently: a serving worker at AtSec
	// virtual seconds, or a training node before ring round AtIter. The
	// survivors re-form and continue.
	FailStop Kind = iota
	// Crash is the training-only hard failure: the node's engine errors out
	// at iteration AtIter and the ring aborts — the legacy terminal path,
	// kept scripted so the abort/error-aggregation machinery stays tested.
	Crash
	// Stall freezes a serving worker over [FromSec, ToSec): batches that
	// would start inside the window start at its end instead.
	Stall
	// Slow inflates a serving worker's service time by Factor for batches
	// starting inside [FromSec, ToSec) — the scripted straggler.
	Slow
	// LinkDegrade divides the training ring link's effective bandwidth by
	// Factor for iterations in [FromIter, ToIter).
	LinkDegrade
)

// String names the kind the way the spec grammar spells it.
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "fail"
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Slow:
		return "slow"
	case LinkDegrade:
		return "degrade"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scripted fault. Exactly one of Worker/Node is set (≥ 0) for
// targeted events; LinkDegrade targets the ring link and sets neither.
// Serving events are timed in virtual seconds (AtSec / FromSec..ToSec);
// training events in cumulative ring-iteration indices (AtIter /
// FromIter..ToIter; iteration counting does not reset between epochs).
type Event struct {
	Kind   Kind
	Worker int // serving worker pool index, -1 when not a serving event
	Node   int // training node rank, -1 when not a node event

	AtSec            float64 // FailStop (serving)
	AtIter           int     // FailStop/Crash (training), -1 unset
	FromSec, ToSec   float64 // Stall/Slow window (serving)
	FromIter, ToIter int     // LinkDegrade window (training), -1 unset
	Factor           float64 // Slow/LinkDegrade inflation, ≥ 1
}

// Schedule is an ordered set of scripted events. The zero value and nil are
// both valid empty schedules.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule carries no events (nil-safe). Consumers
// gate every fault code path on this, so an empty schedule is byte-identical
// to no schedule at all.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// HasServing reports whether any event targets a serving worker.
func (s *Schedule) HasServing() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Worker >= 0 {
			return true
		}
	}
	return false
}

// HasCluster reports whether any event targets a training node or the ring
// link.
func (s *Schedule) HasCluster() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Node >= 0 || e.Kind == LinkDegrade {
			return true
		}
	}
	return false
}

// MaxWorker returns the highest worker index referenced (-1 when none).
func (s *Schedule) MaxWorker() int {
	m := -1
	if s == nil {
		return m
	}
	for _, e := range s.Events {
		if e.Worker > m {
			m = e.Worker
		}
	}
	return m
}

// MaxNode returns the highest node rank referenced (-1 when none).
func (s *Schedule) MaxNode() int {
	m := -1
	if s == nil {
		return m
	}
	for _, e := range s.Events {
		if e.Node > m {
			m = e.Node
		}
	}
	return m
}

// NodeFailIter returns the iteration before which node rank fail-stops, or
// -1 when the schedule never kills it.
func (s *Schedule) NodeFailIter(rank int) int {
	if s == nil {
		return -1
	}
	for _, e := range s.Events {
		if e.Kind == FailStop && e.Node == rank {
			return e.AtIter
		}
	}
	return -1
}

// NodeCrashIter returns the iteration at which node rank hard-crashes, or -1.
func (s *Schedule) NodeCrashIter(rank int) int {
	if s == nil {
		return -1
	}
	for _, e := range s.Events {
		if e.Kind == Crash && e.Node == rank {
			return e.AtIter
		}
	}
	return -1
}

// LinkFactor returns the ring link's bandwidth-degradation factor at the
// given iteration (1 when no window covers it; factors of overlapping
// windows multiply).
func (s *Schedule) LinkFactor(iter int) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for _, e := range s.Events {
		if e.Kind == LinkDegrade && iter >= e.FromIter && iter < e.ToIter {
			f *= e.Factor
		}
	}
	return f
}

// Validate checks every event's shape: targets present, windows ordered,
// factors ≥ 1, and at most one fail-stop or crash per target.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	seenWorkerFail := map[int]bool{}
	seenNodeEnd := map[int]bool{}
	for i, e := range s.Events {
		switch e.Kind {
		case FailStop:
			switch {
			case e.Worker >= 0:
				if e.AtSec < 0 {
					return fmt.Errorf("fault: event %d: fail worker=%d at negative time %v", i, e.Worker, e.AtSec)
				}
				if seenWorkerFail[e.Worker] {
					return fmt.Errorf("fault: event %d: worker %d fail-stops twice", i, e.Worker)
				}
				seenWorkerFail[e.Worker] = true
			case e.Node >= 0:
				if e.AtIter < 0 {
					return fmt.Errorf("fault: event %d: fail node=%d needs at=iter:K", i, e.Node)
				}
				if seenNodeEnd[e.Node] {
					return fmt.Errorf("fault: event %d: node %d dies twice", i, e.Node)
				}
				seenNodeEnd[e.Node] = true
			default:
				return fmt.Errorf("fault: event %d: fail needs worker= or node=", i)
			}
		case Crash:
			if e.Node < 0 {
				return fmt.Errorf("fault: event %d: crash targets training nodes (node=)", i)
			}
			if e.AtIter < 0 {
				return fmt.Errorf("fault: event %d: crash node=%d needs at=iter:K", i, e.Node)
			}
			if seenNodeEnd[e.Node] {
				return fmt.Errorf("fault: event %d: node %d dies twice", i, e.Node)
			}
			seenNodeEnd[e.Node] = true
		case Stall, Slow:
			if e.Worker < 0 {
				return fmt.Errorf("fault: event %d: %s targets serving workers (worker=)", i, e.Kind)
			}
			if !(e.FromSec >= 0 && e.ToSec > e.FromSec) {
				return fmt.Errorf("fault: event %d: %s worker=%d needs 0 ≤ from < to (got [%v,%v))",
					i, e.Kind, e.Worker, e.FromSec, e.ToSec)
			}
			if e.Kind == Slow && e.Factor < 1 {
				return fmt.Errorf("fault: event %d: slow factor %v < 1", i, e.Factor)
			}
		case LinkDegrade:
			if !(e.FromIter >= 0 && e.ToIter > e.FromIter) {
				return fmt.Errorf("fault: event %d: degrade link needs 0 ≤ from < to iterations (got [%d,%d))",
					i, e.FromIter, e.ToIter)
			}
			if e.Factor < 1 {
				return fmt.Errorf("fault: event %d: degrade factor %v < 1", i, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// String renders the schedule back in the spec grammar (a parse of the
// result yields an equal schedule).
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		var b strings.Builder
		b.WriteString(e.Kind.String())
		switch {
		case e.Worker >= 0:
			fmt.Fprintf(&b, ",worker=%d", e.Worker)
		case e.Node >= 0:
			fmt.Fprintf(&b, ",node=%d", e.Node)
		default:
			b.WriteString(",link")
		}
		switch e.Kind {
		case FailStop:
			if e.Worker >= 0 {
				fmt.Fprintf(&b, ",at=%g", e.AtSec)
			} else {
				fmt.Fprintf(&b, ",at=iter:%d", e.AtIter)
			}
		case Crash:
			fmt.Fprintf(&b, ",at=iter:%d", e.AtIter)
		case Stall:
			fmt.Fprintf(&b, ",from=%g,to=%g", e.FromSec, e.ToSec)
		case Slow:
			fmt.Fprintf(&b, ",from=%g,to=%g,factor=%g", e.FromSec, e.ToSec, e.Factor)
		case LinkDegrade:
			fmt.Fprintf(&b, ",from=iter:%d,to=iter:%d,factor=%g", e.FromIter, e.ToIter, e.Factor)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}

// Parse reads a fault schedule from the compact spec grammar — events
// separated by ';', fields by ',', in the same shape as the serving
// workload spec:
//
//	fail,worker=1,at=0.05            worker 1 fail-stops at 0.05 virtual sec
//	stall,worker=0,from=0.02,to=0.04 worker 0 freezes over the window
//	slow,worker=2,from=0,to=0.1,factor=3   scripted straggler (3× service)
//	fail,node=2,at=iter:5            node 2 fail-stops before ring round 5
//	crash,node=1,at=iter:3           node 1 hard-crashes (ring aborts)
//	degrade,link,from=iter:2,to=iter:6,factor=4  ring link at 1/4 bandwidth
//
// An empty spec returns an empty (non-nil) schedule. Iteration indices are
// cumulative across epochs and count ring rounds from 0.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ",")
		e := Event{Worker: -1, Node: -1, AtIter: -1, FromIter: -1, ToIter: -1, Factor: 1}
		switch strings.TrimSpace(fields[0]) {
		case "fail":
			e.Kind = FailStop
		case "crash":
			e.Kind = Crash
		case "stall":
			e.Kind = Stall
		case "slow":
			e.Kind = Slow
		case "degrade":
			e.Kind = LinkDegrade
		default:
			return nil, fmt.Errorf("fault: %q: unknown event kind %q (want fail, crash, stall, slow, or degrade)",
				entry, fields[0])
		}
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if f == "link" { // bare target marker for degrade
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q: field %q is not key=value", entry, f)
			}
			var err error
			switch key {
			case "worker":
				e.Worker, err = parseIndex(val)
			case "node":
				e.Node, err = parseIndex(val)
			case "at":
				err = parseWhen(val, &e.AtSec, &e.AtIter)
			case "from":
				err = parseWhen(val, &e.FromSec, &e.FromIter)
			case "to":
				err = parseWhen(val, &e.ToSec, &e.ToIter)
			case "factor":
				e.Factor, err = strconv.ParseFloat(val, 64)
			default:
				return nil, fmt.Errorf("fault: %q: unknown field %q", entry, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: %q: bad %s: %w", entry, key, err)
			}
		}
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseIndex parses a non-negative target index.
func parseIndex(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return -1, err
	}
	if n < 0 {
		return -1, fmt.Errorf("negative index %d", n)
	}
	return n, nil
}

// parseWhen parses a time field: "iter:K" sets the iteration slot, a plain
// float the virtual-seconds slot.
func parseWhen(val string, sec *float64, iter *int) error {
	if k, ok := strings.CutPrefix(val, "iter:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("negative iteration %d", n)
		}
		*iter = n
		return nil
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	*sec = v
	return nil
}
