// Package drm implements the paper's Dynamic Resource Management engine
// (§IV-A, Algorithm 1): a bottleneck-guided optimizer that fine-tunes the
// task mapping every iteration. Two moves exist:
//
//   - balance_work: shift mini-batch targets between a CPU task and an
//     accelerator task (trainer↔trainer or sampler↔sampler), keeping the
//     global mini-batch size constant;
//   - balance_thread: re-assign CPU threads from the fastest CPU task to a
//     bottlenecked CPU task, keeping the total thread count constant.
//
// The engine consumes the stage times measured by the runtime (or the
// pipeline simulator) and returns the assignment for the next iteration. It
// deliberately has no model of *why* a stage is slow — exactly like the
// paper's engine, it reacts only to measured times, which is what lets it
// absorb model error (framework overheads, contention) that the design-time
// mapping cannot see.
package drm

import (
	"repro/internal/perfmodel"
)

// Stage identifies one of Algorithm 1's five candidate bottlenecks.
type Stage int

const (
	SampCPU   Stage = iota // T_SC
	SampAccel              // T_SA
	Load                   // T_Load
	TrainCPU               // T_TC
	Accel                  // T_Accel = max(T_Tran, T_TA), bundled per Algorithm 1 line 1
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case SampCPU:
		return "T_SC"
	case SampAccel:
		return "T_SA"
	case Load:
		return "T_Load"
	case TrainCPU:
		return "T_TC"
	case Accel:
		return "T_Accel"
	default:
		return "?"
	}
}

// Engine is the DRM controller. It implements pipesim.Controller.
type Engine struct {
	// Cores is the CPU thread budget balance_thread conserves.
	Cores int
	// Gain is the fraction of the measured imbalance corrected per step
	// (1 = jump straight to the estimated optimum; smaller damps oscillation).
	Gain float64
	// MinBatch is the smallest per-device mini-batch share (keeps every
	// trainer participating so measurements stay available).
	MinBatch int
	// MinThreads is the floor for any CPU task's thread count.
	MinThreads int
	// ThreadStep is how many threads one balance_thread move transfers.
	ThreadStep int
	// Tolerance suppresses adjustment when the bottleneck exceeds the
	// fastest stage by less than this relative margin (hysteresis).
	Tolerance float64
	// FusedPrefetch tells the engine that Feature Loading and Data Transfer
	// run as one fused pipeline stage (the pre-TFP configuration, §IV-B).
	// The engine then optimizes the fused time Load+Trans as a unit and
	// treats T_Accel as the trainer time alone. With TFP enabled (the
	// paper's full system) leave this false: Algorithm 1's bundling
	// T_Accel = max(T_Tran, T_TA) applies.
	FusedPrefetch bool

	// Moves counts applied adjustments, by kind, for introspection.
	MovesWork   int
	MovesThread int
}

// New returns an engine with the defaults used throughout the experiments.
func New(cores int) *Engine {
	return &Engine{
		Cores: cores, Gain: 0.5, MinBatch: 32, MinThreads: 4,
		ThreadStep: 4, Tolerance: 0.08,
	}
}

// times extracts Algorithm 1's five inputs from the measured stage times.
func times(st perfmodel.StageTimes) map[Stage]float64 {
	tAccel := st.Trans
	if st.TrainAcc > tAccel {
		tAccel = st.TrainAcc
	}
	return map[Stage]float64{
		SampCPU:   st.SampCPU,
		SampAccel: st.SampAccel,
		Load:      st.Load,
		TrainCPU:  st.TrainCPU,
		Accel:     tAccel,
	}
}

// rank returns the *present* (non-zero) stages ordered slowest-first, and
// the fastest present CPU task. Absent stages (e.g. T_SA when accelerators
// do not sample) never appear as bottleneck or fastest.
func rank(ts map[Stage]float64) (order []Stage, fastestCPU Stage) {
	for _, s := range []Stage{SampCPU, SampAccel, Load, TrainCPU, Accel} {
		if ts[s] > 0 {
			order = append(order, s)
		}
	}
	// Insertion sort by time descending (≤5 elements).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ts[order[j]] > ts[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	fastestCPU = SampCPU
	best := -1.0
	for _, s := range []Stage{SampCPU, Load, TrainCPU} {
		t := ts[s]
		if t <= 0 {
			continue
		}
		if best < 0 || t < best {
			best = t
			fastestCPU = s
		}
	}
	return order, fastestCPU
}

// Adjust implements Algorithm 1 for one iteration, extended with the
// intra-fleet move: after the CPU↔accelerator balancing of the original
// algorithm, per-device stage measurements (when provided) rebalance the
// shares of *unequal* accelerators against each other.
func (e *Engine) Adjust(_ int, st perfmodel.StageTimes, a perfmodel.Assignment) perfmodel.Assignment {
	ts := times(st)
	if e.FusedPrefetch {
		ts[Load] = st.Load + st.Trans
		ts[Accel] = st.TrainAcc
	}
	out := a.Clone()
	e.adjustGlobal(&out, st, ts)
	e.balanceAccels(&out, st.PerAccel)
	return out
}

// adjustGlobal is the original Algorithm 1 step over the five aggregated
// stage times.
func (e *Engine) adjustGlobal(out *perfmodel.Assignment, st perfmodel.StageTimes, ts map[Stage]float64) {
	order, fastestCPU := rank(ts)
	if len(order) < 2 {
		return
	}
	bottleneck := order[0]
	fastest := order[len(order)-1]
	second := order[len(order)-2]

	// Hysteresis: when the bottleneck barely exceeds the runner-up, any move
	// just swaps the two and the pipeline oscillates; the bottleneck time —
	// which is what the pipeline clock follows — cannot drop below the
	// runner-up anyway.
	if ts[second] > 0 && ts[bottleneck] < ts[second]*(1+e.Tolerance) {
		return
	}

	switch bottleneck {
	case SampAccel: // line 11: shift sampling work back toward the CPU
		e.balanceSampling(out, ts, -1)
	case Accel: // line 13: shift training work toward the CPU
		e.balanceTraining(out, ts, -1, true)
	case Load: // line 15
		if e.FusedPrefetch && st.Trans > st.Load {
			// The fused prefetch stage is transfer-dominated: shedding
			// accelerator work shrinks both halves; more loader threads
			// would not help the PCIe half.
			e.balanceTraining(out, ts, -1, true)
		} else {
			e.balanceThread(out, fastestCPU, Load)
		}
	case SampCPU: // lines 17–24
		if fastest == SampAccel || (fastest == Accel && second == SampAccel) {
			e.balanceSampling(out, ts, +1)
		} else {
			e.balanceThread(out, fastestCPU, SampCPU)
		}
	case TrainCPU: // lines 25–32
		if fastest == Accel || (fastest == SampAccel && second == Accel) {
			e.balanceTraining(out, ts, +1, true)
		} else {
			e.balanceThread(out, fastestCPU, TrainCPU)
		}
	}
}

// balanceAccels is balance_work *within* the accelerator fleet. Algorithm 1
// moves work between the CPU and "the accelerators" as one block — enough
// when the fleet is homogeneous, but on a mixed CPU+GPU+FPGA node the
// per-device stage vector exposes a straggler the aggregates hide. One move
// shifts targets from the slowest device to the fastest, sized (like
// balanceTraining) to land at the crossover of the two devices' per-target
// costs, so unequal devices converge to equal stage times instead of
// oscillating.
func (e *Engine) balanceAccels(a *perfmodel.Assignment, per []perfmodel.DeviceStage) {
	n := len(a.AccelBatch)
	if n < 2 || len(per) < n {
		return
	}
	slow, fast := -1, -1
	for i := 0; i < n; i++ {
		if a.AccelBatch[i] <= 0 || per[i].Busy() <= 0 {
			continue
		}
		if slow < 0 || per[i].Busy() > per[slow].Busy() {
			slow = i
		}
		if fast < 0 || per[i].Busy() < per[fast].Busy() {
			fast = i
		}
	}
	if slow < 0 || fast < 0 || slow == fast {
		return
	}
	tSlow, tFast := per[slow].Busy(), per[fast].Busy()
	if tSlow < tFast*(1+e.Tolerance) {
		return // hysteresis: the fleet is balanced enough
	}
	cSlow := tSlow / float64(a.AccelBatch[slow])
	cFast := tFast / float64(a.AccelBatch[fast])
	move := int(e.Gain * (tSlow - tFast) / (cSlow + cFast))
	if a.AccelBatch[slow]-move < e.MinBatch {
		move = a.AccelBatch[slow] - e.MinBatch
	}
	if move <= 0 {
		return
	}
	a.AccelBatch[slow] -= move
	a.AccelBatch[fast] += move
	e.MovesWork++
}

// balanceTraining is balance_work over trainer mini-batch shares.
// dir = +1 moves work CPU→accelerators, −1 moves accelerators→CPU.
//
// The step size targets the equilibrium of the two sides that the moved
// batch actually scales: the CPU-side time (T_TC, proportional to the CPU
// share) against the accelerator-proportional side — whichever is larger of
// the loading and accelerator stages, both of which scale with the
// accelerator share. Solving  t_cpu − Δ·c_cpu = t_acc + Δ·c_acc  for Δ lands
// at the crossover instead of hopping over it, so the engine settles rather
// than oscillates.
func (e *Engine) balanceTraining(a *perfmodel.Assignment, ts map[Stage]float64, dir int, proportional bool) {
	nAcc := len(a.AccelBatch)
	if nAcc == 0 {
		return
	}
	accTotal := 0
	for _, b := range a.AccelBatch {
		accTotal += b
	}
	total := a.CPUBatch + accTotal
	cpuSide := ts[TrainCPU]
	accSide := ts[Accel]
	if ts[Load] > accSide {
		accSide = ts[Load]
	}
	var move int
	if proportional && cpuSide > 0 && accSide > 0 && a.CPUBatch > 0 && accTotal > 0 {
		cCPU := cpuSide / float64(a.CPUBatch)
		cAcc := accSide / float64(accTotal)
		move = int(e.Gain * (accSide - cpuSide) / (cCPU + cAcc) * float64(-dir))
		if move < 0 {
			move = -move
		}
	} else {
		move = total / 20
	}
	if move == 0 {
		return
	}
	if dir > 0 { // CPU → accelerators
		if a.CPUBatch-move < e.MinBatch {
			move = a.CPUBatch - e.MinBatch
		}
		if move <= 0 {
			return
		}
		a.CPUBatch -= move
		distribute(a.AccelBatch, move)
	} else { // accelerators → CPU
		if accTotal-move < e.MinBatch*nAcc {
			move = accTotal - e.MinBatch*nAcc
		}
		if move <= 0 {
			return
		}
		a.CPUBatch += move
		distribute(a.AccelBatch, -move)
	}
	e.MovesWork++
}

// balanceSampling is balance_work over the sampling split.
// dir = +1 moves sampling work CPU→accelerators, −1 the reverse.
func (e *Engine) balanceSampling(a *perfmodel.Assignment, ts map[Stage]float64, dir int) {
	step := 0.1 * e.Gain * 2
	frac := a.AccelSampleFrac + float64(dir)*step
	if frac < 0 {
		frac = 0
	}
	if frac > 0.9 {
		frac = 0.9
	}
	if frac == a.AccelSampleFrac {
		return
	}
	a.AccelSampleFrac = frac
	e.MovesWork++
}

// balanceThread moves ThreadStep CPU threads from one task to another.
func (e *Engine) balanceThread(a *perfmodel.Assignment, from, to Stage) {
	if from == to {
		return
	}
	get := func(s Stage) *int {
		switch s {
		case SampCPU:
			return &a.SampThreads
		case Load:
			return &a.LoadThreads
		case TrainCPU:
			return &a.TrainThreads
		default:
			return nil
		}
	}
	src, dst := get(from), get(to)
	if src == nil || dst == nil {
		return
	}
	step := e.ThreadStep
	if *src-step < e.MinThreads {
		step = *src - e.MinThreads
	}
	if step <= 0 {
		return
	}
	*src -= step
	*dst += step
	e.MovesThread++
}

// distribute spreads delta targets across the accelerator shares in
// proportion to their current sizes (falling back to a uniform split when
// every share is zero), so a heterogeneous fleet's balance survives
// CPU↔accelerator moves — the old uniform split would push the same
// increment onto a U250 and an A5000 alike and undo the throughput-
// proportional mapping every iteration. Negative deltas shed proportionally
// and never push a share below zero; the shares' sum changes by exactly
// delta as long as |delta| does not exceed the fleet total (which callers
// guarantee), and by the fleet total otherwise.
func distribute(shares []int, delta int) {
	n := len(shares)
	if n == 0 || delta == 0 {
		return
	}
	if delta > 0 {
		// Revive starved devices first: a share that hit zero would
		// otherwise have zero growth weight forever (and no measurements
		// for the intra-fleet move to act on). One target is noise for
		// healthy fleets but hands the idle device a trickle, after which
		// its measured stage times — and proportional weights — return.
		for i := range shares {
			if delta == 0 {
				return
			}
			if shares[i] == 0 {
				shares[i]++
				delta--
			}
		}
		weights := make([]float64, n)
		for i, s := range shares {
			weights[i] = float64(s)
		}
		for i, p := range perfmodel.Apportion(delta, weights) {
			shares[i] += p
		}
		return
	}
	total := 0
	weights := make([]float64, n)
	for i, s := range shares {
		weights[i] = float64(s)
		total += s
	}
	mag := -delta
	if mag > total {
		mag = total
	}
	parts := perfmodel.Apportion(mag, weights)
	// Shedding: cap each removal at the share itself, then drain any
	// leftover from the largest remaining shares.
	left := 0
	for i := range shares {
		take := parts[i]
		if take > shares[i] {
			left += take - shares[i]
			take = shares[i]
		}
		shares[i] -= take
	}
	for left > 0 {
		big := -1
		for i := range shares {
			if shares[i] > 0 && (big < 0 || shares[i] > shares[big]) {
				big = i
			}
		}
		if big < 0 {
			return
		}
		shares[big]--
		left--
	}
}
