package drm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
)

func baseAssign() perfmodel.Assignment {
	return perfmodel.Assignment{
		CPUBatch:    1024,
		AccelBatch:  []int{768, 768, 768, 768},
		SampThreads: 32, LoadThreads: 32, TrainThreads: 64,
	}
}

func TestStageString(t *testing.T) {
	for s, want := range map[Stage]string{
		SampCPU: "T_SC", SampAccel: "T_SA", Load: "T_Load", TrainCPU: "T_TC", Accel: "T_Accel",
	} {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
}

func TestAccelBundling(t *testing.T) {
	// Algorithm 1 line 1: T_Accel = max(T_Tran, T_TA).
	ts := times(perfmodel.StageTimes{Trans: 3, TrainAcc: 5})
	if ts[Accel] != 5 {
		t.Fatalf("T_Accel = %v, want max(3,5)", ts[Accel])
	}
	ts = times(perfmodel.StageTimes{Trans: 7, TrainAcc: 5})
	if ts[Accel] != 7 {
		t.Fatalf("T_Accel = %v, want max(7,5)", ts[Accel])
	}
}

func TestHysteresisNoChangeWhenBalanced(t *testing.T) {
	e := New(128)
	a := baseAssign()
	st := perfmodel.StageTimes{SampCPU: 1, Load: 1, Trans: 1, TrainCPU: 1, TrainAcc: 1}
	out := e.Adjust(0, st, a)
	if out.CPUBatch != a.CPUBatch || out.SampThreads != a.SampThreads {
		t.Fatal("balanced pipeline was adjusted")
	}
	if e.MovesWork+e.MovesThread != 0 {
		t.Fatal("moves counted for no-op")
	}
}

func TestAccelBottleneckShiftsWorkToCPU(t *testing.T) {
	e := New(128)
	a := baseAssign()
	// Accelerator path is 3× slower than the CPU trainer.
	st := perfmodel.StageTimes{SampCPU: 0.5, Load: 0.5, Trans: 1, TrainAcc: 3, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.CPUBatch <= a.CPUBatch {
		t.Fatalf("CPU batch should grow: %d -> %d", a.CPUBatch, out.CPUBatch)
	}
	if out.TotalBatch() != a.TotalBatch() {
		t.Fatalf("total batch changed: %d -> %d", a.TotalBatch(), out.TotalBatch())
	}
	if e.MovesWork != 1 {
		t.Fatalf("MovesWork = %d", e.MovesWork)
	}
}

func TestCPUTrainerBottleneckShiftsWorkToAccel(t *testing.T) {
	e := New(128)
	a := baseAssign()
	// CPU trainer slowest, accelerator path fastest.
	st := perfmodel.StageTimes{SampCPU: 1, Load: 1, Trans: 0.2, TrainAcc: 0.4, TrainCPU: 3}
	out := e.Adjust(0, st, a)
	if out.CPUBatch >= a.CPUBatch {
		t.Fatalf("CPU batch should shrink: %d -> %d", a.CPUBatch, out.CPUBatch)
	}
	if out.TotalBatch() != a.TotalBatch() {
		t.Fatal("total batch not conserved")
	}
}

func TestLoadBottleneckMovesThreads(t *testing.T) {
	e := New(128)
	a := baseAssign()
	st := perfmodel.StageTimes{SampCPU: 0.5, Load: 3, Trans: 1, TrainAcc: 1, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.LoadThreads <= a.LoadThreads {
		t.Fatalf("loader threads should grow: %d -> %d", a.LoadThreads, out.LoadThreads)
	}
	// Threads conserved: the fastest CPU task (sampler at 0.5) donates.
	if out.SampThreads >= a.SampThreads {
		t.Fatal("sampler should donate threads")
	}
	totalBefore := a.SampThreads + a.LoadThreads + a.TrainThreads
	totalAfter := out.SampThreads + out.LoadThreads + out.TrainThreads
	if totalBefore != totalAfter {
		t.Fatalf("thread count changed: %d -> %d", totalBefore, totalAfter)
	}
	if e.MovesThread != 1 {
		t.Fatalf("MovesThread = %d", e.MovesThread)
	}
}

func TestCPUSamplerBottleneckOffloadsToAccelSampler(t *testing.T) {
	e := New(128)
	a := baseAssign()
	// Sampler slowest; accelerator sampler fastest → balance_work (line 18).
	st := perfmodel.StageTimes{SampCPU: 3, SampAccel: 0.1, Load: 1, Trans: 0.5, TrainAcc: 0.8, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.AccelSampleFrac <= a.AccelSampleFrac {
		t.Fatalf("accel sampling share should grow: %v -> %v", a.AccelSampleFrac, out.AccelSampleFrac)
	}
}

func TestCPUSamplerBottleneckStealsThreadsOtherwise(t *testing.T) {
	e := New(128)
	a := baseAssign()
	// Sampler slowest; fastest stage is the loader (a CPU task) → balance_thread.
	st := perfmodel.StageTimes{SampCPU: 3, SampAccel: 2.5, Load: 0.2, Trans: 1, TrainAcc: 1.5, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.SampThreads <= a.SampThreads {
		t.Fatalf("sampler threads should grow: %d -> %d", a.SampThreads, out.SampThreads)
	}
	if out.LoadThreads >= a.LoadThreads {
		t.Fatal("loader should donate threads")
	}
}

func TestAccelSamplerBottleneckPullsSamplingBack(t *testing.T) {
	e := New(128)
	a := baseAssign()
	a.AccelSampleFrac = 0.5
	st := perfmodel.StageTimes{SampCPU: 0.5, SampAccel: 3, Load: 1, Trans: 1, TrainAcc: 1, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.AccelSampleFrac >= a.AccelSampleFrac {
		t.Fatalf("accel sampling share should shrink: %v -> %v", a.AccelSampleFrac, out.AccelSampleFrac)
	}
}

// Algorithm 1 lines 20–21: sampler bottlenecked, the accelerator path is
// fastest AND the accelerator sampler is second-fastest → balance_work
// moves sampling to the accelerators.
func TestCPUSamplerBottleneckAccelFastestPath(t *testing.T) {
	e := New(128)
	a := baseAssign()
	// Order (desc): SampCPU 3 > TrainCPU 1 > Load 0.9 > SampAccel 0.3 > Accel 0.1.
	st := perfmodel.StageTimes{SampCPU: 3, SampAccel: 0.3, Load: 0.9, Trans: 0.05, TrainAcc: 0.1, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.AccelSampleFrac <= a.AccelSampleFrac {
		t.Fatalf("expected sampling offload via lines 20-21: %v -> %v",
			a.AccelSampleFrac, out.AccelSampleFrac)
	}
}

// Algorithm 1 lines 28–29: CPU trainer bottlenecked, accel sampler fastest
// and accel trainer second → balance_work moves training to accelerators.
func TestCPUTrainerBottleneckAccelSamplerFastestPath(t *testing.T) {
	e := New(128)
	a := baseAssign()
	a.AccelSampleFrac = 0.3
	// Order (desc): TrainCPU 3 > SampCPU 1 > Load 0.9 > Accel 0.2 > SampAccel 0.1.
	st := perfmodel.StageTimes{SampCPU: 1, SampAccel: 0.1, Load: 0.9, Trans: 0.05, TrainAcc: 0.2, TrainCPU: 3}
	out := e.Adjust(0, st, a)
	if out.CPUBatch >= a.CPUBatch {
		t.Fatalf("expected training offload via lines 28-29: %d -> %d", a.CPUBatch, out.CPUBatch)
	}
}

// With no accelerators in the assignment, work moves are silently skipped.
func TestNoAccelNoWorkMove(t *testing.T) {
	e := New(128)
	a := perfmodel.Assignment{CPUBatch: 1024, SampThreads: 32, LoadThreads: 32, TrainThreads: 64}
	st := perfmodel.StageTimes{SampCPU: 0.1, Load: 0.1, TrainCPU: 5, TrainAcc: 0.2, Trans: 0.1}
	out := e.Adjust(0, st, a)
	if out.CPUBatch != 1024 {
		t.Fatal("work moved despite no accelerators")
	}
}

func TestMinBatchFloorRespected(t *testing.T) {
	e := New(128)
	a := perfmodel.Assignment{
		CPUBatch:    e.MinBatch,
		AccelBatch:  []int{4000},
		SampThreads: 32, LoadThreads: 32, TrainThreads: 64,
	}
	// CPU trainer bottleneck wants to shed work but is already at the floor.
	st := perfmodel.StageTimes{SampCPU: 0.1, Load: 0.1, Trans: 0.1, TrainAcc: 0.2, TrainCPU: 5}
	out := e.Adjust(0, st, a)
	if out.CPUBatch < e.MinBatch {
		t.Fatalf("CPU batch %d below floor %d", out.CPUBatch, e.MinBatch)
	}
	if out.TotalBatch() != a.TotalBatch() {
		t.Fatal("total batch not conserved at floor")
	}
}

func TestThreadFloorRespected(t *testing.T) {
	e := New(128)
	a := baseAssign()
	a.SampThreads = e.MinThreads // fastest task already at floor
	st := perfmodel.StageTimes{SampCPU: 0.01, Load: 5, Trans: 1, TrainAcc: 1, TrainCPU: 1}
	out := e.Adjust(0, st, a)
	if out.SampThreads < e.MinThreads {
		t.Fatalf("sampler threads %d below floor", out.SampThreads)
	}
}

// Property: Adjust always conserves the global batch and the thread budget,
// and never produces negative shares.
func TestAdjustInvariants(t *testing.T) {
	e := New(128)
	f := func(sc, sa, ld, tc, ta, tr uint16, frac uint8) bool {
		a := baseAssign()
		a.AccelSampleFrac = float64(frac%10) / 10
		st := perfmodel.StageTimes{
			SampCPU:   float64(sc)/1000 + 0.001,
			SampAccel: float64(sa) / 1000,
			Load:      float64(ld)/1000 + 0.001,
			TrainCPU:  float64(tc)/1000 + 0.001,
			TrainAcc:  float64(ta)/1000 + 0.001,
			Trans:     float64(tr) / 1000,
		}
		out := e.Adjust(0, st, a)
		if out.TotalBatch() != a.TotalBatch() {
			return false
		}
		if out.CPUBatch < 0 {
			return false
		}
		for _, b := range out.AccelBatch {
			if b < 0 {
				return false
			}
		}
		threadsBefore := a.SampThreads + a.LoadThreads + a.TrainThreads
		threadsAfter := out.SampThreads + out.LoadThreads + out.TrainThreads
		if threadsBefore != threadsAfter {
			return false
		}
		return out.AccelSampleFrac >= 0 && out.AccelSampleFrac <= 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeEdgeCases(t *testing.T) {
	// Zero accelerators: a no-op, not a panic.
	distribute(nil, 100)
	distribute([]int{}, -100)

	// Proportional growth: a 3:1 fleet keeps its ratio.
	s := []int{300, 100}
	distribute(s, 40)
	if s[0] != 330 || s[1] != 110 {
		t.Fatalf("proportional add: %v", s)
	}

	// Proportional shedding conserves the delta exactly.
	s = []int{330, 110}
	distribute(s, -40)
	if s[0]+s[1] != 400 {
		t.Fatalf("shed lost targets: %v", s)
	}

	// A share that would go negative is clamped at zero and the remainder
	// drains from the bigger shares — nothing is silently lost.
	s = []int{500, 10}
	distribute(s, -100)
	if s[0]+s[1] != 410 {
		t.Fatalf("clamped shed lost targets: %v (sum %d, want 410)", s, s[0]+s[1])
	}
	if s[0] < 0 || s[1] < 0 {
		t.Fatalf("negative share: %v", s)
	}

	// Shedding more than the fleet holds empties it and stops.
	s = []int{5, 3}
	distribute(s, -100)
	if s[0] != 0 || s[1] != 0 {
		t.Fatalf("over-shed: %v", s)
	}

	// All-zero shares with growth fall back to a uniform split.
	s = []int{0, 0, 0}
	distribute(s, 9)
	if s[0]+s[1]+s[2] != 9 {
		t.Fatalf("zero-fleet add: %v", s)
	}
}

// Regression: a device whose share hit zero must not be starved forever —
// growth moves hand it at least a trickle so its measurements (and its
// proportional weight) come back.
func TestDistributeRevivesZeroedShare(t *testing.T) {
	s := []int{0, 640}
	distribute(s, 64)
	if s[0] == 0 {
		t.Fatalf("zeroed share never revived: %v", s)
	}
	if s[0]+s[1] != 704 {
		t.Fatalf("revival lost targets: %v", s)
	}
}

// The intra-fleet move: with per-device measurements showing one straggler,
// work must flow from the slow device to the fast one, conserving the total.
func TestBalanceAccelsMovesWorkToFastDevice(t *testing.T) {
	e := New(128)
	a := baseAssign()
	st := perfmodel.StageTimes{
		SampCPU: 1, Load: 1, Trans: 1, TrainAcc: 3, TrainCPU: 1,
		PerAccel: []perfmodel.DeviceStage{
			{Train: 3}, {Train: 1}, {Train: 1}, {Train: 1},
		},
	}
	out := e.Adjust(0, st, a)
	if out.AccelBatch[0] >= a.AccelBatch[0] {
		t.Fatalf("straggler share should shrink: %v", out.AccelBatch)
	}
	if out.AccelBatch[1] <= a.AccelBatch[1] {
		t.Fatalf("fast device share should grow: %v", out.AccelBatch)
	}
	if out.TotalBatch() != a.TotalBatch() {
		t.Fatal("total batch not conserved")
	}
}

// Without per-device data (legacy producers) Adjust must behave exactly as
// the aggregate algorithm — no intra-fleet move is possible.
func TestBalanceAccelsNeedsPerDeviceData(t *testing.T) {
	e := New(128)
	a := baseAssign()
	st := perfmodel.StageTimes{SampCPU: 1, Load: 1, Trans: 1, TrainCPU: 1, TrainAcc: 1}
	out := e.Adjust(0, st, a)
	for i := range out.AccelBatch {
		if out.AccelBatch[i] != a.AccelBatch[i] {
			t.Fatalf("shares moved without per-device data: %v", out.AccelBatch)
		}
	}
}

// Regression: on a mixed GPU+FPGA fleet started from a naive uniform split,
// iterating DRM against the analytic per-device stages must narrow the
// max/min per-device stage-time ratio into the hysteresis band.
func TestDRMConvergesUnequalDevices(t *testing.T) {
	plat, err := hw.HeteroPlatform(hw.GPU, hw.GPU, hw.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	a := perfmodel.Assignment{
		CPUBatch:    0,
		AccelBatch:  []int{1024, 1024, 1024}, // uniform across unequal devices
		SampThreads: 43, LoadThreads: 43, TrainThreads: 42,
	}
	ratio := func(a perfmodel.Assignment) float64 {
		per := m.AccelStages(a)
		lo, hi := math.Inf(1), 0.0
		for _, d := range per {
			if d.Busy() <= 0 {
				continue
			}
			lo = math.Min(lo, d.Busy())
			hi = math.Max(hi, d.Busy())
		}
		return hi / lo
	}
	start := ratio(a)
	if start < 1.2 {
		t.Fatalf("test premise broken: uniform split already balanced (ratio %v)", start)
	}
	e := New(128)
	for i := 0; i < 60; i++ {
		a = e.Adjust(i, m.Stages(a), a)
	}
	end := ratio(a)
	if end >= start {
		t.Fatalf("DRM did not narrow the device imbalance: %v -> %v", start, end)
	}
	// Converged into (or near) the hysteresis band.
	if end > 1+2*e.Tolerance {
		t.Fatalf("unequal-device stage times did not converge: ratio %v", end)
	}
	if a.TotalBatch() != 3*1024 {
		t.Fatalf("global batch not conserved: %d", a.TotalBatch())
	}
}

// End-to-end: running the simulator with the DRM engine must not be slower
// than the static mapping, and should help on every paper dataset
// (the Fig. 11 "Hybrid+DRM ≥ Hybrid(static)" ordering).
func TestDRMImprovesOverStatic(t *testing.T) {
	for _, spec := range datagen.PaperSpecs() {
		m, err := perfmodel.New(hw.CPUFPGAPlatform(), perfmodel.DefaultWorkload(spec, gnn.GCN))
		if err != nil {
			t.Fatal(err)
		}
		static, err := pipesim.Run(pipesim.Config{
			Model: m, Mode: pipesim.Mode{Hybrid: true}, Seed: 5, Iterations: 80})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(m.Plat.TotalCPUCores())
		eng.FusedPrefetch = true // pre-TFP pipeline: Load and Trans are one stage
		withDRM, err := pipesim.Run(pipesim.Config{
			Model: m, Mode: pipesim.Mode{Hybrid: true, DRM: true},
			Ctrl: eng, Seed: 5, Iterations: 80})
		if err != nil {
			t.Fatal(err)
		}
		if withDRM.EpochSec > static.EpochSec*1.02 {
			t.Errorf("%s: DRM %.4fs worse than static %.4fs",
				spec.Name, withDRM.EpochSec, static.EpochSec)
		}
	}
}

// The DRM engine must absorb a mis-calibrated initial mapping: start with
// everything on the accelerators and verify it converges toward the
// balanced optimum.
func TestDRMRecoversFromBadMapping(t *testing.T) {
	m, err := perfmodel.New(hw.CPUFPGAPlatform(), perfmodel.DefaultWorkload(datagen.MAG240MHomo, gnn.GCN))
	if err != nil {
		t.Fatal(err)
	}
	bad := perfmodel.Assignment{
		CPUBatch:    64,
		AccelBatch:  []int{1008, 1008, 1008, 1008},
		SampThreads: 43, LoadThreads: 43, TrainThreads: 42,
	}
	e := New(128)
	a := bad.Clone()
	for i := 0; i < 100; i++ {
		a = e.Adjust(i, m.Stages(a), a)
	}
	good := m.InitialAssignment(true)
	tuned := m.IterTime(a)
	optimal := m.IterTime(good)
	naive := m.IterTime(bad)
	if tuned > naive {
		t.Fatalf("DRM made things worse: %v > %v", tuned, naive)
	}
	if tuned > optimal*1.25 {
		t.Fatalf("DRM stuck far from optimum: tuned %v, optimal %v", tuned, optimal)
	}
}
