package perfmodel

import "repro/internal/hw"

// Inter-node network primitives for the multi-node extension (paper §VIII
// future work). They price the two communication patterns distributed GNN
// training pays — remote feature fetches across the partition edge cut and
// the global gradient all-reduce — in the same analytic style as the
// intra-node equations (§V). Both the analytic cluster model
// (internal/cluster.EpochTime) and the executing multi-node coordinator
// (internal/cluster.MultiNode) charge network time through these functions,
// which is what makes the two comparable.

// RingAllReduceSec returns the time for a ring all-reduce of `bytes` payload
// across n nodes over the given link: 2·(n−1) steps, each moving a 1/n chunk
// and paying the link's setup latency. For n ≤ 1 there is nothing to reduce.
func RingAllReduceSec(link hw.Link, bytes float64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	chunk := bytes / float64(n)
	return float64(2*(n-1)) * link.TransferSec(chunk)
}

// RemoteFetchSec returns the time to pull `rows` remote feature rows of
// width featDim over the link. bytesPerFeat is the wire size of one feature
// element (≤ 0 defaults to 4, float32 — the paper's Sfeat).
func RemoteFetchSec(link hw.Link, rows float64, featDim int, bytesPerFeat float64) float64 {
	if rows <= 0 || featDim <= 0 {
		return 0
	}
	if bytesPerFeat <= 0 {
		bytesPerFeat = 4
	}
	return link.TransferSec(rows * float64(featDim) * bytesPerFeat)
}
