// Package perfmodel implements the paper's analytic performance model (§V,
// Eqs. 5–13). It predicts per-stage times for a workload on a platform,
// derives the compile-time ("design phase") task mapping the runtime starts
// from, and evaluates scalability (paper Fig. 9) without executing anything.
//
// The model deliberately excludes kernel-launch overhead and pipeline
// flushing — the two error sources §VI-C identifies — which the pipeline
// simulator (internal/pipesim) does charge; their difference reproduces the
// 5–14% prediction error of Fig. 8.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/sampler"
)

// Workload fixes the algorithmic parameters of a training run.
type Workload struct {
	Spec      datagen.Spec
	Model     gnn.Kind
	BatchSize int   // mini-batch size per trainer before re-balancing (paper: 1024)
	Fanouts   []int // neighbor-sampling sizes (paper: 25, 10)
	// TransferBytesPerFeat is the wire size of one feature element on the
	// PCIe link: 4 (float32, the paper's Sfeat — the default when zero),
	// 2 (fp16) or 1 (int8 quantization, the paper's §VIII extension).
	// Storage and compute stay float32; only the link payload shrinks.
	TransferBytesPerFeat float64
}

// DefaultWorkload returns the paper's standard configuration for a dataset.
func DefaultWorkload(spec datagen.Spec, model gnn.Kind) Workload {
	return Workload{Spec: spec, Model: model, BatchSize: 1024, Fanouts: []int{25, 10}}
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.BatchSize <= 0 {
		return fmt.Errorf("perfmodel: batch size %d", w.BatchSize)
	}
	if len(w.Fanouts) != w.Spec.Layers() {
		return fmt.Errorf("perfmodel: %d fanouts for %d layers", len(w.Fanouts), w.Spec.Layers())
	}
	return nil
}

// Sizes holds the expected sampled-set sizes per mini-batch target count.
// Index 0 is the input-most layer; VL[L] is the target count.
type Sizes struct {
	VL []float64 // len L+1
	EL []float64 // len L
}

// SizesFor returns expected |V_l|, |E_l| for a mini-batch with `batch`
// targets (sampler expectation model, DESIGN.md §2).
func (w Workload) SizesFor(batch int) Sizes {
	avgDeg := float64(w.Spec.NumEdges) / float64(w.Spec.NumVertices)
	vl, el := sampler.ExpectedSizes(float64(w.Spec.NumVertices), avgDeg, batch, w.Fanouts)
	return Sizes{VL: vl, EL: el}
}

// EdgesPerBatch returns Σ_l E[|E_l|] for a batch (MTEPS numerator, Eq. 5).
func (w Workload) EdgesPerBatch(batch int) float64 {
	s := w.SizesFor(batch)
	var total float64
	for _, e := range s.EL {
		total += e
	}
	return total
}

// Assignment is a task mapping: per-device mini-batch shares and CPU thread
// allocation. It is what the DRM engine mutates at runtime.
type Assignment struct {
	CPUBatch     int   // targets trained on the CPU per iteration (0 = no hybrid)
	AccelBatch   []int // targets per accelerator
	SampThreads  int   // CPU threads running the Mini-batch Sampler
	LoadThreads  int   // CPU threads running the Feature Loader
	TrainThreads int   // CPU threads running the CPU Trainer
	// AccelSampleFrac is the fraction of each iteration's sampling work
	// performed by the accelerators' own samplers (0 = all on CPU). The DRM
	// engine's balance_work(T_SC, T_SA) moves this knob.
	AccelSampleFrac float64
}

// TotalBatch returns the global mini-batch size per iteration.
func (a Assignment) TotalBatch() int {
	t := a.CPUBatch
	for _, b := range a.AccelBatch {
		t += b
	}
	return t
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := a
	out.AccelBatch = append([]int(nil), a.AccelBatch...)
	return out
}

// CloneInto deep-copies the assignment into dst, reusing dst's AccelBatch
// backing when it is large enough — the allocation-free variant for hot
// paths that re-snapshot every iteration (the pipelined epoch loop).
func (a Assignment) CloneInto(dst *Assignment) {
	acc := dst.AccelBatch
	*dst = a
	if cap(acc) < len(a.AccelBatch) {
		acc = make([]int, len(a.AccelBatch))
	}
	acc = acc[:len(a.AccelBatch)]
	copy(acc, a.AccelBatch)
	dst.AccelBatch = acc
}

// DeviceStage is one accelerator's share of an iteration: its private-link
// transfer time and its propagation time. The per-device vector is what lets
// the DRM engine move work between *unequal* devices — the aggregated maxima
// in StageTimes cannot say which device is the straggler.
type DeviceStage struct {
	Trans float64
	Train float64
}

// Busy returns the device's per-iteration pipeline constraint: transfer and
// propagation overlap across iterations, so the device sustains whichever is
// slower.
func (d DeviceStage) Busy() float64 { return math.Max(d.Trans, d.Train) }

// StageTimes are per-iteration durations of the pipeline stages (paper
// Fig. 4/5 and Algorithm 1 inputs). Zero means the stage is absent.
type StageTimes struct {
	SampCPU   float64 // T_SC
	SampAccel float64 // T_SA
	Load      float64 // T_Load
	Trans     float64 // T_Tran (max over accelerators; links are parallel)
	TrainCPU  float64 // T_TC
	TrainAcc  float64 // T_TA (max over accelerators)
	Sync      float64 // gradient all-reduce (part of propagation stage, Eq. 9)

	// PerAccel resolves Trans/TrainAcc per device (PerAccel[i].Trans etc.);
	// the aggregates above remain the maxima. Empty when the producer
	// predates the per-device API or the fleet is empty.
	PerAccel []DeviceStage

	// Multi-node charges (zero on a single node). NetFetch is the remote
	// feature traffic over the node's NIC, overlapped with the local pipeline
	// as its own stage (the DistDGL-style prefetch); NetSync is the inter-node
	// gradient all-reduce, serial after the local sync.
	NetFetch float64
	NetSync  float64
}

// Scaled returns the stage vector with every scalar stage multiplied by
// factor — the scripted-straggler inflation of the fault subsystem. Factor 1
// returns the receiver unchanged (bit-exact: no arithmetic runs). PerAccel
// keeps pointing at the original per-device rows; the aggregate fields are
// what the serving clock and ServingServiceSec consume.
func (s StageTimes) Scaled(factor float64) StageTimes {
	if factor == 1 {
		return s
	}
	s.SampCPU *= factor
	s.SampAccel *= factor
	s.Load *= factor
	s.Trans *= factor
	s.TrainCPU *= factor
	s.TrainAcc *= factor
	s.Sync *= factor
	s.NetFetch *= factor
	s.NetSync *= factor
	return s
}

// Bottleneck returns the largest pipelined-stage time (Eq. 6), bundling
// Trans with TrainAcc the way Algorithm 1 line 1 does (T_Accel). Remote
// feature fetching overlaps the local pipeline (it is one more stage in the
// max), while the inter-node all-reduce is serial on top.
func (s StageTimes) Bottleneck() float64 {
	local := math.Max(math.Max(s.SampCPU, s.SampAccel),
		math.Max(s.Load, math.Max(s.Trans, math.Max(s.TrainCPU, s.TrainAcc+s.Sync))))
	return math.Max(local, s.NetFetch) + s.NetSync
}

// SoftwareProfile captures stack-dependent efficiencies that the paper's
// hardware-level equations do not see. The paper's CPU-GPU design and its
// PyG baseline are implemented in Python/PyTorch (§VI-A): their Feature
// Loader is a torch gather running at a few GB/s regardless of thread
// count, and the baseline's sampler runs in Python dataloader workers. The
// CPU-FPGA design uses native threads and is modeled by the zero value.
type SoftwareProfile struct {
	// LoaderGBs, when positive, replaces the native threaded-DRAM-gather
	// model for Feature Loading with a fixed-bandwidth (thread-independent)
	// loader, as a torch/Python gather behaves.
	LoaderGBs float64
	// SampleCostFactor multiplies CPU sampling cost (≥1; 0 means 1).
	SampleCostFactor float64
}

// NativeProfile is the CPU-FPGA design's native (Pthreads/OpenMP) stack.
func NativeProfile() SoftwareProfile { return SoftwareProfile{} }

// TorchProfile is the stack of the paper's CPU-GPU design: native sampling
// pipeline but torch-based feature gathering.
func TorchProfile() SoftwareProfile { return SoftwareProfile{LoaderGBs: 6} }

// PyGBaselineProfile is the stack of the multi-GPU PyG baseline: Python
// dataloader sampling and torch feature collation.
func PyGBaselineProfile() SoftwareProfile {
	return SoftwareProfile{LoaderGBs: 6, SampleCostFactor: 1.5}
}

// Model evaluates the analytic equations for one platform + workload.
type Model struct {
	Plat    hw.Platform
	Work    Workload
	Profile SoftwareProfile
}

// New constructs a model after validating inputs.
func New(plat hw.Platform, work Workload) (*Model, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := work.Validate(); err != nil {
		return nil, err
	}
	return &Model{Plat: plat, Work: work}, nil
}

// sampleNsPerEdge is the measured per-edge cost of the neighbor sampler on
// one CPU thread (the paper profiles sampling rather than modeling it; this
// constant plays the role of that profile table).
const sampleNsPerEdge = 80.0

// accelSampleNsPerEdge is the per-edge sampling cost on an accelerator
// (random access into the topology resident in device memory).
const accelSampleNsPerEdge = 60.0

// loadSaturationThreads is the number of CPU threads needed to saturate the
// DRAM gather bandwidth during feature loading.
const loadSaturationThreads = 32

// loaderDRAMShare is the fraction of aggregate CPU DRAM bandwidth the
// Feature Loader can claim: it shares the memory controllers with the
// concurrently-running sampler and CPU trainer. This contention is what
// saturates scaling past ~12 accelerators in the paper's Fig. 9 (§VI-D:
// "the limiting factor of scalability is the CPU memory bandwidth").
const loaderDRAMShare = 0.30

// SamplingTime returns T_SC for sampling `batches` mini-batches of the given
// total target count on `threads` CPU threads.
func (m *Model) SamplingTimeCPU(totalTargets int, threads int) float64 {
	if totalTargets == 0 || threads <= 0 {
		return 0
	}
	edges := m.Work.EdgesPerBatch(totalTargets)
	return m.SampleTimeCPUEdges(edges, threads)
}

// SampleTimeCPUEdges is the CPU sampling cost for an explicit edge count.
func (m *Model) SampleTimeCPUEdges(edges float64, threads int) float64 {
	if edges <= 0 || threads <= 0 {
		return 0
	}
	factor := m.Profile.SampleCostFactor
	if factor < 1 {
		factor = 1
	}
	return edges * sampleNsPerEdge * factor * 1e-9 / float64(threads)
}

// SampleTimeAccelEdges is the accelerator sampling cost for an explicit
// edge count.
func (m *Model) SampleTimeAccelEdges(edges float64) float64 {
	if edges <= 0 {
		return 0
	}
	return edges * accelSampleNsPerEdge * 1e-9
}

// SamplingTimeAccel returns T_SA for one accelerator sampling its own batch.
func (m *Model) SamplingTimeAccel(batch int) float64 {
	if batch == 0 {
		return 0
	}
	return m.Work.EdgesPerBatch(batch) * accelSampleNsPerEdge * 1e-9
}

// LoadTime returns T_Load (Eq. 7): the Feature Loader gathers Σ_i |V0_i|
// feature rows from CPU DRAM. Achieved bandwidth scales with thread count up
// to saturation. Rows bound for devices driven by a framework loader
// (Device.LoaderGBs) go through that stack instead; see LoadTimeForDeviceRows.
//
// The CPU trainer reads features in place; no explicit load stage is needed
// for its share (it still costs gather bandwidth, charged in TrainCPU).
func (m *Model) LoadTime(a Assignment) float64 {
	rows := make([]float64, len(m.Plat.Accels))
	for i, b := range a.AccelBatch {
		if i >= len(rows) {
			break
		}
		if b > 0 {
			rows[i] = m.Work.SizesFor(b).VL[0]
		}
	}
	return m.LoadTimeForDeviceRows(rows, a.LoadThreads)
}

// LoadTimeForDeviceRows is Eq. 7 over explicit per-accelerator feature-row
// counts (rows[i] feeds Plat.Accels[i]). Two loader stacks exist: devices
// with LoaderGBs > 0 are fed by their host framework's gather — a single
// process whose work serializes across all such devices — while the rest go
// through the native threaded loader. The two stacks run concurrently, so
// the stage time is the max of the two. A Profile-level LoaderGBs overrides
// everything (the whole run is on that framework's stack).
func (m *Model) LoadTimeForDeviceRows(rows []float64, threads int) float64 {
	var total float64
	for _, r := range rows {
		total += r
	}
	if total <= 0 {
		return 0
	}
	if m.Profile.LoaderGBs > 0 {
		return m.LoadTimeForRows(total, threads)
	}
	bytesPerRow := float64(m.Work.Spec.FeatDims[0]) * 4
	var frameworkSec, nativeRows float64
	for i, r := range rows {
		if r <= 0 {
			continue
		}
		if i < len(m.Plat.Accels) && m.Plat.Accels[i].LoaderGBs > 0 {
			frameworkSec += r * bytesPerRow / (m.Plat.Accels[i].LoaderGBs * 1e9)
		} else {
			nativeRows += r
		}
	}
	return math.Max(frameworkSec, m.LoadTimeForRows(nativeRows, threads))
}

// LoadTimeForRows is Eq. 7 for an explicit feature-row count.
func (m *Model) LoadTimeForRows(rows float64, threads int) float64 {
	if rows <= 0 {
		return 0
	}
	bytes := rows * float64(m.Work.Spec.FeatDims[0]) * 4
	if m.Profile.LoaderGBs > 0 {
		// Torch-style gather: fixed bandwidth, insensitive to thread count.
		return bytes / (m.Profile.LoaderGBs * 1e9)
	}
	bw := m.Plat.CPUMemBWGBs() * loaderDRAMShare * 1e9
	scale := math.Min(1, float64(threads)/loadSaturationThreads)
	if scale <= 0 {
		return math.Inf(1)
	}
	return bytes / (bw * scale)
}

// TransferTime returns T_Tran (Eq. 8) for the busiest accelerator: feature
// sub-matrix plus mini-batch topology over each device's private link.
func (m *Model) TransferTime(a Assignment) float64 {
	var worst float64
	for i, b := range a.AccelBatch {
		if b == 0 {
			continue
		}
		t := m.TransferTimeDev(i, m.Work.SizesFor(b))
		if t > worst {
			worst = t
		}
	}
	return worst
}

// TransferTimeFor is Eq. 8 for explicit sampled-set sizes: the feature
// sub-matrix plus the mini-batch topology crossing the platform's default
// PCIe link. Use TransferTimeDev when the fleet carries per-device links.
func (m *Model) TransferTimeFor(s Sizes) float64 {
	return m.transferSec(m.Plat.PCIe, s)
}

// TransferTimeDev is Eq. 8 over accelerator i's own host link.
func (m *Model) TransferTimeDev(i int, s Sizes) float64 {
	return m.transferSec(m.Plat.AccelLink(i), s)
}

func (m *Model) transferSec(link hw.Link, s Sizes) float64 {
	sfeat := m.Work.TransferBytesPerFeat
	if sfeat <= 0 {
		sfeat = 4
	}
	bytes := s.VL[0] * float64(m.Work.Spec.FeatDims[0]) * sfeat
	if sfeat < 4 {
		bytes += s.VL[0] * 4 // per-row quantization scales ride along
	}
	for _, e := range s.EL {
		bytes += e * 8 // topology: (src,dst) int32 pairs
	}
	return link.TransferSec(bytes)
}

// propTime returns forward+backward time on a device for a batch (Eq. 10),
// using Eq. 11 for aggregation (traffic/bandwidth) and Eq. 12 for update
// (MACs/compute rate). For pipelined devices ⊕ = max, else ⊕ = Σ.
// cpuShare scales CPU resources when only a fraction of cores train.
func (m *Model) propTime(dev hw.Device, batch int, cpuShare float64) float64 {
	if batch == 0 {
		return 0
	}
	return m.PropTimeFor(dev, m.Work.SizesFor(batch), cpuShare)
}

// cpuTrainerBackendEff is the fraction of the CPU's (already derated)
// compute and bandwidth the CPU *trainer* achieves. The trainer runs a
// software GNN stack (libtorch/MKL in the paper's implementation) whose
// GNN-sized GEMMs and scattered aggregations fall well short of platform
// peak. Calibrated so the hybrid-over-accelerator-only gain lands in the
// paper's ablation band (Fig. 11: hybrid static ≤ 1.13×): the CPU
// contributes a modest slice, not half the fleet.
const cpuTrainerBackendEff = 0.30

// PropTimeFor is propTime over explicit sampled-set sizes — used by the
// runtime to charge virtual device time for the mini-batches it actually
// sampled rather than their expectation.
func (m *Model) PropTimeFor(dev hw.Device, s Sizes, cpuShare float64) float64 {
	fwd, bwd := m.propFwdBwd(dev, s, cpuShare)
	return fwd + bwd
}

// PropForwardFor returns only the forward half of Eq. 10 — what the FPGA
// dataflow backend executes and measures for itself.
func (m *Model) PropForwardFor(dev hw.Device, s Sizes, cpuShare float64) float64 {
	fwd, _ := m.propFwdBwd(dev, s, cpuShare)
	return fwd
}

// PropBackwardFor returns only the backward half of Eq. 10. The executing
// runtime adds it to a measured forward time when the device backend reports
// its own forward cycles (the dataflow kernel models forward only).
func (m *Model) PropBackwardFor(dev hw.Device, s Sizes, cpuShare float64) float64 {
	_, bwd := m.propFwdBwd(dev, s, cpuShare)
	return bwd
}

func (m *Model) propFwdBwd(dev hw.Device, s Sizes, cpuShare float64) (float64, float64) {
	dims := m.Work.Spec.FeatDims
	L := m.Work.Spec.Layers()

	flops := dev.EffectiveTFLOPS() * 1e12
	gather := dev.GatherGBs() * 1e9
	stream := dev.StreamGBs() * 1e9
	if dev.Kind == hw.CPU {
		scale := float64(m.Plat.Sockets) * cpuShare * cpuTrainerBackendEff
		flops *= scale
		gather *= scale
		stream *= scale
	}

	aggT := func(l int) float64 { // layer l ∈ [0,L): aggregate over E_l with f_{l} inputs... Eq. 11
		if dev.Kind == hw.FPGA {
			// Sorted-edge reuse: each distinct source feature read once (§IV-C).
			return s.VL[l] * float64(dims[l]) * 4 / stream
		}
		return s.EL[l] * float64(dims[l]) * 4 / gather
	}
	updT := func(l int) float64 { // Eq. 12: |V_{l+1}| rows through f_in×f_out MLP
		fin := float64(dims[l])
		if m.Work.Model == gnn.SAGE {
			fin *= 2 // concatenation doubles the dense-update input
		}
		macs := s.VL[l+1] * fin * float64(dims[l+1])
		return macs * 2 / flops // 1 MAC = 2 FLOP
	}
	combine := func(a, u float64) float64 {
		if dev.Pipelined {
			return math.Max(a, u)
		}
		return a + u
	}
	var fwd, bwd float64
	for l := 0; l < L; l++ {
		fwd += combine(aggT(l), updT(l))
	}
	// Eq. 10 backward: t_update^1 + Σ_{l=2..L} ⊕(agg, upd); weight-gradient
	// GEMMs double the update cost.
	bwd = updT(0)
	for l := 1; l < L; l++ {
		bwd += combine(aggT(l), updT(l))
	}
	return fwd, bwd
}

// Per-batch overheads the executing runtime charges on top of the analytic
// Eq. 10 propagation time (the two error sources §VI-C identifies, plus the
// host-side framework cost). Exported so the runtime (internal/core) and the
// analytic serving model price them identically.
const (
	// FlushFraction is the pipeline-flush overhead of an accelerator batch.
	FlushFraction = 0.06
	// KernelsPerIteration is how many device kernels one batch launches.
	KernelsPerIteration = 4
	// RuntimeBarrierSec is the host-side synchronization barrier between
	// pipeline stages.
	RuntimeBarrierSec = 120e-6
)

// PropWithOverheads returns PropTimeFor plus the per-batch device overheads
// the executing runtime charges: framework overhead on every device, and
// pipeline flush + kernel launches on accelerators.
func (m *Model) PropWithOverheads(dev hw.Device, s Sizes, cpuShare float64) float64 {
	return DeviceOverheads(dev, m.PropTimeFor(dev, s, cpuShare))
}

// DeviceOverheads applies the per-batch runtime overheads to a raw
// propagation time t on dev: framework overhead on every device, pipeline
// flush + kernel launches on accelerators. Exported so a trainer backend
// that *measures* its propagation time (the FPGA dataflow kernel) charges
// the same overheads as the analytically priced devices.
func DeviceOverheads(dev hw.Device, t float64) float64 {
	if dev.Kind == hw.CPU {
		return t + dev.FrameworkOverheadMs*1e-3
	}
	return t*(1+FlushFraction) + dev.FrameworkOverheadMs*1e-3 +
		KernelsPerIteration*dev.KernelLaunchUs*1e-6
}

// TrainTimeCPU returns T_TC for the CPU trainer under the assignment.
func (m *Model) TrainTimeCPU(a Assignment) float64 {
	if a.CPUBatch == 0 || a.TrainThreads == 0 {
		return 0
	}
	share := float64(a.TrainThreads) / float64(m.Plat.TotalCPUCores())
	return m.propTime(m.Plat.CPU, a.CPUBatch, share)
}

// TrainTimeAccel returns T_TA for the busiest accelerator.
func (m *Model) TrainTimeAccel(a Assignment) float64 {
	var worst float64
	for i, b := range a.AccelBatch {
		if i >= len(m.Plat.Accels) {
			break
		}
		t := m.propTime(m.Plat.Accels[i], b, 1)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// SyncTime returns T_sync (Eq. 13): the model crosses the host link twice.
// Every device must receive the averaged gradient, so a mixed fleet is gated
// by its slowest link.
func (m *Model) SyncTime() float64 {
	dims := m.Work.Spec.FeatDims
	var params float64
	for l := 0; l < m.Work.Spec.Layers(); l++ {
		fin := float64(dims[l])
		if m.Work.Model == gnn.SAGE {
			fin *= 2
		}
		params += fin*float64(dims[l+1]) + float64(dims[l+1])
	}
	bw := m.Plat.PCIe.EffGBs()
	for i := range m.Plat.Accels {
		if l := m.Plat.AccelLink(i).EffGBs(); l < bw {
			bw = l
		}
	}
	return 2 * params * 4 / (bw * 1e9)
}

// AccelStages evaluates Eq. 8 and Eq. 10 per accelerator for an assignment:
// device i's own-link transfer time and propagation time for its share.
func (m *Model) AccelStages(a Assignment) []DeviceStage {
	if len(m.Plat.Accels) == 0 {
		return nil
	}
	out := make([]DeviceStage, len(m.Plat.Accels))
	for i, b := range a.AccelBatch {
		if i >= len(out) || b <= 0 {
			continue
		}
		s := m.Work.SizesFor(b)
		out[i] = DeviceStage{
			Trans: m.TransferTimeDev(i, s),
			Train: m.propTime(m.Plat.Accels[i], b, 1),
		}
	}
	return out
}

// Stages evaluates all stage times for an assignment.
func (m *Model) Stages(a Assignment) StageTimes {
	st := StageTimes{
		Load:     m.LoadTime(a),
		Trans:    m.TransferTime(a),
		TrainCPU: m.TrainTimeCPU(a),
		TrainAcc: m.TrainTimeAccel(a),
		Sync:     m.SyncTime(),
		PerAccel: m.AccelStages(a),
	}
	total := a.TotalBatch()
	frac := a.AccelSampleFrac
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	nAcc := len(m.Plat.Accels)
	if nAcc == 0 {
		frac = 0
	}
	cpuTargets := int(float64(total) * (1 - frac))
	st.SampCPU = m.SamplingTimeCPU(cpuTargets, a.SampThreads)
	if frac > 0 {
		perAccel := (total - cpuTargets + nAcc - 1) / nAcc
		st.SampAccel = m.SamplingTimeAccel(perAccel)
	}
	return st
}

// IterTime returns the predicted steady-state iteration time (Eq. 6):
// the pipeline is limited by its slowest stage.
func (m *Model) IterTime(a Assignment) float64 {
	return m.Stages(a).Bottleneck()
}

// Iterations returns the number of training iterations per epoch.
func (m *Model) Iterations(a Assignment) int {
	total := a.TotalBatch()
	if total == 0 {
		return 0
	}
	return int(math.Ceil(float64(m.Work.Spec.TrainNodes) / float64(total)))
}

// EpochTime predicts one epoch (Eq. 6 × iterations).
func (m *Model) EpochTime(a Assignment) float64 {
	return float64(m.Iterations(a)) * m.IterTime(a)
}

// ThroughputMTEPS returns Eq. 5: million traversed edges per second.
func (m *Model) ThroughputMTEPS(a Assignment) float64 {
	var edges float64
	if a.CPUBatch > 0 {
		edges += m.Work.EdgesPerBatch(a.CPUBatch)
	}
	for _, b := range a.AccelBatch {
		if b > 0 {
			edges += m.Work.EdgesPerBatch(b)
		}
	}
	t := m.IterTime(a)
	if t == 0 {
		return 0
	}
	return edges / t / 1e6
}

// DeviceRate returns accelerator i's predicted sustainable training rate in
// targets/second: its per-iteration pipeline constraint is whichever is
// slower of propagation (Eq. 10) and its own-link transfer (Eq. 8),
// evaluated at the workload's reference batch. This is Eqs. 5–13 applied to
// each device individually — the basis of the heterogeneous design-phase
// mapping.
func (m *Model) DeviceRate(i int) float64 {
	b := m.Work.BatchSize
	t := math.Max(m.propTime(m.Plat.Accels[i], b, 1),
		m.TransferTimeDev(i, m.Work.SizesFor(b)))
	if t <= 0 {
		return 0
	}
	return float64(b) / t
}

// Apportion splits total into len(weights) integer shares proportional to
// the weights (largest-remainder rounding, ties to the first index; uniform
// when all weights are zero). The shares always sum to total; weights is
// never modified. Shared by the design-phase mapping and the DRM engine's
// heterogeneous work moves.
func Apportion(total int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	var sum float64
	for _, w := range weights {
		sum += math.Max(0, w)
	}
	weight := func(i int) float64 {
		if sum <= 0 {
			return 1 // all-zero weights: uniform split
		}
		return math.Max(0, weights[i])
	}
	denom := sum
	if denom <= 0 {
		denom = float64(n)
	}
	assigned := 0
	fracs := make([]float64, n)
	for i := range out {
		exact := float64(total) * weight(i) / denom
		out[i] = int(exact)
		fracs[i] = exact - float64(out[i])
		assigned += out[i]
	}
	for rem := total - assigned; rem > 0; rem-- {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		out[best]++
		fracs[best] = -1
	}
	return out
}

// InitialAssignment performs the design-phase coarse task mapping (§IV-A):
// it keeps the global batch at BatchSize × #accelerators (so convergence
// matches the accelerator-only baseline) and scans the CPU share, picking
// the split with the lowest predicted iteration time. The accelerator share
// is split proportionally to each device's predicted throughput
// (DeviceRate), so unequal devices start near their equilibrium instead of
// all inheriting the busiest clone's share. CPU threads start with a fixed
// sampler/loader/trainer split of the available cores.
func (m *Model) InitialAssignment(hybrid bool) Assignment {
	nAcc := len(m.Plat.Accels)
	cores := m.Plat.TotalCPUCores()
	a := Assignment{
		AccelBatch:   make([]int, nAcc),
		SampThreads:  cores / 4,
		LoadThreads:  cores / 4,
		TrainThreads: cores / 2,
	}
	total := m.Work.BatchSize * max(nAcc, 1)
	if nAcc == 0 {
		a.CPUBatch = total
		return a
	}
	rates := make([]float64, nAcc)
	for i := range rates {
		rates[i] = m.DeviceRate(i)
	}
	// The design-phase mapping is deliberately coarse (the paper: "derive a
	// coarse-grained task mapping ... during the design phase"); the DRM
	// engine owns fine-tuning at runtime. The scan covers the CPU workload
	// share in 20% steps and the CPU thread split among sampler / loader /
	// trainer in quarter-of-cores steps.
	cpuPcts := []int{0, 20, 40, 60}
	if !hybrid {
		cpuPcts = []int{0}
	}
	quarter := cores / 4
	threadSplits := [][2]int{}
	for _, st := range []int{quarter, 2 * quarter, 3 * quarter} {
		for _, lt := range []int{quarter, 2 * quarter, 3 * quarter} {
			if st+lt < cores {
				threadSplits = append(threadSplits, [2]int{st, lt})
			}
		}
	}
	best := a.Clone()
	bestT := math.Inf(1)
	for _, cpuPct := range cpuPcts {
		for _, ts := range threadSplits {
			cand := a.Clone()
			cand.SampThreads = ts[0]
			cand.LoadThreads = ts[1]
			cand.TrainThreads = cores - ts[0] - ts[1]
			if !hybrid {
				cand.TrainThreads = 0
			}
			cand.CPUBatch = total * cpuPct / 100
			cand.AccelBatch = Apportion(total-cand.CPUBatch, rates)
			t := m.IterTime(cand)
			if t < bestT {
				bestT = t
				best = cand
			}
		}
	}
	return best
}
