package perfmodel

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
)

func servingModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(hw.CPUFPGAPlatform(), DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictServingValidation(t *testing.T) {
	m := servingModel(t)
	base := ServingLoad{RatePerSec: 1000, MaxBatch: 32, WindowSec: 1e-3, Workers: 2, ComputeFrac: 1, Accel: true}
	for name, mutate := range map[string]func(*ServingLoad){
		"rate":    func(l *ServingLoad) { l.RatePerSec = 0 },
		"batch":   func(l *ServingLoad) { l.MaxBatch = 0 },
		"window":  func(l *ServingLoad) { l.WindowSec = -1 },
		"workers": func(l *ServingLoad) { l.Workers = 0 },
		"frac":    func(l *ServingLoad) { l.ComputeFrac = 1.5 },
	} {
		l := base
		mutate(&l)
		if _, err := m.PredictServing(l); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	cpuOnly, err := New(hw.CPUFPGAPlatform().WithAccelCount(0), DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpuOnly.PredictServing(base); err == nil {
		t.Fatal("accelerator serving on an accelerator-less platform must error")
	}
}

func TestPredictServingBatchFormation(t *testing.T) {
	m := servingModel(t)
	// Window-closed: λ·w = 1000 · 1ms = 1 → batch ≈ 2, far below the cap.
	p, err := m.PredictServing(ServingLoad{RatePerSec: 1000, MaxBatch: 64, WindowSec: 1e-3,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 2 {
		t.Fatalf("window-closed batch %v, want 2", p.BatchSize)
	}
	// Size-closed: λ·w ≫ B.
	p, err = m.PredictServing(ServingLoad{RatePerSec: 1e6, MaxBatch: 64, WindowSec: 1e-3,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 64 {
		t.Fatalf("size-closed batch %v, want 64", p.BatchSize)
	}
	if p.BatchWaitSec >= 1e-3 {
		t.Fatalf("size-closed wait %v should undercut the window", p.BatchWaitSec)
	}
}

func TestPredictServingMonotonicity(t *testing.T) {
	m := servingModel(t)
	at := func(window float64, frac float64) ServingPrediction {
		p, err := m.PredictServing(ServingLoad{RatePerSec: 2000, MaxBatch: 256, WindowSec: window,
			Workers: 2, ComputeFrac: frac, Accel: true})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Wider window → bigger batches → more capacity, higher batch wait.
	narrow, wide := at(0.5e-3, 1), at(8e-3, 1)
	if wide.BatchSize <= narrow.BatchSize || wide.CapacityRPS <= narrow.CapacityRPS {
		t.Fatalf("capacity not monotone in window: %v vs %v", narrow.CapacityRPS, wide.CapacityRPS)
	}
	if wide.BatchWaitSec <= narrow.BatchWaitSec || wide.P50Sec <= narrow.P50Sec {
		t.Fatalf("latency not monotone in window")
	}
	// More cache hits → less compute per batch → cheaper service.
	cold, warm := at(2e-3, 1), at(2e-3, 0.25)
	if warm.ServiceSec >= cold.ServiceSec || warm.CapacityRPS <= cold.CapacityRPS {
		t.Fatalf("cache relief missing: service %v vs %v", warm.ServiceSec, cold.ServiceSec)
	}
	// Fully cached: no pipeline work at all.
	free := at(2e-3, 0)
	if free.Stage.SampCPU != 0 || free.Stage.TrainAcc != 0 {
		t.Fatalf("compute charged at 100%% hit rate: %+v", free.Stage)
	}
}

func TestPredictServingOverloadDiverges(t *testing.T) {
	m := servingModel(t)
	p, err := m.PredictServing(ServingLoad{RatePerSec: 1e9, MaxBatch: 8, WindowSec: 0,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Utilization <= 1 {
		t.Fatalf("utilization %v at absurd load", p.Utilization)
	}
	if p.ThroughputRPS != p.CapacityRPS {
		t.Fatalf("overload throughput %v should cap at capacity %v", p.ThroughputRPS, p.CapacityRPS)
	}
}
