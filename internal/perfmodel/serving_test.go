package perfmodel

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
)

func servingModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(hw.CPUFPGAPlatform(), DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictServingValidation(t *testing.T) {
	m := servingModel(t)
	base := ServingLoad{RatePerSec: 1000, MaxBatch: 32, WindowSec: 1e-3, Workers: 2, ComputeFrac: 1, Accel: true}
	for name, mutate := range map[string]func(*ServingLoad){
		"rate":    func(l *ServingLoad) { l.RatePerSec = 0 },
		"batch":   func(l *ServingLoad) { l.MaxBatch = 0 },
		"window":  func(l *ServingLoad) { l.WindowSec = -1 },
		"workers": func(l *ServingLoad) { l.Workers = 0 },
		"frac":    func(l *ServingLoad) { l.ComputeFrac = 1.5 },
	} {
		l := base
		mutate(&l)
		if _, err := m.PredictServing(l); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	cpuOnly, err := New(hw.CPUFPGAPlatform().WithAccelCount(0), DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpuOnly.PredictServing(base); err == nil {
		t.Fatal("accelerator serving on an accelerator-less platform must error")
	}
}

func TestPredictServingBatchFormation(t *testing.T) {
	m := servingModel(t)
	// Window-closed: λ·w = 1000 · 1ms = 1 → batch ≈ 2, far below the cap.
	p, err := m.PredictServing(ServingLoad{RatePerSec: 1000, MaxBatch: 64, WindowSec: 1e-3,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 2 {
		t.Fatalf("window-closed batch %v, want 2", p.BatchSize)
	}
	// Size-closed: λ·w ≫ B.
	p, err = m.PredictServing(ServingLoad{RatePerSec: 1e6, MaxBatch: 64, WindowSec: 1e-3,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 64 {
		t.Fatalf("size-closed batch %v, want 64", p.BatchSize)
	}
	if p.BatchWaitSec >= 1e-3 {
		t.Fatalf("size-closed wait %v should undercut the window", p.BatchWaitSec)
	}
}

func TestPredictServingMonotonicity(t *testing.T) {
	m := servingModel(t)
	at := func(window float64, frac float64) ServingPrediction {
		p, err := m.PredictServing(ServingLoad{RatePerSec: 2000, MaxBatch: 256, WindowSec: window,
			Workers: 2, ComputeFrac: frac, Accel: true})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Wider window → bigger batches → more capacity, higher batch wait.
	narrow, wide := at(0.5e-3, 1), at(8e-3, 1)
	if wide.BatchSize <= narrow.BatchSize || wide.CapacityRPS <= narrow.CapacityRPS {
		t.Fatalf("capacity not monotone in window: %v vs %v", narrow.CapacityRPS, wide.CapacityRPS)
	}
	if wide.BatchWaitSec <= narrow.BatchWaitSec || wide.P50Sec <= narrow.P50Sec {
		t.Fatalf("latency not monotone in window")
	}
	// More cache hits → less compute per batch → cheaper service.
	cold, warm := at(2e-3, 1), at(2e-3, 0.25)
	if warm.ServiceSec >= cold.ServiceSec || warm.CapacityRPS <= cold.CapacityRPS {
		t.Fatalf("cache relief missing: service %v vs %v", warm.ServiceSec, cold.ServiceSec)
	}
	// Fully cached: no pipeline work at all.
	free := at(2e-3, 0)
	if free.Stage.SampCPU != 0 || free.Stage.TrainAcc != 0 {
		t.Fatalf("compute charged at 100%% hit rate: %+v", free.Stage)
	}
}

// Explicit device bindings must reproduce the legacy Workers+Accel mapping
// exactly on a homogeneous fleet — the analytic half of the routing
// refactor's regression guard.
func TestPredictServingDevicesMatchLegacy(t *testing.T) {
	m := servingModel(t)
	legacy := ServingLoad{RatePerSec: 2000, MaxBatch: 64, WindowSec: 1e-3,
		Workers: 2, ComputeFrac: 0.8, Accel: true}
	bound := legacy
	bound.Devices = []int{1, 2}
	a, err := m.PredictServing(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PredictServing(bound)
	if err != nil {
		t.Fatal(err)
	}
	if a.ServiceSec != b.ServiceSec || a.CapacityRPS != b.CapacityRPS || a.P99Sec != b.P99Sec {
		t.Fatalf("explicit bindings diverge from legacy mapping:\n%+v\n%+v", a, b)
	}
	if len(a.PerDevice) != 2 || a.PerDevice[0].ServiceSec != a.PerDevice[1].ServiceSec {
		t.Fatalf("homogeneous per-device vectors differ: %+v", a.PerDevice)
	}
}

// A mixed pool's prediction must resolve per device: the CPU peer carries
// TrainCPU and no transfer, accelerators carry their own links and kinds,
// pool capacity is the per-device sum, and the pool service time sits
// between the fastest and slowest member.
func TestPredictServingMixedPool(t *testing.T) {
	plat, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(plat, DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.PredictServing(ServingLoad{RatePerSec: 2000, MaxBatch: 32, WindowSec: 1e-3,
		ComputeFrac: 1, Devices: []int{1, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PerDevice) != 3 {
		t.Fatalf("expected 3 per-device vectors, got %d", len(p.PerDevice))
	}
	gpu, fpga, cpu := p.PerDevice[0], p.PerDevice[1], p.PerDevice[2]
	if cpu.Stage.TrainCPU <= 0 || cpu.Stage.Trans != 0 || cpu.Stage.TrainAcc != 0 {
		t.Fatalf("CPU peer stage malformed: %+v", cpu.Stage)
	}
	if gpu.Stage.TrainAcc <= 0 || gpu.Stage.Trans <= 0 {
		t.Fatalf("GPU stage malformed: %+v", gpu.Stage)
	}
	if fpga.Stage.TrainAcc <= 0 || fpga.Stage.Trans <= 0 {
		t.Fatalf("FPGA stage malformed: %+v", fpga.Stage)
	}
	// The two accelerators are different hardware behind different links:
	// their stage vectors must not coincide.
	if gpu.ServiceSec == fpga.ServiceSec {
		t.Fatal("GPU and FPGA priced identically — per-device API not per-device")
	}
	var capSum float64
	lo, hi := p.PerDevice[0].ServiceSec, p.PerDevice[0].ServiceSec
	for _, d := range p.PerDevice {
		capSum += d.CapacityRPS
		lo = min(lo, d.ServiceSec)
		hi = max(hi, d.ServiceSec)
	}
	if d := capSum - p.CapacityRPS; d > 1e-9*capSum || d < -1e-9*capSum {
		t.Fatalf("pool capacity %v != per-device sum %v", p.CapacityRPS, capSum)
	}
	if p.ServiceSec < lo || p.ServiceSec > hi {
		t.Fatalf("pool service %v outside per-device range [%v, %v]", p.ServiceSec, lo, hi)
	}
}

// ServingBatchStage input validation and the empty-batch degenerate case.
func TestServingBatchStageValidation(t *testing.T) {
	m := servingModel(t)
	if _, err := m.ServingBatchStage(99, 8, 0, 0); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	if _, err := m.PredictServing(ServingLoad{RatePerSec: 1000, MaxBatch: 8,
		ComputeFrac: 1, Devices: []int{7}}); err == nil {
		t.Fatal("out-of-range binding accepted")
	}
	st, err := m.ServingBatchStage(1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampCPU != 0 || st.Load != 0 || st.Trans != 0 || st.TrainCPU != 0 || st.TrainAcc != 0 {
		t.Fatalf("zero-compute batch priced: %+v", st)
	}
}

func TestPredictServingOverloadDiverges(t *testing.T) {
	m := servingModel(t)
	p, err := m.PredictServing(ServingLoad{RatePerSec: 1e9, MaxBatch: 8, WindowSec: 0,
		Workers: 1, ComputeFrac: 1, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Utilization <= 1 {
		t.Fatalf("utilization %v at absurd load", p.Utilization)
	}
	if p.ThroughputRPS != p.CapacityRPS {
		t.Fatalf("overload throughput %v should cap at capacity %v", p.ThroughputRPS, p.CapacityRPS)
	}
}
