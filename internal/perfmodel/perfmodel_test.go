package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
)

func fpgaModel(t *testing.T, spec datagen.Spec, kind gnn.Kind) *Model {
	t.Helper()
	m, err := New(hw.CPUFPGAPlatform(), DefaultWorkload(spec, kind))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWorkloadValidate(t *testing.T) {
	w := DefaultWorkload(datagen.OGBNProducts, gnn.GCN)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	w.BatchSize = 0
	if w.Validate() == nil {
		t.Fatal("expected batch-size error")
	}
	w = DefaultWorkload(datagen.OGBNProducts, gnn.GCN)
	w.Fanouts = []int{25}
	if w.Validate() == nil {
		t.Fatal("expected fanout-count error")
	}
}

func TestNewValidatesPlatform(t *testing.T) {
	bad := hw.CPUFPGAPlatform()
	bad.Sockets = 0
	if _, err := New(bad, DefaultWorkload(datagen.OGBNProducts, gnn.GCN)); err == nil {
		t.Fatal("expected platform error")
	}
}

func TestSizesForPaperConfig(t *testing.T) {
	w := DefaultWorkload(datagen.OGBNPapers100M, gnn.GCN)
	s := w.SizesFor(1024)
	if s.VL[2] != 1024 {
		t.Fatalf("targets = %v", s.VL[2])
	}
	// papers100M avg degree ≈ 14.5 < 25, so the inner fanout caps at 14.5.
	if s.EL[1] != 10240 {
		t.Fatalf("E2 = %v, want 1024×10", s.EL[1])
	}
	avgDeg := float64(datagen.OGBNPapers100M.NumEdges) / float64(datagen.OGBNPapers100M.NumVertices)
	if math.Abs(s.EL[0]-s.VL[1]*avgDeg) > 1 {
		t.Fatalf("E1 = %v, want V1×avgDeg = %v", s.EL[0], s.VL[1]*avgDeg)
	}
}

func TestAssignmentTotalAndClone(t *testing.T) {
	a := Assignment{CPUBatch: 100, AccelBatch: []int{200, 300}}
	if a.TotalBatch() != 600 {
		t.Fatalf("TotalBatch = %d", a.TotalBatch())
	}
	c := a.Clone()
	c.AccelBatch[0] = 999
	if a.AccelBatch[0] != 200 {
		t.Fatal("Clone shares AccelBatch")
	}
}

func TestSamplingTimeScalesWithThreads(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNProducts, gnn.GCN)
	t1 := m.SamplingTimeCPU(4096, 1)
	t32 := m.SamplingTimeCPU(4096, 32)
	if math.Abs(t1/t32-32) > 1e-6 {
		t.Fatalf("sampling not linear in threads: %v / %v", t1, t32)
	}
	if m.SamplingTimeCPU(0, 8) != 0 || m.SamplingTimeCPU(100, 0) != 0 {
		t.Fatal("degenerate sampling times should be 0")
	}
	if m.SamplingTimeAccel(0) != 0 {
		t.Fatal("zero-batch accel sampling should be 0")
	}
	if m.SamplingTimeAccel(1024) <= 0 {
		t.Fatal("accel sampling time should be positive")
	}
}

func TestLoadTimeEq7(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	a := Assignment{AccelBatch: []int{1024}, LoadThreads: 32}
	got := m.LoadTime(a)
	// Eq. 7: |V0|·f0·4 / BW, with the loader's DRAM share as the bandwidth.
	rows := m.Work.SizesFor(1024).VL[0]
	want := rows * 128 * 4 / (m.Plat.CPUMemBWGBs() * 0.30 * 1e9)
	if math.Abs(got-want) > want*1e-9 {
		t.Fatalf("LoadTime = %v, want %v", got, want)
	}
	// Halving threads below saturation doubles time.
	a16 := a
	a16.LoadThreads = 16
	if math.Abs(m.LoadTime(a16)/got-2) > 1e-6 {
		t.Fatal("load time should scale inversely with threads below saturation")
	}
	// More threads than saturation: no further speedup.
	a64 := a
	a64.LoadThreads = 64
	if m.LoadTime(a64) != got {
		t.Fatal("load time should saturate")
	}
	// No accelerator work: no load stage.
	if m.LoadTime(Assignment{LoadThreads: 32}) != 0 {
		t.Fatal("load with no accel batch should be 0")
	}
}

func TestTransferTimeEq8(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	a := Assignment{AccelBatch: []int{512, 512, 512, 512}}
	single := Assignment{AccelBatch: []int{512}}
	// Links are private: 4 equal accelerators cost the same as 1.
	if math.Abs(m.TransferTime(a)-m.TransferTime(single)) > 1e-12 {
		t.Fatal("parallel PCIe links should not add up")
	}
	// Larger batch → strictly more transfer time.
	big := Assignment{AccelBatch: []int{1024}}
	if m.TransferTime(big) <= m.TransferTime(single) {
		t.Fatal("transfer time should grow with batch")
	}
	if m.TransferTime(Assignment{}) != 0 {
		t.Fatal("no accel → no transfer")
	}
}

func TestTrainTimePipeliningAdvantage(t *testing.T) {
	// The same batch on a hypothetical non-pipelined U250 must be slower
	// than the pipelined one (⊕ = max vs Σ, Eq. 10).
	plat := hw.CPUFPGAPlatform()
	m, _ := New(plat, DefaultWorkload(datagen.OGBNPapers100M, gnn.GCN))
	a := Assignment{AccelBatch: []int{1024}}
	piped := m.TrainTimeAccel(a)

	plat2 := hw.CPUFPGAPlatform()
	for i := range plat2.Accels {
		plat2.Accels[i].Pipelined = false
	}
	m2, _ := New(plat2, DefaultWorkload(datagen.OGBNPapers100M, gnn.GCN))
	seq := m2.TrainTimeAccel(a)
	if piped >= seq {
		t.Fatalf("pipelined %v should beat sequential %v", piped, seq)
	}
}

func TestTrainTimeCPUScalesWithThreads(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNProducts, gnn.GCN)
	a := Assignment{CPUBatch: 1024, TrainThreads: 64}
	t64 := m.TrainTimeCPU(a)
	a.TrainThreads = 32
	t32 := m.TrainTimeCPU(a)
	if math.Abs(t32/t64-2) > 1e-6 {
		t.Fatalf("CPU training should scale with threads: %v vs %v", t32, t64)
	}
	if m.TrainTimeCPU(Assignment{CPUBatch: 0, TrainThreads: 8}) != 0 {
		t.Fatal("no CPU batch → no CPU training time")
	}
}

func TestSAGECostsMoreThanGCN(t *testing.T) {
	// SAGE's concatenation doubles the dense-update input width (Eq. 12
	// with 2·f_in) — its propagation and sync must cost more.
	gcn := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	sage := fpgaModel(t, datagen.OGBNPapers100M, gnn.SAGE)
	a := Assignment{AccelBatch: []int{1024}}
	if sage.TrainTimeAccel(a) <= gcn.TrainTimeAccel(a) {
		t.Fatal("SAGE propagation should cost more than GCN")
	}
	if sage.SyncTime() <= gcn.SyncTime() {
		t.Fatal("SAGE sync should cost more than GCN (larger model)")
	}
}

func TestSyncTimeEq13(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNProducts, gnn.GCN)
	// GCN model: W1 100×256 + b 256, W2 256×47 + b 47.
	params := float64(100*256 + 256 + 256*47 + 47)
	want := 2 * params * 4 / (m.Plat.PCIe.EffGBs() * 1e9)
	if math.Abs(m.SyncTime()-want) > want*1e-12 {
		t.Fatalf("SyncTime = %v, want %v", m.SyncTime(), want)
	}
}

func TestIterationsAndEpoch(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNProducts, gnn.GCN)
	a := m.InitialAssignment(true)
	// 196,615 train nodes / 4096 global batch = 49 iterations.
	if got := m.Iterations(a); got != 49 {
		t.Fatalf("Iterations = %d, want 49", got)
	}
	if m.EpochTime(a) <= 0 {
		t.Fatal("epoch time must be positive")
	}
	if math.Abs(m.EpochTime(a)-float64(m.Iterations(a))*m.IterTime(a)) > 1e-12 {
		t.Fatal("EpochTime != Iterations × IterTime")
	}
	if m.Iterations(Assignment{}) != 0 {
		t.Fatal("empty assignment should have 0 iterations")
	}
}

func TestInitialAssignmentConservesBatch(t *testing.T) {
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
			m := fpgaModel(t, spec, kind)
			hybrid := m.InitialAssignment(true)
			baseline := m.InitialAssignment(false)
			if hybrid.TotalBatch() != 4096 || baseline.TotalBatch() != 4096 {
				t.Fatalf("%s/%v: batches %d/%d, want 4096",
					spec.Name, kind, hybrid.TotalBatch(), baseline.TotalBatch())
			}
			if baseline.CPUBatch != 0 {
				t.Fatal("non-hybrid assignment must not train on CPU")
			}
			// Hybrid must never predict worse than accelerator-only.
			if m.IterTime(hybrid) > m.IterTime(baseline)+1e-12 {
				t.Fatalf("%s/%v: hybrid %v slower than baseline %v",
					spec.Name, kind, m.IterTime(hybrid), m.IterTime(baseline))
			}
		}
	}
}

func TestInitialAssignmentCPUOnly(t *testing.T) {
	plat := hw.CPUFPGAPlatform()
	plat.Accels = nil
	m, err := New(plat, DefaultWorkload(datagen.OGBNProducts, gnn.GCN))
	if err != nil {
		t.Fatal(err)
	}
	a := m.InitialAssignment(true)
	if a.CPUBatch != 1024 || len(a.AccelBatch) != 0 {
		t.Fatalf("CPU-only assignment: %+v", a)
	}
}

func TestHybridBeatsAccelOnly(t *testing.T) {
	// The intro's motivation: CPU+accel should beat accel-only. Check the
	// predicted epoch time improves for the FPGA platform on every dataset.
	for _, spec := range datagen.PaperSpecs() {
		m := fpgaModel(t, spec, gnn.GCN)
		hybrid := m.EpochTime(m.InitialAssignment(true))
		only := m.EpochTime(m.InitialAssignment(false))
		if hybrid >= only {
			t.Errorf("%s: hybrid %v not faster than accel-only %v", spec.Name, hybrid, only)
		}
	}
}

func TestThroughputMTEPS(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNProducts, gnn.GCN)
	a := m.InitialAssignment(true)
	mteps := m.ThroughputMTEPS(a)
	if mteps <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Cross-check Eq. 5: edges/iter ÷ iter time.
	var edges float64
	edges += m.Work.EdgesPerBatch(a.CPUBatch)
	for _, b := range a.AccelBatch {
		edges += m.Work.EdgesPerBatch(b)
	}
	want := edges / m.IterTime(a) / 1e6
	if math.Abs(mteps-want) > want*1e-9 {
		t.Fatalf("MTEPS = %v, want %v", mteps, want)
	}
	if m.ThroughputMTEPS(Assignment{}) != 0 {
		t.Fatal("empty assignment throughput should be 0")
	}
}

// Software profiles: the torch loader path is thread-independent and slower
// than the native loader at full threads; the PyG sampling factor inflates
// sampling cost.
func TestSoftwareProfiles(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	nativeFull := m.LoadTimeForRows(100000, 64)

	m.Profile = TorchProfile()
	torch32 := m.LoadTimeForRows(100000, 32)
	torch4 := m.LoadTimeForRows(100000, 4)
	if torch32 != torch4 {
		t.Fatal("torch loader should be thread-independent")
	}
	if torch32 <= nativeFull {
		t.Fatal("torch loader should be slower than the saturated native loader")
	}

	m.Profile = PyGBaselineProfile()
	pygSamp := m.SamplingTimeCPU(4096, 32)
	m.Profile = NativeProfile()
	natSamp := m.SamplingTimeCPU(4096, 32)
	if pygSamp <= natSamp {
		t.Fatal("PyG dataloader sampling should cost more than native")
	}
}

// The §VIII quantization knob: int8 transfer must shrink Eq. 8 by close to
// 4x on feature-dominated payloads, and never change loading or compute.
func TestQuantizedTransferTime(t *testing.T) {
	m := fpgaModel(t, datagen.MAG240MHomo, gnn.GCN) // 756-dim: features dominate
	s := m.Work.SizesFor(1024)
	fp32 := m.TransferTimeFor(s)
	m.Work.TransferBytesPerFeat = 1
	int8t := m.TransferTimeFor(s)
	ratio := fp32 / int8t
	if ratio < 2.5 || ratio > 4 {
		t.Fatalf("int8 transfer ratio %v, want ~3-4x on wide features", ratio)
	}
	if m.LoadTimeForRows(1000, 32) != func() float64 {
		m2 := fpgaModel(t, datagen.MAG240MHomo, gnn.GCN)
		return m2.LoadTimeForRows(1000, 32)
	}() {
		t.Fatal("quantization must not change DRAM loading")
	}
}

// Property: stage times are non-negative and monotone in batch size.
func TestStageMonotonicity(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	f := func(rawB uint16) bool {
		b := int(rawB%2048) + 1
		a1 := Assignment{CPUBatch: b, AccelBatch: []int{b}, SampThreads: 16, LoadThreads: 16, TrainThreads: 32}
		a2 := Assignment{CPUBatch: 2 * b, AccelBatch: []int{2 * b}, SampThreads: 16, LoadThreads: 16, TrainThreads: 32}
		s1, s2 := m.Stages(a1), m.Stages(a2)
		return s1.Load <= s2.Load && s1.Trans <= s2.Trans &&
			s1.TrainCPU <= s2.TrainCPU && s1.TrainAcc <= s2.TrainAcc &&
			s1.SampCPU <= s2.SampCPU && s1.Load >= 0 && s1.Bottleneck() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func heteroModel(t *testing.T, kinds ...hw.Kind) *Model {
	t.Helper()
	plat, err := hw.HeteroPlatform(kinds...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(plat, DefaultWorkload(datagen.OGBNProducts, gnn.SAGE))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Per-device links: the same payload must cost more over the FPGA's PCIe3
// than over the GPU's PCIe4, and TransferTime must follow each device's own
// link rather than the platform default.
func TestTransferTimeDevUsesOwnLink(t *testing.T) {
	m := heteroModel(t, hw.GPU, hw.FPGA)
	s := m.Work.SizesFor(1024)
	gpu, fpga := m.TransferTimeDev(0, s), m.TransferTimeDev(1, s)
	if gpu >= fpga {
		t.Fatalf("PCIe4 transfer %v not faster than PCIe3 %v", gpu, fpga)
	}
	// Equal shares: the aggregate is the slow link's time, not the default's.
	a := Assignment{AccelBatch: []int{1024, 1024}}
	if got := m.TransferTime(a); math.Abs(got-fpga) > 1e-15 {
		t.Fatalf("TransferTime = %v, want slowest device's %v", got, fpga)
	}
}

// Mixed-fleet loading: GPU-bound rows ride the framework loader, FPGA-bound
// rows the native loader, and the two stacks overlap (max, not sum).
func TestLoadTimeSplitsLoaderStacks(t *testing.T) {
	m := heteroModel(t, hw.GPU, hw.FPGA)
	bytesPerRow := float64(m.Work.Spec.FeatDims[0]) * 4
	gpuOnly := m.LoadTimeForDeviceRows([]float64{50000, 0}, 64)
	wantGPU := 50000 * bytesPerRow / (hw.A5000().LoaderGBs * 1e9)
	if math.Abs(gpuOnly-wantGPU) > wantGPU*1e-9 {
		t.Fatalf("framework-loader time = %v, want %v", gpuOnly, wantGPU)
	}
	fpgaOnly := m.LoadTimeForDeviceRows([]float64{0, 50000}, 64)
	if fpgaOnly >= gpuOnly {
		t.Fatalf("native loader %v not faster than framework loader %v", fpgaOnly, gpuOnly)
	}
	both := m.LoadTimeForDeviceRows([]float64{50000, 50000}, 64)
	if math.Abs(both-math.Max(gpuOnly, fpgaOnly)) > 1e-12 {
		t.Fatalf("stacks should overlap: %v, want max(%v, %v)", both, gpuOnly, fpgaOnly)
	}
	// A Profile-level loader overrides the split (the whole run is torch).
	m.Profile = TorchProfile()
	override := m.LoadTimeForDeviceRows([]float64{50000, 50000}, 64)
	if math.Abs(override-m.LoadTimeForRows(100000, 64)) > 1e-12 {
		t.Fatal("Profile.LoaderGBs should override the per-device split")
	}
}

// The homogeneous CPU-FPGA path must be bit-identical to the pre-split
// loader model (calibrated figures depend on it).
func TestLoadTimeNativeFleetUnchanged(t *testing.T) {
	m := fpgaModel(t, datagen.OGBNPapers100M, gnn.GCN)
	a := Assignment{AccelBatch: []int{512, 256, 0, 128}, LoadThreads: 32}
	var rows float64
	for _, b := range a.AccelBatch {
		if b > 0 {
			rows += m.Work.SizesFor(b).VL[0]
		}
	}
	if got, want := m.LoadTime(a), m.LoadTimeForRows(rows, 32); math.Abs(got-want) > want*1e-12 {
		t.Fatalf("native LoadTime = %v, want %v", got, want)
	}
}

// Sync is gated by the slowest link in the fleet.
func TestSyncTimeSlowestLink(t *testing.T) {
	mixed := heteroModel(t, hw.GPU, hw.FPGA)
	gpuOnly := heteroModel(t, hw.GPU, hw.GPU)
	if mixed.SyncTime() <= gpuOnly.SyncTime() {
		t.Fatal("mixed-fleet sync should pay the FPGA's slower link")
	}
}

// The design-phase mapping sizes shares proportional to per-device
// throughput: unequal devices get unequal shares, equal devices equal ones.
func TestInitialAssignmentProportionalShares(t *testing.T) {
	m := heteroModel(t, hw.GPU, hw.GPU, hw.FPGA)
	a := m.InitialAssignment(true)
	if a.TotalBatch() != 3*m.Work.BatchSize {
		t.Fatalf("total batch %d, want %d", a.TotalBatch(), 3*m.Work.BatchSize)
	}
	if a.AccelBatch[0] != a.AccelBatch[1] {
		t.Fatalf("equal GPUs got unequal shares: %v", a.AccelBatch)
	}
	rGPU, rFPGA := m.DeviceRate(0), m.DeviceRate(2)
	if rGPU == rFPGA {
		t.Fatal("test premise broken: devices predict identical rates")
	}
	// The faster device must carry the larger share.
	if (rGPU > rFPGA) != (a.AccelBatch[0] > a.AccelBatch[2]) {
		t.Fatalf("shares %v do not follow rates (GPU %v, FPGA %v)",
			a.AccelBatch, rGPU, rFPGA)
	}
	// And the split should track the rate ratio, not just its sign.
	gotRatio := float64(a.AccelBatch[0]) / float64(a.AccelBatch[2])
	wantRatio := rGPU / rFPGA
	if gotRatio < wantRatio*0.9 || gotRatio > wantRatio*1.1 {
		t.Fatalf("share ratio %v far from rate ratio %v", gotRatio, wantRatio)
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{10, []float64{1, 1}, []int{5, 5}},
		{10, []float64{3, 1}, []int{8, 2}}, // 7.5/2.5 → tie goes to the first
		{10, []float64{3, 2}, []int{6, 4}},
		{7, []float64{1, 1, 1}, []int{3, 2, 2}},
		{5, []float64{0, 0}, []int{3, 2}}, // zero weights → uniform
		{0, []float64{1, 2}, []int{0, 0}},
	}
	for _, c := range cases {
		orig := append([]float64(nil), c.weights...)
		got := Apportion(c.total, c.weights)
		sum := 0
		for i, g := range got {
			if g != c.want[i] {
				t.Fatalf("Apportion(%d, %v) = %v, want %v", c.total, orig, got, c.want)
			}
			sum += g
		}
		if sum != c.total {
			t.Fatalf("Apportion(%d, %v) sums to %d", c.total, orig, sum)
		}
		for i := range orig {
			if c.weights[i] != orig[i] {
				t.Fatalf("Apportion mutated weights: %v -> %v", orig, c.weights)
			}
		}
	}
}

// Per-device stages: the aggregate maxima must agree with the vector.
func TestAccelStagesMatchAggregates(t *testing.T) {
	m := heteroModel(t, hw.GPU, hw.FPGA)
	a := Assignment{AccelBatch: []int{1024, 512}, SampThreads: 16, LoadThreads: 16}
	st := m.Stages(a)
	if len(st.PerAccel) != 2 {
		t.Fatalf("PerAccel = %v", st.PerAccel)
	}
	maxTrans, maxTrain := 0.0, 0.0
	for _, d := range st.PerAccel {
		maxTrans = math.Max(maxTrans, d.Trans)
		maxTrain = math.Max(maxTrain, d.Train)
	}
	if math.Abs(st.Trans-maxTrans) > 1e-15 || math.Abs(st.TrainAcc-maxTrain) > 1e-15 {
		t.Fatalf("aggregates (%v, %v) disagree with per-device maxima (%v, %v)",
			st.Trans, st.TrainAcc, maxTrans, maxTrain)
	}
}

// Scalability sanity (Fig. 9 regime): throughput grows with accelerator
// count but saturates as the CPU memory bandwidth becomes the limit
// (the paper observes saturation past ~12 accelerators).
func TestScalabilitySaturates(t *testing.T) {
	base := hw.CPUFPGAPlatform()
	work := DefaultWorkload(datagen.OGBNPapers100M, gnn.GCN)
	var prev float64
	var speedups []float64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		plat := base.WithAccelCount(n)
		m, err := New(plat, work)
		if err != nil {
			t.Fatal(err)
		}
		a := m.InitialAssignment(false) // accelerator-fleet scaling, as in Fig. 9
		mteps := m.ThroughputMTEPS(a)
		if mteps < prev*0.99 {
			t.Fatalf("throughput regressed at %d accels: %v < %v", n, mteps, prev)
		}
		speedups = append(speedups, mteps)
		prev = mteps
	}
	// Early scaling must be near-linear; past the CPU-memory-bandwidth knee
	// (the paper: ~12 accelerators) it must flatten.
	early := speedups[1] / speedups[0]
	late := speedups[5] / speedups[4]
	if early < 1.7 {
		t.Fatalf("early scaling not near-linear: 1→2 gain %v", early)
	}
	if late >= early*0.8 {
		t.Fatalf("no saturation: 1→2 gain %v, 16→32 gain %v", early, late)
	}
}
