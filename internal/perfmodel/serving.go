package perfmodel

import (
	"fmt"
	"math"
)

// Serving equations: the paper's per-stage cost model (§V, Eqs. 5–13)
// generalized from training iterations to online inference batches. A
// serving batch runs the same pipeline stages as a training iteration —
// fanout sampling, feature loading, PCIe transfer, propagation — minus the
// backward pass and gradient sync, so each stage reuses the training
// primitives over the expected sampled-set sizes of the dynamic batcher's
// batch. The validated quantities are the per-batch service time and the
// steady-state capacity (the bench's ext-serve table asserts the executed
// virtual-clock times land within ±35% of these); the latency percentiles
// are first-order queueing estimates for sizing, not guarantees.

// ServingLoad describes an open-loop request stream hitting a serving
// deployment: offered load, the dynamic batcher's knobs, the worker pool,
// and the steady-state embedding-cache behavior.
type ServingLoad struct {
	RatePerSec float64 // offered load λ (accepted requests per second)
	MaxBatch   int     // dynamic batcher's size cap
	WindowSec  float64 // dynamic batcher's max-wait deadline
	Workers    int     // serving workers (pipelines) draining batches
	// ComputeFrac is the fraction of requests that miss the embedding cache
	// and need the full sample→propagate pipeline (1 = cold cache). The
	// cache hit rate itself depends on the request popularity distribution
	// and cache capacity; it is measured by the serving runtime and fed
	// back here.
	ComputeFrac float64
	// Accel selects accelerator propagation (features cross PCIe, as in
	// hybrid training); false serves on the CPU trainer.
	Accel bool
	// SampThreads/LoadThreads are the CPU threads charged for sampling and
	// gathering; zero defaults to a quarter of the cores each.
	SampThreads, LoadThreads int
}

// ServingPrediction is the analytic model's answer for a ServingLoad.
type ServingPrediction struct {
	BatchSize float64 // expected requests per closed batch
	Computed  float64 // expected cache-missing targets per batch
	Stage     StageTimes
	// ServiceSec is one batch's latency through an empty pipeline: the
	// serial sum of its stages plus the runtime's stage barriers.
	ServiceSec float64
	// CycleSec is the steady-state per-worker batch cadence: the slowest
	// pipeline stage (batches overlap stage-wise, Eq. 6 applied to serving).
	CycleSec float64
	// CapacityRPS is the saturation throughput Workers·BatchSize/CycleSec.
	CapacityRPS float64
	Utilization float64 // offered load over capacity
	// ThroughputRPS is the predicted served rate: the offered load, capped
	// by capacity.
	ThroughputRPS float64
	// BatchWaitSec is the mean time a request spends in the batcher before
	// its batch closes.
	BatchWaitSec   float64
	P50Sec, P99Sec float64 // first-order latency estimates
}

// PredictServing evaluates the serving equations for a load on this
// platform + workload.
func (m *Model) PredictServing(l ServingLoad) (ServingPrediction, error) {
	if l.RatePerSec <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive request rate %v", l.RatePerSec)
	}
	if l.MaxBatch <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive max batch %d", l.MaxBatch)
	}
	if l.WindowSec < 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: negative batch window %v", l.WindowSec)
	}
	if l.Workers <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive worker count %d", l.Workers)
	}
	if l.ComputeFrac < 0 || l.ComputeFrac > 1 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: compute fraction %v outside [0,1]", l.ComputeFrac)
	}
	if l.Accel && len(m.Plat.Accels) == 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: accelerator serving on %s, which has none", m.Plat.Name)
	}
	cores := m.Plat.TotalCPUCores()
	quarter := cores / 4
	if l.SampThreads <= 0 {
		l.SampThreads = max(1, quarter)
	}
	if l.LoadThreads <= 0 {
		l.LoadThreads = max(1, quarter)
	}

	var p ServingPrediction
	// Expected batch size of the dynamic batcher under open-loop arrivals:
	// the batch closes either when the MaxBatch-th request arrives (expected
	// after (B−1)/λ) or at the window deadline, whichever is first.
	p.BatchSize = math.Min(float64(l.MaxBatch), 1+l.RatePerSec*l.WindowSec)
	p.BatchWaitSec = math.Min(l.WindowSec, (float64(l.MaxBatch)-1)/l.RatePerSec) / 2
	p.Computed = p.BatchSize * l.ComputeFrac

	if p.Computed > 0 {
		// Expected sampled-set sizes for the computed targets, through the
		// same expectation model as training (duplicate collapse included).
		sz := m.Work.SizesFor(max(1, int(math.Round(p.Computed))))
		var edges float64
		for _, e := range sz.EL {
			edges += e
		}
		p.Stage.SampCPU = m.SampleTimeCPUEdges(edges, l.SampThreads)
		p.Stage.Load = m.LoadTimeForRows(sz.VL[0], l.LoadThreads)
		if l.Accel {
			// Conservative device choice on mixed fleets: a worker may land
			// on any accelerator, so price the busiest (slowest) one. On a
			// single-accel or homogeneous fleet this is device 0, as before.
			busiest := 0
			worst := -1.0
			for i := range m.Plat.Accels {
				t := m.TransferTimeDev(i, sz) + m.PropWithOverheads(m.Plat.Accels[i], sz, 1)
				if t > worst {
					worst, busiest = t, i
				}
			}
			p.Stage.Trans = m.TransferTimeDev(busiest, sz)
			p.Stage.TrainAcc = m.PropWithOverheads(m.Plat.Accels[busiest], sz, 1)
		} else {
			share := float64(cores-l.SampThreads-l.LoadThreads) / float64(cores)
			if share <= 0 {
				share = 0.5
			}
			p.Stage.TrainCPU = m.PropWithOverheads(m.Plat.CPU, sz, share)
		}
	}
	prop := math.Max(p.Stage.TrainCPU, p.Stage.TrainAcc)
	// The runtime's pipeline clock charges one barrier per stage (sampling,
	// loading, transfer, propagation under TFP).
	const barriers = 4 * RuntimeBarrierSec
	p.ServiceSec = p.Stage.SampCPU + p.Stage.Load + p.Stage.Trans + prop + barriers
	p.CycleSec = math.Max(math.Max(p.Stage.SampCPU, p.Stage.Load),
		math.Max(p.Stage.Trans, prop)) + RuntimeBarrierSec

	p.CapacityRPS = float64(l.Workers) * p.BatchSize / p.CycleSec
	p.Utilization = l.RatePerSec / p.CapacityRPS
	p.ThroughputRPS = math.Min(l.RatePerSec, p.CapacityRPS)

	// First-order latency: batcher wait + service, plus an M/D/c-style
	// queueing term that diverges as utilization approaches 1.
	queue := 0.0
	if p.Utilization < 1 {
		queue = p.Utilization / (1 - p.Utilization) * p.CycleSec / 2
	} else {
		queue = math.Inf(1)
	}
	p.P50Sec = p.BatchWaitSec + p.ServiceSec + queue
	p.P99Sec = 2*p.BatchWaitSec + p.ServiceSec + 3*queue
	return p, nil
}
