package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/gnn"
	"repro/internal/hw"
)

// Serving equations: the paper's per-stage cost model (§V, Eqs. 5–13)
// generalized from training iterations to online inference batches. A
// serving batch runs the same pipeline stages as a training iteration —
// fanout sampling, feature loading, PCIe transfer, propagation — minus the
// backward pass and gradient sync, so each stage reuses the training
// primitives over the expected sampled-set sizes of the dynamic batcher's
// batch. Propagation is priced forward-only (serving has no backward), with
// the device's *inference-stack* overheads (hw.Device.ServeOverheadMs plus
// kernel launches and pipeline flush) instead of the training framework
// cost, and FPGA devices are priced by the analytic mirror of the §IV-C
// dataflow kernels' cycle accounting — the same accounting the executing
// FPGA serving worker measures for itself.
//
// The model is evaluated per worker *device*: each serving worker binds one
// device (the host CPU peer, a GPU, or an FPGA), so a pool's prediction is
// the per-device stage vectors combined — capacity is the sum of per-device
// capacities and the pool service time is the capacity-weighted mean, which
// is where batches land under earliest-completion routing. The validated
// quantities are the per-batch service time and the steady-state capacity
// (the bench's ext-serve tables assert the executed virtual-clock times land
// within ±35% of these); the latency percentiles are first-order queueing
// estimates for sizing, not guarantees.

// ServingLoad describes an open-loop request stream hitting a serving
// deployment: offered load, the dynamic batcher's knobs, the worker pool,
// and the steady-state embedding-cache behavior.
type ServingLoad struct {
	RatePerSec float64 // offered load λ (accepted requests per second)
	MaxBatch   int     // dynamic batcher's size cap
	WindowSec  float64 // dynamic batcher's max-wait deadline
	Workers    int     // serving workers (pipelines) draining batches
	// ComputeFrac is the fraction of requests that miss the embedding cache
	// and need the full sample→propagate pipeline (1 = cold cache). The
	// cache hit rate itself depends on the request popularity distribution
	// and cache capacity; it is measured by the serving runtime and fed
	// back here.
	ComputeFrac float64
	// Devices binds each worker to a device: 0 is the host CPU peer, i > 0
	// is Plat.Accels[i-1] (the core.InferConfig.Device convention). When
	// empty, Workers and Accel resolve the pool the legacy way: accelerator
	// workers round-robin over the fleet, or CPU workers otherwise.
	Devices []int
	// Accel selects accelerator workers when Devices is empty (features
	// cross PCIe, as in hybrid training); false serves on the CPU.
	Accel bool
	// SampThreads/LoadThreads are the CPU threads charged for sampling and
	// gathering; zero defaults to a quarter of the cores each.
	SampThreads, LoadThreads int
}

// ServingDevicePrediction is one worker device's share of a pool prediction:
// its own stage vector and the service/cadence/capacity it sustains.
type ServingDevicePrediction struct {
	Device int // 0 = CPU peer, i > 0 = Plat.Accels[i-1]
	Stage  StageTimes
	// ServiceSec is one batch's latency through this worker's empty
	// pipeline: the serial sum of its stages plus the runtime barriers.
	ServiceSec float64
	// CycleSec is the worker's steady-state batch cadence: its slowest
	// pipeline stage (batches overlap stage-wise, Eq. 6 applied to serving).
	CycleSec float64
	// CapacityRPS is the worker's saturation throughput BatchSize/CycleSec.
	CapacityRPS float64
}

// ServingPrediction is the analytic model's answer for a ServingLoad.
type ServingPrediction struct {
	BatchSize float64 // expected requests per closed batch
	Computed  float64 // expected cache-missing targets per batch
	// Stage aggregates the pool the way StageTimes does for training: Trans
	// and TrainAcc are maxima over the worker devices.
	Stage StageTimes
	// PerDevice resolves the prediction per worker device — the vectors the
	// kind-aware router steers by. One entry per pool worker.
	PerDevice []ServingDevicePrediction
	// ServiceSec is one batch's latency through an empty pipeline: the
	// capacity-weighted mean of the per-device service times (the share of
	// batches each device absorbs under earliest-completion routing).
	ServiceSec float64
	// CycleSec is the pool's effective per-worker batch cadence:
	// Workers·BatchSize/CapacityRPS.
	CycleSec float64
	// CapacityRPS is the saturation throughput: Σ_d BatchSize/CycleSec_d.
	CapacityRPS float64
	Utilization float64 // offered load over capacity
	// ThroughputRPS is the predicted served rate: the offered load, capped
	// by capacity.
	ThroughputRPS float64
	// BatchWaitSec is the mean time a request spends in the batcher before
	// its batch closes.
	BatchWaitSec   float64
	P50Sec, P99Sec float64 // first-order latency estimates
}

// ServingOverheads applies the per-batch *inference-stack* overheads to a raw
// forward time t on dev: the compiled serving stack's dispatch cost on every
// device, plus pipeline flush and kernel launches on accelerators. The
// serving runtime charges exactly this on its virtual clock, so the analytic
// model and the executed path price overheads identically (the serving
// counterpart of DeviceOverheads, which carries the training stack's cost).
func ServingOverheads(dev hw.Device, t float64) float64 {
	if dev.Kind == hw.CPU {
		return t + dev.ServeOverheadMs*1e-3
	}
	return t*(1+FlushFraction) + dev.ServeOverheadMs*1e-3 +
		KernelsPerIteration*dev.KernelLaunchUs*1e-6
}

// ServingServiceSec is the serial service time of one batch's stage vector:
// the stage sum plus the runtime's per-stage barriers (sampling, loading,
// transfer, propagation under TFP). It is the quantity the serving runtime
// measures per batch and the router adds to a worker's availability.
func ServingServiceSec(st StageTimes) float64 {
	return st.SampCPU + st.Load + st.Trans +
		math.Max(st.TrainCPU, st.TrainAcc) + 4*RuntimeBarrierSec
}

// servingCycleSec is one worker's steady-state batch cadence: its slowest
// stage plus one barrier.
func servingCycleSec(st StageTimes) float64 {
	prop := math.Max(st.TrainCPU, st.TrainAcc)
	return math.Max(math.Max(st.SampCPU, st.Load),
		math.Max(st.Trans, prop)) + RuntimeBarrierSec
}

// ServingBatchStage prices one closed serving batch of `computed`
// cache-missing targets on a single bound worker device — the per-device
// stage vector of the kind-aware router and of PredictServing's pool
// aggregation. Device 0 is the host CPU peer (propagation on the trainer's
// core share, no PCIe); device i > 0 is Plat.Accels[i-1], whose features
// cross its own host link and, for framework-driven devices
// (Device.LoaderGBs), load through that stack. FPGA devices are priced by
// the dataflow kernels' analytic cycle mirror; everything else by the
// forward half of Eq. 10. All propagation carries ServingOverheads.
func (m *Model) ServingBatchStage(device, computed, sampThreads, loadThreads int) (StageTimes, error) {
	if device < 0 || device > len(m.Plat.Accels) {
		return StageTimes{}, fmt.Errorf("perfmodel: serving device %d outside [0,%d]",
			device, len(m.Plat.Accels))
	}
	if computed <= 0 {
		return StageTimes{}, nil
	}
	cores := m.Plat.TotalCPUCores()
	quarter := cores / 4
	if sampThreads <= 0 {
		sampThreads = max(1, quarter)
	}
	if loadThreads <= 0 {
		loadThreads = max(1, quarter)
	}
	sz := m.Work.SizesFor(computed)
	var edges float64
	for _, e := range sz.EL {
		edges += e
	}
	st := StageTimes{SampCPU: m.SampleTimeCPUEdges(edges, sampThreads)}
	if device == 0 {
		st.Load = m.LoadTimeForRows(sz.VL[0], loadThreads)
		share := float64(cores-sampThreads-loadThreads) / float64(cores)
		if share <= 0 {
			share = 0.5
		}
		st.TrainCPU = ServingOverheads(m.Plat.CPU, m.PropForwardFor(m.Plat.CPU, sz, share))
		return st, nil
	}
	dev := m.Plat.Accels[device-1]
	rows := make([]float64, len(m.Plat.Accels))
	rows[device-1] = sz.VL[0]
	st.Load = m.LoadTimeForDeviceRows(rows, loadThreads)
	st.Trans = m.TransferTimeDev(device-1, sz)
	if dev.Kind == hw.FPGA {
		// Like every other perfmodel equation, the estimate prices the
		// workload's Spec.FeatDims (the convention throughout: served model
		// dims equal the spec's layer dims, enforced for the input layer at
		// pipeline construction). Spec-derived sizes and dims always agree
		// in length, so the estimate's short-vector guard cannot trip here.
		bk := accel.U250Backend(m.Work.Spec.FeatDims[0])
		fwd := bk.EstimateForwardSec(gnn.Config{Kind: m.Work.Model, Dims: m.Work.Spec.FeatDims},
			sz.VL, sz.EL)
		st.TrainAcc = ServingOverheads(dev, fwd)
	} else {
		st.TrainAcc = ServingOverheads(dev, m.PropForwardFor(dev, sz, 1))
	}
	return st, nil
}

// servingDevices resolves a load's worker→device bindings.
func (m *Model) servingDevices(l ServingLoad) ([]int, error) {
	if len(l.Devices) > 0 {
		for _, d := range l.Devices {
			if d < 0 || d > len(m.Plat.Accels) {
				return nil, fmt.Errorf("perfmodel: serving device %d outside [0,%d]",
					d, len(m.Plat.Accels))
			}
		}
		return l.Devices, nil
	}
	devices := make([]int, l.Workers)
	if l.Accel {
		for i := range devices {
			devices[i] = i%len(m.Plat.Accels) + 1
		}
	}
	return devices, nil
}

// PredictServing evaluates the serving equations for a load on this
// platform + workload: per-device stage vectors for every pool worker,
// combined into pool capacity, service time, and first-order latency.
func (m *Model) PredictServing(l ServingLoad) (ServingPrediction, error) {
	if l.RatePerSec <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive request rate %v", l.RatePerSec)
	}
	if l.MaxBatch <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive max batch %d", l.MaxBatch)
	}
	if l.WindowSec < 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: negative batch window %v", l.WindowSec)
	}
	if len(l.Devices) == 0 && l.Workers <= 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: non-positive worker count %d", l.Workers)
	}
	if l.ComputeFrac < 0 || l.ComputeFrac > 1 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: compute fraction %v outside [0,1]", l.ComputeFrac)
	}
	if l.Accel && len(m.Plat.Accels) == 0 {
		return ServingPrediction{}, fmt.Errorf("perfmodel: accelerator serving on %s, which has none", m.Plat.Name)
	}
	devices, err := m.servingDevices(l)
	if err != nil {
		return ServingPrediction{}, err
	}

	var p ServingPrediction
	// Expected batch size of the dynamic batcher under open-loop arrivals:
	// the batch closes either when the MaxBatch-th request arrives (expected
	// after (B−1)/λ) or at the window deadline, whichever is first.
	p.BatchSize = math.Min(float64(l.MaxBatch), 1+l.RatePerSec*l.WindowSec)
	p.BatchWaitSec = math.Min(l.WindowSec, (float64(l.MaxBatch)-1)/l.RatePerSec) / 2
	p.Computed = p.BatchSize * l.ComputeFrac
	computed := 0
	if p.Computed > 0 {
		computed = max(1, int(math.Round(p.Computed)))
	}

	p.PerDevice = make([]ServingDevicePrediction, len(devices))
	for i, d := range devices {
		st, err := m.ServingBatchStage(d, computed, l.SampThreads, l.LoadThreads)
		if err != nil {
			return ServingPrediction{}, err
		}
		dp := ServingDevicePrediction{
			Device:     d,
			Stage:      st,
			ServiceSec: ServingServiceSec(st),
			CycleSec:   servingCycleSec(st),
		}
		dp.CapacityRPS = p.BatchSize / dp.CycleSec
		p.PerDevice[i] = dp

		// Pool stage aggregate: maxima, the StageTimes convention.
		p.Stage.SampCPU = math.Max(p.Stage.SampCPU, st.SampCPU)
		p.Stage.Load = math.Max(p.Stage.Load, st.Load)
		p.Stage.Trans = math.Max(p.Stage.Trans, st.Trans)
		p.Stage.TrainCPU = math.Max(p.Stage.TrainCPU, st.TrainCPU)
		p.Stage.TrainAcc = math.Max(p.Stage.TrainAcc, st.TrainAcc)
		p.CapacityRPS += dp.CapacityRPS
	}
	// Pool service time: capacity-weighted mean of the per-device service
	// times — the batch mix earliest-completion routing converges to.
	for _, dp := range p.PerDevice {
		p.ServiceSec += dp.CapacityRPS / p.CapacityRPS * dp.ServiceSec
	}
	p.CycleSec = float64(len(devices)) * p.BatchSize / p.CapacityRPS
	p.Utilization = l.RatePerSec / p.CapacityRPS
	p.ThroughputRPS = math.Min(l.RatePerSec, p.CapacityRPS)

	// First-order latency: batcher wait + service, plus an M/D/c-style
	// queueing term that diverges as utilization approaches 1.
	queue := 0.0
	if p.Utilization < 1 {
		queue = p.Utilization / (1 - p.Utilization) * p.CycleSec / 2
	} else {
		queue = math.Inf(1)
	}
	p.P50Sec = p.BatchWaitSec + p.ServiceSec + queue
	p.P99Sec = 2*p.BatchWaitSec + p.ServiceSec + 3*queue
	return p, nil
}
