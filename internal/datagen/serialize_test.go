package datagen

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	spec := Spec{Name: "roundtrip", NumVertices: 300, NumEdges: 1800,
		FeatDims: []int{12, 8, 4}, TrainNodes: 120}
	ds, err := Materialize(spec, 0.4, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != "roundtrip" || got.Spec.NumVertices != 300 {
		t.Fatalf("spec lost: %+v", got.Spec)
	}
	if len(got.Spec.FeatDims) != 3 || got.Spec.FeatDims[2] != 4 {
		t.Fatalf("dims lost: %v", got.Spec.FeatDims)
	}
	if got.Graph.NumVertices != ds.Graph.NumVertices || got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("graph size changed")
	}
	for v := 0; v < got.Graph.NumVertices; v++ {
		a, b := ds.Graph.Neighbors(int32(v)), got.Graph.Neighbors(int32(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbors changed", v)
			}
		}
	}
	if !got.Features.Equal(ds.Features) {
		t.Fatal("features changed")
	}
	for i := range ds.Labels {
		if got.Labels[i] != ds.Labels[i] {
			t.Fatal("labels changed")
		}
	}
	if len(got.TrainIdx) != len(ds.TrainIdx) {
		t.Fatal("train split changed")
	}
	for i := range ds.TrainIdx {
		if got.TrainIdx[i] != ds.TrainIdx[i] {
			t.Fatal("train indices changed")
		}
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader(bytes.Repeat([]byte{7}, 128))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := LoadDataset(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestLoadDatasetRejectsTruncated(t *testing.T) {
	spec := Spec{Name: "t", NumVertices: 100, NumEdges: 400, FeatDims: []int{4, 3}, TrainNodes: 10}
	ds, err := Materialize(spec, 0.2, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := LoadDataset(bytes.NewReader(full[:len(full)*2/3])); err == nil {
		t.Fatal("expected truncation error")
	}
}
