package datagen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Spec describes a dataset's shape: everything the paper's performance model
// (§V) needs, independent of whether the actual graph is materialised.
// FeatDims is {f0, f1, ..., fL}: f0 = input feature length, fL = #classes.
type Spec struct {
	Name        string
	NumVertices int64
	NumEdges    int64
	FeatDims    []int
	// TrainNodes is the size of the training split (OGB standard splits for
	// the paper datasets); it determines iterations per epoch.
	TrainNodes int64
}

// FeatureBytes returns the size of the full input feature matrix in bytes
// assuming float32 features (Sfeat = 4, as in the paper).
func (s Spec) FeatureBytes() int64 {
	return s.NumVertices * int64(s.FeatDims[0]) * 4
}

// NumClasses returns the output dimension (last layer width).
func (s Spec) NumClasses() int { return s.FeatDims[len(s.FeatDims)-1] }

// Layers returns the number of GNN layers L implied by FeatDims.
func (s Spec) Layers() int { return len(s.FeatDims) - 1 }

// The paper's Table III, verbatim. These full-scale specs drive the analytic
// timing models; they are never materialised in memory.
var (
	// OGBNProducts is the medium-scale dataset (61.8M edges, f=(100,256,47)).
	OGBNProducts = Spec{Name: "ogbn-products", NumVertices: 2_449_029, NumEdges: 61_859_140, FeatDims: []int{100, 256, 47}, TrainNodes: 196_615}
	// OGBNPapers100M is the first large-scale dataset (1.6B edges, f=(128,256,172)).
	OGBNPapers100M = Spec{Name: "ogbn-papers100M", NumVertices: 111_059_956, NumEdges: 1_615_685_872, FeatDims: []int{128, 256, 172}, TrainNodes: 1_207_179}
	// MAG240MHomo is the homogeneous MAG240M (1.3B edges, f=(756,256,153)).
	MAG240MHomo = Spec{Name: "MAG240M(homo)", NumVertices: 121_751_666, NumEdges: 1_297_748_926, FeatDims: []int{756, 256, 153}, TrainNodes: 1_112_392}
)

// PaperSpecs lists the three evaluation datasets in Table III order.
func PaperSpecs() []Spec { return []Spec{OGBNProducts, OGBNPapers100M, MAG240MHomo} }

// SpecByName looks up a paper spec by name.
func SpecByName(name string) (Spec, error) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Scaled returns a spec with vertex and edge counts divided by factor
// (feature dims unchanged — GNN numerics depend on dims, not graph size).
// The name records the scaling for reports.
func (s Spec) Scaled(factor int64) Spec {
	if factor <= 0 {
		panic("datagen: non-positive scale factor")
	}
	out := s
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	out.NumVertices = s.NumVertices / factor
	if out.NumVertices < 64 {
		out.NumVertices = 64
	}
	out.NumEdges = s.NumEdges / factor
	if out.NumEdges < out.NumVertices {
		out.NumEdges = out.NumVertices
	}
	out.TrainNodes = s.TrainNodes / factor
	if out.TrainNodes < 1 {
		out.TrainNodes = 1
	}
	if out.TrainNodes > out.NumVertices {
		out.TrainNodes = out.NumVertices
	}
	return out
}

// Dataset is a materialised dataset: graph + features + labels + train split.
type Dataset struct {
	Spec     Spec
	Graph    *graph.Graph
	Features *tensor.Matrix // NumVertices × f0
	Labels   []int32        // NumVertices, in [0, NumClasses)
	TrainIdx []int32        // vertices used as mini-batch targets
}

// Materialize generates a concrete dataset for spec using RMAT topology and
// a planted-cluster feature/label model: each vertex is assigned a class and
// its features are the class centroid plus Gaussian noise, so GNN training
// has real signal to learn (loss decreases, accuracy rises above chance).
// trainFraction of vertices (at least 1) become training targets.
func Materialize(spec Spec, trainFraction float64, rng *tensor.RNG) (*Dataset, error) {
	if spec.NumVertices > 10_000_000 {
		return nil, fmt.Errorf("datagen: refusing to materialise %s (%d vertices); use Scaled", spec.Name, spec.NumVertices)
	}
	n := int(spec.NumVertices)
	g, err := GenerateRMAT(n, int(spec.NumEdges), DefaultRMAT, rng)
	if err != nil {
		return nil, err
	}
	g, err = EnsureMinInDegree(g, 1, rng)
	if err != nil {
		return nil, err
	}
	numClasses := spec.NumClasses()
	f0 := spec.FeatDims[0]

	centroids := tensor.New(numClasses, f0)
	tensor.NormalInit(centroids, 1.0, rng)
	labels := make([]int32, n)
	features := tensor.New(n, f0)
	for v := 0; v < n; v++ {
		cls := rng.Intn(numClasses)
		labels[v] = int32(cls)
		row := features.Row(v)
		cen := centroids.Row(cls)
		for j := range row {
			row[j] = cen[j] + float32(rng.NormFloat64()*0.5)
		}
	}

	if trainFraction <= 0 || trainFraction > 1 {
		return nil, fmt.Errorf("datagen: trainFraction %v outside (0,1]", trainFraction)
	}
	numTrain := int(float64(n) * trainFraction)
	if numTrain < 1 {
		numTrain = 1
	}
	perm := rng.Perm(n)
	trainIdx := make([]int32, numTrain)
	copy(trainIdx, perm[:numTrain])

	return &Dataset{Spec: spec, Graph: g, Features: features, Labels: labels, TrainIdx: trainIdx}, nil
}
