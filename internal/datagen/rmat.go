// Package datagen synthesises graph datasets. The paper evaluates on
// ogbn-products, ogbn-papers100M and MAG240M (homo); those datasets (up to
// 202 GB) are not redistributable here, so we generate RMAT power-law graphs
// whose vertex/edge counts and feature dimensions either match the paper's
// Table III exactly (full-scale *specs*, used only by the analytic timing
// models) or are scaled-down instances (used by the real numeric training
// path and the tests). See DESIGN.md §2 for the substitution argument.
package datagen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// RMATParams configures the recursive-matrix (Kronecker) generator of
// Chakrabarti et al. Probabilities must be non-negative and sum to ~1.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT is the standard skewed parameterisation producing power-law
// degree distributions similar to web/citation graphs.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// GenerateRMAT builds a directed graph with numVertices (rounded up to a
// power of two internally, then mapped back) and numEdges edges drawn from
// the RMAT distribution. Vertex IDs are shuffled so degree does not correlate
// with ID. The result is stored in in-neighbor CSR form.
func GenerateRMAT(numVertices int, numEdges int, p RMATParams, rng *tensor.RNG) (*graph.Graph, error) {
	if numVertices <= 0 || numEdges < 0 {
		return nil, fmt.Errorf("datagen: bad sizes V=%d E=%d", numVertices, numEdges)
	}
	sum := p.A + p.B + p.C + p.D
	if sum <= 0 {
		return nil, fmt.Errorf("datagen: RMAT probabilities sum to %v", sum)
	}
	a, b, c := p.A/sum, p.B/sum, p.C/sum
	levels := 0
	for (1 << levels) < numVertices {
		levels++
	}
	perm := rng.Perm(1 << levels)
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		var src, dst int
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				dst |= 1
			case r < a+b+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		s, d := int(perm[src]), int(perm[dst])
		if s >= numVertices || d >= numVertices {
			continue
		}
		edges = append(edges, graph.Edge{Src: int32(s), Dst: int32(d)})
	}
	return graph.FromEdges(numVertices, edges)
}

// EnsureMinInDegree adds, for every vertex with in-degree below min, edges
// from uniformly random sources until the bound holds. GNN aggregation on
// isolated vertices is legal but uninteresting; scaled test datasets use
// min=1 so every mini-batch has non-empty neighborhoods.
func EnsureMinInDegree(g *graph.Graph, min int, rng *tensor.RNG) (*graph.Graph, error) {
	edges := g.EdgeList()
	in := g.InDegrees()
	for v := 0; v < g.NumVertices; v++ {
		for d := int(in[v]); d < min; d++ {
			src := int32(rng.Intn(g.NumVertices))
			edges = append(edges, graph.Edge{Src: src, Dst: int32(v)})
		}
	}
	return graph.FromEdges(g.NumVertices, edges)
}
