package datagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Dataset serialization: a stable little-endian binary layout so generated
// datasets can be produced once and shared across runs/machines (RMAT
// generation of multi-million-edge graphs is the slowest part of a cold
// start). Layout: magic, version, spec, CSR arrays, features, labels, split.
const (
	datasetMagic   = 0x48594453 // "HYDS"
	datasetVersion = 1
)

// Save writes the dataset.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	hdr := []uint64{datasetMagic, datasetVersion,
		uint64(d.Spec.NumVertices), uint64(d.Spec.NumEdges),
		uint64(d.Spec.TrainNodes), uint64(len(d.Spec.FeatDims)),
		uint64(len(d.Spec.Name))}
	for _, v := range hdr {
		if err := binary.Write(bw, le, v); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(d.Spec.Name); err != nil {
		return err
	}
	for _, f := range d.Spec.FeatDims {
		if err := binary.Write(bw, le, uint32(f)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, le, uint64(d.Graph.NumVertices)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, d.Graph.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint64(len(d.Graph.ColIdx))); err != nil {
		return err
	}
	if err := binary.Write(bw, le, d.Graph.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, le, d.Features.Data); err != nil {
		return err
	}
	if err := binary.Write(bw, le, d.Labels); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint64(len(d.TrainIdx))); err != nil {
		return err
	}
	if err := binary.Write(bw, le, d.TrainIdx); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadDataset reads a dataset written by Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, version, nv, ne, train, nDims, nameLen uint64
	for _, p := range []*uint64{&magic, &version, &nv, &ne, &train, &nDims, &nameLen} {
		if err := binary.Read(br, le, p); err != nil {
			return nil, err
		}
	}
	if magic != datasetMagic {
		return nil, fmt.Errorf("datagen: not a dataset file (magic %#x)", magic)
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("datagen: dataset version %d, want %d", version, datasetVersion)
	}
	if nv > 1<<34 || nDims > 64 || nameLen > 4096 {
		return nil, fmt.Errorf("datagen: implausible header (V=%d dims=%d name=%d)", nv, nDims, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	dims := make([]int, nDims)
	for i := range dims {
		var f uint32
		if err := binary.Read(br, le, &f); err != nil {
			return nil, err
		}
		dims[i] = int(f)
	}
	spec := Spec{Name: string(name), NumVertices: int64(nv), NumEdges: int64(ne),
		TrainNodes: int64(train), FeatDims: dims}

	var gv uint64
	if err := binary.Read(br, le, &gv); err != nil {
		return nil, err
	}
	g := &graph.Graph{NumVertices: int(gv), RowPtr: make([]int64, gv+1)}
	if err := binary.Read(br, le, g.RowPtr); err != nil {
		return nil, err
	}
	var nCol uint64
	if err := binary.Read(br, le, &nCol); err != nil {
		return nil, err
	}
	g.ColIdx = make([]int32, nCol)
	if err := binary.Read(br, le, g.ColIdx); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: corrupt graph in dataset: %w", err)
	}
	features := tensor.New(int(gv), dims[0])
	if err := binary.Read(br, le, features.Data); err != nil {
		return nil, err
	}
	labels := make([]int32, gv)
	if err := binary.Read(br, le, labels); err != nil {
		return nil, err
	}
	var nTrain uint64
	if err := binary.Read(br, le, &nTrain); err != nil {
		return nil, err
	}
	if nTrain > gv {
		return nil, fmt.Errorf("datagen: %d train indices for %d vertices", nTrain, gv)
	}
	trainIdx := make([]int32, nTrain)
	if err := binary.Read(br, le, trainIdx); err != nil {
		return nil, err
	}
	return &Dataset{Spec: spec, Graph: g, Features: features, Labels: labels, TrainIdx: trainIdx}, nil
}
