package datagen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGenerateRMATBasic(t *testing.T) {
	rng := tensor.NewRNG(1)
	g, err := GenerateRMAT(1000, 5000, DefaultRMAT, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1000 {
		t.Fatalf("NumVertices = %d", g.NumVertices)
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRMATRejectsBadInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := GenerateRMAT(0, 10, DefaultRMAT, rng); err == nil {
		t.Fatal("expected error for 0 vertices")
	}
	if _, err := GenerateRMAT(10, -1, DefaultRMAT, rng); err == nil {
		t.Fatal("expected error for negative edges")
	}
	if _, err := GenerateRMAT(10, 10, RMATParams{}, rng); err == nil {
		t.Fatal("expected error for zero probabilities")
	}
}

func TestGenerateRMATDeterministic(t *testing.T) {
	g1, _ := GenerateRMAT(256, 1024, DefaultRMAT, tensor.NewRNG(7))
	g2, _ := GenerateRMAT(256, 1024, DefaultRMAT, tensor.NewRNG(7))
	for i := range g1.ColIdx {
		if g1.ColIdx[i] != g2.ColIdx[i] {
			t.Fatal("RMAT not deterministic for fixed seed")
		}
	}
}

// The skewed RMAT parameterisation must produce a heavier-tailed in-degree
// distribution than uniform: top-1% vertices should hold well over 1% of
// edges.
func TestRMATIsSkewed(t *testing.T) {
	rng := tensor.NewRNG(3)
	g, err := GenerateRMAT(4096, 65536, DefaultRMAT, rng)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.InDegrees()
	sorted := make([]int32, len(deg))
	copy(sorted, deg)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	top := int64(0)
	for _, d := range sorted[:41] { // top 1%
		top += int64(d)
	}
	frac := float64(top) / float64(g.NumEdges())
	if frac < 0.05 {
		t.Fatalf("top-1%% vertices hold only %.2f%% of edges; RMAT not skewed", frac*100)
	}
}

func TestEnsureMinInDegree(t *testing.T) {
	rng := tensor.NewRNG(4)
	g, err := GenerateRMAT(500, 600, DefaultRMAT, rng)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := EnsureMinInDegree(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g2.InDegrees() {
		if d < 2 {
			t.Fatalf("vertex with in-degree %d after EnsureMinInDegree(2)", d)
		}
	}
	if g2.NumEdges() < g.NumEdges() {
		t.Fatal("EnsureMinInDegree dropped edges")
	}
}

func TestPaperSpecsMatchTable3(t *testing.T) {
	cases := []struct {
		spec Spec
		v, e int64
		f    [3]int
	}{
		{OGBNProducts, 2_449_029, 61_859_140, [3]int{100, 256, 47}},
		{OGBNPapers100M, 111_059_956, 1_615_685_872, [3]int{128, 256, 172}},
		{MAG240MHomo, 121_751_666, 1_297_748_926, [3]int{756, 256, 153}},
	}
	for _, c := range cases {
		if c.spec.NumVertices != c.v || c.spec.NumEdges != c.e {
			t.Fatalf("%s: V=%d E=%d", c.spec.Name, c.spec.NumVertices, c.spec.NumEdges)
		}
		for i, f := range c.f {
			if c.spec.FeatDims[i] != f {
				t.Fatalf("%s: f%d = %d, want %d", c.spec.Name, i, c.spec.FeatDims[i], f)
			}
		}
		if c.spec.Layers() != 2 {
			t.Fatalf("%s: Layers = %d", c.spec.Name, c.spec.Layers())
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("ogbn-products")
	if err != nil || s.NumVertices != OGBNProducts.NumVertices {
		t.Fatalf("SpecByName: %v %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestFeatureBytesMAG240M(t *testing.T) {
	// Paper §I: MAG240M is ~202 GB of features. 121.75M × 756 × 4B ≈ 368 GB
	// for float32; the released dataset uses float16 (~184 GB). Check our
	// float32 accounting is self-consistent.
	want := MAG240MHomo.NumVertices * 756 * 4
	if MAG240MHomo.FeatureBytes() != want {
		t.Fatalf("FeatureBytes = %d, want %d", MAG240MHomo.FeatureBytes(), want)
	}
}

func TestScaled(t *testing.T) {
	s := OGBNPapers100M.Scaled(100_000)
	if s.NumVertices <= 0 || s.NumEdges < s.NumVertices {
		t.Fatalf("Scaled produced degenerate spec: %+v", s)
	}
	if s.NumClasses() != OGBNPapers100M.NumClasses() {
		t.Fatal("Scaled changed feature dims")
	}
	// Tiny scale clamps to the floor.
	tiny := OGBNProducts.Scaled(1 << 40)
	if tiny.NumVertices < 64 {
		t.Fatalf("Scaled floor broken: %+v", tiny)
	}
}

func TestMaterializeRefusesFullScale(t *testing.T) {
	if _, err := Materialize(OGBNPapers100M, 0.1, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected refusal to materialise 111M vertices")
	}
}

func TestMaterializeSmall(t *testing.T) {
	spec := Spec{Name: "test", NumVertices: 300, NumEdges: 1200, FeatDims: []int{16, 8, 5}}
	ds, err := Materialize(spec, 0.5, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features.Rows != 300 || ds.Features.Cols != 16 {
		t.Fatalf("features %dx%d", ds.Features.Rows, ds.Features.Cols)
	}
	if len(ds.Labels) != 300 {
		t.Fatalf("labels %d", len(ds.Labels))
	}
	for _, l := range ds.Labels {
		if l < 0 || int(l) >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
	if len(ds.TrainIdx) != 150 {
		t.Fatalf("train split %d, want 150", len(ds.TrainIdx))
	}
	seen := map[int32]bool{}
	for _, v := range ds.TrainIdx {
		if seen[v] {
			t.Fatal("duplicate train index")
		}
		seen[v] = true
	}
	for _, d := range ds.Graph.InDegrees() {
		if d < 1 {
			t.Fatal("materialised graph has isolated vertex")
		}
	}
}

func TestMaterializeRejectsBadFraction(t *testing.T) {
	spec := Spec{Name: "t", NumVertices: 100, NumEdges: 200, FeatDims: []int{4, 4, 2}}
	if _, err := Materialize(spec, 0, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for trainFraction 0")
	}
	if _, err := Materialize(spec, 1.5, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for trainFraction > 1")
	}
}

// Features must carry class signal: same-class pairs closer than cross-class.
func TestMaterializeFeaturesCarrySignal(t *testing.T) {
	spec := Spec{Name: "sig", NumVertices: 200, NumEdges: 400, FeatDims: []int{8, 8, 3}}
	ds, err := Materialize(spec, 1.0, tensor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			d := dist(ds.Features.Row(i), ds.Features.Row(j))
			if ds.Labels[i] == ds.Labels[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate class split")
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("same-class distance %.3f >= cross-class %.3f; no signal",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestScaledTrainNodes(t *testing.T) {
	s := OGBNPapers100M.Scaled(1000)
	if s.TrainNodes != OGBNPapers100M.TrainNodes/1000 {
		t.Fatalf("TrainNodes = %d", s.TrainNodes)
	}
	if s.TrainNodes > s.NumVertices {
		t.Fatal("train split exceeds vertex count")
	}
	tiny := OGBNProducts.Scaled(1 << 40)
	if tiny.TrainNodes < 1 || tiny.TrainNodes > tiny.NumVertices {
		t.Fatalf("tiny TrainNodes = %d of %d", tiny.TrainNodes, tiny.NumVertices)
	}
}

// Property: Scaled never increases counts and keeps invariant E >= V floor.
func TestScaledProperty(t *testing.T) {
	f := func(factorRaw uint32) bool {
		factor := int64(factorRaw%1_000_000) + 1
		s := MAG240MHomo.Scaled(factor)
		return s.NumVertices <= MAG240MHomo.NumVertices &&
			s.NumEdges <= MAG240MHomo.NumEdges &&
			s.NumVertices >= 64 && s.NumEdges >= s.NumVertices
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
