package pipesim

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func model(t *testing.T, plat hw.Platform, spec datagen.Spec, kind gnn.Kind) *perfmodel.Model {
	t.Helper()
	m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(spec, kind))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error for nil model")
	}
}

func TestRunBasic(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNProducts, gnn.GCN)
	res, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, TFP: true}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochSec <= 0 {
		t.Fatal("non-positive epoch time")
	}
	if len(res.IterSec) != m.Iterations(m.InitialAssignment(true)) {
		t.Fatalf("iterations = %d", len(res.IterSec))
	}
	if res.MTEPS <= 0 {
		t.Fatal("non-positive throughput")
	}
	var sum float64
	for _, it := range res.IterSec {
		sum += it
	}
	if math.Abs(sum-res.EpochSec) > 1e-9 {
		t.Fatalf("iteration deltas %v do not sum to epoch %v", sum, res.EpochSec)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNProducts, gnn.GCN)
	a, _ := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 7, Iterations: 20})
	b, _ := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 7, Iterations: 20})
	if a.EpochSec != b.EpochSec {
		t.Fatal("simulation not deterministic for fixed seed")
	}
	c, _ := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 8, Iterations: 20})
	if a.EpochSec == c.EpochSec {
		t.Fatal("different seeds produced identical noise")
	}
}

// Overlapped execution must beat strictly sequential execution.
func TestPipeliningBeatsSequential(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNPapers100M, gnn.GCN)
	piped, err := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 1, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, NoOverlap: true}, Seed: 1, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if piped.EpochSec >= seq.EpochSec {
		t.Fatalf("pipelined %v not faster than sequential %v", piped.EpochSec, seq.EpochSec)
	}
}

// TFP must not hurt, and must help when the fused prefetch stage is the
// bottleneck (paper §IV-B / Fig. 11). MAG240M's 756-wide features make
// prefetching dominant, so the effect is visible there.
func TestTFPHelpsWhenPrefetchBound(t *testing.T) {
	// Accelerator-only training makes the feature-prefetch path (Load +
	// Trans) the clear bottleneck, which is where splitting it pays off.
	m := model(t, hw.CPUFPGAPlatform(), datagen.MAG240MHomo, gnn.GCN)
	fused, err := Run(Config{Model: m, Mode: Mode{Hybrid: false}, Seed: 2, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Run(Config{Model: m, Mode: Mode{Hybrid: false, TFP: true}, Seed: 2, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if split.EpochSec >= fused.EpochSec {
		t.Fatalf("TFP did not help on a prefetch-bound workload: %v vs %v",
			split.EpochSec, fused.EpochSec)
	}
}

// The simulator must run slower than the analytic prediction (it charges
// overheads the model omits) but within a sane factor — the Fig. 8 regime.
func TestSimulatorSlowerThanModelWithinBand(t *testing.T) {
	for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
		m := model(t, hw.CPUFPGAPlatform(), datagen.MAG240MHomo, kind)
		a := m.InitialAssignment(true)
		predicted := m.EpochTime(a)
		res, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, TFP: true}, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.EpochSec / predicted
		if ratio < 1.0 {
			t.Fatalf("%v: simulated %v faster than predicted %v", kind, res.EpochSec, predicted)
		}
		if ratio > 1.35 {
			t.Fatalf("%v: simulated/predicted = %.2f, outside the paper's error regime", kind, ratio)
		}
	}
}

// A controller that is invoked must see monotonically increasing iteration
// indices and be able to steer the assignment.
type recordingCtrl struct {
	calls []int
	last  perfmodel.Assignment
}

func (r *recordingCtrl) Adjust(i int, _ perfmodel.StageTimes, a perfmodel.Assignment) perfmodel.Assignment {
	r.calls = append(r.calls, i)
	r.last = a
	return a
}

func TestControllerInvoked(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNProducts, gnn.GCN)
	ctrl := &recordingCtrl{}
	_, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, DRM: true}, Ctrl: ctrl, Seed: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrl.calls) != 10 {
		t.Fatalf("controller called %d times, want 10", len(ctrl.calls))
	}
	for i, c := range ctrl.calls {
		if c != i {
			t.Fatal("controller iteration indices wrong")
		}
	}
	// DRM off → controller ignored.
	ctrl2 := &recordingCtrl{}
	_, err = Run(Config{Model: m, Mode: Mode{Hybrid: true}, Ctrl: ctrl2, Seed: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrl2.calls) != 0 {
		t.Fatal("controller called with DRM disabled")
	}
}

func TestZeroNoiseIsExactlyStable(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNProducts, gnn.GCN)
	res, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, TFP: true}, Seed: 1, Iterations: 30, NoiseStd: -1})
	if err != nil {
		t.Fatal(err)
	}
	// After pipeline fill, steady-state iteration deltas are identical.
	for i := 5; i < len(res.IterSec); i++ {
		if math.Abs(res.IterSec[i]-res.IterSec[4]) > 1e-12 {
			t.Fatalf("iteration %d delta %v differs from steady state %v",
				i, res.IterSec[i], res.IterSec[4])
		}
	}
}

func TestResultTrace(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNProducts, gnn.GCN)
	res, err := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 1, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 15 {
		t.Fatalf("trace length %d, want 15", len(res.Trace))
	}
	for i, st := range res.Trace {
		if st.Bottleneck() <= 0 {
			t.Fatalf("iteration %d has empty stage times", i)
		}
	}
}

// Property: the pipelined epoch is never longer than the sequential one and
// never shorter than the slowest stage sum — the max-plus recurrence bounds.
func TestPipelineBounds(t *testing.T) {
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
			m := model(t, hw.CPUFPGAPlatform(), spec, kind)
			const iters = 40
			piped, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, TFP: true}, Seed: 9, Iterations: iters, NoiseStd: -1})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Run(Config{Model: m, Mode: Mode{Hybrid: true, TFP: true, NoOverlap: true}, Seed: 9, Iterations: iters, NoiseStd: -1})
			if err != nil {
				t.Fatal(err)
			}
			if piped.EpochSec > seq.EpochSec+1e-12 {
				t.Fatalf("%s/%v: pipelined %v exceeds sequential %v", spec.Name, kind, piped.EpochSec, seq.EpochSec)
			}
			// Lower bound: iters × bottleneck stage (steady state can't beat it).
			st := m.Stages(m.InitialAssignment(true))
			if piped.EpochSec < float64(iters)*st.Bottleneck() {
				t.Fatalf("%s/%v: pipelined %v beats the bottleneck bound %v",
					spec.Name, kind, piped.EpochSec, float64(iters)*st.Bottleneck())
			}
		}
	}
}

func TestHybridBeatsAccelOnlyInSim(t *testing.T) {
	m := model(t, hw.CPUFPGAPlatform(), datagen.OGBNPapers100M, gnn.GCN)
	hyb, _ := Run(Config{Model: m, Mode: Mode{Hybrid: true}, Seed: 4, Iterations: 50})
	only, _ := Run(Config{Model: m, Mode: Mode{Hybrid: false}, Seed: 4, Iterations: 50})
	if hyb.EpochSec >= only.EpochSec {
		t.Fatalf("hybrid %v not faster than accel-only %v", hyb.EpochSec, only.EpochSec)
	}
}
