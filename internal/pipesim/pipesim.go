// Package pipesim is the execution simulator for HyScale-GNN's 4-stage
// training pipeline (paper Fig. 4/7): Sampling → Feature Loading → Data
// Transfer → GNN Propagation. It advances a max-plus recurrence over
// iterations — stage s of iteration i starts when stage s−1 of iteration i
// and stage s of iteration i−1 have both finished — which models both the
// pipeline fill and the steady state.
//
// Unlike the analytic model (internal/perfmodel), the simulator charges the
// overheads §VI-C identifies as model error: accelerator kernel-launch
// latency, dataflow pipeline flushing, per-iteration runtime coordination
// (barriers/handshakes), and measurement noise. The gap between the two is
// exactly the paper's Fig. 8 "predicted vs actual" experiment.
package pipesim

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Mode selects which of the paper's optimizations are active (the Fig. 11
// ablation axes).
type Mode struct {
	Hybrid bool // CPU trainer participates (vs. accelerator-only)
	DRM    bool // dynamic resource management adjusts the mapping at runtime
	TFP    bool // two-stage feature prefetching (split Load / Transfer stages)
	// NoOverlap disables inter-stage pipelining entirely: each iteration is
	// sample → load → transfer → train, strictly sequential. Used for the
	// PyG-style multi-GPU baseline, which trains through a synchronous
	// dataloader loop.
	NoOverlap bool
}

// Controller adjusts the task mapping between iterations; the DRM engine
// implements it. Adjust receives the stage times measured in iteration i and
// returns the assignment for iteration i+1.
type Controller interface {
	Adjust(iter int, measured perfmodel.StageTimes, a perfmodel.Assignment) perfmodel.Assignment
}

// Config drives one simulated training epoch.
type Config struct {
	Model *perfmodel.Model
	Mode  Mode
	Ctrl  Controller // nil for static mapping
	Seed  uint64
	// Iterations overrides the epoch length (0 = derive from TrainNodes).
	Iterations int
	// NoiseStd is the multiplicative measurement noise per stage.
	// Zero selects the default (0.02); pass a negative value to disable
	// noise entirely.
	NoiseStd float64
	// InitialAssign overrides the design-phase mapping the simulation starts
	// from (nil = Model.InitialAssignment). Used to study how the DRM engine
	// recovers from a naive split — e.g. uniform shares across unequal
	// devices.
	InitialAssign *perfmodel.Assignment
}

// Overhead constants the analytic model omits (paper §VI-C). The
// accelerator-side overheads (kernel launches, pipeline flush, framework
// cost) live in perfmodel.DeviceOverheads, shared with the executing
// runtime, and are charged per device here.
const (
	// runtimeBarrierUs is the per-iteration cost of the protocol handshakes
	// (DONE/ACK, condition variables) and Go/pthread scheduling.
	runtimeBarrierUs = 120.0
)

// Result reports a simulated epoch.
type Result struct {
	EpochSec    float64
	IterSec     []float64 // completion-time deltas per iteration
	MeanStages  perfmodel.StageTimes
	FinalAssign perfmodel.Assignment
	MTEPS       float64
	// Trace holds the per-iteration stage times (after overheads/noise),
	// the raw series behind the figures; feed it to trace.Recorder for CSV.
	Trace []perfmodel.StageTimes
}

// Run simulates one epoch and returns the timing result.
func Run(cfg Config) (*Result, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("pipesim: nil model")
	}
	m := cfg.Model
	assign := m.InitialAssignment(cfg.Mode.Hybrid)
	if cfg.InitialAssign != nil {
		assign = cfg.InitialAssign.Clone()
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = m.Iterations(assign)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("pipesim: zero iterations")
	}
	noiseStd := cfg.NoiseStd
	if noiseStd == 0 {
		noiseStd = 0.02
	} else if noiseStd < 0 {
		noiseStd = 0
	}
	rng := tensor.NewRNG(cfg.Seed)

	numStages := 3 // samp, prefetch(load+trans), prop
	if cfg.Mode.TFP {
		numStages = 4 // samp, load, trans, prop
	}
	prevDone := make([]float64, numStages)
	res := &Result{IterSec: make([]float64, 0, iters)}
	var sum perfmodel.StageTimes
	var totalEdges float64
	var lastFinish float64

	for i := 0; i < iters; i++ {
		st := m.Stages(assign)
		applyOverheads(&st, m.Plat, assign, rng, noiseStd)
		sum = addStages(sum, st)
		res.Trace = append(res.Trace, st)

		stages := stageVector(st, cfg.Mode.TFP)
		if cfg.Mode.NoOverlap {
			var t float64
			for _, s := range stages {
				t += s
			}
			lastFinish += t
			res.IterSec = append(res.IterSec, t)
		} else {
			done := make([]float64, numStages)
			prev := 0.0
			for s := 0; s < numStages; s++ {
				start := math.Max(prev, prevDone[s])
				done[s] = start + stages[s]
				prev = done[s]
			}
			res.IterSec = append(res.IterSec, done[numStages-1]-lastFinish)
			lastFinish = done[numStages-1]
			prevDone = done
		}

		if assign.CPUBatch > 0 {
			totalEdges += m.Work.EdgesPerBatch(assign.CPUBatch)
		}
		for _, b := range assign.AccelBatch {
			if b > 0 {
				totalEdges += m.Work.EdgesPerBatch(b)
			}
		}
		if cfg.Mode.DRM && cfg.Ctrl != nil {
			assign = cfg.Ctrl.Adjust(i, st, assign)
		}
	}
	res.EpochSec = lastFinish
	res.FinalAssign = assign
	res.MeanStages = scaleStages(sum, 1/float64(iters))
	if res.EpochSec > 0 {
		res.MTEPS = totalEdges / res.EpochSec / 1e6
	}
	return res, nil
}

// applyOverheads adds the simulator-only costs to the analytic stage times.
func applyOverheads(st *perfmodel.StageTimes, plat hw.Platform, a perfmodel.Assignment,
	rng *tensor.RNG, noiseStd float64) {
	barrier := runtimeBarrierUs * 1e-6

	// Accelerator trainers: framework overhead + kernel launches + flush,
	// charged per device through the per-device stage vector — a mixed fleet
	// pays each device's own stack, not the first device's. (For homogeneous
	// fleets this equals the old busiest-clone charge. Stages always fills
	// PerAccel when the fleet is non-empty, so this is the only path.)
	st.TrainAcc = 0
	for i := range st.PerAccel {
		if i >= len(plat.Accels) || st.PerAccel[i].Train <= 0 {
			continue
		}
		st.PerAccel[i].Train = perfmodel.DeviceOverheads(plat.Accels[i], st.PerAccel[i].Train)
		st.TrainAcc = math.Max(st.TrainAcc, st.PerAccel[i].Train)
	}
	// CPU trainer: host framework overhead.
	if st.TrainCPU > 0 {
		st.TrainCPU += plat.CPU.FrameworkOverheadMs * 1e-3
	}
	// One multiplicative noise draw per stage per iteration: the whole stage
	// jitters together (a slow iteration is slow for every device), so the
	// per-device entries share the aggregate's factor and keep the invariant
	// that the aggregates are the per-device maxima — the DRM engine's
	// intra-fleet move sees the same measurement jitter the aggregates carry.
	noiseF := func(t float64) (float64, float64) {
		if t <= 0 {
			return t, 1
		}
		f := 1 + noiseStd*rng.NormFloat64()
		return t * f, f
	}
	noise := func(t float64) float64 { n, _ := noiseF(t); return n }
	st.SampCPU = noise(st.SampCPU) + barrier
	st.SampAccel = noise(st.SampAccel)
	st.Load = noise(st.Load) + barrier
	var fTrans, fTrain float64
	st.Trans, fTrans = noiseF(st.Trans)
	st.Trans += barrier
	st.TrainCPU = noise(st.TrainCPU)
	st.TrainAcc, fTrain = noiseF(st.TrainAcc)
	st.TrainAcc += barrier
	for i := range st.PerAccel {
		if st.PerAccel[i].Trans > 0 {
			st.PerAccel[i].Trans = st.PerAccel[i].Trans*fTrans + barrier
		}
		if st.PerAccel[i].Train > 0 {
			st.PerAccel[i].Train = st.PerAccel[i].Train*fTrain + barrier
		}
	}
}

// stageVector flattens StageTimes into the pipeline's stage sequence.
func stageVector(st perfmodel.StageTimes, tfp bool) []float64 {
	samp := math.Max(st.SampCPU, st.SampAccel)
	prop := math.Max(st.TrainCPU, st.TrainAcc) + st.Sync
	if tfp {
		return []float64{samp, st.Load, st.Trans, prop}
	}
	return []float64{samp, st.Load + st.Trans, prop}
}

func addStages(a, b perfmodel.StageTimes) perfmodel.StageTimes {
	out := perfmodel.StageTimes{
		SampCPU:   a.SampCPU + b.SampCPU,
		SampAccel: a.SampAccel + b.SampAccel,
		Load:      a.Load + b.Load,
		Trans:     a.Trans + b.Trans,
		TrainCPU:  a.TrainCPU + b.TrainCPU,
		TrainAcc:  a.TrainAcc + b.TrainAcc,
		Sync:      a.Sync + b.Sync,
	}
	if len(b.PerAccel) > 0 {
		out.PerAccel = make([]perfmodel.DeviceStage, len(b.PerAccel))
		for i, d := range b.PerAccel {
			out.PerAccel[i] = d
			if i < len(a.PerAccel) {
				out.PerAccel[i].Trans += a.PerAccel[i].Trans
				out.PerAccel[i].Train += a.PerAccel[i].Train
			}
		}
	}
	return out
}

func scaleStages(a perfmodel.StageTimes, s float64) perfmodel.StageTimes {
	out := perfmodel.StageTimes{
		SampCPU:   a.SampCPU * s,
		SampAccel: a.SampAccel * s,
		Load:      a.Load * s,
		Trans:     a.Trans * s,
		TrainCPU:  a.TrainCPU * s,
		TrainAcc:  a.TrainAcc * s,
		Sync:      a.Sync * s,
	}
	if len(a.PerAccel) > 0 {
		out.PerAccel = make([]perfmodel.DeviceStage, len(a.PerAccel))
		for i, d := range a.PerAccel {
			out.PerAccel[i] = perfmodel.DeviceStage{Trans: d.Trans * s, Train: d.Train * s}
		}
	}
	return out
}
