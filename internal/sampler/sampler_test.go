package sampler

import (
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func testGraph(t *testing.T, v, e int, seed uint64) *graph.Graph {
	t.Helper()
	rng := tensor.NewRNG(seed)
	g, err := datagen.GenerateRMAT(v, e, datagen.DefaultRMAT, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err = datagen.EnsureMinInDegree(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t, 100, 400, 1)
	if _, err := New(g, nil, nil); err == nil {
		t.Fatal("expected error for no fanouts")
	}
	if _, err := New(g, []int{5, -1}, nil); err == nil {
		t.Fatal("expected error for negative fanout")
	}
	if _, err := New(g, []int{5, 0}, nil); err != nil {
		t.Fatalf("fanout 0 (take-all) must be accepted: %v", err)
	}
	if _, err := New(g, []int{5}, make([]int32, 3)); err == nil {
		t.Fatal("expected error for label length mismatch")
	}
}

func TestSampleStructure(t *testing.T) {
	g := testGraph(t, 500, 3000, 2)
	labels := make([]int32, 500)
	for i := range labels {
		labels[i] = int32(i % 7)
	}
	s, err := New(g, []int{25, 10}, labels)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	targets := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	mb, err := s.Sample(targets, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(mb.Blocks))
	}
	for l, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", l, err)
		}
	}
	// Output block dst == targets.
	out := mb.Blocks[1]
	if len(out.Dst) != len(targets) {
		t.Fatalf("output dst %d", len(out.Dst))
	}
	for i := range targets {
		if out.Dst[i] != targets[i] {
			t.Fatal("output dst != targets")
		}
	}
	// Chaining: block0.Dst == block1.Src.
	if len(mb.Blocks[0].Dst) != len(mb.Blocks[1].Src) {
		t.Fatal("layer chaining broken")
	}
	for i := range mb.Blocks[0].Dst {
		if mb.Blocks[0].Dst[i] != mb.Blocks[1].Src[i] {
			t.Fatal("layer chaining content broken")
		}
	}
	// Labels extracted for targets.
	for i, v := range targets {
		if mb.Labels[i] != labels[v] {
			t.Fatal("labels wrong")
		}
	}
	if mb.EdgesTraversed() == 0 {
		t.Fatal("no edges sampled")
	}
	if len(mb.InputNodes()) < len(targets) {
		t.Fatal("input nodes smaller than targets")
	}
}

func TestSampleFanoutBound(t *testing.T) {
	g := testGraph(t, 300, 6000, 4)
	s, _ := New(g, []int{3, 2}, nil)
	rng := tensor.NewRNG(5)
	mb, err := s.Sample([]int32{0, 1, 2, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for l, b := range mb.Blocks {
		fanout := s.Fanouts[l]
		for d := 0; d < len(b.Dst); d++ {
			deg := int(b.RowPtr[d+1] - b.RowPtr[d])
			if deg > fanout {
				t.Fatalf("block %d dst %d sampled %d > fanout %d", l, d, deg, fanout)
			}
			full := g.Degree(b.Dst[d])
			if full <= fanout && deg != full {
				t.Fatalf("block %d dst %d: degree %d <= fanout but sampled %d", l, d, full, deg)
			}
		}
	}
}

func TestSampleNeighborsDistinctAndReal(t *testing.T) {
	g := testGraph(t, 200, 4000, 6)
	s, _ := New(g, []int{5}, nil)
	rng := tensor.NewRNG(7)
	mb, err := s.Sample([]int32{10, 20, 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := mb.Blocks[0]
	for d := 0; d < len(b.Dst); d++ {
		seen := map[int32]bool{}
		nbrs := map[int32]bool{}
		for _, u := range g.Neighbors(b.Dst[d]) {
			nbrs[u] = true
		}
		for _, c := range b.Col[b.RowPtr[d]:b.RowPtr[d+1]] {
			u := b.Src[c]
			if !nbrs[u] {
				t.Fatalf("sampled non-neighbor %d for dst %d", u, b.Dst[d])
			}
			// Distinctness only guaranteed when the graph itself has no
			// duplicate edges; RMAT can produce duplicates, so only check
			// duplicates beyond multiplicity are absent via count.
			_ = seen
		}
	}
}

func TestSampleRejectsBadTargets(t *testing.T) {
	g := testGraph(t, 50, 100, 8)
	s, _ := New(g, []int{5}, nil)
	rng := tensor.NewRNG(9)
	if _, err := s.Sample(nil, rng); err == nil {
		t.Fatal("expected error for empty targets")
	}
	if _, err := s.Sample([]int32{99}, rng); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestSampleDeterministic(t *testing.T) {
	g := testGraph(t, 400, 4000, 10)
	s, _ := New(g, []int{10, 5}, nil)
	mb1, _ := s.Sample([]int32{1, 2, 3}, tensor.NewRNG(42))
	mb2, _ := s.Sample([]int32{1, 2, 3}, tensor.NewRNG(42))
	if mb1.EdgesTraversed() != mb2.EdgesTraversed() {
		t.Fatal("sampling not deterministic")
	}
	for l := range mb1.Blocks {
		a, b := mb1.Blocks[l], mb2.Blocks[l]
		if len(a.Src) != len(b.Src) {
			t.Fatal("Src differs")
		}
		for i := range a.Src {
			if a.Src[i] != b.Src[i] {
				t.Fatal("Src content differs")
			}
		}
	}
}

func TestSortedEdgesBySource(t *testing.T) {
	g := testGraph(t, 300, 3000, 11)
	s, _ := New(g, []int{8}, nil)
	mb, _ := s.Sample([]int32{5, 6, 7, 8, 9}, tensor.NewRNG(12))
	edges := mb.Blocks[0].SortedEdgesBySource()
	if len(edges) != mb.Blocks[0].NumEdges() {
		t.Fatal("edge count changed by sort")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Src < edges[i-1].Src {
			t.Fatal("not sorted by source")
		}
	}
}

func TestBatcherCoversEpoch(t *testing.T) {
	train := []int32{0, 1, 2, 3, 4, 5, 6}
	b, err := NewBatcher(train, 3, tensor.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if b.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch = %d", b.BatchesPerEpoch())
	}
	seen := map[int32]int{}
	total := 0
	for i := 0; i < b.BatchesPerEpoch(); i++ {
		batch := b.Next()
		total += len(batch)
		for _, v := range batch {
			seen[v]++
		}
	}
	if total != 7 || len(seen) != 7 {
		t.Fatalf("epoch covered %d items, %d distinct", total, len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d seen %d times in one epoch", v, c)
		}
	}
	// Next epoch reshuffles and keeps working.
	if len(b.Next()) != 3 {
		t.Fatal("second epoch broken")
	}
}

func TestBatcherValidation(t *testing.T) {
	if _, err := NewBatcher(nil, 4, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for empty train set")
	}
	if _, err := NewBatcher([]int32{1}, 0, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for zero batch size")
	}
}

func TestExpectedSizesShape(t *testing.T) {
	vl, el := ExpectedSizes(1e8, 15, 1024, []int{25, 10})
	if len(vl) != 3 || len(el) != 2 {
		t.Fatalf("lengths %d %d", len(vl), len(el))
	}
	if vl[2] != 1024 {
		t.Fatalf("vl[L] = %v", vl[2])
	}
	// Output layer: 1024 targets × 10 fanout.
	if el[1] != 1024*10 {
		t.Fatalf("el[1] = %v", el[1])
	}
	// Input layer edges ≈ |V1| × 25; V1 slightly below 1024+10240 after dedup.
	if el[0] <= el[1] || vl[0] <= vl[1] || vl[1] <= vl[2] {
		t.Fatalf("sizes not growing inward: vl=%v el=%v", vl, el)
	}
	// Monotone bound: each vl below the draw count.
	if vl[1] > 1024*11 {
		t.Fatalf("vl[1] = %v exceeds draw bound", vl[1])
	}
}

func TestExpectedSizesCapsAtAvgDegree(t *testing.T) {
	// avg degree 3 < fanout 25: expected edges limited by degree.
	_, el := ExpectedSizes(1e6, 3, 100, []int{25})
	if el[0] != 300 {
		t.Fatalf("el[0] = %v, want 300", el[0])
	}
}

func TestExpectedSizesSmallGraphSaturates(t *testing.T) {
	vl, _ := ExpectedSizes(50, 10, 1024, []int{25, 10})
	for _, v := range vl {
		if v > 50 {
			t.Fatalf("expected distinct vertices %v exceeds graph size", v)
		}
	}
}

// Property: sampled blocks always validate and respect fanout, over random
// graphs, fanouts and batches.
func TestSampleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 30 + rng.Intn(300)
		g, err := datagen.GenerateRMAT(n, n*4, datagen.DefaultRMAT, rng)
		if err != nil {
			return false
		}
		g, err = datagen.EnsureMinInDegree(g, 1, rng)
		if err != nil {
			return false
		}
		fanouts := []int{1 + rng.Intn(10), 1 + rng.Intn(10)}
		s, err := New(g, fanouts, nil)
		if err != nil {
			return false
		}
		batch := make([]int32, 1+rng.Intn(16))
		for i := range batch {
			batch[i] = int32(rng.Intn(n))
		}
		mb, err := s.Sample(batch, rng)
		if err != nil {
			return false
		}
		for l, b := range mb.Blocks {
			if b.Validate() != nil {
				return false
			}
			for d := 0; d < len(b.Dst); d++ {
				if int(b.RowPtr[d+1]-b.RowPtr[d]) > fanouts[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFullGraphBlock(t *testing.T) {
	g := testGraph(t, 300, 1500, 9)
	b, err := FullGraphBlock(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Src) != 300 || len(b.Dst) != 300 {
		t.Fatalf("block covers %d/%d vertices", len(b.Src), len(b.Dst))
	}
	if int64(b.NumEdges()) != g.NumEdges() {
		t.Fatalf("block has %d edges, graph %d", b.NumEdges(), g.NumEdges())
	}
	// Every destination's edge list must equal its in-neighbor list.
	for v := int32(0); v < 20; v++ {
		nbrs := g.Neighbors(v)
		got := b.Col[b.RowPtr[v]:b.RowPtr[v+1]]
		if len(got) != len(nbrs) {
			t.Fatalf("vertex %d: %d edges, want %d", v, len(got), len(nbrs))
		}
		for i := range got {
			if got[i] != nbrs[i] {
				t.Fatalf("vertex %d edge %d: %d, want %d", v, i, got[i], nbrs[i])
			}
		}
	}
}

// Fanout 0 must take every neighbor: the sampled block's per-destination
// degree equals the graph degree, for every layer.
func TestZeroFanoutIsExact(t *testing.T) {
	g := testGraph(t, 200, 1000, 10)
	rng := tensor.NewRNG(11)
	s, err := New(g, []int{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Sample([]int32{3, 77, 150}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for l, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
		for d, v := range b.Dst {
			if got, want := int(b.RowPtr[d+1]-b.RowPtr[d]), g.Degree(v); got != want {
				t.Fatalf("layer %d vertex %d: %d sampled of %d neighbors", l, v, got, want)
			}
		}
	}
}

// TestSortedEdgesBySourceIntoReusesBuffer pins the reuse contract of the
// Into variant: a buffer of sufficient capacity is refilled in place and the
// result matches the allocating form.
func TestSortedEdgesBySourceIntoReusesBuffer(t *testing.T) {
	b := &Block{
		Src:    []int32{0, 1, 2, 3},
		Dst:    []int32{0, 1},
		RowPtr: []int32{0, 2, 4},
		Col:    []int32{3, 1, 2, 3},
	}
	want := b.SortedEdgesBySource()
	buf := make([]graph.Edge, 0, 16)
	got := b.SortedEdgesBySourceInto(buf)
	if &got[0:cap(got)][cap(got)-1] != &buf[0:cap(buf)][cap(buf)-1] {
		t.Fatal("Into variant did not reuse the provided buffer")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// mbEqual compares two mini-batches field by field, bitwise.
func mbEqual(t *testing.T, a, b *MiniBatch) {
	t.Helper()
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block count %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	eq32 := func(what string, x, y []int32) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s length %d vs %d", what, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s differs at %d: %d vs %d", what, i, x[i], y[i])
			}
		}
	}
	for l := range a.Blocks {
		x, y := a.Blocks[l], b.Blocks[l]
		eq32("Src", x.Src, y.Src)
		eq32("Dst", x.Dst, y.Dst)
		eq32("RowPtr", x.RowPtr, y.RowPtr)
		eq32("Col", x.Col, y.Col)
	}
	eq32("Targets", a.Targets, b.Targets)
	eq32("Labels", a.Labels, b.Labels)
}

// SampleInto must consume the rng exactly like Sample and produce a
// bitwise-identical mini-batch — including when the batch is reused across
// calls with different targets and fanout-0 (take-all) layers.
func TestSampleIntoMatchesSample(t *testing.T) {
	g := testGraph(t, 400, 4000, 20)
	labels := make([]int32, 400)
	for i := range labels {
		labels[i] = int32(i % 5)
	}
	for _, fanouts := range [][]int{{10, 5}, {0, 3}, {4}} {
		s1, err := New(g, fanouts, labels)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := New(g, fanouts, labels)
		rng1 := tensor.NewRNG(99)
		rng2 := tensor.NewRNG(99)
		mb2 := &MiniBatch{}
		for round := 0; round < 5; round++ {
			targets := make([]int32, 3+round*7)
			for i := range targets {
				targets[i] = int32((i*13 + round*31) % 400)
			}
			mb1, err := s1.Sample(targets, rng1)
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.SampleInto(mb2, targets, rng2); err != nil {
				t.Fatal(err)
			}
			for l, b := range mb2.Blocks {
				if err := b.Validate(); err != nil {
					t.Fatalf("fanouts %v round %d block %d: %v", fanouts, round, l, err)
				}
			}
			mbEqual(t, mb1, mb2)
		}
	}
}

// Interleaving Sample and SampleInto on the same sampler must also agree:
// the two paths share rng consumption, so a recorded trajectory is
// reproducible regardless of which entry point each step used.
func TestSampleIntoSharesRNGStream(t *testing.T) {
	g := testGraph(t, 300, 3000, 21)
	s, _ := New(g, []int{8, 4}, nil)
	sRef, _ := New(g, []int{8, 4}, nil)
	rng := tensor.NewRNG(7)
	rngRef := tensor.NewRNG(7)
	mb := &MiniBatch{}
	targets := []int32{5, 60, 155, 250}
	for step := 0; step < 6; step++ {
		want, err := sRef.Sample(targets, rngRef)
		if err != nil {
			t.Fatal(err)
		}
		if step%2 == 0 {
			if err := s.SampleInto(mb, targets, rng); err != nil {
				t.Fatal(err)
			}
			mbEqual(t, want, mb)
		} else {
			got, err := s.Sample(targets, rng)
			if err != nil {
				t.Fatal(err)
			}
			mbEqual(t, want, got)
		}
	}
}

func TestSampleIntoRejectsBadTargets(t *testing.T) {
	g := testGraph(t, 50, 100, 22)
	s, _ := New(g, []int{5}, nil)
	rng := tensor.NewRNG(9)
	mb := &MiniBatch{}
	if err := s.SampleInto(mb, nil, rng); err == nil {
		t.Fatal("expected error for empty targets")
	}
	if err := s.SampleInto(mb, []int32{99}, rng); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

// The generation stamp must survive wrap-around: force gen to the edge and
// confirm sampling stays correct (stale stamps cleared, not resurrected).
func TestSampleIntoGenerationWrap(t *testing.T) {
	g := testGraph(t, 200, 2000, 23)
	s, _ := New(g, []int{6, 3}, nil)
	sRef, _ := New(g, []int{6, 3}, nil)
	targets := []int32{1, 50, 101, 180}
	mb := &MiniBatch{}
	// Prime the scratch arrays so stamps exist, then force the wrap edge.
	if err := s.SampleInto(mb, targets, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	s.gen = ^uint32(0) - 1 // next two layers hit max then wrap to 1
	if err := s.SampleInto(mb, targets, tensor.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	want, err := sRef.Sample(targets, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	mbEqual(t, want, mb)
}

// A warm sampler + mini-batch pair must sample without allocating.
func TestSampleIntoZeroAlloc(t *testing.T) {
	g := testGraph(t, 500, 5000, 24)
	labels := make([]int32, 500)
	s, _ := New(g, []int{10, 5}, labels)
	rng := tensor.NewRNG(3)
	mb := &MiniBatch{}
	targets := []int32{2, 30, 77, 140, 256, 300, 401, 499}
	for i := 0; i < 10; i++ { // warm: grow block storage to steady state
		if err := s.SampleInto(mb, targets, rng); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.SampleInto(mb, targets, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocated %.1f times per call, want 0", allocs)
	}
}
