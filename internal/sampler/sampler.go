// Package sampler implements mini-batch neighbor sampling (GraphSAGE,
// Hamilton et al.) producing layered message-flow blocks, plus the
// expected-size model the performance model (paper §V) uses to reason about
// full-scale datasets without materialising them.
package sampler

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Block is one bipartite layer of a mini-batch: messages flow from the Src
// vertex set to the Dst vertex set. Dst is always a prefix of Src (every
// destination also appears as a source so self-features are available for
// GraphSAGE's concat and GCN's self loop). Edges are stored CSC-style over
// destinations; Col holds *local* indices into Src.
type Block struct {
	Src    []int32 // global vertex IDs; Src[:len(Dst)] == Dst
	Dst    []int32 // global vertex IDs of this layer's targets
	RowPtr []int32 // len(Dst)+1
	Col    []int32 // local src indices, len == NumEdges()
}

// NumEdges returns the number of sampled edges in the block.
func (b *Block) NumEdges() int { return len(b.Col) }

// Validate checks the structural invariants of a block.
func (b *Block) Validate() error {
	if len(b.Src) < len(b.Dst) {
		return fmt.Errorf("sampler: |Src|=%d < |Dst|=%d", len(b.Src), len(b.Dst))
	}
	for i := range b.Dst {
		if b.Src[i] != b.Dst[i] {
			return fmt.Errorf("sampler: Dst not a prefix of Src at %d", i)
		}
	}
	if len(b.RowPtr) != len(b.Dst)+1 {
		return fmt.Errorf("sampler: RowPtr len %d, want %d", len(b.RowPtr), len(b.Dst)+1)
	}
	if b.RowPtr[0] != 0 || int(b.RowPtr[len(b.Dst)]) != len(b.Col) {
		return fmt.Errorf("sampler: RowPtr endpoints wrong")
	}
	for i := 0; i < len(b.Dst); i++ {
		if b.RowPtr[i+1] < b.RowPtr[i] {
			return fmt.Errorf("sampler: RowPtr not monotone at %d", i)
		}
	}
	for _, c := range b.Col {
		if c < 0 || int(c) >= len(b.Src) {
			return fmt.Errorf("sampler: Col index %d out of range [0,%d)", c, len(b.Src))
		}
	}
	return nil
}

// FullGraphBlock presents the whole graph as one Block: every vertex is both
// a source and a destination (local index == global ID) and the edge list is
// the graph's CSR adjacency. It lets exact full-graph propagation run through
// the same layer kernels as sampled mini-batches. The Col slice aliases the
// graph's ColIdx; callers must not mutate it.
func FullGraphBlock(g *graph.Graph) (*Block, error) {
	if g.NumEdges() > math.MaxInt32 {
		return nil, fmt.Errorf("sampler: graph with %d edges exceeds block index range", g.NumEdges())
	}
	n := g.NumVertices
	ids := make([]int32, n)
	rowPtr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		ids[v] = int32(v)
		rowPtr[v+1] = int32(g.RowPtr[v+1])
	}
	return &Block{Src: ids, Dst: ids, RowPtr: rowPtr, Col: g.ColIdx}, nil
}

// SortedEdgesBySource returns the block's edges (in local indices) ordered by
// source, the layout the accelerator scatter-gather kernel consumes.
func (b *Block) SortedEdgesBySource() []graph.Edge {
	return b.SortedEdgesBySourceInto(nil)
}

// SortedEdgesBySourceInto is SortedEdgesBySource into a reused buffer: the
// buffer grows to the largest block seen and then stops allocating. buf may
// be nil or any capacity; the filled, sorted slice is returned. (The FPGA
// training backend needs the per-edge weights aligned with this order, so
// it applies the same reuse pattern to a weighted edge list instead — see
// accel.backendScratch.sortedWeightedEdges.)
func (b *Block) SortedEdgesBySourceInto(buf []graph.Edge) []graph.Edge {
	if cap(buf) < len(b.Col) {
		buf = make([]graph.Edge, 0, len(b.Col))
	}
	buf = buf[:0]
	for d := 0; d < len(b.Dst); d++ {
		for _, s := range b.Col[b.RowPtr[d]:b.RowPtr[d+1]] {
			buf = append(buf, graph.Edge{Src: s, Dst: int32(d)})
		}
	}
	return graph.SortEdgesBySourceInPlace(buf)
}

// MiniBatch is an L-layer computational graph. Blocks[0] is the input-most
// layer (its Src is V0, the vertices whose raw features are gathered);
// Blocks[L-1].Dst are the target vertices VL.
type MiniBatch struct {
	Blocks  []*Block
	Targets []int32
	Labels  []int32
}

// InputNodes returns V0, the vertices whose features must be loaded.
func (mb *MiniBatch) InputNodes() []int32 { return mb.Blocks[0].Src }

// EdgesTraversed returns Σ_l |E_l|, the numerator of the paper's MTEPS
// throughput metric (Eq. 5).
func (mb *MiniBatch) EdgesTraversed() int64 {
	var total int64
	for _, b := range mb.Blocks {
		total += int64(b.NumEdges())
	}
	return total
}

// Sampler draws mini-batches from a graph using per-layer neighbor fanouts.
// Fanouts[0] applies to the input-most layer. The paper uses (25, 10) with
// batch size 1024. A fanout of 0 disables sampling for that layer: every
// neighbor is taken, making propagation over the batch exact (the limit the
// sampled estimate converges to as fanouts grow).
type Sampler struct {
	G       *graph.Graph
	Fanouts []int
	Labels  []int32

	// SampleInto's reusable lookup state (built lazily on first use). The
	// global→local vertex map is a pair of O(|V|) arrays stamped with a
	// per-layer generation instead of the per-call map Sample allocates:
	// visited[v] == gen marks v as present in the current layer with local
	// index local[v]. Bumping gen invalidates every entry in O(1); on the
	// (once per 4 billion layers) wrap the stamps are cleared. A Sampler
	// whose SampleInto is used is therefore NOT safe for concurrent
	// sampling — concurrent paths (serving worker fleets) either use the
	// allocating Sample or own a Sampler each, mirroring the Workspace
	// arena's ownership discipline.
	gen     uint32
	visited []uint32
	local   []int32
	scratch []int32 // reservoir buffer, sized max(Fanouts)
}

// New creates a sampler. Fanouts must be non-negative; 0 means "no sampling,
// take all neighbors" for that layer.
func New(g *graph.Graph, fanouts []int, labels []int32) (*Sampler, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("sampler: no fanouts")
	}
	for _, f := range fanouts {
		if f < 0 {
			return nil, fmt.Errorf("sampler: negative fanout %d", f)
		}
	}
	if labels != nil && len(labels) != g.NumVertices {
		return nil, fmt.Errorf("sampler: %d labels for %d vertices", len(labels), g.NumVertices)
	}
	return &Sampler{G: g, Fanouts: fanouts, Labels: labels}, nil
}

// Sample draws one mini-batch for the given target vertices. Sampling per
// destination is without replacement: if a vertex has degree ≤ fanout all
// neighbors are taken, otherwise a uniform `fanout`-subset is drawn
// (reservoir sampling). Deterministic given rng state.
func (s *Sampler) Sample(targets []int32, rng *tensor.RNG) (*MiniBatch, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("sampler: empty target set")
	}
	for _, v := range targets {
		if v < 0 || int(v) >= s.G.NumVertices {
			return nil, fmt.Errorf("sampler: target %d out of range", v)
		}
	}
	L := len(s.Fanouts)
	blocks := make([]*Block, L)
	frontier := append([]int32(nil), targets...)
	// Sample from the output layer inward: block L-1 first.
	for l := L - 1; l >= 0; l-- {
		blk := s.sampleLayer(frontier, s.Fanouts[l], rng)
		blocks[l] = blk
		frontier = blk.Src
	}
	mb := &MiniBatch{Blocks: blocks, Targets: append([]int32(nil), targets...)}
	if s.Labels != nil {
		mb.Labels = make([]int32, len(targets))
		for i, v := range targets {
			mb.Labels[i] = s.Labels[v]
		}
	}
	return mb, nil
}

// sampleLayer builds one block: for each dst in frontier, sample up to
// fanout in-neighbors.
func (s *Sampler) sampleLayer(frontier []int32, fanout int, rng *tensor.RNG) *Block {
	dst := frontier
	src := append([]int32(nil), dst...)
	local := make(map[int32]int32, len(dst)*2)
	for i, v := range dst {
		local[v] = int32(i)
	}
	rowPtr := make([]int32, len(dst)+1)
	col := make([]int32, 0, len(dst)*max(fanout, 1))
	scratch := make([]int32, fanout)
	for i, v := range dst {
		nbrs := s.G.Neighbors(v)
		chosen := nbrs // fanout 0: exact neighborhood, no sampling
		if fanout > 0 {
			chosen = sampleWithoutReplacement(nbrs, fanout, scratch, rng)
		}
		for _, u := range chosen {
			li, ok := local[u]
			if !ok {
				li = int32(len(src))
				src = append(src, u)
				local[u] = li
			}
			col = append(col, li)
		}
		rowPtr[i+1] = int32(len(col))
	}
	return &Block{Src: src, Dst: dst, RowPtr: rowPtr, Col: col}
}

// SampleInto is Sample into caller-retained storage: the mini-batch's
// blocks, targets and labels are rebuilt in place, reusing their backing
// arrays, so a warm sampler+batch pair samples with zero allocations. The
// rng consumption is identical to Sample — given the same rng state both
// produce bitwise-identical mini-batches — so trajectories recorded with
// one are reproducible with the other. mb must not be in use elsewhere
// (the serving pipeline and the training engine each retain their own).
// Not safe for concurrent use; see the Sampler field docs.
func (s *Sampler) SampleInto(mb *MiniBatch, targets []int32, rng *tensor.RNG) error {
	if len(targets) == 0 {
		return fmt.Errorf("sampler: empty target set")
	}
	for _, v := range targets {
		if v < 0 || int(v) >= s.G.NumVertices {
			return fmt.Errorf("sampler: target %d out of range", v)
		}
	}
	s.ensureScratch()
	L := len(s.Fanouts)
	for len(mb.Blocks) < L {
		mb.Blocks = append(mb.Blocks, &Block{})
	}
	mb.Blocks = mb.Blocks[:L]
	for l, b := range mb.Blocks {
		if b == nil {
			mb.Blocks[l] = &Block{}
		}
	}
	// Self-append is safe here even when targets aliases mb.Targets.
	mb.Targets = append(mb.Targets[:0], targets...)
	frontier := mb.Targets
	for l := L - 1; l >= 0; l-- {
		s.sampleLayerInto(mb.Blocks[l], frontier, s.Fanouts[l], rng)
		frontier = mb.Blocks[l].Src
	}
	mb.Labels = mb.Labels[:0]
	if s.Labels != nil {
		for _, v := range targets {
			mb.Labels = append(mb.Labels, s.Labels[v])
		}
	}
	return nil
}

// ensureScratch lazily builds the O(|V|) lookup arrays and the reservoir
// buffer SampleInto needs.
func (s *Sampler) ensureScratch() {
	if s.visited == nil {
		s.visited = make([]uint32, s.G.NumVertices)
		s.local = make([]int32, s.G.NumVertices)
	}
	maxF := 0
	for _, f := range s.Fanouts {
		if f > maxF {
			maxF = f
		}
	}
	if len(s.scratch) < maxF {
		s.scratch = make([]int32, maxF)
	}
}

// sampleLayerInto is sampleLayer into reused block storage, with the
// per-layer map replaced by the sampler's generation-stamped arrays. The
// iteration order — and so the rng draw order and the local index
// assignment (last write wins for duplicate destinations, first
// occurrence wins for shared sources) — matches sampleLayer exactly.
func (s *Sampler) sampleLayerInto(blk *Block, frontier []int32, fanout int, rng *tensor.RNG) {
	nDst := len(frontier)
	blk.Src = append(blk.Src[:0], frontier...)
	s.gen++
	if s.gen == 0 { // stamp wrap: clear and restart at 1
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.gen = 1
	}
	for i, v := range frontier {
		s.visited[v] = s.gen
		s.local[v] = int32(i)
	}
	blk.RowPtr = append(blk.RowPtr[:0], 0)
	blk.Col = blk.Col[:0]
	for _, v := range frontier {
		nbrs := s.G.Neighbors(v)
		chosen := nbrs // fanout 0: exact neighborhood, no sampling
		if fanout > 0 {
			chosen = sampleWithoutReplacement(nbrs, fanout, s.scratch[:fanout], rng)
		}
		for _, u := range chosen {
			li := s.local[u]
			if s.visited[u] != s.gen {
				li = int32(len(blk.Src))
				blk.Src = append(blk.Src, u)
				s.visited[u] = s.gen
				s.local[u] = li
			}
			blk.Col = append(blk.Col, li)
		}
		blk.RowPtr = append(blk.RowPtr, int32(len(blk.Col)))
	}
	// Src may have been reallocated by the appends above; derive the Dst
	// prefix only now that it is final.
	blk.Dst = blk.Src[:nDst]
}

// nbrs chosen uniformly. When len(nbrs) > k it uses reservoir sampling into
// scratch (len ≥ k) to avoid copying the full neighbor list.
func sampleWithoutReplacement(nbrs []int32, k int, scratch []int32, rng *tensor.RNG) []int32 {
	if len(nbrs) <= k {
		return nbrs
	}
	res := scratch[:k]
	copy(res, nbrs[:k])
	for i := k; i < len(nbrs); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = nbrs[i]
		}
	}
	return res
}

// Batcher iterates epochs over a training set in shuffled fixed-size batches
// of target vertices (the last short batch of an epoch is kept).
type Batcher struct {
	trainIdx  []int32
	batchSize int
	rng       *tensor.RNG
	order     []int32
	cursor    int
}

// NewBatcher creates a batcher over trainIdx with the given batch size.
func NewBatcher(trainIdx []int32, batchSize int, rng *tensor.RNG) (*Batcher, error) {
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("sampler: empty training set")
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("sampler: batch size %d", batchSize)
	}
	b := &Batcher{trainIdx: trainIdx, batchSize: batchSize, rng: rng}
	b.reshuffle()
	return b, nil
}

func (b *Batcher) reshuffle() {
	perm := b.rng.Perm(len(b.trainIdx))
	b.order = make([]int32, len(b.trainIdx))
	for i, p := range perm {
		b.order[i] = b.trainIdx[p]
	}
	b.cursor = 0
}

// BatchesPerEpoch returns the number of batches in one epoch.
func (b *Batcher) BatchesPerEpoch() int {
	return (len(b.trainIdx) + b.batchSize - 1) / b.batchSize
}

// Next returns the next batch of targets, reshuffling at epoch boundaries.
// The returned slice must not be mutated.
func (b *Batcher) Next() []int32 {
	if b.cursor >= len(b.order) {
		b.reshuffle()
	}
	end := b.cursor + b.batchSize
	if end > len(b.order) {
		end = len(b.order)
	}
	out := b.order[b.cursor:end]
	b.cursor = end
	return out
}

// ExpectedSizes estimates E[|V_l|] and E[|E_l|] for a full-scale dataset
// spec without materialising it, assuming batchSize targets, the given
// fanouts, and average degree Ē = E/V. Duplicate-vertex collapse is modeled
// with the birthday-collision expectation: k uniform draws from N vertices
// yield N(1 − (1−1/N)^k) distinct. Layer index 0 is the input-most layer, as
// in MiniBatch.Blocks. vl[l] is |Dst| of block l... vl has length L+1 with
// vl[L] = batchSize (targets) and vl[0] = |V0| (input nodes).
func ExpectedSizes(numVertices, avgDegree float64, batchSize int, fanouts []int) (vl []float64, el []float64) {
	L := len(fanouts)
	vl = make([]float64, L+1)
	el = make([]float64, L)
	vl[L] = math.Min(float64(batchSize), numVertices) // targets are distinct vertices
	for l := L - 1; l >= 0; l-- {
		f := math.Min(float64(fanouts[l]), avgDegree)
		if fanouts[l] <= 0 { // fanout 0 takes every neighbor
			f = avgDegree
		}
		el[l] = vl[l+1] * f
		draws := el[l] + vl[l+1] // sampled sources plus the dst prefix
		vl[l] = distinctOf(draws, numVertices)
	}
	return vl, el
}

// distinctOf returns E[#distinct] of k uniform draws from n items.
func distinctOf(k, n float64) float64 {
	if n <= 0 {
		return 0
	}
	d := n * (1 - math.Pow(1-1/n, k))
	return math.Min(d, k)
}
