package sampler

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// SaintSampler implements GraphSAINT's random-walk subgraph sampling (Zeng
// et al., ICLR'20 — the paper's reference [29] and the second sampling
// algorithm §V's profiling-based sampling model anticipates). Instead of
// layered neighbor expansion, it samples root vertices, runs fixed-length
// random walks over *in*-edges, and induces the subgraph on all visited
// vertices; the GNN then trains on every vertex of the subgraph.
//
// The produced MiniBatch reuses the layered Block structure with Src == Dst
// (the induced vertex set) in every layer and the induced adjacency repeated
// per layer, so the same trainers, protocol and timing model apply without
// modification — which is exactly the portability the aggregate-update
// paradigm buys.
type SaintSampler struct {
	G       *graph.Graph
	Roots   int // random-walk roots per mini-batch
	WalkLen int // steps per walk
	Layers  int // GNN depth the mini-batch must serve
	Labels  []int32
}

// NewSaint validates and builds a GraphSAINT sampler.
func NewSaint(g *graph.Graph, roots, walkLen, layers int, labels []int32) (*SaintSampler, error) {
	if roots <= 0 || walkLen <= 0 || layers <= 0 {
		return nil, fmt.Errorf("sampler: saint config roots=%d walk=%d layers=%d", roots, walkLen, layers)
	}
	if labels != nil && len(labels) != g.NumVertices {
		return nil, fmt.Errorf("sampler: %d labels for %d vertices", len(labels), g.NumVertices)
	}
	return &SaintSampler{G: g, Roots: roots, WalkLen: walkLen, Layers: layers, Labels: labels}, nil
}

// Sample draws one subgraph mini-batch with the configured root count.
func (s *SaintSampler) Sample(rng *tensor.RNG) (*MiniBatch, error) {
	return s.SampleN(s.Roots, rng)
}

// SampleN draws one subgraph mini-batch from `roots` random walks — used by
// the runtime, whose DRM re-balances per-trainer root counts. Roots are
// drawn uniformly; walks follow uniformly-random in-neighbors and stop
// early at sinks.
func (s *SaintSampler) SampleN(roots int, rng *tensor.RNG) (*MiniBatch, error) {
	if roots <= 0 {
		return nil, fmt.Errorf("sampler: saint SampleN with %d roots", roots)
	}
	visited := make(map[int32]bool, roots*(s.WalkLen+1))
	for r := 0; r < roots; r++ {
		v := int32(rng.Intn(s.G.NumVertices))
		visited[v] = true
		for step := 0; step < s.WalkLen; step++ {
			nbrs := s.G.Neighbors(v)
			if len(nbrs) == 0 {
				break
			}
			v = nbrs[rng.Intn(len(nbrs))]
			visited[v] = true
		}
	}
	nodes := make([]int32, 0, len(visited))
	for v := range visited {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	local := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		local[v] = int32(i)
	}
	// Induce the subgraph: keep edges whose both endpoints were visited.
	rowPtr := make([]int32, len(nodes)+1)
	var col []int32
	for i, v := range nodes {
		for _, u := range s.G.Neighbors(v) {
			if li, ok := local[u]; ok {
				col = append(col, li)
			}
		}
		rowPtr[i+1] = int32(len(col))
	}
	block := &Block{Src: nodes, Dst: nodes, RowPtr: rowPtr, Col: col}
	mb := &MiniBatch{Targets: nodes}
	for l := 0; l < s.Layers; l++ {
		mb.Blocks = append(mb.Blocks, block)
	}
	if s.Labels != nil {
		mb.Labels = make([]int32, len(nodes))
		for i, v := range nodes {
			mb.Labels[i] = s.Labels[v]
		}
	}
	return mb, nil
}

// ExpectedSubgraphSize estimates the number of distinct vertices a SAINT
// batch touches (roots × (walk+1) draws with birthday collapse) — the
// sampling-cost input the performance model needs for this algorithm.
func (s *SaintSampler) ExpectedSubgraphSize() float64 {
	draws := float64(s.Roots) * float64(s.WalkLen+1)
	return distinctOf(draws, float64(s.G.NumVertices))
}
