package sampler

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/tensor"
)

func TestNewSaintValidation(t *testing.T) {
	g := testGraph(t, 100, 400, 30)
	if _, err := NewSaint(g, 0, 3, 2, nil); err == nil {
		t.Fatal("expected error for zero roots")
	}
	if _, err := NewSaint(g, 8, 0, 2, nil); err == nil {
		t.Fatal("expected error for zero walk length")
	}
	if _, err := NewSaint(g, 8, 3, 0, nil); err == nil {
		t.Fatal("expected error for zero layers")
	}
	if _, err := NewSaint(g, 8, 3, 2, make([]int32, 5)); err == nil {
		t.Fatal("expected error for label mismatch")
	}
}

func TestSaintSampleStructure(t *testing.T) {
	g := testGraph(t, 400, 3200, 31)
	labels := make([]int32, 400)
	for i := range labels {
		labels[i] = int32(i % 5)
	}
	s, err := NewSaint(g, 16, 4, 2, labels)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Sample(tensor.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(mb.Blocks))
	}
	for l, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", l, err)
		}
		// SAINT blocks are square: Src == Dst.
		if len(b.Src) != len(b.Dst) {
			t.Fatalf("block %d not square", l)
		}
	}
	if len(mb.Targets) == 0 || len(mb.Targets) > 16*5 {
		t.Fatalf("subgraph size %d implausible for 16 roots x 4 steps", len(mb.Targets))
	}
	for i, v := range mb.Targets {
		if mb.Labels[i] != labels[v] {
			t.Fatal("labels wrong")
		}
	}
}

// Induced edges must be exactly the original edges among visited vertices.
func TestSaintInducedEdgesAreReal(t *testing.T) {
	g := testGraph(t, 300, 2400, 33)
	s, _ := NewSaint(g, 12, 3, 1, nil)
	mb, err := s.Sample(tensor.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	b := mb.Blocks[0]
	inSub := map[int32]bool{}
	for _, v := range b.Src {
		inSub[v] = true
	}
	for d := 0; d < len(b.Dst); d++ {
		want := 0
		for _, u := range g.Neighbors(b.Dst[d]) {
			if inSub[u] {
				want++
			}
		}
		got := int(b.RowPtr[d+1] - b.RowPtr[d])
		if got != want {
			t.Fatalf("vertex %d: induced degree %d, want %d", b.Dst[d], got, want)
		}
		for _, c := range b.Col[b.RowPtr[d]:b.RowPtr[d+1]] {
			u := b.Src[c]
			found := false
			for _, real := range g.Neighbors(b.Dst[d]) {
				if real == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("induced edge (%d<-%d) not in the original graph", b.Dst[d], u)
			}
		}
	}
}

func TestSaintDeterministic(t *testing.T) {
	g := testGraph(t, 200, 1600, 35)
	s, _ := NewSaint(g, 8, 3, 2, nil)
	a, _ := s.Sample(tensor.NewRNG(9))
	b, _ := s.Sample(tensor.NewRNG(9))
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("not deterministic")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatal("targets differ")
		}
	}
}

func TestSaintExpectedSubgraphSize(t *testing.T) {
	g := testGraph(t, 1000, 8000, 36)
	s, _ := NewSaint(g, 50, 4, 2, nil)
	exp := s.ExpectedSubgraphSize()
	if exp <= 0 || exp > 250 {
		t.Fatalf("expected size %v outside (0, roots*(walk+1)]", exp)
	}
	// Sample a few times; mean should be within 2x of the estimate.
	rng := tensor.NewRNG(37)
	var sum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		mb, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(len(mb.Targets))
	}
	mean := sum / trials
	if mean < exp/2 || mean > exp*2 {
		t.Fatalf("measured subgraph size %v far from estimate %v", mean, exp)
	}
}

// A SAINT mini-batch must train end-to-end through the GNN stack.
func TestSaintTrainsEndToEnd(t *testing.T) {
	spec := datagen.Spec{Name: "saint", NumVertices: 400, NumEdges: 3200, FeatDims: []int{8, 8, 3}}
	ds, err := datagen.Materialize(spec, 1.0, tensor.NewRNG(38))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSaint(ds.Graph, 20, 3, 2, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Sample(tensor.NewRNG(39))
	if err != nil {
		t.Fatal(err)
	}
	if mb.EdgesTraversed() == 0 {
		t.Skip("degenerate subgraph with no induced edges")
	}
	if len(mb.InputNodes()) != len(mb.Targets) {
		t.Fatal("SAINT input nodes should equal the subgraph")
	}
}
