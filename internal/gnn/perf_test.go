package gnn

import (
	"testing"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

var allKinds = []Kind{GCN, SAGE, GIN}

// raggedBlock builds a deliberately irregular block: zero-degree
// destinations, duplicate (src, dst) edges, self loops, and shared sources —
// every scatter hazard the parallel backward must survive.
func raggedBlock(rng *tensor.RNG, nDst, extraSrc, maxDeg int) *sampler.Block {
	nSrc := nDst + extraSrc
	src := make([]int32, nSrc)
	for i := range src {
		src[i] = int32(i * 7) // global IDs are arbitrary; Dst must prefix Src
	}
	b := &sampler.Block{Src: src, Dst: src[:nDst], RowPtr: make([]int32, nDst+1)}
	for d := 0; d < nDst; d++ {
		deg := rng.Intn(maxDeg + 1) // 0 hits the zero-degree path
		for e := 0; e < deg; e++ {
			s := int32(rng.Intn(nSrc))
			if e > 0 && rng.Intn(4) == 0 {
				s = b.Col[len(b.Col)-1] // duplicate edge
			}
			if rng.Intn(8) == 0 {
				s = int32(d) // self loop
			}
			b.Col = append(b.Col, s)
		}
		b.RowPtr[d+1] = int32(len(b.Col))
	}
	return b
}

// TestAggregateBackwardParallelExactlyMatchesSerial is the correctness gate
// for the parallel backward scatter: across all model kinds and ragged
// blocks, the transposed-gather parallel path must equal the serial
// destination-major scatter bit for bit (not approximately — the transpose
// preserves each source's accumulation order exactly), at several worker
// counts, including workers ≫ rows.
func TestAggregateBackwardParallelExactlyMatchesSerial(t *testing.T) {
	rng := tensor.NewRNG(99)
	for _, kind := range allKinds {
		for trial := 0; trial < 20; trial++ {
			b := raggedBlock(rng, 1+rng.Intn(30), rng.Intn(40), 6)
			if err := b.Validate(); err != nil {
				t.Fatalf("%v trial %d: bad fixture: %v", kind, trial, err)
			}
			cfg := Config{Kind: kind, Dims: []int{5, 3}, GINEps: 0.3}
			nb := NewNeighborhood(cfg, b)
			cols := 1 + rng.Intn(9) // odd widths exercise the SIMD tails
			dAgg := tensor.New(len(b.Dst), cols)
			tensor.NormalInit(dAgg, 1, rng)

			want := tensor.New(len(b.Src), cols)
			nb.AggregateBackwardSerial(want, dAgg)

			for _, par := range []int{2, 4, 64} {
				prev := tensor.SetParallelism(par)
				got := tensor.New(len(b.Src), cols)
				// Fresh neighborhood per parallelism level so the transpose
				// build itself is covered each time.
				NewNeighborhood(cfg, b).AggregateBackward(got, dAgg)
				tensor.SetParallelism(prev)
				if !got.Equal(want) {
					t.Fatalf("%v trial %d par=%d: parallel scatter differs from serial (max diff %g)",
						kind, trial, par, got.MaxAbsDiff(want))
				}
			}
		}
	}
}

// TestAggregateBackwardSerialFallback covers the single-worker dispatch in
// AggregateBackward (no transpose build).
func TestAggregateBackwardSerialFallback(t *testing.T) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	rng := tensor.NewRNG(5)
	b := raggedBlock(rng, 12, 9, 4)
	cfg := Config{Kind: GCN, Dims: []int{4, 2}}
	nb := NewNeighborhood(cfg, b)
	dAgg := tensor.New(len(b.Dst), 4)
	tensor.NormalInit(dAgg, 1, rng)
	got := tensor.New(len(b.Src), 4)
	nb.AggregateBackward(got, dAgg)
	want := tensor.New(len(b.Src), 4)
	nb.AggregateBackwardSerial(want, dAgg)
	if !got.Equal(want) {
		t.Fatal("single-worker AggregateBackward must equal the serial scatter")
	}
	if nb.tPtr != nil {
		t.Fatal("single-worker path should not build the transpose")
	}
}

// TestWSPathsMatchLegacy pins the workspace forms to the allocating ones:
// same mini-batch, same parameters — forward activations, logits, losses,
// and every gradient must be bit-identical across both code paths and
// across workspace reuse (two consecutive iterations through one arena).
func TestWSPathsMatchLegacy(t *testing.T) {
	for _, kind := range allKinds {
		dims := []int{6, 8, 5}
		fx := makeFixture(t, dims, 12, uint64(3+int(kind)))
		m, err := NewModel(Config{Kind: kind, Dims: dims, GINEps: 0.1}, tensor.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		wantGrads, wantLoss, wantAcc, err := m.TrainStep(fx.mb, fx.x)
		if err != nil {
			t.Fatal(err)
		}
		ws := tensor.NewWorkspace()
		st := &ForwardState{}
		grads := NewGradients(m.Params)
		for iter := 0; iter < 2; iter++ { // second pass runs entirely on reused buffers
			ws.Reset()
			loss, acc, err := m.TrainStepWS(ws, st, fx.mb, fx.x, grads)
			if err != nil {
				t.Fatal(err)
			}
			if loss != wantLoss || acc != wantAcc {
				t.Fatalf("%v iter %d: loss/acc %v/%v, want %v/%v", kind, iter, loss, acc, wantLoss, wantAcc)
			}
			if d := grads.MaxAbsDiff(wantGrads); d != 0 {
				t.Fatalf("%v iter %d: WS gradients differ from legacy by %g", kind, iter, d)
			}
		}

		// Inference forms agree with the forward pass too.
		legacy, err := m.InferMiniBatch(fx.mb, fx.x)
		if err != nil {
			t.Fatal(err)
		}
		ws.Reset()
		wsLogits, err := m.InferMiniBatchWS(ws, fx.mb, fx.x)
		if err != nil {
			t.Fatal(err)
		}
		if !wsLogits.Equal(legacy) {
			t.Fatalf("%v: InferMiniBatchWS differs from InferMiniBatch", kind)
		}
	}
}

// TestTrainStepWSZeroAllocs is the training-side allocation gate: once the
// arena has grown, a steady-state TrainStepWS allocates nothing. Measured at
// kernel parallelism 1 — AllocsPerRun pins GOMAXPROCS to 1, and goroutine
// fan-out (not the numeric path) would otherwise be the only allocator.
func TestTrainStepWSZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation bypasses sync.Pool; allocation counts are nondeterministic")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	for _, kind := range allKinds {
		dims := []int{6, 8, 5}
		fx := makeFixture(t, dims, 16, 17)
		m, err := NewModel(Config{Kind: kind, Dims: dims}, tensor.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		ws := tensor.NewWorkspace()
		st := &ForwardState{}
		grads := NewGradients(m.Params)
		step := func() {
			ws.Reset()
			if _, _, err := m.TrainStepWS(ws, st, fx.mb, fx.x, grads); err != nil {
				t.Fatal(err)
			}
		}
		step() // grow the arena
		if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
			t.Fatalf("%v: steady-state TrainStepWS allocated %v times per run", kind, allocs)
		}
	}
}

// TestInferMiniBatchWSZeroAllocs is the serving-side allocation gate.
func TestInferMiniBatchWSZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation bypasses sync.Pool; allocation counts are nondeterministic")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	for _, kind := range allKinds {
		dims := []int{6, 8, 5}
		fx := makeFixture(t, dims, 16, 23)
		m, err := NewModel(Config{Kind: kind, Dims: dims}, tensor.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		ws := tensor.NewWorkspace()
		batch := func() {
			ws.Reset()
			if _, err := m.InferMiniBatchWS(ws, fx.mb, fx.x); err != nil {
				t.Fatal(err)
			}
		}
		batch()
		if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
			t.Fatalf("%v: steady-state InferMiniBatchWS allocated %v times per run", kind, allocs)
		}
	}
}

// TestEdgeWeightsIntoReuse checks the reuse contract: dirty buffers are
// fully overwritten and the results match the allocating form.
func TestEdgeWeightsIntoReuse(t *testing.T) {
	rng := tensor.NewRNG(31)
	for _, kind := range allKinds {
		b := raggedBlock(rng, 10, 6, 4)
		cfg := Config{Kind: kind, Dims: []int{4, 2}, GINEps: 0.2}
		wantE, wantS := EdgeWeights(cfg, b)
		edgeW := make([]float32, b.NumEdges())
		selfW := make([]float32, len(b.Dst))
		for i := range edgeW {
			edgeW[i] = 99
		}
		for i := range selfW {
			selfW[i] = 99
		}
		gotE, gotS := EdgeWeightsInto(cfg, b, edgeW, selfW)
		for i := range wantE {
			if gotE[i] != wantE[i] {
				t.Fatalf("%v: edge weight %d differs", kind, i)
			}
		}
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("%v: self weight %d differs", kind, i)
			}
		}
	}
}

// TestNeighborhoodResetInvalidatesTranspose pins the invalidation contract
// of the cached transposed contribution list: a caller that mutates the
// bound block in place (serving paths re-sampling into retained Block
// storage) must get a fresh transpose after Reset — and init must invalidate
// on every re-bind — or the parallel backward would gather through the
// previous graph's index.
func TestNeighborhoodResetInvalidatesTranspose(t *testing.T) {
	rng := tensor.NewRNG(41)
	cfg := Config{Kind: GCN, Dims: []int{5, 3}}
	b := raggedBlock(rng, 12, 10, 5)
	nb := NewNeighborhood(cfg, b)

	cols := 7
	dAgg := tensor.New(len(b.Dst), cols)
	tensor.NormalInit(dAgg, 1, rng)

	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)

	// First backward builds and caches the transpose.
	got := tensor.New(len(b.Src), cols)
	nb.AggregateBackward(got, dAgg)

	// Mutate the block in place: rewire every destination's first edge to
	// source 0. Without invalidation the cached transpose still scatters to
	// the old sources.
	for d := 0; d < len(b.Dst); d++ {
		if b.RowPtr[d+1] > b.RowPtr[d] {
			b.Col[b.RowPtr[d]] = 0
		}
	}
	// Coefficients depend only on shape for GCN's degree normalisation —
	// recompute them the way a re-binding caller would.
	nb.EdgeW, nb.SelfW = EdgeWeights(cfg, b)

	nb.Reset()
	got2 := tensor.New(len(b.Src), cols)
	nb.AggregateBackward(got2, dAgg)

	want := tensor.New(len(b.Src), cols)
	NewNeighborhood(cfg, b).AggregateBackwardSerial(want, dAgg)
	if !got2.Equal(want) {
		t.Fatalf("after Reset the parallel backward still used the stale transpose (max diff %g)",
			got2.MaxAbsDiff(want))
	}

	// And init (the ForwardState re-bind path) must invalidate too.
	nb.AggregateBackward(tensor.New(len(b.Src), cols), dAgg) // re-cache
	b2 := raggedBlock(rng, 12, 10, 5)
	nb.init(cfg, b2, nil)
	got3 := tensor.New(len(b2.Src), cols)
	nb.AggregateBackward(got3, dAgg)
	want3 := tensor.New(len(b2.Src), cols)
	NewNeighborhood(cfg, b2).AggregateBackwardSerial(want3, dAgg)
	if !got3.Equal(want3) {
		t.Fatal("init re-bind did not invalidate the cached transpose")
	}
}
