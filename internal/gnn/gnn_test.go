package gnn

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// fixture builds a small dataset, sampler, mini-batch and gathered features.
type fixture struct {
	ds *datagen.Dataset
	mb *sampler.MiniBatch
	x  *tensor.Matrix
}

func makeFixture(t *testing.T, dims []int, batch int, seed uint64) *fixture {
	t.Helper()
	rng := tensor.NewRNG(seed)
	spec := datagen.Spec{Name: "fix", NumVertices: 400, NumEdges: 2400, FeatDims: dims}
	ds, err := datagen.Materialize(spec, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	fanouts := make([]int, len(dims)-1)
	for i := range fanouts {
		fanouts[i] = 4
	}
	s, err := sampler.New(ds.Graph, fanouts, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int32, batch)
	for i := range targets {
		targets[i] = int32(i * 3)
	}
	mb, err := s.Sample(targets, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(len(mb.InputNodes()), dims[0])
	tensor.GatherRows(x, ds.Features, mb.InputNodes())
	return &fixture{ds: ds, mb: mb, x: x}
}

func TestNewModelValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewModel(Config{Kind: GCN, Dims: []int{4}}, rng); err == nil {
		t.Fatal("expected error for single dim")
	}
	if _, err := NewModel(Config{Kind: GCN, Dims: []int{4, 0}}, rng); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewModel(Config{Kind: Kind(9), Dims: []int{4, 2}}, rng); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestKindString(t *testing.T) {
	if GCN.String() != "GCN" || SAGE.String() != "GraphSAGE" {
		t.Fatal("Kind names wrong")
	}
}

func TestParameterShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	gcn, _ := NewModel(Config{Kind: GCN, Dims: []int{10, 8, 3}}, rng)
	if gcn.Params.Weights[0].Rows != 10 || gcn.Params.Weights[1].Rows != 8 {
		t.Fatal("GCN weight shapes wrong")
	}
	sage, _ := NewModel(Config{Kind: SAGE, Dims: []int{10, 8, 3}}, rng)
	if sage.Params.Weights[0].Rows != 20 || sage.Params.Weights[1].Rows != 16 {
		t.Fatal("SAGE weight shapes (concat doubles input) wrong")
	}
	want := 20*8 + 8 + 16*3 + 3
	if sage.Params.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", sage.Params.NumParams(), want)
	}
	if sage.Params.ModelBytes() != int64(want)*4 {
		t.Fatal("ModelBytes wrong")
	}
}

func TestForwardShapes(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE} {
		fx := makeFixture(t, []int{12, 8, 5}, 6, 3)
		m, err := NewModel(Config{Kind: kind, Dims: []int{12, 8, 5}}, tensor.NewRNG(4))
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Forward(fx.mb, fx.x)
		if err != nil {
			t.Fatal(err)
		}
		if st.Logits.Rows != 6 || st.Logits.Cols != 5 {
			t.Fatalf("%v logits %dx%d", kind, st.Logits.Rows, st.Logits.Cols)
		}
	}
}

func TestForwardRejectsBadShapes(t *testing.T) {
	fx := makeFixture(t, []int{12, 8, 5}, 4, 5)
	m, _ := NewModel(Config{Kind: GCN, Dims: []int{12, 8, 5}}, tensor.NewRNG(6))
	bad := tensor.New(3, 12)
	if _, err := m.Forward(fx.mb, bad); err == nil {
		t.Fatal("expected feature shape error")
	}
	m3, _ := NewModel(Config{Kind: GCN, Dims: []int{12, 8, 8, 5}}, tensor.NewRNG(6))
	if _, err := m3.Forward(fx.mb, fx.x); err == nil {
		t.Fatal("expected layer-count mismatch error")
	}
}

// Finite-difference check of all parameter gradients for both architectures,
// with and without GCN degree normalization.
func TestGradientsFiniteDifference(t *testing.T) {
	cases := []struct {
		name    string
		kind    Kind
		degrees bool
	}{
		{"GCN-mean", GCN, false},
		{"GCN-sym", GCN, true},
		{"SAGE", SAGE, false},
		{"GIN", GIN, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dims := []int{5, 4, 3}
			fx := makeFixture(t, dims, 3, 7)
			cfg := Config{Kind: tc.kind, Dims: dims}
			if tc.degrees {
				cfg.Degrees = fx.ds.Graph.InDegrees()
			}
			if tc.kind == GIN {
				cfg.GINEps = 0.5
			}
			m, err := NewModel(cfg, tensor.NewRNG(8))
			if err != nil {
				t.Fatal(err)
			}
			grads, loss0, _, err := m.TrainStep(fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			lossAt := func() float64 {
				st, err := m.Forward(fx.mb, fx.x)
				if err != nil {
					t.Fatal(err)
				}
				g := tensor.New(st.Logits.Rows, st.Logits.Cols)
				l, _ := tensor.SoftmaxCrossEntropy(g, st.Logits, fx.mb.Labels)
				return l
			}
			if math.Abs(lossAt()-loss0) > 1e-9 {
				t.Fatal("forward not deterministic")
			}
			const eps = 1e-2
			check := func(param, grad *tensor.Matrix, what string) {
				for _, idx := range []int{0, len(param.Data) / 2, len(param.Data) - 1} {
					orig := param.Data[idx]
					param.Data[idx] = orig + eps
					lp := lossAt()
					param.Data[idx] = orig - eps
					lm := lossAt()
					param.Data[idx] = orig
					numeric := (lp - lm) / (2 * eps)
					analytic := float64(grad.Data[idx])
					if math.Abs(numeric-analytic) > 5e-3+0.05*math.Abs(numeric) {
						t.Errorf("%s[%d]: numeric %.6f analytic %.6f", what, idx, numeric, analytic)
					}
				}
			}
			for l := range m.Params.Weights {
				check(m.Params.Weights[l], grads.Weights[l], "W")
				check(m.Params.Biases[l], grads.Biases[l], "b")
			}
		})
	}
}

func TestGradientAccumulators(t *testing.T) {
	rng := tensor.NewRNG(9)
	m, _ := NewModel(Config{Kind: GCN, Dims: []int{4, 3}}, rng)
	g1 := NewGradients(m.Params)
	g1.Weights[0].Fill(2)
	g2 := g1.Clone()
	g2.Axpy(0.5, g1)
	if g2.Weights[0].At(0, 0) != 3 {
		t.Fatalf("Axpy: %v", g2.Weights[0].At(0, 0))
	}
	g2.Scale(2)
	if g2.Weights[0].At(0, 0) != 6 {
		t.Fatal("Scale wrong")
	}
	g2.Zero()
	if g2.Weights[0].At(0, 0) != 0 {
		t.Fatal("Zero wrong")
	}
	if g1.MaxAbsDiff(g1.Clone()) != 0 {
		t.Fatal("MaxAbsDiff of clone nonzero")
	}
}

func TestParametersCloneCopy(t *testing.T) {
	rng := tensor.NewRNG(10)
	m, _ := NewModel(Config{Kind: SAGE, Dims: []int{4, 3}}, rng)
	c := m.Params.Clone()
	c.Weights[0].Set(0, 0, 99)
	if m.Params.Weights[0].At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	m.Params.CopyFrom(c)
	if m.Params.Weights[0].At(0, 0) != 99 {
		t.Fatal("CopyFrom did not copy")
	}
}

// Training must reduce loss on the planted-cluster task — the semantics
// check behind the paper's convergence claims.
func TestTrainingConverges(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GIN} {
		rng := tensor.NewRNG(11)
		spec := datagen.Spec{Name: "conv", NumVertices: 500, NumEdges: 3000, FeatDims: []int{16, 16, 4}}
		ds, err := datagen.Materialize(spec, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := sampler.New(ds.Graph, []int{5, 5}, ds.Labels)
		m, _ := NewModel(Config{Kind: kind, Dims: spec.FeatDims}, rng)
		batcher, _ := sampler.NewBatcher(ds.TrainIdx, 64, rng)
		var first, last float64
		const lr = 0.5
		for step := 0; step < 150; step++ {
			mb, err := s.Sample(batcher.Next(), rng)
			if err != nil {
				t.Fatal(err)
			}
			x := tensor.New(len(mb.InputNodes()), spec.FeatDims[0])
			tensor.GatherRows(x, ds.Features, mb.InputNodes())
			grads, loss, _, err := m.TrainStep(mb, x)
			if err != nil {
				t.Fatal(err)
			}
			for l := range m.Params.Weights {
				tensor.Axpy(m.Params.Weights[l], -lr, grads.Weights[l])
				tensor.Axpy(m.Params.Biases[l], -lr, grads.Biases[l])
			}
			if step == 0 {
				first = loss
			}
			last = loss
		}
		if last >= first*0.8 {
			t.Fatalf("%v: loss did not decrease: first %.4f last %.4f", kind, first, last)
		}
	}
}

// SAGE with zero-degree destinations must not NaN (mean of empty set is 0).
func TestSAGEZeroDegree(t *testing.T) {
	// Graph where vertex 0 has no in-neighbors.
	blocks := []*sampler.Block{{
		Src:    []int32{0, 1},
		Dst:    []int32{0, 1},
		RowPtr: []int32{0, 0, 1},
		Col:    []int32{0},
	}}
	mb := &sampler.MiniBatch{Blocks: blocks, Targets: []int32{0, 1}, Labels: []int32{0, 1}}
	m, _ := NewModel(Config{Kind: SAGE, Dims: []int{3, 2}}, tensor.NewRNG(12))
	x := tensor.New(2, 3)
	x.Fill(1)
	st, err := m.Forward(mb, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range st.Logits.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("NaN/Inf logits for zero-degree vertex")
		}
	}
	grads, _, _, err := m.TrainStep(mb, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range grads.Weights {
		for _, v := range w.Data {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN gradient for zero-degree vertex")
			}
		}
	}
}

// Aggregation must be linear: forward(x1 + x2) == forward(x1) + forward(x2)
// for the aggregation-only part (tested through a 1-layer linear model with
// identity-like weights and no ReLU since L=1 output layer has no ReLU).
func TestAggregationLinearity(t *testing.T) {
	fx := makeFixture(t, []int{6, 4}, 5, 13)
	m, _ := NewModel(Config{Kind: GCN, Dims: []int{6, 4}}, tensor.NewRNG(14))
	x2 := fx.x.Clone()
	tensor.Scale(x2, 2)
	st1, _ := m.Forward(fx.mb, fx.x)
	st2, _ := m.Forward(fx.mb, x2)
	// logits2 - bias = 2*(logits1 - bias)
	for i := 0; i < st1.Logits.Rows; i++ {
		for j := 0; j < st1.Logits.Cols; j++ {
			b := m.Params.Biases[0].At(0, j)
			want := 2 * (st1.Logits.At(i, j) - b)
			got := st2.Logits.At(i, j) - b
			if math.Abs(float64(want-got)) > 1e-4 {
				t.Fatalf("aggregation not linear at (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}
