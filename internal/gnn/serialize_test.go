package gnn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GIN} {
		m, err := NewModel(Config{Kind: kind, Dims: []int{12, 8, 5}, GINEps: 0.25}, tensor.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Cfg.Kind != kind || m2.Cfg.GINEps != 0.25 {
			t.Fatalf("config lost: %+v", m2.Cfg)
		}
		if len(m2.Cfg.Dims) != 3 || m2.Cfg.Dims[1] != 8 {
			t.Fatalf("dims lost: %v", m2.Cfg.Dims)
		}
		for l := range m.Params.Weights {
			if !m.Params.Weights[l].Equal(m2.Params.Weights[l]) {
				t.Fatalf("%v: weights layer %d differ", kind, l)
			}
			if !m.Params.Biases[l].Equal(m2.Params.Biases[l]) {
				t.Fatalf("%v: biases layer %d differ", kind, l)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint at all......"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m, _ := NewModel(Config{Kind: GCN, Dims: []int{6, 4}}, tensor.NewRNG(2))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

// A loaded model must produce identical inference results.
func TestLoadedModelInfersIdentically(t *testing.T) {
	rng := tensor.NewRNG(3)
	m, _ := NewModel(Config{Kind: SAGE, Dims: []int{6, 5, 3}}, rng)
	fx := makeFixture(t, []int{6, 5, 3}, 4, 4)
	ref, err := m.Forward(fx.mb, fx.x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Forward(fx.mb, fx.x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Logits.Equal(ref.Logits) {
		t.Fatal("loaded model produces different logits")
	}
}
