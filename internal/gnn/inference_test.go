package gnn

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

func TestInferFullGraphShapesAndValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	spec := datagen.Spec{Name: "inf", NumVertices: 200, NumEdges: 1200, FeatDims: []int{8, 6, 3}}
	ds, err := datagen.Materialize(spec, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(Config{Kind: GCN, Dims: spec.FeatDims}, rng)
	logits, err := m.InferFullGraph(ds.Graph, ds.Features)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != 200 || logits.Cols != 3 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
	bad := tensor.New(100, 8)
	if _, err := m.InferFullGraph(ds.Graph, bad); err == nil {
		t.Fatal("expected row-count error")
	}
	bad2 := tensor.New(200, 5)
	if _, err := m.InferFullGraph(ds.Graph, bad2); err == nil {
		t.Fatal("expected width error")
	}
}

// Full-graph inference must agree with the mini-batch forward pass when the
// sampled fanout covers every neighbor (sampling becomes exact).
func TestInferenceMatchesFullFanoutSampling(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GIN} {
		rng := tensor.NewRNG(2)
		spec := datagen.Spec{Name: "exact", NumVertices: 120, NumEdges: 480, FeatDims: []int{6, 5, 3}}
		ds, err := datagen.Materialize(spec, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewModel(Config{Kind: kind, Dims: spec.FeatDims, GINEps: 0.2}, rng)
		full, err := m.InferFullGraph(ds.Graph, ds.Features)
		if err != nil {
			t.Fatal(err)
		}
		// Fanout 10000 >> max degree: the sampler takes all neighbors.
		s, _ := sampler.New(ds.Graph, []int{10000, 10000}, ds.Labels)
		targets := []int32{0, 5, 50, 119}
		mb, err := s.Sample(targets, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(len(mb.InputNodes()), 6)
		tensor.GatherRows(x, ds.Features, mb.InputNodes())
		st, err := m.Forward(mb, x)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range targets {
			for j := 0; j < 3; j++ {
				a := st.Logits.At(i, j)
				b := full.At(int(v), j)
				if d := a - b; d > 1e-3 || d < -1e-3 {
					t.Fatalf("%v: vertex %d logit %d: sampled %v vs full %v", kind, v, j, a, b)
				}
			}
		}
	}
}

// End-to-end: train with sampling, evaluate with full-graph inference — the
// standard GraphSAGE protocol. Held-out accuracy must beat chance clearly.
func TestEvaluateAfterTraining(t *testing.T) {
	rng := tensor.NewRNG(3)
	spec := datagen.Spec{Name: "eval", NumVertices: 600, NumEdges: 4200, FeatDims: []int{16, 16, 4}}
	ds, err := datagen.Materialize(spec, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(Config{Kind: SAGE, Dims: spec.FeatDims}, rng)
	s, _ := sampler.New(ds.Graph, []int{8, 8}, ds.Labels)
	batcher, _ := sampler.NewBatcher(ds.TrainIdx, 64, rng)
	const lr = 0.4
	for step := 0; step < 120; step++ {
		mb, err := s.Sample(batcher.Next(), rng)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(len(mb.InputNodes()), 16)
		tensor.GatherRows(x, ds.Features, mb.InputNodes())
		grads, _, _, err := m.TrainStep(mb, x)
		if err != nil {
			t.Fatal(err)
		}
		for l := range m.Params.Weights {
			tensor.Axpy(m.Params.Weights[l], -lr, grads.Weights[l])
			tensor.Axpy(m.Params.Biases[l], -lr, grads.Biases[l])
		}
	}
	// Held-out vertices: everything not in the train split.
	inTrain := map[int32]bool{}
	for _, v := range ds.TrainIdx {
		inTrain[v] = true
	}
	var heldOut []int32
	for v := int32(0); int(v) < ds.Graph.NumVertices; v++ {
		if !inTrain[v] {
			heldOut = append(heldOut, v)
		}
	}
	acc, err := m.Evaluate(ds.Graph, ds.Features, ds.Labels, heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 { // 4 classes → chance 0.25
		t.Fatalf("held-out accuracy %.3f too low", acc)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	rng := tensor.NewRNG(4)
	spec := datagen.Spec{Name: "e", NumVertices: 100, NumEdges: 300, FeatDims: []int{4, 3}}
	ds, _ := datagen.Materialize(spec, 1.0, rng)
	m, _ := NewModel(Config{Kind: GCN, Dims: spec.FeatDims}, rng)
	if _, err := m.Evaluate(ds.Graph, ds.Features, ds.Labels, nil); err == nil {
		t.Fatal("expected error for empty evaluation set")
	}
}

// The parallel per-vertex aggregation must produce exactly what the serial
// path produces: each destination row is computed by one worker, so the
// summation order within a row is unchanged.
func TestInferFullGraphParallelMatchesSerial(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GIN} {
		rng := tensor.NewRNG(6)
		spec := datagen.Spec{Name: "par", NumVertices: 400, NumEdges: 2400, FeatDims: []int{12, 10, 5}}
		ds, err := datagen.Materialize(spec, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewModel(Config{Kind: kind, Dims: spec.FeatDims}, rng)
		prev := tensor.SetParallelism(1)
		serial, err := m.InferFullGraph(ds.Graph, ds.Features)
		tensor.SetParallelism(prev)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := m.InferFullGraph(ds.Graph, ds.Features)
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Equal(parallel) {
			t.Fatalf("%v: parallel inference diverged from serial (max diff %g)",
				kind, serial.MaxAbsDiff(parallel))
		}
	}
}

// Mini-batch inference over a sampled fanout must converge to the exact
// full-graph logits as the fanout grows, and match them exactly (up to
// float accumulation) at fanout 0 (take-all).
func TestInferMiniBatchConvergesToFullGraph(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE} {
		rng := tensor.NewRNG(7)
		spec := datagen.Spec{Name: "conv", NumVertices: 500, NumEdges: 6000, FeatDims: []int{10, 8, 4}}
		ds, err := datagen.Materialize(spec, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewModel(Config{Kind: kind, Dims: spec.FeatDims}, rng)
		full, err := m.InferFullGraph(ds.Graph, ds.Features)
		if err != nil {
			t.Fatal(err)
		}
		targets := make([]int32, 64)
		for i := range targets {
			targets[i] = int32(rng.Intn(ds.Graph.NumVertices))
		}
		meanErr := func(fanout int) float64 {
			var sum float64
			var n int
			for seed := uint64(0); seed < 5; seed++ {
				logits, err := m.InferVertices(ds.Graph, ds.Features,
					[]int{fanout, fanout}, targets, tensor.NewRNG(100+seed))
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range targets {
					for j := 0; j < logits.Cols; j++ {
						d := float64(logits.At(i, j) - full.At(int(v), j))
						if d < 0 {
							d = -d
						}
						sum += d
						n++
					}
				}
			}
			return sum / float64(n)
		}
		errSmall, errLarge, errExact := meanErr(1), meanErr(6), meanErr(0)
		if errExact > 1e-4 {
			t.Fatalf("%v: take-all fanout error %g, want ~0", kind, errExact)
		}
		if errLarge >= errSmall {
			t.Fatalf("%v: fanout 6 error %g not below fanout 1 error %g — no convergence",
				kind, errLarge, errSmall)
		}
	}
}

// Before/after for the parallelized per-vertex aggregation loop:
//
//	go test ./internal/gnn -bench InferFullGraph -run xxx
//
// reports the serial (pre-PR) and parallel (current) full-graph inference
// side by side.
func BenchmarkInferFullGraph(b *testing.B) {
	rng := tensor.NewRNG(8)
	spec := datagen.Spec{Name: "bench", NumVertices: 4000, NumEdges: 48000, FeatDims: []int{64, 32, 8}}
	ds, err := datagen.Materialize(spec, 1.0, rng)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := NewModel(Config{Kind: SAGE, Dims: spec.FeatDims}, rng)
	b.Run("serial-before", func(b *testing.B) {
		prev := tensor.SetParallelism(1)
		defer tensor.SetParallelism(prev)
		for i := 0; i < b.N; i++ {
			if _, err := m.InferFullGraph(ds.Graph, ds.Features); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-after", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.InferFullGraph(ds.Graph, ds.Features); err != nil {
				b.Fatal(err)
			}
		}
	})
}
