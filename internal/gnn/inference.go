package gnn

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// InferFullGraph computes embeddings for every vertex with exact (unsampled)
// layer-wise propagation over the whole graph — the standard way trained
// sampling-based models are evaluated (GraphSAGE §3.1). Memory is
// O(|V|·maxDim); intended for the scaled datasets of this repository.
// Returns the final-layer logits (|V| × fL).
func (m *Model) InferFullGraph(g *graph.Graph, x *tensor.Matrix) (*tensor.Matrix, error) {
	if g.NumVertices != x.Rows {
		return nil, fmt.Errorf("gnn: %d feature rows for %d vertices", x.Rows, g.NumVertices)
	}
	if x.Cols != m.Cfg.Dims[0] {
		return nil, fmt.Errorf("gnn: features %d-dim, model expects %d", x.Cols, m.Cfg.Dims[0])
	}
	L := m.Cfg.Layers()
	h := x
	n := g.NumVertices
	degrees := m.Cfg.Degrees
	for l := 0; l < L; l++ {
		fin := m.Cfg.Dims[l]
		agg := tensor.New(n, fin)
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(int32(v))
			out := agg.Row(v)
			switch m.Cfg.Kind {
			case GCN:
				if degrees != nil {
					nv := 1 / sqrt32(float32(degrees[v])+1)
					self := h.Row(v)
					for j := range out {
						out[j] = nv * nv * self[j]
					}
					for _, u := range nbrs {
						w := nv / sqrt32(float32(degrees[u])+1)
						row := h.Row(int(u))
						for j := range out {
							out[j] += w * row[j]
						}
					}
				} else {
					inv := float32(1) / float32(len(nbrs)+1)
					self := h.Row(v)
					for j := range out {
						out[j] = inv * self[j]
					}
					for _, u := range nbrs {
						row := h.Row(int(u))
						for j := range out {
							out[j] += inv * row[j]
						}
					}
				}
			case SAGE:
				if len(nbrs) > 0 {
					inv := float32(1) / float32(len(nbrs))
					for _, u := range nbrs {
						row := h.Row(int(u))
						for j := range out {
							out[j] += inv * row[j]
						}
					}
				}
			case GIN:
				selfCoef := float32(1 + m.Cfg.GINEps)
				self := h.Row(v)
				for j := range out {
					out[j] = selfCoef * self[j]
				}
				for _, u := range nbrs {
					row := h.Row(int(u))
					for j := range out {
						out[j] += row[j]
					}
				}
			}
		}
		var dense *tensor.Matrix
		if m.Cfg.Kind == SAGE {
			dense = tensor.New(n, 2*fin)
			tensor.ConcatCols(dense, h, agg)
		} else {
			dense = agg
		}
		z := tensor.New(n, m.Cfg.Dims[l+1])
		tensor.MatMul(z, dense, m.Params.Weights[l])
		tensor.AddBias(z, m.Params.Biases[l])
		if l < L-1 {
			tensor.ReLU(z)
		}
		h = z
	}
	return h, nil
}

// Evaluate runs full-graph inference and returns the accuracy over the
// given vertex set.
func (m *Model) Evaluate(g *graph.Graph, x *tensor.Matrix, labels []int32, idx []int32) (float64, error) {
	logits, err := m.InferFullGraph(g, x)
	if err != nil {
		return 0, err
	}
	if len(idx) == 0 {
		return 0, fmt.Errorf("gnn: empty evaluation set")
	}
	correct := 0
	for _, v := range idx {
		row := logits.Row(int(v))
		argmax := 0
		for j, val := range row {
			if val > row[argmax] {
				argmax = j
			}
		}
		if int32(argmax) == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx)), nil
}

func sqrt32(v float32) float32 { return float32(math.Sqrt(float64(v))) }
