package gnn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// InferFullGraph computes embeddings for every vertex with exact (unsampled)
// layer-wise propagation over the whole graph — the standard way trained
// sampling-based models are evaluated (GraphSAGE §3.1). It runs the same
// layer-propagation kernels as the sampled paths, over the full-graph block,
// with the per-vertex aggregation loop row-parallel across CPU workers.
// Memory is O(|V|·maxDim); intended for the scaled datasets of this
// repository. Returns the final-layer logits (|V| × fL).
func (m *Model) InferFullGraph(g *graph.Graph, x *tensor.Matrix) (*tensor.Matrix, error) {
	if g.NumVertices != x.Rows {
		return nil, fmt.Errorf("gnn: %d feature rows for %d vertices", x.Rows, g.NumVertices)
	}
	if x.Cols != m.Cfg.Dims[0] {
		return nil, fmt.Errorf("gnn: features %d-dim, model expects %d", x.Cols, m.Cfg.Dims[0])
	}
	blk, err := sampler.FullGraphBlock(g)
	if err != nil {
		return nil, err
	}
	// The coefficients depend only on the topology and the model kind, so one
	// neighborhood serves every layer.
	nb := NewNeighborhood(m.Cfg, blk)
	h := x
	for l := 0; l < m.Cfg.Layers(); l++ {
		z, _, _, err := m.PropagateLayer(l, nb, h)
		if err != nil {
			return nil, err
		}
		h = z
	}
	return h, nil
}

// InferMiniBatch runs the forward-only pass over a sampled fanout and
// returns the logits for mb's target vertices (|targets| × fL). It is the
// serving-path counterpart of Forward: same kernels, no state retained for a
// backward pass. x holds the gathered input features for mb.InputNodes().
func (m *Model) InferMiniBatch(mb *sampler.MiniBatch, x *tensor.Matrix) (*tensor.Matrix, error) {
	return m.InferMiniBatchWS(tensor.NewWorkspace(), mb, x)
}

// InferMiniBatchWS is InferMiniBatch with every intermediate (including the
// returned logits) borrowed from ws — the zero-allocation serving form. The
// logits are valid until the owner's next ws.Reset; callers that outlive the
// batch (the embedding cache does) must copy the rows they keep. The caller
// resets ws at batch boundaries; this function only borrows.
func (m *Model) InferMiniBatchWS(ws *tensor.Workspace, mb *sampler.MiniBatch, x *tensor.Matrix) (*tensor.Matrix, error) {
	L := m.Cfg.Layers()
	if len(mb.Blocks) != L {
		return nil, fmt.Errorf("gnn: mini-batch has %d blocks, model has %d layers", len(mb.Blocks), L)
	}
	if x.Rows != len(mb.InputNodes()) || x.Cols != m.Cfg.Dims[0] {
		return nil, fmt.Errorf("gnn: feature matrix %dx%d, want %dx%d",
			x.Rows, x.Cols, len(mb.InputNodes()), m.Cfg.Dims[0])
	}
	h := x
	var nb Neighborhood
	for l := 0; l < L; l++ {
		nb.init(m.Cfg, mb.Blocks[l], ws)
		z, _, _, err := m.propagateLayer(l, &nb, h, ws)
		if err != nil {
			return nil, err
		}
		h = z
	}
	return h, nil
}

// InferVertices answers a per-request query: it samples the L-hop fanout of
// the given target vertices, gathers their input features, and propagates
// only that subgraph. Fanout 0 at every layer makes the result exact
// (identical to the targets' rows of InferFullGraph); positive fanouts trade
// accuracy for bounded work, converging to the exact logits as they grow.
func (m *Model) InferVertices(g *graph.Graph, x *tensor.Matrix, fanouts []int,
	targets []int32, rng *tensor.RNG) (*tensor.Matrix, error) {
	s, err := sampler.New(g, fanouts, nil)
	if err != nil {
		return nil, err
	}
	mb, err := s.Sample(targets, rng)
	if err != nil {
		return nil, err
	}
	feats := tensor.New(len(mb.InputNodes()), x.Cols)
	tensor.GatherRows(feats, x, mb.InputNodes())
	return m.InferMiniBatch(mb, feats)
}

// Evaluate runs full-graph inference and returns the accuracy over the
// given vertex set.
func (m *Model) Evaluate(g *graph.Graph, x *tensor.Matrix, labels []int32, idx []int32) (float64, error) {
	logits, err := m.InferFullGraph(g, x)
	if err != nil {
		return 0, err
	}
	if len(idx) == 0 {
		return 0, fmt.Errorf("gnn: empty evaluation set")
	}
	correct := 0
	for _, v := range idx {
		row := logits.Row(int(v))
		argmax := 0
		for j, val := range row {
			if val > row[argmax] {
				argmax = j
			}
		}
		if int32(argmax) == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx)), nil
}
