// Layer-propagation kernels: the aggregate-over-neighbor-set and dense-update
// primitives shared by every execution path in the system — sampled training
// (Forward/Backward), exact full-graph inference (InferFullGraph), and
// sampled mini-batch inference (InferMiniBatch). A Neighborhood captures the
// message structure of one bipartite layer with its aggregation coefficients
// pre-resolved for the model kind (GCN/SAGE/GIN), so callers compose layers
// without re-implementing the aggregator.

package gnn

import (
	"fmt"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Neighborhood is one layer's message structure ready for propagation: a
// bipartite edge set (CSC over destinations, Col holding local source
// indices) plus the per-edge and per-destination-self coefficients the model
// kind assigns. Destination d's self feature is source row d (Dst is a
// prefix of Src in every Block, including the full-graph block).
type Neighborhood struct {
	Block *sampler.Block
	EdgeW []float32 // aggregation coefficient per edge
	SelfW []float32 // self-loop coefficient per destination (0 for SAGE)

	// ws, when set, backs every scratch slice this neighborhood builds
	// (the coefficients resolved by init, the backward transpose below), so
	// re-initialising per iteration — ForwardWS does it per layer — costs no
	// allocations.
	ws *tensor.Workspace
	// Transposed (CSR-over-sources) view of the scatter, built lazily by the
	// parallel AggregateBackward: contribution t lands on source s for
	// tPtr[s] ≤ t < tPtr[s+1], reading dAgg row tDst[t] scaled by tW[t].
	// Contributions are stored in exactly the serial scatter's per-source
	// order (ascending destination, self before that destination's edges),
	// which is what makes the parallel gather bit-identical to the serial
	// scatter — see AggregateBackward.
	tPtr []int32
	tDst []int32
	tW   []float32
}

// NewNeighborhood resolves cfg's aggregation coefficients for a block.
func NewNeighborhood(cfg Config, b *sampler.Block) *Neighborhood {
	nb := &Neighborhood{}
	nb.init(cfg, b, nil)
	return nb
}

// init (re-)binds the neighborhood to a block, resolving coefficients into
// ws-backed slices when ws is non-nil. Reused by ForwardState across
// iterations so steady-state training rebuilds neighborhoods without
// allocating.
func (nb *Neighborhood) init(cfg Config, b *sampler.Block, ws *tensor.Workspace) {
	nb.Block, nb.ws = b, ws
	nb.tPtr, nb.tDst, nb.tW = nil, nil, nil
	if ws != nil {
		nb.EdgeW, nb.SelfW = EdgeWeightsInto(cfg, b, ws.F32(b.NumEdges()), ws.F32(len(b.Dst)))
	} else {
		nb.EdgeW, nb.SelfW = EdgeWeights(cfg, b)
	}
}

// NumDst returns the number of destination vertices.
func (nb *Neighborhood) NumDst() int { return len(nb.Block.Dst) }

// Reset invalidates the lazily built transposed contribution list. init does
// this on every (re-)bind, but a caller that mutates the *current* block in
// place — serving paths that re-sample into retained Block storage across
// epochs — must call Reset before the next AggregateBackward, or the
// parallel gather would read a transpose of the previous graph.
func (nb *Neighborhood) Reset() {
	nb.tPtr, nb.tDst, nb.tW = nil, nil, nil
}

// Aggregate computes the weighted neighbor sum for every destination:
// out[d] = SelfW[d]·h[d] + Σ_e EdgeW[e]·h[Col[e]]. out is |Dst| × h.Cols.
// Destinations are independent, so the loop is row-parallel.
func (nb *Neighborhood) Aggregate(out, h *tensor.Matrix) {
	nb.aggregateInto(out, 0, h)
}

// aggregateInto writes the aggregate into the column band
// [colOff, colOff+h.Cols) of out — the fused form that lets SAGE aggregate
// straight into the mean half of its [self ‖ mean] dense input instead of
// paying a separate ConcatCols pass.
func (nb *Neighborhood) aggregateInto(out *tensor.Matrix, colOff int, h *tensor.Matrix) {
	if tensor.Parallelism() <= 1 {
		aggregateRange(nb.Block, nb.EdgeW, nb.SelfW, out, colOff, h, 0, len(nb.Block.Dst))
		return
	}
	// The closure captures the neighborhood's fields, not the neighborhood
	// itself, so stack-allocated Neighborhood values (the serving hot path)
	// never escape.
	b, edgeW, selfW := nb.Block, nb.EdgeW, nb.SelfW
	tensor.ParallelRows(len(b.Dst), func(lo, hi int) { aggregateRange(b, edgeW, selfW, out, colOff, h, lo, hi) })
}

func aggregateRange(b *sampler.Block, edgeW, selfW []float32, out *tensor.Matrix, colOff int, h *tensor.Matrix, lo, hi int) {
	cols := h.Cols
	for d := lo; d < hi; d++ {
		orow := out.Row(d)[colOff : colOff+cols]
		if w := selfW[d]; w != 0 {
			// Dst is a prefix of Src: local index d is the self row. The
			// scale-initialise pass rides the same SIMD dispatch as AxpyRow.
			tensor.ScaleRowInto(orow, h.Row(d), w)
		} else {
			for j := range orow {
				orow[j] = 0
			}
		}
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			tensor.AxpyRow(orow, h.Data[int(b.Col[e])*cols:int(b.Col[e])*cols+cols], edgeW[e])
		}
	}
}

// AggregateBackward scatters dAgg back to the sources with the same
// coefficients (the transpose of Aggregate), adding into dh (zero it first
// for a pure scatter). Sources are shared between destinations, so the
// destination-major scatter cannot be row-parallelised directly; instead the
// parallel path gathers through the transposed (source-major) contribution
// list, giving every ParallelRows worker an owned range of dh rows and no
// write races. Because the transpose stores each source's contributions in
// exactly the serial scatter's order, the result is bit-identical to
// AggregateBackwardSerial at any worker count — the property the gnn test
// suite pins with exact equality. (The alternative — destination-range
// workers with privatized dh partials merged afterwards — cannot be exact:
// merging partial sums reassociates float32 addition.) With one worker the
// serial scatter is used directly, skipping the transpose build.
func (nb *Neighborhood) AggregateBackward(dh, dAgg *tensor.Matrix) {
	if tensor.Parallelism() <= 1 {
		nb.AggregateBackwardSerial(dh, dAgg)
		return
	}
	nb.buildTranspose()
	cols := dh.Cols
	tPtr, tDst, tW := nb.tPtr, nb.tDst, nb.tW
	tensor.ParallelRows(len(nb.Block.Src), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			drow := dh.Row(s)
			for t := tPtr[s]; t < tPtr[s+1]; t++ {
				grow := dAgg.Data[int(tDst[t])*cols : int(tDst[t])*cols+cols]
				tensor.AxpyRow(drow, grow, tW[t])
			}
		}
	})
}

// AggregateBackwardSerial is the destination-major serial scatter — the
// pre-parallelisation kernel, retained as the exact-equality oracle and the
// single-worker fast path (it needs no transpose build).
func (nb *Neighborhood) AggregateBackwardSerial(dh, dAgg *tensor.Matrix) {
	b := nb.Block
	cols := dh.Cols
	for d := 0; d < len(b.Dst); d++ {
		grow := dAgg.Row(d)
		if w := nb.SelfW[d]; w != 0 {
			tensor.AxpyRow(dh.Row(d), grow, w)
		}
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			drow := dh.Data[int(b.Col[e])*cols : int(b.Col[e])*cols+cols]
			tensor.AxpyRow(drow, grow, nb.EdgeW[e])
		}
	}
}

// buildTranspose materialises the source-major contribution list: a counting
// sort of (self + edge) contributions by source, filled in destination-major
// order so each source's run preserves the serial scatter's sequence.
func (nb *Neighborhood) buildTranspose() {
	if nb.tPtr != nil {
		return
	}
	b := nb.Block
	nS := len(b.Src)
	nD := len(b.Dst)
	total := b.NumEdges()
	for d := 0; d < nD; d++ {
		if nb.SelfW[d] != 0 {
			total++
		}
	}
	var tPtr, tDst, cur []int32
	var tW []float32
	if nb.ws != nil {
		tPtr, tDst, cur = nb.ws.I32(nS+1), nb.ws.I32(total), nb.ws.I32(nS)
		tW = nb.ws.F32(total)
	} else {
		tPtr, tDst, cur = make([]int32, nS+1), make([]int32, total), make([]int32, nS)
		tW = make([]float32, total)
	}
	for s := range tPtr {
		tPtr[s] = 0
	}
	for d := 0; d < nD; d++ {
		if nb.SelfW[d] != 0 {
			tPtr[d+1]++
		}
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			tPtr[b.Col[e]+1]++
		}
	}
	for s := 0; s < nS; s++ {
		tPtr[s+1] += tPtr[s]
		cur[s] = tPtr[s]
	}
	for d := 0; d < nD; d++ {
		if w := nb.SelfW[d]; w != 0 {
			tDst[cur[d]], tW[cur[d]] = int32(d), w
			cur[d]++
		}
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			s := b.Col[e]
			tDst[cur[s]], tW[cur[s]] = int32(d), nb.EdgeW[e]
			cur[s]++
		}
	}
	nb.tPtr, nb.tDst, nb.tW = tPtr, tDst, tW
}

// PropagateLayer runs layer l over a neighborhood: aggregation, SAGE's
// self-concatenation when applicable, the dense update, and the hidden-layer
// ReLU. h holds the layer input over the neighborhood's sources. It returns
// the layer output z (|Dst| × Dims[l+1]), the dense-update input (retained
// by training for the backward pass), and the ReLU mask (nil for the output
// layer). Buffers are freshly allocated; the zero-allocation paths use the
// workspace-backed propagateLayer directly.
func (m *Model) PropagateLayer(l int, nb *Neighborhood, h *tensor.Matrix) (z, dense, mask *tensor.Matrix, err error) {
	return m.propagateLayer(l, nb, h, nil)
}

// propagateLayer is PropagateLayer with buffers borrowed from ws when it is
// non-nil (contents may be dirty — every kernel below fully overwrites its
// output; ws is plumbed directly rather than through allocator closures,
// which the zero-allocation gates would count). The layer makes one pass per
// memory touch: SAGE aggregates directly into the mean half of the dense
// input and gathers self features into the other, and bias + ReLU + mask
// are fused into a single sweep of the dense-update output.
func (m *Model) propagateLayer(l int, nb *Neighborhood, h *tensor.Matrix,
	ws *tensor.Workspace) (z, dense, mask *tensor.Matrix, err error) {
	L := m.Cfg.Layers()
	if l < 0 || l >= L {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d outside [0,%d)", l, L)
	}
	fin := m.Cfg.Dims[l]
	if h.Cols != fin {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d input %d-dim, want %d", l, h.Cols, fin)
	}
	if h.Rows != len(nb.Block.Src) {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d input has %d rows for %d sources",
			l, h.Rows, len(nb.Block.Src))
	}
	get := func(r, c int) *tensor.Matrix {
		if ws != nil {
			return ws.Get(r, c)
		}
		return tensor.New(r, c)
	}
	nd := nb.NumDst()
	if m.Cfg.Kind == SAGE {
		dense = get(nd, 2*fin)
		var self []int32
		if ws != nil {
			self = fillIdentity(ws.I32(nd))
		} else {
			self = selfIdx(nd)
		}
		tensor.GatherRowsAt(dense, 0, h, self)
		nb.aggregateInto(dense, fin, h)
	} else {
		dense = get(nd, fin)
		nb.Aggregate(dense, h)
	}
	z = get(nd, m.Cfg.Dims[l+1])
	tensor.MatMul(z, dense, m.Params.Weights[l])
	if l < L-1 {
		mask = get(nd, m.Cfg.Dims[l+1])
		tensor.AddBiasReLU(z, m.Params.Biases[l], mask)
	} else {
		tensor.AddBias(z, m.Params.Biases[l])
	}
	return z, dense, mask, nil
}
