// Layer-propagation kernels: the aggregate-over-neighbor-set and dense-update
// primitives shared by every execution path in the system — sampled training
// (Forward/Backward), exact full-graph inference (InferFullGraph), and
// sampled mini-batch inference (InferMiniBatch). A Neighborhood captures the
// message structure of one bipartite layer with its aggregation coefficients
// pre-resolved for the model kind (GCN/SAGE/GIN), so callers compose layers
// without re-implementing the aggregator.

package gnn

import (
	"fmt"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Neighborhood is one layer's message structure ready for propagation: a
// bipartite edge set (CSC over destinations, Col holding local source
// indices) plus the per-edge and per-destination-self coefficients the model
// kind assigns. Destination d's self feature is source row d (Dst is a
// prefix of Src in every Block, including the full-graph block).
type Neighborhood struct {
	Block *sampler.Block
	EdgeW []float32 // aggregation coefficient per edge
	SelfW []float32 // self-loop coefficient per destination (0 for SAGE)
}

// NewNeighborhood resolves cfg's aggregation coefficients for a block.
func NewNeighborhood(cfg Config, b *sampler.Block) *Neighborhood {
	edgeW, selfW := EdgeWeights(cfg, b)
	return &Neighborhood{Block: b, EdgeW: edgeW, SelfW: selfW}
}

// NumDst returns the number of destination vertices.
func (nb *Neighborhood) NumDst() int { return len(nb.Block.Dst) }

// Aggregate computes the weighted neighbor sum for every destination:
// out[d] = SelfW[d]·h[d] + Σ_e EdgeW[e]·h[Col[e]]. out is |Dst| × h.Cols.
// Destinations are independent, so the loop is row-parallel.
func (nb *Neighborhood) Aggregate(out, h *tensor.Matrix) {
	b := nb.Block
	cols := h.Cols
	tensor.ParallelRows(len(b.Dst), func(lo, hi int) {
		for d := lo; d < hi; d++ {
			orow := out.Row(d)
			if w := nb.SelfW[d]; w != 0 {
				hrow := h.Row(d) // Dst is a prefix of Src: local index d is the self row
				for j := range orow {
					orow[j] = w * hrow[j]
				}
			} else {
				for j := range orow {
					orow[j] = 0
				}
			}
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				w := nb.EdgeW[e]
				hrow := h.Data[int(b.Col[e])*cols : int(b.Col[e])*cols+cols]
				for j := range orow {
					orow[j] += w * hrow[j]
				}
			}
		}
	})
}

// AggregateBackward scatters dAgg back to the sources with the same
// coefficients (the transpose of Aggregate). dh must be zeroed by the
// caller. Sources are shared between destinations, so the scatter stays
// serial to avoid write races.
func (nb *Neighborhood) AggregateBackward(dh, dAgg *tensor.Matrix) {
	b := nb.Block
	cols := dh.Cols
	for d := 0; d < len(b.Dst); d++ {
		grow := dAgg.Row(d)
		if w := nb.SelfW[d]; w != 0 {
			drow := dh.Row(d)
			for j := range grow {
				drow[j] += w * grow[j]
			}
		}
		for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
			w := nb.EdgeW[e]
			drow := dh.Data[int(b.Col[e])*cols : int(b.Col[e])*cols+cols]
			for j := range grow {
				drow[j] += w * grow[j]
			}
		}
	}
}

// PropagateLayer runs layer l over a neighborhood: aggregation, SAGE's
// self-concatenation when applicable, the dense update, and the hidden-layer
// ReLU. h holds the layer input over the neighborhood's sources. It returns
// the layer output z (|Dst| × Dims[l+1]), the dense-update input (retained
// by training for the backward pass), and the ReLU mask (nil for the output
// layer).
func (m *Model) PropagateLayer(l int, nb *Neighborhood, h *tensor.Matrix) (z, dense, mask *tensor.Matrix, err error) {
	L := m.Cfg.Layers()
	if l < 0 || l >= L {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d outside [0,%d)", l, L)
	}
	fin := m.Cfg.Dims[l]
	if h.Cols != fin {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d input %d-dim, want %d", l, h.Cols, fin)
	}
	if h.Rows != len(nb.Block.Src) {
		return nil, nil, nil, fmt.Errorf("gnn: layer %d input has %d rows for %d sources",
			l, h.Rows, len(nb.Block.Src))
	}
	nd := nb.NumDst()
	if m.Cfg.Kind == SAGE {
		mean := tensor.New(nd, fin)
		nb.Aggregate(mean, h)
		self := tensor.New(nd, fin)
		tensor.GatherRows(self, h, selfIdx(nd))
		dense = tensor.New(nd, 2*fin)
		tensor.ConcatCols(dense, self, mean)
	} else {
		dense = tensor.New(nd, fin)
		nb.Aggregate(dense, h)
	}
	z = tensor.New(nd, m.Cfg.Dims[l+1])
	tensor.MatMul(z, dense, m.Params.Weights[l])
	tensor.AddBias(z, m.Params.Biases[l])
	if l < L-1 {
		mask = tensor.ReLU(z)
	}
	return z, dense, mask, nil
}
