package gnn

import (
	"fmt"
	"math"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

// ForwardState retains per-layer activations needed by the backward pass.
// A state is reusable: passing the same state to ForwardWS across iterations
// reuses its layer slices and neighborhood structs, so steady-state training
// holds it (together with a Workspace) to run allocation-free.
type ForwardState struct {
	mb     *sampler.MiniBatch
	inputs []*tensor.Matrix // H over Blocks[l].Src, layer input
	aggs   []*tensor.Matrix // aggregated (GCN) / concatenated (SAGE) input to the dense update
	masks  []*tensor.Matrix // ReLU masks (nil for the output layer)
	nbs    []Neighborhood   // per-layer message structure, reused across iterations
	view   tensor.Matrix    // scratch header for the SAGE dh-prefix view
	Logits *tensor.Matrix   // |targets| × fL
}

// EdgeWeights computes the aggregation coefficients a model configuration
// assigns to a block's edges and self loops. Exported so alternative
// execution backends (the accelerator kernel simulator) use the exact same
// coefficients as the reference path.
func EdgeWeights(cfg Config, b *sampler.Block) (edgeW []float32, selfW []float32) {
	return EdgeWeightsInto(cfg, b, make([]float32, b.NumEdges()), make([]float32, len(b.Dst)))
}

// EdgeWeightsInto is EdgeWeights into caller-provided buffers (reused across
// mini-batches by the training loop and the accelerator backend): edgeW must
// have length NumEdges(), selfW length |Dst|. Every element is overwritten.
// Returns the filled slices.
func EdgeWeightsInto(cfg Config, b *sampler.Block, edgeW, selfW []float32) ([]float32, []float32) {
	if len(edgeW) != b.NumEdges() || len(selfW) != len(b.Dst) {
		panic(fmt.Sprintf("gnn: EdgeWeightsInto buffers %d/%d for %d edges, %d destinations",
			len(edgeW), len(selfW), b.NumEdges(), len(b.Dst)))
	}
	nd := len(b.Dst)
	switch cfg.Kind {
	case GCN:
		if cfg.Degrees != nil {
			// Paper Eq. 3: 1/√(D(v)·D(u)), smoothed with +1 self loops.
			norm := func(v int32) float32 {
				return float32(1 / math.Sqrt(float64(cfg.Degrees[v])+1))
			}
			for d := 0; d < nd; d++ {
				nv := norm(b.Dst[d])
				selfW[d] = nv * nv
				for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
					edgeW[e] = nv * norm(b.Src[b.Col[e]])
				}
			}
			return edgeW, selfW
		}
		// Mean over {v} ∪ N(v): linear, degree-robust fallback.
		for d := 0; d < nd; d++ {
			inv := float32(1) / float32(b.RowPtr[d+1]-b.RowPtr[d]+1)
			selfW[d] = inv
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = inv
			}
		}
	case SAGE:
		// Mean over neighbors only; the self feature is concatenated
		// separately, so selfW stays 0.
		for d := 0; d < nd; d++ {
			selfW[d] = 0
			deg := b.RowPtr[d+1] - b.RowPtr[d]
			if deg == 0 {
				continue
			}
			inv := float32(1) / float32(deg)
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = inv
			}
		}
	case GIN:
		// Sum aggregation with emphasised self loop: (1+ε)·h_v + Σ h_u.
		selfCoef := float32(1 + cfg.GINEps)
		for d := 0; d < nd; d++ {
			selfW[d] = selfCoef
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = 1
			}
		}
	}
	return edgeW, selfW
}

// Forward runs the L-layer forward pass. x holds the gathered input features
// for mb.InputNodes() (|V0| × f0) and is not mutated. The returned state
// feeds Backward; state.Logits holds the output-layer pre-softmax scores.
func (m *Model) Forward(mb *sampler.MiniBatch, x *tensor.Matrix) (*ForwardState, error) {
	st := &ForwardState{}
	if err := m.ForwardWS(tensor.NewWorkspace(), st, mb, x); err != nil {
		return nil, err
	}
	return st, nil
}

// ForwardWS is Forward with every intermediate borrowed from ws and the
// layer bookkeeping reused from st: the zero-allocation form the trainer
// backends and serving workers run. Buffers (including st.Logits) are valid
// until the owner's next ws.Reset; st must not be shared between concurrent
// steps.
func (m *Model) ForwardWS(ws *tensor.Workspace, st *ForwardState, mb *sampler.MiniBatch, x *tensor.Matrix) error {
	L := m.Cfg.Layers()
	if len(mb.Blocks) != L {
		return fmt.Errorf("gnn: mini-batch has %d blocks, model has %d layers", len(mb.Blocks), L)
	}
	if x.Rows != len(mb.InputNodes()) || x.Cols != m.Cfg.Dims[0] {
		return fmt.Errorf("gnn: feature matrix %dx%d, want %dx%d",
			x.Rows, x.Cols, len(mb.InputNodes()), m.Cfg.Dims[0])
	}
	st.mb = mb
	if len(st.inputs) != L {
		st.inputs = make([]*tensor.Matrix, L)
		st.aggs = make([]*tensor.Matrix, L)
		st.masks = make([]*tensor.Matrix, L)
		st.nbs = make([]Neighborhood, L)
	}
	h := x
	for l := 0; l < L; l++ {
		st.inputs[l] = h
		nb := &st.nbs[l]
		nb.init(m.Cfg, mb.Blocks[l], ws)
		z, dense, mask, err := m.propagateLayer(l, nb, h, ws)
		if err != nil {
			return err
		}
		st.aggs[l] = dense
		st.masks[l] = mask
		h = z
	}
	st.Logits = h
	return nil
}

// selfIdx returns [0, 1, ..., n-1] as int32 (the Dst-prefix rows of Src).
func selfIdx(n int) []int32 {
	return fillIdentity(make([]int32, n))
}

func fillIdentity(idx []int32) []int32 {
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// Backward propagates dLogits (gradient of the loss w.r.t. the logits)
// through all layers and returns parameter gradients. It mirrors forward
// propagation in reverse, as the paper describes (§II-B).
func (m *Model) Backward(st *ForwardState, dLogits *tensor.Matrix) (*Gradients, error) {
	grads := NewGradients(m.Params)
	if err := m.BackwardWS(tensor.NewWorkspace(), st, dLogits, grads); err != nil {
		return nil, err
	}
	return grads, nil
}

// BackwardWS is Backward into caller-owned gradients (every element
// overwritten) with all intermediates borrowed from ws — the
// zero-allocation form. st must come from a matching ForwardWS whose
// buffers are still live; dLogits is not mutated.
func (m *Model) BackwardWS(ws *tensor.Workspace, st *ForwardState, dLogits *tensor.Matrix, grads *Gradients) error {
	L := m.Cfg.Layers()
	if dLogits.Rows != st.Logits.Rows || dLogits.Cols != st.Logits.Cols {
		return fmt.Errorf("gnn: dLogits %dx%d, want %dx%d",
			dLogits.Rows, dLogits.Cols, st.Logits.Rows, st.Logits.Cols)
	}
	dz := ws.Get(dLogits.Rows, dLogits.Cols)
	copy(dz.Data, dLogits.Data)
	for l := L - 1; l >= 0; l-- {
		b := st.mb.Blocks[l]
		if st.masks[l] != nil {
			tensor.ReLUBackward(dz, st.masks[l])
		}
		// Dense update backward: z = dense·W + bias.
		tensor.TMatMul(grads.Weights[l], st.aggs[l], dz)
		grads.Biases[l].Zero()
		tensor.BiasGrad(grads.Biases[l], dz)
		dDense := ws.Get(dz.Rows, m.Cfg.inDim(l))
		tensor.MatMulT(dDense, dz, m.Params.Weights[l])

		// Aggregation backward into the layer input.
		fin := m.Cfg.Dims[l]
		dh := ws.GetZero(len(b.Src), fin)
		nb := &st.nbs[l]
		if m.Cfg.Kind == SAGE {
			// The self half of dDense lands directly on the Dst-prefix rows
			// of dh (they are zero, so the split's copy equals the scatter-add
			// the unfused path performed); the mean half feeds the scatter.
			dSelf := &st.view
			dSelf.Rows, dSelf.Cols, dSelf.Data = dz.Rows, fin, dh.Data[:dz.Rows*fin]
			dMean := ws.Get(dz.Rows, fin)
			tensor.SplitCols(dSelf, dMean, dDense)
			nb.AggregateBackward(dh, dMean)
		} else {
			nb.AggregateBackward(dh, dDense)
		}
		dz = dh
	}
	return nil
}

// TrainStep runs forward, loss, and backward for one mini-batch, returning
// the gradients (not yet applied), the mean loss, and the training accuracy.
func (m *Model) TrainStep(mb *sampler.MiniBatch, x *tensor.Matrix) (*Gradients, float64, float64, error) {
	grads := NewGradients(m.Params)
	loss, acc, err := m.TrainStepWS(tensor.NewWorkspace(), &ForwardState{}, mb, x, grads)
	if err != nil {
		return nil, 0, 0, err
	}
	return grads, loss, acc, nil
}

// TrainStepWS is TrainStep against caller-owned state: intermediates come
// from ws, layer bookkeeping is reused from st, and the gradients are
// written into grads (every element overwritten). With ws.Reset called at
// each iteration boundary the steady-state step allocates nothing — the
// property core's trainer backends rely on and the AllocsPerRun gates
// enforce. The caller resets ws; this function only borrows.
func (m *Model) TrainStepWS(ws *tensor.Workspace, st *ForwardState, mb *sampler.MiniBatch,
	x *tensor.Matrix, grads *Gradients) (float64, float64, error) {
	if err := m.ForwardWS(ws, st, mb, x); err != nil {
		return 0, 0, err
	}
	if len(mb.Labels) != st.Logits.Rows {
		return 0, 0, fmt.Errorf("gnn: %d labels for %d targets", len(mb.Labels), st.Logits.Rows)
	}
	dLogits := ws.Get(st.Logits.Rows, st.Logits.Cols)
	loss, correct := tensor.SoftmaxCrossEntropy(dLogits, st.Logits, mb.Labels)
	if err := m.BackwardWS(ws, st, dLogits, grads); err != nil {
		return 0, 0, err
	}
	return loss, float64(correct) / float64(len(mb.Labels)), nil
}
