package gnn

import (
	"fmt"
	"math"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

// ForwardState retains per-layer activations needed by the backward pass.
type ForwardState struct {
	mb     *sampler.MiniBatch
	inputs []*tensor.Matrix // H over Blocks[l].Src, layer input
	aggs   []*tensor.Matrix // aggregated (GCN) / concatenated (SAGE) input to the dense update
	masks  []*tensor.Matrix // ReLU masks (nil for the output layer)
	Logits *tensor.Matrix   // |targets| × fL
}

// EdgeWeights computes the aggregation coefficients a model configuration
// assigns to a block's edges and self loops. Exported so alternative
// execution backends (the accelerator kernel simulator) use the exact same
// coefficients as the reference path.
func EdgeWeights(cfg Config, b *sampler.Block) (edgeW []float32, selfW []float32) {
	m := &Model{Cfg: cfg}
	nd := len(b.Dst)
	edgeW = make([]float32, b.NumEdges())
	selfW = make([]float32, nd)
	switch m.Cfg.Kind {
	case GCN:
		if m.Cfg.Degrees != nil {
			// Paper Eq. 3: 1/√(D(v)·D(u)), smoothed with +1 self loops.
			norm := func(v int32) float32 {
				return float32(1 / math.Sqrt(float64(m.Cfg.Degrees[v])+1))
			}
			for d := 0; d < nd; d++ {
				nd := norm(b.Dst[d])
				selfW[d] = nd * nd
				for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
					edgeW[e] = nd * norm(b.Src[b.Col[e]])
				}
			}
			return edgeW, selfW
		}
		// Mean over {v} ∪ N(v): linear, degree-robust fallback.
		for d := 0; d < nd; d++ {
			inv := float32(1) / float32(b.RowPtr[d+1]-b.RowPtr[d]+1)
			selfW[d] = inv
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = inv
			}
		}
	case SAGE:
		// Mean over neighbors only; the self feature is concatenated
		// separately, so selfW stays 0.
		for d := 0; d < nd; d++ {
			deg := b.RowPtr[d+1] - b.RowPtr[d]
			if deg == 0 {
				continue
			}
			inv := float32(1) / float32(deg)
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = inv
			}
		}
	case GIN:
		// Sum aggregation with emphasised self loop: (1+ε)·h_v + Σ h_u.
		selfCoef := float32(1 + m.Cfg.GINEps)
		for d := 0; d < nd; d++ {
			selfW[d] = selfCoef
			for e := b.RowPtr[d]; e < b.RowPtr[d+1]; e++ {
				edgeW[e] = 1
			}
		}
	}
	return edgeW, selfW
}

// Forward runs the L-layer forward pass. x holds the gathered input features
// for mb.InputNodes() (|V0| × f0) and is not mutated. The returned state
// feeds Backward; state.Logits holds the output-layer pre-softmax scores.
func (m *Model) Forward(mb *sampler.MiniBatch, x *tensor.Matrix) (*ForwardState, error) {
	L := m.Cfg.Layers()
	if len(mb.Blocks) != L {
		return nil, fmt.Errorf("gnn: mini-batch has %d blocks, model has %d layers", len(mb.Blocks), L)
	}
	if x.Rows != len(mb.InputNodes()) || x.Cols != m.Cfg.Dims[0] {
		return nil, fmt.Errorf("gnn: feature matrix %dx%d, want %dx%d",
			x.Rows, x.Cols, len(mb.InputNodes()), m.Cfg.Dims[0])
	}
	st := &ForwardState{
		mb:     mb,
		inputs: make([]*tensor.Matrix, L),
		aggs:   make([]*tensor.Matrix, L),
		masks:  make([]*tensor.Matrix, L),
	}
	h := x
	for l := 0; l < L; l++ {
		st.inputs[l] = h
		z, dense, mask, err := m.PropagateLayer(l, NewNeighborhood(m.Cfg, mb.Blocks[l]), h)
		if err != nil {
			return nil, err
		}
		st.aggs[l] = dense
		st.masks[l] = mask
		h = z
	}
	st.Logits = h
	return st, nil
}

// selfIdx returns [0, 1, ..., n-1] as int32 (the Dst-prefix rows of Src).
func selfIdx(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// Backward propagates dLogits (gradient of the loss w.r.t. the logits)
// through all layers and returns parameter gradients. It mirrors forward
// propagation in reverse, as the paper describes (§II-B).
func (m *Model) Backward(st *ForwardState, dLogits *tensor.Matrix) (*Gradients, error) {
	L := m.Cfg.Layers()
	if dLogits.Rows != st.Logits.Rows || dLogits.Cols != st.Logits.Cols {
		return nil, fmt.Errorf("gnn: dLogits %dx%d, want %dx%d",
			dLogits.Rows, dLogits.Cols, st.Logits.Rows, st.Logits.Cols)
	}
	grads := NewGradients(m.Params)
	dz := dLogits.Clone()
	for l := L - 1; l >= 0; l-- {
		b := st.mb.Blocks[l]
		if st.masks[l] != nil {
			tensor.ReLUBackward(dz, st.masks[l])
		}
		// Dense update backward: z = dense·W + bias.
		tensor.TMatMul(grads.Weights[l], st.aggs[l], dz)
		tensor.BiasGrad(grads.Biases[l], dz)
		dDense := tensor.New(dz.Rows, m.Cfg.inDim(l))
		tensor.MatMulT(dDense, dz, m.Params.Weights[l])

		// Aggregation backward into the layer input.
		fin := m.Cfg.Dims[l]
		dh := tensor.New(len(b.Src), fin)
		nb := NewNeighborhood(m.Cfg, b)
		if m.Cfg.Kind == SAGE {
			dSelf := tensor.New(dz.Rows, fin)
			dMean := tensor.New(dz.Rows, fin)
			tensor.SplitCols(dSelf, dMean, dDense)
			tensor.ScatterAddRows(dh, dSelf, selfIdx(dz.Rows))
			nb.AggregateBackward(dh, dMean)
		} else {
			nb.AggregateBackward(dh, dDense)
		}
		dz = dh
	}
	return grads, nil
}

// TrainStep runs forward, loss, and backward for one mini-batch, returning
// the gradients (not yet applied), the mean loss, and the training accuracy.
func (m *Model) TrainStep(mb *sampler.MiniBatch, x *tensor.Matrix) (*Gradients, float64, float64, error) {
	st, err := m.Forward(mb, x)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(mb.Labels) != st.Logits.Rows {
		return nil, 0, 0, fmt.Errorf("gnn: %d labels for %d targets", len(mb.Labels), st.Logits.Rows)
	}
	dLogits := tensor.New(st.Logits.Rows, st.Logits.Cols)
	loss, correct := tensor.SoftmaxCrossEntropy(dLogits, st.Logits, mb.Labels)
	grads, err := m.Backward(st, dLogits)
	if err != nil {
		return nil, 0, 0, err
	}
	return grads, loss, float64(correct) / float64(len(mb.Labels)), nil
}
