//go:build race

package gnn

// raceEnabled skips the exact allocation gates under the race detector,
// whose instrumentation deliberately bypasses sync.Pool at random (to catch
// misuse), making steady-state allocation counts nondeterministic.
const raceEnabled = true
