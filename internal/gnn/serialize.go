package gnn

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Checkpoint format: a small custom binary layout (magic, version, config,
// then each tensor as dims + raw little-endian float32s). Deliberately not
// gob: the format is stable across Go versions, inspectable, and mirrors
// what a C++/HLS consumer of the weights (the paper's FPGA toolchain) could
// read directly.
const (
	checkpointMagic   = 0x48594742 // "HYGB"
	checkpointVersion = 1
)

// Save serialises the model configuration and parameters.
func (m *Model) Save(w io.Writer) error {
	hdr := []uint32{checkpointMagic, checkpointVersion, uint32(m.Cfg.Kind), uint32(len(m.Cfg.Dims))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, m.Cfg.GINEps); err != nil {
		return err
	}
	for _, d := range m.Cfg.Dims {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	for l := range m.Params.Weights {
		if err := writeMatrix(w, m.Params.Weights[l]); err != nil {
			return err
		}
		if err := writeMatrix(w, m.Params.Biases[l]); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a checkpoint written by Save and reconstructs the model.
// Degrees (GCN normalization) are not part of the checkpoint; re-attach
// them to the returned Config if needed.
func Load(r io.Reader) (*Model, error) {
	var magic, version, kind, nDims uint32
	for _, p := range []*uint32{&magic, &version, &kind, &nDims} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("gnn: not a HyScale checkpoint (magic %#x)", magic)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("gnn: checkpoint version %d, want %d", version, checkpointVersion)
	}
	if nDims < 2 || nDims > 64 {
		return nil, fmt.Errorf("gnn: implausible dim count %d", nDims)
	}
	var eps float64
	if err := binary.Read(r, binary.LittleEndian, &eps); err != nil {
		return nil, err
	}
	dims := make([]int, nDims)
	for i := range dims {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		dims[i] = int(d)
	}
	cfg := Config{Kind: Kind(kind), Dims: dims, GINEps: eps}
	m, err := NewModel(cfg, tensor.NewRNG(0))
	if err != nil {
		return nil, err
	}
	for l := range m.Params.Weights {
		if err := readMatrixInto(r, m.Params.Weights[l]); err != nil {
			return nil, err
		}
		if err := readMatrixInto(r, m.Params.Biases[l]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func writeMatrix(w io.Writer, m *tensor.Matrix) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(m.Rows)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(m.Cols)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, m.Data)
}

func readMatrixInto(r io.Reader, m *tensor.Matrix) error {
	var rows, cols uint32
	if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
		return err
	}
	if int(rows) != m.Rows || int(cols) != m.Cols {
		return fmt.Errorf("gnn: checkpoint tensor %dx%d, model expects %dx%d", rows, cols, m.Rows, m.Cols)
	}
	return binary.Read(r, binary.LittleEndian, m.Data)
}
