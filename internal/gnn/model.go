// Package gnn implements the GNN models the paper evaluates — GCN (Kipf &
// Welling) and GraphSAGE (Hamilton et al.) — in the aggregate-update
// paradigm (paper §II-A, Eqs. 1–4), with full forward and backward passes
// over sampled mini-batch blocks.
//
// Aggregation is linear in the input features with per-edge coefficients, so
// the backward pass is the transposed scatter with the same coefficients;
// gradient correctness is verified by finite differences in the tests.
package gnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Kind selects the model architecture.
type Kind int

const (
	// GCN: a_v = Σ_u norm(v,u)·h_u (self loop included), h_v = ReLU(a_v·W + b).
	GCN Kind = iota
	// SAGE: a_v = h_v ‖ mean(h_u), h_v = ReLU(a_v·W + b).
	SAGE
	// GIN (Xu et al., ICLR'19): a_v = (1+ε)·h_v + Σ_u h_u, h_v = ReLU(a_v·W + b).
	// Not evaluated in the paper, but it follows the same aggregate-update
	// paradigm (§II-A) the system claims to support generically — included
	// as the generality check.
	GIN
)

// String returns the paper's name for the model.
func (k Kind) String() string {
	switch k {
	case GCN:
		return "GCN"
	case SAGE:
		return "GraphSAGE"
	case GIN:
		return "GIN"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a model: architecture and layer dimensions
// {f0, f1, ..., fL}. The paper uses two layers with hidden size 256.
type Config struct {
	Kind Kind
	Dims []int
	// Degrees optionally supplies global vertex degrees for GCN's symmetric
	// normalization 1/√(D(v)·D(u)) (paper Eq. 3, with +1 self-loop smoothing).
	// When nil, GCN falls back to mean normalization over {v}∪N(v), which is
	// also linear and converges equivalently on our synthetic tasks.
	Degrees []int32
	// GINEps is GIN's ε (self-feature emphasis); zero is the common default.
	GINEps float64
}

// Layers returns L.
func (c Config) Layers() int { return len(c.Dims) - 1 }

// inDim returns the input width of layer l's dense update (doubled for SAGE's
// concatenation).
func (c Config) inDim(l int) int {
	if c.Kind == SAGE {
		return 2 * c.Dims[l]
	}
	return c.Dims[l]
}

// Parameters holds the model weights: one dense update per layer.
type Parameters struct {
	Weights []*tensor.Matrix // layer l: inDim(l) × Dims[l+1]
	Biases  []*tensor.Matrix // layer l: 1 × Dims[l+1]
}

// NewParameters allocates Xavier-initialised parameters for cfg.
func NewParameters(cfg Config, rng *tensor.RNG) *Parameters {
	L := cfg.Layers()
	p := &Parameters{Weights: make([]*tensor.Matrix, L), Biases: make([]*tensor.Matrix, L)}
	for l := 0; l < L; l++ {
		p.Weights[l] = tensor.New(cfg.inDim(l), cfg.Dims[l+1])
		tensor.XavierInit(p.Weights[l], rng)
		p.Biases[l] = tensor.New(1, cfg.Dims[l+1])
	}
	return p
}

// Clone deep-copies the parameters.
func (p *Parameters) Clone() *Parameters {
	out := &Parameters{
		Weights: make([]*tensor.Matrix, len(p.Weights)),
		Biases:  make([]*tensor.Matrix, len(p.Biases)),
	}
	for i := range p.Weights {
		out.Weights[i] = p.Weights[i].Clone()
		out.Biases[i] = p.Biases[i].Clone()
	}
	return out
}

// CopyFrom overwrites p with src (shapes must match).
func (p *Parameters) CopyFrom(src *Parameters) {
	for i := range p.Weights {
		copy(p.Weights[i].Data, src.Weights[i].Data)
		copy(p.Biases[i].Data, src.Biases[i].Data)
	}
}

// NumParams returns the total number of scalar parameters.
func (p *Parameters) NumParams() int {
	n := 0
	for i := range p.Weights {
		n += len(p.Weights[i].Data) + len(p.Biases[i].Data)
	}
	return n
}

// ModelBytes returns the model size in bytes (Sfeat = 4), the numerator of
// the paper's synchronization-cost model (Eq. 13).
func (p *Parameters) ModelBytes() int64 { return int64(p.NumParams()) * 4 }

// Gradients mirrors Parameters.
type Gradients struct {
	Weights []*tensor.Matrix
	Biases  []*tensor.Matrix
}

// NewGradients allocates zeroed gradients shaped like p.
func NewGradients(p *Parameters) *Gradients {
	g := &Gradients{
		Weights: make([]*tensor.Matrix, len(p.Weights)),
		Biases:  make([]*tensor.Matrix, len(p.Biases)),
	}
	for i := range p.Weights {
		g.Weights[i] = tensor.New(p.Weights[i].Rows, p.Weights[i].Cols)
		g.Biases[i] = tensor.New(p.Biases[i].Rows, p.Biases[i].Cols)
	}
	return g
}

// Zero clears all gradient entries.
func (g *Gradients) Zero() {
	for i := range g.Weights {
		g.Weights[i].Zero()
		g.Biases[i].Zero()
	}
}

// Axpy accumulates g += alpha·src.
func (g *Gradients) Axpy(alpha float32, src *Gradients) {
	for i := range g.Weights {
		tensor.Axpy(g.Weights[i], alpha, src.Weights[i])
		tensor.Axpy(g.Biases[i], alpha, src.Biases[i])
	}
}

// Scale multiplies all gradients by s.
func (g *Gradients) Scale(s float32) {
	for i := range g.Weights {
		tensor.Scale(g.Weights[i], s)
		tensor.Scale(g.Biases[i], s)
	}
}

// Clone deep-copies the gradients.
func (g *Gradients) Clone() *Gradients {
	out := &Gradients{
		Weights: make([]*tensor.Matrix, len(g.Weights)),
		Biases:  make([]*tensor.Matrix, len(g.Biases)),
	}
	for i := range g.Weights {
		out.Weights[i] = g.Weights[i].Clone()
		out.Biases[i] = g.Biases[i].Clone()
	}
	return out
}

// MaxAbsDiff returns the largest element-wise difference across all tensors.
func (g *Gradients) MaxAbsDiff(other *Gradients) float64 {
	var max float64
	for i := range g.Weights {
		if d := g.Weights[i].MaxAbsDiff(other.Weights[i]); d > max {
			max = d
		}
		if d := g.Biases[i].MaxAbsDiff(other.Biases[i]); d > max {
			max = d
		}
	}
	return max
}

// Model couples a config with parameters.
type Model struct {
	Cfg    Config
	Params *Parameters
}

// NewModel builds a model with fresh parameters.
func NewModel(cfg Config, rng *tensor.RNG) (*Model, error) {
	if len(cfg.Dims) < 2 {
		return nil, fmt.Errorf("gnn: need at least 2 dims, got %v", cfg.Dims)
	}
	for _, d := range cfg.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("gnn: non-positive dim in %v", cfg.Dims)
		}
	}
	if cfg.Kind != GCN && cfg.Kind != SAGE && cfg.Kind != GIN {
		return nil, fmt.Errorf("gnn: unknown kind %d", cfg.Kind)
	}
	return &Model{Cfg: cfg, Params: NewParameters(cfg, rng)}, nil
}
