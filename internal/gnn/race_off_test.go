//go:build !race

package gnn

const raceEnabled = false
