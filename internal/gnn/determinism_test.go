package gnn

import (
	"testing"

	"repro/internal/tensor"
)

// Single-trainer loop (no synchronizer concurrency): parallelism must not
// change a single bit of the training trajectory.
func TestDeterminismAcrossParallelism(t *testing.T) {
	run := func(par int) *Parameters {
		prev := tensor.SetParallelism(par)
		defer tensor.SetParallelism(prev)
		dims := []int{8, 16, 5}
		fx := makeFixture(t, dims, 32, 77)
		m, err := NewModel(Config{Kind: SAGE, Dims: dims}, tensor.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			g, _, _, err := m.TrainStep(fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			for l := range m.Params.Weights {
				tensor.Axpy(m.Params.Weights[l], -0.1, g.Weights[l])
				tensor.Axpy(m.Params.Biases[l], -0.1, g.Biases[l])
			}
		}
		return m.Params
	}
	p1 := run(1)
	p4 := run(4)
	for l := range p1.Weights {
		if !p1.Weights[l].Equal(p4.Weights[l]) || !p1.Biases[l].Equal(p4.Biases[l]) {
			t.Fatalf("layer %d: parallelism changed the training trajectory", l)
		}
	}
}

// The SIMD mirror of the test above: generic, SSE and AVX2 (where the CPU
// has them) must produce the same training trajectory bit for bit — the
// kernels keep multiply and add unfused exactly so this holds.
func TestDeterminismAcrossSIMDLevels(t *testing.T) {
	run := func(lvl tensor.SIMDLevel) *Parameters {
		prev, err := tensor.SetSIMDLevel(lvl)
		if err != nil {
			t.Fatalf("SetSIMDLevel(%v): %v", lvl, err)
		}
		defer tensor.SetSIMDLevel(prev)
		dims := []int{8, 16, 5}
		fx := makeFixture(t, dims, 32, 77)
		m, err := NewModel(Config{Kind: SAGE, Dims: dims}, tensor.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			g, _, _, err := m.TrainStep(fx.mb, fx.x)
			if err != nil {
				t.Fatal(err)
			}
			for l := range m.Params.Weights {
				tensor.Axpy(m.Params.Weights[l], -0.1, g.Weights[l])
				tensor.Axpy(m.Params.Biases[l], -0.1, g.Biases[l])
			}
		}
		return m.Params
	}
	ref := run(tensor.SIMDGeneric)
	for lvl := tensor.SIMDSSE; lvl <= tensor.DetectedSIMDLevel(); lvl++ {
		p := run(lvl)
		for l := range ref.Weights {
			if !ref.Weights[l].Equal(p.Weights[l]) || !ref.Biases[l].Equal(p.Biases[l]) {
				t.Fatalf("layer %d: SIMD level %v changed the training trajectory", l, lvl)
			}
		}
	}
}
