package serve

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/tensor"
)

func TestBatcherValidation(t *testing.T) {
	if _, err := NewDynamicBatcher(0, 1e-3); err == nil {
		t.Fatal("expected error for zero max batch")
	}
	if _, err := NewDynamicBatcher(4, -1); err == nil {
		t.Fatal("expected error for negative window")
	}
}

func TestBatcherClosesBySize(t *testing.T) {
	b, _ := NewDynamicBatcher(3, 1.0)
	for i := 0; i < 2; i++ {
		if batch, _ := b.Add(Request{ID: i, Arrival: float64(i) * 1e-3}); batch != nil {
			t.Fatal("closed before reaching max batch")
		}
	}
	batch, closeAt := b.Add(Request{ID: 2, Arrival: 2e-3})
	if len(batch) != 3 || closeAt != 2e-3 {
		t.Fatalf("size close: %d requests at %v", len(batch), closeAt)
	}
	if b.Pending() != 0 {
		t.Fatal("pending not drained by size close")
	}
}

func TestBatcherClosesByDeadline(t *testing.T) {
	b, _ := NewDynamicBatcher(100, 5e-3)
	b.Add(Request{ID: 0, Arrival: 1e-3})
	b.Add(Request{ID: 1, Arrival: 2e-3})
	if batch, _ := b.CloseExpired(3e-3); batch != nil {
		t.Fatal("closed before the deadline")
	}
	batch, closeAt := b.CloseExpired(7e-3)
	if len(batch) != 2 || closeAt != 6e-3 { // first arrival + window
		t.Fatalf("deadline close: %d requests at %v", len(batch), closeAt)
	}
	if batch, _ := b.CloseExpired(10); batch != nil {
		t.Fatal("closed an empty batch")
	}
}

func TestBatcherFlush(t *testing.T) {
	b, _ := NewDynamicBatcher(100, 2e-3)
	if batch, _ := b.Flush(); batch != nil {
		t.Fatal("flushed an empty batcher")
	}
	b.Add(Request{ID: 0, Arrival: 1.0})
	batch, closeAt := b.Flush()
	if len(batch) != 1 || closeAt != 1.0+2e-3 {
		t.Fatalf("flush: %d requests at %v", len(batch), closeAt)
	}
}

func TestAdmissionControllerBounds(t *testing.T) {
	a, err := NewAdmissionController(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdmissionController(0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	if !a.Admit(0) || !a.Admit(0) {
		t.Fatal("admissions below capacity rejected")
	}
	if a.Admit(0) {
		t.Fatal("admission above capacity accepted")
	}
	// Both waiting requests dispatch, completing at t=1 and t=2.
	a.Dispatched([]float64{1, 2})
	if a.Admit(0.5) {
		t.Fatal("admitted while both still in flight")
	}
	if !a.Admit(1.5) {
		t.Fatal("slot not freed by completion at t=1")
	}
}

// Out-of-order completion times: Dispatched pushes completions in arbitrary
// order; Admit must free slots strictly by the virtual clock (the min-heap
// path), not insertion order.
func TestAdmissionOutOfOrderCompletions(t *testing.T) {
	a, err := NewAdmissionController(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !a.Admit(0) {
			t.Fatal("admission below capacity rejected")
		}
	}
	// Completions pushed out of order: 5, 1, 3.
	a.Dispatched([]float64{5, 1, 3})
	if a.Outstanding() != 3 {
		t.Fatalf("outstanding %d after dispatch, want 3", a.Outstanding())
	}
	if a.Admit(0.5) {
		t.Fatal("admitted with all three still in flight")
	}
	if !a.Admit(2) { // t=2: only the completion at t=1 has freed
		t.Fatal("slot from the earliest completion not freed")
	}
	if a.Admit(2.5) {
		t.Fatal("two slots freed when only one completion passed")
	}
	// t=10: everything in flight has completed; only the two waiting remain.
	if !a.Admit(10) {
		t.Fatalf("outstanding %d at t=10, expected room", a.Outstanding())
	}
}

// Capacity exhaustion and drain-to-zero cycles: fill the queue, drain it
// completely through dispatch + completion, and refill — the heap must come
// back to empty each cycle with no leaked slots.
func TestAdmissionDrainToZeroCycles(t *testing.T) {
	const capacity = 4
	a, err := NewAdmissionController(capacity)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for cycle := 0; cycle < 3; cycle++ {
		admitted := 0
		for a.Admit(now) {
			admitted++
		}
		if admitted != capacity {
			t.Fatalf("cycle %d: admitted %d, want %d", cycle, admitted, capacity)
		}
		// Dispatch all of them, completing in reverse order.
		completions := make([]float64, capacity)
		for i := range completions {
			completions[i] = now + float64(capacity-i)
		}
		a.Dispatched(completions)
		if a.Outstanding() != capacity {
			t.Fatalf("cycle %d: outstanding %d after dispatch", cycle, a.Outstanding())
		}
		// Step past each completion: one slot frees at a time.
		for k := 1; k <= capacity; k++ {
			if !a.Admit(now + float64(k) + 0.5) {
				t.Fatalf("cycle %d: completion %d did not free a slot", cycle, k)
			}
			a.Dispatched([]float64{now + float64(k) + 0.6}) // drain immediately
		}
		now += float64(capacity) + 10 // everything completes; back to zero
		if !a.Admit(now) {
			t.Fatalf("cycle %d: queue did not drain to zero", cycle)
		}
		if got := a.Outstanding(); got != 1 { // only the probe admit remains
			t.Fatalf("cycle %d: outstanding %d after drain, want 1", cycle, got)
		}
		a.Dispatched([]float64{now}) // probe completes instantly
		now++                        // next cycle's Admit pops it
	}
}

// Dispatched with more completions than waiting requests (cache hits answer
// several requests per batch slot) must clamp, not underflow.
func TestAdmissionDispatchClamp(t *testing.T) {
	a, err := NewAdmissionController(8)
	if err != nil {
		t.Fatal(err)
	}
	a.Admit(0)
	a.Dispatched([]float64{1, 2, 3}) // 3 completions, 1 waiting
	if a.Outstanding() != 3 {
		t.Fatalf("outstanding %d, want the 3 in-flight", a.Outstanding())
	}
	if got := a.KindInflight(hw.CPU); got != 3 {
		t.Fatalf("legacy Dispatched landed on %d CPU in-flight, want 3", got)
	}
}

func TestRequestStreamOrderingAndSkew(t *testing.T) {
	rng := tensor.NewRNG(3)
	s, err := NewRequestStream(1000, 500, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRequestStream(0, 500, 1, rng); err == nil {
		t.Fatal("expected error for zero vertices")
	}
	if _, err := NewRequestStream(10, 0, 1, rng); err == nil {
		t.Fatal("expected error for zero rate")
	}
	prev := -1.0
	low := 0
	const n = 4000
	var last float64
	for i := 0; i < n; i++ {
		r := s.Next()
		if r.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = r.Arrival
		if r.Vertex < 0 || r.Vertex >= 1000 {
			t.Fatalf("vertex %d out of range", r.Vertex)
		}
		if r.Vertex < 100 {
			low++
		}
		last = r.Arrival
	}
	// Zipf(1.2): the hottest 10% of vertices draw far more than 10% of
	// requests.
	if float64(low)/n < 0.3 {
		t.Fatalf("hot-set share %.2f — popularity not skewed", float64(low)/n)
	}
	// Open loop at 500 req/s: 4000 arrivals span ≈ 8 virtual seconds.
	if last < 4 || last > 16 {
		t.Fatalf("stream span %.2fs inconsistent with rate", last)
	}
	if math.IsNaN(last) {
		t.Fatal("NaN arrival")
	}
}
