package serve

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// faultWindow is one [from, to) service interval with an inflation factor.
type faultWindow struct{ from, to, factor float64 }

// fleetHealth is the serving fleet's per-worker health view of a fault
// schedule: pure lookups in virtual time (a worker's liveness, stall and
// straggler adjustments are functions of (worker, time), so routing needs no
// event ordering), plus the ordered fail-stop list the server applies to the
// admission plane as arrivals pass each fail time. A server only carries a
// fleetHealth when the schedule has serving events — with none, every hot
// path stays on its pre-fault branch.
type fleetHealth struct {
	failAt []float64 // per pool worker: fail-stop time, +Inf when never
	stalls [][]faultWindow
	slows  [][]faultWindow

	firstFailSec float64 // earliest fail-stop (+Inf none): the recovery anchor

	// fails is the fail-stop (worker, time) list in time order; nextFail
	// tracks how many the admission plane has applied.
	fails    []faultWindow // from = fail time, factor = worker index
	nextFail int
}

// newFleetHealth builds the health view for a pool of `workers` workers.
func newFleetHealth(sched *fault.Schedule, workers int) (*fleetHealth, error) {
	if m := sched.MaxWorker(); m >= workers {
		return nil, fmt.Errorf("serve: fault schedule targets worker %d, pool has %d workers", m, workers)
	}
	h := &fleetHealth{
		failAt:       make([]float64, workers),
		stalls:       make([][]faultWindow, workers),
		slows:        make([][]faultWindow, workers),
		firstFailSec: math.Inf(1),
	}
	for i := range h.failAt {
		h.failAt[i] = math.Inf(1)
	}
	for _, e := range sched.Events {
		if e.Worker < 0 {
			continue
		}
		switch e.Kind {
		case fault.FailStop:
			h.failAt[e.Worker] = e.AtSec
			h.firstFailSec = math.Min(h.firstFailSec, e.AtSec)
			h.fails = append(h.fails, faultWindow{from: e.AtSec, factor: float64(e.Worker)})
		case fault.Stall:
			h.stalls[e.Worker] = append(h.stalls[e.Worker], faultWindow{from: e.FromSec, to: e.ToSec, factor: 1})
		case fault.Slow:
			h.slows[e.Worker] = append(h.slows[e.Worker], faultWindow{from: e.FromSec, to: e.ToSec, factor: e.Factor})
		}
	}
	// Apply fail-stops in time order regardless of spec order.
	for i := 1; i < len(h.fails); i++ {
		for j := i; j > 0 && h.fails[j].from < h.fails[j-1].from; j-- {
			h.fails[j], h.fails[j-1] = h.fails[j-1], h.fails[j]
		}
	}
	return h, nil
}

// alive reports whether worker wi is still up at virtual time t (a worker is
// down from its fail-stop time onward).
func (h *fleetHealth) alive(wi int, t float64) bool { return t < h.failAt[wi] }

// adjust maps a batch's tentative start time on worker wi to its
// fault-adjusted start and service-inflation factor: a start inside a stall
// window is pushed to the window's end, and a (possibly pushed) start inside
// a straggler window inflates service by the window's factor. A worker with
// no windows returns (start, 1) — and the caller's arithmetic with factor 1
// is bit-exact.
func (h *fleetHealth) adjust(wi int, start float64) (float64, float64) {
	for _, w := range h.stalls[wi] {
		if start >= w.from && start < w.to {
			start = w.to
		}
	}
	f := 1.0
	for _, w := range h.slows[wi] {
		if start >= w.from && start < w.to {
			f *= w.factor
		}
	}
	return start, f
}

// failedBy returns worker wi's fail-stop time (+Inf when the schedule never
// kills it).
func (h *fleetHealth) failTime(wi int) float64 { return h.failAt[wi] }

// popFailures advances the applied-failure cursor past every fail-stop at or
// before now, returning how many newly applied (the server reacts by
// retightening admission to the surviving capacity).
func (h *fleetHealth) popFailures(now float64) int {
	n := 0
	for h.nextFail < len(h.fails) && h.fails[h.nextFail].from <= now {
		h.nextFail++
		n++
	}
	return n
}

// aliveCount returns how many workers are up at virtual time t.
func (h *fleetHealth) aliveCount(t float64) int {
	n := 0
	for wi := range h.failAt {
		if h.alive(wi, t) {
			n++
		}
	}
	return n
}
