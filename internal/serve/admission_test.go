package serve

import (
	"testing"

	"repro/internal/hw"
)

// Satellite 2: pin the AdmissionController's edge cases — cap zero and
// negative handling, re-setting caps and class rates mid-run with work
// outstanding — plus the degraded-mode additions this PR wires in.

// TestSetKindCapEdgeCases: cap 0 removes the bound even while the kind holds
// in-flight work; a negative cap clamps to 0 (removed), not to a tiny bound.
func TestSetKindCapEdgeCases(t *testing.T) {
	a, err := NewAdmissionController(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetKindCap(hw.FPGA, 2)
	for i := 0; i < 2; i++ {
		if !a.Admit(0) {
			t.Fatalf("admit %d refused under empty queue", i)
		}
	}
	a.DispatchedKind(hw.FPGA, []float64{10, 11}) // in flight far in the future
	if !a.KindSaturated(hw.FPGA, 1) {
		t.Fatal("FPGA not saturated at its cap of 2")
	}
	// Removing the cap mid-run with outstanding in-flight must lift the
	// bound immediately; the in-flight entries stay until their completions.
	a.SetKindCap(hw.FPGA, 0)
	if a.KindSaturated(hw.FPGA, 1) {
		t.Fatal("cap 0 did not remove the bound")
	}
	if a.KindInflight(hw.FPGA) != 2 {
		t.Fatalf("in-flight count %d changed by a cap update", a.KindInflight(hw.FPGA))
	}
	// Negative caps clamp to 0 (removed), not to a 0-slot bound that would
	// saturate forever.
	a.SetKindCap(hw.FPGA, -3)
	if a.KindSaturated(hw.FPGA, 1) {
		t.Fatal("negative cap behaved as a real bound")
	}
	// Tightening below the current in-flight count saturates immediately and
	// releases once completions drain past the horizon.
	a.SetKindCap(hw.FPGA, 1)
	if !a.KindSaturated(hw.FPGA, 1) {
		t.Fatal("cap 1 under 2 in-flight not saturated")
	}
	if a.KindSaturated(hw.FPGA, 12) { // both completions (10, 11) have drained
		t.Fatal("saturated after every completion drained")
	}
}

// TestSetClassRateMidRunReset: re-setting a class's rate mid-run rebuilds the
// bucket full (a literal reset: last=0, tokens=burst) — so the next refill
// spans the whole elapsed virtual time but clamps at the new burst, and an
// exhausted bucket is forgiven by the reset.
func TestSetClassRateMidRunReset(t *testing.T) {
	a, err := NewAdmissionController(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetClassRate(ClassBulk, 10, 2); err != nil {
		t.Fatal(err)
	}
	// Exhaust the burst at t=1.
	if !a.AdmitClass(1, ClassBulk) || !a.AdmitClass(1, ClassBulk) {
		t.Fatal("burst of 2 refused")
	}
	if a.AdmitClass(1, ClassBulk) {
		t.Fatal("third admit at t=1 should exhaust the bucket")
	}
	// Mid-run re-set: bucket restarts full regardless of its debt.
	if err := a.SetClassRate(ClassBulk, 5, 1); err != nil {
		t.Fatal(err)
	}
	if !a.AdmitClass(1, ClassBulk) {
		t.Fatal("re-set bucket should start full")
	}
	if a.AdmitClass(1, ClassBulk) {
		t.Fatal("burst 1 admits twice at the same instant")
	}
	// Burst below 1 clamps to 1, not 0 (a 0-burst bucket would starve the
	// class forever).
	if err := a.SetClassRate(ClassInteractive, 100, 0); err != nil {
		t.Fatal(err)
	}
	if !a.AdmitClass(0, ClassInteractive) {
		t.Fatal("burst clamp to 1 still refused the first request")
	}
	// Invalid inputs are rejected.
	if err := a.SetClassRate(ClassBulk, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := a.SetClassRate(NumClasses, 1, 1); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}

// TestAdmitClassGlobalRejectKeepsToken: a request the global bound rejects
// must not burn a class token (the class is not charged for queue overload).
func TestAdmitClassGlobalRejectKeepsToken(t *testing.T) {
	a, err := NewAdmissionController(1)
	if err != nil {
		t.Fatal(err)
	}
	// Refill is negligible (0.001/s), so only an unspent token can explain a
	// later admit — the test distinguishes "token survived" from "refilled".
	if err := a.SetClassRate(ClassStandard, 0.001, 2); err != nil {
		t.Fatal(err)
	}
	if !a.AdmitClass(0, ClassStandard) {
		t.Fatal("first admit refused")
	}
	// Queue full: the global bound rejects, but the token survives...
	if a.AdmitClass(0, ClassStandard) {
		t.Fatal("admit above capacity")
	}
	// ...so once capacity frees, the same class admits on that token alone.
	a.Dispatched([]float64{0.5})
	if !a.AdmitClass(1, ClassStandard) {
		t.Fatal("class refused after capacity freed despite unspent token")
	}
}

// TestDegradedAdmission pins the fault plane's admission additions: the
// degraded fraction scales refill, ShedClass follows the bulk → standard →
// never-interactive order, and Cancel releases waiting slots.
func TestDegradedAdmission(t *testing.T) {
	a, err := NewAdmissionController(16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded() != 1 {
		t.Fatalf("fresh controller degraded %v, want 1", a.Degraded())
	}
	if a.ShedClass(ClassBulk) || a.ShedClass(ClassStandard) || a.ShedClass(ClassInteractive) {
		t.Fatal("healthy fleet sheds")
	}
	a.SetDegraded(0.75)
	if !a.ShedClass(ClassBulk) {
		t.Fatal("bulk survives at 75% capacity")
	}
	if a.ShedClass(ClassStandard) || a.ShedClass(ClassInteractive) {
		t.Fatal("standard/interactive shed at 75% capacity")
	}
	a.SetDegraded(0.25)
	if !a.ShedClass(ClassStandard) {
		t.Fatal("standard survives at 25% capacity")
	}
	if a.ShedClass(ClassInteractive) {
		t.Fatal("interactive must never shed")
	}
	a.SetDegraded(-1)
	if a.Degraded() != 0 {
		t.Fatalf("degraded clamp low: %v", a.Degraded())
	}
	a.SetDegraded(2)
	if a.Degraded() != 1 {
		t.Fatalf("degraded clamp high: %v", a.Degraded())
	}

	// Refill scales with the fraction: rate 10/s at 50% capacity refills
	// 5 tokens/s.
	if err := a.SetClassRate(ClassBulk, 10, 1); err != nil {
		t.Fatal(err)
	}
	a.SetDegraded(0.5)
	if !a.AdmitClass(0, ClassBulk) { // burns the initial token
		t.Fatal("initial token refused")
	}
	if a.AdmitClass(0.1, ClassBulk) { // 0.1s × 10/s × 0.5 = 0.5 tokens < 1
		t.Fatal("half-rate bucket refilled too fast")
	}
	if !a.AdmitClass(0.21, ClassBulk) { // 0.5 + 0.11s × 10/s × 0.5 = 1.05 ≥ 1
		t.Fatal("half-rate bucket never refilled")
	}

	// Cancel releases waiting slots and clamps at zero.
	b, _ := NewAdmissionController(2)
	if !b.Admit(0) || !b.Admit(0) {
		t.Fatal("fill refused")
	}
	if b.Admit(0) {
		t.Fatal("admit above capacity")
	}
	b.Cancel(1)
	if !b.Admit(0) {
		t.Fatal("cancelled slot not released")
	}
	b.Cancel(100)
	if b.Outstanding() != 0 {
		t.Fatalf("outstanding %d after over-cancel, want 0", b.Outstanding())
	}
}
