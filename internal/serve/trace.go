package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Trace is a materialized arrival stream: every request of a run, in
// arrival order, with full bit-exact timestamps. Recording a workload once
// and replaying the trace pins the arrival process completely, so two
// replays produce byte-identical Stats and a formation/policy comparison
// sees exactly the same offered load.
type Trace struct {
	Requests []Request
}

// traceHeader tags the on-disk format; v1 is one request per line:
// "id vertex arrivalHex class cohort" with the arrival in Go's hex float
// syntax, which round-trips float64 exactly.
const traceHeader = "hyscale-serve-trace v1"

// GenerateTrace materializes cfg's arrival stream (workload or legacy) into
// a trace of NumRequests arrivals. The stream RNG is derived exactly as a
// run derives it, so serving cfg directly and replaying its generated trace
// produce identical Stats.
func GenerateTrace(cfg Config) (*Trace, error) {
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("serve: non-positive request count %d", cfg.NumRequests)
	}
	if cfg.Replay != nil {
		return nil, fmt.Errorf("serve: GenerateTrace on a replay config")
	}
	src, err := newArrivalSource(cfg, streamRNG(cfg))
	if err != nil {
		return nil, err
	}
	t := &Trace{Requests: make([]Request, 0, cfg.NumRequests)}
	for i := 0; i < cfg.NumRequests; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		t.Requests = append(t.Requests, r)
	}
	return t, nil
}

// WriteTrace serializes a trace; the encoding is deterministic, so equal
// traces serialize to equal bytes.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s n=%d\n", traceHeader, len(t.Requests))
	for _, r := range t.Requests {
		fmt.Fprintf(bw, "%d %d %s %d %d\n",
			r.ID, r.Vertex, strconv.FormatFloat(r.Arrival, 'x', -1, 64), r.Class, r.Cohort)
	}
	return bw.Flush()
}

// ReadTrace parses a serialized trace, validating arrival ordering and
// class range so a replayed trace upholds the stream contracts.
func ReadTrace(rd io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("serve: empty trace")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), traceHeader+" n=%d", &n); err != nil {
		return nil, fmt.Errorf("serve: bad trace header %q", sc.Text())
	}
	t := &Trace{Requests: make([]Request, 0, n)}
	prev := -1.0
	for sc.Scan() {
		var r Request
		var arrival string
		var class, cohort int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d %s %d %d",
			&r.ID, &r.Vertex, &arrival, &class, &cohort); err != nil {
			return nil, fmt.Errorf("serve: bad trace line %q: %v", sc.Text(), err)
		}
		a, err := strconv.ParseFloat(arrival, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad arrival %q: %v", arrival, err)
		}
		if a < prev {
			return nil, fmt.Errorf("serve: trace arrivals out of order at request %d", r.ID)
		}
		prev = a
		if class < 0 || class >= NumClasses {
			return nil, fmt.Errorf("serve: request %d: class %d out of range", r.ID, class)
		}
		if cohort < 0 || cohort > 255 {
			return nil, fmt.Errorf("serve: request %d: cohort %d out of range", r.ID, cohort)
		}
		r.Arrival, r.Class, r.Cohort = a, SLOClass(class), uint8(cohort)
		t.Requests = append(t.Requests, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Requests) != n {
		return nil, fmt.Errorf("serve: trace header promises %d requests, found %d", n, len(t.Requests))
	}
	return t, nil
}

// traceSource replays a recorded trace as an arrival source; it is bounded,
// reporting exhaustion after the last recorded request.
type traceSource struct {
	reqs []Request
	i    int
}

func (t *traceSource) Next() (Request, bool) {
	if t.i >= len(t.reqs) {
		return Request{}, false
	}
	r := t.reqs[t.i]
	t.i++
	return r, true
}
