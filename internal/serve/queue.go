package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hw"
	"repro/internal/tensor"
)

// AdmissionController bounds the number of outstanding requests (waiting in
// the batcher or dispatched but not yet complete in virtual time). A request
// arriving while the system holds Capacity outstanding requests is rejected
// — open-loop overload then surfaces as a rejection rate instead of an
// unbounded latency tail.
//
// In a heterogeneous pool the controller additionally tracks in-flight work
// *per device kind*: requests dispatched to a slow kind occupy queue
// capacity until their (late) virtual completions, and without a per-kind
// bound one slow device kind can fill the whole queue and starve arrivals
// that faster kinds could have served. SetKindCap bounds each kind's
// in-flight share; the router consults KindSaturated to steer batches away
// from a kind that has exhausted its share.
//
// Kind state lives in dense arrays indexed by hw.Kind (no map lookups on
// the admission hot path), and the completion heaps are hand-rolled over
// []float64 — container/heap would box every completion time through
// interface{}, one allocation per dispatched request.
type AdmissionController struct {
	capacity int
	waiting  int
	inflight [hw.KindCount]completionHeap
	caps     [hw.KindCount]int
	// buckets meter admission per SLO class (dense array, no map on the
	// admission hot path); inactive buckets admit freely.
	buckets [NumClasses]classBucket
	// degraded is the surviving-capacity fraction after worker fail-stops
	// (1 = full fleet). It scales every token bucket's refill rate — the
	// multiply by 1.0 is bit-exact, so a fault-free run's admission
	// arithmetic is untouched — and drives ShedClass's bulk-before-
	// interactive shedding order.
	degraded float64
}

// ClassRateLimit meters one SLO class's admission with a token bucket on
// the virtual clock: RatePerSec sustained refill, Burst tokens of depth.
type ClassRateLimit struct {
	Class      SLOClass
	RatePerSec float64
	Burst      int
}

// classBucket is one SLO class's token-bucket state.
type classBucket struct {
	rate, burst float64
	tokens      float64
	last        float64 // virtual time of the last refill
	active      bool
}

// NewAdmissionController builds a controller; capacity must be positive.
func NewAdmissionController(capacity int) (*AdmissionController, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serve: non-positive queue capacity %d", capacity)
	}
	return &AdmissionController{capacity: capacity, degraded: 1}, nil
}

// SetDegraded records the surviving-capacity fraction (clamped to [0, 1]):
// class token buckets refill at rate × frac from the next AdmitClass on, and
// ShedClass starts shedding the classes the surviving fleet can no longer
// afford. Frac 1 restores healthy behavior exactly.
func (a *AdmissionController) SetDegraded(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	a.degraded = frac
}

// Degraded returns the current surviving-capacity fraction.
func (a *AdmissionController) Degraded() float64 { return a.degraded }

// ShedClass reports whether degraded-mode admission sheds this class before
// it reaches the queue: bulk is shed under any capacity loss, standard once
// less than half the fleet survives, interactive never (the shedding order
// that keeps the tightest SLOs alive on the surviving capacity).
func (a *AdmissionController) ShedClass(class SLOClass) bool {
	switch {
	case a.degraded >= 1 || class >= NumClasses:
		return false
	case class == ClassBulk:
		return true
	case class == ClassStandard:
		return a.degraded < 0.5
	}
	return false
}

// Cancel releases n waiting slots without completions — requests that were
// admitted but then shed (their batch exhausted its retry budget with no
// live worker), so admission capacity is not leaked to dead work.
func (a *AdmissionController) Cancel(n int) {
	a.waiting -= n
	if a.waiting < 0 {
		a.waiting = 0
	}
}

// SetKindCap bounds one device kind's in-flight requests (0 removes the
// bound). Kinds without a cap share only the global capacity.
func (a *AdmissionController) SetKindCap(kind hw.Kind, cap int) {
	if cap < 0 {
		cap = 0
	}
	a.caps[kind] = cap
}

// SetClassRate meters an SLO class with a token bucket: sustained
// ratePerSec refill and burst tokens of depth (burst < 1 clamps to 1). The
// bucket starts full.
func (a *AdmissionController) SetClassRate(class SLOClass, ratePerSec float64, burst int) error {
	if class >= NumClasses {
		return fmt.Errorf("serve: SLO class %d out of range", class)
	}
	if ratePerSec <= 0 {
		return fmt.Errorf("serve: non-positive class rate %v for %s", ratePerSec, class)
	}
	if burst < 1 {
		burst = 1
	}
	a.buckets[class] = classBucket{
		rate: ratePerSec, burst: float64(burst), tokens: float64(burst), active: true,
	}
	return nil
}

// AdmitClass is Admit with per-class token-bucket metering: a request whose
// class has exhausted its bucket is rejected without consuming queue
// capacity, and a request the global bound rejects does not consume a
// token. Arrivals must be offered in non-decreasing virtual time.
func (a *AdmissionController) AdmitClass(now float64, class SLOClass) bool {
	if class >= NumClasses { // defensive: unknown classes share the global bound only
		return a.Admit(now)
	}
	b := &a.buckets[class]
	if b.active {
		b.tokens = math.Min(b.burst, b.tokens+(now-b.last)*b.rate*a.degraded)
		b.last = now
		if b.tokens < 1 {
			return false
		}
	}
	if !a.Admit(now) {
		return false
	}
	if b.active {
		b.tokens--
	}
	return true
}

// Admit reports whether a request arriving at virtual time now fits, and
// records it as waiting if so.
func (a *AdmissionController) Admit(now float64) bool {
	total := a.waiting
	for k := range a.inflight {
		h := &a.inflight[k]
		h.drain(now)
		total += len(*h)
	}
	if total >= a.capacity {
		return false
	}
	a.waiting++
	return true
}

// Dispatched moves n waiting requests to in-flight with the given virtual
// completion times (one per request), attributed to the host CPU kind —
// the single-kind legacy entry point; heterogeneous pools use
// DispatchedKind.
func (a *AdmissionController) Dispatched(completions []float64) {
	a.DispatchedKind(hw.CPU, completions)
}

// DispatchedKind moves n waiting requests to in-flight on the given device
// kind with their virtual completion times.
func (a *AdmissionController) DispatchedKind(kind hw.Kind, completions []float64) {
	a.waiting -= len(completions)
	if a.waiting < 0 {
		a.waiting = 0
	}
	h := &a.inflight[kind]
	for _, c := range completions {
		h.push(c)
	}
}

// KindSaturated reports whether a kind has exhausted its in-flight share as
// of virtual time now. Kinds without a cap are never saturated.
func (a *AdmissionController) KindSaturated(kind hw.Kind, now float64) bool {
	cap := a.caps[kind]
	if cap <= 0 {
		return false
	}
	h := &a.inflight[kind]
	h.drain(now)
	return len(*h) >= cap
}

// KindInflight returns a kind's current in-flight count (tests, telemetry).
func (a *AdmissionController) KindInflight(kind hw.Kind) int {
	return len(a.inflight[kind])
}

// Outstanding returns the current waiting + in-flight count as of the last
// Admit call (for tests and telemetry).
func (a *AdmissionController) Outstanding() int {
	total := a.waiting
	for k := range a.inflight {
		total += len(a.inflight[k])
	}
	return total
}

// completionHeap is a min-heap of virtual completion times with hand-rolled
// sift operations: pushing a float64 through container/heap's interface{}
// funnel costs one allocation per value, which on this path means one per
// dispatched request.
type completionHeap []float64

// push adds a completion time, sifting it up to restore heap order.
func (h *completionHeap) push(x float64) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// popMin removes and returns the earliest completion time.
func (h *completionHeap) popMin() float64 {
	s := *h
	min := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && s[r] < s[l] {
			child = r
		}
		if s[i] <= s[child] {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return min
}

// drain pops every completion at or before now.
func (h *completionHeap) drain(now float64) {
	for len(*h) > 0 && (*h)[0] <= now {
		h.popMin()
	}
}

// RequestStream generates the synthetic open-loop workload: Poisson arrivals
// (exponential inter-arrival times at the offered rate) over vertices drawn
// from a Zipf popularity distribution — the skew that makes an embedding
// cache earn its keep. Exponent 0 degenerates to uniform popularity.
type RequestStream struct {
	rate float64
	cdf  []float64 // cumulative popularity over vertex IDs
	// rng is held behind the uniformSource seam so the degenerate-draw
	// regression test can script the u == 0 draw a SplitMix64 stream will
	// essentially never produce.
	rng  uniformSource
	now  float64
	next int
}

// NewRequestStream builds a stream over numVertices vertices.
func NewRequestStream(numVertices int, ratePerSec, zipfExponent float64, rng *tensor.RNG) (*RequestStream, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("serve: non-positive vertex count %d", numVertices)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serve: non-positive request rate %v", ratePerSec)
	}
	if zipfExponent < 0 {
		return nil, fmt.Errorf("serve: negative Zipf exponent %v", zipfExponent)
	}
	return &RequestStream{rate: ratePerSec, cdf: zipfCDF(numVertices, zipfExponent), rng: rng}, nil
}

// Next returns the next request; arrivals are strictly ordered in time.
// The inter-arrival draw goes through positiveUniform: Float64 spans [0, 1),
// so the degenerate draw to guard is u == 0 (a zero gap that would stall the
// virtual clock), not the unreachable u → 1 end the old guard watched.
func (s *RequestStream) Next() Request {
	s.now += expGap(s.rng, s.rate)
	v := sort.SearchFloat64s(s.cdf, s.rng.Float64())
	if v >= len(s.cdf) {
		v = len(s.cdf) - 1
	}
	r := Request{ID: s.next, Vertex: int32(v), Arrival: s.now, Class: ClassStandard}
	s.next++
	return r
}
