package serve

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/hw"
	"repro/internal/tensor"
)

// AdmissionController bounds the number of outstanding requests (waiting in
// the batcher or dispatched but not yet complete in virtual time). A request
// arriving while the system holds Capacity outstanding requests is rejected
// — open-loop overload then surfaces as a rejection rate instead of an
// unbounded latency tail.
//
// In a heterogeneous pool the controller additionally tracks in-flight work
// *per device kind*: requests dispatched to a slow kind occupy queue
// capacity until their (late) virtual completions, and without a per-kind
// bound one slow device kind can fill the whole queue and starve arrivals
// that faster kinds could have served. SetKindCap bounds each kind's
// in-flight share; the router consults KindSaturated to steer batches away
// from a kind that has exhausted its share.
type AdmissionController struct {
	capacity int
	waiting  int
	inflight map[hw.Kind]*completionHeap
	caps     map[hw.Kind]int
	kinds    []hw.Kind // deterministic iteration order
}

// NewAdmissionController builds a controller; capacity must be positive.
func NewAdmissionController(capacity int) (*AdmissionController, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serve: non-positive queue capacity %d", capacity)
	}
	return &AdmissionController{
		capacity: capacity,
		inflight: make(map[hw.Kind]*completionHeap),
		caps:     make(map[hw.Kind]int),
	}, nil
}

// SetKindCap bounds one device kind's in-flight requests (0 removes the
// bound). Kinds without a cap share only the global capacity.
func (a *AdmissionController) SetKindCap(kind hw.Kind, cap int) {
	if cap < 0 {
		cap = 0
	}
	a.caps[kind] = cap
	a.heapFor(kind) // register the kind for deterministic iteration
}

func (a *AdmissionController) heapFor(kind hw.Kind) *completionHeap {
	h, ok := a.inflight[kind]
	if !ok {
		h = &completionHeap{}
		a.inflight[kind] = h
		a.kinds = append(a.kinds, kind)
	}
	return h
}

// Admit reports whether a request arriving at virtual time now fits, and
// records it as waiting if so.
func (a *AdmissionController) Admit(now float64) bool {
	total := a.waiting
	for _, k := range a.kinds {
		h := a.inflight[k]
		for h.Len() > 0 && (*h)[0] <= now {
			heap.Pop(h)
		}
		total += h.Len()
	}
	if total >= a.capacity {
		return false
	}
	a.waiting++
	return true
}

// Dispatched moves n waiting requests to in-flight with the given virtual
// completion times (one per request), attributed to the host CPU kind —
// the single-kind legacy entry point; heterogeneous pools use
// DispatchedKind.
func (a *AdmissionController) Dispatched(completions []float64) {
	a.DispatchedKind(hw.CPU, completions)
}

// DispatchedKind moves n waiting requests to in-flight on the given device
// kind with their virtual completion times.
func (a *AdmissionController) DispatchedKind(kind hw.Kind, completions []float64) {
	a.waiting -= len(completions)
	if a.waiting < 0 {
		a.waiting = 0
	}
	h := a.heapFor(kind)
	for _, c := range completions {
		heap.Push(h, c)
	}
}

// KindSaturated reports whether a kind has exhausted its in-flight share as
// of virtual time now. Kinds without a cap are never saturated.
func (a *AdmissionController) KindSaturated(kind hw.Kind, now float64) bool {
	cap := a.caps[kind]
	if cap <= 0 {
		return false
	}
	h := a.heapFor(kind)
	for h.Len() > 0 && (*h)[0] <= now {
		heap.Pop(h)
	}
	return h.Len() >= cap
}

// KindInflight returns a kind's current in-flight count (tests, telemetry).
func (a *AdmissionController) KindInflight(kind hw.Kind) int {
	if h, ok := a.inflight[kind]; ok {
		return h.Len()
	}
	return 0
}

// Outstanding returns the current waiting + in-flight count as of the last
// Admit call (for tests and telemetry).
func (a *AdmissionController) Outstanding() int {
	total := a.waiting
	for _, k := range a.kinds {
		total += a.inflight[k].Len()
	}
	return total
}

// completionHeap is a min-heap of virtual completion times.
type completionHeap []float64

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RequestStream generates the synthetic open-loop workload: Poisson arrivals
// (exponential inter-arrival times at the offered rate) over vertices drawn
// from a Zipf popularity distribution — the skew that makes an embedding
// cache earn its keep. Exponent 0 degenerates to uniform popularity.
type RequestStream struct {
	rate float64
	cdf  []float64 // cumulative popularity over vertex IDs
	rng  *tensor.RNG
	now  float64
	next int
}

// NewRequestStream builds a stream over numVertices vertices.
func NewRequestStream(numVertices int, ratePerSec, zipfExponent float64, rng *tensor.RNG) (*RequestStream, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("serve: non-positive vertex count %d", numVertices)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serve: non-positive request rate %v", ratePerSec)
	}
	if zipfExponent < 0 {
		return nil, fmt.Errorf("serve: negative Zipf exponent %v", zipfExponent)
	}
	cdf := make([]float64, numVertices)
	sum := 0.0
	for v := 0; v < numVertices; v++ {
		sum += 1 / math.Pow(float64(v+1), zipfExponent)
		cdf[v] = sum
	}
	for v := range cdf {
		cdf[v] /= sum
	}
	return &RequestStream{rate: ratePerSec, cdf: cdf, rng: rng}, nil
}

// Next returns the next request; arrivals are strictly ordered in time.
func (s *RequestStream) Next() Request {
	u := s.rng.Float64()
	for u >= 1 { // guard the log; Float64 ∈ [0,1)
		u = s.rng.Float64()
	}
	s.now += -math.Log(1-u) / s.rate
	v := sort.SearchFloat64s(s.cdf, s.rng.Float64())
	if v >= len(s.cdf) {
		v = len(s.cdf) - 1
	}
	r := Request{ID: s.next, Vertex: int32(v), Arrival: s.now}
	s.next++
	return r
}
