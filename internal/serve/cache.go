package serve

import (
	"sync"
)

// CacheKey identifies one cached embedding: the query vertex and the version
// of the model that produced it. Bumping the version (after retraining or a
// weight push) invalidates every older entry without an explicit flush.
type CacheKey struct {
	Vertex  int32
	Version int
}

// hashCacheKey mixes a key splitmix64-style. The low bits pick the shard and
// the high 32 bits pick the home slot in the shard's open-addressing table,
// so the two indices are decorrelated.
func hashCacheKey(k CacheKey) uint64 {
	x := uint64(uint32(k.Vertex)) | uint64(uint32(k.Version))<<32
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardEntry is one slab slot: the key, the entry's virtual ready time, the
// resident embedding length, and intrusive LRU links (slab indices, -1 = nil).
// The embedding payload lives at a fixed stride in the shard's arena, so an
// entry never owns a heap object of its own.
type shardEntry struct {
	key     CacheKey
	readyAt float64
	embLen  int32
	prev    int32
	next    int32
}

// cacheShard is one lock stripe: an intrusive doubly-linked LRU over a
// preallocated entry slab, embeddings in a flat arena, and an open-addressing
// index (linear probing, backward-shift deletion) mapping keys to slab slots.
// Everything is sized at construction; steady-state Get/Put perform zero
// allocations and zero interface boxing.
type cacheShard struct {
	mu       sync.Mutex
	capacity int32
	length   int32
	head     int32 // most recently used (-1 when empty)
	tail     int32 // least recently used (-1 when empty)
	free     int32 // free-list head through entry.next (-1 when exhausted)
	entries  []shardEntry
	arena    []float32
	table    []int32 // slab index + 1; 0 = empty
	mask     uint32  // len(table) - 1

	hits      int64
	misses    int64
	evictions int64
}

// ShardedCache is the serving tier's embedding cache: hash(CacheKey)
// lock-stripes entries over power-of-two shards, each an allocation-free LRU
// (see cacheShard). A 1-shard cache reproduces the legacy EmbeddingCache's
// hit/miss/eviction counters and resident set exactly on any trace —
// property-tested against it — and with N shards only the *eviction victim*
// choice differs (per-shard rather than global LRU order), so shard count
// never changes which keys are resident until evictions begin.
//
// Ownership: Put and PutMany COPY the embedding into the shard arena
// (truncated at the cache's stride); the caller keeps its buffer and may
// reuse it immediately. Get returns a view into the arena that is valid
// until the entry is evicted or refreshed — callers that keep embeddings
// across cache operations copy them out.
type ShardedCache struct {
	shards    []cacheShard
	shardMask uint64
	stride    int
	capacity  int
}

// NewShardedCache builds a cache holding up to capacity embeddings of at
// most stride floats each, striped over the given shard count (rounded down
// to a power of two, clamped to [1, capacity]; 0 picks 1). Capacity 0
// disables caching: every Get misses and Put is a no-op, exactly like the
// legacy cache.
func NewShardedCache(capacity, shards, stride int) *ShardedCache {
	if capacity < 0 {
		capacity = 0
	}
	if stride < 0 {
		stride = 0
	}
	if shards < 1 {
		shards = 1
	}
	if capacity > 0 && shards > capacity {
		shards = capacity
	}
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	c := &ShardedCache{
		shards:    make([]cacheShard, n),
		shardMask: uint64(n - 1),
		stride:    stride,
		capacity:  capacity,
	}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		c.shards[i].init(int32(cap), stride)
	}
	return c
}

func (s *cacheShard) init(capacity int32, stride int) {
	s.capacity = capacity
	s.head, s.tail = -1, -1
	s.entries = make([]shardEntry, capacity)
	s.arena = make([]float32, int(capacity)*stride)
	// Table sized ≥ 2× capacity keeps probe chains short and guarantees an
	// empty slot terminates every probe.
	tlen := 8
	for tlen < int(capacity)*2 {
		tlen *= 2
	}
	s.table = make([]int32, tlen)
	s.mask = uint32(tlen - 1)
	s.free = -1
	for i := capacity - 1; i >= 0; i-- {
		s.entries[i].next = s.free
		s.free = i
	}
}

// shardFor returns the shard owning k.
func (c *ShardedCache) shardFor(k CacheKey) *cacheShard {
	return &c.shards[hashCacheKey(k)&c.shardMask]
}

func (s *cacheShard) home(k CacheKey) uint32 {
	return uint32(hashCacheKey(k)>>32) & s.mask
}

// find probes for k: on a hit it returns the table slot and slab index; on a
// miss it returns the first empty slot and -1. Callers hold the shard lock.
func (s *cacheShard) find(k CacheKey) (slot uint32, idx int32) {
	j := s.home(k)
	for {
		e := s.table[j]
		if e == 0 {
			return j, -1
		}
		if s.entries[e-1].key == k {
			return j, e - 1
		}
		j = (j + 1) & s.mask
	}
}

// removeSlot deletes table slot i by backward-shifting the probe chain
// (Robin-Hood-style), so lookups never need tombstones.
func (s *cacheShard) removeSlot(i uint32) {
	for {
		s.table[i] = 0
		j := i
		for {
			j = (j + 1) & s.mask
			e := s.table[j]
			if e == 0 {
				return
			}
			// Entry at j may move into the hole at i iff i lies between its
			// home slot and j (cyclically): moving it then shortens, never
			// breaks, its probe chain.
			h := s.home(s.entries[e-1].key)
			if (j-h)&s.mask >= (j-i)&s.mask {
				s.table[i] = e
				i = j
				break
			}
		}
	}
}

// detach unlinks slab entry i from the LRU list.
func (s *cacheShard) detach(i int32) {
	p, n := s.entries[i].prev, s.entries[i].next
	if p >= 0 {
		s.entries[p].next = n
	} else {
		s.head = n
	}
	if n >= 0 {
		s.entries[n].prev = p
	} else {
		s.tail = p
	}
}

// pushFront links slab entry i as most recently used.
func (s *cacheShard) pushFront(i int32) {
	s.entries[i].prev = -1
	s.entries[i].next = s.head
	if s.head >= 0 {
		s.entries[s.head].prev = i
	} else {
		s.tail = i
	}
	s.head = i
}

// view returns entry i's arena-resident embedding.
func (s *cacheShard) view(i int32, stride int) []float32 {
	base := int(i) * stride
	return s.arena[base : base+int(s.entries[i].embLen)]
}

// get is the locked lookup: counters and LRU touch exactly mirror the legacy
// cache's Get.
func (s *cacheShard) get(k CacheKey, stride int) (emb []float32, readyAt float64, ok bool) {
	_, idx := s.find(k)
	if idx < 0 {
		s.misses++
		return nil, 0, false
	}
	s.hits++
	if s.head != idx {
		s.detach(idx)
		s.pushFront(idx)
	}
	return s.view(idx, stride), s.entries[idx].readyAt, true
}

// put is the locked insert/refresh: the embedding is copied into the arena
// (truncated at stride), and eviction picks the shard's LRU tail — for a
// 1-shard cache, exactly the legacy policy.
func (s *cacheShard) put(k CacheKey, emb []float32, readyAt float64, stride int) {
	slot, idx := s.find(k)
	if idx >= 0 { // refresh in place
		s.entries[idx].readyAt = readyAt
		base := int(idx) * stride
		s.entries[idx].embLen = int32(copy(s.arena[base:base+stride], emb))
		if s.head != idx {
			s.detach(idx)
			s.pushFront(idx)
		}
		return
	}
	if s.capacity == 0 {
		return
	}
	if s.length >= s.capacity {
		victim := s.tail
		vslot, _ := s.find(s.entries[victim].key)
		s.detach(victim)
		s.removeSlot(vslot)
		s.evictions++
		s.length--
		idx = victim
		// The backward shift may have rearranged the probe chain; re-probe
		// for the insertion slot.
		slot, _ = s.find(k)
	} else {
		idx = s.free
		s.free = s.entries[idx].next
	}
	s.entries[idx].key = k
	s.entries[idx].readyAt = readyAt
	base := int(idx) * stride
	s.entries[idx].embLen = int32(copy(s.arena[base:base+stride], emb))
	s.table[slot] = idx + 1
	s.pushFront(idx)
	s.length++
}

// Get returns the cached embedding (an arena view — see the ownership note
// on ShardedCache) and its ready time, marking the entry most-recently-used
// on a hit.
func (c *ShardedCache) Get(k CacheKey) (emb []float32, readyAt float64, ok bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	emb, readyAt, ok = s.get(k, c.stride)
	s.mu.Unlock()
	return emb, readyAt, ok
}

// Put inserts (or refreshes) an embedding, copying it into the shard arena
// and evicting the shard's least-recently-used entry when the shard is full.
func (c *ShardedCache) Put(k CacheKey, emb []float32, readyAt float64) {
	if c.capacity == 0 {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	s.put(k, emb, readyAt, c.stride)
	s.mu.Unlock()
}

// GetMany looks up a batch: hit[i] reports whether keys[i] was resident,
// ready[i] its ready time, and (when embs is non-nil) embs[i] the arena view.
// Counters and LRU touches are per key, exactly as len(keys) sequential Get
// calls in order would produce; duplicates in the batch are each counted.
// Each shard's lock is taken once for the whole batch instead of once per
// key — the point of sharding a batched hot path.
func (c *ShardedCache) GetMany(keys []CacheKey, ready []float64, hit []bool, embs [][]float32) {
	if len(c.shards) == 1 {
		s := &c.shards[0]
		s.mu.Lock()
		for i, k := range keys {
			e, r, ok := s.get(k, c.stride)
			ready[i], hit[i] = r, ok
			if embs != nil {
				embs[i] = e
			}
		}
		s.mu.Unlock()
		return
	}
	for si := range c.shards {
		owned := false
		for _, k := range keys {
			if hashCacheKey(k)&c.shardMask == uint64(si) {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		s := &c.shards[si]
		s.mu.Lock()
		for i, k := range keys {
			if hashCacheKey(k)&c.shardMask != uint64(si) {
				continue
			}
			e, r, ok := s.get(k, c.stride)
			ready[i], hit[i] = r, ok
			if embs != nil {
				embs[i] = e
			}
		}
		s.mu.Unlock()
	}
}

// PutMany inserts a batch of embeddings sharing one ready time (a computed
// batch completes as a unit), holding each shard's lock once. Within a
// shard, keys land in slice order — identical to sequential Puts.
func (c *ShardedCache) PutMany(keys []CacheKey, embs [][]float32, readyAt float64) {
	if c.capacity == 0 {
		return
	}
	if len(c.shards) == 1 {
		s := &c.shards[0]
		s.mu.Lock()
		for i, k := range keys {
			s.put(k, embs[i], readyAt, c.stride)
		}
		s.mu.Unlock()
		return
	}
	for si := range c.shards {
		owned := false
		for _, k := range keys {
			if hashCacheKey(k)&c.shardMask == uint64(si) {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		s := &c.shards[si]
		s.mu.Lock()
		for i, k := range keys {
			if hashCacheKey(k)&c.shardMask != uint64(si) {
				continue
			}
			s.put(k, embs[i], readyAt, c.stride)
		}
		s.mu.Unlock()
	}
}

// Peek reports residency and the ready time without touching LRU order or
// the hit/miss counters.
func (c *ShardedCache) Peek(k CacheKey) (readyAt float64, ok bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, idx := s.find(k)
	if idx < 0 {
		return 0, false
	}
	return s.entries[idx].readyAt, true
}

// Len returns the number of resident entries across all shards.
func (c *ShardedCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int(s.length)
		s.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit, miss, and eviction counts across all shards.
func (c *ShardedCache) Stats() (hits, misses, evictions int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		s.mu.Unlock()
	}
	return hits, misses, evictions
}

// Shards returns the shard count the constructor settled on.
func (c *ShardedCache) Shards() int { return len(c.shards) }

// Capacity returns the total entry capacity.
func (c *ShardedCache) Capacity() int { return c.capacity }

// Stride returns the per-entry arena stride (max embedding length).
func (c *ShardedCache) Stride() int { return c.stride }
