// Package serve is the online-serving subsystem grown on the shared HyScale
// runtime: a request queue with kind-aware admission control, a dynamic
// batcher (size-or-deadline, with an optional per-kind split), an LRU
// embedding cache keyed by vertex and model version, and a fleet of
// per-device workers — each core.InferencePipeline bound to one hw.Device
// (the host CPU peer, a GPU, or an FPGA running the §IV-C dataflow kernels)
// the way training's Trainer backends are. A router dispatches every closed
// batch to the worker with the earliest predicted completion, using the
// per-device perfmodel serving stage vectors, while charging sample →
// gather → transfer → propagate on the same virtual PipelineClock and
// perfmodel price list as training. The run is an event-driven open-loop
// simulation (the BLIS-style shape): arrivals, batch deadlines, and batch
// completions are totally ordered in virtual time, so every run is
// deterministic for a given seed.
package serve

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Config assembles a serving run.
type Config struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model to serve (read-only during the run).
	Model   *gnn.Model
	Fanouts []int
	// ModelVersion tags cache entries; bump it after a weight push to
	// invalidate stale embeddings. Zero means version 1.
	ModelVersion int

	// Open-loop stream: NumRequests arrivals at RatePerSec with Zipf(θ)
	// vertex popularity (θ=0 is uniform).
	NumRequests  int
	RatePerSec   float64
	ZipfExponent float64

	// Serving knobs.
	MaxBatch  int     // dynamic batcher's size cap
	WindowSec float64 // dynamic batcher's max-wait deadline
	// Workers is the accelerator worker count. With accelerators present,
	// worker i binds Plat.Accels[i] (capped at the fleet size); without
	// accelerators one CPU worker serves.
	Workers int
	// CPUPeer adds a host-CPU-bound worker alongside the accelerator
	// workers — training's hybrid CPU trainer applied to serving. The peer
	// pays no PCIe transfer or kernel-launch cost, which makes it the
	// natural landing spot for cache-hot small batches.
	CPUPeer bool
	// SmallBatchCut is the dynamic batcher's per-kind split: closed batches
	// whose cache-missing target count is at or under the cut are routed to
	// the CPU peer. 0 disables the split; a positive cut requires CPUPeer
	// on platforms with accelerators.
	SmallBatchCut int
	QueueCap      int // admission control: max outstanding requests (0 → 1024)
	CacheSize     int // embedding-cache capacity in entries (0 disables)

	QuantizeTransfer bool // int8 feature transfer for accelerator workers
	Seed             uint64

	// legacyRoute switches the router to the pre-refactor policy — dispatch
	// to the worker with the smallest AvailableAt, ignoring per-device
	// predictions, kind saturation, and the small-batch split. It exists
	// only for the regression property test: on a pool of identical devices
	// the kind-aware router must reproduce this policy's stats byte for
	// byte.
	legacyRoute bool
}

// worker is one pool member: a pipeline bound to a device, plus its share
// counters and a memo of the device's predicted batch service times (they
// depend only on the computed-target count, which the size cap bounds).
type worker struct {
	pipe  *core.InferencePipeline
	idx   int // position in the pool
	stats DeviceStats
	svc   map[int]float64 // computed targets → predicted ServiceSec
}

// serviceSec returns the memoized per-device predicted service time for a
// batch of `computed` cache-missing targets.
func (w *worker) serviceSec(computed int) (float64, error) {
	if s, ok := w.svc[computed]; ok {
		return s, nil
	}
	st, err := w.pipe.PredictBatchStage(computed)
	if err != nil {
		return 0, err
	}
	s := perfmodel.ServingServiceSec(st)
	w.svc[computed] = s
	return s, nil
}

// workerBindings resolves the pool's device bindings in
// core.InferConfig.Device convention (0 = host CPU, i > 0 = Accels[i-1]):
// one worker per accelerator (capped by Workers), plus the CPU peer when
// requested; a single CPU worker on accelerator-less platforms.
func workerBindings(cfg Config) []int {
	nAccel := len(cfg.Plat.Accels)
	if nAccel == 0 {
		return []int{0}
	}
	k := cfg.Workers
	if k <= 0 || k > nAccel {
		k = nAccel
	}
	b := make([]int, 0, k+1)
	for i := 0; i < k; i++ {
		b = append(b, i+1)
	}
	if cfg.CPUPeer {
		b = append(b, 0)
	}
	return b
}

// Run drives the full open-loop stream through the serving stack and
// returns the measured statistics plus the analytic prediction for the same
// operating point.
func Run(cfg Config) (*Stats, error) {
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("serve: non-positive request count %d", cfg.NumRequests)
	}
	if cfg.ModelVersion == 0 {
		cfg.ModelVersion = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SmallBatchCut > 0 && !cfg.CPUPeer && len(cfg.Plat.Accels) > 0 {
		return nil, fmt.Errorf("serve: SmallBatchCut %d needs the CPU peer (set CPUPeer)", cfg.SmallBatchCut)
	}
	bindings := workerBindings(cfg)
	rng := tensor.NewRNG(cfg.Seed)
	pool := make([]*worker, len(bindings))
	for i, device := range bindings {
		p, err := core.NewInferencePipeline(core.InferConfig{
			Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
			Fanouts: cfg.Fanouts, Device: device,
			QuantizeTransfer: cfg.QuantizeTransfer,
			Seed:             rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		pool[i] = &worker{pipe: p, idx: i, svc: map[int]float64{}, stats: DeviceStats{
			Name: p.Device().Name, Kind: p.Device().Kind, Device: device,
		}}
	}
	stream, err := NewRequestStream(cfg.Data.Graph.NumVertices, cfg.RatePerSec, cfg.ZipfExponent, rng.Split())
	if err != nil {
		return nil, err
	}
	batcher, err := NewSplitBatcher(cfg.MaxBatch, cfg.WindowSec, cfg.SmallBatchCut)
	if err != nil {
		return nil, err
	}
	admission, err := NewAdmissionController(cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	setKindCaps(admission, pool, cfg.QueueCap)
	cache := NewEmbeddingCache(cfg.CacheSize)

	stats := &Stats{Offered: cfg.NumRequests}
	var latencies []float64
	var lastCompletion float64
	var batchReqSum, computedBatches int

	// route picks the worker for a closed batch of `computed` cache-missing
	// targets: the earliest predicted completion over the per-device serving
	// stage vectors, preferring the CPU peer for batches under the
	// batcher's small cut and steering around kinds that have exhausted
	// their admission share. Ties break on availability, then pool order,
	// so routing is deterministic — and on a pool of identical devices it
	// coincides with the legacy least-available policy.
	route := func(computed int, closeAt float64) (*worker, error) {
		if cfg.legacyRoute {
			w := pool[0]
			for _, p := range pool[1:] {
				if p.pipe.AvailableAt() < w.pipe.AvailableAt() {
					w = p
				}
			}
			return w, nil
		}
		if batcher.Small(computed) {
			for _, w := range pool {
				if w.pipe.DeviceIndex() == 0 && !admission.KindSaturated(hw.CPU, closeAt) {
					return w, nil
				}
			}
		}
		pick := func(skipSaturated bool) (*worker, error) {
			var best *worker
			var bestPred, bestAvail float64
			for _, w := range pool {
				if skipSaturated && admission.KindSaturated(w.pipe.Device().Kind, closeAt) {
					continue
				}
				svc, err := w.serviceSec(computed)
				if err != nil {
					return nil, err
				}
				avail := w.pipe.AvailableAt()
				pred := math.Max(closeAt, avail) + svc
				if best == nil || pred < bestPred ||
					(pred == bestPred && avail < bestAvail) {
					best, bestPred, bestAvail = w, pred, avail
				}
			}
			return best, nil
		}
		best, err := pick(true)
		if err != nil {
			return nil, err
		}
		if best == nil { // every kind saturated: fall back to the whole pool
			best, err = pick(false)
			if err != nil {
				return nil, err
			}
		}
		return best, nil
	}

	dispatch := func(batch []Request, closeAt float64) error {
		stats.Batches++
		batchReqSum += len(batch)
		completions := make([]float64, 0, len(batch))
		serveReq := func(r Request, done float64) {
			latencies = append(latencies, done-r.Arrival)
			completions = append(completions, done)
			if done > lastCompletion {
				lastCompletion = done
			}
		}
		// Cache pass: hits are answered when their entry is ready (an
		// in-flight entry behaves as a future); misses are coalesced per
		// vertex and sent to the pool.
		var order []int32
		waiting := make(map[int32][]Request)
		for _, r := range batch {
			key := CacheKey{Vertex: r.Vertex, Version: cfg.ModelVersion}
			if _, readyAt, ok := cache.Get(key); ok {
				serveReq(r, math.Max(closeAt, readyAt))
				continue
			}
			if _, dup := waiting[r.Vertex]; !dup {
				order = append(order, r.Vertex)
			}
			waiting[r.Vertex] = append(waiting[r.Vertex], r)
		}
		kind := hw.CPU // cache-only batches are answered by the host
		if len(order) > 0 {
			w, err := route(len(order), closeAt)
			if err != nil {
				return err
			}
			res, err := w.pipe.RunBatch(order)
			if err != nil {
				return err
			}
			done := w.pipe.CompleteAfter(closeAt, res.Stage)
			kind = w.pipe.Device().Kind
			served := 0
			for i, v := range order {
				emb := append([]float32(nil), res.Logits.Row(i)...)
				cache.Put(CacheKey{Vertex: v, Version: cfg.ModelVersion}, emb, done)
				for _, r := range waiting[v] {
					serveReq(r, done)
					stats.Computed++
					served++
				}
			}
			svc := perfmodel.ServingServiceSec(res.Stage)
			stats.MeanServiceSec += svc
			computedBatches++
			stats.EdgesPerSec += res.Edges // normalized by makespan below
			w.stats.Batches++
			w.stats.Requests += served
			w.stats.BusySec += svc
			stats.Routes = append(stats.Routes, w.idx)
		}
		admission.DispatchedKind(kind, completions)
		return nil
	}

	for i := 0; i < cfg.NumRequests; i++ {
		r := stream.Next()
		for {
			batch, closeAt := batcher.CloseExpired(r.Arrival)
			if batch == nil {
				break
			}
			if err := dispatch(batch, closeAt); err != nil {
				return nil, err
			}
		}
		if !admission.Admit(r.Arrival) {
			stats.Rejected++
			continue
		}
		if batch, closeAt := batcher.Add(r); batch != nil {
			if err := dispatch(batch, closeAt); err != nil {
				return nil, err
			}
		}
	}
	if batch, closeAt := batcher.Flush(); batch != nil {
		if err := dispatch(batch, closeAt); err != nil {
			return nil, err
		}
	}

	stats.Served = len(latencies)
	stats.summarizeLatencies(latencies)
	hits, _, evictions := cache.Stats()
	stats.CacheHits = hits
	stats.Evictions = evictions
	if stats.Served > 0 {
		stats.HitRate = float64(stats.Served-stats.Computed) / float64(stats.Served)
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(batchReqSum) / float64(stats.Batches)
	}
	if computedBatches > 0 {
		stats.MeanServiceSec /= float64(computedBatches)
	}
	stats.MakespanSec = lastCompletion
	if stats.MakespanSec > 0 {
		stats.ThroughputRPS = float64(stats.Served) / stats.MakespanSec
		stats.EdgesPerSec /= stats.MakespanSec
	}
	for _, w := range pool {
		stats.PerDevice = append(stats.PerDevice, w.stats)
	}

	pred, err := pool[0].pipe.Model().PredictServing(servingLoad(cfg, bindings, 1-stats.HitRate))
	if err != nil {
		return nil, err
	}
	stats.Prediction = pred
	return stats, nil
}

// setKindCaps bounds each device kind's in-flight admission share on mixed
// pools: capacity split proportionally to the kind's worker count, so one
// slow kind's late completions cannot occupy the whole queue and starve the
// kinds that are keeping up. Single-kind pools keep the plain global bound.
func setKindCaps(a *AdmissionController, pool []*worker, queueCap int) {
	counts := map[hw.Kind]int{}
	for _, w := range pool {
		counts[w.pipe.Device().Kind]++
	}
	if len(counts) < 2 {
		return
	}
	for kind, n := range counts {
		a.SetKindCap(kind, max(1, queueCap*n/len(pool)))
	}
}

// servingLoad maps a Config onto the analytic model's load description.
func servingLoad(cfg Config, bindings []int, computeFrac float64) perfmodel.ServingLoad {
	return perfmodel.ServingLoad{
		RatePerSec:  cfg.RatePerSec,
		MaxBatch:    cfg.MaxBatch,
		WindowSec:   cfg.WindowSec,
		Workers:     len(bindings),
		Devices:     bindings,
		ComputeFrac: computeFrac,
		Accel:       len(cfg.Plat.Accels) > 0,
	}
}

// Predict evaluates the analytic serving model for cfg at the given compute
// fraction (1 − expected cache hit rate) without executing a run — the
// cheap way to size a deployment or anchor a load sweep on predicted
// capacity.
func Predict(cfg Config, computeFrac float64) (perfmodel.ServingPrediction, error) {
	bindings := workerBindings(cfg)
	p, err := core.NewInferencePipeline(core.InferConfig{
		Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
		Fanouts: cfg.Fanouts, Device: bindings[0],
		QuantizeTransfer: cfg.QuantizeTransfer,
	})
	if err != nil {
		return perfmodel.ServingPrediction{}, err
	}
	return p.Model().PredictServing(servingLoad(cfg, bindings, computeFrac))
}
