// Package serve is the online-serving subsystem grown on the shared HyScale
// runtime: a request queue with kind-aware admission control, a dynamic
// batcher (size-or-deadline, with an optional per-kind split), a sharded
// LRU embedding cache keyed by vertex and model version, and a fleet of
// per-device workers — each core.InferencePipeline bound to one hw.Device
// (the host CPU peer, a GPU, or an FPGA running the §IV-C dataflow kernels)
// the way training's Trainer backends are. A pluggable routing policy
// dispatches every closed batch — by default to the worker with the
// earliest predicted completion, using the per-device perfmodel serving
// stage vectors — while charging sample → gather → transfer → propagate on
// the same virtual PipelineClock and perfmodel price list as training. The
// run is an event-driven open-loop simulation (the BLIS-style shape):
// arrivals, batch deadlines, and batch completions are totally ordered in
// virtual time, so every run is deterministic for a given seed.
//
// The event loop is allocation-free in steady state (gated by
// TestServingSteadyStateZeroAlloc): batches ping-pong between two retained
// buffers, cache lookups and inserts run through batch APIs over
// preallocated scratch, per-vertex dedup uses a generation-stamped array,
// and the per-device service-time memo is a dense slice.
package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Config assembles a serving run.
type Config struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model to serve (read-only during the run).
	Model   *gnn.Model
	Fanouts []int
	// ModelVersion tags cache entries; bump it after a weight push to
	// invalidate stale embeddings. Zero means version 1.
	ModelVersion int

	// Open-loop stream: NumRequests arrivals at RatePerSec with Zipf(θ)
	// vertex popularity (θ=0 is uniform).
	NumRequests  int
	RatePerSec   float64
	ZipfExponent float64

	// Workload replaces the single Poisson stream with the multi-cohort
	// engine: named cohorts with Poisson/Gamma/Weibull inter-arrivals,
	// diurnal rate envelopes, per-cohort Zipf skew and SLO class, merged
	// into one deterministic arrival stream. Nil keeps the legacy stream
	// built from RatePerSec/ZipfExponent.
	Workload *WorkloadSpec
	// Replay serves a recorded arrival trace instead of generating arrivals
	// (mutually exclusive with Workload): the run consumes
	// min(NumRequests, len(trace)) requests, and two replays of the same
	// trace produce byte-identical Stats.
	Replay *Trace

	// Serving knobs.
	MaxBatch  int     // dynamic batcher's size cap
	WindowSec float64 // dynamic batcher's max-wait deadline
	// Workers is the accelerator worker count. With accelerators present,
	// worker i binds Plat.Accels[i] (capped at the fleet size); without
	// accelerators one CPU worker serves.
	Workers int
	// CPUPeer adds a host-CPU-bound worker alongside the accelerator
	// workers — training's hybrid CPU trainer applied to serving. The peer
	// pays no PCIe transfer or kernel-launch cost, which makes it the
	// natural landing spot for cache-hot small batches.
	CPUPeer bool
	// SmallBatchCut is the dynamic batcher's per-kind split: closed batches
	// whose cache-missing target count is at or under the cut are routed to
	// the CPU peer. 0 disables the split; a positive cut requires CPUPeer
	// on platforms with accelerators.
	SmallBatchCut int
	// Formation names the batch-formation policy: "fcfs" (default, the
	// pre-formation batcher's exact behavior), "priority" (class-weighted
	// close deadlines, class-ordered batches), or "sjf"
	// (predicted-service-aware deadlines). See ParseFormation.
	Formation string
	// ClassRates meters admission per SLO class with token buckets on the
	// virtual clock, alongside the per-kind caps; classes without an entry
	// are unmetered.
	ClassRates []ClassRateLimit

	QueueCap  int // admission control: max outstanding requests (0 → 1024)
	CacheSize int // embedding-cache capacity in entries (0 disables)
	// CacheShards lock-stripes the embedding cache (rounded down to a power
	// of two, clamped to CacheSize; 0 → 1). A 1-shard cache evicts in
	// exactly the legacy global-LRU order; more shards evict per-shard, so
	// until evictions begin the shard count never changes which keys are
	// resident (and run Stats are identical across shard counts).
	CacheShards int

	// Policy names the routing policy: "earliest" (default), "least-loaded"
	// (the pre-PR-4 legacy router, kept as the regression baseline), or
	// "affinity" (cache-affinity scoring with predicted-completion
	// tie-break). See ParsePolicy for accepted spellings.
	Policy string
	// RouteTrace records a RouteDecision row per computed batch in
	// Stats.RouteTrace — the chosen worker plus the counterfactual
	// predicted completion of every alternative. Tracing allocates; leave
	// it off on the zero-alloc path.
	RouteTrace bool

	// Faults scripts deterministic worker failures on the virtual clock (see
	// fault.Parse): fail-stops drain and exclude workers and retighten
	// admission to the surviving capacity, stall windows delay batch starts,
	// and straggler windows inflate service times. Nil or a schedule with no
	// serving events leaves every code path byte-identical to a fault-free
	// build.
	Faults *fault.Schedule
	// RetryBudget bounds per-batch re-dispatch attempts when the routed
	// worker is predicted to fail-stop mid-service (0 → 2, negative → no
	// retries: the batch is shed on first loss).
	RetryBudget int
	// SLOTargets sets per-class latency targets for deadline-miss
	// accounting; empty disables it (and leaves Stats byte-identical).
	SLOTargets []ClassSLO

	QuantizeTransfer bool // int8 feature transfer for accelerator workers
	Seed             uint64
}

// worker is one pool member: a pipeline bound to a device plus its share
// counters. Predicted batch service times come from the pipeline's dense
// ServiceSec memo (they depend only on the computed-target count, which the
// size cap bounds; the server prefills 1..MaxBatch at construction).
type worker struct {
	pipe  *core.InferencePipeline
	idx   int // position in the pool
	stats DeviceStats
}

// serviceSec returns the memoized per-device predicted service time for a
// batch of `computed` cache-missing targets.
func (w *worker) serviceSec(computed int) (float64, error) {
	return w.pipe.ServiceSec(computed)
}

// workerBindings resolves the pool's device bindings in
// core.InferConfig.Device convention (0 = host CPU, i > 0 = Accels[i-1]):
// one worker per accelerator (capped by Workers), plus the CPU peer when
// requested; a single CPU worker on accelerator-less platforms.
func workerBindings(cfg Config) []int {
	nAccel := len(cfg.Plat.Accels)
	if nAccel == 0 {
		return []int{0}
	}
	k := cfg.Workers
	if k <= 0 || k > nAccel {
		k = nAccel
	}
	b := make([]int, 0, k+1)
	for i := 0; i < k; i++ {
		b = append(b, i+1)
	}
	if cfg.CPUPeer {
		b = append(b, 0)
	}
	return b
}

// server is one serving run's assembled state: the pool, stream, batcher,
// admission controller, cache, and routing policy, plus every scratch
// buffer the dispatch path reuses. Its steady state (offer → batch close →
// route → complete) performs zero heap allocations once warm.
// arrivalSource abstracts where a run's requests come from: the legacy
// Poisson stream, the multi-cohort workload engine, or a recorded trace.
// Next reports false when a bounded source (a trace) is exhausted.
type arrivalSource interface {
	Next() (Request, bool)
}

// streamSource adapts the unbounded legacy RequestStream.
type streamSource struct{ s *RequestStream }

func (ss streamSource) Next() (Request, bool) { return ss.s.Next(), true }

type server struct {
	cfg       Config
	pool      []*worker
	bindings  []int
	stream    arrivalSource
	batcher   *DynamicBatcher
	admission *AdmissionController
	cache     *ShardedCache
	policy    RoutePolicy

	stats           *Stats
	latencies       []float64
	latClasses      []SLOClass // class of latencies[i], for per-class quantiles
	latDone         []float64  // completion time of latencies[i], for the fault window
	lastCompletion  float64
	batchReqSum     int
	computedBatches int

	// Fault-injection state: health is nil without serving faults, and every
	// hot path then takes its pre-fault branch.
	health      *fleetHealth
	retryBudget int
	recoveryEnd float64 // latest re-dispatched completion (recovery metric)
	sloTargets  [NumClasses]float64
	haveSLO     bool

	// Dispatch scratch, all MaxBatch-bounded and reused per batch.
	keys    []CacheKey  // lookup keys, one per batch request
	ready   []float64   // GetMany: per-request entry ready time
	hit     []bool      // GetMany: per-request hit flag
	order   []int32     // unique cache-missing vertices, first-seen order
	putKeys []CacheKey  // PutMany keys for order
	putEmbs [][]float32 // PutMany values (arena-copied by the cache)
	// Completion times are split by who answered: cache hits are served by
	// the host, computed requests by the routed worker — the split is what
	// keeps hit completions off an accelerator's in-flight share.
	hitDone  []float64
	compDone []float64
	// vertexGen dedups a batch's missing vertices without a map: slot v
	// holds the generation of the last batch that saw v.
	vertexGen []uint32
	gen       uint32
	// routeReq is the reused routing request: passing a stack literal's
	// address through the RoutePolicy interface would escape (one heap
	// allocation per computed batch).
	routeReq RouteRequest
}

// newServer validates cfg and assembles a run (the entry point Run and the
// benchmarks share).
func newServer(cfg Config) (*server, error) {
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("serve: non-positive request count %d", cfg.NumRequests)
	}
	if cfg.ModelVersion == 0 {
		cfg.ModelVersion = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SmallBatchCut > 0 && !cfg.CPUPeer && len(cfg.Plat.Accels) > 0 {
		return nil, fmt.Errorf("serve: SmallBatchCut %d needs the CPU peer (set CPUPeer)", cfg.SmallBatchCut)
	}
	if cfg.Workload != nil && cfg.Replay != nil {
		return nil, fmt.Errorf("serve: Workload and Replay are mutually exclusive")
	}
	policyName, err := ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = policyName
	formation, err := ParseFormation(cfg.Formation)
	if err != nil {
		return nil, err
	}
	cfg.Formation = formation
	bindings := workerBindings(cfg)
	rng := tensor.NewRNG(cfg.Seed)
	pool := make([]*worker, len(bindings))
	for i, device := range bindings {
		p, err := core.NewInferencePipeline(core.InferConfig{
			Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
			Fanouts: cfg.Fanouts, Device: device,
			QuantizeTransfer: cfg.QuantizeTransfer,
			Seed:             rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		pool[i] = &worker{pipe: p, idx: i, stats: DeviceStats{
			Name: p.Device().Name, Kind: p.Device().Kind, Device: device,
		}}
		// Prefill the service-time memo for every batch size the router can
		// ask about, so routing never allocates in steady state.
		for c := 1; c <= cfg.MaxBatch; c++ {
			if _, err := p.ServiceSec(c); err != nil {
				return nil, err
			}
		}
	}
	stream, err := newArrivalSource(cfg, rng.Split())
	if err != nil {
		return nil, err
	}
	var health *fleetHealth
	if cfg.Faults.HasServing() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		health, err = newFleetHealth(cfg.Faults, len(pool))
		if err != nil {
			return nil, err
		}
	}
	retryBudget := cfg.RetryBudget
	switch {
	case retryBudget == 0:
		retryBudget = 2
	case retryBudget < 0:
		retryBudget = 0
	}
	var sloTargets [NumClasses]float64
	haveSLO := false
	for _, t := range cfg.SLOTargets {
		if t.Class >= NumClasses {
			return nil, fmt.Errorf("serve: SLO target class %d out of range", t.Class)
		}
		if t.TargetSec <= 0 {
			return nil, fmt.Errorf("serve: non-positive SLO target %v for %s", t.TargetSec, t.Class)
		}
		sloTargets[t.Class] = t.TargetSec
		haveSLO = true
	}
	batcher, err := NewSplitBatcher(cfg.MaxBatch, cfg.WindowSec, cfg.SmallBatchCut)
	if err != nil {
		return nil, err
	}
	if cfg.Formation != FormationFCFS {
		// The sjf predictor is pool[0]'s dense service memo — prefilled
		// above, so formation never allocates in steady state.
		svc := func(size int) float64 {
			v, err := pool[0].pipe.ServiceSec(size)
			if err != nil {
				return 0
			}
			return v
		}
		if err := batcher.SetFormation(cfg.Formation, svc); err != nil {
			return nil, err
		}
	}
	admission, err := NewAdmissionController(cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	setKindCaps(admission, pool, cfg.QueueCap)
	for _, cr := range cfg.ClassRates {
		if err := admission.SetClassRate(cr.Class, cr.RatePerSec, cr.Burst); err != nil {
			return nil, err
		}
	}
	policy, err := newRoutePolicy(cfg.Policy, pool, admission, health)
	if err != nil {
		return nil, err
	}
	dims := cfg.Model.Cfg.Dims
	s := &server{
		cfg:       cfg,
		pool:      pool,
		bindings:  bindings,
		stream:    stream,
		batcher:   batcher,
		admission: admission,
		cache:     NewShardedCache(cfg.CacheSize, cfg.CacheShards, dims[len(dims)-1]),
		policy:    policy,

		stats:      &Stats{Routes: make([]int, 0, cfg.NumRequests)},
		latencies:  make([]float64, 0, cfg.NumRequests),
		latClasses: make([]SLOClass, 0, cfg.NumRequests),
		latDone:    make([]float64, 0, cfg.NumRequests),

		health:      health,
		retryBudget: retryBudget,
		sloTargets:  sloTargets,
		haveSLO:     haveSLO,

		keys:      make([]CacheKey, cfg.MaxBatch),
		ready:     make([]float64, cfg.MaxBatch),
		hit:       make([]bool, cfg.MaxBatch),
		order:     make([]int32, 0, cfg.MaxBatch),
		putKeys:   make([]CacheKey, 0, cfg.MaxBatch),
		putEmbs:   make([][]float32, 0, cfg.MaxBatch),
		hitDone:   make([]float64, 0, cfg.MaxBatch),
		compDone:  make([]float64, 0, cfg.MaxBatch),
		vertexGen: make([]uint32, cfg.Data.Graph.NumVertices),
	}
	return s, nil
}

// streamRNG derives the arrival stream's RNG exactly as newServer does
// (one Uint64 per pool worker, then a split), so GenerateTrace's arrivals
// match the arrivals a run of the same Config would generate.
func streamRNG(cfg Config) *tensor.RNG {
	rng := tensor.NewRNG(cfg.Seed)
	for range workerBindings(cfg) {
		rng.Uint64()
	}
	return rng.Split()
}

// newArrivalSource builds cfg's arrival stream: a recorded trace when
// Replay is set, the multi-cohort workload engine when Workload is set,
// and the legacy single Poisson/Zipf stream otherwise.
func newArrivalSource(cfg Config, rng *tensor.RNG) (arrivalSource, error) {
	switch {
	case cfg.Replay != nil:
		return &traceSource{reqs: cfg.Replay.Requests}, nil
	case cfg.Workload != nil:
		return NewWorkloadStream(cfg.Workload, cfg.Data.Graph.NumVertices, rng)
	default:
		s, err := NewRequestStream(cfg.Data.Graph.NumVertices, cfg.RatePerSec, cfg.ZipfExponent, rng)
		if err != nil {
			return nil, err
		}
		return streamSource{s}, nil
	}
}

// serveReq records one answered request at its virtual completion time;
// computed says whether the routed worker answered it (false: the cache
// did, and its completion belongs to the host).
func (s *server) serveReq(r Request, done float64, computed bool) {
	s.latencies = append(s.latencies, done-r.Arrival)
	s.latClasses = append(s.latClasses, r.Class)
	s.latDone = append(s.latDone, done)
	if r.Class < NumClasses {
		s.stats.PerClass[r.Class].Served++
	}
	if computed {
		s.compDone = append(s.compDone, done)
	} else {
		s.hitDone = append(s.hitDone, done)
	}
	if done > s.lastCompletion {
		s.lastCompletion = done
	}
}

// dispatch runs one closed batch through cache → route → compute → publish.
func (s *server) dispatch(batch []Request, closeAt float64) error {
	s.stats.Batches++
	s.batchReqSum += len(batch)
	s.hitDone, s.compDone = s.hitDone[:0], s.compDone[:0]

	// Cache pass, batched: one lock round-trip per touched shard. Hits are
	// answered when their entry is ready (an in-flight entry behaves as a
	// future); misses are coalesced per vertex via the generation stamp and
	// sent to the pool.
	s.gen++
	if s.gen == 0 { // generation wrapped: invalidate every stamp
		for i := range s.vertexGen {
			s.vertexGen[i] = 0
		}
		s.gen = 1
	}
	keys, ready, hit := s.keys[:len(batch)], s.ready[:len(batch)], s.hit[:len(batch)]
	for i, r := range batch {
		keys[i] = CacheKey{Vertex: r.Vertex, Version: s.cfg.ModelVersion}
	}
	s.cache.GetMany(keys, ready, hit, nil)
	s.order = s.order[:0]
	for i, r := range batch {
		if hit[i] {
			s.serveReq(r, math.Max(closeAt, ready[i]), false)
			continue
		}
		if s.vertexGen[r.Vertex] != s.gen {
			s.vertexGen[r.Vertex] = s.gen
			s.order = append(s.order, r.Vertex)
		}
	}

	kind := hw.CPU
	if len(s.order) > 0 {
		// Route, then (under a fault schedule) check whether the chosen
		// worker is predicted to fail-stop before the batch completes — a
		// batch in flight on a dying worker is lost and re-routed at the
		// fail time plus a deadline-aware backoff, up to the retry budget.
		// With no schedule the loop runs exactly once and the arithmetic is
		// the pre-fault dispatch byte for byte.
		routeAt := closeAt
		attempt := 0
		shed := false
		var wi int
		for {
			s.routeReq = RouteRequest{
				Computed: len(s.order),
				CloseAt:  routeAt,
				Small:    s.batcher.Small(len(s.order)),
				Targets:  s.order,
			}
			var dec *RouteDecision
			if s.cfg.RouteTrace {
				s.stats.RouteTrace = append(s.stats.RouteTrace, RouteDecision{Batch: len(s.stats.Routes)})
				dec = &s.stats.RouteTrace[len(s.stats.RouteTrace)-1]
			}
			var err error
			wi, err = s.policy.Route(&s.routeReq, dec)
			if err != nil {
				return err
			}
			if wi < 0 { // every worker fail-stopped: nothing can serve this batch
				shed = true
				break
			}
			if s.health == nil {
				break
			}
			w := s.pool[wi]
			svc, err := w.serviceSec(len(s.order))
			if err != nil {
				return err
			}
			start, f := s.health.adjust(wi, math.Max(routeAt, w.pipe.AvailableAt()))
			if ft := s.health.failTime(wi); start+svc*f > ft {
				// Predicted to die mid-service: the batch re-dispatches after
				// the failure (the loss is observed at the fail time).
				s.stats.Retries++
				attempt++
				if attempt > s.retryBudget {
					shed = true
					break
				}
				routeAt = ft + s.retryBackoff(attempt, batch, hit, ft)
				continue
			}
			break
		}
		if shed {
			s.shedBatch(batch, hit)
			s.admission.DispatchedKind(hw.CPU, s.hitDone)
			return nil
		}
		w := s.pool[wi]
		res, err := w.pipe.RunBatch(s.order)
		if err != nil {
			return err
		}
		ready := routeAt
		stage := res.Stage
		if s.health != nil {
			// Apply the scripted stall/straggler windows to the executed
			// batch exactly as routing predicted them: a stalled start is
			// pushed past the window, a straggler's stages are inflated.
			start := math.Max(routeAt, w.pipe.AvailableAt())
			adjStart, f := s.health.adjust(wi, start)
			if adjStart > start {
				ready = adjStart
			}
			if f != 1 {
				stage = stage.Scaled(f)
			}
			res.Stage = stage
		}
		done := w.pipe.CompleteAfter(ready, stage)
		if attempt > 0 {
			s.stats.Redispatched++
			if done > s.recoveryEnd {
				s.recoveryEnd = done
			}
		}
		kind = w.pipe.Device().Kind
		s.putKeys, s.putEmbs = s.putKeys[:0], s.putEmbs[:0]
		for i, v := range s.order {
			s.putKeys = append(s.putKeys, CacheKey{Vertex: v, Version: s.cfg.ModelVersion})
			s.putEmbs = append(s.putEmbs, res.Logits.Row(i))
		}
		// PutMany copies each row into the shard arena, so the views into
		// the worker's workspace are not retained past this call.
		s.cache.PutMany(s.putKeys, s.putEmbs, done)
		served := 0
		for i, r := range batch {
			if hit[i] {
				continue
			}
			s.serveReq(r, done, true)
			s.stats.Computed++
			served++
		}
		svc := perfmodel.ServingServiceSec(res.Stage)
		s.stats.MeanServiceSec += svc
		s.computedBatches++
		s.stats.EdgesPerSec += res.Edges // normalized by makespan in finish
		w.stats.Batches++
		w.stats.Requests += served
		w.stats.BusySec += svc
		s.stats.Routes = append(s.stats.Routes, wi)
		s.policy.Observe(wi, s.order)
	}
	// Cache hits are answered by the host: only the computed requests'
	// completions occupy the routed kind's in-flight share. (The old code
	// pushed every completion — hits included — onto the computed batch's
	// kind heap, so a hit-heavy batch routed to an FPGA counted requests
	// the cache had already answered against the FPGA's SetKindCap share.)
	s.admission.DispatchedKind(hw.CPU, s.hitDone)
	s.admission.DispatchedKind(kind, s.compDone)
	return nil
}

// shedBatch abandons a batch's cache-missing requests (no live worker, or
// retry budget exhausted): they count as shed — not served, not rejected —
// and their admission slots are released so capacity is not leaked to dead
// work. The batch's cache hits were already answered by the host.
func (s *server) shedBatch(batch []Request, hit []bool) {
	n := 0
	for i, r := range batch {
		if hit[i] {
			continue
		}
		n++
		s.stats.Shed++
		if r.Class < NumClasses {
			s.stats.PerClass[r.Class].Shed++
		}
	}
	s.admission.Cancel(n)
}

// retryBackoff returns the wait after a predicted mid-service worker loss
// before re-dispatching (attempt counts from 1): exponential over the
// batching window, capped by the tightest remaining SLO budget among the
// batch's computed requests so a retry never deliberately overshoots a
// deadline it could still make.
func (s *server) retryBackoff(attempt int, batch []Request, hit []bool, failAt float64) float64 {
	base := s.cfg.WindowSec
	if base <= 0 {
		base = 1e-4
	}
	d := base * float64(int(1)<<uint(attempt-1))
	if s.haveSLO {
		tight := math.Inf(1)
		for i, r := range batch {
			if hit[i] {
				continue
			}
			if t := s.sloTargets[r.Class]; t > 0 {
				if rem := r.Arrival + t - failAt; rem < tight {
					tight = rem
				}
			}
		}
		if tight > 0 && d > tight {
			d = tight
		}
	}
	return d
}

// applyFailures applies every scripted fail-stop at or before now to the
// admission plane: per-kind in-flight caps are re-split over the surviving
// workers and class buckets retighten to the surviving-capacity fraction
// (degraded-mode admission). Routing needs no application step — worker
// liveness is a pure function of virtual time.
func (s *server) applyFailures(now float64) {
	n := s.health.popFailures(now)
	if n == 0 {
		return
	}
	s.stats.FailedWorkers += n
	alive := s.health.aliveCount(now)
	s.admission.SetDegraded(float64(alive) / float64(len(s.pool)))
	if alive == 0 {
		return
	}
	var counts [hw.KindCount]int
	for i, w := range s.pool {
		if s.health.alive(i, now) {
			counts[w.pipe.Device().Kind]++
		}
	}
	for kind, c := range counts {
		if c > 0 {
			s.admission.SetKindCap(hw.Kind(kind), max(1, s.cfg.QueueCap*c/alive))
		}
	}
}

// offer feeds one arrival through deadline-expiry, admission, and batching —
// the event loop's body, exposed for the zero-alloc gate and benchmarks.
func (s *server) offer(r Request) error {
	if s.health != nil {
		s.applyFailures(r.Arrival)
	}
	s.stats.Offered++
	if r.Class < NumClasses {
		s.stats.PerClass[r.Class].Offered++
	}
	for {
		batch, closeAt := s.batcher.CloseExpired(r.Arrival)
		if batch == nil {
			break
		}
		if err := s.dispatch(batch, closeAt); err != nil {
			return err
		}
	}
	if s.health != nil && s.admission.ShedClass(r.Class) {
		// Degraded-mode admission: shed the classes the surviving capacity
		// can no longer afford, bulk before interactive.
		s.stats.Shed++
		if r.Class < NumClasses {
			s.stats.PerClass[r.Class].Shed++
		}
		return nil
	}
	if !s.admission.AdmitClass(r.Arrival, r.Class) {
		s.stats.Rejected++
		if r.Class < NumClasses {
			s.stats.PerClass[r.Class].Rejected++
		}
		return nil
	}
	if batch, closeAt := s.batcher.Add(r); batch != nil {
		if err := s.dispatch(batch, closeAt); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes the open batch and summarizes the run.
func (s *server) finish() (*Stats, error) {
	if batch, closeAt := s.batcher.Flush(); batch != nil {
		if err := s.dispatch(batch, closeAt); err != nil {
			return nil, err
		}
	}
	stats := s.stats
	stats.Served = len(s.latencies)
	stats.summarizeLatencies(s.latencies)
	stats.summarizePerClass(s.latencies, s.latClasses)
	hits, _, evictions := s.cache.Stats()
	stats.CacheHits = hits
	stats.Evictions = evictions
	if stats.Served > 0 {
		stats.HitRate = float64(stats.Served-stats.Computed) / float64(stats.Served)
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(s.batchReqSum) / float64(stats.Batches)
	}
	if s.computedBatches > 0 {
		stats.MeanServiceSec /= float64(s.computedBatches)
	}
	stats.MakespanSec = s.lastCompletion
	if stats.MakespanSec > 0 {
		stats.ThroughputRPS = float64(stats.Served) / stats.MakespanSec
		stats.EdgesPerSec /= stats.MakespanSec
	}
	if s.haveSLO {
		for i, l := range s.latencies {
			c := s.latClasses[i]
			if t := s.sloTargets[c]; t > 0 && l > t {
				stats.DeadlineMisses++
				stats.PerClass[c].DeadlineMisses++
			}
		}
		for c := range stats.PerClass {
			stats.PerClass[c].SLOSec = s.sloTargets[c]
		}
	}
	if s.health != nil && !math.IsInf(s.health.firstFailSec, 1) {
		if s.recoveryEnd > s.health.firstFailSec {
			stats.RecoverySec = s.recoveryEnd - s.health.firstFailSec
		}
		// Tail of the fault window: requests whose completions land at or
		// after the first fail-stop.
		var window []float64
		for i, done := range s.latDone {
			if done >= s.health.firstFailSec {
				window = append(window, s.latencies[i])
			}
		}
		stats.FaultWindowServed = len(window)
		if len(window) > 0 {
			sort.Float64s(window)
			stats.FaultWindowP99Sec = percentile(window, 0.99)
		}
	}
	for _, w := range s.pool {
		stats.PerDevice = append(stats.PerDevice, w.stats)
	}
	pred, err := s.pool[0].pipe.Model().PredictServing(servingLoad(s.cfg, s.bindings, 1-stats.HitRate))
	if err != nil {
		return nil, err
	}
	stats.Prediction = pred
	return stats, nil
}

// Run drives the full open-loop stream through the serving stack and
// returns the measured statistics plus the analytic prediction for the same
// operating point.
func Run(cfg Config) (*Stats, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumRequests; i++ {
		r, ok := s.stream.Next()
		if !ok { // bounded source (trace replay) exhausted
			break
		}
		if err := s.offer(r); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// setKindCaps bounds each device kind's in-flight admission share on mixed
// pools: capacity split proportionally to the kind's worker count, so one
// slow kind's late completions cannot occupy the whole queue and starve the
// kinds that are keeping up. Single-kind pools keep the plain global bound.
func setKindCaps(a *AdmissionController, pool []*worker, queueCap int) {
	var counts [hw.KindCount]int
	kinds := 0
	for _, w := range pool {
		if counts[w.pipe.Device().Kind] == 0 {
			kinds++
		}
		counts[w.pipe.Device().Kind]++
	}
	if kinds < 2 {
		return
	}
	for kind, n := range counts {
		if n > 0 {
			a.SetKindCap(hw.Kind(kind), max(1, queueCap*n/len(pool)))
		}
	}
}

// servingLoad maps a Config onto the analytic model's load description.
func servingLoad(cfg Config, bindings []int, computeFrac float64) perfmodel.ServingLoad {
	return perfmodel.ServingLoad{
		RatePerSec:  cfg.RatePerSec,
		MaxBatch:    cfg.MaxBatch,
		WindowSec:   cfg.WindowSec,
		Workers:     len(bindings),
		Devices:     bindings,
		ComputeFrac: computeFrac,
		Accel:       len(cfg.Plat.Accels) > 0,
	}
}

// Predict evaluates the analytic serving model for cfg at the given compute
// fraction (1 − expected cache hit rate) without executing a run — the
// cheap way to size a deployment or anchor a load sweep on predicted
// capacity.
func Predict(cfg Config, computeFrac float64) (perfmodel.ServingPrediction, error) {
	bindings := workerBindings(cfg)
	p, err := core.NewInferencePipeline(core.InferConfig{
		Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
		Fanouts: cfg.Fanouts, Device: bindings[0],
		QuantizeTransfer: cfg.QuantizeTransfer,
	})
	if err != nil {
		return perfmodel.ServingPrediction{}, err
	}
	return p.Model().PredictServing(servingLoad(cfg, bindings, computeFrac))
}
