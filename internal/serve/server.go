// Package serve is the online-serving subsystem grown on the shared HyScale
// runtime: a request queue with kind-aware admission control, a dynamic
// batcher (size-or-deadline, with an optional per-kind split), a sharded
// LRU embedding cache keyed by vertex and model version, and a fleet of
// per-device workers — each core.InferencePipeline bound to one hw.Device
// (the host CPU peer, a GPU, or an FPGA running the §IV-C dataflow kernels)
// the way training's Trainer backends are. A pluggable routing policy
// dispatches every closed batch — by default to the worker with the
// earliest predicted completion, using the per-device perfmodel serving
// stage vectors — while charging sample → gather → transfer → propagate on
// the same virtual PipelineClock and perfmodel price list as training. The
// run is an event-driven open-loop simulation (the BLIS-style shape):
// arrivals, batch deadlines, and batch completions are totally ordered in
// virtual time, so every run is deterministic for a given seed.
//
// The event loop is allocation-free in steady state (gated by
// TestServingSteadyStateZeroAlloc): batches ping-pong between two retained
// buffers, cache lookups and inserts run through batch APIs over
// preallocated scratch, per-vertex dedup uses a generation-stamped array,
// and the per-device service-time memo is a dense slice.
package serve

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Config assembles a serving run.
type Config struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model to serve (read-only during the run).
	Model   *gnn.Model
	Fanouts []int
	// ModelVersion tags cache entries; bump it after a weight push to
	// invalidate stale embeddings. Zero means version 1.
	ModelVersion int

	// Open-loop stream: NumRequests arrivals at RatePerSec with Zipf(θ)
	// vertex popularity (θ=0 is uniform).
	NumRequests  int
	RatePerSec   float64
	ZipfExponent float64

	// Serving knobs.
	MaxBatch  int     // dynamic batcher's size cap
	WindowSec float64 // dynamic batcher's max-wait deadline
	// Workers is the accelerator worker count. With accelerators present,
	// worker i binds Plat.Accels[i] (capped at the fleet size); without
	// accelerators one CPU worker serves.
	Workers int
	// CPUPeer adds a host-CPU-bound worker alongside the accelerator
	// workers — training's hybrid CPU trainer applied to serving. The peer
	// pays no PCIe transfer or kernel-launch cost, which makes it the
	// natural landing spot for cache-hot small batches.
	CPUPeer bool
	// SmallBatchCut is the dynamic batcher's per-kind split: closed batches
	// whose cache-missing target count is at or under the cut are routed to
	// the CPU peer. 0 disables the split; a positive cut requires CPUPeer
	// on platforms with accelerators.
	SmallBatchCut int
	QueueCap      int // admission control: max outstanding requests (0 → 1024)
	CacheSize     int // embedding-cache capacity in entries (0 disables)
	// CacheShards lock-stripes the embedding cache (rounded down to a power
	// of two, clamped to CacheSize; 0 → 1). A 1-shard cache evicts in
	// exactly the legacy global-LRU order; more shards evict per-shard, so
	// until evictions begin the shard count never changes which keys are
	// resident (and run Stats are identical across shard counts).
	CacheShards int

	// Policy names the routing policy: "earliest" (default), "least-loaded"
	// (the pre-PR-4 legacy router, kept as the regression baseline), or
	// "affinity" (cache-affinity scoring with predicted-completion
	// tie-break). See ParsePolicy for accepted spellings.
	Policy string
	// RouteTrace records a RouteDecision row per computed batch in
	// Stats.RouteTrace — the chosen worker plus the counterfactual
	// predicted completion of every alternative. Tracing allocates; leave
	// it off on the zero-alloc path.
	RouteTrace bool

	QuantizeTransfer bool // int8 feature transfer for accelerator workers
	Seed             uint64
}

// worker is one pool member: a pipeline bound to a device plus its share
// counters. Predicted batch service times come from the pipeline's dense
// ServiceSec memo (they depend only on the computed-target count, which the
// size cap bounds; the server prefills 1..MaxBatch at construction).
type worker struct {
	pipe  *core.InferencePipeline
	idx   int // position in the pool
	stats DeviceStats
}

// serviceSec returns the memoized per-device predicted service time for a
// batch of `computed` cache-missing targets.
func (w *worker) serviceSec(computed int) (float64, error) {
	return w.pipe.ServiceSec(computed)
}

// workerBindings resolves the pool's device bindings in
// core.InferConfig.Device convention (0 = host CPU, i > 0 = Accels[i-1]):
// one worker per accelerator (capped by Workers), plus the CPU peer when
// requested; a single CPU worker on accelerator-less platforms.
func workerBindings(cfg Config) []int {
	nAccel := len(cfg.Plat.Accels)
	if nAccel == 0 {
		return []int{0}
	}
	k := cfg.Workers
	if k <= 0 || k > nAccel {
		k = nAccel
	}
	b := make([]int, 0, k+1)
	for i := 0; i < k; i++ {
		b = append(b, i+1)
	}
	if cfg.CPUPeer {
		b = append(b, 0)
	}
	return b
}

// server is one serving run's assembled state: the pool, stream, batcher,
// admission controller, cache, and routing policy, plus every scratch
// buffer the dispatch path reuses. Its steady state (offer → batch close →
// route → complete) performs zero heap allocations once warm.
type server struct {
	cfg       Config
	pool      []*worker
	bindings  []int
	stream    *RequestStream
	batcher   *DynamicBatcher
	admission *AdmissionController
	cache     *ShardedCache
	policy    RoutePolicy

	stats           *Stats
	latencies       []float64
	lastCompletion  float64
	batchReqSum     int
	computedBatches int

	// Dispatch scratch, all MaxBatch-bounded and reused per batch.
	keys        []CacheKey  // lookup keys, one per batch request
	ready       []float64   // GetMany: per-request entry ready time
	hit         []bool      // GetMany: per-request hit flag
	order       []int32     // unique cache-missing vertices, first-seen order
	putKeys     []CacheKey  // PutMany keys for order
	putEmbs     [][]float32 // PutMany values (arena-copied by the cache)
	completions []float64   // per-request virtual completion times
	// vertexGen dedups a batch's missing vertices without a map: slot v
	// holds the generation of the last batch that saw v.
	vertexGen []uint32
	gen       uint32
	// routeReq is the reused routing request: passing a stack literal's
	// address through the RoutePolicy interface would escape (one heap
	// allocation per computed batch).
	routeReq RouteRequest
}

// newServer validates cfg and assembles a run (the entry point Run and the
// benchmarks share).
func newServer(cfg Config) (*server, error) {
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("serve: non-positive request count %d", cfg.NumRequests)
	}
	if cfg.ModelVersion == 0 {
		cfg.ModelVersion = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SmallBatchCut > 0 && !cfg.CPUPeer && len(cfg.Plat.Accels) > 0 {
		return nil, fmt.Errorf("serve: SmallBatchCut %d needs the CPU peer (set CPUPeer)", cfg.SmallBatchCut)
	}
	policyName, err := ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = policyName
	bindings := workerBindings(cfg)
	rng := tensor.NewRNG(cfg.Seed)
	pool := make([]*worker, len(bindings))
	for i, device := range bindings {
		p, err := core.NewInferencePipeline(core.InferConfig{
			Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
			Fanouts: cfg.Fanouts, Device: device,
			QuantizeTransfer: cfg.QuantizeTransfer,
			Seed:             rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		pool[i] = &worker{pipe: p, idx: i, stats: DeviceStats{
			Name: p.Device().Name, Kind: p.Device().Kind, Device: device,
		}}
		// Prefill the service-time memo for every batch size the router can
		// ask about, so routing never allocates in steady state.
		for c := 1; c <= cfg.MaxBatch; c++ {
			if _, err := p.ServiceSec(c); err != nil {
				return nil, err
			}
		}
	}
	stream, err := NewRequestStream(cfg.Data.Graph.NumVertices, cfg.RatePerSec, cfg.ZipfExponent, rng.Split())
	if err != nil {
		return nil, err
	}
	batcher, err := NewSplitBatcher(cfg.MaxBatch, cfg.WindowSec, cfg.SmallBatchCut)
	if err != nil {
		return nil, err
	}
	admission, err := NewAdmissionController(cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	setKindCaps(admission, pool, cfg.QueueCap)
	policy, err := newRoutePolicy(cfg.Policy, pool, admission)
	if err != nil {
		return nil, err
	}
	dims := cfg.Model.Cfg.Dims
	s := &server{
		cfg:       cfg,
		pool:      pool,
		bindings:  bindings,
		stream:    stream,
		batcher:   batcher,
		admission: admission,
		cache:     NewShardedCache(cfg.CacheSize, cfg.CacheShards, dims[len(dims)-1]),
		policy:    policy,

		stats:     &Stats{Offered: cfg.NumRequests, Routes: make([]int, 0, cfg.NumRequests)},
		latencies: make([]float64, 0, cfg.NumRequests),

		keys:        make([]CacheKey, cfg.MaxBatch),
		ready:       make([]float64, cfg.MaxBatch),
		hit:         make([]bool, cfg.MaxBatch),
		order:       make([]int32, 0, cfg.MaxBatch),
		putKeys:     make([]CacheKey, 0, cfg.MaxBatch),
		putEmbs:     make([][]float32, 0, cfg.MaxBatch),
		completions: make([]float64, 0, cfg.MaxBatch),
		vertexGen:   make([]uint32, cfg.Data.Graph.NumVertices),
	}
	return s, nil
}

// serveReq records one answered request at its virtual completion time.
func (s *server) serveReq(r Request, done float64) {
	s.latencies = append(s.latencies, done-r.Arrival)
	s.completions = append(s.completions, done)
	if done > s.lastCompletion {
		s.lastCompletion = done
	}
}

// dispatch runs one closed batch through cache → route → compute → publish.
func (s *server) dispatch(batch []Request, closeAt float64) error {
	s.stats.Batches++
	s.batchReqSum += len(batch)
	s.completions = s.completions[:0]

	// Cache pass, batched: one lock round-trip per touched shard. Hits are
	// answered when their entry is ready (an in-flight entry behaves as a
	// future); misses are coalesced per vertex via the generation stamp and
	// sent to the pool.
	s.gen++
	if s.gen == 0 { // generation wrapped: invalidate every stamp
		for i := range s.vertexGen {
			s.vertexGen[i] = 0
		}
		s.gen = 1
	}
	keys, ready, hit := s.keys[:len(batch)], s.ready[:len(batch)], s.hit[:len(batch)]
	for i, r := range batch {
		keys[i] = CacheKey{Vertex: r.Vertex, Version: s.cfg.ModelVersion}
	}
	s.cache.GetMany(keys, ready, hit, nil)
	s.order = s.order[:0]
	for i, r := range batch {
		if hit[i] {
			s.serveReq(r, math.Max(closeAt, ready[i]))
			continue
		}
		if s.vertexGen[r.Vertex] != s.gen {
			s.vertexGen[r.Vertex] = s.gen
			s.order = append(s.order, r.Vertex)
		}
	}

	kind := hw.CPU // cache-only batches are answered by the host
	if len(s.order) > 0 {
		s.routeReq = RouteRequest{
			Computed: len(s.order),
			CloseAt:  closeAt,
			Small:    s.batcher.Small(len(s.order)),
			Targets:  s.order,
		}
		var dec *RouteDecision
		if s.cfg.RouteTrace {
			s.stats.RouteTrace = append(s.stats.RouteTrace, RouteDecision{Batch: len(s.stats.Routes)})
			dec = &s.stats.RouteTrace[len(s.stats.RouteTrace)-1]
		}
		wi, err := s.policy.Route(&s.routeReq, dec)
		if err != nil {
			return err
		}
		w := s.pool[wi]
		res, err := w.pipe.RunBatch(s.order)
		if err != nil {
			return err
		}
		done := w.pipe.CompleteAfter(closeAt, res.Stage)
		kind = w.pipe.Device().Kind
		s.putKeys, s.putEmbs = s.putKeys[:0], s.putEmbs[:0]
		for i, v := range s.order {
			s.putKeys = append(s.putKeys, CacheKey{Vertex: v, Version: s.cfg.ModelVersion})
			s.putEmbs = append(s.putEmbs, res.Logits.Row(i))
		}
		// PutMany copies each row into the shard arena, so the views into
		// the worker's workspace are not retained past this call.
		s.cache.PutMany(s.putKeys, s.putEmbs, done)
		served := 0
		for i, r := range batch {
			if hit[i] {
				continue
			}
			s.serveReq(r, done)
			s.stats.Computed++
			served++
		}
		svc := perfmodel.ServingServiceSec(res.Stage)
		s.stats.MeanServiceSec += svc
		s.computedBatches++
		s.stats.EdgesPerSec += res.Edges // normalized by makespan in finish
		w.stats.Batches++
		w.stats.Requests += served
		w.stats.BusySec += svc
		s.stats.Routes = append(s.stats.Routes, wi)
		s.policy.Observe(wi, s.order)
	}
	s.admission.DispatchedKind(kind, s.completions)
	return nil
}

// offer feeds one arrival through deadline-expiry, admission, and batching —
// the event loop's body, exposed for the zero-alloc gate and benchmarks.
func (s *server) offer(r Request) error {
	for {
		batch, closeAt := s.batcher.CloseExpired(r.Arrival)
		if batch == nil {
			break
		}
		if err := s.dispatch(batch, closeAt); err != nil {
			return err
		}
	}
	if !s.admission.Admit(r.Arrival) {
		s.stats.Rejected++
		return nil
	}
	if batch, closeAt := s.batcher.Add(r); batch != nil {
		if err := s.dispatch(batch, closeAt); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes the open batch and summarizes the run.
func (s *server) finish() (*Stats, error) {
	if batch, closeAt := s.batcher.Flush(); batch != nil {
		if err := s.dispatch(batch, closeAt); err != nil {
			return nil, err
		}
	}
	stats := s.stats
	stats.Served = len(s.latencies)
	stats.summarizeLatencies(s.latencies)
	hits, _, evictions := s.cache.Stats()
	stats.CacheHits = hits
	stats.Evictions = evictions
	if stats.Served > 0 {
		stats.HitRate = float64(stats.Served-stats.Computed) / float64(stats.Served)
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(s.batchReqSum) / float64(stats.Batches)
	}
	if s.computedBatches > 0 {
		stats.MeanServiceSec /= float64(s.computedBatches)
	}
	stats.MakespanSec = s.lastCompletion
	if stats.MakespanSec > 0 {
		stats.ThroughputRPS = float64(stats.Served) / stats.MakespanSec
		stats.EdgesPerSec /= stats.MakespanSec
	}
	for _, w := range s.pool {
		stats.PerDevice = append(stats.PerDevice, w.stats)
	}
	pred, err := s.pool[0].pipe.Model().PredictServing(servingLoad(s.cfg, s.bindings, 1-stats.HitRate))
	if err != nil {
		return nil, err
	}
	stats.Prediction = pred
	return stats, nil
}

// Run drives the full open-loop stream through the serving stack and
// returns the measured statistics plus the analytic prediction for the same
// operating point.
func Run(cfg Config) (*Stats, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumRequests; i++ {
		if err := s.offer(s.stream.Next()); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// setKindCaps bounds each device kind's in-flight admission share on mixed
// pools: capacity split proportionally to the kind's worker count, so one
// slow kind's late completions cannot occupy the whole queue and starve the
// kinds that are keeping up. Single-kind pools keep the plain global bound.
func setKindCaps(a *AdmissionController, pool []*worker, queueCap int) {
	var counts [hw.KindCount]int
	kinds := 0
	for _, w := range pool {
		if counts[w.pipe.Device().Kind] == 0 {
			kinds++
		}
		counts[w.pipe.Device().Kind]++
	}
	if kinds < 2 {
		return
	}
	for kind, n := range counts {
		if n > 0 {
			a.SetKindCap(hw.Kind(kind), max(1, queueCap*n/len(pool)))
		}
	}
}

// servingLoad maps a Config onto the analytic model's load description.
func servingLoad(cfg Config, bindings []int, computeFrac float64) perfmodel.ServingLoad {
	return perfmodel.ServingLoad{
		RatePerSec:  cfg.RatePerSec,
		MaxBatch:    cfg.MaxBatch,
		WindowSec:   cfg.WindowSec,
		Workers:     len(bindings),
		Devices:     bindings,
		ComputeFrac: computeFrac,
		Accel:       len(cfg.Plat.Accels) > 0,
	}
}

// Predict evaluates the analytic serving model for cfg at the given compute
// fraction (1 − expected cache hit rate) without executing a run — the
// cheap way to size a deployment or anchor a load sweep on predicted
// capacity.
func Predict(cfg Config, computeFrac float64) (perfmodel.ServingPrediction, error) {
	bindings := workerBindings(cfg)
	p, err := core.NewInferencePipeline(core.InferConfig{
		Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
		Fanouts: cfg.Fanouts, Device: bindings[0],
		QuantizeTransfer: cfg.QuantizeTransfer,
	})
	if err != nil {
		return perfmodel.ServingPrediction{}, err
	}
	return p.Model().PredictServing(servingLoad(cfg, bindings, computeFrac))
}
