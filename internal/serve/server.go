// Package serve is the online-serving subsystem grown on the shared HyScale
// runtime: a request queue with admission control, a dynamic batcher
// (size-or-deadline), an LRU embedding cache keyed by vertex and model
// version, and a worker pool of core.InferencePipeline instances that answer
// batches with real sampled-fanout GNN inference while charging sample →
// gather → transfer → propagate on the same virtual PipelineClock and
// perfmodel price list as training. The run is an event-driven open-loop
// simulation (the BLIS-style shape): arrivals, batch deadlines, and batch
// completions are totally ordered in virtual time, so every run is
// deterministic for a given seed.
package serve

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Config assembles a serving run.
type Config struct {
	Plat hw.Platform
	Data *datagen.Dataset
	// Model is the trained model to serve (read-only during the run).
	Model   *gnn.Model
	Fanouts []int
	// ModelVersion tags cache entries; bump it after a weight push to
	// invalidate stale embeddings. Zero means version 1.
	ModelVersion int

	// Open-loop stream: NumRequests arrivals at RatePerSec with Zipf(θ)
	// vertex popularity (θ=0 is uniform).
	NumRequests  int
	RatePerSec   float64
	ZipfExponent float64

	// Serving knobs.
	MaxBatch  int     // dynamic batcher's size cap
	WindowSec float64 // dynamic batcher's max-wait deadline
	// Workers is the worker-pool size. With accelerators present, worker i
	// serves on accelerator i (capped at the platform's accelerator count);
	// without accelerators one CPU worker serves.
	Workers   int
	QueueCap  int // admission control: max outstanding requests (0 → 1024)
	CacheSize int // embedding-cache capacity in entries (0 disables)

	QuantizeTransfer bool // int8 feature transfer for accelerator workers
	Seed             uint64
}

// Run drives the full open-loop stream through the serving stack and
// returns the measured statistics plus the analytic prediction for the same
// operating point.
func Run(cfg Config) (*Stats, error) {
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("serve: non-positive request count %d", cfg.NumRequests)
	}
	if cfg.ModelVersion == 0 {
		cfg.ModelVersion = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	workers := resolveWorkers(cfg)
	rng := tensor.NewRNG(cfg.Seed)
	nAccel := len(cfg.Plat.Accels)
	pool := make([]*core.InferencePipeline, workers)
	for i := range pool {
		device := 0
		if nAccel > 0 {
			device = i + 1
		}
		p, err := core.NewInferencePipeline(core.InferConfig{
			Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
			Fanouts: cfg.Fanouts, Device: device,
			QuantizeTransfer: cfg.QuantizeTransfer,
			Seed:             rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		pool[i] = p
	}
	stream, err := NewRequestStream(cfg.Data.Graph.NumVertices, cfg.RatePerSec, cfg.ZipfExponent, rng.Split())
	if err != nil {
		return nil, err
	}
	batcher, err := NewDynamicBatcher(cfg.MaxBatch, cfg.WindowSec)
	if err != nil {
		return nil, err
	}
	admission, err := NewAdmissionController(cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	cache := NewEmbeddingCache(cfg.CacheSize)

	stats := &Stats{Offered: cfg.NumRequests}
	var latencies []float64
	var lastCompletion float64
	var batchReqSum, computedBatches int

	dispatch := func(batch []Request, closeAt float64) error {
		stats.Batches++
		batchReqSum += len(batch)
		completions := make([]float64, 0, len(batch))
		serveReq := func(r Request, done float64) {
			latencies = append(latencies, done-r.Arrival)
			completions = append(completions, done)
			if done > lastCompletion {
				lastCompletion = done
			}
		}
		// Cache pass: hits are answered when their entry is ready (an
		// in-flight entry behaves as a future); misses are coalesced per
		// vertex and sent to the pool.
		var order []int32
		waiting := make(map[int32][]Request)
		for _, r := range batch {
			key := CacheKey{Vertex: r.Vertex, Version: cfg.ModelVersion}
			if _, readyAt, ok := cache.Get(key); ok {
				serveReq(r, math.Max(closeAt, readyAt))
				continue
			}
			if _, dup := waiting[r.Vertex]; !dup {
				order = append(order, r.Vertex)
			}
			waiting[r.Vertex] = append(waiting[r.Vertex], r)
		}
		if len(order) > 0 {
			w := pool[0]
			for _, p := range pool[1:] {
				if p.AvailableAt() < w.AvailableAt() {
					w = p
				}
			}
			res, err := w.RunBatch(order)
			if err != nil {
				return err
			}
			done := w.CompleteAfter(closeAt, res.Stage)
			for i, v := range order {
				emb := append([]float32(nil), res.Logits.Row(i)...)
				cache.Put(CacheKey{Vertex: v, Version: cfg.ModelVersion}, emb, done)
				for _, r := range waiting[v] {
					serveReq(r, done)
					stats.Computed++
				}
			}
			st := res.Stage
			stats.MeanServiceSec += st.SampCPU + st.Load + st.Trans +
				math.Max(st.TrainCPU, st.TrainAcc) + 4*perfmodel.RuntimeBarrierSec
			computedBatches++
			stats.EdgesPerSec += res.Edges // normalized by makespan below
		}
		admission.Dispatched(completions)
		return nil
	}

	for i := 0; i < cfg.NumRequests; i++ {
		r := stream.Next()
		for {
			batch, closeAt := batcher.CloseExpired(r.Arrival)
			if batch == nil {
				break
			}
			if err := dispatch(batch, closeAt); err != nil {
				return nil, err
			}
		}
		if !admission.Admit(r.Arrival) {
			stats.Rejected++
			continue
		}
		if batch, closeAt := batcher.Add(r); batch != nil {
			if err := dispatch(batch, closeAt); err != nil {
				return nil, err
			}
		}
	}
	if batch, closeAt := batcher.Flush(); batch != nil {
		if err := dispatch(batch, closeAt); err != nil {
			return nil, err
		}
	}

	stats.Served = len(latencies)
	stats.summarizeLatencies(latencies)
	hits, _, evictions := cache.Stats()
	stats.CacheHits = hits
	stats.Evictions = evictions
	if stats.Served > 0 {
		stats.HitRate = float64(stats.Served-stats.Computed) / float64(stats.Served)
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(batchReqSum) / float64(stats.Batches)
	}
	if computedBatches > 0 {
		stats.MeanServiceSec /= float64(computedBatches)
	}
	stats.MakespanSec = lastCompletion
	if stats.MakespanSec > 0 {
		stats.ThroughputRPS = float64(stats.Served) / stats.MakespanSec
		stats.EdgesPerSec /= stats.MakespanSec
	}

	pred, err := pool[0].Model().PredictServing(servingLoad(cfg, workers, 1-stats.HitRate))
	if err != nil {
		return nil, err
	}
	stats.Prediction = pred
	return stats, nil
}

// resolveWorkers returns the effective worker-pool size: capped at the
// platform's accelerator count, or one CPU pipeline when there are none
// (CPU workers share the socket).
func resolveWorkers(cfg Config) int {
	nAccel := len(cfg.Plat.Accels)
	if nAccel == 0 {
		return 1
	}
	workers := cfg.Workers
	if workers <= 0 || workers > nAccel {
		workers = nAccel
	}
	return workers
}

// servingLoad maps a Config onto the analytic model's load description.
func servingLoad(cfg Config, workers int, computeFrac float64) perfmodel.ServingLoad {
	return perfmodel.ServingLoad{
		RatePerSec:  cfg.RatePerSec,
		MaxBatch:    cfg.MaxBatch,
		WindowSec:   cfg.WindowSec,
		Workers:     workers,
		ComputeFrac: computeFrac,
		Accel:       len(cfg.Plat.Accels) > 0,
	}
}

// Predict evaluates the analytic serving model for cfg at the given compute
// fraction (1 − expected cache hit rate) without executing a run — the
// cheap way to size a deployment or anchor a load sweep on predicted
// capacity.
func Predict(cfg Config, computeFrac float64) (perfmodel.ServingPrediction, error) {
	p, err := core.NewInferencePipeline(core.InferConfig{
		Plat: cfg.Plat, Data: cfg.Data, Model: cfg.Model,
		Fanouts: cfg.Fanouts, Device: min(1, len(cfg.Plat.Accels)),
		QuantizeTransfer: cfg.QuantizeTransfer,
	})
	if err != nil {
		return perfmodel.ServingPrediction{}, err
	}
	return p.Model().PredictServing(servingLoad(cfg, resolveWorkers(cfg), computeFrac))
}
