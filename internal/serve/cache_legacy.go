package serve

import (
	"container/list"
	"sync"
)

// cacheEntry is one resident embedding with the virtual time it becomes
// available (the completion time of the batch that computed it — a lookup
// that lands while the entry is still in flight waits on it, as a real
// serving tier waits on an in-flight future).
type cacheEntry struct {
	key     CacheKey
	emb     []float32
	readyAt float64
}

// EmbeddingCache is the legacy thread-safe LRU cache of final-layer
// embeddings: one mutex, a container/list, and a map of heap-allocated
// entries. The serving hot path now runs on ShardedCache; this
// implementation is retained as the semantic oracle — the 1-shard sharded
// cache must reproduce its hit/miss/eviction counters and resident set
// exactly on any request trace (see TestShardedCacheMatchesLegacyLRU).
// Capacity 0 disables caching (every Get misses, Put is a no-op).
//
// Ownership: Put RETAINS the caller's slice (both on insert and refresh);
// callers that keep mutating the buffer must pass a copy. ShardedCache
// instead copies into its arena, so this footgun is confined to the oracle.
type EmbeddingCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	idx       map[CacheKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// NewEmbeddingCache builds a cache holding up to capacity embeddings.
func NewEmbeddingCache(capacity int) *EmbeddingCache {
	if capacity < 0 {
		capacity = 0
	}
	return &EmbeddingCache{
		capacity: capacity,
		ll:       list.New(),
		idx:      make(map[CacheKey]*list.Element, capacity),
	}
}

// Get returns the cached embedding and its ready time, marking the entry
// most-recently-used on a hit.
func (c *EmbeddingCache) Get(k CacheKey) (emb []float32, readyAt float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.idx[k]
	if !found {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.emb, e.readyAt, true
}

// Put inserts (or refreshes) an embedding, evicting the least-recently-used
// entry when the cache is full. The slice is retained; callers must pass a
// copy if they keep mutating it.
func (c *EmbeddingCache) Put(k CacheKey, emb []float32, readyAt float64) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.idx[k]; found {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.emb = emb
		e.readyAt = readyAt
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.idx[k] = c.ll.PushFront(&cacheEntry{key: k, emb: emb, readyAt: readyAt})
}

// Peek reports residency and the ready time without touching LRU order or
// the hit/miss counters (equivalence tests compare resident sets this way).
func (c *EmbeddingCache) Peek(k CacheKey) (readyAt float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.idx[k]
	if !found {
		return 0, false
	}
	return el.Value.(*cacheEntry).readyAt, true
}

// Len returns the number of resident entries.
func (c *EmbeddingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit, miss, and eviction counts.
func (c *EmbeddingCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
