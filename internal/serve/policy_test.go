package serve

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/hw"
)

// heteroServeConfig shapes a run like the ext-serve-hetero bench: a mixed
// CPU+GPU+FPGA pool with the CPU peer, the small-batch split, and a hot
// Zipf stream — the config where routing decisions actually differ.
func heteroServeConfig(t *testing.T) Config {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.Plat = heteroPlatform(t, hw.GPU, hw.FPGA)
	cfg.Workers = 2
	cfg.CPUPeer = true
	cfg.SmallBatchCut = 4
	cfg.CacheSize = 256
	cfg.NumRequests = 2000
	cfg.RatePerSec = 120000
	cfg.QueueCap = 256
	return cfg
}

// Routing-policy regression: the earliest-completion plugin is the default,
// and naming it explicitly must be byte-identical to leaving Policy empty —
// the extraction of the router into a plugin changed nothing about what the
// default router does (its behavior itself is pinned against the
// least-loaded baseline by TestRoutedMatchesLegacyOnHomogeneousPool and by
// every pre-existing serve test).
func TestDefaultPolicyIsEarliest(t *testing.T) {
	cfg := heteroServeConfig(t)
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = "earliest-completion" // ParsePolicy synonym, too
	named, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, named) {
		t.Fatalf("default policy diverged from explicit earliest:\n%+v\n%+v", def, named)
	}
	if _, err := ParsePolicy("route-o-matic"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// The serve-policy matrix: across {1,4} cache shards × {earliest,affinity}
// policies at a fixed seed, every run must be (a) deterministic — two
// identical runs produce byte-identical Stats — and (b) shard-invariant:
// with a cache large enough that no shard ever evicts, residency is a pure
// membership property, so hit/miss sequences — and therefore the whole run
// — cannot depend on how keys were partitioned. (Under eviction pressure,
// per-shard LRU legitimately differs from global LRU; the 1-shard ≡ legacy
// property test pins that regime instead.)
func TestServePolicyMatrix(t *testing.T) {
	for _, policy := range []string{PolicyEarliest, PolicyAffinity} {
		var ref *Stats
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", policy, shards), func(t *testing.T) {
				cfg := heteroServeConfig(t)
				cfg.Policy = policy
				cfg.CacheShards = shards
				cfg.CacheSize = 8192 // > vertex count: no evictions possible
				a, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s/%d shards: same seed, different stats:\n%v\n%v", policy, shards, a, b)
				}
				if a.Evictions != 0 {
					t.Fatalf("eviction-free setup evicted %d times", a.Evictions)
				}
				if len(a.Routes) == 0 {
					t.Fatal("no computed batches routed")
				}
				if ref == nil {
					ref = a
				} else if !reflect.DeepEqual(ref, a) {
					t.Fatalf("%s: stats changed across shard counts:\n%v\n%v", policy, ref, a)
				}
			})
		}
	}
}

// Decision traces must be complete and honest: one row per computed batch,
// the chosen worker matching Stats.Routes, a counterfactual for every pool
// worker — and for the earliest policy, the choice must actually BE the
// argmin of the recorded counterfactuals (no non-saturated alternative was
// predicted to finish sooner), except for small batches steered to the peer.
func TestRouteTraceCounterfactuals(t *testing.T) {
	cfg := heteroServeConfig(t)
	cfg.RouteTrace = true
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.RouteTrace) != len(st.Routes) {
		t.Fatalf("%d trace rows for %d routed batches", len(st.RouteTrace), len(st.Routes))
	}
	pool := len(st.PerDevice)
	for i, d := range st.RouteTrace {
		if d.Batch != i || d.Worker != st.Routes[i] {
			t.Fatalf("row %d: batch %d worker %d, Routes says %d", i, d.Batch, d.Worker, st.Routes[i])
		}
		if d.Policy != PolicyEarliest || d.Computed <= 0 {
			t.Fatalf("row %d malformed: %+v", i, d)
		}
		if len(d.Alternatives) != pool {
			t.Fatalf("row %d: %d counterfactuals for a pool of %d", i, len(d.Alternatives), pool)
		}
		chosen := d.Alternatives[d.Worker]
		if chosen.PredictedDoneSec != d.PredictedDoneSec {
			t.Fatalf("row %d: chosen counterfactual %v != summary %v", i, chosen.PredictedDoneSec, d.PredictedDoneSec)
		}
		if d.SmallToPeer {
			if w := st.PerDevice[d.Worker]; w.Kind != hw.CPU {
				t.Fatalf("row %d: small batch landed on %v", i, w.Kind)
			}
			continue
		}
		if chosen.Saturated {
			continue // all-saturated fallback: argmin property doesn't apply
		}
		for _, a := range d.Alternatives {
			if !a.Saturated && a.PredictedDoneSec < d.PredictedDoneSec {
				t.Fatalf("row %d: earliest chose %v done %.6f but worker %d was predicted %.6f",
					i, d.Worker, d.PredictedDoneSec, a.Worker, a.PredictedDoneSec)
			}
		}
	}
	if s := st.TraceString(3); s == "" {
		t.Fatal("empty trace rendering")
	}
}

// The affinity policy's invariant, checked through its own traces: among
// non-saturated workers the chosen one always has the maximal recency-sketch
// score (ties broken by predicted completion), and with a recurring hot set
// the sketch must actually light up (some decision sees positive affinity).
// Cache off so hot vertices keep recurring as computed targets.
func TestAffinityPolicyFollowsSketch(t *testing.T) {
	cfg := heteroServeConfig(t)
	cfg.Policy = PolicyAffinity
	cfg.CacheSize = 0
	cfg.RouteTrace = true
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.RouteTrace) == 0 {
		t.Fatal("no decisions traced")
	}
	sawAffinity := false
	for i, d := range st.RouteTrace {
		if d.SmallToPeer {
			continue
		}
		chosen := d.Alternatives[d.Worker]
		if chosen.Affinity > 0 {
			sawAffinity = true
		}
		if chosen.Saturated {
			continue
		}
		for _, a := range d.Alternatives {
			if !a.Saturated && a.Affinity > chosen.Affinity {
				t.Fatalf("row %d: chose worker %d with affinity %d over worker %d with %d",
					i, d.Worker, chosen.Affinity, a.Worker, a.Affinity)
			}
		}
	}
	if !sawAffinity {
		t.Fatal("recency sketch never scored a batch — Observe feedback not wired")
	}
}
