package serve

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// scriptedUniform scripts the uniform draws the arrival samplers see — the
// only way to exercise the u == 0 draw a SplitMix64 stream essentially never
// produces.
type scriptedUniform struct {
	draws []float64
	i     int
}

func (s *scriptedUniform) Float64() float64 {
	if s.i >= len(s.draws) {
		return 0.5
	}
	v := s.draws[s.i]
	s.i++
	return v
}

// Regression for the dead degenerate-draw guard: Float64 spans [0, 1), so
// the draw to guard is u == 0 — which the old code passed straight through
// (-log(1-0) = 0, a zero gap that stalls the virtual clock) while guarding
// the unreachable u ≥ 1 end. The stream must redraw until the gap is
// positive.
func TestRequestStreamRedrawsZeroUniform(t *testing.T) {
	const rate = 1000.0
	s, err := NewRequestStream(10, rate, 0, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Two u == 0 draws, then 0.5 for the gap; 0.3 picks the vertex.
	s.rng = &scriptedUniform{draws: []float64{0, 0, 0.5, 0.3}}
	r := s.Next()
	if r.Arrival <= 0 {
		t.Fatalf("first arrival %v not strictly positive: the u == 0 draw was not redrawn", r.Arrival)
	}
	if want := -math.Log(0.5) / rate; r.Arrival != want {
		t.Fatalf("arrival = %v, want the gap from the first positive draw %v", r.Arrival, want)
	}
	if r.Class != ClassStandard {
		t.Fatalf("legacy stream class = %v, want standard", r.Class)
	}
	prev := r.Arrival
	for i := 0; i < 100; i++ {
		r = s.Next()
		if r.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", r.Arrival, prev)
		}
		prev = r.Arrival
	}
}

func TestParseWorkloadSpec(t *testing.T) {
	spec, err := ParseWorkloadSpec(
		"web,rate=4000,class=interactive,zipf=1.1,phases=0.3s@2x+0.3s@0.5x; " +
			"etl,rate=1500,dist=weibull,shape=0.7,class=bulk")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Cohorts) != 2 {
		t.Fatalf("parsed %d cohorts, want 2", len(spec.Cohorts))
	}
	web := spec.Cohorts[0]
	if web.Name != "web" || web.Class != ClassInteractive || web.Dist != DistPoisson ||
		web.RatePerSec != 4000 || web.Zipf != 1.1 {
		t.Fatalf("web cohort parsed wrong: %+v", web)
	}
	wantPhases := []RatePhase{{0.3, 2}, {0.3, 0.5}}
	if !reflect.DeepEqual(web.Phases, wantPhases) {
		t.Fatalf("web phases = %v, want %v", web.Phases, wantPhases)
	}
	etl := spec.Cohorts[1]
	if etl.Name != "etl" || etl.Class != ClassBulk || etl.Dist != DistWeibull || etl.Shape != 0.7 {
		t.Fatalf("etl cohort parsed wrong: %+v", etl)
	}
	for _, bad := range []string{
		"",                          // no cohorts
		"web",                       // missing rate
		"rate=100",                  // first field must be the name
		"web,rate=100,turbo=1",      // unknown key
		"web,rate=100,class=vip",    // unknown class
		"web,rate=100,phases=0.3s",  // phase without @mult
		"a,rate=100;a,rate=200",     // duplicate name
		"web,rate=100,shape=-1",     // negative shape
		"web,rate=100;etl,rate=-5",  // non-positive rate
		"web,rate=100,phases=1s@0x", // non-positive multiplier
	} {
		if _, err := ParseWorkloadSpec(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

// The merged stream is a pure function of (spec, numVertices, seed): two
// streams replay identically, the merge is globally non-decreasing, each
// cohort's own arrivals strictly increase, and every request carries its
// cohort's class and tag.
func TestWorkloadStreamDeterministicAndOrdered(t *testing.T) {
	spec, err := ParseWorkloadSpec(
		"web,rate=3000,class=interactive,zipf=1.1,phases=0.02s@2x+0.02s@0.5x;" +
			"api,rate=2000,dist=gamma,shape=0.5;" +
			"etl,rate=1000,dist=weibull,shape=0.7,class=bulk")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWorkloadStream(spec, 500, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkloadStream(spec, 500, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	cohortPrev := make([]float64, len(spec.Cohorts))
	for i := 0; i < 3000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("request %d diverged across same-seed streams: %+v vs %+v", i, ra, rb)
		}
		if ra.ID != i {
			t.Fatalf("request %d has ID %d", i, ra.ID)
		}
		if ra.Arrival < prev {
			t.Fatalf("merged arrivals decreased: %v after %v", ra.Arrival, prev)
		}
		prev = ra.Arrival
		c := int(ra.Cohort)
		if c >= len(spec.Cohorts) {
			t.Fatalf("request %d: cohort tag %d out of range", i, c)
		}
		if ra.Class != spec.Cohorts[c].Class {
			t.Fatalf("request %d: class %v does not match cohort %q's %v",
				i, ra.Class, spec.Cohorts[c].Name, spec.Cohorts[c].Class)
		}
		if ra.Arrival <= cohortPrev[c] {
			t.Fatalf("cohort %d arrivals not strictly increasing: %v after %v", c, ra.Arrival, cohortPrev[c])
		}
		cohortPrev[c] = ra.Arrival
		if ra.Vertex < 0 || ra.Vertex >= 500 {
			t.Fatalf("request %d: vertex %d out of range", i, ra.Vertex)
		}
	}
}

// All three inter-arrival distributions are normalized to the same mean gap
// 1/rate, so the distribution knob changes burstiness, not offered load.
func TestArrivalGapMeans(t *testing.T) {
	const rate, n = 100.0, 20000
	cases := []struct {
		name string
		gap  func(rng *tensor.RNG) float64
	}{
		{"poisson", func(rng *tensor.RNG) float64 { return expGap(rng, rate) }},
		{"gamma-0.5", func(rng *tensor.RNG) float64 { return gammaGap(rng, 0.5, rate) }},
		{"gamma-2", func(rng *tensor.RNG) float64 { return gammaGap(rng, 2, rate) }},
		{"weibull-0.7", func(rng *tensor.RNG) float64 { return weibullGap(rng, 0.7, rate) }},
		{"weibull-1.5", func(rng *tensor.RNG) float64 { return weibullGap(rng, 1.5, rate) }},
	}
	for _, c := range cases {
		rng := tensor.NewRNG(123)
		sum := 0.0
		for i := 0; i < n; i++ {
			g := c.gap(rng)
			if g <= 0 {
				t.Fatalf("%s: non-positive gap %v", c.name, g)
			}
			sum += g
		}
		mean := sum / n
		if want := 1 / rate; math.Abs(mean-want) > 0.05*want {
			t.Errorf("%s: mean gap %v, want %v ± 5%%", c.name, mean, want)
		}
	}
}

// The phase envelope modulates the arrival density: a cohort spending half
// its period at 4× the base rate and half at 0.2× must land far more
// arrivals in the hot half.
func TestDiurnalPhaseEnvelope(t *testing.T) {
	spec := &WorkloadSpec{Cohorts: []Cohort{{
		Name: "diurnal", RatePerSec: 2000, Shape: 1,
		Phases: []RatePhase{{0.5, 4}, {0.5, 0.2}},
	}}}
	w, err := NewWorkloadStream(spec, 100, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for i := 0; i < 6000; i++ {
		r, _ := w.Next()
		if math.Mod(r.Arrival, 1.0) < 0.5 {
			hot++
		} else {
			cold++
		}
	}
	if hot < 3*cold {
		t.Fatalf("phase envelope not applied: %d arrivals in the 4x half vs %d in the 0.2x half", hot, cold)
	}
}

func workloadConfig(t *testing.T) Config {
	t.Helper()
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	spec, err := ParseWorkloadSpec(
		"web,rate=1200,class=interactive,zipf=1.1,phases=0.05s@2x+0.05s@0.5x;" +
			"api,rate=1200,dist=gamma,shape=0.5;" +
			"etl,rate=1200,dist=weibull,shape=0.7,class=bulk,zipf=0.8")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = spec
	cfg.CacheSize = 256
	return cfg
}

// The serialized trace round-trips exactly: parse(serialize(t)) == t, and
// the encoding is deterministic byte for byte.
func TestTraceRoundTrip(t *testing.T) {
	cfg := workloadConfig(t)
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != cfg.NumRequests {
		t.Fatalf("trace has %d requests, want %d", len(tr.Requests), cfg.NumRequests)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("trace did not round-trip through serialization")
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized trace differs byte for byte")
	}
	for _, bad := range []string{
		"not a trace\n",
		traceHeader + " n=2\n0 1 0x1p-10 0 0\n",                 // count mismatch
		traceHeader + " n=2\n0 1 0x1p-8 0 0\n1 1 0x1p-10 0 0\n", // out of order
		traceHeader + " n=1\n0 1 0x1p-10 7 0\n",                 // class out of range
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("trace %q accepted, want error", bad)
		}
	}
}

// Replaying a recorded trace pins the arrival process completely: the
// workload run, a replay of its generated trace, and a second replay all
// produce byte-identical Stats.
func TestTraceReplayByteIdentical(t *testing.T) {
	cfg := workloadConfig(t)
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Workload = nil
	replayCfg.Replay = tr
	replay1, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay2, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay1, replay2) {
		t.Fatal("two replays of the same trace diverged")
	}
	if !reflect.DeepEqual(direct, replay1) {
		t.Fatal("replaying the generated trace diverged from the direct workload run")
	}
}

// End-to-end over three cohorts: the per-class ledger balances, all three
// classes are active, and the fairness index is well-formed and printed.
func TestWorkloadEndToEnd(t *testing.T) {
	cfg := workloadConfig(t)
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sumOffered := 0
	for c := range stats.PerClass {
		cs := stats.PerClass[c]
		sumOffered += cs.Offered
		if cs.Served+cs.Rejected != cs.Offered {
			t.Errorf("class %v ledger: served %d + rejected %d != offered %d",
				SLOClass(c), cs.Served, cs.Rejected, cs.Offered)
		}
		if cs.Served > 0 && (cs.P50Sec <= 0 || cs.P99Sec < cs.P50Sec || cs.MaxSec < cs.P99Sec) {
			t.Errorf("class %v quantiles inconsistent: p50 %v p99 %v max %v",
				SLOClass(c), cs.P50Sec, cs.P99Sec, cs.MaxSec)
		}
	}
	if sumOffered != stats.Offered {
		t.Errorf("per-class offered sums to %d, global offered %d", sumOffered, stats.Offered)
	}
	if stats.ActiveClasses != 3 {
		t.Errorf("active classes = %d, want 3", stats.ActiveClasses)
	}
	if stats.JainFairness <= 0 || stats.JainFairness > 1 {
		t.Errorf("Jain fairness %v outside (0, 1]", stats.JainFairness)
	}
	out := stats.String()
	if !strings.Contains(out, "interactive") || !strings.Contains(out, "fairness") {
		t.Errorf("Stats.String missing the per-class report:\n%s", out)
	}
}

// Per-class token buckets meter admission without consuming queue capacity
// on rejection or tokens on a global reject.
func TestClassTokenBucket(t *testing.T) {
	a, err := NewAdmissionController(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetClassRate(ClassBulk, 10, 2); err != nil {
		t.Fatal(err)
	}
	if a.SetClassRate(ClassBulk, -1, 1) == nil || a.SetClassRate(NumClasses, 10, 1) == nil {
		t.Fatal("invalid class rate accepted")
	}
	// Burst 2: two immediate admits, then the bucket is dry.
	if !a.AdmitClass(0, ClassBulk) || !a.AdmitClass(0, ClassBulk) {
		t.Fatal("burst tokens not granted")
	}
	if a.AdmitClass(0, ClassBulk) {
		t.Fatal("dry bucket admitted")
	}
	if a.Outstanding() != 2 {
		t.Fatalf("bucket rejection consumed queue capacity: outstanding %d, want 2", a.Outstanding())
	}
	// Rate 10/s: 0.1s refills one token.
	if !a.AdmitClass(0.1, ClassBulk) {
		t.Fatal("refilled bucket rejected")
	}
	// Unmetered classes pass straight to the global bound.
	if !a.AdmitClass(0.1, ClassInteractive) {
		t.Fatal("unmetered class rejected")
	}

	// A global reject must not burn a token: with capacity 1 and a
	// near-zero refill rate, the token survives the global reject and is
	// still there once capacity frees up.
	b, err := NewAdmissionController(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetClassRate(ClassBulk, 1e-9, 2); err != nil {
		t.Fatal(err)
	}
	if !b.AdmitClass(0, ClassBulk) {
		t.Fatal("first admit rejected")
	}
	if b.AdmitClass(0, ClassBulk) {
		t.Fatal("admitted past global capacity")
	}
	b.Dispatched([]float64{0.1}) // completes at t=0.1, freeing capacity
	if !b.AdmitClass(0.2, ClassBulk) {
		t.Fatal("token was consumed by the global reject")
	}
}

// Class rates end to end: metering the bulk cohort sheds bulk traffic at a
// far higher rate than the unmetered interactive cohort.
func TestClassRatesEndToEnd(t *testing.T) {
	cfg := workloadConfig(t)
	cfg.ClassRates = []ClassRateLimit{{Class: ClassBulk, RatePerSec: 200, Burst: 4}}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bulk := stats.PerClass[ClassBulk]
	inter := stats.PerClass[ClassInteractive]
	if bulk.Rejected == 0 {
		t.Fatal("metered bulk class was never rejected")
	}
	rejRate := func(cs ClassStats) float64 { return float64(cs.Rejected) / float64(cs.Offered) }
	if rejRate(bulk) <= rejRate(inter) {
		t.Fatalf("bulk rejection rate %.3f not above interactive's %.3f", rejRate(bulk), rejRate(inter))
	}
}
