package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// SLOClass identifies a request's service-level class. Lower values are more
// latency-sensitive: class 0 is interactive traffic, class 2 is bulk work
// that tolerates the full batching window. The class count is fixed so
// per-class state lives in dense arrays on the admission and stats hot
// paths.
type SLOClass uint8

const (
	ClassInteractive SLOClass = iota
	ClassStandard
	ClassBulk

	// NumClasses sizes dense per-class arrays.
	NumClasses = 3
)

// String names the class.
func (c SLOClass) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassStandard:
		return "standard"
	case ClassBulk:
		return "bulk"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass resolves a class name.
func ParseClass(name string) (SLOClass, error) {
	switch name {
	case "interactive":
		return ClassInteractive, nil
	case "standard":
		return ClassStandard, nil
	case "bulk":
		return ClassBulk, nil
	}
	return 0, fmt.Errorf("serve: unknown SLO class %q (want interactive, standard, or bulk)", name)
}

// ArrivalDist names a cohort's inter-arrival distribution. All three are
// parameterized to a common mean gap of 1/rate, so the distribution knob
// changes burstiness without changing offered load.
type ArrivalDist uint8

const (
	// DistPoisson draws exponential gaps (memoryless arrivals).
	DistPoisson ArrivalDist = iota
	// DistGamma draws Gamma(shape, 1/(shape·rate)) gaps: shape < 1 is
	// burstier than Poisson (CV = 1/√shape), shape > 1 smoother.
	DistGamma
	// DistWeibull draws Weibull gaps with the given shape: shape < 1 has a
	// heavy tail of long silences punctuated by clustered arrivals.
	DistWeibull
)

// String names the distribution.
func (d ArrivalDist) String() string {
	switch d {
	case DistPoisson:
		return "poisson"
	case DistGamma:
		return "gamma"
	case DistWeibull:
		return "weibull"
	}
	return fmt.Sprintf("dist(%d)", uint8(d))
}

// ParseDist resolves a distribution name.
func ParseDist(name string) (ArrivalDist, error) {
	switch name {
	case "poisson":
		return DistPoisson, nil
	case "gamma":
		return DistGamma, nil
	case "weibull":
		return DistWeibull, nil
	}
	return 0, fmt.Errorf("serve: unknown arrival distribution %q (want poisson, gamma, or weibull)", name)
}

// RatePhase is one segment of a cohort's diurnal rate envelope: for
// DurationSec of virtual time the cohort's base rate is scaled by Mult.
type RatePhase struct {
	DurationSec float64
	Mult        float64
}

// Cohort is one named client population: its own arrival process, vertex
// popularity skew, and SLO class. A workload is a set of cohorts merged
// into one arrival stream.
type Cohort struct {
	Name  string
	Class SLOClass
	Dist  ArrivalDist
	// Shape parameterizes Gamma/Weibull inter-arrivals (ignored by Poisson);
	// 0 defaults to 1.
	Shape float64
	// RatePerSec is the cohort's base offered rate; Phases scale it.
	RatePerSec float64
	// Zipf is the cohort's vertex-popularity exponent (0 = uniform).
	Zipf float64
	// Phases is the cohort's periodic rate envelope, cycled for the whole
	// run; empty means a constant RatePerSec.
	Phases []RatePhase
}

// WorkloadSpec assembles a multi-cohort workload.
type WorkloadSpec struct {
	Cohorts []Cohort
}

// Validate checks the spec.
func (w *WorkloadSpec) Validate() error {
	if len(w.Cohorts) == 0 {
		return fmt.Errorf("serve: workload spec has no cohorts")
	}
	if len(w.Cohorts) > 256 {
		return fmt.Errorf("serve: %d cohorts exceed the uint8 cohort tag", len(w.Cohorts))
	}
	seen := map[string]bool{}
	for i, c := range w.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("serve: cohort %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("serve: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.RatePerSec <= 0 {
			return fmt.Errorf("serve: cohort %q: non-positive rate %v", c.Name, c.RatePerSec)
		}
		if c.Shape < 0 {
			return fmt.Errorf("serve: cohort %q: negative shape %v", c.Name, c.Shape)
		}
		if c.Zipf < 0 {
			return fmt.Errorf("serve: cohort %q: negative Zipf exponent %v", c.Name, c.Zipf)
		}
		if c.Class >= NumClasses {
			return fmt.Errorf("serve: cohort %q: class %d out of range", c.Name, c.Class)
		}
		for j, p := range c.Phases {
			if p.DurationSec <= 0 {
				return fmt.Errorf("serve: cohort %q phase %d: non-positive duration %v", c.Name, j, p.DurationSec)
			}
			if p.Mult <= 0 {
				return fmt.Errorf("serve: cohort %q phase %d: non-positive rate multiplier %v", c.Name, j, p.Mult)
			}
		}
	}
	return nil
}

// ParseWorkloadSpec parses the compact cohort syntax used by the
// -serve-workload flag:
//
//	cohort[;cohort...]
//	cohort := name[,key=value...]
//	keys:   class=interactive|standard|bulk   (default standard)
//	        dist=poisson|gamma|weibull        (default poisson)
//	        rate=<req/s>                      (required)
//	        shape=<k>                         (Gamma/Weibull shape, default 1)
//	        zipf=<θ>                          (vertex popularity, default 0)
//	        phases=<dur>s@<mult>x[+...]       (diurnal envelope, cycled)
//
// Example: "web,rate=4000,class=interactive,zipf=1.1,phases=0.3s@2x+0.3s@0.5x;
// etl,rate=1500,dist=weibull,shape=0.7,class=bulk".
func ParseWorkloadSpec(s string) (*WorkloadSpec, error) {
	spec := &WorkloadSpec{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		c := Cohort{Name: strings.TrimSpace(fields[0]), Class: ClassStandard, Dist: DistPoisson, Shape: 1}
		if strings.Contains(c.Name, "=") {
			return nil, fmt.Errorf("serve: cohort %q: first field must be the name", part)
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("serve: cohort %q: field %q is not key=value", c.Name, f)
			}
			var err error
			switch key {
			case "class":
				c.Class, err = ParseClass(val)
			case "dist":
				c.Dist, err = ParseDist(val)
			case "rate":
				c.RatePerSec, err = strconv.ParseFloat(val, 64)
			case "shape":
				c.Shape, err = strconv.ParseFloat(val, 64)
			case "zipf":
				c.Zipf, err = strconv.ParseFloat(val, 64)
			case "phases":
				c.Phases, err = parsePhases(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("serve: cohort %q: %v", c.Name, err)
			}
		}
		spec.Cohorts = append(spec.Cohorts, c)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parsePhases parses "<dur>s@<mult>x[+...]" (the unit suffixes are optional).
func parsePhases(s string) ([]RatePhase, error) {
	var phases []RatePhase
	for _, part := range strings.Split(s, "+") {
		durS, multS, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("phase %q is not dur@mult", part)
		}
		dur, err := strconv.ParseFloat(strings.TrimSuffix(durS, "s"), 64)
		if err != nil {
			return nil, fmt.Errorf("phase duration %q: %v", durS, err)
		}
		mult, err := strconv.ParseFloat(strings.TrimSuffix(multS, "x"), 64)
		if err != nil {
			return nil, fmt.Errorf("phase multiplier %q: %v", multS, err)
		}
		phases = append(phases, RatePhase{DurationSec: dur, Mult: mult})
	}
	return phases, nil
}

// uniformSource is the uniform-draw dependency of the arrival samplers —
// *tensor.RNG in production; the degenerate-draw regression tests script it.
type uniformSource interface{ Float64() float64 }

// positiveUniform draws from (0, 1). Float64 spans [0, 1): the u == 0 draw
// is legal there but would map to a zero exponential gap (-log(1-0) = 0),
// stalling the virtual clock and violating the strictly-ordered-arrivals
// contract, so it is redrawn. (The u → 1 end needs no guard — Float64 never
// returns 1.)
func positiveUniform(rng uniformSource) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return u
}

// expGap draws an exponential inter-arrival gap with mean 1/rate.
func expGap(rng uniformSource, rate float64) float64 {
	return -math.Log(1-positiveUniform(rng)) / rate
}

// gammaGap draws a Gamma-distributed gap with the given shape and mean
// 1/rate (scale 1/(shape·rate)).
func gammaGap(rng *tensor.RNG, shape, rate float64) float64 {
	return gammaSample(rng, shape) / (shape * rate)
}

// gammaSample draws Gamma(shape, 1) by Marsaglia–Tsang squeeze-rejection;
// shape < 1 uses the boost Gamma(k) = Gamma(k+1)·U^(1/k). Deterministic
// given the RNG stream — rejection just consumes more draws.
func gammaSample(rng *tensor.RNG, shape float64) float64 {
	if shape < 1 {
		u := positiveUniform(rng)
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := positiveUniform(rng)
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullGap draws a Weibull-distributed gap with the given shape and mean
// 1/rate (scale 1/(rate·Γ(1+1/shape)), by inversion).
func weibullGap(rng *tensor.RNG, shape, rate float64) float64 {
	scale := 1 / (rate * math.Gamma(1+1/shape))
	return scale * math.Pow(-math.Log(1-positiveUniform(rng)), 1/shape)
}

// cohortStream generates one cohort's arrivals on its own split RNG stream,
// holding the next arrival peeked for the merge.
type cohortStream struct {
	c      Cohort
	rng    *tensor.RNG
	cdf    []float64 // cohort's Zipf popularity CDF
	period float64   // Σ phase durations (0 = constant rate)
	nextAt float64
	nextV  int32
}

// rateAt returns the cohort's offered rate at virtual time t under its
// phase envelope.
func (cs *cohortStream) rateAt(t float64) float64 {
	if cs.period == 0 {
		return cs.c.RatePerSec
	}
	tm := math.Mod(t, cs.period)
	for _, p := range cs.c.Phases {
		if tm < p.DurationSec {
			return cs.c.RatePerSec * p.Mult
		}
		tm -= p.DurationSec
	}
	return cs.c.RatePerSec * cs.c.Phases[len(cs.c.Phases)-1].Mult
}

// advance draws the cohort's next arrival. The gap is sampled at the rate
// in force when the previous arrival landed — a piecewise-stationary
// approximation of the non-homogeneous process that keeps sampling O(1)
// and exactly reproducible.
func (cs *cohortStream) advance() {
	rate := cs.rateAt(cs.nextAt)
	var gap float64
	switch cs.c.Dist {
	case DistGamma:
		gap = gammaGap(cs.rng, cs.c.Shape, rate)
	case DistWeibull:
		gap = weibullGap(cs.rng, cs.c.Shape, rate)
	default:
		gap = expGap(cs.rng, rate)
	}
	cs.nextAt += gap
	v := sort.SearchFloat64s(cs.cdf, cs.rng.Float64())
	if v >= len(cs.cdf) {
		v = len(cs.cdf) - 1
	}
	cs.nextV = int32(v)
}

// WorkloadStream merges the cohorts of a WorkloadSpec into one deterministic
// arrival stream: each cohort samples on its own split RNG stream, and the
// merge always yields the earliest pending arrival (ties broken by cohort
// index), so the sequence is a pure function of (spec, numVertices, seed).
type WorkloadStream struct {
	cohorts []cohortStream
	nextID  int
}

// NewWorkloadStream builds the merged stream over numVertices vertices. The
// rng is consumed to split one independent stream per cohort.
func NewWorkloadStream(spec *WorkloadSpec, numVertices int, rng *tensor.RNG) (*WorkloadStream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if numVertices <= 0 {
		return nil, fmt.Errorf("serve: non-positive vertex count %d", numVertices)
	}
	w := &WorkloadStream{cohorts: make([]cohortStream, len(spec.Cohorts))}
	for i, c := range spec.Cohorts {
		if c.Shape == 0 {
			c.Shape = 1
		}
		cs := &w.cohorts[i]
		cs.c = c
		cs.rng = rng.Split()
		cs.cdf = zipfCDF(numVertices, c.Zipf)
		for _, p := range c.Phases {
			cs.period += p.DurationSec
		}
		cs.advance()
	}
	return w, nil
}

// Next returns the next merged arrival; the bool is always true (the
// generated stream is unbounded).
func (w *WorkloadStream) Next() (Request, bool) {
	best := 0
	for i := 1; i < len(w.cohorts); i++ {
		if w.cohorts[i].nextAt < w.cohorts[best].nextAt {
			best = i
		}
	}
	cs := &w.cohorts[best]
	r := Request{
		ID:      w.nextID,
		Vertex:  cs.nextV,
		Arrival: cs.nextAt,
		Class:   cs.c.Class,
		Cohort:  uint8(best),
	}
	w.nextID++
	cs.advance()
	return r, true
}

// zipfCDF builds the cumulative Zipf(θ) popularity over vertex IDs
// (θ = 0 degenerates to uniform).
func zipfCDF(numVertices int, exponent float64) []float64 {
	cdf := make([]float64, numVertices)
	sum := 0.0
	for v := 0; v < numVertices; v++ {
		sum += 1 / math.Pow(float64(v+1), exponent)
		cdf[v] = sum
	}
	for v := range cdf {
		cdf[v] /= sum
	}
	return cdf
}
