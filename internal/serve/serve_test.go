package serve

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// testSetup materializes a small dataset and an (untrained) model — serving
// cost does not depend on the weights.
func testSetup(t *testing.T) (*datagen.Dataset, *gnn.Model) {
	t.Helper()
	rng := tensor.NewRNG(1)
	spec := datagen.Spec{Name: "serve-test", NumVertices: 1500, NumEdges: 12000,
		FeatDims: []int{20, 16, 5}, TrainNodes: 750}
	ds, err := datagen.Materialize(spec, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gnn.NewModel(gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func baseConfig(ds *datagen.Dataset, m *gnn.Model) Config {
	return Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: m,
		Fanouts: []int{8, 4}, NumRequests: 1200, RatePerSec: 2000,
		ZipfExponent: 1.1, MaxBatch: 32, WindowSec: 0.5e-3, Workers: 2,
		QueueCap: 512, CacheSize: 0, Seed: 7,
	}
}

func TestServeEndToEnd(t *testing.T) {
	ds, m := testSetup(t)
	st, err := Run(baseConfig(ds, m))
	if err != nil {
		t.Fatal(err)
	}
	if st.Served+st.Rejected != st.Offered {
		t.Fatalf("accounting: %d served + %d rejected != %d offered", st.Served, st.Rejected, st.Offered)
	}
	if st.Served == 0 || st.Batches == 0 {
		t.Fatal("nothing served")
	}
	if st.P50Sec <= 0 || st.P50Sec > st.P99Sec || st.P99Sec > st.MaxSec {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", st.P50Sec, st.P99Sec, st.MaxSec)
	}
	if st.ThroughputRPS <= 0 || st.MakespanSec <= 0 {
		t.Fatalf("throughput %v over %v", st.ThroughputRPS, st.MakespanSec)
	}
	if st.MeanBatch < 1 || st.MeanBatch > 32 {
		t.Fatalf("mean batch %v outside [1,32]", st.MeanBatch)
	}
	if st.HitRate != 0 || st.CacheHits != 0 {
		t.Fatal("cache hits without a cache")
	}
}

func TestServeDeterministic(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.CacheSize = 256
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.P50Sec != b.P50Sec || a.P99Sec != b.P99Sec ||
		a.ThroughputRPS != b.ThroughputRPS || a.HitRate != b.HitRate {
		t.Fatalf("same seed, different runs:\n%v\n%v", a, b)
	}
}

// The executed per-batch pipeline time must land within the analytic
// serving model's stated tolerance band (±35%).
func TestServePredictionTolerance(t *testing.T) {
	ds, m := testSetup(t)
	for _, cacheSize := range []int{0, 512} {
		cfg := baseConfig(ds, m)
		cfg.CacheSize = cacheSize
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(st.MeanServiceSec-st.Prediction.ServiceSec) / st.MeanServiceSec
		if relErr > 0.35 {
			t.Fatalf("cache=%d: predicted service %.4gs vs executed %.4gs (%.0f%% off)",
				cacheSize, st.Prediction.ServiceSec, st.MeanServiceSec, 100*relErr)
		}
	}
}

// A wider batch window must raise median latency (requests wait longer for
// their batch to close) at fixed, non-saturating load.
func TestServeLatencyMonotoneInWindow(t *testing.T) {
	ds, m := testSetup(t)
	var prev float64
	for i, win := range []float64{0, 1e-3, 4e-3} {
		cfg := baseConfig(ds, m)
		cfg.WindowSec = win
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && st.P50Sec <= prev {
			t.Fatalf("window %v: p50 %v not above previous %v", win, st.P50Sec, prev)
		}
		prev = st.P50Sec
	}
}

// A larger embedding cache must raise the hit rate and, under overload,
// throughput; the p99 tail must not grow.
func TestServeCacheMonotone(t *testing.T) {
	ds, m := testSetup(t)
	probe, err := Predict(baseConfig(ds, m), 1)
	if err != nil {
		t.Fatal(err)
	}
	overload := 3 * probe.CapacityRPS
	var prevHit, prevRPS float64
	prevP99 := math.Inf(1)
	for i, cacheSize := range []int{0, 256, 1500} {
		cfg := baseConfig(ds, m)
		cfg.RatePerSec = overload
		cfg.WindowSec = 0 // no batching help: the cache is the only relief
		cfg.CacheSize = cacheSize
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if st.HitRate <= prevHit {
				t.Fatalf("cache %d: hit rate %v not above %v", cacheSize, st.HitRate, prevHit)
			}
			if st.ThroughputRPS < prevRPS {
				t.Fatalf("cache %d: throughput %v regressed below %v", cacheSize, st.ThroughputRPS, prevRPS)
			}
			if st.P99Sec > prevP99*1.01 {
				t.Fatalf("cache %d: p99 %v grew above %v", cacheSize, st.P99Sec, prevP99)
			}
		}
		prevHit, prevRPS, prevP99 = st.HitRate, st.ThroughputRPS, st.P99Sec
	}
}

// Overload with a tiny queue must shed load through admission control
// rather than growing latency unboundedly.
func TestServeAdmissionShedsOverload(t *testing.T) {
	ds, m := testSetup(t)
	probe, err := Predict(baseConfig(ds, m), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ds, m)
	cfg.RatePerSec = 4 * probe.CapacityRPS
	cfg.WindowSec = 0
	cfg.QueueCap = 64
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("no rejections at 4x capacity with a 64-deep queue")
	}
	if st.Served+st.Rejected != st.Offered {
		t.Fatal("rejected requests leaked")
	}
	// Accepted requests ride a bounded queue: worst case ≈ queue depth ×
	// per-batch service, far below the unbounded-backlog alternative.
	if st.MaxSec > float64(cfg.QueueCap)*2*st.MeanServiceSec {
		t.Fatalf("max latency %v despite bounded queue", st.MaxSec)
	}
}

func TestServeConfigValidation(t *testing.T) {
	ds, m := testSetup(t)
	bad := func(mutate func(*Config)) Config {
		cfg := baseConfig(ds, m)
		mutate(&cfg)
		return cfg
	}
	cases := map[string]Config{
		"requests": bad(func(c *Config) { c.NumRequests = 0 }),
		"rate":     bad(func(c *Config) { c.RatePerSec = 0 }),
		"batch":    bad(func(c *Config) { c.MaxBatch = 0 }),
		"window":   bad(func(c *Config) { c.WindowSec = -1 }),
		"zipf":     bad(func(c *Config) { c.ZipfExponent = -1 }),
		"fanouts":  bad(func(c *Config) { c.Fanouts = []int{5} }),
		"model":    bad(func(c *Config) { c.Model = nil }),
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
