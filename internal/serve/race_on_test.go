//go:build race

package serve

// raceEnabled skips the exact allocation gates under the race detector,
// whose instrumentation allocates shadow state on paths that are
// allocation-free in a normal build, making steady-state counts
// nondeterministic (same convention as internal/core and internal/gnn).
const raceEnabled = true
