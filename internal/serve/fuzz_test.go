package serve

import (
	"testing"

	"repro/internal/tensor"
)

// driveBatcher replays a random Add/CloseExpired/Flush schedule against a
// DynamicBatcher under the package contract (arrivals non-decreasing,
// CloseExpired drained before every Add) and checks the batching invariants:
//
//   - conservation: every added request comes back in exactly one batch,
//     never dropped, never duplicated;
//   - the size cap: no batch exceeds maxBatch;
//   - deadline monotonicity: close times never move backwards;
//   - close-time sanity: a batch never closes before its first request.
func driveBatcher(t *testing.T, maxBatch int, window float64, ops []byte) {
	t.Helper()
	b, err := NewDynamicBatcher(maxBatch, window)
	if err != nil {
		t.Skip("invalid knobs")
	}
	seen := make(map[int]int)
	added := 0
	now := 0.0
	lastClose := -1.0
	pending := 0
	consume := func(batch []Request, closeAt float64, how string) {
		if batch == nil {
			return
		}
		if len(batch) == 0 {
			t.Fatalf("%s: closed an empty batch", how)
		}
		if len(batch) > maxBatch {
			t.Fatalf("%s: batch of %d exceeds cap %d", how, len(batch), maxBatch)
		}
		if closeAt < lastClose {
			t.Fatalf("%s: close time %v before previous %v — deadlines not monotone",
				how, closeAt, lastClose)
		}
		if closeAt < batch[0].Arrival {
			t.Fatalf("%s: batch closed at %v before its first arrival %v",
				how, closeAt, batch[0].Arrival)
		}
		lastClose = closeAt
		pending -= len(batch)
		for _, r := range batch {
			seen[r.ID]++
		}
	}
	for _, op := range ops {
		switch op % 3 {
		case 0, 1: // advance time and add (the contract: drain first)
			now += float64(op%7) * window / 5
			for {
				batch, closeAt := b.CloseExpired(now)
				if batch == nil {
					break
				}
				consume(batch, closeAt, "expire")
			}
			batch, closeAt := b.Add(Request{ID: added, Arrival: now})
			added++
			pending++
			consume(batch, closeAt, "size")
		case 2: // deadline sweep without adding
			now += window
			for {
				batch, closeAt := b.CloseExpired(now)
				if batch == nil {
					break
				}
				consume(batch, closeAt, "expire")
			}
		}
		if b.Pending() != pending {
			t.Fatalf("pending drifted: batcher says %d, ledger says %d", b.Pending(), pending)
		}
	}
	batch, closeAt := b.Flush()
	consume(batch, closeAt, "flush")
	if b.Pending() != 0 || pending != 0 {
		t.Fatalf("flush left %d requests pending", b.Pending())
	}
	if len(seen) != added {
		t.Fatalf("lost requests: added %d, got back %d", added, len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d emitted %d times", id, n)
		}
	}
}

// FuzzDynamicBatcher feeds arbitrary op schedules to driveBatcher. The seed
// corpus covers the regimes the serving loop exercises: size-closed,
// deadline-closed, zero-window, and interleaved sweeps.
func FuzzDynamicBatcher(f *testing.F) {
	f.Add(uint8(4), float64(1e-3), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(1), float64(0), []byte{0, 1, 2, 0, 1, 2})
	f.Add(uint8(32), float64(5e-3), []byte{2, 2, 0, 0, 2, 1, 1, 1, 2})
	f.Add(uint8(3), float64(1e-6), []byte{1, 0, 2, 1, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, maxBatch uint8, window float64, ops []byte) {
		if maxBatch == 0 || window < 0 || window > 10 || len(ops) > 4096 {
			t.Skip()
		}
		driveBatcher(t, int(maxBatch), window, ops)
	})
}

// TestBatcherInvariantsRandomized runs the same invariant harness over a
// deterministic spread of knobs and schedules on every plain `go test` (the
// fuzz engine only replays its corpus there).
func TestBatcherInvariantsRandomized(t *testing.T) {
	rng := tensor.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		maxBatch := 1 + rng.Intn(40)
		window := float64(rng.Intn(4)) * 0.5e-3 // includes zero-window
		ops := make([]byte, 1+rng.Intn(300))
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		driveBatcher(t, maxBatch, window, ops)
	}
}
