package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/gnn"
	"repro/internal/hw"
)

// hexf renders a float64 exactly (hex mantissa), so two signatures match
// only when every bit matches.
func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// serveSig renders the bit-exact signature of a run the byte-identity golden
// pins: every counter, every latency quantile, every per-class and
// per-device number, and the full routing sequence.
func serveSig(st *Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered=%d served=%d rejected=%d batches=%d computed=%d hits=%d evict=%d\n",
		st.Offered, st.Served, st.Rejected, st.Batches, st.Computed, st.CacheHits, st.Evictions)
	fmt.Fprintf(&b, "lat mean=%s p50=%s p95=%s p99=%s max=%s\n",
		hexf(st.MeanSec), hexf(st.P50Sec), hexf(st.P95Sec), hexf(st.P99Sec), hexf(st.MaxSec))
	fmt.Fprintf(&b, "makespan=%s rps=%s eps=%s meanbatch=%s svc=%s jain=%s\n",
		hexf(st.MakespanSec), hexf(st.ThroughputRPS), hexf(st.EdgesPerSec),
		hexf(st.MeanBatch), hexf(st.MeanServiceSec), hexf(st.JainFairness))
	for c := range st.PerClass {
		cs := &st.PerClass[c]
		if cs.Offered == 0 {
			continue
		}
		fmt.Fprintf(&b, "class%d off=%d srv=%d rej=%d mean=%s p50=%s p99=%s max=%s\n",
			c, cs.Offered, cs.Served, cs.Rejected,
			hexf(cs.MeanSec), hexf(cs.P50Sec), hexf(cs.P99Sec), hexf(cs.MaxSec))
	}
	for i, d := range st.PerDevice {
		fmt.Fprintf(&b, "dev%d kind=%s batches=%d req=%d busy=%s\n",
			i, d.Kind, d.Batches, d.Requests, hexf(d.BusySec))
	}
	b.WriteString("routes=")
	for _, r := range st.Routes {
		fmt.Fprintf(&b, "%d", r)
	}
	b.WriteString("\n")
	return b.String()
}

// goldenServeSig is serveSig of the golden config captured from the tree
// BEFORE the fault machinery existed (commit 0ffc7c3): a mixed FPGA+CPU-peer
// pool under the three-cohort workload with class metering, priority
// formation, cache evictions, and admission rejects all active. Any
// fault-free arithmetic drift — a changed multiply, a reordered comparison,
// a new code path taken with an empty schedule — shows up here as a bit
// difference.
const goldenServeSig = "offered=3000 served=2830 rejected=170 batches=490 computed=790 hits=2040 evict=276\n" +
	"lat mean=0x1.b8d0af58a9347p-12 p50=0x1.13ba5d174e9p-12 p95=0x1.0896b2c5154b8p-10 p99=0x1.5388241f315ep-10 max=0x1.9930da2b7a58p-10\n" +
	"makespan=0x1.fde59e65bc067p-03 rps=0x1.633582f141112p+13 eps=0x1.e61722f997e36p+15 meanbatch=0x1.71a1f58d0fac7p+02 svc=0x1.287b5aef4393fp-11 jain=0x1.f970260df9ad2p-01\n" +
	"class0 off=943 srv=943 rej=0 mean=0x1.3b2c0e2bba397p-12 p50=0x1.0624dd2f1aap-12 p99=0x1.b3613a66bf22p-11 max=0x1.06dde5763608p-10\n" +
	"class1 off=1297 srv=1297 rej=0 mean=0x1.d661c273d74f9p-12 p50=0x1.8d214a50d1cp-12 p99=0x1.64dffee2351p-10 max=0x1.9884b1fe26a8p-10\n" +
	"class2 off=760 srv=590 rej=170 mean=0x1.20513869781e1p-11 p50=0x1.28b7ffa4abf8p-11 p99=0x1.6e62f61f069cp-10 max=0x1.9930da2b7a58p-10\n" +
	"dev0 kind=FPGA batches=5 req=17 busy=0x1.ed24a750fc3c4p-09\n" +
	"dev1 kind=FPGA batches=5 req=16 busy=0x1.ecf8b8ae7bf1dp-09\n" +
	"dev2 kind=CPU batches=356 req=757 busy=0x1.9877e68214bccp-03\n" +
	"routes=222202222222222222222222222212222222222222222222222222222202222222222222212222222222220222212222222222222222222222222222222222222202222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222222212222222222222222222222222222222222222222222222222222222222222222220222122222\n"

// goldenServeConfig is the golden's exact configuration (do not retune:
// goldenServeSig was captured against it).
func goldenServeConfig(ds *datagen.Dataset, m *gnn.Model) Config {
	return Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: m,
		Fanouts: []int{8, 4}, NumRequests: 3000, RatePerSec: 12000,
		MaxBatch: 24, WindowSec: 1e-3, Workers: 2, CPUPeer: true, SmallBatchCut: 2,
		QueueCap: 256, CacheSize: 512, CacheShards: 2, Seed: 7, Formation: "priority",
		ClassRates: []ClassRateLimit{{Class: ClassBulk, RatePerSec: 2500, Burst: 8}},
		Workload: &WorkloadSpec{Cohorts: []Cohort{
			{Name: "web", Class: ClassInteractive, Dist: DistPoisson, RatePerSec: 4000, Zipf: 1.1},
			{Name: "api", Class: ClassStandard, Dist: DistGamma, Shape: 0.5, RatePerSec: 5000, Zipf: 1.0},
			{Name: "etl", Class: ClassBulk, Dist: DistWeibull, Shape: 0.7, RatePerSec: 3000, Zipf: 0.8},
		}},
	}
}

// TestEmptyFaultScheduleByteIdentity is the PR's non-negotiable invariant:
// with no serving faults scripted — nil schedule, empty schedule, or a
// schedule holding only training events — a run is byte-identical to the
// pre-fault-machinery tree, and every fault counter stays zero.
func TestEmptyFaultScheduleByteIdentity(t *testing.T) {
	ds, m := testSetup(t)
	clusterOnly, err := fault.Parse("fail,node=2,at=iter:5;degrade,link,from=iter:0,to=iter:3,factor=4")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		sched *fault.Schedule
	}{
		{"nil-schedule", nil},
		{"empty-schedule", &fault.Schedule{}},
		{"cluster-only-schedule", clusterOnly},
	}
	for _, c := range cases {
		cfg := goldenServeConfig(ds, m)
		cfg.Faults = c.sched
		st, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := serveSig(st); got != goldenServeSig {
			t.Errorf("%s: run drifted from the pre-fault golden:\ngot:\n%s\nwant:\n%s", c.name, got, goldenServeSig)
		}
		if st.Shed != 0 || st.Retries != 0 || st.Redispatched != 0 || st.FailedWorkers != 0 ||
			st.RecoverySec != 0 || st.FaultWindowServed != 0 || st.DeadlineMisses != 0 {
			t.Errorf("%s: fault counters non-zero in a fault-free run: %+v", c.name, st)
		}
	}
}

// TestSLOTargetsDoNotPerturbRun pins satellite 4's accounting-only contract:
// configuring per-class deadline targets adds miss counts but changes no
// serving arithmetic — the full golden signature still matches bit for bit.
func TestSLOTargetsDoNotPerturbRun(t *testing.T) {
	ds, m := testSetup(t)
	cfg := goldenServeConfig(ds, m)
	cfg.SLOTargets = []ClassSLO{
		{Class: ClassInteractive, TargetSec: 0.2e-3},
		{Class: ClassStandard, TargetSec: 0.4e-3},
		{Class: ClassBulk, TargetSec: 1e-3},
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := serveSig(st); got != goldenServeSig {
		t.Fatalf("SLO targets perturbed the run:\ngot:\n%s\nwant:\n%s", got, goldenServeSig)
	}
	// The interactive target sits between the class p50 and max, so some —
	// but not all — served interactive requests must miss.
	ics := st.PerClass[ClassInteractive]
	if ics.DeadlineMisses == 0 || ics.DeadlineMisses >= ics.Served {
		t.Fatalf("interactive deadline misses %d of %d served: want 0 < misses < served",
			ics.DeadlineMisses, ics.Served)
	}
	total := 0
	for c := range st.PerClass {
		total += st.PerClass[c].DeadlineMisses
		if want := cfg.SLOTargets[c].TargetSec; st.PerClass[c].SLOSec != want {
			t.Fatalf("class %d SLOSec %v, want %v", c, st.PerClass[c].SLOSec, want)
		}
	}
	if st.DeadlineMisses != total {
		t.Fatalf("DeadlineMisses %d != per-class sum %d", st.DeadlineMisses, total)
	}
	// A target above the run's max latency misses nothing.
	cfg2 := goldenServeConfig(ds, m)
	cfg2.SLOTargets = []ClassSLO{{Class: ClassInteractive, TargetSec: 10}}
	st2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DeadlineMisses != 0 {
		t.Fatalf("10s target missed %d deadlines", st2.DeadlineMisses)
	}
}

// faultServeConfig is the golden config with a scripted mid-run loss of the
// CPU peer (the pool's workhorse) plus an earlier straggler window on one
// FPGA — the drill the replay-determinism and failover tests share.
func faultServeConfig(t *testing.T, ds *datagen.Dataset, m *gnn.Model) (Config, *fault.Schedule) {
	t.Helper()
	sched, err := fault.Parse("fail,worker=2,at=0.1;slow,worker=0,from=0.02,to=0.05,factor=3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenServeConfig(ds, m)
	cfg.Faults = sched
	return cfg, sched
}

// TestScriptedFaultReplayDeterminism: the same fault schedule replays
// bit-exactly — two runs agree on every counter, latency bit, and route.
func TestScriptedFaultReplayDeterminism(t *testing.T) {
	ds, m := testSetup(t)
	cfg, _ := faultServeConfig(t, ds, m)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sigA := serveSig(a) + fmt.Sprintf("shed=%d retries=%d redisp=%d failed=%d recovery=%s fwp99=%s fwserved=%d",
		a.Shed, a.Retries, a.Redispatched, a.FailedWorkers, hexf(a.RecoverySec), hexf(a.FaultWindowP99Sec), a.FaultWindowServed)
	sigB := serveSig(b) + fmt.Sprintf("shed=%d retries=%d redisp=%d failed=%d recovery=%s fwp99=%s fwserved=%d",
		b.Shed, b.Retries, b.Redispatched, b.FailedWorkers, hexf(b.RecoverySec), hexf(b.FaultWindowP99Sec), b.FaultWindowServed)
	if sigA != sigB {
		t.Fatalf("fault replay drifted:\n%s\nvs\n%s", sigA, sigB)
	}
}

// TestWorkerFailStopFailover drives the golden workload through a mid-run
// CPU-peer loss and checks the self-healing contract: the fleet keeps
// serving on the survivors, no request is lost silently (the ledger closes:
// offered = served + rejected + shed), routing never assigns a batch to the
// dead worker after its fail time, and admission tightens to surviving
// capacity (bulk sheds, interactive never does).
func TestWorkerFailStopFailover(t *testing.T) {
	ds, m := testSetup(t)
	cfg, _ := faultServeConfig(t, ds, m)
	cfg.RouteTrace = true
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedWorkers != 1 {
		t.Fatalf("FailedWorkers %d, want 1", st.FailedWorkers)
	}
	if st.Served+st.Rejected+st.Shed != st.Offered {
		t.Fatalf("request ledger leaks: offered %d != served %d + rejected %d + shed %d",
			st.Offered, st.Served, st.Rejected, st.Shed)
	}
	if st.Served == 0 || st.FaultWindowServed == 0 {
		t.Fatalf("fleet stopped serving after the loss: served %d, fault-window served %d",
			st.Served, st.FaultWindowServed)
	}
	const failAt = 0.1
	for _, d := range st.RouteTrace {
		if d.CloseAt >= failAt && d.Worker == 2 {
			t.Fatalf("batch %d routed to dead worker 2 at %.4fs (fail at %.1fs)", d.Batch, d.CloseAt, failAt)
		}
	}
	// The run extends well past the fail time, so batches predicted onto the
	// dying peer must have re-dispatched — and the survivors absorbed them.
	if st.Retries == 0 || st.Redispatched == 0 {
		t.Fatalf("no failover happened: retries %d, redispatched %d", st.Retries, st.Redispatched)
	}
	if st.RecoverySec <= 0 {
		t.Fatalf("RecoverySec %v, want > 0 after a re-dispatch", st.RecoverySec)
	}
	// Degraded-mode admission: bulk pays first, interactive never sheds.
	if st.PerClass[ClassBulk].Shed == 0 {
		t.Fatal("bulk class shed nothing under degraded capacity")
	}
	if st.PerClass[ClassInteractive].Shed != 0 {
		t.Fatalf("interactive class shed %d requests; shedding order must protect it",
			st.PerClass[ClassInteractive].Shed)
	}
	if math.IsNaN(st.JainFairness) {
		t.Fatal("Jain fairness is NaN under shedding")
	}
}

// TestStallAndStragglerWindows pins the transient-fault model: a stall or
// straggler window inflates the affected span's completions but leaves the
// run fault-counter-clean (no worker died, nothing shed or re-dispatched),
// and the whole fleet keeps the request ledger intact.
func TestStallAndStragglerWindows(t *testing.T) {
	ds, m := testSetup(t)
	base := goldenServeConfig(ds, m)
	stBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.Parse("stall,worker=2,from=0.02,to=0.06;slow,worker=2,from=0.06,to=0.12,factor=5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenServeConfig(ds, m)
	cfg.Faults = sched
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedWorkers != 0 || st.Shed != 0 || st.Redispatched != 0 {
		t.Fatalf("transient windows must not kill or shed: %+v", st)
	}
	if st.Served+st.Rejected != st.Offered {
		t.Fatalf("ledger leaks under transient faults: offered %d served %d rejected %d",
			st.Offered, st.Served, st.Rejected)
	}
	// Stalling and slowing the workhorse worker for a third of the run must
	// push the tail out relative to the healthy fleet.
	if st.P99Sec <= stBase.P99Sec {
		t.Fatalf("p99 %v not above healthy p99 %v despite stall+straggler windows",
			st.P99Sec, stBase.P99Sec)
	}
}

// TestFaultScheduleTargetsValidated: a schedule naming a worker outside the
// pool must be rejected at construction, not at fail time.
func TestFaultScheduleTargetsValidated(t *testing.T) {
	ds, m := testSetup(t)
	sched, err := fault.Parse("fail,worker=9,at=0.1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenServeConfig(ds, m)
	cfg.Faults = sched
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "worker 9") {
		t.Fatalf("out-of-pool fault target accepted: %v", err)
	}
}

// TestJainFairnessAllClassesStarved is satellite 1's regression: every class
// offered traffic but nothing was served (sumX == sumX² == 0). The Jain
// index must report 1 — equally (un)served — not NaN from 0/0. The guard
// landed in PR 9 without a pinning test; this is that test.
func TestJainFairnessAllClassesStarved(t *testing.T) {
	var st Stats
	st.PerClass[ClassInteractive].Offered = 5
	st.PerClass[ClassStandard].Offered = 3
	st.PerClass[ClassBulk].Offered = 7
	st.summarizePerClass(nil, nil)
	if st.ActiveClasses != 3 {
		t.Fatalf("ActiveClasses %d, want 3", st.ActiveClasses)
	}
	if math.IsNaN(st.JainFairness) {
		t.Fatal("Jain fairness is NaN when all classes are starved")
	}
	if st.JainFairness != 1 {
		t.Fatalf("Jain fairness %v, want 1 for uniformly starved classes", st.JainFairness)
	}
}
