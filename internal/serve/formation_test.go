package serve

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// legacyBatcher is the pre-formation DynamicBatcher, reproduced verbatim as
// the oracle for the FCFS pin: the default formation must be byte-identical
// to it — same batches, same order, same close times — on any schedule.
type legacyBatcher struct {
	maxBatch int
	window   float64
	pending  []Request
	spare    []Request
}

func (b *legacyBatcher) deadline() (float64, bool) {
	if len(b.pending) == 0 {
		return 0, false
	}
	return b.pending[0].Arrival + b.window, true
}

func (b *legacyBatcher) add(r Request) ([]Request, float64) {
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		return b.take(), r.Arrival
	}
	return nil, 0
}

func (b *legacyBatcher) closeExpired(now float64) ([]Request, float64) {
	dl, open := b.deadline()
	if !open || dl > now {
		return nil, 0
	}
	return b.take(), dl
}

func (b *legacyBatcher) flush() ([]Request, float64) {
	dl, open := b.deadline()
	if !open {
		return nil, 0
	}
	return b.take(), dl
}

func (b *legacyBatcher) take() []Request {
	batch := b.pending
	b.pending = b.spare[:0]
	b.spare = batch
	return batch
}

func sameBatch(a, b []Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFormationFCFSByteIdentical drives the new batcher (default formation)
// and the legacy oracle over randomized schedules — mixed classes included,
// which FCFS must ignore — and requires every closed batch to match request
// for request with the identical close time.
func TestFormationFCFSByteIdentical(t *testing.T) {
	rng := tensor.NewRNG(41)
	for trial := 0; trial < 100; trial++ {
		maxBatch := 1 + rng.Intn(16)
		window := float64(rng.Intn(4)) * 0.5e-3
		nb, err := NewDynamicBatcher(maxBatch, window)
		if err != nil {
			t.Fatal(err)
		}
		lb := &legacyBatcher{maxBatch: maxBatch, window: window}
		check := func(gotB []Request, gotAt float64, wantB []Request, wantAt float64) {
			if !sameBatch(gotB, wantB) || gotAt != wantAt {
				t.Fatalf("trial %d: fcfs diverged from legacy batcher:\n got %v @ %v\nwant %v @ %v",
					trial, gotB, gotAt, wantB, wantAt)
			}
		}
		now := 0.0
		for i := 0; i < 200; i++ {
			now += float64(rng.Intn(7)) * window / 5
			for {
				gb, ga := nb.CloseExpired(now)
				wb, wa := lb.closeExpired(now)
				check(gb, ga, wb, wa)
				if gb == nil {
					break
				}
			}
			r := Request{ID: i, Vertex: int32(rng.Intn(100)), Arrival: now, Class: SLOClass(rng.Intn(3))}
			gb, ga := nb.Add(r)
			wb, wa := lb.add(r)
			check(gb, ga, wb, wa)
		}
		gb, ga := nb.Flush()
		wb, wa := lb.flush()
		check(gb, ga, wb, wa)
	}
}

// driveFormationBatcher is driveBatcher's counterpart for the non-default
// formation policies: same conservation, size-cap, and monotone-close
// invariants, plus the formation contract — a batch never closes before a
// member arrived nor later than its oldest member's arrival plus the window,
// and priority batches dispatch in (class, arrival, ID) order.
func driveFormationBatcher(t *testing.T, maxBatch int, window float64, formation string, ops []byte) {
	t.Helper()
	b, err := NewDynamicBatcher(maxBatch, window)
	if err != nil {
		t.Skip("invalid batcher config")
	}
	svc := func(size int) float64 { return float64(size) * window / 8 }
	if err := b.SetFormation(formation, svc); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	added, closed := 0, 0
	now, lastClose := 0.0, math.Inf(-1)
	consume := func(batch []Request, closeAt float64) {
		if batch == nil {
			return
		}
		closed += len(batch)
		if len(batch) > maxBatch {
			t.Fatalf("batch size %d exceeds max %d", len(batch), maxBatch)
		}
		if closeAt < lastClose {
			t.Fatalf("close time went backwards: %v after %v", closeAt, lastClose)
		}
		lastClose = closeAt
		minA, maxA := math.Inf(1), math.Inf(-1)
		for i, r := range batch {
			if seen[r.ID] {
				t.Fatalf("request %d closed twice", r.ID)
			}
			seen[r.ID] = true
			minA = math.Min(minA, r.Arrival)
			maxA = math.Max(maxA, r.Arrival)
			if formation == FormationPriority && i > 0 && classLess(r, batch[i-1]) {
				t.Fatalf("priority batch out of (class, arrival) order at %d: %v", i, batch)
			}
		}
		if closeAt < maxA {
			t.Fatalf("batch closed at %v before its newest member arrived at %v", closeAt, maxA)
		}
		if closeAt > minA+window {
			t.Fatalf("batch closed at %v, later than oldest arrival %v + window %v", closeAt, minA, window)
		}
	}
	for _, op := range ops {
		switch op % 3 {
		case 0, 1:
			now += float64(op%7) * window / 5
			for {
				batch, closeAt := b.CloseExpired(now)
				if batch == nil {
					break
				}
				consume(batch, closeAt)
			}
			batch, closeAt := b.Add(Request{
				ID: added, Vertex: int32(op), Arrival: now, Class: SLOClass((op / 3) % 3),
			})
			added++
			consume(batch, closeAt)
		case 2:
			now += window
			for {
				batch, closeAt := b.CloseExpired(now)
				if batch == nil {
					break
				}
				consume(batch, closeAt)
			}
		}
	}
	batch, closeAt := b.Flush()
	consume(batch, closeAt)
	if closed != added {
		t.Fatalf("conservation violated: added %d, closed %d", added, closed)
	}
	if b.Pending() != 0 {
		t.Fatalf("%d requests stranded after flush", b.Pending())
	}
}

// FuzzFormationBatcher fuzzes the priority and sjf formations under the same
// invariant harness as FuzzDynamicBatcher.
func FuzzFormationBatcher(f *testing.F) {
	f.Add(uint8(8), 0.5e-3, uint8(0), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(1), 0.0, uint8(1), []byte{2, 2, 2, 0})
	f.Add(uint8(32), 1e-3, uint8(0), []byte("priority-fcfs under fuzz"))
	f.Add(uint8(3), 2e-3, uint8(1), []byte{255, 254, 253, 0, 1, 2})
	f.Fuzz(func(t *testing.T, maxBatch uint8, window float64, pol uint8, ops []byte) {
		if maxBatch == 0 || window < 0 || window > 10 || math.IsNaN(window) || len(ops) > 4096 {
			t.Skip()
		}
		formation := FormationPriority
		if pol%2 == 1 {
			formation = FormationSJF
		}
		driveFormationBatcher(t, int(maxBatch), window, formation, ops)
	})
}

// TestFormationInvariantsRandomized runs the formation harness over random
// schedules so the invariants hold in plain `go test` runs too.
func TestFormationInvariantsRandomized(t *testing.T) {
	rng := tensor.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		maxBatch := 1 + rng.Intn(40)
		window := float64(rng.Intn(4)) * 0.5e-3
		formation := FormationPriority
		if trial%2 == 1 {
			formation = FormationSJF
		}
		ops := make([]byte, 1+rng.Intn(300))
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		driveFormationBatcher(t, maxBatch, window, formation, ops)
	}
}

// TestPriorityFormationPullsDeadline pins the priority policy's mechanism:
// an interactive arrival joining an open pool pulls the close deadline to a
// quarter of the window past its own arrival, and the closed batch dispatches
// interactive-first.
func TestPriorityFormationPullsDeadline(t *testing.T) {
	const window = 1e-3
	b, err := NewDynamicBatcher(10, window)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetFormation(FormationPriority, nil); err != nil {
		t.Fatal(err)
	}
	b.Add(Request{ID: 0, Arrival: 0, Class: ClassStandard})
	if dl, _ := b.Deadline(); dl != window {
		t.Fatalf("standard-only pool deadline = %v, want full window %v", dl, window)
	}
	b.Add(Request{ID: 1, Arrival: 1e-4, Class: ClassInteractive})
	wantDL := 1e-4 + 0.25*window
	if dl, _ := b.Deadline(); dl != wantDL {
		t.Fatalf("mixed pool deadline = %v, want interactive-weighted %v", dl, wantDL)
	}
	batch, closeAt := b.CloseExpired(wantDL)
	if batch == nil || closeAt != wantDL {
		t.Fatalf("batch did not close at the weighted deadline: %v @ %v", batch, closeAt)
	}
	if batch[0].ID != 1 || batch[1].ID != 0 {
		t.Fatalf("priority batch not interactive-first: %v", batch)
	}
}

// TestSJFFormationShrinksWindow pins the sjf policy's mechanism: the pool's
// close deadline is the first arrival plus the window left after the
// predicted service of the pool as a batch, floored at zero.
func TestSJFFormationShrinksWindow(t *testing.T) {
	const window = 1e-3
	b, err := NewDynamicBatcher(10, window)
	if err != nil {
		t.Fatal(err)
	}
	svc := func(size int) float64 { return float64(size) * 0.4e-3 }
	if err := b.SetFormation(FormationSJF, svc); err != nil {
		t.Fatal(err)
	}
	// Expectations go through the same runtime float subtraction the policy
	// performs (untyped constant folding would differ in the last ulp).
	w := window
	b.Add(Request{ID: 0, Arrival: 0})
	if dl, _ := b.Deadline(); dl != w-svc(1) {
		t.Fatalf("size-1 pool deadline = %v, want %v", dl, w-svc(1))
	}
	b.Add(Request{ID: 1, Arrival: 1e-4})
	// svc(2) = 0.8ms leaves 0.2ms of window; 0 + 0.2ms is past the newest
	// arrival 0.1ms, so the clamp does not engage.
	if dl, _ := b.Deadline(); dl != w-svc(2) {
		t.Fatalf("size-2 pool deadline = %v, want %v", dl, w-svc(2))
	}
	b.Add(Request{ID: 2, Arrival: 1.5e-4})
	// svc(3) = 1.2ms exceeds the window: remaining floor 0 puts the deadline
	// at the first arrival, then the clamp lifts it to the newest arrival.
	if dl, _ := b.Deadline(); dl != 1.5e-4 {
		t.Fatalf("over-budget pool deadline = %v, want newest arrival clamp 1.5e-4", dl)
	}
}

// TestSetFormationErrors pins the wiring contract.
func TestSetFormationErrors(t *testing.T) {
	b, err := NewDynamicBatcher(4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetFormation("speculative", nil); err == nil {
		t.Fatal("unknown formation accepted")
	}
	if err := b.SetFormation(FormationSJF, nil); err == nil {
		t.Fatal("sjf without a service predictor accepted")
	}
	if got := b.Formation(); got != FormationFCFS {
		t.Fatalf("failed SetFormation mutated the policy to %q", got)
	}
	b.Add(Request{ID: 0})
	if err := b.SetFormation(FormationPriority, nil); err == nil {
		t.Fatal("formation change with a batch open accepted")
	}
}
