package serve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/hw"
)

// heteroPlatform builds a mixed fleet or fails the test.
func heteroPlatform(t *testing.T, kinds ...hw.Kind) hw.Platform {
	t.Helper()
	p, err := hw.HeteroPlatform(kinds...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Property: on a pool whose devices all share identical specs, the
// kind-aware router must be indistinguishable from the pre-refactor policy
// (dispatch to the least-available worker) — byte-identical latency stats
// and an identical routing trace. This is the regression guard for the
// routing refactor: predicted completions on equal devices differ only by a
// constant, so the argmin must coincide with the legacy argmin on every
// batch, ties included.
func TestRoutedMatchesLegacyOnHomogeneousPool(t *testing.T) {
	ds, m := testSetup(t)
	for name, plat := range map[string]hw.Platform{
		"fpga": hw.CPUFPGAPlatform(),
		"gpu":  heteroPlatform(t, hw.GPU, hw.GPU, hw.GPU),
	} {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(ds, m)
			cfg.Plat = plat
			cfg.Workers = 3
			cfg.CacheSize = 256
			cfg.RatePerSec = 60000 // hot enough that routing decisions matter
			routed, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			legacy := cfg
			legacy.Policy = PolicyLeastLoaded
			ref, err := Run(legacy)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(routed.Routes, ref.Routes) {
				t.Fatalf("routing trace diverged from the legacy policy:\n%v\n%v",
					routed.Routes, ref.Routes)
			}
			if !reflect.DeepEqual(routed, ref) {
				t.Fatalf("homogeneous pool stats diverged:\n%+v\n%+v", routed, ref)
			}
		})
	}
}

// Determinism: two runs with the same seed must route every batch to the
// same worker and reproduce every statistic exactly, on a mixed pool where
// the router has real choices to make.
func TestRoutingDeterministic(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.Plat = heteroPlatform(t, hw.GPU, hw.FPGA)
	cfg.Workers = 2
	cfg.CPUPeer = true
	cfg.SmallBatchCut = 4
	cfg.CacheSize = 256
	cfg.RatePerSec = 120000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatalf("same seed, different routes:\n%v\n%v", a.Routes, b.Routes)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different stats:\n%v\n%v", a, b)
	}
	if len(a.Routes) == 0 {
		t.Fatal("no computed batches routed")
	}
}

// The mixed fleet must actually be heterogeneous under load: every device
// kind takes computed batches, per-device counters add up, and the
// small-batch split lands cache-hot small batches on the CPU peer.
func TestMixedPoolSharesWork(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.Plat = heteroPlatform(t, hw.GPU, hw.FPGA)
	cfg.Workers = 2
	cfg.CPUPeer = true
	cfg.SmallBatchCut = 4
	cfg.CacheSize = 256
	cfg.NumRequests = 3000
	cfg.RatePerSec = 250000
	cfg.QueueCap = 256
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerDevice) != 3 {
		t.Fatalf("expected 3 workers, got %d", len(st.PerDevice))
	}
	var batches, requests int
	for _, d := range st.PerDevice {
		if d.Batches == 0 {
			t.Fatalf("%s %s took no batches — fleet not heterogeneous under load\n%v",
				d.Kind, d.Name, st)
		}
		if d.BusySec <= 0 {
			t.Fatalf("%s busy time missing", d.Name)
		}
		batches += d.Batches
		requests += d.Requests
	}
	if batches != len(st.Routes) {
		t.Fatalf("per-device batches %d != routed batches %d", batches, len(st.Routes))
	}
	if requests != st.Computed {
		t.Fatalf("per-device requests %d != computed %d", requests, st.Computed)
	}
}

// The small-batch split: with the cut enabled, every batch whose computed
// miss count is at or under the cut must land on the CPU peer (unless the
// CPU kind is saturated). Run with an effectively unbounded queue so
// saturation never triggers, then check the peer served every small batch.
func TestSmallBatchesLandOnCPUPeer(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.Plat = heteroPlatform(t, hw.GPU, hw.FPGA)
	cfg.Workers = 2
	cfg.CPUPeer = true
	cfg.SmallBatchCut = 1000 // every batch is "small"
	cfg.QueueCap = 1 << 20
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peer := st.PerDevice[len(st.PerDevice)-1]
	if peer.Kind != hw.CPU {
		t.Fatalf("last worker is %v, want the CPU peer", peer.Kind)
	}
	if peer.Batches != len(st.Routes) {
		t.Fatalf("CPU peer served %d of %d batches despite a cut above every batch size",
			peer.Batches, len(st.Routes))
	}
}

// SmallBatchCut without a CPU peer has no landing spot on accelerator
// platforms and must be rejected.
func TestSmallCutRequiresPeer(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.SmallBatchCut = 4
	if _, err := Run(cfg); err == nil {
		t.Fatal("SmallBatchCut without CPUPeer accepted")
	}
	cfg.CPUPeer = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// Kind-aware admission: a saturated kind must not absorb further batches
// while another kind has room — the slow-FPGA-starves-GPU scenario. Build a
// controller by hand and drive the saturation check directly.
func TestKindSaturationSteering(t *testing.T) {
	a, err := NewAdmissionController(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetKindCap(hw.FPGA, 2)
	a.SetKindCap(hw.GPU, 2)
	// Two FPGA batches in flight with far-future completions: saturated.
	a.Admit(0)
	a.Admit(0)
	a.DispatchedKind(hw.FPGA, []float64{100, 200})
	if !a.KindSaturated(hw.FPGA, 1) {
		t.Fatal("FPGA not saturated at its cap")
	}
	if a.KindSaturated(hw.GPU, 1) {
		t.Fatal("GPU saturated without in-flight work")
	}
	// The GPU keeps serving and draining while the FPGA stays pinned.
	a.Admit(1)
	a.DispatchedKind(hw.GPU, []float64{2})
	if a.KindSaturated(hw.GPU, 3) {
		t.Fatal("GPU saturation not cleared by completion")
	}
	if !a.KindSaturated(hw.FPGA, 3) {
		t.Fatal("FPGA saturation cleared early")
	}
	// Uncapped kinds are never saturated.
	if a.KindSaturated(hw.CPU, math.Inf(1)) {
		t.Fatal("uncapped kind reported saturated")
	}
}
