package serve

import (
	"sync"
	"testing"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewEmbeddingCache(4)
	k := CacheKey{Vertex: 7, Version: 1}
	if _, _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []float32{1, 2, 3}, 0.5)
	emb, readyAt, ok := c.Get(k)
	if !ok || readyAt != 0.5 || len(emb) != 3 || emb[1] != 2 {
		t.Fatalf("Get = %v %v %v", emb, readyAt, ok)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = %d %d %d", hits, misses, evictions)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewEmbeddingCache(2)
	put := func(v int32) { c.Put(CacheKey{Vertex: v, Version: 1}, []float32{float32(v)}, 0) }
	has := func(v int32) bool {
		_, _, ok := c.Get(CacheKey{Vertex: v, Version: 1})
		return ok
	}
	put(1)
	put(2)
	if !has(1) { // touches 1: now 2 is least-recently-used
		t.Fatal("1 missing before eviction")
	}
	put(3) // evicts 2
	if has(2) {
		t.Fatal("2 survived eviction despite being LRU")
	}
	if !has(1) || !has(3) {
		t.Fatal("recently-used entries evicted")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// A model-version bump must invalidate every older entry without a flush:
// the same vertex under a new version is a miss.
func TestCacheVersionKeying(t *testing.T) {
	c := NewEmbeddingCache(8)
	c.Put(CacheKey{Vertex: 5, Version: 1}, []float32{1}, 0)
	if _, _, ok := c.Get(CacheKey{Vertex: 5, Version: 2}); ok {
		t.Fatal("stale-version entry served")
	}
	if _, _, ok := c.Get(CacheKey{Vertex: 5, Version: 1}); !ok {
		t.Fatal("current-version entry lost")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewEmbeddingCache(0)
	c.Put(CacheKey{Vertex: 1, Version: 1}, []float32{1}, 0)
	if _, _, ok := c.Get(CacheKey{Vertex: 1, Version: 1}); ok {
		t.Fatal("capacity-0 cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("capacity-0 cache non-empty")
	}
}

func TestCachePutRefreshesEntry(t *testing.T) {
	c := NewEmbeddingCache(2)
	k := CacheKey{Vertex: 9, Version: 3}
	c.Put(k, []float32{1}, 1.0)
	c.Put(k, []float32{2}, 2.0)
	emb, readyAt, ok := c.Get(k)
	if !ok || emb[0] != 2 || readyAt != 2.0 {
		t.Fatalf("refresh lost: %v %v %v", emb, readyAt, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
}

// The cache is shared state on the serving hot path; hammer it from many
// goroutines so the CI -race pass has something to bite on.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewEmbeddingCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := CacheKey{Vertex: int32((g*31 + i) % 128), Version: 1}
				if _, _, ok := c.Get(k); !ok {
					c.Put(k, []float32{float32(i)}, float64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
	hits, misses, _ := c.Stats()
	if hits+misses != 8*500 {
		t.Fatalf("lookup accounting lost updates: %d + %d != %d", hits, misses, 8*500)
	}
}
