package serve

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/hw"
)

// Routing policy names accepted by Config.Policy / ParsePolicy.
const (
	// PolicyEarliest dispatches to the earliest predicted completion over
	// the per-device serving stage vectors, preferring the CPU peer for
	// small batches and steering around saturated kinds — the router PR 4
	// shipped, now as the default plugin.
	PolicyEarliest = "earliest"
	// PolicyLeastLoaded dispatches to the worker with the smallest
	// AvailableAt, ignoring per-device predictions, kind saturation, and
	// the small-batch split — the pre-PR-4 legacy policy, retained as the
	// regression baseline (on identical devices, earliest must coincide
	// with it byte for byte).
	PolicyLeastLoaded = "least-loaded"
	// PolicyAffinity scores workers by how many of the batch's missing
	// vertices each computed recently (a per-worker recency sketch fed by
	// completions), tie-breaking by predicted completion. Re-computing a
	// vertex on the worker that just computed its neighborhood is the
	// serving analogue of cache-affinity scheduling.
	PolicyAffinity = "affinity"
)

// ParsePolicy canonicalizes a routing-policy name ("" picks the default,
// earliest-completion).
func ParsePolicy(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", PolicyEarliest, "earliest-completion":
		return PolicyEarliest, nil
	case PolicyLeastLoaded, "leastloaded":
		return PolicyLeastLoaded, nil
	case PolicyAffinity, "cache-affinity":
		return PolicyAffinity, nil
	}
	return "", fmt.Errorf("serve: unknown routing policy %q (want earliest, least-loaded, or affinity)", name)
}

// RouteRequest describes one closed batch to a routing policy: how many
// cache-missing targets it computes, when it closed, whether the batcher
// classified it small, and which vertices it computes (for affinity
// scoring). Targets borrows the dispatcher's scratch — valid only for the
// duration of the Route call.
type RouteRequest struct {
	Computed int
	CloseAt  float64
	Small    bool
	Targets  []int32
}

// RouteAlternative is one counterfactual row in a RouteDecision: what
// dispatching this batch to Worker instead was predicted to cost.
type RouteAlternative struct {
	Worker           int
	Kind             string
	PredictedDoneSec float64 // max(closeAt, avail) + predicted service
	Saturated        bool    // kind had exhausted its admission share
	Failed           bool    // worker was fail-stopped at the batch's close time
	Affinity         int     // recency-sketch score (affinity policy; else 0)
}

// RouteDecision is one routing trace row: the chosen worker, its predicted
// service and completion, and the counterfactual predicted completion of
// every alternative — so a policy change is justified by traces, not vibes.
type RouteDecision struct {
	Batch               int     // computed-batch ordinal (index into Stats.Routes)
	CloseAt             float64 // virtual close time of the batch
	Computed            int     // cache-missing targets
	Policy              string
	Worker              int // chosen pool index
	SmallToPeer         bool
	PredictedServiceSec float64
	PredictedDoneSec    float64
	Alternatives        []RouteAlternative // one per pool worker, pool order
}

// RoutePolicy selects the serving worker for every closed batch.
// Implementations must be deterministic: the same request against the same
// pool state picks the same worker. Route must not allocate when dec is
// nil — it sits on the zero-alloc dispatch path; when dec is non-nil the
// policy additionally fills the full decision trace (tracing may allocate).
type RoutePolicy interface {
	Name() string
	Route(req *RouteRequest, dec *RouteDecision) (int, error)
	// Observe feeds a completed computed batch back to the policy: worker
	// wi computed the embeddings of targets. Stateless policies ignore it.
	Observe(wi int, targets []int32)
}

// newRoutePolicy builds the named policy over a worker pool (name must be
// canonical — run ParsePolicy first). health is nil for fault-free runs, and
// every policy then routes exactly as before the fault machinery existed.
func newRoutePolicy(name string, pool []*worker, admission *AdmissionController, health *fleetHealth) (RoutePolicy, error) {
	base := policyBase{pool: pool, admission: admission, health: health}
	switch name {
	case PolicyEarliest:
		return &earliestPolicy{base}, nil
	case PolicyLeastLoaded:
		return &leastLoadedPolicy{base}, nil
	case PolicyAffinity:
		p := &affinityPolicy{policyBase: base, mask: affinitySketchSize - 1}
		p.sketch = make([][]int32, len(pool))
		for i := range p.sketch {
			s := make([]int32, affinitySketchSize)
			for j := range s {
				s[j] = -1
			}
			p.sketch[i] = s
		}
		return p, nil
	}
	return nil, fmt.Errorf("serve: unknown routing policy %q", name)
}

// policyBase carries the pool view shared by every policy.
type policyBase struct {
	pool      []*worker
	admission *AdmissionController
	// health is the fault schedule's per-worker liveness/stall/straggler
	// view; nil (no serving faults scripted) keeps every policy on the exact
	// pre-fault arithmetic. Fail-stopped workers are excluded from every
	// policy's candidate set, and predictions are fault-adjusted.
	health *fleetHealth
}

// excluded reports whether worker i is off the candidate list at time t —
// only ever true under a fault schedule.
func (b *policyBase) excluded(i int, t float64) bool {
	return b.health != nil && !b.health.alive(i, t)
}

// predictedDone returns worker w's predicted completion for req — the
// routing arithmetic every policy shares, fault-adjusted when a health view
// is present (a start in a stall window is pushed past it, a straggler's
// service is inflated) and bit-identical to the legacy expression otherwise.
func (b *policyBase) predictedDone(w *worker, req *RouteRequest) (pred, avail float64, err error) {
	svc, err := w.serviceSec(req.Computed)
	if err != nil {
		return 0, 0, err
	}
	avail = w.pipe.AvailableAt()
	start := math.Max(req.CloseAt, avail)
	if b.health != nil {
		var f float64
		start, f = b.health.adjust(w.idx, start)
		svc *= f
	}
	return start + svc, avail, nil
}

// peerIndex returns the pool index of the CPU peer when a small batch
// should land there (the peer pays no transfer or launch cost), or -1.
func (b *policyBase) peerIndex(req *RouteRequest) int {
	if !req.Small {
		return -1
	}
	for i, w := range b.pool {
		if w.pipe.DeviceIndex() == 0 && !b.excluded(i, req.CloseAt) &&
			!b.admission.KindSaturated(hw.CPU, req.CloseAt) {
			return i
		}
	}
	return -1
}

// earliest picks the earliest predicted completion, optionally skipping
// saturated kinds. Ties break on availability, then pool order. Returns -1
// when every candidate was skipped.
func (b *policyBase) earliest(req *RouteRequest, skipSaturated bool) (int, error) {
	best := -1
	var bestPred, bestAvail float64
	for i, w := range b.pool {
		if b.excluded(i, req.CloseAt) {
			continue
		}
		if skipSaturated && b.admission.KindSaturated(w.pipe.Device().Kind, req.CloseAt) {
			continue
		}
		pred, avail, err := b.predictedDone(w, req)
		if err != nil {
			return -1, err
		}
		if best < 0 || pred < bestPred ||
			(pred == bestPred && avail < bestAvail) {
			best, bestPred, bestAvail = i, pred, avail
		}
	}
	return best, nil
}

// trace fills dec's counterfactual rows: the predicted completion of every
// pool worker for this request, plus the chosen worker's summary fields.
// Only called on the tracing path, so allocation is fine here.
func (b *policyBase) trace(dec *RouteDecision, req *RouteRequest, chosen int, name string, smallToPeer bool, affinity func(wi int) int) error {
	dec.CloseAt = req.CloseAt
	dec.Computed = req.Computed
	dec.Policy = name
	dec.Worker = chosen
	dec.SmallToPeer = smallToPeer
	dec.Alternatives = make([]RouteAlternative, len(b.pool))
	for i, w := range b.pool {
		svc, err := w.serviceSec(req.Computed)
		if err != nil {
			return err
		}
		pred, _, err := b.predictedDone(w, req)
		if err != nil {
			return err
		}
		alt := RouteAlternative{
			Worker:           i,
			Kind:             w.pipe.Device().Kind.String(),
			PredictedDoneSec: pred,
			Saturated:        b.admission.KindSaturated(w.pipe.Device().Kind, req.CloseAt),
			Failed:           b.excluded(i, req.CloseAt),
		}
		if affinity != nil {
			alt.Affinity = affinity(i)
		}
		dec.Alternatives[i] = alt
		if i == chosen {
			dec.PredictedServiceSec = svc
			dec.PredictedDoneSec = alt.PredictedDoneSec
		}
	}
	return nil
}

// earliestPolicy is the default: earliest predicted completion with the
// small-batch CPU-peer preference and kind-saturation steering.
type earliestPolicy struct{ policyBase }

func (p *earliestPolicy) Name() string { return PolicyEarliest }

func (p *earliestPolicy) Route(req *RouteRequest, dec *RouteDecision) (int, error) {
	smallToPeer := false
	wi := p.peerIndex(req)
	if wi >= 0 {
		smallToPeer = true
	} else {
		var err error
		wi, err = p.earliest(req, true)
		if err != nil {
			return -1, err
		}
		if wi < 0 { // every kind saturated: fall back to the whole pool
			wi, err = p.earliest(req, false)
			if err != nil {
				return -1, err
			}
		}
	}
	if dec != nil {
		if err := p.trace(dec, req, wi, p.Name(), smallToPeer, nil); err != nil {
			return -1, err
		}
	}
	return wi, nil
}

func (p *earliestPolicy) Observe(int, []int32) {}

// leastLoadedPolicy dispatches to the smallest AvailableAt, tie-breaking on
// pool order — the legacy policy, byte-identical to the pre-plugin router.
type leastLoadedPolicy struct{ policyBase }

func (p *leastLoadedPolicy) Name() string { return PolicyLeastLoaded }

func (p *leastLoadedPolicy) Route(req *RouteRequest, dec *RouteDecision) (int, error) {
	wi := -1
	for i, w := range p.pool {
		if p.excluded(i, req.CloseAt) {
			continue
		}
		if wi < 0 || w.pipe.AvailableAt() < p.pool[wi].pipe.AvailableAt() {
			wi = i
		}
	}
	if dec != nil {
		if err := p.trace(dec, req, wi, p.Name(), false, nil); err != nil {
			return -1, err
		}
	}
	return wi, nil
}

func (p *leastLoadedPolicy) Observe(int, []int32) {}

// affinitySketchSize is each worker's recency-sketch slot count (direct
// mapped; power of two).
const affinitySketchSize = 2048

// affinityPolicy scores each worker by how many of the batch's missing
// vertices it computed recently, routing to the highest score among
// non-saturated workers; ties break on predicted completion, then
// availability, then pool order. Small batches still prefer the CPU peer
// (affinity refines the choice *among* the big-batch workers, it does not
// undo the per-kind split). The sketch is a direct-mapped table per worker:
// Observe overwrites slot hash(v) with v, so scoring one vertex is a single
// load and compare — O(batch) per candidate worker, no allocation.
type affinityPolicy struct {
	policyBase
	sketch [][]int32
	mask   uint32
}

func (p *affinityPolicy) Name() string { return PolicyAffinity }

// vertexSlot hashes a vertex into the sketch (Knuth multiplicative mix).
func vertexSlot(v int32, mask uint32) uint32 {
	x := uint32(v) * 2654435761
	return (x ^ x>>16) & mask
}

// score counts how many of the targets worker wi holds in its sketch.
func (p *affinityPolicy) score(wi int, targets []int32) int {
	s := p.sketch[wi]
	n := 0
	for _, v := range targets {
		if s[vertexSlot(v, p.mask)] == v {
			n++
		}
	}
	return n
}

// pick chooses the best-scoring candidate, optionally skipping saturated
// kinds; -1 when every candidate was skipped.
func (p *affinityPolicy) pick(req *RouteRequest, skipSaturated bool) (int, error) {
	best := -1
	bestScore := -1
	var bestPred, bestAvail float64
	for i, w := range p.pool {
		if p.excluded(i, req.CloseAt) {
			continue
		}
		if skipSaturated && p.admission.KindSaturated(w.pipe.Device().Kind, req.CloseAt) {
			continue
		}
		pred, avail, err := p.predictedDone(w, req)
		if err != nil {
			return -1, err
		}
		score := p.score(i, req.Targets)
		if best < 0 || score > bestScore ||
			(score == bestScore && (pred < bestPred ||
				(pred == bestPred && avail < bestAvail))) {
			best, bestScore, bestPred, bestAvail = i, score, pred, avail
		}
	}
	return best, nil
}

func (p *affinityPolicy) Route(req *RouteRequest, dec *RouteDecision) (int, error) {
	smallToPeer := false
	wi := p.peerIndex(req)
	if wi >= 0 {
		smallToPeer = true
	} else {
		var err error
		wi, err = p.pick(req, true)
		if err != nil {
			return -1, err
		}
		if wi < 0 {
			wi, err = p.pick(req, false)
			if err != nil {
				return -1, err
			}
		}
	}
	if dec != nil {
		aff := func(i int) int { return p.score(i, req.Targets) }
		if err := p.trace(dec, req, wi, p.Name(), smallToPeer, aff); err != nil {
			return -1, err
		}
	}
	return wi, nil
}

// Observe records that worker wi computed these vertices: each overwrites
// its direct-mapped slot, so the sketch tracks each worker's recent compute
// set with bounded memory and no allocation.
func (p *affinityPolicy) Observe(wi int, targets []int32) {
	s := p.sketch[wi]
	for _, v := range targets {
		s[vertexSlot(v, p.mask)] = v
	}
}
