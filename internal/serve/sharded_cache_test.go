package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// traceEmb builds a distinguishable embedding for a key at a given put
// ordinal (fresh slice per call — the legacy cache retains it).
func traceEmb(k CacheKey, op, stride int) []float32 {
	e := make([]float32, stride)
	for i := range e {
		e[i] = float32(int(k.Vertex)*1000 + k.Version*100 + op + i)
	}
	return e
}

// The 1-shard ≡ legacy-LRU property: on any request trace, a 1-shard
// ShardedCache must reproduce the legacy EmbeddingCache's hit/miss/eviction
// counters, resident set, per-entry ready times, per-lookup results, and
// stored values exactly. The trace mixes single-key ops with GetMany/PutMany
// batches (applied to the oracle as the equivalent sequential ops), across
// capacities that force heavy eviction.
func TestShardedCacheMatchesLegacyLRU(t *testing.T) {
	const stride = 6
	const vertices = 40
	for _, capacity := range []int{1, 3, 8, 17, 64} {
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := tensor.NewRNG(uint64(1000 + capacity))
			legacy := NewEmbeddingCache(capacity)
			sharded := NewShardedCache(capacity, 1, stride)
			if got := sharded.Shards(); got != 1 {
				t.Fatalf("asked for 1 shard, got %d", got)
			}
			randKey := func() CacheKey {
				return CacheKey{
					Vertex:  int32(rng.Uint64() % vertices),
					Version: 1 + int(rng.Uint64()%2),
				}
			}
			keys := make([]CacheKey, 0, 8)
			ready := make([]float64, 8)
			hit := make([]bool, 8)
			embs := make([][]float32, 8)
			for op := 0; op < 4000; op++ {
				switch rng.Uint64() % 5 {
				case 0: // Put
					k := randKey()
					at := float64(op)
					legacy.Put(k, traceEmb(k, op, stride), at)
					sharded.Put(k, traceEmb(k, op, stride), at)
				case 1, 2: // Get
					k := randKey()
					le, lr, lok := legacy.Get(k)
					se, sr, sok := sharded.Get(k)
					if lok != sok || lr != sr {
						t.Fatalf("op %d: Get(%v) legacy (%v,%v) sharded (%v,%v)", op, k, lr, lok, sr, sok)
					}
					if lok {
						for i := range le {
							if le[i] != se[i] {
								t.Fatalf("op %d: Get(%v) value diverged at %d: %v vs %v", op, k, i, le, se)
							}
						}
					}
				case 3: // GetMany vs sequential legacy Gets (duplicates included)
					n := 1 + int(rng.Uint64()%8)
					keys = keys[:0]
					for i := 0; i < n; i++ {
						keys = append(keys, randKey())
					}
					sharded.GetMany(keys, ready, hit, embs)
					for i, k := range keys {
						le, lr, lok := legacy.Get(k)
						if lok != hit[i] || (lok && lr != ready[i]) {
							t.Fatalf("op %d: GetMany[%d]=%v legacy (%v,%v) sharded (%v,%v)",
								op, i, k, lr, lok, ready[i], hit[i])
						}
						if lok && le[0] != embs[i][0] {
							t.Fatalf("op %d: GetMany[%d] value %v vs %v", op, i, embs[i][0], le[0])
						}
					}
				case 4: // PutMany vs sequential legacy Puts (one shared ready time)
					n := 1 + int(rng.Uint64()%8)
					keys = keys[:0]
					at := float64(op) + 0.5
					for i := 0; i < n; i++ {
						k := randKey()
						keys = append(keys, k)
						embs[i] = traceEmb(k, op, stride)
						legacy.Put(k, traceEmb(k, op, stride), at)
					}
					sharded.PutMany(keys, embs[:n], at)
				}
			}
			lh, lm, le := legacy.Stats()
			sh, sm, se := sharded.Stats()
			if lh != sh || lm != sm || le != se {
				t.Fatalf("counters diverged: legacy h%d m%d e%d, sharded h%d m%d e%d", lh, lm, le, sh, sm, se)
			}
			if legacy.Len() != sharded.Len() {
				t.Fatalf("resident count diverged: %d vs %d", legacy.Len(), sharded.Len())
			}
			// Resident sets must match key for key (Peek leaves counters and
			// LRU order untouched on both sides).
			for v := int32(0); v < vertices; v++ {
				for ver := 1; ver <= 2; ver++ {
					k := CacheKey{Vertex: v, Version: ver}
					lr, lok := legacy.Peek(k)
					sr, sok := sharded.Peek(k)
					if lok != sok || lr != sr {
						t.Fatalf("resident set diverged at %v: legacy (%v,%v) sharded (%v,%v)", k, lr, lok, sr, sok)
					}
				}
			}
		})
	}
}

// Shard-count plumbing: the constructor rounds shards down to a power of
// two, clamps to capacity, spreads capacity with remainder, and a filled
// cache reaches exactly its total capacity.
func TestShardedCacheShardClamp(t *testing.T) {
	cases := []struct{ capacity, shards, want int }{
		{10, 64, 8}, // clamped to capacity, rounded down to pow2
		{4, 3, 2},
		{100, 4, 4},
		{7, 0, 1}, // 0 picks 1
		{3, -2, 1},
	}
	for _, c := range cases {
		got := NewShardedCache(c.capacity, c.shards, 4).Shards()
		if got != c.want {
			t.Fatalf("NewShardedCache(cap=%d, shards=%d) settled on %d shards, want %d",
				c.capacity, c.shards, got, c.want)
		}
	}
	// Remainder spread: capacity 10 over 8 shards still holds 10 entries.
	c := NewShardedCache(10, 8, 4)
	for v := int32(0); v < 1000; v++ {
		c.Put(CacheKey{Vertex: v, Version: 1}, []float32{1, 2, 3, 4}, 0)
	}
	if c.Len() != 10 {
		t.Fatalf("capacity-10 cache holds %d entries after 1000 puts", c.Len())
	}
	// Disabled cache: every Get misses, Put is a no-op.
	off := NewShardedCache(0, 4, 4)
	off.Put(CacheKey{Vertex: 1, Version: 1}, []float32{1}, 0)
	if _, _, ok := off.Get(CacheKey{Vertex: 1, Version: 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if h, m, _ := off.Stats(); h != 0 || m != 1 {
		t.Fatalf("disabled cache counters h%d m%d, want h0 m1", h, m)
	}
	if off.Len() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

// Ownership rule: Put copies into the arena, so mutating (or reusing) the
// caller's buffer afterwards cannot corrupt the resident entry — the
// slice-retention footgun the legacy cache documents away is fixed
// structurally here. Covers both the insert and the refresh path.
func TestShardedCachePutCopies(t *testing.T) {
	c := NewShardedCache(8, 2, 4)
	k := CacheKey{Vertex: 5, Version: 1}
	buf := []float32{1, 2, 3, 4}
	c.Put(k, buf, 1.0)
	buf[0] = -99 // caller reuses its buffer
	if emb, _, ok := c.Get(k); !ok || emb[0] != 1 {
		t.Fatalf("insert retained the caller's slice: got %v", emb)
	}
	buf2 := []float32{9, 8, 7, 6}
	c.Put(k, buf2, 2.0) // refresh
	buf2[1] = -99
	emb, at, ok := c.Get(k)
	if !ok || emb[1] != 8 || at != 2.0 {
		t.Fatalf("refresh retained the caller's slice: got %v at %v", emb, at)
	}
}

// The -race hammer, generalized over shard counts: concurrent mixed
// single-key and batch traffic must stay structurally sound (bounded
// residency, exact lookup accounting).
func TestShardedCacheConcurrentAccess(t *testing.T) {
	const (
		goroutines = 8
		opsPer     = 500
		batch      = 6
		stride     = 5
		capacity   = 64
	)
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			c := NewShardedCache(capacity, shards, stride)
			var wg sync.WaitGroup
			var lookups int64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := tensor.NewRNG(uint64(g) + 1)
					keys := make([]CacheKey, batch)
					ready := make([]float64, batch)
					hit := make([]bool, batch)
					embs := make([][]float32, batch)
					emb := make([]float32, stride)
					for op := 0; op < opsPer; op++ {
						k := CacheKey{Vertex: int32(rng.Uint64() % 200), Version: 1}
						switch op % 4 {
						case 0:
							c.Put(k, emb, float64(op))
						case 1:
							c.Get(k)
						case 2:
							for i := range keys {
								keys[i] = CacheKey{Vertex: int32(rng.Uint64() % 200), Version: 1}
							}
							c.GetMany(keys, ready, hit, nil)
						case 3:
							for i := range keys {
								keys[i] = CacheKey{Vertex: int32(rng.Uint64() % 200), Version: 1}
								embs[i] = emb
							}
							c.PutMany(keys, embs, float64(op))
						}
					}
				}(g)
			}
			wg.Wait()
			// Per goroutine: opsPer/4 single Gets + opsPer/4 GetMany batches.
			lookups = goroutines * (opsPer/4 + opsPer/4*batch)
			h, m, _ := c.Stats()
			if h+m != lookups {
				t.Fatalf("lookup accounting: %d hits + %d misses != %d lookups", h, m, lookups)
			}
			if c.Len() > capacity {
				t.Fatalf("resident %d exceeds capacity %d", c.Len(), capacity)
			}
		})
	}
}

// Steady-state cache ops must not allocate: Get, Put (insert-with-eviction
// and refresh), and the batch APIs all run over preallocated shard state.
func TestShardedCacheZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation gate is skipped under -race")
	}
	const stride = 8
	c := NewShardedCache(32, 4, stride)
	emb := make([]float32, stride)
	keys := make([]CacheKey, 8)
	ready := make([]float64, 8)
	hit := make([]bool, 8)
	v := int32(0)
	iterate := func() {
		for i := range keys {
			keys[i] = CacheKey{Vertex: v % 100, Version: 1}
			v++
		}
		c.GetMany(keys, ready, hit, nil)
		for _, k := range keys {
			c.Put(k, emb, 1.0)
		}
		c.Get(keys[0])
	}
	for i := 0; i < 50; i++ {
		iterate()
	}
	if a := testing.AllocsPerRun(20, iterate); a != 0 {
		t.Fatalf("cache steady state allocated %.1f times per run, want 0", a)
	}
}
