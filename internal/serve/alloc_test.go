package serve

import (
	"testing"

	"repro/internal/tensor"
)

// The serving steady state — arrival → deadline expiry → admission →
// batching → cache lookup → routing → compute → cache publish → completion
// accounting — must run allocation-free once warm. This is the serving
// counterpart of core's TestTrainingIterationZeroAlloc: it gates the whole
// reuse discipline at once (ping-pong batch buffers, batched cache ops over
// preallocated scratch, generation-stamped vertex dedup, the dense
// service-time memo, the hand-rolled completion heap), so any new
// per-request or per-batch make/box anywhere in the loop fails it.
func TestServingSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation gate is skipped under -race")
	}
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.Plat.Accels = nil // one CPU worker: the serial fast path
	cfg.NumRequests = 1 << 16
	cfg.RatePerSec = 50000 // hot: batches close at MaxBatch, admission sheds some
	cfg.CacheSize = 256
	cfg.CacheShards = 4
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			r, _ := s.stream.Next()
			if err := s.offer(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm every arena to its roof: sampled neighborhood sizes vary batch to
	// batch, so the workspace, batcher, and admission heap must all have
	// seen their steady-state maxima before counting.
	feed(4000)
	batchesBefore, computedBefore := s.stats.Batches, s.stats.Computed
	if a := testing.AllocsPerRun(20, func() { feed(50) }); a != 0 {
		t.Fatalf("serving steady state allocated %.2f times per 50 requests, want 0", a)
	}
	// The gate must have exercised the full path, not just admission.
	if s.stats.Batches == batchesBefore || s.stats.Computed == computedBefore {
		t.Fatalf("gate did not reach dispatch: batches %d->%d computed %d->%d",
			batchesBefore, s.stats.Batches, computedBefore, s.stats.Computed)
	}
}

// Satellite micro-benchmark for the dispatch memo change: the router
// consults the per-worker predicted service time once per worker per closed
// batch. The legacy worker kept a map[int]float64; the pipeline now keeps a
// dense slice indexed by the MaxBatch-bounded computed count.
var memoSink float64

func BenchmarkServiceMemoMap(b *testing.B) {
	m := make(map[int]float64, 32)
	for c := 1; c <= 32; c++ {
		m[c] = float64(c) * 1e-4
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += m[i&31+1]
	}
	memoSink = s
}

func BenchmarkServiceMemoSlice(b *testing.B) {
	sl := make([]float64, 33)
	for c := 1; c <= 32; c++ {
		sl[c] = float64(c) * 1e-4
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += sl[i&31+1]
	}
	memoSink = s
}
