package serve

import "fmt"

// Request is one inference query in the open-loop stream: which vertex to
// classify and when it arrived (virtual seconds).
type Request struct {
	ID      int
	Vertex  int32
	Arrival float64
}

// DynamicBatcher groups admitted requests into batches: a batch closes when
// it reaches MaxBatch requests or when its oldest request has waited
// WindowSec, whichever comes first — the standard size-or-deadline policy of
// online inference servers. A window of 0 closes every batch immediately
// (no batching delay, batch size 1 unless requests arrive at the same
// instant).
type DynamicBatcher struct {
	maxBatch int
	window   float64
	pending  []Request
}

// NewDynamicBatcher validates the knobs.
func NewDynamicBatcher(maxBatch int, window float64) (*DynamicBatcher, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serve: non-positive max batch %d", maxBatch)
	}
	if window < 0 {
		return nil, fmt.Errorf("serve: negative batch window %v", window)
	}
	return &DynamicBatcher{maxBatch: maxBatch, window: window}, nil
}

// Pending returns the number of requests waiting in the open batch.
func (b *DynamicBatcher) Pending() int { return len(b.pending) }

// Deadline returns the close deadline of the open batch, or false when no
// batch is open.
func (b *DynamicBatcher) Deadline() (float64, bool) {
	if len(b.pending) == 0 {
		return 0, false
	}
	return b.pending[0].Arrival + b.window, true
}

// Add appends a request (arrivals must be non-decreasing). If r fills the
// batch to MaxBatch, the batch closes immediately at r's arrival time and is
// returned; otherwise it returns nil. Callers must drain CloseExpired up to
// r's arrival before adding.
func (b *DynamicBatcher) Add(r Request) (batch []Request, closeAt float64) {
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		return b.take(), r.Arrival
	}
	return nil, 0
}

// CloseExpired returns the open batch if its deadline has passed by `now`,
// with the deadline as the close time; otherwise nil. Call repeatedly until
// it returns nil (each admitted request can open a new batch).
func (b *DynamicBatcher) CloseExpired(now float64) (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open || dl > now {
		return nil, 0
	}
	return b.take(), dl
}

// Flush closes the open batch at its deadline regardless of current time
// (end of stream: the window will expire with no further arrivals).
func (b *DynamicBatcher) Flush() (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open {
		return nil, 0
	}
	return b.take(), dl
}

func (b *DynamicBatcher) take() []Request {
	batch := b.pending
	b.pending = nil
	return batch
}
