package serve

import "fmt"

// Request is one inference query in the open-loop stream: which vertex to
// classify and when it arrived (virtual seconds).
type Request struct {
	ID      int
	Vertex  int32
	Arrival float64
}

// DynamicBatcher groups admitted requests into batches: a batch closes when
// it reaches MaxBatch requests or when its oldest request has waited
// WindowSec, whichever comes first — the standard size-or-deadline policy of
// online inference servers. A window of 0 closes every batch immediately
// (no batching delay, batch size 1 unless requests arrive at the same
// instant).
//
// The batcher optionally carries a per-kind split cut for heterogeneous
// pools: a closed batch whose compute demand is at or under the cut is
// "small" — typically a cache-hot batch whose misses coalesced to a handful
// of vertices — and the router prefers to land it on the host CPU peer,
// which pays no transfer or kernel-launch cost, keeping the accelerators
// free for the batches that amortize their fixed overheads.
type DynamicBatcher struct {
	maxBatch int
	window   float64
	smallCut int
	pending  []Request
	// spare is the other half of take()'s ping-pong: closed batches and the
	// open batch alternate between two retained backing arrays, so the
	// steady state allocates nothing. See the validity contract on take.
	spare []Request
}

// NewDynamicBatcher validates the knobs.
func NewDynamicBatcher(maxBatch int, window float64) (*DynamicBatcher, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serve: non-positive max batch %d", maxBatch)
	}
	if window < 0 {
		return nil, fmt.Errorf("serve: negative batch window %v", window)
	}
	return &DynamicBatcher{maxBatch: maxBatch, window: window}, nil
}

// NewSplitBatcher builds a batcher whose closed batches are additionally
// classified by the per-kind split cut: batches with at most smallCut
// computed targets count as Small. A cut of 0 disables the split.
func NewSplitBatcher(maxBatch int, window float64, smallCut int) (*DynamicBatcher, error) {
	if smallCut < 0 {
		return nil, fmt.Errorf("serve: negative small-batch cut %d", smallCut)
	}
	b, err := NewDynamicBatcher(maxBatch, window)
	if err != nil {
		return nil, err
	}
	b.smallCut = smallCut
	return b, nil
}

// SmallCut returns the per-kind split threshold (0 = split disabled).
func (b *DynamicBatcher) SmallCut() int { return b.smallCut }

// Small reports whether a closed batch with `computed` cache-missing targets
// falls under the per-kind split cut.
func (b *DynamicBatcher) Small(computed int) bool {
	return b.smallCut > 0 && computed <= b.smallCut
}

// Pending returns the number of requests waiting in the open batch.
func (b *DynamicBatcher) Pending() int { return len(b.pending) }

// Deadline returns the close deadline of the open batch, or false when no
// batch is open.
func (b *DynamicBatcher) Deadline() (float64, bool) {
	if len(b.pending) == 0 {
		return 0, false
	}
	return b.pending[0].Arrival + b.window, true
}

// Add appends a request (arrivals must be non-decreasing). If r fills the
// batch to MaxBatch, the batch closes immediately at r's arrival time and is
// returned; otherwise it returns nil. Callers must drain CloseExpired up to
// r's arrival before adding.
func (b *DynamicBatcher) Add(r Request) (batch []Request, closeAt float64) {
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		return b.take(), r.Arrival
	}
	return nil, 0
}

// CloseExpired returns the open batch if its deadline has passed by `now`,
// with the deadline as the close time; otherwise nil. Call repeatedly until
// it returns nil (each admitted request can open a new batch).
func (b *DynamicBatcher) CloseExpired(now float64) (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open || dl > now {
		return nil, 0
	}
	return b.take(), dl
}

// Flush closes the open batch at its deadline regardless of current time
// (end of stream: the window will expire with no further arrivals).
func (b *DynamicBatcher) Flush() (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open {
		return nil, 0
	}
	return b.take(), dl
}

// take closes the open batch, swapping in the spare backing array for the
// next one. The returned slice is reused as the open batch after the *next*
// close — valid until then. The serving loop dispatches each batch
// synchronously before touching the batcher again, so it never observes the
// reuse; callers that retain a batch must copy it.
func (b *DynamicBatcher) take() []Request {
	batch := b.pending
	b.pending = b.spare[:0]
	b.spare = batch
	return batch
}
