package serve

import (
	"fmt"
	"math"
)

// Request is one inference query in the open-loop stream: which vertex to
// classify, when it arrived (virtual seconds), its SLO class, and the
// workload cohort that generated it.
type Request struct {
	ID      int
	Vertex  int32
	Arrival float64
	Class   SLOClass
	Cohort  uint8
}

// Formation policy names.
const (
	FormationFCFS     = "fcfs"
	FormationPriority = "priority"
	FormationSJF      = "sjf"
)

// ParseFormation normalizes a batch-formation policy name ("" → fcfs).
func ParseFormation(name string) (string, error) {
	switch name {
	case "", FormationFCFS:
		return FormationFCFS, nil
	case FormationPriority, "priority-fcfs":
		return FormationPriority, nil
	case FormationSJF, "sjf-predicted":
		return FormationSJF, nil
	}
	return "", fmt.Errorf("serve: unknown formation policy %q (want fcfs, priority, or sjf)", name)
}

// FormationPolicy shapes batch formation behind the batcher's
// size-or-deadline contract: it prices the open pool's close deadline
// incrementally as members join — never later than the oldest arrival plus
// the window — and arranges a closed batch's dispatch order. The batcher
// clamps the deadline to the newest member's arrival, so a policy that
// pulls the deadline in can never close a batch before a request it
// contains arrived.
type FormationPolicy interface {
	Name() string
	// PoolDeadline updates the open pool's close deadline after r joined:
	// prev is the deadline before r (+Inf for a fresh pool) and size the
	// pool size including r.
	PoolDeadline(prev float64, r Request, size int, window float64) float64
	// Order arranges a closed batch into dispatch order, in place.
	Order(batch []Request)
}

// fcfsFormation is the default policy and the pre-formation batcher's exact
// behavior: the pool closes when its oldest member has waited the full
// window, in arrival order.
type fcfsFormation struct{}

func (fcfsFormation) Name() string { return FormationFCFS }

func (fcfsFormation) PoolDeadline(prev float64, r Request, size int, window float64) float64 {
	if size == 1 {
		return r.Arrival + window
	}
	return prev
}

func (fcfsFormation) Order([]Request) {}

// classWindowWeight scales the batching window per SLO class: interactive
// requests tolerate only a quarter of the window, so their presence pulls a
// mixed batch's close forward; standard and bulk wait the full window. All
// weights are ≤ 1, keeping WindowSec the worst-case batching delay.
func classWindowWeight(c SLOClass) float64 {
	if c == ClassInteractive {
		return 0.25
	}
	return 1
}

// priorityFormation is priority-FCFS: each member prices its own
// class-weighted deadline and the pool closes at the earliest one, so an
// interactive arrival cuts a mixed batch's batching delay to a quarter of
// the window; members dispatch in (class, arrival) order.
type priorityFormation struct{}

func (priorityFormation) Name() string { return FormationPriority }

func (priorityFormation) PoolDeadline(prev float64, r Request, size int, window float64) float64 {
	d := r.Arrival + window*classWindowWeight(r.Class)
	if size == 1 || d < prev {
		return d
	}
	return prev
}

func (priorityFormation) Order(batch []Request) { sortByClass(batch) }

// sortByClass insertion-sorts a batch by (class, arrival, ID). Batches are
// MaxBatch-bounded and arrive nearly sorted, and sort.Slice would allocate
// on the zero-alloc dispatch path.
func sortByClass(batch []Request) {
	for i := 1; i < len(batch); i++ {
		r := batch[i]
		j := i - 1
		for j >= 0 && classLess(r, batch[j]) {
			batch[j+1] = batch[j]
			j--
		}
		batch[j+1] = r
	}
}

func classLess(a, b Request) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// sjfFormation is shortest-job-first by predicted service: the pool's close
// deadline is the oldest arrival plus whatever window remains after the
// predicted service time of the pool as a batch. Cheap pools wait the full
// window to fill; a pool already predicted expensive stops accumulating
// work, trading mean batch size for tail latency.
type sjfFormation struct {
	svc   func(size int) float64 // predicted batch service for `size` targets
	first float64                // oldest arrival of the open pool
}

func (f *sjfFormation) Name() string { return FormationSJF }

func (f *sjfFormation) PoolDeadline(prev float64, r Request, size int, window float64) float64 {
	if size == 1 {
		f.first = r.Arrival
	}
	d := window - f.svc(size)
	if d < 0 {
		d = 0
	}
	return f.first + d
}

func (f *sjfFormation) Order([]Request) {}

// DynamicBatcher groups admitted requests into batches: a batch closes when
// it reaches MaxBatch requests or when its formation deadline passes,
// whichever comes first — the standard size-or-deadline policy of online
// inference servers. Under the default FCFS formation the deadline is the
// oldest request's arrival plus WindowSec; other formation policies may
// pull the deadline in (never push it out), so WindowSec stays the
// worst-case batching delay. A window of 0 closes every batch immediately
// (no batching delay, batch size 1 unless requests arrive at the same
// instant).
//
// The batcher optionally carries a per-kind split cut for heterogeneous
// pools: a closed batch whose compute demand is at or under the cut is
// "small" — typically a cache-hot batch whose misses coalesced to a handful
// of vertices — and the router prefers to land it on the host CPU peer,
// which pays no transfer or kernel-launch cost, keeping the accelerators
// free for the batches that amortize their fixed overheads.
type DynamicBatcher struct {
	maxBatch  int
	window    float64
	smallCut  int
	formation FormationPolicy
	// deadline is the open pool's close deadline under the formation policy,
	// maintained incrementally by Add (undefined while pending is empty).
	deadline float64
	pending  []Request
	// spare is the other half of take()'s ping-pong: closed batches and the
	// open batch alternate between two retained backing arrays, so the
	// steady state allocates nothing. See the validity contract on take.
	spare []Request
}

// NewDynamicBatcher validates the knobs.
func NewDynamicBatcher(maxBatch int, window float64) (*DynamicBatcher, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serve: non-positive max batch %d", maxBatch)
	}
	if window < 0 {
		return nil, fmt.Errorf("serve: negative batch window %v", window)
	}
	return &DynamicBatcher{maxBatch: maxBatch, window: window, formation: fcfsFormation{}}, nil
}

// NewSplitBatcher builds a batcher whose closed batches are additionally
// classified by the per-kind split cut: batches with at most smallCut
// computed targets count as Small. A cut of 0 disables the split.
func NewSplitBatcher(maxBatch int, window float64, smallCut int) (*DynamicBatcher, error) {
	if smallCut < 0 {
		return nil, fmt.Errorf("serve: negative small-batch cut %d", smallCut)
	}
	b, err := NewDynamicBatcher(maxBatch, window)
	if err != nil {
		return nil, err
	}
	b.smallCut = smallCut
	return b, nil
}

// SetFormation selects the batch-formation policy by name; the sjf policy
// needs a predicted-service function over the batch size (the server wires
// the pool's dense ServiceSec memo). Must be called before any request is
// added.
func (b *DynamicBatcher) SetFormation(name string, svc func(size int) float64) error {
	parsed, err := ParseFormation(name)
	if err != nil {
		return err
	}
	if len(b.pending) > 0 {
		return fmt.Errorf("serve: cannot change formation with a batch open")
	}
	switch parsed {
	case FormationPriority:
		b.formation = priorityFormation{}
	case FormationSJF:
		if svc == nil {
			return fmt.Errorf("serve: sjf formation needs a service predictor")
		}
		b.formation = &sjfFormation{svc: svc}
	default:
		b.formation = fcfsFormation{}
	}
	return nil
}

// Formation returns the active formation policy's name.
func (b *DynamicBatcher) Formation() string { return b.formation.Name() }

// SmallCut returns the per-kind split threshold (0 = split disabled).
func (b *DynamicBatcher) SmallCut() int { return b.smallCut }

// Small reports whether a closed batch with `computed` cache-missing targets
// falls under the per-kind split cut.
func (b *DynamicBatcher) Small(computed int) bool {
	return b.smallCut > 0 && computed <= b.smallCut
}

// Pending returns the number of requests waiting in the open batch.
func (b *DynamicBatcher) Pending() int { return len(b.pending) }

// Deadline returns the close deadline of the open batch, or false when no
// batch is open. The policy deadline is clamped to the newest member's
// arrival: a policy that pulls the deadline in as the pool grows (sjf) must
// never close a batch before a request it contains arrived.
func (b *DynamicBatcher) Deadline() (float64, bool) {
	if len(b.pending) == 0 {
		return 0, false
	}
	dl := b.deadline
	if last := b.pending[len(b.pending)-1].Arrival; dl < last {
		dl = last
	}
	return dl, true
}

// Add appends a request (arrivals must be non-decreasing). If r fills the
// batch to MaxBatch, the batch closes immediately at r's arrival time and is
// returned; otherwise it returns nil. Callers must drain CloseExpired up to
// r's arrival before adding.
func (b *DynamicBatcher) Add(r Request) (batch []Request, closeAt float64) {
	prev := b.deadline
	if len(b.pending) == 0 {
		prev = math.Inf(1)
	}
	b.pending = append(b.pending, r)
	b.deadline = b.formation.PoolDeadline(prev, r, len(b.pending), b.window)
	if len(b.pending) >= b.maxBatch {
		return b.take(), r.Arrival
	}
	return nil, 0
}

// CloseExpired returns the open batch if its deadline has passed by `now`,
// with the deadline as the close time; otherwise nil. Call repeatedly until
// it returns nil (each admitted request can open a new batch).
func (b *DynamicBatcher) CloseExpired(now float64) (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open || dl > now {
		return nil, 0
	}
	return b.take(), dl
}

// Flush closes the open batch at its deadline regardless of current time
// (end of stream: the window will expire with no further arrivals).
func (b *DynamicBatcher) Flush() (batch []Request, closeAt float64) {
	dl, open := b.Deadline()
	if !open {
		return nil, 0
	}
	return b.take(), dl
}

// take closes the open batch in formation order, swapping in the spare
// backing array for the next one. The returned slice is reused as the open
// batch after the *next* close — valid until then. The serving loop
// dispatches each batch synchronously before touching the batcher again, so
// it never observes the reuse; callers that retain a batch must copy it.
func (b *DynamicBatcher) take() []Request {
	batch := b.pending
	b.pending = b.spare[:0]
	b.spare = batch
	b.formation.Order(batch)
	return batch
}
