package serve

import "testing"

// Regression for the floor-biased percentile: the old rank int(p·(n-1))
// truncated toward the optimistic side, so small-sample tails under-read —
// the "p95" of 10 samples was the rank-9 sample (the p88). Nearest-rank is
// the ⌈p·n⌉-th smallest sample; every expected value below is hand-computed
// and the 10-sample p95/p99 rows fail against the old code.
func TestPercentileNearestRank(t *testing.T) {
	three := []float64{10, 20, 30}
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	hundred := make([]float64, 100)
	for i := range hundred {
		hundred[i] = float64(i + 1)
	}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		// 3 samples: ⌈0.5·3⌉=2nd, ⌈0.95·3⌉=3rd, ⌈0.99·3⌉=3rd.
		{"n3 p50", three, 0.50, 20},
		{"n3 p95", three, 0.95, 30}, // old code: rank int(0.95·2)=1 → 20
		{"n3 p99", three, 0.99, 30},
		{"n3 p0", three, 0, 10},
		{"n3 p100", three, 1, 30},
		// 10 samples: ⌈5⌉=5th, ⌈9⌉=9th, ⌈9.5⌉=10th, ⌈9.9⌉=10th.
		{"n10 p50", ten, 0.50, 5},
		{"n10 p90", ten, 0.90, 9},
		{"n10 p95", ten, 0.95, 10}, // old code: int(0.95·9)=8 → 9
		{"n10 p99", ten, 0.99, 10}, // old code: int(0.99·9)=8 → 9
		// 100 samples: the two ranks agree at round percentiles — the bias
		// is a small-sample effect.
		{"n100 p50", hundred, 0.50, 50},
		{"n100 p95", hundred, 0.95, 95},
		{"n100 p99", hundred, 0.99, 99},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile = %v, want %v", c.name, got, c.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty sample: percentile = %v, want 0", got)
	}
}

// The Jain index over per-class goodput attainment: equal attainment is 1,
// one-class-takes-all over n active classes is 1/n.
func TestJainFairness(t *testing.T) {
	var s Stats
	s.PerClass[ClassInteractive] = ClassStats{Offered: 100, Served: 80}
	s.PerClass[ClassStandard] = ClassStats{Offered: 200, Served: 160}
	s.summarizePerClass(nil, nil)
	if s.ActiveClasses != 2 {
		t.Fatalf("active classes = %d, want 2", s.ActiveClasses)
	}
	if s.JainFairness != 1 {
		t.Fatalf("equal attainment: Jain = %v, want 1", s.JainFairness)
	}
	var u Stats
	u.PerClass[ClassInteractive] = ClassStats{Offered: 100, Served: 100}
	u.PerClass[ClassBulk] = ClassStats{Offered: 100, Served: 0}
	u.summarizePerClass(nil, nil)
	if u.JainFairness != 0.5 {
		t.Fatalf("one class starved of two: Jain = %v, want 0.5", u.JainFairness)
	}
}
