package serve

import (
	"testing"

	"repro/internal/hw"
)

// Regression for the kind-attribution bug: dispatch used to push every
// completion of a batch — cache hits included — onto the computed batch's
// device-kind heap, so a hit-heavy batch routed to an FPGA counted requests
// the cache had already answered against the FPGA's SetKindCap share and
// tripped KindSaturated. Hits are answered by the host: they must land on
// the CPU heap, leaving only the computed requests on the routed kind.
func TestDispatchHitsAttributedToHost(t *testing.T) {
	ds, m := testSetup(t)
	cfg := baseConfig(ds, m)
	cfg.CacheSize = 256
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.pool {
		if w.pipe.Device().Kind != hw.FPGA {
			t.Fatalf("fixture assumption broken: worker bound to %v, want an FPGA-only pool",
				w.pipe.Device().Kind)
		}
	}

	// Batch 1: eight distinct misses — computed on an FPGA, which publishes
	// their embeddings into the cache.
	var batch1 []Request
	for v := 0; v < 8; v++ {
		batch1 = append(batch1, Request{ID: v, Vertex: int32(v)})
	}
	if err := s.dispatch(batch1, 1e-4); err != nil {
		t.Fatal(err)
	}
	done1 := s.lastCompletion
	if got := s.admission.KindInflight(hw.FPGA); got != 8 {
		t.Fatalf("computed batch left %d in flight on the FPGA, want 8", got)
	}
	if got := s.admission.KindInflight(hw.CPU); got != 0 {
		t.Fatalf("all-miss batch left %d in flight on the CPU, want 0", got)
	}

	// Batch 2 closes after batch 1 completed: twelve cache hits plus one
	// fresh miss. Only the miss is the FPGA's work.
	closeAt2 := done1 + 1.0
	var batch2 []Request
	for i := 0; i < 12; i++ {
		batch2 = append(batch2, Request{ID: 100 + i, Vertex: int32(i % 8), Arrival: done1 + 0.5})
	}
	batch2 = append(batch2, Request{ID: 200, Vertex: 100, Arrival: done1 + 0.5})
	s.admission.SetKindCap(hw.FPGA, 4)
	if err := s.dispatch(batch2, closeAt2); err != nil {
		t.Fatal(err)
	}
	if got := s.admission.KindInflight(hw.CPU); got != 12 {
		t.Fatalf("hit completions on the CPU heap = %d, want 12 (old code attributed them to the FPGA)", got)
	}
	// Probe between batch 1's completion and batch 2's: batch 1 has drained,
	// the hits have not completed yet, and the FPGA must hold only the one
	// computed request — under the old attribution it held all 13 and
	// saturated its cap of 4.
	probe := closeAt2 - 0.25
	if s.admission.KindSaturated(hw.FPGA, probe) {
		t.Fatal("hit-heavy batch tripped KindSaturated on the FPGA it was routed to")
	}
	if got := s.admission.KindInflight(hw.FPGA); got != 1 {
		t.Fatalf("FPGA in-flight after probe = %d, want only the computed request", got)
	}
}
