package cluster

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// The ring all-reduce must compute the exact element-wise average, for any
// node count and vector length (including vectors shorter than the ring).
func TestRingAllReduceAverages(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, m := range []int{1, 3, 64, 1000} {
			vecs := make([][]float32, n)
			want := make([]float32, m)
			for r := range vecs {
				vecs[r] = make([]float32, m)
				for i := range vecs[r] {
					vecs[r][i] = float32(r*m + i)
					want[i] += vecs[r][i] / float32(n)
				}
			}
			rg := newRing(n, hw.Ethernet100G())
			var wg sync.WaitGroup
			secs := make([]float64, n)
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var err error
					secs[r], err = rg.allReduce(r, vecs[r])
					if err != nil {
						t.Errorf("rank %d: %v", r, err)
					}
				}(r)
			}
			wg.Wait()
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(float64(vecs[r][i]-want[i])) > 1e-3 {
						t.Fatalf("n=%d m=%d rank %d elem %d: got %v want %v",
							n, m, r, i, vecs[r][i], want[i])
					}
				}
				if n > 1 && secs[r] <= 0 {
					t.Fatalf("n=%d rank %d charged no network time", n, r)
				}
				if n == 1 && secs[r] != 0 {
					t.Fatalf("single rank charged %v", secs[r])
				}
			}
		}
	}
}

// A dead peer must unblock the survivors with errRingAborted instead of
// deadlocking them — the failure mode of a fleet whose node dies mid-epoch.
func TestRingAbortReleasesSurvivors(t *testing.T) {
	const n = 4
	rg := newRing(n, hw.Ethernet100G())
	errs := make(chan error, n-1)
	for r := 1; r < n; r++ {
		go func(r int) {
			vec := make([]float32, 64)
			_, err := rg.allReduce(r, vec)
			errs <- err
		}(r)
	}
	rg.fail() // rank 0 dies instead of joining
	for i := 0; i < n-1; i++ {
		if err := <-errs; err != errRingAborted {
			t.Fatalf("survivor got %v, want errRingAborted", err)
		}
	}
}

func multiDataset(t *testing.T, seed uint64) *datagen.Dataset {
	t.Helper()
	spec := datagen.Spec{Name: "multi-test", NumVertices: 3000, NumEdges: 18000,
		FeatDims: []int{16, 16, 5}, TrainNodes: 1500}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func multiConfig(t *testing.T, nodes int, ds *datagen.Dataset) MultiNodeConfig {
	t.Helper()
	plat := hw.CPUFPGAPlatform()
	plat.Accels = plat.Accels[:2]
	return MultiNodeConfig{
		Nodes: nodes,
		Net:   hw.Ethernet100G(),
		Node: core.Config{
			Plat:      plat,
			Data:      ds,
			Model:     gnn.Config{Kind: gnn.SAGE, Dims: []int{16, 16, 5}},
			LR:        0.3,
			BatchSize: 64,
			Fanouts:   []int{5, 5},
			Hybrid:    true,
			TFP:       true,
			DRM:       true,
			Seed:      7,
		},
	}
}

func TestMultiNodeConfigValidation(t *testing.T) {
	ds := multiDataset(t, 1)
	cfg := multiConfig(t, 0, ds)
	if _, err := NewMultiNode(cfg); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	cfg = multiConfig(t, 4, ds)
	cfg.Net = hw.Link{}
	if _, err := NewMultiNode(cfg); err == nil {
		t.Fatal("expected error for missing network")
	}
	cfg = multiConfig(t, 2, ds)
	cfg.Node.Locator = &shardLocator{}
	if _, err := NewMultiNode(cfg); err == nil {
		t.Fatal("expected error for pre-wired locator")
	}
	cfg = multiConfig(t, 2, ds)
	cfg.Plats = []hw.Platform{cfg.Node.Plat}
	if _, err := NewMultiNode(cfg); err == nil {
		t.Fatal("expected error for platform/node count mismatch")
	}
	cfg = multiConfig(t, 2, ds)
	cfg.Plats = []hw.Platform{cfg.Node.Plat, hw.CPUFPGAPlatform()} // 2 vs 4 accels
	if _, err := NewMultiNode(cfg); err == nil {
		t.Fatal("expected error for unequal per-node accelerator counts")
	}
}

// A heterogeneous cluster: one CPU+GPU+FPGA node next to a CPU+FPGA node.
// The ring protocol is platform-blind, so the fleet must stay bit-identical
// across nodes while each node's virtual clock prices its own hardware.
func TestMultiNodeHeterogeneousNodes(t *testing.T) {
	mixed, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	homog := hw.CPUFPGAPlatform()
	homog.Accels = homog.Accels[:2]
	cfg := multiConfig(t, 2, multiDataset(t, 9))
	cfg.Plats = []hw.Platform{mixed, homog}
	m, err := NewMultiNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last *MultiNodeStats
	for i := 0; i < 2; i++ {
		if last, err = m.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.ReplicasInSync(); d != 0 {
		t.Fatalf("heterogeneous fleet diverged by %v", d)
	}
	if last.Loss <= 0 || last.VirtualSec <= 0 {
		t.Fatalf("implausible stats: %+v", last)
	}
	// Node 0 hosts the only FPGA-kind trainer driven through the dataflow
	// backend on a GPU-sibling fleet; both nodes must have executed.
	for i, st := range last.PerNode {
		if st.Iterations != last.Iterations {
			t.Fatalf("node %d ran %d iterations, fleet ran %d", i, st.Iterations, last.Iterations)
		}
	}
	if last.PerNode[0].FPGA.AggCycles <= 0 {
		t.Fatal("mixed node's FPGA dataflow backend did not execute")
	}
	if last.PerNode[1].FPGA.AggCycles <= 0 {
		t.Fatal("homogeneous FPGA node's dataflow backend did not execute")
	}
}

// The headline protocol property: 4 executed shards with real gradient
// exchange stay bit-identical across nodes AND inside each node's fleet,
// converge, and pay real network charges on the virtual clock.
func TestMultiNodeExecutesAndStaysInSync(t *testing.T) {
	m, err := NewMultiNode(multiConfig(t, 4, multiDataset(t, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if m.ReplicasInSync() != 0 {
		t.Fatal("fleet diverged at initialisation")
	}
	if cut := m.EdgeCut(); cut <= 0 || cut >= 1 {
		t.Fatalf("degenerate measured edge cut %v", cut)
	}
	var first, last *MultiNodeStats
	for i := 0; i < 6; i++ {
		st, err := m.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st
		}
		last = st
	}
	if d := m.ReplicasInSync(); d != 0 {
		t.Fatalf("fleet diverged by %v — cross-node synchronous SGD violated", d)
	}
	if last.Loss >= first.Loss*0.9 {
		t.Fatalf("sharded training did not converge: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if last.NetFetchSec <= 0 || last.NetSyncSec <= 0 || last.RemoteRows <= 0 {
		t.Fatalf("4-node epoch paid no network charges: %+v", last)
	}
	if last.VirtualSec <= 0 || last.MTEPS <= 0 {
		t.Fatalf("virtual clock stalled: %+v", last)
	}
	for i, st := range last.PerNode {
		if st.Iterations != last.Iterations {
			t.Fatalf("node %d ran %d iterations, fleet %d — ring would deadlock",
				i, st.Iterations, last.Iterations)
		}
	}
}

// A 1-node MultiNode is the degenerate case: identical numerics and identical
// virtual clock to a plain single-node engine (the network layers must add
// exactly nothing).
func TestOneNodeMatchesPlainEngine(t *testing.T) {
	ds := multiDataset(t, 3)
	cfg := multiConfig(t, 1, ds)
	cfg.Node.DRM = false
	m, err := NewMultiNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.NewEngine(func() core.Config {
		c := cfg.Node
		c.Data = multiDataset(t, 3) // fresh copy: same seed → identical dataset
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ms, err := m.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		ps, err := plain.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		// Trainer-arrival order in the DONE/ACK synchronizer makes the
		// float summation order (and so the last few bits of the loss)
		// run-dependent; the virtual clock only takes maxima and is exact.
		if math.Abs(ms.Loss-ps.Loss) > 1e-6 {
			t.Fatalf("epoch %d: loss %v vs plain %v", i, ms.Loss, ps.Loss)
		}
		if ms.VirtualSec != ps.VirtualSec {
			t.Fatalf("epoch %d: virtual clock %v vs plain %v", i, ms.VirtualSec, ps.VirtualSec)
		}
		if ms.NetFetchSec != 0 || ms.NetSyncSec != 0 || ms.RemoteRows != 0 {
			t.Fatalf("1-node run paid network charges: %+v", ms)
		}
	}
}

// The acceptance gate: the executed multi-node slowdown (per-iteration
// virtual time at N nodes over 1 node) must land in a tolerance band around
// the analytic cluster model's prediction for the same configuration. This
// is what turns the repo's largest untested claim — multi-node communication
// erosion — into a measured property.
func TestExecutedSlowdownMatchesAnalytic(t *testing.T) {
	perIter := func(nodes int) (float64, *MultiNodeStats, *MultiNode) {
		ds := multiDataset(t, 4)
		cfg := multiConfig(t, nodes, ds)
		cfg.Node.DRM = false // compare against the static analytic assignment
		m, err := NewMultiNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Epoch 1 fills the pipeline; measure epoch 2's steady state.
		if _, err := m.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		st, err := m.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return st.VirtualSec / float64(st.Iterations), st, m
	}
	exec1, _, _ := perIter(1)
	execN, stN, mN := perIter(4)
	execSlow := execN / exec1

	pred, err := EpochTime(mN.Analytic())
	if err != nil {
		t.Fatal(err)
	}
	predSlow := PredictedSlowdown(pred, exec1)

	if execSlow < 1 {
		t.Fatalf("multi-node executed FASTER per iteration (%.3fx) — network charges missing", execSlow)
	}
	if predSlow <= 1 {
		t.Fatalf("analytic model predicts no erosion (%.3fx)", predSlow)
	}
	// The executed all-reduce must reproduce the analytic ring cost (same
	// primitive, chunk rounding aside).
	gotSync := stN.NetSyncSec / float64(stN.Iterations)
	if gotSync < 0.5*pred.GlobalSync || gotSync > 2*pred.GlobalSync {
		t.Fatalf("executed all-reduce %.3gs/iter vs analytic %.3gs", gotSync, pred.GlobalSync)
	}
	// Remote fetches: the analytic side prices the expected batch through
	// the edge cut, the executed side counts actually-remote rows.
	gotFetch := stN.NetFetchSec / float64(stN.Iterations)
	if gotFetch < 0.3*pred.RemoteFetch || gotFetch > 3*pred.RemoteFetch {
		t.Fatalf("executed remote fetch %.3gs/iter vs analytic %.3gs", gotFetch, pred.RemoteFetch)
	}
	ratio := execSlow / predSlow
	t.Logf("slowdown: executed %.3fx, analytic %.3fx (ratio %.3f; cut %.2f; sync %.3g/%.3g fetch %.3g/%.3g)",
		execSlow, predSlow, ratio, mN.EdgeCut(), gotSync, pred.GlobalSync, gotFetch, pred.RemoteFetch)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("executed slowdown %.3fx outside tolerance band of analytic %.3fx",
			execSlow, predSlow)
	}
}
