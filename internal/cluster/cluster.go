// Package cluster extends HyScale-GNN to a multi-node platform — the
// paper's §VIII future work ("define a more general protocol for training
// GNN models on distributed and heterogeneous architectures"). The paper
// stops at one node because its protocol has no inter-node story; this
// package adds the two costs that story must pay, with the same analytic
// style as the rest of the repository:
//
//  1. remote feature fetches — the graph is partitioned across nodes
//     (METIS-style edge cut), so a fraction of every mini-batch's input
//     vertices live on other nodes and their features cross the network;
//  2. global gradient synchronization — the per-node all-reduce of paper
//     Eq. 13 gains a ring all-reduce across nodes.
//
// The model reproduces the trade-off the paper's §VII uses to justify
// single-node training: with realistic edge cuts, inter-node communication
// erodes most of the added compute, which is DistDGL's observed behaviour.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// Config describes a homogeneous cluster of HyScale nodes.
type Config struct {
	Nodes int
	Plat  hw.Platform        // per-node platform
	Work  perfmodel.Workload // global workload
	Net   hw.Link            // inter-node link (per-node NIC)
	// CutFraction is the fraction of a mini-batch's input vertices whose
	// features live on a remote partition. 0 on a single node; 0.2–0.4 is
	// typical for METIS partitions of power-law graphs.
	CutFraction float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: %d nodes", c.Nodes)
	}
	if c.CutFraction < 0 || c.CutFraction > 1 {
		return fmt.Errorf("cluster: cut fraction %v outside [0,1]", c.CutFraction)
	}
	if c.Nodes > 1 && c.Net.EffGBs() <= 0 {
		return fmt.Errorf("cluster: multi-node needs a network link")
	}
	return c.Plat.Validate()
}

// Breakdown reports the per-iteration cost components.
type Breakdown struct {
	LocalIter   float64 // single-node pipeline bottleneck (Eq. 6)
	RemoteFetch float64 // cut-edge feature traffic over the NIC
	GlobalSync  float64 // ring all-reduce across nodes
	IterTime    float64
	Iterations  int
	EpochSec    float64
}

// EpochTime evaluates one epoch on the cluster.
func EpochTime(cfg Config) (*Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := perfmodel.New(cfg.Plat, cfg.Work)
	if err != nil {
		return nil, err
	}
	assign := m.InitialAssignment(true)
	local := m.IterTime(assign)

	// Remote features: cut × (1 − 1/nodes) of every node's per-iteration
	// input rows cross its NIC (both requests in and responses out share it;
	// charge the response volume).
	var remote float64
	if cfg.Nodes > 1 {
		var rows float64
		if assign.CPUBatch > 0 {
			rows += m.Work.SizesFor(assign.CPUBatch).VL[0]
		}
		for _, b := range assign.AccelBatch {
			if b > 0 {
				rows += m.Work.SizesFor(b).VL[0]
			}
		}
		frac := cfg.CutFraction * (1 - 1/float64(cfg.Nodes))
		// The NIC carries the same wire format as PCIe (int8 when the
		// quantized-transfer extension is on); RemoteFetchSec defaults to
		// float32 when the workload leaves TransferBytesPerFeat zero.
		remote = perfmodel.RemoteFetchSec(cfg.Net, rows*frac,
			cfg.Work.Spec.FeatDims[0], cfg.Work.TransferBytesPerFeat)
	}

	// Global sync: ring all-reduce moves 2×(n−1)/n of the model per node.
	gsync := perfmodel.RingAllReduceSec(cfg.Net, modelBytes(cfg.Work), cfg.Nodes)

	iter := math.Max(local, remote) + gsync
	totalBatch := float64(assign.TotalBatch() * cfg.Nodes)
	iters := int(math.Ceil(float64(cfg.Work.Spec.TrainNodes) / totalBatch))
	return &Breakdown{
		LocalIter: local, RemoteFetch: remote, GlobalSync: gsync,
		IterTime: iter, Iterations: iters,
		EpochSec: float64(iters) * iter,
	}, nil
}

// modelBytes is the weight footprint of the workload's model (Eq. 13
// numerator).
func modelBytes(w perfmodel.Workload) float64 {
	dims := w.Spec.FeatDims
	var params float64
	for l := 0; l < w.Spec.Layers(); l++ {
		fin := float64(dims[l])
		if w.Model == gnn.SAGE { // concat doubles the update input
			fin *= 2
		}
		params += fin*float64(dims[l+1]) + float64(dims[l+1])
	}
	return params * 4
}

// PredictedSlowdown converts an analytic Breakdown into the multi-node
// slowdown it implies over a given single-node per-iteration time: remote
// fetches overlap the local pipeline (Eq. 6 extended by one stage) and the
// global all-reduce is serial. The local baseline is supplied by the caller
// because the analytic local model deliberately excludes the runtime
// overheads (framework, kernel launch, flush) the executing engine charges —
// the §VI-C error sources — while the *network* components are directly
// comparable between prediction and execution.
func PredictedSlowdown(b *Breakdown, localIterSec float64) float64 {
	if localIterSec <= 0 {
		return math.NaN()
	}
	return (math.Max(localIterSec, b.RemoteFetch) + b.GlobalSync) / localIterSec
}

// Scaling sweeps node counts and returns epoch times, for the
// strong-scaling study of the extension.
func Scaling(cfg Config, counts []int) ([]*Breakdown, error) {
	out := make([]*Breakdown, 0, len(counts))
	for _, n := range counts {
		c := cfg
		c.Nodes = n
		if n == 1 {
			c.CutFraction = 0
		}
		b, err := EpochTime(c)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
