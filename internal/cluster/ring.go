package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gnn"
	"repro/internal/hw"
)

// ring is the executed counterpart of perfmodel.RingAllReduceSec: a chunked
// ring all-reduce over in-process channels. Each node goroutine calls
// allReduce once per training iteration; the 2·(n−1) message steps move real
// gradient chunks between neighbours, and each step charges the inter-node
// link's transfer time on the caller's virtual clock.
type ring struct {
	n     int
	link  hw.Link
	inbox []chan []float32 // inbox[r] receives from rank (r−1+n)%n

	// abort unblocks every rank when one node dies mid-epoch: without it a
	// single failure would leave the survivors waiting forever on a message
	// that never comes. A failed ring stays failed — the fleet is done.
	abort     chan struct{}
	abortOnce sync.Once

	// Dynamic membership (survivor re-ring), installed by enableMembership
	// only when a fault schedule scripts cluster events; without it the ring
	// runs the legacy fixed-membership allReduce verbatim. Ranks synchronise
	// on a round barrier: a rank that fail-stops leaves at a round boundary,
	// the survivors rebuild the ring over the live ranks and continue. The
	// barrier is exact — a round advances iff every live rank has entered it
	// — so a departure can never strand a message in an inbox: every message
	// sent in round k is consumed in round k.
	dynamic bool
	mu      sync.Mutex
	cond    *sync.Cond
	alive   []bool
	liveN   int
	entered int
	round   int
	view    []int // live ranks, ascending — the round's ring order
	aborted bool
	// degrade maps a ring round to the link-degradation factor scripted for
	// it (1 = healthy); nil means never degraded.
	degrade func(iter int) float64
}

// errRingAborted surfaces on the surviving ranks after fail().
var errRingAborted = errors.New("cluster: ring all-reduce aborted (a peer node failed)")

func newRing(n int, link hw.Link) *ring {
	r := &ring{n: n, link: link, inbox: make([]chan []float32, n),
		abort: make(chan struct{})}
	for i := range r.inbox {
		r.inbox[i] = make(chan []float32, 1)
	}
	return r
}

// fail permanently aborts the ring, releasing every blocked rank — including
// ranks waiting on the membership barrier.
func (r *ring) fail() {
	r.abortOnce.Do(func() {
		close(r.abort)
		if r.dynamic {
			r.mu.Lock()
			r.aborted = true
			r.cond.Broadcast()
			r.mu.Unlock()
		}
	})
}

// enableMembership arms the survivor re-ring before any goroutine runs.
func (r *ring) enableMembership(degrade func(iter int) float64) {
	r.dynamic = true
	r.cond = sync.NewCond(&r.mu)
	r.alive = make([]bool, r.n)
	for i := range r.alive {
		r.alive[i] = true
	}
	r.liveN = r.n
	r.view = make([]int, 0, r.n)
	r.rebuildView()
	r.degrade = degrade
}

// rebuildView recomputes the live-rank ring order (callers hold mu).
func (r *ring) rebuildView() {
	r.view = r.view[:0]
	for i, a := range r.alive {
		if a {
			r.view = append(r.view, i)
		}
	}
}

// advanceLocked starts the next round: resets the barrier, rebuilds the live
// view, and wakes every waiter (callers hold mu).
func (r *ring) advanceLocked() {
	r.entered = 0
	r.round++
	r.rebuildView()
	r.cond.Broadcast()
}

// enter blocks until every live rank has entered the current round, then
// returns the round's membership view. The returned slice is shared, not
// copied — safe because the next round cannot advance (and so the view
// cannot be rebuilt) until every rank that read it has re-entered the
// barrier, which happens only after it finished using the view.
func (r *ring) enter() ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return nil, errRingAborted
	}
	myRound := r.round
	r.entered++
	if r.entered == r.liveN {
		r.advanceLocked()
	} else {
		for r.round == myRound && !r.aborted {
			r.cond.Wait()
		}
		if r.aborted {
			return nil, errRingAborted
		}
	}
	return r.view, nil
}

// leave removes a rank from the membership at a round boundary (the rank
// must not have entered the round it is skipping). If every other live rank
// is already waiting on the barrier, the departure is what completes it —
// advance on the leaver's behalf so the survivors are not stranded.
func (r *ring) leave(rank int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive[rank] {
		return
	}
	r.alive[rank] = false
	r.liveN--
	if r.liveN > 0 && r.entered == r.liveN {
		r.advanceLocked()
	}
}

// chunkBounds returns the [lo, hi) range of chunk c when a vector of length
// m is split into n contiguous chunks.
func chunkBounds(m, n, c int) (int, int) {
	return c * m / n, (c + 1) * m / n
}

func mod(a, n int) int { return ((a % n) + n) % n }

// allReduce averages vec element-wise across all n ranks, in place, and
// returns the virtual network seconds this rank spent. All n ranks must call
// it concurrently, once per round, with equal-length vectors.
//
// Scatter-reduce: at step s, rank r sends chunk (r−s) mod n to rank r+1 and
// folds the received chunk (r−s−1) mod n into its own copy; after n−1 steps
// rank r owns the fully reduced chunk (r+1) mod n. All-gather: n−1 more
// steps circulate the reduced chunks until every rank holds all of them.
func (r *ring) allReduce(rank int, vec []float32) (float64, error) {
	n := r.n
	if n <= 1 {
		return 0, nil
	}
	next := r.inbox[mod(rank+1, n)]
	self := r.inbox[rank]
	var sec float64
	send := func(c int) error {
		lo, hi := chunkBounds(len(vec), n, c)
		msg := append([]float32(nil), vec[lo:hi]...)
		select {
		case next <- msg:
		case <-r.abort:
			return errRingAborted
		}
		sec += r.link.TransferSec(float64(len(msg)) * 4)
		return nil
	}
	recv := func() ([]float32, error) {
		select {
		case got := <-self:
			return got, nil
		case <-r.abort:
			return nil, errRingAborted
		}
	}
	for step := 0; step < n-1; step++ { // scatter-reduce
		if err := send(mod(rank-step, n)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), n, mod(rank-step-1, n))
		for i, v := range got {
			vec[lo+i] += v
		}
	}
	for step := 0; step < n-1; step++ { // all-gather
		if err := send(mod(rank-step+1, n)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), n, mod(rank-step, n))
		copy(vec[lo:], got)
	}
	inv := 1 / float32(n)
	for i := range vec {
		vec[i] *= inv
	}
	return sec, nil
}

// allReduceDyn is allReduce over the current membership view: the same
// chunked scatter-reduce + all-gather, but with m = live ranks, chunk
// geometry over positions in the view instead of raw ranks, and the final
// scale 1/m — which is exactly the survivor rescale: after a fail-stop the
// mean is taken over the m nodes that actually contributed gradients. With
// the full fleet alive the view is [0..n), positions equal ranks, and the
// arithmetic is allReduce's bit for bit. iter is the global ring round,
// consulted for scripted link degradation.
func (r *ring) allReduceDyn(rank, iter int, vec []float32) (float64, error) {
	view, err := r.enter()
	if err != nil {
		return 0, err
	}
	m := len(view)
	if m <= 1 {
		return 0, nil
	}
	pos := 0
	for i, rk := range view {
		if rk == rank {
			pos = i
			break
		}
	}
	link := r.link
	if r.degrade != nil {
		link = link.Degraded(r.degrade(iter))
	}
	next := r.inbox[view[mod(pos+1, m)]]
	self := r.inbox[rank]
	var sec float64
	send := func(c int) error {
		lo, hi := chunkBounds(len(vec), m, c)
		msg := append([]float32(nil), vec[lo:hi]...)
		select {
		case next <- msg:
		case <-r.abort:
			return errRingAborted
		}
		sec += link.TransferSec(float64(len(msg)) * 4)
		return nil
	}
	recv := func() ([]float32, error) {
		select {
		case got := <-self:
			return got, nil
		case <-r.abort:
			return nil, errRingAborted
		}
	}
	for step := 0; step < m-1; step++ { // scatter-reduce
		if err := send(mod(pos-step, m)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), m, mod(pos-step-1, m))
		for i, v := range got {
			vec[lo+i] += v
		}
	}
	for step := 0; step < m-1; step++ { // all-gather
		if err := send(mod(pos-step+1, m)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), m, mod(pos-step, m))
		copy(vec[lo:], got)
	}
	inv := 1 / float32(m)
	for i := range vec {
		vec[i] *= inv
	}
	return sec, nil
}

// flattenGrads copies a gradient set into one contiguous vector (the wire
// format of the ring).
func flattenGrads(g *gnn.Gradients) []float32 {
	size := 0
	for i := range g.Weights {
		size += len(g.Weights[i].Data) + len(g.Biases[i].Data)
	}
	vec := make([]float32, 0, size)
	for i := range g.Weights {
		vec = append(vec, g.Weights[i].Data...)
		vec = append(vec, g.Biases[i].Data...)
	}
	return vec
}

// unflattenGrads writes a flat vector back into a gradient set of the same
// shape flattenGrads read from.
func unflattenGrads(vec []float32, g *gnn.Gradients) {
	cursor := 0
	for i := range g.Weights {
		cursor += copy(g.Weights[i].Data, vec[cursor:])
		cursor += copy(g.Biases[i].Data, vec[cursor:])
	}
}

// errNodeFailStop marks a scripted graceful departure: the rank left the
// ring at a round boundary and the survivors continue without it — unlike a
// crash, which aborts the whole ring. RunEpoch treats it as a membership
// change, not a failure of the run.
var errNodeFailStop = errors.New("cluster: node fail-stop (scripted)")

// nodeSync is the core.GradientSync of one shard: it bridges the node's
// local gradient average into the cross-node ring. With a fault schedule
// (dynamic set) it counts ring rounds across epochs and executes the rank's
// scripted fate: a fail-stop leaves the membership before the round, a crash
// errors outright (aborting the ring), and reductions go through the
// survivor-aware allReduceDyn. Without a schedule it is the legacy bridge
// verbatim.
type nodeSync struct {
	rank int
	ring *ring

	dynamic   bool
	iter      int // cumulative ring rounds across epochs, from 0
	failIter  int // leave before this round (-1 = never)
	crashIter int // crash at this round (-1 = never)
	// tap, when set, observes the flattened gradient vector before and after
	// each reduce — the oracle tests' window into the wire format.
	tap func(rank, iter int, vec []float32, post bool)
}

func (s *nodeSync) Reduce(local *gnn.Gradients) (*gnn.Gradients, float64, error) {
	if !s.dynamic {
		vec := flattenGrads(local)
		sec, err := s.ring.allReduce(s.rank, vec)
		if err != nil {
			return nil, sec, err
		}
		unflattenGrads(vec, local)
		return local, sec, nil
	}
	iter := s.iter
	s.iter++
	if s.crashIter >= 0 && iter == s.crashIter {
		return nil, 0, fmt.Errorf("rank %d crashed at iteration %d (scripted fault)", s.rank, iter)
	}
	if s.failIter >= 0 && iter >= s.failIter {
		s.ring.leave(s.rank)
		return nil, 0, fmt.Errorf("rank %d at iteration %d: %w", s.rank, iter, errNodeFailStop)
	}
	vec := flattenGrads(local)
	if s.tap != nil {
		s.tap(s.rank, iter, vec, false)
	}
	sec, err := s.ring.allReduceDyn(s.rank, iter, vec)
	if err != nil {
		return nil, sec, err
	}
	if s.tap != nil {
		s.tap(s.rank, iter, vec, true)
	}
	unflattenGrads(vec, local)
	return local, sec, nil
}
