package cluster

import (
	"errors"
	"sync"

	"repro/internal/gnn"
	"repro/internal/hw"
)

// ring is the executed counterpart of perfmodel.RingAllReduceSec: a chunked
// ring all-reduce over in-process channels. Each node goroutine calls
// allReduce once per training iteration; the 2·(n−1) message steps move real
// gradient chunks between neighbours, and each step charges the inter-node
// link's transfer time on the caller's virtual clock.
type ring struct {
	n     int
	link  hw.Link
	inbox []chan []float32 // inbox[r] receives from rank (r−1+n)%n

	// abort unblocks every rank when one node dies mid-epoch: without it a
	// single failure would leave the survivors waiting forever on a message
	// that never comes. A failed ring stays failed — the fleet is done.
	abort     chan struct{}
	abortOnce sync.Once
}

// errRingAborted surfaces on the surviving ranks after fail().
var errRingAborted = errors.New("cluster: ring all-reduce aborted (a peer node failed)")

func newRing(n int, link hw.Link) *ring {
	r := &ring{n: n, link: link, inbox: make([]chan []float32, n),
		abort: make(chan struct{})}
	for i := range r.inbox {
		r.inbox[i] = make(chan []float32, 1)
	}
	return r
}

// fail permanently aborts the ring, releasing every blocked rank.
func (r *ring) fail() { r.abortOnce.Do(func() { close(r.abort) }) }

// chunkBounds returns the [lo, hi) range of chunk c when a vector of length
// m is split into n contiguous chunks.
func chunkBounds(m, n, c int) (int, int) {
	return c * m / n, (c + 1) * m / n
}

func mod(a, n int) int { return ((a % n) + n) % n }

// allReduce averages vec element-wise across all n ranks, in place, and
// returns the virtual network seconds this rank spent. All n ranks must call
// it concurrently, once per round, with equal-length vectors.
//
// Scatter-reduce: at step s, rank r sends chunk (r−s) mod n to rank r+1 and
// folds the received chunk (r−s−1) mod n into its own copy; after n−1 steps
// rank r owns the fully reduced chunk (r+1) mod n. All-gather: n−1 more
// steps circulate the reduced chunks until every rank holds all of them.
func (r *ring) allReduce(rank int, vec []float32) (float64, error) {
	n := r.n
	if n <= 1 {
		return 0, nil
	}
	next := r.inbox[mod(rank+1, n)]
	self := r.inbox[rank]
	var sec float64
	send := func(c int) error {
		lo, hi := chunkBounds(len(vec), n, c)
		msg := append([]float32(nil), vec[lo:hi]...)
		select {
		case next <- msg:
		case <-r.abort:
			return errRingAborted
		}
		sec += r.link.TransferSec(float64(len(msg)) * 4)
		return nil
	}
	recv := func() ([]float32, error) {
		select {
		case got := <-self:
			return got, nil
		case <-r.abort:
			return nil, errRingAborted
		}
	}
	for step := 0; step < n-1; step++ { // scatter-reduce
		if err := send(mod(rank-step, n)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), n, mod(rank-step-1, n))
		for i, v := range got {
			vec[lo+i] += v
		}
	}
	for step := 0; step < n-1; step++ { // all-gather
		if err := send(mod(rank-step+1, n)); err != nil {
			return sec, err
		}
		got, err := recv()
		if err != nil {
			return sec, err
		}
		lo, _ := chunkBounds(len(vec), n, mod(rank-step, n))
		copy(vec[lo:], got)
	}
	inv := 1 / float32(n)
	for i := range vec {
		vec[i] *= inv
	}
	return sec, nil
}

// flattenGrads copies a gradient set into one contiguous vector (the wire
// format of the ring).
func flattenGrads(g *gnn.Gradients) []float32 {
	size := 0
	for i := range g.Weights {
		size += len(g.Weights[i].Data) + len(g.Biases[i].Data)
	}
	vec := make([]float32, 0, size)
	for i := range g.Weights {
		vec = append(vec, g.Weights[i].Data...)
		vec = append(vec, g.Biases[i].Data...)
	}
	return vec
}

// unflattenGrads writes a flat vector back into a gradient set of the same
// shape flattenGrads read from.
func unflattenGrads(vec []float32, g *gnn.Gradients) {
	cursor := 0
	for i := range g.Weights {
		cursor += copy(g.Weights[i].Data, vec[cursor:])
		cursor += copy(g.Biases[i].Data, vec[cursor:])
	}
}

// nodeSync is the core.GradientSync of one shard: it bridges the node's
// local gradient average into the cross-node ring.
type nodeSync struct {
	rank int
	ring *ring
}

func (s *nodeSync) Reduce(local *gnn.Gradients) (*gnn.Gradients, float64, error) {
	vec := flattenGrads(local)
	sec, err := s.ring.allReduce(s.rank, vec)
	if err != nil {
		return nil, sec, err
	}
	unflattenGrads(vec, local)
	return local, sec, nil
}
