package cluster

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func baseCfg() Config {
	return Config{
		Nodes:       1,
		Plat:        hw.CPUFPGAPlatform(),
		Work:        perfmodel.DefaultWorkload(datagen.OGBNPapers100M, gnn.GCN),
		Net:         hw.Ethernet100G(),
		CutFraction: 0.25,
	}
}

func TestValidate(t *testing.T) {
	c := baseCfg()
	c.Nodes = 0
	if c.Validate() == nil {
		t.Fatal("expected error for 0 nodes")
	}
	c = baseCfg()
	c.CutFraction = 1.5
	if c.Validate() == nil {
		t.Fatal("expected error for cut > 1")
	}
	c = baseCfg()
	c.Nodes = 4
	c.Net = hw.Link{}
	if c.Validate() == nil {
		t.Fatal("expected error for missing network")
	}
}

func TestSingleNodeHasNoNetworkCost(t *testing.T) {
	c := baseCfg()
	c.CutFraction = 0
	b, err := EpochTime(c)
	if err != nil {
		t.Fatal(err)
	}
	if b.RemoteFetch != 0 || b.GlobalSync != 0 {
		t.Fatalf("single node paid network costs: %+v", b)
	}
	if b.EpochSec <= 0 || b.Iterations <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
}

func TestMultiNodePaysCommunication(t *testing.T) {
	c := baseCfg()
	c.Nodes = 4
	b, err := EpochTime(c)
	if err != nil {
		t.Fatal(err)
	}
	if b.RemoteFetch <= 0 || b.GlobalSync <= 0 {
		t.Fatalf("4 nodes should pay network costs: %+v", b)
	}
}

// Strong scaling: more nodes reduce epoch time, but sub-linearly — the
// communication erosion that justifies the paper's single-node thesis.
func TestScalingSublinear(t *testing.T) {
	c := baseCfg()
	counts := []int{1, 2, 4, 8}
	res, err := Scaling(c, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].EpochSec >= res[i-1].EpochSec {
			t.Fatalf("no speedup from %d to %d nodes: %v vs %v",
				counts[i-1], counts[i], res[i-1].EpochSec, res[i].EpochSec)
		}
	}
	// Efficiency at 8 nodes must be clearly below 100%.
	speedup := res[0].EpochSec / res[3].EpochSec
	if speedup >= 7.5 {
		t.Fatalf("8-node speedup %v suspiciously linear despite the edge cut", speedup)
	}
	if speedup < 1.5 {
		t.Fatalf("8-node speedup %v — communication model too punishing", speedup)
	}
}

// A worse partition (higher cut) must never be faster.
func TestCutFractionMonotone(t *testing.T) {
	var prev float64
	for i, cut := range []float64{0.1, 0.3, 0.6, 0.9} {
		c := baseCfg()
		c.Nodes = 4
		c.CutFraction = cut
		b, err := EpochTime(c)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && b.EpochSec < prev {
			t.Fatalf("cut %v faster than smaller cut: %v < %v", cut, b.EpochSec, prev)
		}
		prev = b.EpochSec
	}
}

// Ground the model's CutFraction in a real partition: partition a scaled
// papers100M-shaped RMAT graph with the greedy partitioner and feed the
// *measured* cut into the cluster model.
func TestMeasuredCutDrivesModel(t *testing.T) {
	rng := tensor.NewRNG(8)
	g, err := datagen.GenerateRMAT(4000, 48000, datagen.DefaultRMAT, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := graph.PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCutFraction(g)
	if cut <= 0 || cut >= 1 {
		t.Fatalf("measured cut %v degenerate", cut)
	}
	c := baseCfg()
	c.Nodes = 4
	c.CutFraction = cut
	b, err := EpochTime(c)
	if err != nil {
		t.Fatal(err)
	}
	if b.EpochSec <= 0 || b.RemoteFetch <= 0 {
		t.Fatalf("cluster model rejected measured cut: %+v", b)
	}
	t.Logf("measured 4-way edge cut on RMAT: %.2f (model default 0.25)", cut)
}

// MAG240M's wide features make remote fetches brutal — the per-iteration
// network share must exceed papers100M's.
func TestWideFeaturesHurtMore(t *testing.T) {
	frac := func(spec datagen.Spec) float64 {
		c := baseCfg()
		c.Nodes = 4
		c.Work = perfmodel.DefaultWorkload(spec, gnn.GCN)
		b, err := EpochTime(c)
		if err != nil {
			t.Fatal(err)
		}
		return b.RemoteFetch / b.IterTime
	}
	if frac(datagen.MAG240MHomo) <= frac(datagen.OGBNPapers100M) {
		t.Fatal("756-dim features should stress the network more than 128-dim")
	}
}
