package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
)

func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// trainSig runs epochs and folds every float the multi-node protocol reports
// into an exact hex-float signature — one differing bit anywhere in the run
// changes the string.
func trainSig(t *testing.T, m *MultiNode, epochs int) string {
	t.Helper()
	var b strings.Builder
	for e := 1; e <= epochs; e++ {
		st, err := m.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "epoch%d loss=%s acc=%s vsec=%s fetch=%s sync=%s mteps=%s iters=%d rows=%d\n",
			e, hexf(st.Loss), hexf(st.Accuracy), hexf(st.VirtualSec), hexf(st.NetFetchSec),
			hexf(st.NetSyncSec), hexf(st.MTEPS), st.Iterations, st.RemoteRows)
	}
	fmt.Fprintf(&b, "insync=%s\n", hexf(m.ReplicasInSync()))
	return b.String()
}

// goldenTrainSig pins the 4-node multiDataset(7)/multiConfig reference run
// (2 epochs) bit for bit. Any change to the fault plane that perturbs a
// fault-free run — a reordered reduction, an extra clock charge, a different
// gradient scale — lands here as a one-character diff.
const goldenTrainSig = "epoch1 loss=0x1.c1d014651d2fap+00 acc=0x1.3a0459ed24fc6p-02 vsec=0x1.4274578a2cee4p-08 fetch=0x1.ac3429f9966e9p-14 sync=0x1.1bfccdd5e827cp-11 mteps=0x1.ad16d079ff3d3p+01 iters=3 rows=5668\n" +
	"epoch2 loss=0x1.a822c81166274p-01 acc=0x1.9d5f00b9a7863p-01 vsec=0x1.278496d2dff3p-08 fetch=0x1.ac8fca39173dcp-14 sync=0x1.1bfccdd5e827cp-11 mteps=0x1.d393824514cdbp+01 iters=3 rows=5708\n" +
	"insync=0x0p+00\n"

func mustParse(t *testing.T, spec string) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The tentpole invariant, training plane: with no cluster fault events every
// code path is byte-identical to the pre-fault build — nil schedule, empty
// schedule, and a schedule holding only serving-plane events all reproduce
// the pinned golden bit for bit (the legacy fixed-membership ring runs
// verbatim; the dynamic machinery is never armed).
func TestEmptyClusterFaultByteIdentity(t *testing.T) {
	cases := []struct {
		name  string
		sched *fault.Schedule
	}{
		{"nil", nil},
		{"empty", &fault.Schedule{}},
		{"serving-only", mustParse(t, "fail,worker=1,at=0.05;slow,worker=0,from=0.01,to=0.02,factor=3")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := multiConfig(t, 4, multiDataset(t, 7))
			cfg.Faults = tc.sched
			m, err := NewMultiNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.ring.dynamic {
				t.Fatal("membership machinery armed without cluster fault events")
			}
			if got := trainSig(t, m, 2); got != goldenTrainSig {
				t.Fatalf("fault-free run diverged from golden:\ngot:\n%swant:\n%s", got, goldenTrainSig)
			}
			st, err := m.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if st.FailedNodes != 0 {
				t.Fatalf("fault-free run reports %d failed nodes", st.FailedNodes)
			}
		})
	}
}

// simulateRing replays allReduceDyn's arithmetic sequentially: same chunk
// geometry, same own+received fold order, same float32 precision, same final
// 1/m scale. pre is indexed by position in view; the return value is what
// every position's vector must hold after the reduce, bit for bit.
func simulateRing(pre [][]float32, view []int) [][]float32 {
	m := len(view)
	vecs := make([][]float32, m)
	for p := range pre {
		vecs[p] = append([]float32(nil), pre[p]...)
	}
	if m <= 1 {
		return vecs
	}
	L := len(vecs[0])
	msgs := make([][]float32, m)        // indexed by receiving position
	for step := 0; step < m-1; step++ { // scatter-reduce
		for p := 0; p < m; p++ {
			lo, hi := chunkBounds(L, m, mod(p-step, m))
			msgs[mod(p+1, m)] = append([]float32(nil), vecs[p][lo:hi]...)
		}
		for p := 0; p < m; p++ {
			lo, _ := chunkBounds(L, m, mod(p-step-1, m))
			for i, v := range msgs[p] {
				vecs[p][lo+i] += v
			}
		}
	}
	for step := 0; step < m-1; step++ { // all-gather
		for p := 0; p < m; p++ {
			lo, hi := chunkBounds(L, m, mod(p-step+1, m))
			msgs[mod(p+1, m)] = append([]float32(nil), vecs[p][lo:hi]...)
		}
		for p := 0; p < m; p++ {
			lo, _ := chunkBounds(L, m, mod(p-step, m))
			copy(vecs[p][lo:], msgs[p])
		}
	}
	inv := 1 / float32(m)
	for p := range vecs {
		for i := range vecs[p] {
			vecs[p][i] *= inv
		}
	}
	return vecs
}

// The survivor re-ring oracle: a 4-node fleet loses rank 3 at ring round 4
// (mid-epoch 2). Every reduce — full-fleet rounds 0–3 and survivor rounds
// 4–5 — must match a sequential replay of the chunked ring bitwise, with the
// gradient mean rescaled to the live count (÷4 before the failure, ÷3 after).
// The epoch completes, the dead rank contributes nothing, and the survivors
// stay in perfect sync.
func TestSurvivorReRingOracle(t *testing.T) {
	cfg := multiConfig(t, 4, multiDataset(t, 7))
	cfg.Faults = mustParse(t, "fail,node=3,at=iter:4")
	m, err := NewMultiNode(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type key struct{ rank, iter int }
	pres := map[key][]float32{}
	posts := map[key][]float32{}
	var mu sync.Mutex
	tap := func(rank, iter int, vec []float32, post bool) {
		mu.Lock()
		defer mu.Unlock()
		cp := append([]float32(nil), vec...)
		if post {
			posts[key{rank, iter}] = cp
		} else {
			pres[key{rank, iter}] = cp
		}
	}
	for _, s := range m.syncs {
		s.tap = tap
	}

	if _, err := m.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	st, err := m.RunEpoch()
	if err != nil {
		t.Fatalf("epoch with mid-run fail-stop did not complete: %v", err)
	}
	if st.FailedNodes != 1 {
		t.Fatalf("FailedNodes = %d, want 1", st.FailedNodes)
	}
	if st.PerNode[3] != nil {
		t.Fatal("dead rank contributed per-node stats to the failure epoch")
	}
	if st.Iterations != 3 {
		t.Fatalf("survivors ran %d iterations, want the full 3", st.Iterations)
	}
	if d := m.ReplicasInSync(); d != 0 {
		t.Fatalf("surviving fleet diverged by %v after the re-ring", d)
	}
	dead := m.DeadNodes()
	if !dead[3] || dead[0] || dead[1] || dead[2] {
		t.Fatalf("dead mask %v, want only rank 3", dead)
	}

	// Oracle: rounds 0–3 ran the full view [0 1 2 3], rounds 4–5 the
	// survivor view [0 1 2].
	for iter := 0; iter < 6; iter++ {
		view := []int{0, 1, 2, 3}
		if iter >= 4 {
			view = []int{0, 1, 2}
		}
		pre := make([][]float32, len(view))
		for p, rk := range view {
			v, ok := pres[key{rk, iter}]
			if !ok {
				t.Fatalf("round %d: no pre-reduce tap for rank %d", iter, rk)
			}
			pre[p] = v
		}
		want := simulateRing(pre, view)
		for p, rk := range view {
			got := posts[key{rk, iter}]
			if got == nil {
				t.Fatalf("round %d: no post-reduce tap for rank %d", iter, rk)
			}
			if len(got) != len(want[p]) {
				t.Fatalf("round %d rank %d: vector length %d vs oracle %d", iter, rk, len(got), len(want[p]))
			}
			for i := range got {
				if got[i] != want[p][i] {
					t.Fatalf("round %d rank %d elem %d: got %x want %x — executed re-ring diverges from the sequential oracle",
						iter, rk, i, got[i], want[p][i])
				}
			}
		}
	}
	// The dead rank must not have participated past its departure round.
	for iter := 4; iter < 6; iter++ {
		if _, ok := pres[key{3, iter}]; ok {
			t.Fatalf("rank 3 reduced at round %d after its scripted fail-stop", iter)
		}
	}
}

// A scripted cluster fault schedule replays bit-exactly: two independent runs
// of the same fail-stop scenario produce identical signatures.
func TestClusterFaultReplayDeterminism(t *testing.T) {
	run := func() string {
		cfg := multiConfig(t, 4, multiDataset(t, 7))
		cfg.Faults = mustParse(t, "fail,node=2,at=iter:4;degrade,link,from=iter:0,to=iter:2,factor=4")
		m, err := NewMultiNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sig := trainSig(t, m, 2)
		st, err := m.RunEpoch() // one more epoch entirely on the survivor ring
		if err != nil {
			t.Fatal(err)
		}
		return sig + fmt.Sprintf("epoch3 loss=%s sync=%s failed=%d\n",
			hexf(st.Loss), hexf(st.NetSyncSec), st.FailedNodes)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("scripted fault replay diverged:\nrun A:\n%srun B:\n%s", a, b)
	}
	if !strings.Contains(a, "failed=1") {
		t.Fatalf("fail-stop not reflected in stats:\n%s", a)
	}
}

// Satellite 3: when a node hard-crashes, RunEpoch must surface the root cause
// — not the errRingAborted collateral the survivors report after the ring is
// torn down.
func TestCrashRootCauseAggregation(t *testing.T) {
	cfg := multiConfig(t, 4, multiDataset(t, 7))
	cfg.Faults = mustParse(t, "crash,node=1,at=iter:4")
	m, err := NewMultiNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunEpoch(); err != nil {
		t.Fatal(err) // rounds 0–2 are pre-crash
	}
	_, err = m.RunEpoch()
	if err == nil {
		t.Fatal("crashed fleet completed the epoch")
	}
	msg := err.Error()
	if !strings.Contains(msg, "node 1") || !strings.Contains(msg, "crashed") {
		t.Fatalf("error %q does not name the crashed node", msg)
	}
	if strings.Contains(msg, "aborted") {
		t.Fatalf("error %q reports survivor collateral instead of the root cause", msg)
	}
}

// Link degradation charges the scripted window — and only the window — on the
// virtual clock: epoch 1 (rounds 0–2, inside the 4× window) pays more
// all-reduce time than the healthy golden, epoch 2 (rounds 3–5, outside)
// matches the healthy sync charge bit for bit. The numerics are untouched:
// degradation scales a clock, not a gradient.
func TestLinkDegradeWindow(t *testing.T) {
	cfg := multiConfig(t, 4, multiDataset(t, 7))
	cfg.Faults = mustParse(t, "degrade,link,from=iter:0,to=iter:3,factor=4")
	m, err := NewMultiNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	const healthySync = "0x1.1bfccdd5e827cp-11" // from goldenTrainSig, both epochs
	if hexf(st1.NetSyncSec) == healthySync || st1.NetSyncSec <= st2.NetSyncSec {
		t.Fatalf("degraded window not charged: epoch1 sync %v, epoch2 %v", st1.NetSyncSec, st2.NetSyncSec)
	}
	if hexf(st2.NetSyncSec) != healthySync {
		t.Fatalf("post-window sync %s, want healthy %s bit-exact", hexf(st2.NetSyncSec), healthySync)
	}
	if hexf(st1.Loss) != "0x1.c1d014651d2fap+00" || hexf(st2.Loss) != "0x1.a822c81166274p-01" {
		t.Fatalf("link degradation perturbed the numerics: losses %s / %s", hexf(st1.Loss), hexf(st2.Loss))
	}
	if d := m.ReplicasInSync(); d != 0 {
		t.Fatalf("fleet diverged by %v under link degradation", d)
	}
}

// Schedules referencing ranks outside the fleet are rejected up front.
func TestClusterFaultScheduleValidated(t *testing.T) {
	cfg := multiConfig(t, 2, multiDataset(t, 7))
	cfg.Faults = mustParse(t, "fail,node=5,at=iter:1")
	if _, err := NewMultiNode(cfg); err == nil || !strings.Contains(err.Error(), "node 5") {
		t.Fatalf("out-of-range fault target accepted: %v", err)
	}
}
