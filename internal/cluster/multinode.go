package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// MultiNode executes the multi-node protocol the analytic Config only
// prices: the graph is partitioned across nodes (internal/graph's greedy
// METIS-style partitioner), each node runs a full core.Engine replica over
// its shard's training vertices — with its own DRM instance, replica fleet
// and virtual pipeline clock — and the nodes exchange real gradients every
// iteration through a chunked ring all-reduce. Remote feature rows (input
// vertices owned by other shards) and the all-reduce are charged on each
// node's virtual clock via the same perfmodel network primitives the
// analytic model uses, so EpochTime's predictions can be validated against
// executed runs.
type MultiNode struct {
	cfg        MultiNodeConfig
	part       *graph.Partition
	cut        float64
	engines    []*core.Engine
	syncs      []*nodeSync
	ring       *ring
	shardTrain int // training vertices per node after drop-last equalisation
	epoch      int
	// dead marks nodes that fail-stopped (scripted): they are skipped in
	// later epochs and contribute nothing to aggregated stats.
	dead []bool
}

// MultiNodeConfig describes an executed multi-node run.
type MultiNodeConfig struct {
	Nodes int
	Net   hw.Link // inter-node link (per-node NIC)
	// Node is the per-node engine template. Data must hold the FULL dataset;
	// the coordinator partitions its training vertices across nodes. Sync
	// and Locator must be nil — the coordinator owns that wiring. All nodes
	// share Node.Seed so their replicas initialise identically (synchronous
	// SGD keeps the whole fleet in lock-step from there).
	Node core.Config
	// Plats, when non-empty, gives each node its own platform (len must be
	// Nodes): a heterogeneous cluster of heterogeneous nodes — e.g. one
	// CPU+GPU node next to a CPU+FPGA node. Empty means every node runs the
	// template's Node.Plat. The synchronous-SGD protocol is platform-blind
	// (platforms change only the virtual clock), so mixed fleets stay in
	// lock-step.
	Plats []hw.Platform
	// Faults scripts deterministic node failures and link degradation on the
	// training plane, keyed by cumulative ring round (see fault.Parse):
	// "fail,node=R,at=iter:K" leaves the ring gracefully before round K and
	// the survivors re-ring and continue; "crash,node=R,at=iter:K" aborts
	// the whole fleet (the legacy abort path); "degrade,link,..." scales the
	// inter-node link over a round window. Nil or a schedule with no cluster
	// events leaves every code path byte-identical to a fault-free build.
	Faults *fault.Schedule
}

// Validate checks the configuration.
func (c MultiNodeConfig) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: %d nodes", c.Nodes)
	}
	if c.Node.Data == nil {
		return fmt.Errorf("cluster: nil dataset")
	}
	if c.Nodes > 1 && c.Net.EffGBs() <= 0 {
		return fmt.Errorf("cluster: multi-node needs a network link")
	}
	if c.Node.Sync != nil || c.Node.Locator != nil {
		return fmt.Errorf("cluster: Node.Sync/Locator are owned by the coordinator")
	}
	if c.Faults.HasCluster() {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if mx := c.Faults.MaxNode(); mx >= c.Nodes {
			return fmt.Errorf("cluster: fault schedule targets node %d, fleet has %d nodes", mx, c.Nodes)
		}
	}
	if len(c.Plats) != 0 {
		if len(c.Plats) != c.Nodes {
			return fmt.Errorf("cluster: %d per-node platforms for %d nodes", len(c.Plats), c.Nodes)
		}
		// The ring all-reduce runs in lock-step, so every node must execute
		// the same number of iterations per epoch — which the engine derives
		// from its accelerator count (global batch = BatchSize × trainers).
		for i, p := range c.Plats[1:] {
			if len(p.Accels) != len(c.Plats[0].Accels) {
				return fmt.Errorf("cluster: node %d has %d accelerators, node 0 has %d — "+
					"unequal fleets would desynchronise the ring", i+1, len(p.Accels), len(c.Plats[0].Accels))
			}
		}
	}
	return nil
}

// shardLocator is the core.FeatureLocator of one shard: rows whose vertices
// are assigned to another partition cross the NIC.
type shardLocator struct {
	rank     int32
	assign   []int32
	link     hw.Link
	featDim  int
	featByte float64
}

func (l *shardLocator) RemoteRows(nodes []int32) int {
	n := 0
	for _, v := range nodes {
		if l.assign[v] != l.rank {
			n++
		}
	}
	return n
}

func (l *shardLocator) FetchSec(n int) float64 {
	return perfmodel.RemoteFetchSec(l.link, float64(n), l.featDim, l.featByte)
}

// NewMultiNode partitions the dataset and builds one engine per node.
//
// Shards are equalised to the smallest partition's training-vertex count
// (DistDGL's drop-last semantics) so every node runs the same number of
// iterations per epoch — the ring all-reduce requires all nodes to
// participate in every round.
func NewMultiNode(cfg MultiNodeConfig) (*MultiNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data := cfg.Node.Data
	part, err := graph.PartitionGreedyBFS(data.Graph, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	cut := part.EdgeCutFraction(data.Graph)

	shards := make([][]int32, cfg.Nodes)
	for _, v := range data.TrainIdx {
		p := part.Assign[v]
		shards[p] = append(shards[p], v)
	}
	minSize := len(data.TrainIdx)
	for i, s := range shards {
		if len(s) < minSize {
			minSize = len(s)
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("cluster: partition %d holds no training vertices (%d total, %d nodes)",
				i, len(data.TrainIdx), cfg.Nodes)
		}
	}

	rg := newRing(cfg.Nodes, cfg.Net)
	faulted := cfg.Faults.HasCluster()
	if faulted {
		rg.enableMembership(cfg.Faults.LinkFactor)
	}
	engines := make([]*core.Engine, cfg.Nodes)
	syncs := make([]*nodeSync, cfg.Nodes)
	for i := range engines {
		nodeCfg := cfg.Node
		if len(cfg.Plats) > 0 {
			nodeCfg.Plat = cfg.Plats[i]
		}
		nodeCfg.Data = &datagen.Dataset{
			Spec: data.Spec, Graph: data.Graph,
			Features: data.Features, Labels: data.Labels,
			TrainIdx: shards[i][:minSize],
		}
		sync := &nodeSync{rank: i, ring: rg, failIter: -1, crashIter: -1}
		if faulted {
			sync.dynamic = true
			sync.failIter = cfg.Faults.NodeFailIter(i)
			sync.crashIter = cfg.Faults.NodeCrashIter(i)
		}
		syncs[i] = sync
		nodeCfg.Sync = sync
		featByte := 4.0
		if cfg.Node.QuantizeTransfer {
			featByte = 1
		}
		nodeCfg.Locator = &shardLocator{
			rank: int32(i), assign: part.Assign, link: cfg.Net,
			featDim: data.Spec.FeatDims[0], featByte: featByte,
		}
		eng, err := core.NewEngine(nodeCfg)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return &MultiNode{cfg: cfg, part: part, cut: cut, engines: engines,
		syncs: syncs, ring: rg, shardTrain: minSize,
		dead: make([]bool, cfg.Nodes)}, nil
}

// TrainPerNode returns each shard's training-vertex count (equalised across
// nodes so the ring stays in lock-step).
func (m *MultiNode) TrainPerNode() int { return m.shardTrain }

// Nodes returns the node count.
func (m *MultiNode) Nodes() int { return m.cfg.Nodes }

// EdgeCut returns the measured edge-cut fraction of the partition — the
// executed counterpart of the analytic Config.CutFraction input.
func (m *MultiNode) EdgeCut() float64 { return m.cut }

// Partition exposes the vertex→node assignment.
func (m *MultiNode) Partition() *graph.Partition { return m.part }

// Node returns node i's engine (for per-shard inspection).
func (m *MultiNode) Node(i int) *core.Engine { return m.engines[i] }

// MultiNodeStats aggregates one epoch across the fleet.
type MultiNodeStats struct {
	Epoch      int
	Loss       float64 // mean across nodes (equal shard sizes → equal weights)
	Accuracy   float64
	VirtualSec float64 // slowest node's virtual epoch time
	MTEPS      float64 // fleet-wide traversed edges over the slowest clock
	Iterations int     // per node

	NetFetchSec float64 // mean per-node remote-fetch seconds
	NetSyncSec  float64 // mean per-node all-reduce seconds
	RemoteRows  int     // total feature rows fetched across the NIC

	// FailedNodes is the cumulative count of nodes that fail-stopped (this
	// epoch or earlier). PerNode entries of dead nodes are nil — a node that
	// departs mid-epoch contributes nothing to that epoch's aggregates.
	FailedNodes int

	PerNode []*core.EpochStats
}

// RunEpoch trains one epoch on every surviving node concurrently. Nodes
// proceed in lock-step: the ring all-reduce synchronises them every
// iteration, exactly as a real cluster's gradient exchange would. A node
// whose scripted fail-stop fires mid-epoch leaves the ring at a round
// boundary; the survivors re-ring, rescale the gradient mean to their own
// count, and finish the epoch — only a crash (or a real error) aborts the
// run.
func (m *MultiNode) RunEpoch() (*MultiNodeStats, error) {
	m.epoch++
	type result struct {
		i   int
		st  *core.EpochStats
		err error
	}
	ch := make(chan result, len(m.engines))
	launched := 0
	for i, e := range m.engines {
		if m.dead[i] {
			continue
		}
		launched++
		go func(i int, e *core.Engine) {
			st, err := e.RunEpoch()
			if err != nil && !errors.Is(err, errNodeFailStop) {
				// Abort the ring so surviving nodes do not wait forever for
				// this node's next gradient exchange. A scripted fail-stop
				// already left the membership cleanly — the ring survives.
				m.ring.fail()
			}
			ch <- result{i, st, err}
		}(i, e)
	}
	if launched == 0 {
		return nil, fmt.Errorf("cluster: no surviving nodes (all %d fail-stopped)", len(m.engines))
	}
	perNode := make([]*core.EpochStats, len(m.engines))
	var firstErr error
	for k := 0; k < launched; k++ {
		r := <-ch
		if r.err != nil {
			if errors.Is(r.err, errNodeFailStop) {
				m.dead[r.i] = true
				continue
			}
			// Prefer the root cause over the aborted-ring errors the
			// survivors report as collateral.
			if firstErr == nil || errors.Is(firstErr, errRingAborted) {
				firstErr = fmt.Errorf("cluster: node %d: %w", r.i, r.err)
			}
		}
		perNode[r.i] = r.st
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &MultiNodeStats{Epoch: m.epoch, PerNode: perNode}
	var edges float64
	live := 0
	for _, st := range perNode {
		if st == nil {
			continue
		}
		live++
		out.Iterations = st.Iterations
		out.Loss += st.Loss
		out.Accuracy += st.Accuracy
		out.NetFetchSec += st.NetFetchSec
		out.NetSyncSec += st.NetSyncSec
		out.RemoteRows += st.RemoteRows
		edges += st.MTEPS * st.VirtualSec * 1e6
		out.VirtualSec = math.Max(out.VirtualSec, st.VirtualSec)
	}
	if live == 0 {
		return nil, fmt.Errorf("cluster: epoch %d finished with no surviving nodes", m.epoch)
	}
	for _, d := range m.dead {
		if d {
			out.FailedNodes++
		}
	}
	n := float64(live)
	out.Loss /= n
	out.Accuracy /= n
	out.NetFetchSec /= n
	out.NetSyncSec /= n
	if out.VirtualSec > 0 {
		out.MTEPS = edges / out.VirtualSec / 1e6
	}
	return out, nil
}

// DeadNodes reports which ranks have fail-stopped so far.
func (m *MultiNode) DeadNodes() []bool { return m.dead }

// ReplicasInSync reports the worst parameter divergence anywhere in the
// surviving fleet: within each node's replica set and across nodes. Zero
// means the two-level synchronous-SGD protocol (local DONE/ACK + cross-node
// ring) is working. Fail-stopped nodes are excluded — their parameters froze
// at the round they departed and no longer participate in the protocol.
func (m *MultiNode) ReplicasInSync() float64 {
	var worst float64
	var ref *gnn.Parameters
	for i, e := range m.engines {
		if m.dead[i] {
			continue
		}
		if d := e.ReplicasInSync(); d > worst {
			worst = d
		}
		p := e.Params()
		if ref == nil {
			ref = p
			continue
		}
		for l := range ref.Weights {
			if d := ref.Weights[l].MaxAbsDiff(p.Weights[l]); d > worst {
				worst = d
			}
			if d := ref.Biases[l].MaxAbsDiff(p.Biases[l]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Analytic returns the analytic cluster configuration matching this executed
// run — same platform, workload and interconnect, with the partitioner's
// measured edge cut as CutFraction — so EpochTime's predictions can be
// compared against executed virtual-clock readings. Heterogeneous fleets
// (MultiNodeConfig.Plats) are priced with the template Node.Plat; a
// per-node-platform analytic model is an open item.
func (m *MultiNode) Analytic() Config {
	// The engine clamps each node's global batch to its shard size; mirror
	// that so the analytic assignment prices the batches actually executed.
	nTrainers := max(1, len(m.cfg.Node.Plat.Accels))
	total := m.cfg.Node.BatchSize * nTrainers
	if total > m.shardTrain {
		total = m.shardTrain
	}
	work := perfmodel.Workload{
		Spec:      m.cfg.Node.Data.Spec,
		Model:     m.cfg.Node.Model.Kind,
		BatchSize: max(1, total/nTrainers),
		Fanouts:   m.cfg.Node.Fanouts,
	}
	if m.cfg.Node.QuantizeTransfer {
		work.TransferBytesPerFeat = 1
	}
	return Config{
		Nodes: m.cfg.Nodes, Plat: m.cfg.Node.Plat, Work: work,
		Net: m.cfg.Net, CutFraction: m.cut,
	}
}
