package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	// 0->1, 0->2, 1->2, 2->0, 3->2  (src->dst; stored as in-neighbors of dst)
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := smallGraph(t)
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.SortNeighborLists()
	if got := g.Neighbors(2); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range dst")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative src")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g, err := FromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseIsInvolution(t *testing.T) {
	g := smallGraph(t)
	rr := g.Reverse().Reverse()
	rr.SortNeighborLists()
	g.SortNeighborLists()
	if rr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", rr.NumEdges(), g.NumEdges())
	}
	for v := int32(0); int(v) < g.NumVertices; v++ {
		a, b := g.Neighbors(v), rr.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbors differ: %v vs %v", v, a, b)
			}
		}
	}
}

func TestDegreesConsistent(t *testing.T) {
	g := smallGraph(t)
	in := g.InDegrees()
	out := g.OutDegrees()
	var inSum, outSum int64
	for i := range in {
		inSum += int64(in[i])
		outSum += int64(out[i])
	}
	if inSum != g.NumEdges() || outSum != g.NumEdges() {
		t.Fatalf("degree sums %d/%d != edges %d", inSum, outSum, g.NumEdges())
	}
	// Out-degree of 0 is 2 (edges 0->1, 0->2).
	if out[0] != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", out[0])
	}
	rev := g.Reverse()
	revIn := rev.InDegrees()
	for i := range out {
		if out[i] != revIn[i] {
			t.Fatalf("OutDegrees mismatch Reverse().InDegrees at %d", i)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := smallGraph(t)
	edges := g.EdgeList()
	g2, err := FromEdges(g.NumVertices, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.SortNeighborLists()
	g2.SortNeighborLists()
	for v := int32(0); int(v) < g.NumVertices; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("round trip changed degree of %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed neighbors of %d", v)
			}
		}
	}
}

func TestSortEdgesBySource(t *testing.T) {
	edges := []Edge{{3, 0}, {1, 2}, {3, 1}, {0, 0}, {1, 0}}
	sorted := SortEdgesBySource(edges)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Src < sorted[i-1].Src {
			t.Fatalf("not sorted by source: %v", sorted)
		}
		if sorted[i].Src == sorted[i-1].Src && sorted[i].Dst < sorted[i-1].Dst {
			t.Fatalf("not sorted by dst within source: %v", sorted)
		}
	}
	// Original untouched.
	if edges[0].Src != 3 {
		t.Fatal("SortEdgesBySource mutated input")
	}
}

func TestCountSourceRuns(t *testing.T) {
	if n := CountSourceRuns(nil); n != 0 {
		t.Fatalf("empty runs = %d", n)
	}
	edges := []Edge{{0, 1}, {0, 2}, {1, 0}, {0, 3}}
	if n := CountSourceRuns(edges); n != 3 {
		t.Fatalf("unsorted runs = %d, want 3", n)
	}
	if n := CountSourceRuns(SortEdgesBySource(edges)); n != 2 {
		t.Fatalf("sorted runs = %d, want 2 (distinct sources)", n)
	}
}

// Property: for any random edge list, sorting by source reduces the run
// count to exactly the number of distinct sources — the paper's O(|E|)→O(|V0|)
// memory traffic claim at the edge-list level.
func TestSortedRunsEqualDistinctSources(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(30)
		m := rng.Intn(200)
		edges := make([]Edge, m)
		distinct := map[int32]bool{}
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
			distinct[edges[i].Src] = true
		}
		return CountSourceRuns(SortEdgesBySource(edges)) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR built from random edges always validates and preserves the
// edge multiset.
func TestFromEdgesPreservesMultiset(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(20)
		m := rng.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g, err := FromEdges(n, edges)
		if err != nil || g.Validate() != nil {
			return false
		}
		got := g.EdgeList()
		if len(got) != len(edges) {
			return false
		}
		key := func(e Edge) int64 { return int64(e.Src)<<32 | int64(e.Dst) }
		a := make([]int64, len(edges))
		b := make([]int64, len(edges))
		for i := range edges {
			a[i] = key(edges[i])
			b[i] = key(got[i])
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
