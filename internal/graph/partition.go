package graph

import (
	"fmt"

	"container/heap"
)

// Partition assigns every vertex to one of k parts. It is the substrate the
// multi-node extension (internal/cluster) rests on: the paper's §VII notes
// that partitioned training (DistDGL, P3) pays edge-cut communication, and
// the cluster model's CutFraction is exactly what EdgeCutFraction measures
// on a concrete partition.
type Partition struct {
	K      int
	Assign []int32 // vertex → part
	Sizes  []int64 // vertices per part
}

// PartitionGreedyBFS partitions the graph into k balanced parts by seeded
// BFS region growing (a standard METIS-like heuristic): parts grow from
// spread-out seeds, always expanding the currently-smallest part through
// the frontier of cross edges, which keeps parts connected-ish and the cut
// low on power-law graphs.
func PartitionGreedyBFS(g *Graph, k int) (*Partition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("graph: partition into %d parts", k)
	}
	n := g.NumVertices
	if k > n {
		return nil, fmt.Errorf("graph: %d parts for %d vertices", k, n)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int64, k)
	// Undirected adjacency view: in-neighbors plus out-neighbors.
	rev := g.Reverse()

	frontiers := make([][]int32, k)
	for p := 0; p < k; p++ {
		seed := int32(p * (n / k))
		for assign[seed] != -1 { // seeds collide only for tiny graphs
			seed = (seed + 1) % int32(n)
		}
		assign[seed] = int32(p)
		sizes[p]++
		frontiers[p] = []int32{seed}
	}
	// Grow the smallest part first (min-heap by size).
	pq := &partHeap{}
	for p := 0; p < k; p++ {
		heap.Push(pq, partEntry{part: p, size: sizes[p]})
	}
	assigned := int64(k)
	cursor := int32(0)
	for assigned < int64(n) {
		e := heap.Pop(pq).(partEntry)
		p := e.part
		if e.size != sizes[p] { // stale heap entry
			heap.Push(pq, partEntry{part: p, size: sizes[p]})
			continue
		}
		v := popUnassigned(&frontiers[p], assign)
		if v == -1 {
			// Frontier exhausted: steal the next unassigned vertex.
			for assign[cursor] != -1 {
				cursor = (cursor + 1) % int32(n)
			}
			v = cursor
		}
		assign[v] = int32(p)
		sizes[p]++
		assigned++
		for _, u := range g.Neighbors(v) {
			if assign[u] == -1 {
				frontiers[p] = append(frontiers[p], u)
			}
		}
		for _, u := range rev.Neighbors(v) {
			if assign[u] == -1 {
				frontiers[p] = append(frontiers[p], u)
			}
		}
		heap.Push(pq, partEntry{part: p, size: sizes[p]})
	}
	return &Partition{K: k, Assign: assign, Sizes: sizes}, nil
}

// popUnassigned pops frontier entries until an unassigned vertex appears.
func popUnassigned(frontier *[]int32, assign []int32) int32 {
	f := *frontier
	for len(f) > 0 {
		v := f[len(f)-1]
		f = f[:len(f)-1]
		if assign[v] == -1 {
			*frontier = f
			return v
		}
	}
	*frontier = f
	return -1
}

// EdgeCutFraction returns the fraction of edges whose endpoints live in
// different parts — the CutFraction input of the cluster model.
func (p *Partition) EdgeCutFraction(g *Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var cut int64
	for dst := int32(0); int(dst) < g.NumVertices; dst++ {
		pd := p.Assign[dst]
		for _, src := range g.Neighbors(dst) {
			if p.Assign[src] != pd {
				cut++
			}
		}
	}
	return float64(cut) / float64(g.NumEdges())
}

// Balance returns max(part size) / ideal size; 1.0 is perfectly balanced.
func (p *Partition) Balance() float64 {
	var max int64
	var total int64
	for _, s := range p.Sizes {
		total += s
		if s > max {
			max = s
		}
	}
	ideal := float64(total) / float64(p.K)
	return float64(max) / ideal
}

// Validate checks the partition invariants.
func (p *Partition) Validate() error {
	var total int64
	counts := make([]int64, p.K)
	for _, a := range p.Assign {
		if a < 0 || int(a) >= p.K {
			return fmt.Errorf("graph: vertex assigned to part %d of %d", a, p.K)
		}
		counts[a]++
	}
	for i, c := range counts {
		total += c
		if c != p.Sizes[i] {
			return fmt.Errorf("graph: part %d size %d, recorded %d", i, c, p.Sizes[i])
		}
	}
	if total != int64(len(p.Assign)) {
		return fmt.Errorf("graph: %d assigned of %d", total, len(p.Assign))
	}
	return nil
}

// partHeap is a min-heap of parts by current size.
type partEntry struct {
	part int
	size int64
}
type partHeap []partEntry

func (h partHeap) Len() int            { return len(h) }
func (h partHeap) Less(i, j int) bool  { return h[i].size < h[j].size }
func (h partHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *partHeap) Push(x interface{}) { *h = append(*h, x.(partEntry)) }
func (h *partHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
