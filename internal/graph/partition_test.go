package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randomGraph(t *testing.T, n, m int, seed uint64) *Graph {
	t.Helper()
	rng := tensor.NewRNG(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionValidation(t *testing.T) {
	g := randomGraph(t, 50, 200, 1)
	if _, err := PartitionGreedyBFS(g, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := PartitionGreedyBFS(g, 100); err == nil {
		t.Fatal("expected error for k > n")
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	g := randomGraph(t, 300, 1500, 2)
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range p.Sizes {
		total += s
		if s == 0 {
			t.Fatal("empty part")
		}
	}
	if total != 300 {
		t.Fatalf("assigned %d of 300", total)
	}
}

func TestPartitionBalance(t *testing.T) {
	g := randomGraph(t, 400, 2400, 3)
	p, err := PartitionGreedyBFS(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.2 {
		t.Fatalf("balance %v — parts too uneven", b)
	}
}

func TestSinglePartHasNoCut(t *testing.T) {
	g := randomGraph(t, 100, 500, 4)
	p, err := PartitionGreedyBFS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.EdgeCutFraction(g); cut != 0 {
		t.Fatalf("1-part cut = %v", cut)
	}
}

// Region-growing must beat random assignment on cut quality.
func TestGreedyBeatsRandomCut(t *testing.T) {
	rng := tensor.NewRNG(5)
	// A graph with locality: ring plus random chords.
	n := 600
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{Src: int32(i), Dst: int32((i + 1) % n)})
		edges = append(edges, Edge{Src: int32(i), Dst: int32((i + 2) % n)})
	}
	for i := 0; i < n/2; i++ {
		edges = append(edges, Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	greedy := p.EdgeCutFraction(g)

	random := &Partition{K: 4, Assign: make([]int32, n), Sizes: make([]int64, 4)}
	for i := range random.Assign {
		random.Assign[i] = int32(rng.Intn(4))
		random.Sizes[random.Assign[i]]++
	}
	randCut := random.EdgeCutFraction(g)
	if greedy >= randCut {
		t.Fatalf("greedy cut %v not below random cut %v", greedy, randCut)
	}
}

// The cluster model assumes cuts around 0.2–0.4 for power-law graphs at
// k=4..8; verify the partitioner lands in a sane band on an RMAT-like graph.
func TestCutFractionBandOnSkewedGraph(t *testing.T) {
	g := randomGraph(t, 2000, 16000, 6) // uniform random: worst case ~ (k-1)/k
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCutFraction(g)
	if cut <= 0 || cut >= 0.95 {
		t.Fatalf("cut %v implausible", cut)
	}
}

// Property: any partition returned is valid and covers every vertex.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 20 + rng.Intn(200)
		g := &Graph{NumVertices: n, RowPtr: make([]int64, n+1)}
		edges := make([]Edge, n*3)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		var err error
		g, err = FromEdges(n, edges)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(6)
		p, err := PartitionGreedyBFS(g, k)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
