package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randomGraph(t *testing.T, n, m int, seed uint64) *Graph {
	t.Helper()
	rng := tensor.NewRNG(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionValidation(t *testing.T) {
	g := randomGraph(t, 50, 200, 1)
	if _, err := PartitionGreedyBFS(g, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := PartitionGreedyBFS(g, 100); err == nil {
		t.Fatal("expected error for k > n")
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	g := randomGraph(t, 300, 1500, 2)
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range p.Sizes {
		total += s
		if s == 0 {
			t.Fatal("empty part")
		}
	}
	if total != 300 {
		t.Fatalf("assigned %d of 300", total)
	}
}

func TestPartitionBalance(t *testing.T) {
	g := randomGraph(t, 400, 2400, 3)
	p, err := PartitionGreedyBFS(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.2 {
		t.Fatalf("balance %v — parts too uneven", b)
	}
}

func TestSinglePartHasNoCut(t *testing.T) {
	g := randomGraph(t, 100, 500, 4)
	p, err := PartitionGreedyBFS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.EdgeCutFraction(g); cut != 0 {
		t.Fatalf("1-part cut = %v", cut)
	}
}

// Region-growing must beat random assignment on cut quality.
func TestGreedyBeatsRandomCut(t *testing.T) {
	rng := tensor.NewRNG(5)
	// A graph with locality: ring plus random chords.
	n := 600
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{Src: int32(i), Dst: int32((i + 1) % n)})
		edges = append(edges, Edge{Src: int32(i), Dst: int32((i + 2) % n)})
	}
	for i := 0; i < n/2; i++ {
		edges = append(edges, Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	greedy := p.EdgeCutFraction(g)

	random := &Partition{K: 4, Assign: make([]int32, n), Sizes: make([]int64, 4)}
	for i := range random.Assign {
		random.Assign[i] = int32(rng.Intn(4))
		random.Sizes[random.Assign[i]]++
	}
	randCut := random.EdgeCutFraction(g)
	if greedy >= randCut {
		t.Fatalf("greedy cut %v not below random cut %v", greedy, randCut)
	}
}

// The cluster model assumes cuts around 0.2–0.4 for power-law graphs at
// k=4..8; verify the partitioner lands in a sane band on an RMAT-like graph.
func TestCutFractionBandOnSkewedGraph(t *testing.T) {
	g := randomGraph(t, 2000, 16000, 6) // uniform random: worst case ~ (k-1)/k
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCutFraction(g)
	if cut <= 0 || cut >= 0.95 {
		t.Fatalf("cut %v implausible", cut)
	}
}

// Property: any partition returned is valid and covers every vertex.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 20 + rng.Intn(200)
		g := &Graph{NumVertices: n, RowPtr: make([]int64, n+1)}
		edges := make([]Edge, n*3)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		var err error
		g, err = FromEdges(n, edges)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(6)
		p, err := PartitionGreedyBFS(g, k)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Edge cases the executing multi-node path (internal/cluster.MultiNode)
// depends on: partitioning must stay well-defined — and every metric
// finite — on degenerate graphs.

// A graph with no edges at all (every vertex isolated) must partition
// cleanly: the frontier never grows, so every assignment comes from the
// steal path, and the cut must be exactly 0, not NaN.
func TestEdgelessGraphPartition(t *testing.T) {
	g, err := FromEdges(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if cut := p.EdgeCutFraction(g); cut != 0 {
		t.Fatalf("edgeless cut = %v, want exactly 0", cut)
	}
	if b := p.Balance(); math.IsNaN(b) || b < 1 || b > 2 {
		t.Fatalf("edgeless balance = %v", b)
	}
}

// Isolated vertices mixed into a connected graph must all be assigned and
// must not poison the cut computation.
func TestIsolatedVerticesPartition(t *testing.T) {
	// Vertices 0..59 form a ring; 60..99 are isolated.
	var edges []Edge
	for i := 0; i < 60; i++ {
		edges = append(edges, Edge{Src: int32(i), Dst: int32((i + 1) % 60)})
	}
	g, err := FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGreedyBFS(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCutFraction(g)
	if math.IsNaN(cut) || cut < 0 || cut > 1 {
		t.Fatalf("cut %v outside [0,1]", cut)
	}
}

// k == n: every vertex its own part — the extreme the region-grower must
// survive (all seeds, nothing to grow).
func TestOneVertexPerPart(t *testing.T) {
	g := randomGraph(t, 12, 40, 9)
	p, err := PartitionGreedyBFS(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b != 1 {
		t.Fatalf("one-vertex parts balance %v, want exactly 1", b)
	}
	for _, s := range p.Sizes {
		if s != 1 {
			t.Fatalf("part sizes %v, want all 1", p.Sizes)
		}
	}
}

// A hand-built partition with an empty part must keep every metric finite:
// the multi-node coordinator rejects such partitions, but the metrics it
// prints while doing so must not be NaN.
func TestEmptyPartMetricsFinite(t *testing.T) {
	g := randomGraph(t, 30, 120, 11)
	assign := make([]int32, 30)
	sizes := []int64{20, 10, 0} // part 2 empty
	for i := 20; i < 30; i++ {
		assign[i] = 1
	}
	p := &Partition{K: 3, Assign: assign, Sizes: sizes}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCutFraction(g)
	if math.IsNaN(cut) || cut < 0 || cut > 1 {
		t.Fatalf("cut %v with empty part", cut)
	}
	if b := p.Balance(); math.IsNaN(b) || math.IsInf(b, 0) {
		t.Fatalf("balance %v with empty part", b)
	}
}

// PartitionGreedyBFS must reject more parts than vertices — the guard the
// multi-node coordinator relies on when -nodes exceeds the graph.
func TestTooManyPartsRejected(t *testing.T) {
	g := randomGraph(t, 5, 10, 13)
	if _, err := PartitionGreedyBFS(g, 6); err == nil {
		t.Fatal("expected error for 6 parts of 5 vertices")
	}
}
