// Package graph provides the in-memory graph representation used throughout
// the system: a compressed sparse row (CSR) adjacency structure over int32
// vertex IDs, degree queries, reverse-graph construction, and the
// edge-sorted-by-source layout required by the accelerator aggregation
// kernel (paper §IV-C).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in CSR form. Neighbors of vertex v are
// ColIdx[RowPtr[v]:RowPtr[v+1]]. For GNN aggregation the stored direction is
// "in-neighbors": ColIdx lists the source vertices whose features flow into v.
type Graph struct {
	NumVertices int
	RowPtr      []int64 // len NumVertices+1
	ColIdx      []int32 // len NumEdges
}

// NumEdges returns the number of stored edges.
func (g *Graph) NumEdges() int64 { return g.RowPtr[g.NumVertices] }

// Neighbors returns a view of v's neighbor list.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.ColIdx[g.RowPtr[v]:g.RowPtr[v+1]]
}

// Degree returns the number of stored neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.RowPtr[v+1] - g.RowPtr[v])
}

// Edge is a directed (Src → Dst) edge in coordinate form.
type Edge struct{ Src, Dst int32 }

// FromEdges builds a CSR graph from an edge list, grouping by Dst so that
// Neighbors(v) yields the in-neighbors (sources) of v. Duplicate edges are
// preserved; self loops are allowed. Edges with endpoints outside
// [0, numVertices) cause an error.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	rowPtr := make([]int64, numVertices+1)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= numVertices || e.Dst < 0 || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", e.Src, e.Dst, numVertices)
		}
		rowPtr[e.Dst+1]++
	}
	for i := 0; i < numVertices; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(edges))
	cursor := make([]int64, numVertices)
	for _, e := range edges {
		pos := rowPtr[e.Dst] + cursor[e.Dst]
		colIdx[pos] = e.Src
		cursor[e.Dst]++
	}
	return &Graph{NumVertices: numVertices, RowPtr: rowPtr, ColIdx: colIdx}, nil
}

// Reverse returns the graph with all edges flipped (in-neighbors become
// out-neighbors). Used to compute out-degrees for the feature-reuse analysis.
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices
	rowPtr := make([]int64, n+1)
	for _, src := range g.ColIdx {
		rowPtr[src+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(g.ColIdx))
	cursor := make([]int64, n)
	for dst := int32(0); int(dst) < n; dst++ {
		for _, src := range g.Neighbors(dst) {
			pos := rowPtr[src] + cursor[src]
			colIdx[pos] = dst
			cursor[src]++
		}
	}
	return &Graph{NumVertices: n, RowPtr: rowPtr, ColIdx: colIdx}
}

// OutDegrees returns the out-degree of every vertex (number of edges whose
// source is v), computed in one pass over ColIdx.
func (g *Graph) OutDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for _, src := range g.ColIdx {
		deg[src]++
	}
	return deg
}

// InDegrees returns the in-degree (stored degree) of every vertex.
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		deg[v] = int32(g.RowPtr[v+1] - g.RowPtr[v])
	}
	return deg
}

// Validate checks structural invariants: RowPtr is monotone, starts at 0,
// ends at len(ColIdx), and every column index is in range.
func (g *Graph) Validate() error {
	if len(g.RowPtr) != g.NumVertices+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.NumVertices+1)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	for i := 0; i < g.NumVertices; i++ {
		if g.RowPtr[i+1] < g.RowPtr[i] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", i)
		}
	}
	if g.RowPtr[g.NumVertices] != int64(len(g.ColIdx)) {
		return fmt.Errorf("graph: RowPtr end %d != len(ColIdx) %d", g.RowPtr[g.NumVertices], len(g.ColIdx))
	}
	for _, c := range g.ColIdx {
		if c < 0 || int(c) >= g.NumVertices {
			return fmt.Errorf("graph: column index %d out of range", c)
		}
	}
	return nil
}

// SortNeighborLists sorts each vertex's neighbor list ascending in place.
// Deterministic layout for tests and better locality for sequential access.
func (g *Graph) SortNeighborLists() {
	for v := 0; v < g.NumVertices; v++ {
		nb := g.ColIdx[g.RowPtr[v]:g.RowPtr[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// EdgeList materialises all edges in (src→dst) coordinate form, ordered by
// destination (CSR order).
func (g *Graph) EdgeList() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for dst := int32(0); int(dst) < g.NumVertices; dst++ {
		for _, src := range g.Neighbors(dst) {
			edges = append(edges, Edge{Src: src, Dst: dst})
		}
	}
	return edges
}

// SortEdgesBySource returns the edge list ordered by source vertex
// (stable within a source by destination). This is the layout the paper's
// scatter-gather kernel requires: edges with the same source are consecutive
// so a fetched feature is reused Dout(v) times (paper §IV-C).
func SortEdgesBySource(edges []Edge) []Edge {
	out := make([]Edge, len(edges))
	copy(out, edges)
	return SortEdgesBySourceInPlace(out)
}

// SortEdgesBySourceInPlace sorts edges by source (stable within a source by
// destination) without copying — the reuse-friendly form for per-mini-batch
// callers that own a scratch buffer. Returns edges for convenience.
func SortEdgesBySourceInPlace(edges []Edge) []Edge {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	return edges
}

// CountSourceRuns returns the number of maximal runs of consecutive edges
// sharing a source vertex. For a source-sorted edge list this equals the
// number of distinct sources — i.e. the number of feature fetches the
// scatter-gather kernel performs.
func CountSourceRuns(edges []Edge) int {
	runs := 0
	for i, e := range edges {
		if i == 0 || e.Src != edges[i-1].Src {
			runs++
		}
	}
	return runs
}
