// Package baselines models the systems the paper compares against:
//
//   - the multi-GPU PyTorch-Geometric baseline of Fig. 10 (§VI-E1): four GPU
//     trainers behind a synchronous Python dataloader, no hybrid training,
//     no stage overlap;
//   - PaGraph (Lin et al., SoCC'20): single-node multi-GPU DGL with a static
//     GPU-side feature cache — misses cross PCIe (Table V/VI);
//   - P3 (Gandhi & Iyer, OSDI'21): 4-node intra-layer model parallelism with
//     push-pull pipelining — activations cross the network every layer;
//   - DistDGLv2 (Zheng et al., KDD'22): 8-node hybrid CPU/GPU training over
//     a METIS-partitioned graph — cut edges fetch features remotely.
//
// Each simulator charges the architectural costs that make the respective
// system slow on large graphs (the mechanisms §VI-E2 discusses), using the
// same device models and analytic primitives as the rest of the repository.
// Constants documented inline are calibrated against the magnitudes of
// paper Tables V–VII; EXPERIMENTS.md records paper-vs-measured.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
)

// PyGMultiGPU simulates the paper's multi-GPU baseline on the given
// platform: accelerator-only training behind a synchronous PyG DataLoader.
// The DataLoader's worker processes do prefetch (sampling + collation
// overlap with training), but the H2D copy and the training step itself run
// synchronously in the main loop — so one iteration is
// max(sample+collate, transfer+train) + all-reduce. No hybrid CPU training,
// no DRM, no native loader.
func PyGMultiGPU(plat hw.Platform, work perfmodel.Workload, _ uint64) (float64, error) {
	m, err := perfmodel.New(plat, work)
	if err != nil {
		return 0, err
	}
	m.Profile = perfmodel.PyGBaselineProfile()
	nGPU := len(plat.Accels)
	if nGPU == 0 {
		return 0, fmt.Errorf("baselines: PyG baseline needs accelerators")
	}
	batch := work.BatchSize
	s := work.SizesFor(batch)
	samp := m.SampleTimeCPUEdges(work.EdgesPerBatch(batch*nGPU), plat.TotalCPUCores()/2)
	load := m.LoadTimeForRows(s.VL[0]*float64(nGPU), plat.TotalCPUCores()/2)
	trans := m.TransferTimeFor(s)
	gpu := busiestAccel(m, s)
	train := m.PropTimeFor(gpu, s, 1) + gpu.FrameworkOverheadMs*1e-3
	sync := m.SyncTime()
	iter := math.Max(samp+load, trans+train) + sync
	iters := math.Ceil(float64(work.Spec.TrainNodes) / float64(batch*nGPU))
	return iters * iter, nil
}

// busiestAccel returns the fleet's slowest device for the given sampled-set
// sizes — identical to Accels[0] on the homogeneous comparator platforms,
// and the conservative choice should a caller hand these simulators a mixed
// fleet. Ranked by the quantity the callers charge: propagation plus the
// device's per-iteration framework overhead.
func busiestAccel(m *perfmodel.Model, s perfmodel.Sizes) hw.Device {
	busiest := m.Plat.Accels[0]
	worst := -1.0
	for _, d := range m.Plat.Accels {
		if t := m.PropTimeFor(d, s, 1) + d.FrameworkOverheadMs*1e-3; t > worst {
			worst, busiest = t, d
		}
	}
	return busiest
}

// zipfS is the skew of the vertex-access popularity distribution assumed by
// the cache model (power-law graphs concentrate accesses on hubs).
const zipfS = 0.5

// cacheHitRate returns the expected hit rate of a static cache holding the
// hottest `cached` of `total` feature rows under a Zipf(s) access law:
// hit = H_s(k)/H_s(N) ≈ (k/N)^(1−s) for s < 1.
func cacheHitRate(cached, total float64) float64 {
	if cached >= total {
		return 1
	}
	if cached <= 0 {
		return 0
	}
	return math.Pow(cached/total, 1-zipfS)
}

// PaGraph simulates PaGraph's epoch: 8 V100 trainers on one node, DGL
// sampling on the host, and a per-GPU static feature cache. Hits read from
// device memory; misses cross PCIe. No hybrid CPU training.
func PaGraph(work perfmodel.Workload) (float64, error) {
	plat := hw.PaGraphNode()
	m, err := perfmodel.New(plat, work)
	if err != nil {
		return 0, err
	}
	m.Profile = perfmodel.SoftwareProfile{LoaderGBs: 5, SampleCostFactor: 1.5}
	nGPU := len(plat.Accels)
	batch := work.BatchSize
	s := work.SizesFor(batch)
	f0 := float64(work.Spec.FeatDims[0])

	// Cache capacity: V100 16 GB minus ~6 GB working set (model, activations,
	// CUDA context), per PaGraph's own sizing.
	const cacheBytesPerGPU = 10e9
	cacheRows := cacheBytesPerGPU / (f0 * 4)
	hit := cacheHitRate(cacheRows, float64(work.Spec.NumVertices))

	// Per-iteration stages (per GPU, all GPUs in parallel; sync at the end).
	samp := m.SampleTimeCPUEdges(work.EdgesPerBatch(batch*nGPU), plat.TotalCPUCores()/2)
	missRows := s.VL[0] * (1 - hit)
	load := m.LoadTimeForRows(missRows, plat.TotalCPUCores()/2)
	trans := plat.PCIe.TransferSec(missRows * f0 * 4)
	gpu := busiestAccel(m, s)
	train := m.PropTimeFor(gpu, s, 1) + gpu.FrameworkOverheadMs*1e-3
	sync := m.SyncTime() * math.Log2(float64(nGPU)) // ring/tree all-reduce depth

	// PaGraph overlaps loading with training (its "computation-aware
	// caching" pipeline) but not sampling.
	iter := samp + math.Max(load+trans, train) + sync
	iters := math.Ceil(float64(work.Spec.TrainNodes) / float64(batch*nGPU))
	return iters * iter, nil
}

// p3Nodes is P3's cluster size (Table V).
const p3Nodes = 4

// P3 simulates P3's epoch: intra-layer model parallelism for the first
// layer (features sharded across machines; partial activations are
// all-to-all'ed every iteration), data parallelism above, pipelined
// push-pull. Graph and features never cross PCIe in bulk, but activations
// cross the network.
func P3(work perfmodel.Workload) (float64, error) {
	plat := hw.P3Node()
	m, err := perfmodel.New(plat, work)
	if err != nil {
		return 0, err
	}
	m.Profile = perfmodel.SoftwareProfile{LoaderGBs: 5, SampleCostFactor: 1.5}
	nGPUTotal := len(plat.Accels) * p3Nodes
	batch := work.BatchSize
	s := work.SizesFor(batch)
	net := hw.Ethernet100G()

	// Layer-1 activations (hidden dim) all-to-all: every GPU's |V1| rows
	// cross the network (minus the 1/n local shard).
	hidden := float64(work.Spec.FeatDims[1])
	actBytes := s.VL[1] * hidden * 4 * (1 - 1/float64(p3Nodes))
	comm := net.TransferSec(actBytes) * 2 // push (forward) + pull (backward)

	gpu := busiestAccel(m, s)
	train := m.PropTimeFor(gpu, s, 1) + gpu.FrameworkOverheadMs*1e-3
	samp := m.SampleTimeCPUEdges(work.EdgesPerBatch(batch*len(plat.Accels)), plat.TotalCPUCores())
	sync := m.SyncTime() * math.Log2(float64(nGPUTotal))

	// P3's pipelining overlaps communication with computation of other
	// micro-batches; the slower of the two dominates each pipeline slot, but
	// the push-pull schedule adds bubbles (each layer's halves must meet) and
	// 2016-era GPUs on a 4-node cluster straggle. The bubble factor and the
	// fixed per-iteration coordination cost are calibrated against Table VI
	// (P3 epoch ≈ 1.1 s on products, ≈ 2.6 s on papers100M).
	const (
		p3BubbleFactor    = 2.0
		p3CoordinationSec = 0.030
	)
	iter := (samp+math.Max(comm, train)+sync)*p3BubbleFactor + p3CoordinationSec
	iters := math.Ceil(float64(work.Spec.TrainNodes) / float64(batch*nGPUTotal))
	return iters * iter, nil
}

// distDGLNodes is DistDGLv2's cluster size (Table V).
const distDGLNodes = 8

// edgeCutFraction is the fraction of sampled neighbors living on a remote
// partition after METIS partitioning of a power-law graph.
const edgeCutFraction = 0.25

// DistDGLv2 simulates DistDGLv2's epoch: 8 nodes × 8 T4, graph partitioned
// across nodes, hybrid CPU/GPU training with a static task mapping. Remote
// neighbors fetch features over the network.
func DistDGLv2(work perfmodel.Workload) (float64, error) {
	plat := hw.DistDGLNode()
	m, err := perfmodel.New(plat, work)
	if err != nil {
		return 0, err
	}
	m.Profile = perfmodel.SoftwareProfile{LoaderGBs: 5, SampleCostFactor: 1.5}
	nGPU := len(plat.Accels)
	batch := work.BatchSize
	s := work.SizesFor(batch)
	f0 := float64(work.Spec.FeatDims[0])
	net := hw.Ethernet100G()

	samp := m.SampleTimeCPUEdges(work.EdgesPerBatch(batch*nGPU), plat.TotalCPUCores()/2)
	remoteRows := s.VL[0] * edgeCutFraction
	localRows := s.VL[0] - remoteRows
	load := m.LoadTimeForRows(localRows, plat.TotalCPUCores()/2)
	remote := net.TransferSec(remoteRows*f0*4) * float64(nGPU) / 2 // NIC shared by the node's trainers
	trans := plat.PCIe.TransferSec(s.VL[0] * f0 * 4)
	gpu := busiestAccel(m, s)
	train := m.PropTimeFor(gpu, s, 1) + gpu.FrameworkOverheadMs*1e-3
	sync := m.SyncTime() * math.Log2(float64(nGPU*distDGLNodes))

	// DistDGLv2 pipelines sampling/loading against training (its async
	// pipeline), but the static mapping leaves the slowest side exposed.
	iter := math.Max(samp+load+remote, trans+train) + sync
	iters := math.Ceil(float64(work.Spec.TrainNodes) / float64(batch*nGPU*distDGLNodes))
	return iters * iter, nil
}

// HyScale runs the paper's system (pipesim with all optimizations) on the
// given platform and returns the epoch time. profile selects the software
// stack (TorchProfile for the CPU-GPU design, NativeProfile for CPU-FPGA).
func HyScale(plat hw.Platform, work perfmodel.Workload, profile perfmodel.SoftwareProfile,
	ctrl pipesim.Controller, seed uint64) (float64, error) {
	m, err := perfmodel.New(plat, work)
	if err != nil {
		return 0, err
	}
	m.Profile = profile
	res, err := pipesim.Run(pipesim.Config{
		Model: m,
		Mode:  pipesim.Mode{Hybrid: true, TFP: true, DRM: ctrl != nil},
		Ctrl:  ctrl,
		Seed:  seed,
	})
	if err != nil {
		return 0, err
	}
	return res.EpochSec, nil
}

// ComparatorWorkload builds the workload matching a comparator's published
// configuration (Table V): its sample sizes and hidden dimension.
func ComparatorWorkload(spec datagen.Spec, kind gnn.Kind, fanouts []int, hidden int) (perfmodel.Workload, error) {
	if hidden <= 0 || len(fanouts) == 0 {
		return perfmodel.Workload{}, fmt.Errorf("baselines: bad comparator config")
	}
	dims := make([]int, len(fanouts)+1)
	dims[0] = spec.FeatDims[0]
	for i := 1; i < len(fanouts); i++ {
		dims[i] = hidden
	}
	dims[len(fanouts)] = spec.NumClasses()
	spec.FeatDims = dims
	return perfmodel.Workload{Spec: spec, Model: kind, BatchSize: 1024, Fanouts: fanouts}, nil
}
