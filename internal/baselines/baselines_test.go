package baselines

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func work(t *testing.T, spec datagen.Spec, kind gnn.Kind) perfmodel.Workload {
	t.Helper()
	return perfmodel.DefaultWorkload(spec, kind)
}

func TestCacheHitRate(t *testing.T) {
	if cacheHitRate(10, 10) != 1 || cacheHitRate(20, 10) != 1 {
		t.Fatal("full cache should hit always")
	}
	if cacheHitRate(0, 10) != 0 {
		t.Fatal("empty cache should never hit")
	}
	// Zipf skew: caching 25% of rows captures 50% of accesses at s=0.5.
	if got := cacheHitRate(25, 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	// Monotone in cache size.
	if cacheHitRate(30, 100) <= cacheHitRate(20, 100) {
		t.Fatal("hit rate not monotone")
	}
}

func TestPyGMultiGPUBasic(t *testing.T) {
	e, err := PyGMultiGPU(hw.CPUGPUPlatform(), work(t, datagen.OGBNProducts, gnn.GCN), 1)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatal("non-positive epoch")
	}
	// No accelerators → error.
	bare := hw.CPUGPUPlatform()
	bare.Accels = nil
	if _, err := PyGMultiGPU(bare, work(t, datagen.OGBNProducts, gnn.GCN), 1); err == nil {
		t.Fatal("expected error without accelerators")
	}
}

func TestPyGScalesWithDataset(t *testing.T) {
	small, _ := PyGMultiGPU(hw.CPUGPUPlatform(), work(t, datagen.OGBNProducts, gnn.GCN), 1)
	big, _ := PyGMultiGPU(hw.CPUGPUPlatform(), work(t, datagen.MAG240MHomo, gnn.GCN), 1)
	if big <= small {
		t.Fatalf("MAG240M (%v) should cost more than products (%v)", big, small)
	}
}

func TestHyScaleBeatsPyGOnBothPlatforms(t *testing.T) {
	// Fig. 10's qualitative content: HyScale CPU-GPU beats the PyG baseline;
	// HyScale CPU-FPGA beats both by a large margin.
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
			w := work(t, spec, kind)
			base, err := PyGMultiGPU(hw.CPUGPUPlatform(), w, 1)
			if err != nil {
				t.Fatal(err)
			}
			gpu, err := HyScale(hw.CPUGPUPlatform(), w, perfmodel.TorchProfile(), drm.New(128), 1)
			if err != nil {
				t.Fatal(err)
			}
			fpga, err := HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(), drm.New(128), 1)
			if err != nil {
				t.Fatal(err)
			}
			if gpu >= base {
				t.Errorf("%s/%v: CPU+GPU %v not faster than baseline %v", spec.Name, kind, gpu, base)
			}
			if fpga >= gpu {
				t.Errorf("%s/%v: CPU+FPGA %v not faster than CPU+GPU %v", spec.Name, kind, fpga, gpu)
			}
			gpuSpeedup := base / gpu
			fpgaSpeedup := base / fpga
			// Paper: 1.45–2.08× and 8.87–12.6×. Accept the same regime.
			if gpuSpeedup < 1.2 || gpuSpeedup > 4 {
				t.Errorf("%s/%v: CPU+GPU speedup %.2f outside the paper's regime", spec.Name, kind, gpuSpeedup)
			}
			if fpgaSpeedup < 6 || fpgaSpeedup > 30 {
				t.Errorf("%s/%v: CPU+FPGA speedup %.2f outside the paper's regime", spec.Name, kind, fpgaSpeedup)
			}
		}
	}
}

func TestComparatorWorkload(t *testing.T) {
	w, err := ComparatorWorkload(datagen.OGBNPapers100M, gnn.GCN, []int{25, 10}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if w.Spec.FeatDims[1] != 32 || w.Spec.FeatDims[0] != 128 || w.Spec.FeatDims[2] != 172 {
		t.Fatalf("dims = %v", w.Spec.FeatDims)
	}
	// 3-layer DistDGL config.
	w3, err := ComparatorWorkload(datagen.OGBNProducts, gnn.SAGE, []int{15, 10, 5}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(w3.Spec.FeatDims) != 4 || w3.Spec.FeatDims[2] != 256 {
		t.Fatalf("3-layer dims = %v", w3.Spec.FeatDims)
	}
	if err := w3.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ComparatorWorkload(datagen.OGBNProducts, gnn.GCN, nil, 256); err == nil {
		t.Fatal("expected error for empty fanouts")
	}
	if _, err := ComparatorWorkload(datagen.OGBNProducts, gnn.GCN, []int{5}, 0); err == nil {
		t.Fatal("expected error for zero hidden")
	}
}

// Table VI's qualitative result: HyScale (4 FPGAs, 1 node) beats PaGraph
// (8 V100) and P3 (16 P100, 4 nodes), but NOT DistDGLv2 (64 T4, 8 nodes) —
// the paper reports 0.45× geomean against DistDGLv2.
func TestTable6WinLossPattern(t *testing.T) {
	geo := func(ratios []float64) float64 {
		p := 1.0
		for _, r := range ratios {
			p *= r
		}
		return math.Pow(p, 1/float64(len(ratios)))
	}
	type comp struct {
		name    string
		fanouts []int
		hidden  int
		epoch   func(perfmodel.Workload) (float64, error)
		wantWin bool
	}
	comps := []comp{
		{"PaGraph", []int{25, 10}, 256, PaGraph, true},
		{"P3", []int{25, 10}, 32, P3, true},
		{"DistDGLv2", []int{15, 10, 5}, 256, DistDGLv2, false},
	}
	for _, c := range comps {
		var ratios []float64
		for _, spec := range []datagen.Spec{datagen.OGBNProducts, datagen.OGBNPapers100M} {
			for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
				w, err := ComparatorWorkload(spec, kind, c.fanouts, c.hidden)
				if err != nil {
					t.Fatal(err)
				}
				them, err := c.epoch(w)
				if err != nil {
					t.Fatal(err)
				}
				ours, err := HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(), drm.New(128), 1)
				if err != nil {
					t.Fatal(err)
				}
				ratios = append(ratios, them/ours)
			}
		}
		g := geo(ratios)
		if c.wantWin && g <= 1 {
			t.Errorf("%s: geomean speedup %.2f — paper has HyScale winning", c.name, g)
		}
		if !c.wantWin && g >= 1 {
			t.Errorf("%s: geomean speedup %.2f — paper has HyScale losing (0.45x)", c.name, g)
		}
	}
}

// Table VII: normalized by platform TFLOPS, HyScale must win against ALL
// comparators (paper: 21–71× after normalization) — the efficiency claim.
func TestTable7NormalizedAlwaysWins(t *testing.T) {
	ourTFLOPS := hw.CPUFPGAPlatform().TotalTFLOPS()
	comps := []struct {
		name   string
		tflops float64
		epoch  func(perfmodel.Workload) (float64, error)
		fan    []int
		hidden int
	}{
		{"PaGraph", hw.PaGraphNode().TotalTFLOPS(), PaGraph, []int{25, 10}, 256},
		{"P3", hw.P3Node().TotalTFLOPS() * 4, P3, []int{25, 10}, 32},
		{"DistDGLv2", hw.DistDGLNode().TotalTFLOPS() * 8, DistDGLv2, []int{15, 10, 5}, 256},
	}
	for _, c := range comps {
		for _, spec := range []datagen.Spec{datagen.OGBNProducts, datagen.OGBNPapers100M} {
			w, err := ComparatorWorkload(spec, gnn.SAGE, c.fan, c.hidden)
			if err != nil {
				t.Fatal(err)
			}
			them, err := c.epoch(w)
			if err != nil {
				t.Fatal(err)
			}
			ours, err := HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(), drm.New(128), 1)
			if err != nil {
				t.Fatal(err)
			}
			themNorm := them * c.tflops
			oursNorm := ours * ourTFLOPS
			if oursNorm >= themNorm {
				t.Errorf("%s on %s: normalized %.1f vs ours %.1f — paper has HyScale winning after normalization",
					c.name, spec.Name, themNorm, oursNorm)
			}
		}
	}
}

// PaGraph's weakness per §VI-E2: on graphs whose features exceed the cache,
// misses make it slower per unit work than on cacheable graphs.
func TestPaGraphCacheDegradation(t *testing.T) {
	// Isolate the cache effect: the same graph shape at 1/20 scale has
	// 2.8 GB of features (fits the 10 GB cache entirely) while full-scale
	// papers100M has 57 GB (mostly missing). Average degree and batch sizes
	// are identical, so any per-iteration difference is miss traffic.
	wBig := work(t, datagen.OGBNPapers100M, gnn.GCN)
	wSmall := wBig
	wSmall.Spec = datagen.OGBNPapers100M.Scaled(20)
	big, err := PaGraph(wBig)
	if err != nil {
		t.Fatal(err)
	}
	small, err := PaGraph(wSmall)
	if err != nil {
		t.Fatal(err)
	}
	perIterBig := big / math.Ceil(float64(wBig.Spec.TrainNodes)/8192)
	perIterSmall := small / math.Ceil(float64(wSmall.Spec.TrainNodes)/8192)
	if perIterBig <= perIterSmall*1.05 {
		t.Fatalf("full-scale per-iteration %v should clearly exceed cache-resident %v",
			perIterBig, perIterSmall)
	}
}

func TestDistDGLOnlyConfigValid(t *testing.T) {
	w, err := ComparatorWorkload(datagen.OGBNPapers100M, gnn.SAGE, []int{15, 10, 5}, 256)
	if err != nil {
		t.Fatal(err)
	}
	e, err := DistDGLv2(w)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatal("non-positive epoch")
	}
}
