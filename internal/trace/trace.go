// Package trace records training-run telemetry — per-iteration stage times
// and per-epoch statistics — and renders it as CSV, so runs of the runtime
// or the simulators can be plotted and compared offline (the raw material
// behind the paper's figures).
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/perfmodel"
)

// StageSample is one iteration's measured stage times.
type StageSample struct {
	Iter   int
	Stages perfmodel.StageTimes
}

// EpochSample is one epoch's summary.
type EpochSample struct {
	Epoch      int
	Loss       float64
	Accuracy   float64
	VirtualSec float64
	MTEPS      float64
	CPUBatch   int
	AccelBatch int // share of the first accelerator (they stay balanced)
}

// Recorder accumulates samples. The zero value is ready to use.
type Recorder struct {
	stages []StageSample
	epochs []EpochSample
}

// RecordStages appends an iteration's stage times.
func (r *Recorder) RecordStages(iter int, st perfmodel.StageTimes) {
	r.stages = append(r.stages, StageSample{Iter: iter, Stages: st})
}

// RecordEpoch appends an epoch summary.
func (r *Recorder) RecordEpoch(s EpochSample) { r.epochs = append(r.epochs, s) }

// Stages returns the recorded iteration samples.
func (r *Recorder) Stages() []StageSample { return r.stages }

// Epochs returns the recorded epoch samples.
func (r *Recorder) Epochs() []EpochSample { return r.epochs }

// WriteStagesCSV writes the per-iteration stage-time series.
func (r *Recorder) WriteStagesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "iter,samp_cpu,samp_accel,load,trans,train_cpu,train_accel,sync"); err != nil {
		return err
	}
	for _, s := range r.stages {
		if _, err := fmt.Fprintf(w, "%d,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f\n",
			s.Iter, s.Stages.SampCPU, s.Stages.SampAccel, s.Stages.Load,
			s.Stages.Trans, s.Stages.TrainCPU, s.Stages.TrainAcc, s.Stages.Sync); err != nil {
			return err
		}
	}
	return nil
}

// WriteEpochsCSV writes the per-epoch summary series.
func (r *Recorder) WriteEpochsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "epoch,loss,accuracy,virtual_sec,mteps,cpu_batch,accel_batch"); err != nil {
		return err
	}
	for _, e := range r.epochs {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.4f,%.9f,%.2f,%d,%d\n",
			e.Epoch, e.Loss, e.Accuracy, e.VirtualSec, e.MTEPS, e.CPUBatch, e.AccelBatch); err != nil {
			return err
		}
	}
	return nil
}

// Adjust implements pipesim.Controller pass-through recording: wrap another
// controller (or none) and capture the measured stage times it sees.
type Adjust struct {
	Rec  *Recorder
	Next interface {
		Adjust(int, perfmodel.StageTimes, perfmodel.Assignment) perfmodel.Assignment
	}
}

// Adjust records and delegates.
func (a *Adjust) Adjust(iter int, st perfmodel.StageTimes, as perfmodel.Assignment) perfmodel.Assignment {
	a.Rec.RecordStages(iter, st)
	if a.Next != nil {
		return a.Next.Adjust(iter, st, as)
	}
	return as
}

// Summary renders a short human-readable digest of the recorded epochs.
func (r *Recorder) Summary() string {
	if len(r.epochs) == 0 {
		return "trace: no epochs recorded"
	}
	first, last := r.epochs[0], r.epochs[len(r.epochs)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "epochs %d..%d: loss %.4f -> %.4f, acc %.3f -> %.3f",
		first.Epoch, last.Epoch, first.Loss, last.Loss, first.Accuracy, last.Accuracy)
	return b.String()
}
