package trace

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
)

func TestRecorderCSV(t *testing.T) {
	var r Recorder
	r.RecordStages(0, perfmodel.StageTimes{SampCPU: 0.001, Load: 0.002})
	r.RecordStages(1, perfmodel.StageTimes{SampCPU: 0.0011, Load: 0.0021})
	r.RecordEpoch(EpochSample{Epoch: 1, Loss: 2.5, Accuracy: 0.3, VirtualSec: 0.5, MTEPS: 100})

	var sb strings.Builder
	if err := r.WriteStagesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "iter,samp_cpu") {
		t.Fatalf("missing header: %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want header+2 rows, got %q", out)
	}

	sb.Reset()
	if err := r.WriteEpochsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2.500000") {
		t.Fatalf("epoch row missing: %q", sb.String())
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	if !strings.Contains(r.Summary(), "no epochs") {
		t.Fatal("empty summary wrong")
	}
	r.RecordEpoch(EpochSample{Epoch: 1, Loss: 2, Accuracy: 0.1})
	r.RecordEpoch(EpochSample{Epoch: 2, Loss: 1, Accuracy: 0.5})
	s := r.Summary()
	if !strings.Contains(s, "2.0000 -> 1.0000") {
		t.Fatalf("summary: %q", s)
	}
}

// The Adjust wrapper must capture every iteration the simulator runs while
// delegating to the real DRM engine.
func TestAdjustWrapsController(t *testing.T) {
	m, err := perfmodel.New(hw.CPUFPGAPlatform(),
		perfmodel.DefaultWorkload(datagen.OGBNProducts, gnn.GCN))
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	eng := drm.New(128)
	ctrl := &Adjust{Rec: &rec, Next: eng}
	_, err = pipesim.Run(pipesim.Config{
		Model: m, Mode: pipesim.Mode{Hybrid: true, DRM: true, TFP: true},
		Ctrl: ctrl, Seed: 1, Iterations: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Stages()) != 25 {
		t.Fatalf("recorded %d iterations, want 25", len(rec.Stages()))
	}
	var sb strings.Builder
	if err := rec.WriteStagesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 26 {
		t.Fatal("CSV row count wrong")
	}
}

// A nil Next controller records without steering.
func TestAdjustWithoutNext(t *testing.T) {
	var rec Recorder
	ctrl := &Adjust{Rec: &rec}
	a := perfmodel.Assignment{CPUBatch: 10, AccelBatch: []int{20}}
	out := ctrl.Adjust(0, perfmodel.StageTimes{SampCPU: 1}, a)
	if out.CPUBatch != 10 || len(rec.Stages()) != 1 {
		t.Fatal("pass-through recording broken")
	}
}
