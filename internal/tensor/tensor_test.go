package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	if m.Row(1)[2] != 5 {
		t.Fatalf("Row view broken")
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Equal(clone) false")
	}
}

// naiveMatMul is the reference O(mnk) triple loop in float64.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func randomMatrix(rows, cols int, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 32, 16}, {2, 100, 3}} {
		a := randomMatrix(dims[0], dims[1], rng)
		b := randomMatrix(dims[1], dims[2], rng)
		c := New(dims[0], dims[2])
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if !c.AllClose(want, 1e-3) {
			t.Fatalf("MatMul mismatch at dims %v: maxdiff %g", dims, c.MaxAbsDiff(want))
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(2)
	a := randomMatrix(37, 19, rng)
	b := randomMatrix(19, 11, rng)
	c1 := New(37, 11)
	c2 := New(37, 11)
	old := SetParallelism(1)
	MatMul(c1, a, b)
	SetParallelism(8)
	MatMul(c2, a, b)
	SetParallelism(old)
	if !c1.Equal(c2) {
		t.Fatal("parallel MatMul differs from serial")
	}
}

func TestMatMulT(t *testing.T) {
	rng := NewRNG(3)
	a := randomMatrix(7, 5, rng)
	b := randomMatrix(9, 5, rng)
	c := New(7, 9)
	MatMulT(c, a, b)
	want := naiveMatMul(a, Transpose(b))
	if !c.AllClose(want, 1e-3) {
		t.Fatalf("MatMulT mismatch: %g", c.MaxAbsDiff(want))
	}
}

func TestTMatMul(t *testing.T) {
	rng := NewRNG(4)
	a := randomMatrix(6, 8, rng)
	b := randomMatrix(6, 3, rng)
	c := New(8, 3)
	TMatMul(c, a, b)
	want := naiveMatMul(Transpose(a), b)
	if !c.AllClose(want, 1e-3) {
		t.Fatalf("TMatMul mismatch: %g", c.MaxAbsDiff(want))
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomMatrix(rows, cols, rng)
		return Transpose(Transpose(m)).Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAxpy(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	dst := New(2, 2)
	Add(dst, a, b)
	if dst.At(1, 1) != 44 {
		t.Fatalf("Add: %v", dst)
	}
	Sub(dst, b, a)
	if dst.At(0, 0) != 9 {
		t.Fatalf("Sub: %v", dst)
	}
	Scale(dst, 2)
	if dst.At(0, 0) != 18 {
		t.Fatalf("Scale: %v", dst)
	}
	Axpy(dst, -1, dst.Clone())
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatalf("Axpy self-cancel: %v", dst)
		}
	}
}

func TestAddBiasAndBiasGrad(t *testing.T) {
	m := New(3, 2)
	bias := FromSlice(1, 2, []float32{1, -1})
	AddBias(m, bias)
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 1 || m.At(i, 1) != -1 {
			t.Fatalf("AddBias row %d: %v", i, m.Row(i))
		}
	}
	grad := New(1, 2)
	BiasGrad(grad, m)
	if grad.At(0, 0) != 3 || grad.At(0, 1) != -3 {
		t.Fatalf("BiasGrad: %v", grad)
	}
}

func TestReLUAndBackward(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	mask := ReLU(m)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("ReLU: %v", m.Data)
		}
	}
	dy := FromSlice(1, 4, []float32{5, 5, 5, 5})
	ReLUBackward(dy, mask)
	wantDy := []float32{0, 0, 5, 0}
	for i, v := range wantDy {
		if dy.Data[i] != v {
			t.Fatalf("ReLUBackward: %v", dy.Data)
		}
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over k classes: loss = ln(k), grad = (1/k - onehot)/n.
	logits := New(2, 4)
	grad := New(2, 4)
	loss, correct := SoftmaxCrossEntropy(grad, logits, []int32{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	if correct != 1 { // argmax of uniform row is index 0; row1 label 3 wrong
		t.Fatalf("correct = %d, want 1", correct)
	}
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad(0,0) = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad(0,1) = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	rng := NewRNG(7)
	logits := randomMatrix(5, 6, rng)
	grad := New(5, 6)
	labels := []int32{0, 1, 2, 3, 4}
	SoftmaxCrossEntropy(grad, logits, labels)
	for i := 0; i < 5; i++ {
		var sum float64
		for _, v := range grad.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum) > 1e-5 {
			t.Fatalf("row %d grad sum = %v, want 0", i, sum)
		}
	}
}

func TestSoftmaxCrossEntropyFiniteDifference(t *testing.T) {
	rng := NewRNG(8)
	logits := randomMatrix(3, 4, rng)
	labels := []int32{2, 0, 1}
	grad := New(3, 4)
	loss0, _ := SoftmaxCrossEntropy(grad, logits, labels)
	const eps = 1e-3
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			pert := logits.Clone()
			pert.Set(i, j, pert.At(i, j)+eps)
			g2 := New(3, 4)
			loss1, _ := SoftmaxCrossEntropy(g2, pert, labels)
			numeric := (loss1 - loss0) / eps
			analytic := float64(grad.At(i, j))
			if math.Abs(numeric-analytic) > 1e-2 {
				t.Fatalf("grad(%d,%d): numeric %v analytic %v", i, j, numeric, analytic)
			}
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := NewRNG(9)
	a := randomMatrix(4, 3, rng)
	b := randomMatrix(4, 5, rng)
	dst := New(4, 8)
	ConcatCols(dst, a, b)
	a2, b2 := New(4, 3), New(4, 5)
	SplitCols(a2, b2, dst)
	if !a.Equal(a2) || !b.Equal(b2) {
		t.Fatal("Concat/Split round trip failed")
	}
}

func TestGatherScatterRows(t *testing.T) {
	src := FromSlice(3, 2, []float32{1, 1, 2, 2, 3, 3})
	dst := New(2, 2)
	GatherRows(dst, src, []int32{2, 0})
	if dst.At(0, 0) != 3 || dst.At(1, 0) != 1 {
		t.Fatalf("GatherRows: %v", dst)
	}
	acc := New(3, 2)
	ScatterAddRows(acc, dst, []int32{1, 1})
	if acc.At(1, 0) != 4 {
		t.Fatalf("ScatterAddRows: %v", acc)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds produce correlated streams")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(200)
		p := rng.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestXavierInitBounds(t *testing.T) {
	m := New(100, 50)
	XavierInit(m, NewRNG(12))
	limit := math.Sqrt(6.0 / 150.0)
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("Xavier value %v exceeds limit %v", v, limit)
		}
	}
	if FrobeniusNorm(m) == 0 {
		t.Fatal("Xavier init left matrix zero")
	}
}

func TestSetParallelismClamps(t *testing.T) {
	old := SetParallelism(-5)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism = %d, want 1", Parallelism())
	}
	SetParallelism(old)
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if math.Abs(FrobeniusNorm(m)-5) > 1e-9 {
		t.Fatalf("norm = %v", FrobeniusNorm(m))
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := NewRNG(1)
	a := randomMatrix(256, 256, rng)
	c := randomMatrix(256, 256, rng)
	out := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(out, a, c)
	}
}
