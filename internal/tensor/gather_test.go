package tensor

import "testing"

// The parallel GatherRows must be bitwise the serial oracle at every worker
// count and SIMD level: destination rows are disjoint, so neither the
// ParallelRows split nor the copyRow kernel may change a bit. Widths include
// non-multiples of the 8-lane SIMD stride so remainder handling is covered,
// and the index list repeats rows (a gather is not a permutation).
func TestGatherRowsMatchesSerialOracle(t *testing.T) {
	rng := NewRNG(23)
	for _, cols := range []int{1, 5, 8, 13, 37, 128} {
		src := FromSlice(50, cols, randSlice(rng, 50*cols))
		idx := make([]int32, 201)
		for i := range idx {
			idx[i] = int32(rng.Intn(50))
		}
		want := New(len(idx), cols)
		GatherRowsSerial(want, src, idx)

		for _, par := range []int{1, 2, 3, 8} {
			prev := SetParallelism(par)
			for _, l := range availableLevels() {
				withSIMD(t, l, func() {
					dst := New(len(idx), cols)
					GatherRows(dst, src, idx)
					if !dst.Equal(want) {
						t.Fatalf("GatherRows cols=%d par=%d level=%v diverges from serial oracle",
							cols, par, l)
					}
				})
			}
			SetParallelism(prev)
		}
	}
}
