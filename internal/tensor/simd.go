package tensor

// Runtime SIMD dispatch. The row-update and fused element-wise kernels come
// in up to three forms — pure Go ("generic"), 128-bit SSE, and 256-bit AVX2
// — selected once per call through an atomic level variable. The CPU's
// capabilities are probed once at init (CPUID on amd64; see simd_amd64.go)
// and fix the ceiling: SetSIMDLevel can lower the active level (forcing the
// fallback paths for tests and the -simd flag) but never raise it above what
// the hardware supports. The TENSOR_SIMD environment variable applies the
// same override at process start, clamped to the detected ceiling so a CI
// matrix can request "avx2" on any runner and get "as wide as available".
//
// Every level computes bit-identical results: the AVX2 kernels keep multiply
// and add unfused (VMULPS + VADDPS, never FMA — fusing rounds once where the
// scalar reference rounds twice) and vectorise only across independent
// output elements, so no element's accumulation order changes. The property
// tests in simd_test.go pin exact equality across all levels.

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// SIMDLevel identifies one rung of the dispatch ladder. Higher levels
// strictly extend lower ones; a level is usable only when the hardware
// supports it.
type SIMDLevel int32

const (
	// SIMDGeneric runs the pure-Go kernels everywhere.
	SIMDGeneric SIMDLevel = iota
	// SIMDSSE uses the 128-bit SSE row-update kernels (amd64 baseline).
	SIMDSSE
	// SIMDAVX2 uses the 256-bit AVX2 kernels (amd64 with AVX2 + OS YMM
	// state support).
	SIMDAVX2
)

// String returns the level's flag spelling ("generic", "sse", "avx2").
func (l SIMDLevel) String() string {
	switch l {
	case SIMDGeneric:
		return "generic"
	case SIMDSSE:
		return "sse"
	case SIMDAVX2:
		return "avx2"
	}
	return fmt.Sprintf("SIMDLevel(%d)", int32(l))
}

// detectedSIMD is the hardware ceiling, fixed at init by the per-arch probe.
var detectedSIMD = detectSIMD()

// activeSIMD is the level the kernels dispatch on (atomic: hot paths read it
// lock-free while tests and the CLI flip it).
var activeSIMD int32 = int32(detectedSIMD)

func init() {
	if env := os.Getenv("TENSOR_SIMD"); env != "" {
		if l, err := ParseSIMDLevel(env); err == nil {
			if l > detectedSIMD {
				l = detectedSIMD // clamp: "as wide as available"
			}
			atomic.StoreInt32(&activeSIMD, int32(l))
		}
		// Unknown values are ignored rather than fatal: a misspelled env var
		// must not take down training; the -simd flag is the checked path.
	}
}

// DetectedSIMDLevel reports the widest level this CPU supports.
func DetectedSIMDLevel() SIMDLevel { return detectedSIMD }

// ActiveSIMDLevel reports the level the kernels currently dispatch on.
func ActiveSIMDLevel() SIMDLevel { return SIMDLevel(atomic.LoadInt32(&activeSIMD)) }

// SetSIMDLevel sets the dispatch level and returns the previous one. Levels
// above the detected hardware ceiling are rejected — the caller asked for
// instructions this CPU cannot execute.
func SetSIMDLevel(l SIMDLevel) (SIMDLevel, error) {
	if l < SIMDGeneric || l > SIMDAVX2 {
		return ActiveSIMDLevel(), fmt.Errorf("tensor: unknown SIMD level %d", int32(l))
	}
	if l > detectedSIMD {
		return ActiveSIMDLevel(), fmt.Errorf("tensor: SIMD level %v not supported (CPU ceiling is %v)", l, detectedSIMD)
	}
	return SIMDLevel(atomic.SwapInt32(&activeSIMD, int32(l))), nil
}

// ParseSIMDLevel parses a level name as spelled on the -simd flag and the
// TENSOR_SIMD environment variable. "auto" means the detected ceiling.
func ParseSIMDLevel(s string) (SIMDLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return detectedSIMD, nil
	case "generic":
		return SIMDGeneric, nil
	case "sse":
		return SIMDSSE, nil
	case "avx2":
		return SIMDAVX2, nil
	}
	return SIMDGeneric, fmt.Errorf("tensor: unknown SIMD level %q (want auto, generic, sse or avx2)", s)
}

// simdAtLeast reports whether the active level includes l — the dispatch
// predicate on every kernel's hot path (a plain load on amd64).
func simdAtLeast(l SIMDLevel) bool {
	return atomic.LoadInt32(&activeSIMD) >= int32(l)
}
