//go:build amd64

package tensor

// SSE row-update kernels (axpy_amd64.s). SSE is part of the amd64 baseline,
// so these are always safe to call; whether they (or the AVX2 forms in
// axpy_avx2_amd64.s, which do need runtime detection — see simd_amd64.go)
// actually run is decided by the dispatch level in simd.go.
const haveAxpyAsm = true

// axpyRowAsm computes dst[j] += alpha·src[j]. len(dst) == len(src), a
// positive multiple of 16, guaranteed by the wrapper.
//
//go:noescape
func axpyRowAsm(dst, src []float32, alpha float32)

// axpyRow4Asm computes c0..c3[j] += a0..a3·b[j]. All slices share one
// length, a positive multiple of 8, guaranteed by the wrapper.
//
//go:noescape
func axpyRow4Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32)
