package tensor

// Workspace is a size-bucketed arena for the matrices and scratch slices a
// training or serving hot loop churns through. One iteration borrows buffers
// with Get/F32/I32 and the owner calls Reset at the iteration boundary, after
// which every borrowed buffer is considered free and will be handed out
// again. Nothing is ever returned to the garbage collector, so a loop whose
// shapes have stabilised (mini-batch sizes vary only within a power-of-two
// capacity class) runs at zero allocations per iteration — the property the
// AllocsPerRun gates in gnn and core enforce.
//
// A Workspace is NOT safe for concurrent use: the runtime gives each trainer
// backend and each serving worker its own arena, mirroring how the fleet
// already privatises replicas and clocks.
type Workspace struct {
	mats  map[int]*matBucket
	f32s  map[int]*f32Bucket
	i32s  map[int]*i32Bucket
	bytes int64
}

type matBucket struct {
	items []*Matrix
	used  int
}

type f32Bucket struct {
	items [][]float32
	used  int
}

type i32Bucket struct {
	items [][]int32
	used  int
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{
		mats: make(map[int]*matBucket),
		f32s: make(map[int]*f32Bucket),
		i32s: make(map[int]*i32Bucket),
	}
}

// capClass rounds n up to the bucket capacity: the next power of two. Buckets
// by capacity class (not exact size) let iteration-to-iteration shape jitter
// (sampled mini-batches never repeat sizes exactly) reuse the same buffers.
func capClass(n int) int {
	if n <= 0 {
		return 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Get borrows a rows×cols matrix valid until the next Reset. The contents
// are NOT cleared — callers that need zeros use GetZero, everything else
// overwrites every element anyway and must not pay a wasted pass.
func (ws *Workspace) Get(rows, cols int) *Matrix {
	n := rows * cols
	cls := capClass(n)
	b := ws.mats[cls]
	if b == nil {
		b = &matBucket{}
		ws.mats[cls] = b
	}
	if b.used < len(b.items) {
		m := b.items[b.used]
		b.used++
		m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
		return m
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n, cls)}
	b.items = append(b.items, m)
	b.used++
	ws.bytes += int64(cls) * 4
	return m
}

// GetZero borrows a zeroed rows×cols matrix valid until the next Reset.
func (ws *Workspace) GetZero(rows, cols int) *Matrix {
	m := ws.Get(rows, cols)
	m.Zero()
	return m
}

// F32 borrows a float32 scratch slice of length n valid until the next
// Reset. Contents are not cleared.
func (ws *Workspace) F32(n int) []float32 {
	cls := capClass(n)
	b := ws.f32s[cls]
	if b == nil {
		b = &f32Bucket{}
		ws.f32s[cls] = b
	}
	if b.used < len(b.items) {
		s := b.items[b.used][:n]
		b.used++
		return s
	}
	s := make([]float32, n, cls)
	b.items = append(b.items, s[:cls])
	b.used++
	ws.bytes += int64(cls) * 4
	return s
}

// I32 borrows an int32 scratch slice of length n valid until the next Reset.
// Contents are not cleared.
func (ws *Workspace) I32(n int) []int32 {
	cls := capClass(n)
	b := ws.i32s[cls]
	if b == nil {
		b = &i32Bucket{}
		ws.i32s[cls] = b
	}
	if b.used < len(b.items) {
		s := b.items[b.used][:n]
		b.used++
		return s
	}
	s := make([]int32, n, cls)
	b.items = append(b.items, s[:cls])
	b.used++
	ws.bytes += int64(cls) * 4
	return s
}

// Reset frees every borrowed buffer at once (an iteration boundary). The
// memory is retained for reuse; previously returned matrices and slices must
// not be used afterwards.
func (ws *Workspace) Reset() {
	for _, b := range ws.mats {
		b.used = 0
	}
	for _, b := range ws.f32s {
		b.used = 0
	}
	for _, b := range ws.i32s {
		b.used = 0
	}
}

// Bytes reports the arena's total retained footprint.
func (ws *Workspace) Bytes() int64 { return ws.bytes }
