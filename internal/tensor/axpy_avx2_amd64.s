// AVX2 row-update and fused element-wise kernels. As in the SSE file,
// multiply and add are deliberately separate instructions (VMULPS + VADDPS,
// never FMA): a fused multiply-add rounds once where the reference kernels
// round twice, and the exact-equality property tests require bit-identical
// results across every dispatch level. Lanes span independent output
// elements only, so no element's accumulation order changes. Every routine
// ends with VZEROUPPER to avoid AVX→SSE transition stalls in the scalar
// tails that follow.
//
// All lengths are positive multiples of 8, guaranteed by the Go wrappers.

#include "textflag.h"

// func axpyRowAVX2Asm(dst, src []float32, alpha float32)
// dst[j] += alpha*src[j].
TEXT ·axpyRowAVX2Asm(SB), NOSPLIT, $0-52
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         src_len+32(FP), CX
	VBROADCASTSS alpha+48(FP), Y0

	CMPQ CX, $32
	JL   loop8

loop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VMULPS  Y0, Y3, Y3
	VMULPS  Y0, Y4, Y4
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	VADDPS  32(DI), Y2, Y2
	VMOVUPS Y2, 32(DI)
	VADDPS  64(DI), Y3, Y3
	VMOVUPS Y3, 64(DI)
	VADDPS  96(DI), Y4, Y4
	VMOVUPS Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $32, CX
	CMPQ    CX, $32
	JGE     loop32

	TESTQ CX, CX
	JZ    done

loop8:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JG      loop8

done:
	VZEROUPPER
	RET

// func axpyRow4AVX2Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32)
// c0..c3[j] += a0..a3*b[j]: the 4-row register tile of the blocked GEMMs,
// one load of b shared by four row updates.
TEXT ·axpyRow4AVX2Asm(SB), NOSPLIT, $0-136
	MOVQ         c0_base+0(FP), DI
	MOVQ         c1_base+24(FP), R8
	MOVQ         c2_base+48(FP), R9
	MOVQ         c3_base+72(FP), R10
	MOVQ         b_base+96(FP), SI
	MOVQ         b_len+104(FP), CX
	VBROADCASTSS a0+120(FP), Y0
	VBROADCASTSS a1+124(FP), Y1
	VBROADCASTSS a2+128(FP), Y2
	VBROADCASTSS a3+132(FP), Y3

loop8:
	VMOVUPS (SI), Y4

	VMULPS  Y0, Y4, Y5
	VADDPS  (DI), Y5, Y5
	VMOVUPS Y5, (DI)

	VMULPS  Y1, Y4, Y5
	VADDPS  (R8), Y5, Y5
	VMOVUPS Y5, (R8)

	VMULPS  Y2, Y4, Y5
	VADDPS  (R9), Y5, Y5
	VMOVUPS Y5, (R9)

	VMULPS  Y3, Y4, Y5
	VADDPS  (R10), Y5, Y5
	VMOVUPS Y5, (R10)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	SUBQ $8, CX
	JG   loop8

	VZEROUPPER
	RET

// func scaleRowAVX2Asm(dst, src []float32, s float32)
// dst[j] = s*src[j]: the aggregation kernel's scale-initialise pass.
TEXT ·scaleRowAVX2Asm(SB), NOSPLIT, $0-52
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         src_len+32(FP), CX
	VBROADCASTSS s+48(FP), Y0

loop8:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JG      loop8

	VZEROUPPER
	RET

// func addBiasReLUAVX2Asm(row, bias, mask []float32)
// v = row[j]+bias[j]; row[j] = v>0 ? v : 0; mask[j] = v>0 ? 1 : 0.
// The mask is VCMPPS (ordered greater-than) AND'ed with the value and with
// a broadcast 1.0 — not VMAXPS — so v = -0.0 and v = NaN land exactly where
// the scalar branch puts them (+0.0, mask 0).
TEXT ·addBiasReLUAVX2Asm(SB), NOSPLIT, $0-72
	MOVQ row_base+0(FP), DI
	MOVQ bias_base+24(FP), SI
	MOVQ mask_base+48(FP), DX
	MOVQ row_len+8(FP), CX

	VXORPS   Y0, Y0, Y0  // 0.0
	VPCMPEQD Y1, Y1, Y1  // all ones →
	VPSRLD   $25, Y1, Y1 // 0x0000007F per lane →
	VPSLLD   $23, Y1, Y1 // 0x3F800000 = 1.0f per lane

loop8:
	VMOVUPS (DI), Y2
	VADDPS  (SI), Y2, Y2       // v = row + bias
	VCMPPS  $0x1E, Y0, Y2, Y3  // mask bits: v > 0 (GT_OQ)
	VANDPS  Y3, Y2, Y4         // v where positive, else +0.0
	VMOVUPS Y4, (DI)
	VANDPS  Y3, Y1, Y4         // 1.0 where positive, else 0.0
	VMOVUPS Y4, (DX)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $8, CX
	JG      loop8

	VZEROUPPER
	RET

// func reluMaskAVX2Asm(data, mask []float32)
// data[j] = relu(data[j]); mask[j] = 1 where positive, else 0. Same masking
// scheme as addBiasReLUAVX2Asm.
TEXT ·reluMaskAVX2Asm(SB), NOSPLIT, $0-48
	MOVQ data_base+0(FP), DI
	MOVQ mask_base+24(FP), DX
	MOVQ data_len+8(FP), CX

	VXORPS   Y0, Y0, Y0  // 0.0
	VPCMPEQD Y1, Y1, Y1  // 1.0f per lane, as in addBiasReLUAVX2Asm
	VPSRLD   $25, Y1, Y1
	VPSLLD   $23, Y1, Y1

loop8:
	VMOVUPS (DI), Y2
	VCMPPS  $0x1E, Y0, Y2, Y3
	VANDPS  Y3, Y2, Y4
	VMOVUPS Y4, (DI)
	VANDPS  Y3, Y1, Y4
	VMOVUPS Y4, (DX)
	ADDQ    $32, DI
	ADDQ    $32, DX
	SUBQ    $8, CX
	JG      loop8

	VZEROUPPER
	RET

// func copyRowAVX2Asm(dst, src []float32)
// dst[j] = src[j]: the row-gather copy.
TEXT ·copyRowAVX2Asm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX

	CMPQ CX, $32
	JL   loop8

loop32:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $32, CX
	CMPQ    CX, $32
	JGE     loop32

	TESTQ CX, CX
	JZ    done

loop8:
	VMOVUPS (SI), Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JG      loop8

done:
	VZEROUPPER
	RET

// func rowMaxAVX2Asm(src []float32) float32
// Returns max(src). Selection, not arithmetic: the maximum *value* is
// order-independent, and the Go wrapper canonicalises the returned bit
// pattern by re-reading the first row element that compares equal, so the
// -0.0/+0.0 tie-breaking of VMAXPS never leaks into results.
TEXT ·rowMaxAVX2Asm(SB), NOSPLIT, $0-28
	MOVQ src_base+0(FP), SI
	MOVQ src_len+8(FP), CX

	VMOVUPS (SI), Y0
	ADDQ    $32, SI
	SUBQ    $8, CX
	JZ      reduce

loop8:
	VMAXPS  (SI), Y0, Y0
	ADDQ    $32, SI
	SUBQ    $8, CX
	JG      loop8

reduce:
	VEXTRACTF128 $1, Y0, X1
	VMAXPS       X1, X0, X0
	VPERMILPS    $0x0E, X0, X1  // lanes 2,3 → 0,1
	VMAXPS       X1, X0, X0
	VPERMILPS    $0x01, X0, X1  // lane 1 → 0
	VMAXPS       X1, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func subScalarAVX2Asm(dst, src []float32, s float32)
// dst[j] = src[j] - s: the softmax shift pass.
TEXT ·subScalarAVX2Asm(SB), NOSPLIT, $0-52
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         src_len+32(FP), CX
	VBROADCASTSS s+48(FP), Y0

loop8:
	VMOVUPS (SI), Y1
	VSUBPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JG      loop8

	VZEROUPPER
	RET
