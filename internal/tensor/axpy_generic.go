//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go tails in axpy.go for the full row.
const haveAxpyAsm = false

func axpyRowAsm(dst, src []float32, alpha float32) {
	panic("tensor: axpyRowAsm without assembly support")
}

func axpyRow4Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32) {
	panic("tensor: axpyRow4Asm without assembly support")
}
