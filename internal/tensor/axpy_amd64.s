// SSE row-update kernels. Multiply and add are deliberately separate
// instructions (MULPS + ADDPS, never FMA): a fused multiply-add rounds once
// where the reference kernels round twice, and the exact-equality property
// tests require bit-identical results. Lanes are independent output
// elements, so vectorising across the row preserves each element's
// accumulation order.

#include "textflag.h"

// func axpyRowAsm(dst, src []float32, alpha float32)
// dst[j] += alpha*src[j]; len is a positive multiple of 16.
TEXT ·axpyRowAsm(SB), NOSPLIT, $0-52
	MOVQ  dst_base+0(FP), DI
	MOVQ  src_base+24(FP), SI
	MOVQ  src_len+32(FP), CX
	MOVSS alpha+48(FP), X0
	SHUFPS $0x00, X0, X0

loop16:
	MOVUPS (SI), X1
	MOVUPS 16(SI), X2
	MOVUPS 32(SI), X3
	MOVUPS 48(SI), X4
	MULPS  X0, X1
	MULPS  X0, X2
	MULPS  X0, X3
	MULPS  X0, X4
	MOVUPS (DI), X5
	ADDPS  X1, X5
	MOVUPS X5, (DI)
	MOVUPS 16(DI), X6
	ADDPS  X2, X6
	MOVUPS X6, 16(DI)
	MOVUPS 32(DI), X7
	ADDPS  X3, X7
	MOVUPS X7, 32(DI)
	MOVUPS 48(DI), X8
	ADDPS  X4, X8
	MOVUPS X8, 48(DI)
	ADDQ   $64, SI
	ADDQ   $64, DI
	SUBQ   $16, CX
	JG     loop16
	RET

// func axpyRow4Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32)
// c0..c3[j] += a0..a3*b[j]; len is a positive multiple of 8.
TEXT ·axpyRow4Asm(SB), NOSPLIT, $0-136
	MOVQ  c0_base+0(FP), DI
	MOVQ  c1_base+24(FP), R8
	MOVQ  c2_base+48(FP), R9
	MOVQ  c3_base+72(FP), R10
	MOVQ  b_base+96(FP), SI
	MOVQ  b_len+104(FP), CX
	MOVSS a0+120(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS a1+124(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS a2+128(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS a3+132(FP), X3
	SHUFPS $0x00, X3, X3

loop8:
	MOVUPS (SI), X4
	MOVUPS 16(SI), X5

	MOVAPS X4, X6
	MULPS  X0, X6
	MOVUPS (DI), X7
	ADDPS  X6, X7
	MOVUPS X7, (DI)
	MOVAPS X5, X6
	MULPS  X0, X6
	MOVUPS 16(DI), X7
	ADDPS  X6, X7
	MOVUPS X7, 16(DI)

	MOVAPS X4, X6
	MULPS  X1, X6
	MOVUPS (R8), X7
	ADDPS  X6, X7
	MOVUPS X7, (R8)
	MOVAPS X5, X6
	MULPS  X1, X6
	MOVUPS 16(R8), X7
	ADDPS  X6, X7
	MOVUPS X7, 16(R8)

	MOVAPS X4, X6
	MULPS  X2, X6
	MOVUPS (R9), X7
	ADDPS  X6, X7
	MOVUPS X7, (R9)
	MOVAPS X5, X6
	MULPS  X2, X6
	MOVUPS 16(R9), X7
	ADDPS  X6, X7
	MOVUPS X7, 16(R9)

	MOVAPS X4, X6
	MULPS  X3, X6
	MOVUPS (R10), X7
	ADDPS  X6, X7
	MOVUPS X7, (R10)
	MOVAPS X5, X6
	MULPS  X3, X6
	MOVUPS 16(R10), X7
	ADDPS  X6, X7
	MOVUPS X7, 16(R10)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	SUBQ $8, CX
	JG   loop8
	RET
