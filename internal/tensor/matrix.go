// Package tensor provides dense float32 matrices and the numeric kernels
// used by the GNN trainers: cache-blocked parallel matrix multiplication,
// element-wise and fused operations, activations, loss functions, and the
// Workspace arena behind the zero-allocation training/serving hot paths.
//
// Kernels are stdlib-only Go, with the innermost row updates in SIMD
// assembly on amd64, dispatched at runtime between AVX2 (8 lanes) and the
// SSE baseline (axpy_avx2_amd64.s, axpy_amd64.s; a pure-Go fallback serves
// other architectures). Every dispatch level is bit-identical — see simd.go
// for detection and the SetSIMDLevel/TENSOR_SIMD overrides. Parallel
// kernels split work across goroutines by row blocks; the degree of
// parallelism is controlled by SetParallelism and defaults to
// runtime.NumCPU().
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of worker goroutines used by parallel kernels.
var parallelism int64 = int64(runtime.NumCPU())

// SetParallelism sets the number of goroutines used by parallel kernels.
// Values below 1 are clamped to 1. It returns the previous setting.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&parallelism, int64(n)))
}

// Parallelism reports the current kernel parallelism.
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a Rows×Cols matrix. The slice is used directly
// (not copied) and must have length rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and other have identical shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and other have identical shape and all elements
// within tol of each other (absolute difference).
func (m *Matrix) AllClose(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(other.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between m
// and other, which must have the same shape.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(other.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// String formats small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// ParallelRows runs fn over [0, rows) split into contiguous chunks across
// worker goroutines, honouring SetParallelism. fn receives [lo, hi). It is
// the row-parallel helper behind every parallel kernel in this package,
// exported so row-sharded loops elsewhere (e.g. per-vertex GNN aggregation)
// use the same worker policy instead of rolling their own.
func ParallelRows(rows int, fn func(lo, hi int)) { parallelRows(rows, fn) }

// parallelRows runs fn over [0, rows) split into contiguous chunks across
// worker goroutines. fn receives [lo, hi).
func parallelRows(rows int, fn func(lo, hi int)) {
	p := Parallelism()
	if p > rows {
		p = rows
	}
	if p <= 1 || rows == 0 {
		fn(0, rows)
		return
	}
	chunk := (rows + p - 1) / p
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
